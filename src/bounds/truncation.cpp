#include "bounds/truncation.hpp"

#include <memory>
#include <string>

#include "net/engine.hpp"
#include "net/message.hpp"

namespace ule {

namespace {
struct RankMsg final : Message {
  std::uint64_t value = 0;
  std::uint32_t size_bits() const override {
    return wire::kTypeTag + wire::kIdField;
  }
  std::string debug_string() const override {
    return "ball-max(" + std::to_string(value) + ")";
  }
};
}  // namespace

void BallMaxProcess::on_wake(Context& ctx, std::span<const Envelope> inbox) {
  own_ = random_rank_ ? ctx.rng()() : ctx.uid();
  best_ = own_;
  if (horizon_ == 0) {
    decide(ctx);
    return;
  }
  auto m = std::make_shared<RankMsg>();
  m->value = own_;
  ctx.broadcast(m);
  on_round(ctx, inbox);
}

void BallMaxProcess::decide(Context& ctx) {
  decided_ = true;
  ctx.set_status(best_ == own_ ? Status::Elected : Status::NonElected);
  ctx.halt();
}

void BallMaxProcess::on_round(Context& ctx, std::span<const Envelope> inbox) {
  if (decided_) return;
  std::uint64_t incoming = 0;
  for (const auto& env : inbox) {
    if (const auto* rm = dynamic_cast<const RankMsg*>(env.msg.get()))
      incoming = std::max(incoming, rm->value);
  }
  if (incoming > best_) {
    best_ = incoming;
    // Still within the horizon: keep flooding improvements.
    if (ctx.round() < horizon_) {
      auto m = std::make_shared<RankMsg>();
      m->value = best_;
      ctx.broadcast(m);
    }
  }
  if (ctx.round() >= horizon_) {
    decide(ctx);
  } else {
    ctx.sleep_until(horizon_);
  }
}

ProcessFactory make_ball_max(Round horizon, bool random_rank) {
  return [horizon, random_rank](NodeId) {
    return std::make_unique<BallMaxProcess>(horizon, random_rank);
  };
}

TruncationStats run_truncation_trials(const Graph& g, Round horizon,
                                      std::size_t trials, std::uint64_t seed) {
  TruncationStats st;
  st.trials = trials;
  for (std::size_t t = 0; t < trials; ++t) {
    RunOptions opt;
    opt.seed = seed + 7919 * t + 1;
    opt.anonymous = true;  // the lower bound's anonymous setting
    const ElectionReport rep =
        run_election(g, make_ball_max(horizon, true), opt);
    if (rep.verdict.elected == 1) {
      ++st.unique_leader;
    } else if (rep.verdict.elected == 0) {
      ++st.zero_leaders;
    } else {
      ++st.multi_leaders;
    }
  }
  return st;
}

}  // namespace ule
