// The Theorem 3.13 argument, made operational: algorithms cut off at o(D)
// rounds elect leaders in far-apart arcs independently.
//
// BallMaxProcess is the canonical "truncated" algorithm: every node draws a
// random rank (or uses its ID), floods maxima for exactly `horizon` rounds,
// and elects itself iff it still holds the maximum it has seen — i.e. it is
// the maximum of its radius-`horizon` ball.  On the clique-cycle graph with
// horizon < D'/4 the four arcs cannot exchange information, so, by the
// proof's independence argument, the probability of electing exactly one
// leader is bounded away from 1 — the experiment measures exactly that
// failure probability as the horizon sweeps through fractions of D.

#pragma once

#include <cstdint>

#include "election/election.hpp"
#include "net/process.hpp"

namespace ule {

class BallMaxProcess final : public Process {
 public:
  /// `horizon`: number of communication rounds before the forced decision.
  /// `random_rank`: draw a private random rank (anonymous-compatible, the
  /// lower bound's setting) instead of using the unique ID.
  BallMaxProcess(Round horizon, bool random_rank)
      : horizon_(horizon), random_rank_(random_rank) {}

  void on_wake(Context& ctx, std::span<const Envelope> inbox) override;
  void on_round(Context& ctx, std::span<const Envelope> inbox) override;

 private:
  void decide(Context& ctx);

  Round horizon_;
  bool random_rank_;
  std::uint64_t own_ = 0;
  std::uint64_t best_ = 0;
  bool decided_ = false;
};

ProcessFactory make_ball_max(Round horizon, bool random_rank = true);

/// Outcome statistics over repeated truncated runs on one graph.
struct TruncationStats {
  std::size_t trials = 0;
  std::size_t unique_leader = 0;
  std::size_t zero_leaders = 0;
  std::size_t multi_leaders = 0;
  double success_rate() const {
    return trials ? static_cast<double>(unique_leader) / trials : 0.0;
  }
};

TruncationStats run_truncation_trials(const Graph& g, Round horizon,
                                      std::size_t trials, std::uint64_t seed);

}  // namespace ule
