// Bridge crossing (BC) — the intermediate problem of the Theorem 3.1 proof,
// made operational.
//
// An algorithm achieves BC on a dumbbell graph when a message crosses one of
// the two bridge edges.  The engine's edge watches record the first crossing
// round and the number of messages sent strictly before it; averaging those
// counts over a class C(G', G'') — i.e. over choices of the opened clique
// edges e', e'' — is exactly the quantity Lemma 3.5 lower-bounds by Ω(m).

#pragma once

#include <cstdint>
#include <vector>

#include "election/election.hpp"
#include "graphgen/dumbbell.hpp"

namespace ule {

struct BridgeCrossingRun {
  std::size_t open_left = 0;
  std::size_t open_right = 0;
  Round first_cross = kRoundForever;
  std::uint64_t messages_before_cross = 0;
  std::uint64_t messages_total = 0;
  Round rounds_total = 0;
  bool unique_leader = false;
};

struct BridgeCrossingSummary {
  std::vector<BridgeCrossingRun> runs;
  double mean_messages_before_cross = 0.0;
  double mean_messages_total = 0.0;
  double crossing_fraction = 0.0;  ///< fraction of runs where BC happened
  std::size_t side_m = 0;          ///< edges per dumbbell side (Θ(m))
  std::size_t kappa = 0;
};

/// Run `factory` on `samples` dumbbell graphs with per-side n nodes and
/// ~m edges, sampling (e', e'') uniformly, and aggregate BC statistics.
/// Knowledge of n', m', D is granted (the lower bound's hardest case).
BridgeCrossingSummary run_bridge_crossing(std::size_t n, std::size_t m,
                                          const ProcessFactory& factory,
                                          std::size_t samples,
                                          std::uint64_t seed);

}  // namespace ule
