#include "bounds/bridge_crossing.hpp"

#include "graphgen/graph_algos.hpp"
#include "net/rng.hpp"

namespace ule {

BridgeCrossingSummary run_bridge_crossing(std::size_t n, std::size_t m,
                                          const ProcessFactory& factory,
                                          std::size_t samples,
                                          std::uint64_t seed) {
  BridgeCrossingSummary sum;
  Rng pick(seed ^ 0xBC0FFEEULL);
  const std::size_t choices = dumbbell_open_edge_count(m);

  double total_before = 0.0, total_msgs = 0.0;
  std::size_t crossed = 0;

  for (std::size_t s = 0; s < samples; ++s) {
    const std::size_t left = pick.below(choices);
    const std::size_t right = pick.below(choices);
    const Dumbbell d = make_dumbbell(n, m, left, right);

    RunOptions opt;
    opt.seed = seed + 1000 * s + 7;
    opt.knowledge = Knowledge::all(d.graph.n(), d.graph.m(), d.diameter);
    opt.watch_edges = {d.bridge1, d.bridge2};

    const ElectionReport rep = run_election(d.graph, factory, opt);

    BridgeCrossingRun run;
    run.open_left = left;
    run.open_right = right;
    run.messages_total = rep.run.messages;
    run.rounds_total = rep.run.rounds;
    run.unique_leader = rep.verdict.unique_leader;
    for (const WatchReport& w : rep.watches) {
      if (w.first_cross < run.first_cross) {
        run.first_cross = w.first_cross;
        run.messages_before_cross = w.messages_before_cross;
      }
    }
    if (run.first_cross != kRoundForever) {
      ++crossed;
      total_before += static_cast<double>(run.messages_before_cross);
    }
    total_msgs += static_cast<double>(run.messages_total);

    sum.side_m = d.graph.m() / 2;
    sum.kappa = d.kappa;
    sum.runs.push_back(run);
  }

  if (crossed > 0)
    sum.mean_messages_before_cross = total_before / static_cast<double>(crossed);
  sum.mean_messages_total = total_msgs / static_cast<double>(samples);
  sum.crossing_fraction =
      static_cast<double>(crossed) / static_cast<double>(samples);
  return sum;
}

}  // namespace ule
