// Sweep campaigns: the Complexity Lab's unit of work.
//
// A campaign runs every declared growth curve — a (protocol, family, axis)
// triple from the scenario registries whose ProtocolInfo carries
// GrowthExpectations — over an ascending ladder with several seed replicates
// per rung, then fits the log-log slope of each declared cost metric against
// the declared axis (lab/fit.hpp) and checks it against the
// registry-declared exponent band.  It is the quantitative counterpart of
// the conformance fuzzer: the fuzzer asks "does every run obey its
// envelope?", the lab asks "does cost *grow* at the rate the paper claims?".
//
// Three ladder axes, because the repo's fitted claims live on three axes:
//
//   axis "n"         the family's shape is fixed and the node count grows
//                    (ladder_params); fits run against the ACTUAL instance
//                    size.  This is where the message bounds (Θ(m),
//                    O(m log n), the KPPRT sublinear clique bound) live.
//   axis "diameter"  the total size stays ~nominal_n and the diameter grows
//                    (FamilyInfo::diameter_ladder, e.g. cliquepath /
//                    barbell / cliquecycle); fits run against the exact
//                    BFS-measured diameter.  This is where the O(D)-time
//                    claims live — an n-ladder alone conflates the two axes,
//                    since D usually grows with n.
//   axis "loss"      the instance is FIXED (~loss_n nodes) and the seeded
//                    adversary's drop probability grows along a permille
//                    ladder; fits run against x = 1000/(1000 - drop_pm) =
//                    1/(1 - p), the expected transmissions per delivered
//                    frame.  This is where the reliable-transport layer's
//                    retransmit overhead claims (cost ≈ base · O(1/(1-p)))
//                    live — only `*_reliable` protocols declare it.
//
// Execution is replicate-parallel on the PR-2 WorkerPool: every replicate is
// one independent engine run (engine threads = 1), workers claim runs off a
// shared counter, and results land in slots preassigned by run index — so
// aggregation order, and with it every counter-derived statistic and fitted
// exponent, is a pure function of (registries, CampaignConfig.master_seed).
// Only wall-clock statistics are machine-dependent; serializing with
// include_wall = false (lab/report.hpp) yields byte-identical rows across
// reruns and worker counts, which tests/lab/campaign_test.cpp pins.
//
// Replicate seeds are domain-separated from the master seed by (protocol,
// family, axis, rung, replicate) via splitmix64, the same discipline the
// scenario runner uses to split graph/wakeup/run streams.

#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "lab/fit.hpp"
#include "net/metrics.hpp"
#include "scenario/registry.hpp"
#include "scenario/runner.hpp"

namespace ule::lab {

struct CampaignConfig {
  std::uint64_t master_seed = 0x1AB5EEDULL;
  /// Seed replicates per (protocol, family, n) cell.
  std::size_t replicates = 5;
  /// WorkerPool size for replicate-level parallelism (0 = hardware
  /// concurrency).  Never affects any counter statistic or fit.
  unsigned threads = 0;
  /// Small ladders for the CI smoke (seconds instead of minutes).
  bool quick = false;
  /// Restrict to these protocol / family registry keys (empty = no filter).
  std::vector<std::string> protocols;
  std::vector<std::string> families;
  /// Override the n-ladder for every n-axis curve (empty = per-family
  /// default).  Values outside a family's declared size range are dropped
  /// per curve.
  std::vector<std::uint64_t> ladder;
  /// Override the D-ladder for every diameter-axis curve (empty = default).
  /// Rungs outside a family convention's [min_d, max_d] are dropped.
  std::vector<std::uint64_t> d_ladder;
  /// Override the drop_pm ladder for every loss-axis curve (empty =
  /// default).  Values must stay below 700: beyond that the give-up bound
  /// (ReliableConfig::max_retries) stops being astronomically safe.
  std::vector<std::uint64_t> loss_ladder;
  /// Fixed nominal instance size for diameter-axis curves (0 = default:
  /// 96 quick / 256 full).
  std::uint64_t nominal_n = 0;
  /// Fixed instance size for loss-axis curves (0 = default: 48 quick /
  /// 96 full — smaller than nominal_n, since per-run rounds stretch by the
  /// ARQ latency at the ladder's top rung).
  std::uint64_t loss_n = 0;
  /// Collect an engine metrics snapshot (net/metrics.hpp) from replicate 0
  /// of every cell and carry it on CellResult — the per-cell telemetry the
  /// JSON report flattens into its rows.  Off by default: the committed
  /// quick-campaign baselines are metrics-free, and the trend gate compares
  /// only fields present in both documents.
  bool metrics = false;
  /// Forwarded to run_scenario (check_determinism is forced off: replicates
  /// run with engine threads = 1; parallelism lives at the replicate level).
  ScenarioRunConfig run;
};

/// Order statistics over one cell's replicate counters.  Median is the lower
/// median, p95 the ceil(0.95·k)-th order statistic — both exact integers, so
/// rows serialize identically on every machine.
struct MetricStats {
  std::uint64_t median = 0;
  std::uint64_t p95 = 0;
  std::uint64_t max = 0;
};

struct WallStats {
  double median_ms = 0;
  double p95_ms = 0;
  double max_ms = 0;
};

/// One (protocol, family, n) cell: `replicates` independent runs.
struct CellResult {
  /// ACTUAL instance node count (ladder_params may round the nominal rung:
  /// grid squares, regular parity, hypercube powers of two); fits use this.
  std::uint64_t n = 0;
  std::uint64_t m = 0;         ///< edges of the replicate-0 instance
  std::uint32_t diameter = 0;  ///< exact diameter of the replicate-0 instance
  /// Loss axis only: the rung's drop probability in permille (0 elsewhere,
  /// and for the loss ladder's own fault-free baseline rung).
  std::uint64_t drop_pm = 0;
  std::size_t replicates = 0;
  MetricStats rounds, messages, bits;
  /// Wall clock of the full scenario run (graph build + exact diameter +
  /// engine); machine-specific, excluded from determinism comparisons.
  WallStats wall;
  /// Conformance violations across replicates, prefixed with the seed.
  std::vector<std::string> violations;
  /// Replicate-0 engine telemetry (CampaignConfig::metrics only).  A pure
  /// function of the replicate seed, like every other counter here.
  bool has_metrics = false;
  MetricsSnapshot metrics;
};

struct FitOutcome {
  GrowthExpectation expect;
  PowerFit fit;
  bool pass = false;
  /// A fit that could not run because the ladder collapsed to a single
  /// distinct x value (e.g. grid rounding folding adjacent quick rungs onto
  /// the same square).  Skipped fits are reported with `reason` instead of
  /// an exponent and never count as failures — a degenerate ladder is a
  /// configuration note, not evidence about growth.
  bool skipped = false;
  std::string reason;
};

/// One declared curve: a (protocol, family, axis) ladder plus its fitted
/// exponents.  The same (protocol, family) pair may appear once per axis —
/// the ladders sweep different instances.
struct CurveResult {
  std::string protocol;
  std::string family;
  std::string axis;               ///< "n" | "diameter" | "loss"
  std::vector<CellResult> cells;  ///< ascending along the axis
  std::vector<FitOutcome> fits;   ///< one per declared GrowthExpectation
};

struct CampaignResult {
  std::uint64_t master_seed = 0;
  std::size_t replicates = 0;
  std::size_t total_runs = 0;
  std::vector<CurveResult> curves;

  std::size_t failed_fits() const;
  std::size_t violation_count() const;
  bool ok() const { return failed_fits() == 0 && violation_count() == 0; }
};

/// Family parameters targeting ~n total nodes (single-`n` families directly;
/// gnm m = min(3n, full), tree arity 2, regular d = 4, grid/torus ~square,
/// bipartite balanced, hypercube dim = round(log2 n)).  Throws
/// std::invalid_argument for families with no n-ladder convention
/// (dumbbell, cliquecycle, lollipop, barbell).
ScenarioParams ladder_params(const FamilyInfo& fam, std::uint64_t n);

/// Default n-ladder for a family, clamped to its declared size range.
/// Complete families get a shorter, denser ladder (instances are Θ(n²)).
std::vector<std::uint64_t> default_ladder(const FamilyInfo& fam, bool quick);

/// Default fixed nominal size for diameter-axis curves (96 quick, 256 full).
std::uint64_t default_nominal_n(bool quick);

/// Default fixed instance size for loss-axis curves (48 quick, 96 full).
std::uint64_t default_loss_n(bool quick);

/// Default drop_pm ladder for loss-axis curves.  Starts at 0 (the fault-free
/// baseline anchors the fit's intercept) and tops out at 600‰, where a
/// retransmit burst gives up with probability (1-(1-0.6)²)^(max_retries+1)
/// ≈ 7e-10 — the ladder measures retransmit cost, never link death.
std::vector<std::uint64_t> default_loss_ladder(bool quick);

/// Default D-ladder for a family with a diameter-ladder convention, clamped
/// to the convention's [min_d, max_d] and to nominal_n / 2 (so the per-rung
/// clique blobs never degenerate).  Throws std::invalid_argument when the
/// family declares no convention.
std::vector<std::uint64_t> default_diameter_ladder(const FamilyInfo& fam,
                                                   bool quick,
                                                   std::uint64_t nominal_n);

/// The replicate seed for (master, protocol, family, axis, rung, replicate).
/// The axis participates in the domain separation so an n-axis and a
/// diameter-axis curve of the same pair never share coins.
std::uint64_t replicate_seed(std::uint64_t master, const std::string& protocol,
                             const std::string& family,
                             const std::string& axis, std::uint64_t rung,
                             std::size_t replicate);

/// Run the campaign.  `log`, when non-null, receives one line per finished
/// curve (fitted exponents and pass/fail verdicts).
CampaignResult run_campaign(const ProtocolRegistry& protocols,
                            const FamilyRegistry& families,
                            const CampaignConfig& cfg,
                            std::ostream* log = nullptr);

}  // namespace ule::lab
