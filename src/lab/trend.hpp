// The BENCH_lab.json trend gate: diff a freshly generated campaign document
// against the committed baseline and fail on drift.
//
// Everything in a lab document except the wall-clock fields is a pure
// function of (registries, master seed) — so on an unchanged registry the
// committed baseline and a fresh run of the same configuration must agree on
// every counter statistic, and the fitted exponents may move only by
// floating-point noise (different libm versions can wiggle the last digits
// of ln()).  CI regenerates the quick campaign and runs this comparison
// (`complexity_lab --trend BASELINE CURRENT`): a counter that moved means an
// engine or protocol behavior change that must be acknowledged by
// regenerating the baselines; an exponent outside tolerance means a growth
// curve actually bent.  Wall-clock fields are machine-specific and ignored.
//
// Comparison keys: cell rows by (protocol, family, axis, n), fit rows by
// (protocol, family, axis, metric).  Rows present in the baseline but
// missing from the current document are coverage regressions (errors unless
// allow_missing); new rows in the current document are benign (new curves
// land before their baseline is regenerated) and reported as notes.

#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace ule::lab {

struct TrendConfig {
  /// Absolute tolerance on fitted exponents and their stderr — the stderr
  /// feeds the near-zero band verdict, so both are load-bearing (anything
  /// past cross-platform libm noise is real drift).
  double exponent_tol = 0.05;
  /// Relative tolerance on deterministic counter statistics.  0 = exact:
  /// counters are pure functions of the master seed.
  double counter_rel_tol = 0.0;
  /// Permit baseline rows with no counterpart in the current document.
  bool allow_missing = false;
};

struct TrendReport {
  std::vector<std::string> errors;  ///< drift: the gate fails
  std::vector<std::string> notes;   ///< benign differences (new curves, ...)
  std::size_t cells_compared = 0;
  std::size_t fits_compared = 0;
  bool ok() const { return errors.empty(); }
};

/// Compare two BENCH_lab.json documents (verbatim file contents, baseline
/// first).  Throws std::invalid_argument when a document cannot be parsed;
/// incomparable campaigns (different master seed or replicate count — a
/// configuration change, not drift) are reported as errors.
TrendReport compare_lab_trend(const std::string& baseline_json,
                              const std::string& current_json,
                              const TrendConfig& cfg = {});

}  // namespace ule::lab
