// Campaign serialization: the BENCH_lab.json perf baseline, the generated
// docs/COMPLEXITY.md report (the empirical counterpart of the paper's
// Table 1), and the generated docs/REGISTRY.md protocol/family reference.
//
// JSON rows follow the ROADMAP bench-baseline convention (bench/bench_util
// JsonObject rows inside {"bench": ..., "rows": [...]}).  Three row kinds,
// tagged by a "kind" field:
//
//   meta  one row: master_seed, replicates, total_runs
//   cell  one per (protocol, family, n): counter order statistics
//         (median / p95 / max of rounds, messages, bits) and — unless
//         include_wall is false — wall-clock order statistics
//   fit   one per declared growth curve: fitted exponent, confidence,
//         expected band, R², pass
//
// Counter statistics and fits are pure functions of (registries,
// master_seed); wall-clock fields are the only machine-dependent content, so
// bench_json(result, /*include_wall=*/false) is byte-identical across reruns
// and worker counts (pinned by tests/lab/campaign_test.cpp).

#pragma once

#include <string>

#include "lab/campaign.hpp"
#include "scenario/registry.hpp"

namespace ule::lab {

/// The BENCH_lab.json document (see file comment for the row schema).
std::string bench_json(const CampaignResult& res, bool include_wall = true);

/// The generated docs/COMPLEXITY.md: fitted-exponent table + per-curve
/// ladder tables.
std::string complexity_markdown(const CampaignResult& res);

/// The generated docs/REGISTRY.md: every registered protocol (contract,
/// knowledge, flags, envelope samples at reference shapes, declared growth
/// curves) and family (param ranges).  Deterministic — CI regenerates it and
/// fails on drift against the committed file.
std::string registry_markdown(const ProtocolRegistry& protocols,
                              const FamilyRegistry& families);

/// Write `content` to `path` (throws std::runtime_error on failure).
void write_text_file(const std::string& path, const std::string& content);

/// Read `path` in full (throws std::runtime_error on failure).  Used by the
/// --trend gate to load the baseline and current BENCH_lab.json documents.
std::string read_text_file(const std::string& path);

}  // namespace ule::lab
