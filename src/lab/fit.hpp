// Log-log least-squares fitting of growth exponents.
//
// The Complexity Lab's core question is "how does cost grow with n?", and the
// answer for every bound in the paper's Table 1 is a power law up to polylog
// factors: messages Θ(m), time Θ(D), the sublinear ~O(√n·log^{3/2} n) clique
// bound.  On a log-log plot a power law y = c·x^a is a straight line of slope
// a, so an ordinary least-squares fit of ln y against ln x recovers the
// exponent directly, and the standard error of the slope gives a confidence
// band: a curve whose fitted slope (± band) leaves the declared tolerance is
// growing at the wrong rate, no matter what the constant is.
//
// Polylog factors do not fit a straight line exactly — d ln(n·ln n)/d ln n =
// 1 + 1/ln n — so at lab-sized ladders a Θ(n log n) curve fits a slope around
// 1.1–1.2.  Declared tolerances (GrowthExpectation::tol) are calibrated for
// that drift; see scenario/registry.cpp.

#pragma once

#include <cstddef>
#include <vector>

namespace ule::lab {

/// Result of an ordinary least-squares fit of ln(y) = a·ln(x) + c.
struct PowerFit {
  double exponent = 0;   ///< a: the fitted growth exponent (log-log slope)
  double intercept = 0;  ///< c: ln of the constant factor
  double r2 = 0;         ///< coefficient of determination in log-log space
  /// Standard error of the slope (0 when the fit is exact or k <= 2).
  double stderr_exponent = 0;
  std::size_t points = 0;

  /// Half-width of the ~95% confidence band on the exponent (2 standard
  /// errors; the lab's ladders are short, so this is indicative, not exact).
  double confidence() const { return 2.0 * stderr_exponent; }
};

/// Fit y ≈ c·x^exponent over the sample points by least squares in log-log
/// space.  Requires x.size() == y.size(), at least 2 points, and strictly
/// positive values (throws std::invalid_argument otherwise).
PowerFit fit_power_law(const std::vector<double>& x,
                       const std::vector<double>& y);

/// Expected exponents at or below this magnitude take the near-zero
/// tolerance path (see effective_tolerance).
inline constexpr double kNearZeroExponent = 0.25;

/// The tolerance a fitted exponent is checked against for a declared band.
///
/// For ordinary bands this is just the declared tolerance.  Near-zero bands
/// ("cost independent of the axis", |expected| <= kNearZeroExponent) get the
/// fit's own ~95% confidence half-width added: a genuinely flat curve has no
/// dynamic range in the metric, so integer replicate noise dominates its
/// log-log slope — but that same noise widens the slope's standard error, so
/// widening by the confidence admits flat-but-noisy curves while a genuinely
/// growing curve (tight confidence around a nonzero slope) still fails.
double effective_tolerance(double expected_exponent, double declared_tol,
                           const PowerFit& fit);

/// The band verdict: |fit.exponent - expected| <= effective_tolerance(...).
bool exponent_in_band(double expected_exponent, double declared_tol,
                      const PowerFit& fit);

}  // namespace ule::lab
