#include "lab/fit.hpp"

#include <cmath>
#include <stdexcept>

namespace ule::lab {

PowerFit fit_power_law(const std::vector<double>& x,
                       const std::vector<double>& y) {
  if (x.size() != y.size())
    throw std::invalid_argument("fit_power_law: x/y size mismatch");
  const std::size_t k = x.size();
  if (k < 2) throw std::invalid_argument("fit_power_law: need >= 2 points");

  std::vector<double> lx(k), ly(k);
  for (std::size_t i = 0; i < k; ++i) {
    if (!(x[i] > 0) || !(y[i] > 0))
      throw std::invalid_argument("fit_power_law: values must be > 0");
    lx[i] = std::log(x[i]);
    ly[i] = std::log(y[i]);
  }

  double mx = 0, my = 0;
  for (std::size_t i = 0; i < k; ++i) {
    mx += lx[i];
    my += ly[i];
  }
  mx /= static_cast<double>(k);
  my /= static_cast<double>(k);

  double sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < k; ++i) {
    const double dx = lx[i] - mx, dy = ly[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx == 0)
    throw std::invalid_argument("fit_power_law: all x equal (zero variance)");

  PowerFit f;
  f.points = k;
  f.exponent = sxy / sxx;
  f.intercept = my - f.exponent * mx;

  // Residual sum of squares; clamp tiny negatives from cancellation.
  double sse = syy - f.exponent * sxy;
  if (sse < 0) sse = 0;
  f.r2 = syy == 0 ? 1.0 : 1.0 - sse / syy;
  f.stderr_exponent =
      k > 2 ? std::sqrt(sse / static_cast<double>(k - 2) / sxx) : 0.0;
  return f;
}

double effective_tolerance(double expected_exponent, double declared_tol,
                           const PowerFit& fit) {
  if (std::abs(expected_exponent) <= kNearZeroExponent)
    return declared_tol + fit.confidence();
  return declared_tol;
}

bool exponent_in_band(double expected_exponent, double declared_tol,
                      const PowerFit& fit) {
  return std::abs(fit.exponent - expected_exponent) <=
         effective_tolerance(expected_exponent, declared_tol, fit);
}

}  // namespace ule::lab
