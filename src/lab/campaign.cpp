#include "lab/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <stdexcept>
#include <thread>

#include "net/rng.hpp"
#include "net/worker_pool.hpp"

namespace ule::lab {

namespace {

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  std::uint64_t sm = h ^ v;
  return splitmix64(sm);
}

std::uint64_t mix_string(std::uint64_t h, const std::string& s) {
  for (const char c : s) h = mix(h, static_cast<unsigned char>(c));
  return mix(h, s.size());
}

const ParamSpec* find_spec(const FamilyInfo& fam, const char* name) {
  for (const ParamSpec& p : fam.params)
    if (p.name == name) return &p;
  return nullptr;
}

std::uint64_t isqrt(std::uint64_t v) {
  std::uint64_t r = static_cast<std::uint64_t>(std::sqrt(static_cast<double>(v)));
  while (r * r > v) --r;
  while ((r + 1) * (r + 1) <= v) ++r;
  return r;
}

/// One replicate's raw outcome, filled in by a worker.
struct RunSlot {
  std::uint64_t seed = 0;
  std::uint64_t rounds = 0, messages = 0, bits = 0;
  std::uint64_t n = 0;  ///< actual instance size (ladder_params may round)
  std::uint64_t m = 0;
  std::uint32_t diameter = 0;
  double wall_ms = 0;
  bool ran = false;  ///< run_scenario returned (counters are real, not zeros)
  std::vector<std::string> violations;
  bool has_metrics = false;  ///< replicate 0 under CampaignConfig::metrics
  MetricsSnapshot metrics;
};

/// 0-based index of the ceil(0.95·k)-th order statistic (k >= 1).
std::size_t p95_index(std::size_t k) { return (95 * k + 99) / 100 - 1; }

MetricStats order_stats(std::vector<std::uint64_t> v) {
  std::sort(v.begin(), v.end());
  MetricStats s;
  s.median = v[(v.size() - 1) / 2];
  s.p95 = v[p95_index(v.size())];
  s.max = v.back();
  return s;
}

WallStats wall_stats(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  WallStats s;
  s.median_ms = v[(v.size() - 1) / 2];
  s.p95_ms = v[p95_index(v.size())];
  s.max_ms = v.back();
  return s;
}

bool selected(const std::vector<std::string>& filter, const std::string& key) {
  if (filter.empty()) return true;
  return std::find(filter.begin(), filter.end(), key) != filter.end();
}

}  // namespace

std::size_t CampaignResult::failed_fits() const {
  std::size_t k = 0;
  for (const CurveResult& c : curves)
    for (const FitOutcome& f : c.fits)
      if (!f.pass) ++k;
  return k;
}

std::size_t CampaignResult::violation_count() const {
  std::size_t k = 0;
  for (const CurveResult& c : curves)
    for (const CellResult& cell : c.cells) k += cell.violations.size();
  return k;
}

ScenarioParams ladder_params(const FamilyInfo& fam, std::uint64_t n) {
  const auto one = [&](const char* a, std::uint64_t va) {
    return ScenarioParams{{a, va}};
  };
  const auto two = [&](const char* a, std::uint64_t va, const char* b,
                       std::uint64_t vb) {
    return ScenarioParams{{a, va}, {b, vb}};
  };

  if (fam.params.size() == 1 && fam.params[0].name == "n") return one("n", n);
  if (fam.name == "gnm") {
    const std::uint64_t full = n * (n - 1) / 2;
    return two("n", n, "m", std::clamp<std::uint64_t>(3 * n, n - 1, full));
  }
  if (fam.name == "tree") return two("n", n, "arity", 2);
  if (fam.name == "regular") {
    std::uint64_t nn = std::max<std::uint64_t>(n, 6);
    if ((nn * 4) % 2 != 0) ++nn;  // d = 4 keeps n*d even for every n
    return two("n", nn, "d", 4);
  }
  if (fam.name == "grid" || fam.name == "torus") {
    const std::uint64_t side = std::max<std::uint64_t>(isqrt(n), 3);
    return two("rows", side, "cols", side);
  }
  if (fam.name == "bipartite") {
    const std::uint64_t half = std::max<std::uint64_t>(n / 2, 1);
    return two("a", half, "b", std::max<std::uint64_t>(n - half, 1));
  }
  if (fam.name == "hypercube") {
    std::uint64_t dim = 1;
    while ((std::uint64_t{1} << (dim + 1)) <= n) ++dim;
    return one("dim", dim);
  }
  throw std::invalid_argument("family \"" + fam.name +
                              "\" has no n-ladder convention");
}

std::uint64_t default_nominal_n(bool quick) { return quick ? 96 : 256; }

std::uint64_t default_loss_n(bool quick) { return quick ? 48 : 96; }

std::vector<std::uint64_t> default_loss_ladder(bool quick) {
  // x = 1000/(1000 - drop_pm) spans [1, 2.5]: a narrow log range, so the
  // full ladder keeps five rungs for fit stability.  600‰ is the ceiling —
  // see default_loss_ladder's doc comment for the give-up math.
  return quick ? std::vector<std::uint64_t>{0, 200, 400, 600}
               : std::vector<std::uint64_t>{0, 150, 300, 450, 600};
}

std::vector<std::uint64_t> default_diameter_ladder(const FamilyInfo& fam,
                                                   bool quick,
                                                   std::uint64_t nominal_n) {
  if (!fam.diameter_ladder.has_value())
    throw std::invalid_argument("family \"" + fam.name +
                                "\" has no diameter-ladder convention");
  const DiameterLadder& dl = *fam.diameter_ladder;
  // Rungs start at 8: every protocol pays a few additive pacing/echo rounds,
  // and at D = 4 that constant dominates the log-log slope.
  const std::vector<std::uint64_t> base =
      quick ? std::vector<std::uint64_t>{8, 16, 32, 48}
            : std::vector<std::uint64_t>{8, 16, 32, 64, 128};
  std::vector<std::uint64_t> out;
  for (const std::uint64_t d : base) {
    if (d < dl.min_d || d > dl.max_d) continue;
    if (d > nominal_n / 2) continue;  // keep the clique blobs non-degenerate
    out.push_back(d);
  }
  return out;
}

std::vector<std::uint64_t> default_ladder(const FamilyInfo& fam, bool quick) {
  // Complete instances are Θ(n²) edges, so their ladder tops out lower.
  std::vector<std::uint64_t> base;
  if (fam.complete)
    // The quick ladder starts at 32: the sublinear band's log^{3/2} factor
    // keeps the local slope near 1 below that, drowning the √n shape.
    base = quick ? std::vector<std::uint64_t>{32, 64, 128, 256}
                 : std::vector<std::uint64_t>{32, 64, 128, 256, 512};
  else
    base = quick ? std::vector<std::uint64_t>{24, 48, 96, 192}
                 : std::vector<std::uint64_t>{64, 128, 256, 512, 1024, 2048};

  // Clamp to the family's declared size range (the single size param when
  // present; ladder_params handles multi-param families within these sizes).
  const ParamSpec* spec = find_spec(fam, "n");
  std::vector<std::uint64_t> out;
  for (const std::uint64_t n : base) {
    if (spec != nullptr && (n < spec->lo || n > spec->hi)) continue;
    out.push_back(n);
  }
  return out;
}

std::uint64_t replicate_seed(std::uint64_t master, const std::string& protocol,
                             const std::string& family,
                             const std::string& axis, std::uint64_t rung,
                             std::size_t replicate) {
  std::uint64_t h = mix(master, 0xC0A1B2C3D4E5F607ULL);
  h = mix_string(h, protocol);
  h = mix_string(h, family);
  h = mix_string(h, axis);
  h = mix(h, rung);
  h = mix(h, replicate);
  return h;
}

CampaignResult run_campaign(const ProtocolRegistry& protocols,
                            const FamilyRegistry& families,
                            const CampaignConfig& cfg, std::ostream* log) {
  if (cfg.replicates == 0)
    throw std::invalid_argument("campaign needs >= 1 replicate");

  CampaignResult res;
  res.master_seed = cfg.master_seed;
  res.replicates = cfg.replicates;

  // --- enumerate curves and their ladders -------------------------------
  const std::uint64_t nominal =
      cfg.nominal_n != 0 ? cfg.nominal_n : default_nominal_n(cfg.quick);
  struct Curve {
    const ProtocolInfo* proto;
    const FamilyInfo* fam;
    std::string axis;
    std::vector<GrowthExpectation> expects;
    std::vector<std::uint64_t> ladder;
    /// Diameter axis only: per-rung params + declared exact diameter.
    std::vector<DiameterRung> rungs;
  };
  std::vector<Curve> curves;
  for (const ProtocolInfo& p : protocols.all()) {
    if (!selected(cfg.protocols, p.name)) continue;
    for (const GrowthExpectation& e : p.growth) {
      if (!selected(cfg.families, e.family)) continue;
      if (e.axis != "n" && e.axis != "diameter" && e.axis != "loss")
        throw std::invalid_argument("growth expectation " + p.name + " x " +
                                    e.family + " declares unknown axis \"" +
                                    e.axis + "\"");
      if (e.axis == "loss" && !p.reliable_transport)
        throw std::invalid_argument(
            "growth expectation " + p.name + " x " + e.family +
            " declares the loss axis, but the protocol has no reliable "
            "transport — an unwrapped run under drop has no retransmit "
            "overhead to fit");
      const FamilyInfo& fam = families.at(e.family);
      auto it = std::find_if(curves.begin(), curves.end(), [&](const Curve& c) {
        return c.proto == &p && c.fam == &fam && c.axis == e.axis;
      });
      if (it == curves.end()) {
        Curve c;
        c.proto = &p;
        c.fam = &fam;
        c.axis = e.axis;
        if (e.axis == "diameter") {
          if (!fam.diameter_ladder.has_value())
            throw std::invalid_argument(
                "curve " + p.name + " x " + fam.name +
                " declares the diameter axis, but the family has no "
                "diameter-ladder convention");
          const DiameterLadder& dl = *fam.diameter_ladder;
          c.ladder = cfg.d_ladder.empty()
                         ? default_diameter_ladder(fam, cfg.quick, nominal)
                         : cfg.d_ladder;
          std::erase_if(c.ladder, [&](std::uint64_t d) {
            return d < dl.min_d || d > dl.max_d;
          });
          for (const std::uint64_t d : c.ladder)
            c.rungs.push_back(dl.rung(nominal, d));
        } else if (e.axis == "loss") {
          // Fixed instance, growing drop probability: every rung reuses the
          // same shape params; the ladder values are drop_pm, not sizes.
          c.ladder = cfg.loss_ladder.empty() ? default_loss_ladder(cfg.quick)
                                             : cfg.loss_ladder;
          std::erase_if(c.ladder,
                        [](std::uint64_t pm) { return pm >= 700; });
          const std::uint64_t loss_n =
              cfg.loss_n != 0 ? cfg.loss_n : default_loss_n(cfg.quick);
          for (std::size_t i = 0; i < c.ladder.size(); ++i)
            c.rungs.push_back(DiameterRung{ladder_params(fam, loss_n), 0});
        } else {
          c.ladder = cfg.ladder.empty() ? default_ladder(fam, cfg.quick)
                                        : cfg.ladder;
          if (const ParamSpec* spec = find_spec(fam, "n"); spec != nullptr)
            std::erase_if(c.ladder, [&](std::uint64_t n) {
              return n < spec->lo || n > spec->hi;
            });
          for (const std::uint64_t n : c.ladder)
            c.rungs.push_back(DiameterRung{ladder_params(fam, n), 0});
        }
        if (c.ladder.size() < 2)
          throw std::invalid_argument("curve " + p.name + " x " + fam.name +
                                      " [" + c.axis +
                                      "] has a ladder of < 2 valid rungs");
        curves.push_back(std::move(c));
        it = curves.end() - 1;
      }
      it->expects.push_back(e);
    }
  }
  if (curves.empty())
    throw std::invalid_argument(
        "no growth curves selected — check the protocol/family filters "
        "against the registry's declared growth bands (complexity_lab "
        "--list-registry)");

  // --- flatten into one work list ---------------------------------------
  struct Item {
    std::size_t curve, cell, rep;
    Scenario scenario;
  };
  std::vector<Item> items;
  for (std::size_t ci = 0; ci < curves.size(); ++ci) {
    const Curve& c = curves[ci];
    for (std::size_t li = 0; li < c.ladder.size(); ++li) {
      for (std::size_t r = 0; r < cfg.replicates; ++r) {
        Scenario s;
        s.family = c.fam->name;
        s.params = c.rungs[li].params;
        s.protocol = c.proto->name;
        s.knowledge = c.proto->min_knowledge;
        s.wakeup = WakeupKind::Simultaneous;
        s.seed = replicate_seed(cfg.master_seed, c.proto->name, c.fam->name,
                                c.axis, c.ladder[li], r);
        if (c.axis == "loss" && c.ladder[li] != 0) {
          // The rung IS the fault knob: a seeded drop-only adversary whose
          // coin stream is domain-separated from the run seed.  Rung 0 stays
          // adversary-off so the baseline cell is the fault-free cost.
          s.adversary.drop_pm = c.ladder[li];
          s.adversary.seed = mix(s.seed, 0xAD5EEDD207ULL);
        }
        s.threads = 1;
        items.push_back(Item{ci, li, r, std::move(s)});
      }
    }
  }
  res.total_runs = items.size();

  // --- execute replicate-parallel on the worker pool --------------------
  // Workers claim runs off a shared counter; slots are preassigned by item
  // index, so the schedule never influences aggregation order.
  ScenarioRunConfig run_cfg = cfg.run;
  run_cfg.check_determinism = false;
  // Telemetry only on replicate 0 (per-cell metrics, not per-replicate): the
  // per-item config below switches it on where items[i].rep == 0.
  ScenarioRunConfig metrics_cfg = run_cfg;
  metrics_cfg.metrics.enabled = true;
  std::vector<RunSlot> slots(items.size());
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const unsigned workers = cfg.threads == 0 ? hw : cfg.threads;
  std::atomic<std::size_t> next{0};
  WorkerPool pool(workers);
  pool.run([&](unsigned) {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= items.size()) return;
      RunSlot& slot = slots[i];
      slot.seed = items[i].scenario.seed;
      const auto t0 = std::chrono::steady_clock::now();
      const bool want_metrics = cfg.metrics && items[i].rep == 0;
      try {
        const ScenarioOutcome out =
            run_scenario(protocols, families, items[i].scenario,
                         want_metrics ? metrics_cfg : run_cfg);
        slot.rounds = out.report.run.rounds;
        slot.messages = out.report.run.messages;
        slot.bits = out.report.run.bits;
        slot.n = out.shape.n;
        slot.m = out.shape.m;
        slot.diameter = out.shape.diameter;
        slot.ran = true;
        slot.violations = out.violations;
        if (want_metrics && out.report.run.metrics) {
          slot.has_metrics = true;
          slot.metrics = *out.report.run.metrics;
        }
      } catch (const std::exception& e) {
        slot.violations.push_back(std::string("exception: ") + e.what());
      }
      const auto t1 = std::chrono::steady_clock::now();
      slot.wall_ms =
          std::chrono::duration<double, std::milli>(t1 - t0).count();
    }
  });

  // --- aggregate per cell, fit per curve --------------------------------
  std::size_t item_base = 0;
  for (std::size_t ci = 0; ci < curves.size(); ++ci) {
    const Curve& c = curves[ci];
    CurveResult cr;
    cr.protocol = c.proto->name;
    cr.family = c.fam->name;
    cr.axis = c.axis;
    for (std::size_t li = 0; li < c.ladder.size(); ++li) {
      CellResult cell;
      // Fallbacks for a rung whose replicate-0 run died before building a
      // graph (the violation fails the campaign either way): the nominal n
      // rung on the n-axis, the convention's declared exact diameter on the
      // diameter axis.
      cell.n = c.axis == "n" ? c.ladder[li] : 0;
      cell.diameter = static_cast<std::uint32_t>(c.rungs[li].diameter);
      if (c.axis == "loss") cell.drop_pm = c.ladder[li];
      cell.replicates = cfg.replicates;
      std::vector<std::uint64_t> rounds, messages, bits;
      std::vector<double> wall;
      for (std::size_t r = 0; r < cfg.replicates; ++r) {
        const RunSlot& slot = slots[item_base + r];
        if (r == 0 && slot.n != 0) {
          // The conventions may round the target (grid squares, regular
          // parity, cliquecycle's D' = 4*ceil(D/4)): cells and fits use the
          // ACTUAL instance, falling back to the declared rung only when the
          // run died before building a graph.
          cell.n = slot.n;
          cell.m = slot.m;
          cell.diameter = slot.diameter;
          if (slot.has_metrics) {
            cell.has_metrics = true;
            cell.metrics = slot.metrics;
          }
        }
        // A replicate that died in an exception has no counters; folding its
        // zeros into the order statistics would silently corrupt the medians
        // the fits consume.  The recorded violation already fails the
        // campaign; the stats stay honest over the replicates that ran.
        if (slot.ran) {
          rounds.push_back(slot.rounds);
          messages.push_back(slot.messages);
          bits.push_back(slot.bits);
        }
        wall.push_back(slot.wall_ms);
        for (const std::string& v : slot.violations)
          cell.violations.push_back("s=" + std::to_string(slot.seed) + ": " + v);
      }
      item_base += cfg.replicates;
      if (!rounds.empty()) {
        cell.rounds = order_stats(std::move(rounds));
        cell.messages = order_stats(std::move(messages));
        cell.bits = order_stats(std::move(bits));
      }
      cell.wall = wall_stats(std::move(wall));
      cr.cells.push_back(std::move(cell));
    }

    for (const GrowthExpectation& e : c.expects) {
      std::vector<double> x, y;
      for (const CellResult& cell : cr.cells) {
        const MetricStats& ms = e.metric == "rounds" ? cell.rounds
                                : e.metric == "bits" ? cell.bits
                                                     : cell.messages;
        double ax;
        if (c.axis == "diameter")
          ax = static_cast<double>(std::max<std::uint32_t>(cell.diameter, 1));
        else if (c.axis == "loss")
          // Expected transmissions per delivered frame under i.i.d. drop.
          ax = 1000.0 / static_cast<double>(1000 - cell.drop_pm);
        else
          ax = static_cast<double>(std::max<std::uint64_t>(cell.n, 1));
        x.push_back(ax);
        y.push_back(static_cast<double>(std::max<std::uint64_t>(ms.median, 1)));
      }
      FitOutcome fo;
      fo.expect = e;
      // Pre-check the ladder's dynamic range: the family conventions round
      // rungs (grid squares, regular parity, hypercube powers of two), so a
      // short quick ladder can collapse to ONE distinct x value — and
      // fit_power_law throws std::invalid_argument on zero x-variance, which
      // would abort the whole campaign over one degenerate curve.  Emit a
      // skipped-fit row with the reason instead; skipped fits never fail.
      const auto [x_min, x_max] = std::minmax_element(x.begin(), x.end());
      if (*x_max <= *x_min) {
        fo.skipped = true;
        fo.pass = true;
        fo.fit.points = x.size();
        char rbuf[160];
        std::snprintf(rbuf, sizeof(rbuf),
                      "zero dynamic range: all %zu rungs collapse to %s=%g "
                      "after convention rounding",
                      x.size(),
                      c.axis == "diameter" ? "D"
                      : c.axis == "loss"   ? "1/(1-p)"
                                           : "n",
                      *x_min);
        fo.reason = rbuf;
      } else {
        fo.fit = fit_power_law(x, y);
        fo.pass = exponent_in_band(e.exponent, e.tol, fo.fit);
      }
      cr.fits.push_back(std::move(fo));
    }

    if (log != nullptr) {
      for (const FitOutcome& f : cr.fits) {
        char buf[256];
        if (f.skipped) {
          std::snprintf(buf, sizeof(buf), "%-20s x %-14s %-8s SKIP (%s)\n",
                        cr.protocol.c_str(), cr.family.c_str(),
                        f.expect.metric.c_str(), f.reason.c_str());
        } else {
          std::snprintf(buf, sizeof(buf),
                        "%-20s x %-14s %-8s ~ %s^%.3f (+-%.3f)  expected "
                        "%.2f+-%.2f  R2=%.4f  %s\n",
                        cr.protocol.c_str(), cr.family.c_str(),
                        f.expect.metric.c_str(),
                        cr.axis == "diameter" ? "D"
                        : cr.axis == "loss"   ? "1/(1-p)"
                                              : "n",
                        f.fit.exponent,
                        f.fit.confidence(), f.expect.exponent, f.expect.tol,
                        f.fit.r2, f.pass ? "PASS" : "FAIL");
        }
        *log << buf;
      }
      for (const CellResult& cell : cr.cells)
        for (const std::string& v : cell.violations)
          *log << "  VIOLATION " << cr.protocol << " x " << cr.family
               << " n=" << cell.n << " " << v << "\n";
      log->flush();
    }
    res.curves.push_back(std::move(cr));
  }
  return res;
}

}  // namespace ule::lab
