#include "lab/trend.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <utility>

namespace ule::lab {

namespace {

// ---------------------------------------------------------------------------
// A minimal parser for the flat document bench_json emits: one top-level
// object with a "bench" string and a "rows" array of flat objects whose
// values are strings, numbers or booleans.  Nothing nests deeper, so this is
// deliberately not a general JSON parser — anything outside that shape is a
// parse error, which is exactly what we want from a gate input.
// ---------------------------------------------------------------------------

struct Value {
  enum class Kind { Str, Num, Bool } kind = Kind::Num;
  std::string str;
  double num = 0;
  bool boolean = false;
};

using Row = std::map<std::string, Value>;

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  /// Parse the whole document; returns the rows array.
  std::vector<Row> parse_document() {
    expect('{');
    std::vector<Row> rows;
    bool saw_rows = false;
    for (;;) {
      const std::string key = parse_string();
      expect(':');
      if (key == "rows") {
        rows = parse_rows();
        saw_rows = true;
      } else {
        parse_scalar();  // "bench" and any future top-level scalar
      }
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      break;
    }
    expect('}');
    if (!saw_rows) fail("document has no \"rows\" array");
    return rows;
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    throw std::invalid_argument("BENCH_lab.json parse error at offset " +
                                std::to_string(pos_) + ": " + what);
  }
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
            s_[pos_] == '\r'))
      ++pos_;
  }
  char peek() {
    skip_ws();
    if (pos_ >= s_.size()) fail("unexpected end of document");
    return s_[pos_];
  }
  void expect(char c) {
    if (peek() != c)
      fail(std::string("expected '") + c + "', got '" + s_[pos_] + "'");
    ++pos_;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\' && pos_ + 1 < s_.size()) ++pos_;
      out += s_[pos_++];
    }
    if (pos_ >= s_.size()) fail("unterminated string");
    ++pos_;  // closing quote
    return out;
  }

  Value parse_scalar() {
    Value v;
    const char c = peek();
    if (c == '"') {
      v.kind = Value::Kind::Str;
      v.str = parse_string();
      return v;
    }
    if (c == 't' || c == 'f') {
      const char* word = c == 't' ? "true" : "false";
      for (const char* p = word; *p != '\0'; ++p, ++pos_) {
        if (pos_ >= s_.size() || s_[pos_] != *p) fail("bad literal");
      }
      v.kind = Value::Kind::Bool;
      v.boolean = c == 't';
      return v;
    }
    std::size_t end = pos_;
    while (end < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[end])) ||
            s_[end] == '-' || s_[end] == '+' || s_[end] == '.' ||
            s_[end] == 'e' || s_[end] == 'E'))
      ++end;
    if (end == pos_) fail("expected a value");
    v.kind = Value::Kind::Num;
    try {
      v.num = std::stod(s_.substr(pos_, end - pos_));
    } catch (const std::exception&) {
      fail("malformed number \"" + s_.substr(pos_, end - pos_) + "\"");
    }
    pos_ = end;
    return v;
  }

  Row parse_row() {
    expect('{');
    Row row;
    if (peek() == '}') {
      ++pos_;
      return row;
    }
    for (;;) {
      std::string key = parse_string();
      expect(':');
      row.emplace(std::move(key), parse_scalar());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return row;
    }
  }

  std::vector<Row> parse_rows() {
    expect('[');
    std::vector<Row> rows;
    if (peek() == ']') {
      ++pos_;
      return rows;
    }
    for (;;) {
      rows.push_back(parse_row());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return rows;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Comparison
// ---------------------------------------------------------------------------

std::string get_str(const Row& row, const std::string& key,
                    const std::string& fallback = "") {
  const auto it = row.find(key);
  if (it == row.end() || it->second.kind != Value::Kind::Str) return fallback;
  return it->second.str;
}

bool get_num(const Row& row, const std::string& key, double* out) {
  const auto it = row.find(key);
  if (it == row.end() || it->second.kind != Value::Kind::Num) return false;
  *out = it->second.num;
  return true;
}

/// Key of a row for baseline<->current matching ("" = not a compared kind).
/// Pre-axis documents (PR 4) carried no axis field; default to "n" so an old
/// baseline stays comparable after the axis column lands.
std::string row_key(const Row& row) {
  const std::string kind = get_str(row, "kind");
  const std::string axis = get_str(row, "axis", "n");
  if (kind == "cell") {
    // Both coordinates: on the n-axis the diameter can repeat across rungs
    // (complete graphs), on the diameter axis the ~fixed nominal size can —
    // together they are unique on either ladder.
    double n = 0, d = 0, pm = 0;
    get_num(row, "n", &n);
    get_num(row, "diameter", &d);
    // Loss-axis rungs share a single shape; drop_pm is the coordinate that
    // separates them (absent or 0 everywhere else — and on the ladder's own
    // fault-free rung, which n+D already make unique).
    get_num(row, "drop_pm", &pm);
    std::string key = "cell " + get_str(row, "protocol") + " x " +
                      get_str(row, "family") + " [" + axis + "] n=" +
                      std::to_string(static_cast<std::uint64_t>(n)) +
                      " D=" + std::to_string(static_cast<std::uint64_t>(d));
    if (pm != 0)
      key += " p=" + std::to_string(static_cast<std::uint64_t>(pm));
    return key;
  }
  if (kind == "fit") {
    return "fit " + get_str(row, "protocol") + " x " + get_str(row, "family") +
           " [" + axis + "] " + get_str(row, "metric");
  }
  return "";
}

/// The deterministic numeric fields of a row kind (wall-clock fields are
/// deliberately absent).
const std::vector<std::string>& compared_fields(const std::string& kind) {
  // n and diameter are part of the row key; a shape change surfaces as a
  // missing/new row pair rather than a field drift.
  static const std::vector<std::string> cell = {
      "m",           "replicates",  "rounds_median",    "rounds_p95",
      "rounds_max",  "messages_median", "messages_p95", "messages_max",
      "bits_median", "bits_p95",    "bits_max"};
  static const std::vector<std::string> fit = {"points", "expected", "tol"};
  static const std::vector<std::string> none;
  if (kind == "cell") return cell;
  if (kind == "fit") return fit;
  return none;
}

}  // namespace

TrendReport compare_lab_trend(const std::string& baseline_json,
                              const std::string& current_json,
                              const TrendConfig& cfg) {
  const std::vector<Row> base = Parser(baseline_json).parse_document();
  const std::vector<Row> cur = Parser(current_json).parse_document();

  TrendReport rep;

  // --- meta: incomparable campaigns are a configuration change -----------
  const auto find_meta = [](const std::vector<Row>& rows) -> const Row* {
    for (const Row& r : rows)
      if (get_str(r, "kind") == "meta") return &r;
    return nullptr;
  };
  const Row* mb = find_meta(base);
  const Row* mc = find_meta(cur);
  if (mb == nullptr || mc == nullptr) {
    rep.errors.push_back("missing meta row (baseline and current must both "
                         "be complexity_lab documents)");
    return rep;
  }
  for (const char* key : {"master_seed", "replicates"}) {
    double vb = 0, vc = 0;
    get_num(*mb, key, &vb);
    get_num(*mc, key, &vc);
    if (vb != vc)
      rep.errors.push_back(
          std::string("meta: ") + key + " differs (baseline " +
          std::to_string(static_cast<std::uint64_t>(vb)) + ", current " +
          std::to_string(static_cast<std::uint64_t>(vc)) +
          ") — the campaigns are incomparable; regenerate the baseline");
  }
  if (!rep.errors.empty()) return rep;

  // --- index the current rows by key --------------------------------------
  std::map<std::string, const Row*> cur_by_key;
  for (const Row& r : cur) {
    const std::string key = row_key(r);
    if (!key.empty()) cur_by_key[key] = &r;
  }

  std::map<std::string, bool> matched;
  for (const auto& [key, row] : cur_by_key) matched[key] = false;

  for (const Row& b : base) {
    const std::string key = row_key(b);
    if (key.empty()) continue;
    const auto it = cur_by_key.find(key);
    if (it == cur_by_key.end()) {
      (cfg.allow_missing ? rep.notes : rep.errors)
          .push_back("missing from current: " + key);
      continue;
    }
    matched[key] = true;
    const Row& c = *it->second;
    const std::string kind = get_str(b, "kind");
    if (kind == "cell")
      ++rep.cells_compared;
    else
      ++rep.fits_compared;

    for (const std::string& field : compared_fields(kind)) {
      double vb = 0, vc = 0;
      const bool hb = get_num(b, field, &vb), hc = get_num(c, field, &vc);
      if (!hb || !hc) {
        if (hb != hc)
          rep.errors.push_back(key + ": field " + field +
                               " present in only one document");
        continue;
      }
      const double denom = std::max(std::abs(vb), 1.0);
      if (vb != vc && std::abs(vb - vc) > cfg.counter_rel_tol * denom)
        rep.errors.push_back(key + ": " + field + " drifted " +
                             std::to_string(vb) + " -> " +
                             std::to_string(vc));
    }

    if (kind == "fit") {
      // exponent and its stderr share the float tolerance (the stderr feeds
      // the near-zero band verdict, so it is load-bearing too).
      for (const char* field : {"exponent", "stderr"}) {
        double eb = 0, ec = 0;
        if (get_num(b, field, &eb) && get_num(c, field, &ec) &&
            std::abs(eb - ec) > cfg.exponent_tol)
          rep.errors.push_back(key + ": " + field + " drifted " +
                               std::to_string(eb) + " -> " +
                               std::to_string(ec) + " (tol " +
                               std::to_string(cfg.exponent_tol) + ")");
      }
      const auto pass_of = [](const Row& r) {
        const auto it2 = r.find("pass");
        return it2 != r.end() && it2->second.kind == Value::Kind::Bool &&
               it2->second.boolean;
      };
      if (pass_of(b) && !pass_of(c))
        rep.errors.push_back(key + ": was in band, now FAILS its band");
      if (!pass_of(b) && pass_of(c))
        rep.notes.push_back(key + ": was out of band, now passes");
    }
    if (kind == "cell") {
      const auto ok_of = [](const Row& r) {
        const auto it2 = r.find("ok");
        return it2 == r.end() || it2->second.kind != Value::Kind::Bool ||
               it2->second.boolean;
      };
      if (ok_of(b) && !ok_of(c))
        rep.errors.push_back(key + ": cell now has conformance violations");
    }
  }

  for (const auto& [key, seen] : matched)
    if (!seen) rep.notes.push_back("new in current: " + key);

  return rep;
}

}  // namespace ule::lab
