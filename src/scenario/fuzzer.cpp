#include "scenario/fuzzer.hpp"

#include <algorithm>
#include <chrono>
#include <ostream>
#include <stdexcept>

namespace ule {

namespace {

KnowledgeGrant draw_knowledge(Rng& rng, KnowledgeGrant min) {
  // Uniform over the grants at or above the protocol's minimum.
  const auto lo = static_cast<std::uint64_t>(min);
  return static_cast<KnowledgeGrant>(
      rng.in_range(lo, static_cast<std::uint64_t>(KnowledgeGrant::NMD)));
}

/// Size parameter ("n"-ish) of a parameterization, for logging only.
std::uint64_t rough_n(const ScenarioParams& ps) {
  std::uint64_t prod = 1;
  for (const auto& [k, v] : ps) {
    if (k == "n") return v;
    if (k == "rows" || k == "cols" || k == "a" || k == "b") prod *= v;
    if (k == "dim") return std::uint64_t{1} << v;
  }
  return prod;
}

/// Draw an adversary exercising a non-empty subset of `safe` (never a class
/// outside it: the runner would reject the scenario as a config error).
/// Knob strengths stay moderate — the goal is a schedule the protocol
/// declared it survives, not a denial-of-service.
ScenarioAdversary draw_adversary(Rng& rng, std::uint8_t safe,
                                 std::size_t max_n, double churn_fraction,
                                 bool allow_churn) {
  std::vector<std::uint8_t> declared;
  for (const std::uint8_t c : {faults::kDelay, faults::kDrop,
                               faults::kDuplicate, faults::kReorder,
                               faults::kCrash}) {
    if (safe & c) declared.push_back(c);
  }
  std::uint8_t pick = 0;
  for (const std::uint8_t c : declared)
    if (rng.below(2) == 0) pick |= c;
  if (pick == 0) pick = declared[rng.below(declared.size())];

  ScenarioAdversary a;
  if (pick & faults::kDelay) a.max_delay = rng.in_range(1, 3);
  if (pick & faults::kDrop) a.drop_pm = rng.in_range(1, 300);
  if (pick & faults::kDuplicate) a.dup_pm = rng.in_range(1, 300);
  if (pick & faults::kReorder) a.reorder_pm = rng.in_range(1, 500);
  if (pick & faults::kCrash) {
    ScenarioCrash c;
    c.node = rng.below(std::max<std::uint64_t>(1, max_n));
    c.at = rng.in_range(1, 6);
    // Churn upgrade: crash-stop becomes a bounded rebirth interval inside
    // the runner's liveness window (crash at round 0 — before the node's
    // first step, so the replay a reborn node receives is duplicate-free
    // at the application layer; recover a few rounds out).  Gated so a
    // zero fraction leaves the draw stream bit-identical to the crash-stop
    // fuzzer.
    if (allow_churn && churn_fraction > 0 &&
        rng.uniform01() < churn_fraction) {
      c.at = 0;
      c.recover = rng.in_range(1, 8);
    }
    a.crashes = {c};
  }
  // Only coin-using knobs get a seed: a crash-only schedule draws no coins,
  // and the seed would not survive the token (no a= segment to carry it).
  if (a.any_faults()) a.seed = rng.in_range(1, std::uint64_t{1} << 32);
  return a;
}

bool still_fails(const ProtocolRegistry& protocols,
                 const FamilyRegistry& families, const Scenario& s,
                 const ScenarioRunConfig& cfg) {
  try {
    return !run_scenario(protocols, families, s, cfg).ok();
  } catch (const std::invalid_argument&) {
    return false;  // candidate is not even a valid scenario
  }
}

}  // namespace

Scenario draw_scenario(Rng& rng, const ProtocolRegistry& protocols,
                       const FamilyRegistry& families, std::size_t max_n,
                       double threads_fraction, double adversary_fraction,
                       const std::string& protocol_filter,
                       double churn_fraction) {
  const auto& all = protocols.all();
  std::vector<const ProtocolInfo*> protos;
  for (const ProtocolInfo& p : all)
    if (protocol_filter.empty() ||
        p.name.find(protocol_filter) != std::string::npos)
      protos.push_back(&p);
  if (protos.empty())
    throw std::invalid_argument(
        protocol_filter.empty()
            ? std::string("empty protocol registry")
            : "no protocol matches filter \"" + protocol_filter + "\"");
  const ProtocolInfo& proto = *protos[rng.below(protos.size())];

  // Compatible family: complete-only protocols draw from complete families.
  const auto& fams = families.all();
  std::vector<const FamilyInfo*> eligible;
  for (const FamilyInfo& f : fams) {
    if (!proto.needs_complete || f.complete) eligible.push_back(&f);
  }
  if (eligible.empty())
    throw std::invalid_argument("no family compatible with protocol \"" +
                                proto.name + "\"");
  const FamilyInfo& fam = *eligible[rng.below(eligible.size())];

  Scenario s;
  s.family = fam.name;
  s.params = fam.draw(rng, max_n);
  s.protocol = proto.name;
  s.knowledge = draw_knowledge(rng, proto.min_knowledge);
  if (proto.wakeup_tolerant) {
    const std::uint64_t pick = rng.below(10);
    if (pick < 5) {
      s.wakeup = WakeupKind::Simultaneous;
    } else if (pick < 8) {
      s.wakeup = WakeupKind::Random;
      s.wakeup_spread = rng.in_range(1, 2 * std::max<std::uint64_t>(1, max_n));
    } else {
      s.wakeup = WakeupKind::Single;
      s.wakeup_node = rng.below(std::max<std::uint64_t>(1, max_n));
    }
  }
  s.seed = rng.in_range(1, std::uint64_t{1} << 48);
  if (rng.uniform01() < threads_fraction)
    s.threads = static_cast<unsigned>(rng.in_range(2, 4));
  if (proto.safe_under != faults::kNone &&
      rng.uniform01() < adversary_fraction)
    s.adversary = draw_adversary(rng, proto.safe_under, max_n, churn_fraction,
                                 proto.live_under_churn);
  // Reliable variants: sometimes override the transport knobs.  rto >= 3
  // keeps retransmissions honest (the fault-free ack round trip is 2
  // rounds, so smaller values would retransmit frames whose acks are still
  // legally in flight); the cap is a small multiple of the rto.
  if (proto.reliable_transport && rng.below(2) == 0) {
    s.reliable.rto = rng.in_range(3, 8);
    s.reliable.cap = s.reliable.rto * rng.in_range(1, 4);
  }
  return s;
}

Scenario shrink_scenario(const ProtocolRegistry& protocols,
                         const FamilyRegistry& families,
                         const Scenario& failing, const ScenarioRunConfig& cfg,
                         std::size_t* steps) {
  constexpr std::size_t kMaxSteps = 64;
  Scenario cur = failing;
  std::size_t adopted = 0;
  const ProtocolInfo& proto = protocols.at(failing.protocol);

  bool progressed = true;
  while (progressed && adopted < kMaxSteps) {
    progressed = false;
    std::vector<Scenario> candidates;

    // 1. Family parameter shrinks (halve / decrement, registry-declared).
    const FamilyInfo* fam = families.find(cur.family);
    if (fam && fam->shrink) {
      for (ScenarioParams& ps : fam->shrink(cur.params)) {
        Scenario c = cur;
        c.params = std::move(ps);
        candidates.push_back(std::move(c));
      }
    }

    // 2. Substitute the structurally simplest families at a small size.
    // Only from a non-simple family — path and ring never substitute for
    // each other, or the walk would oscillate between them forever.
    if (!proto.needs_complete) {
      if (cur.family != "path" && cur.family != "ring") {
        const std::uint64_t small =
            std::clamp<std::uint64_t>(rough_n(cur.params), 3, 12);
        for (const char* simple : {"path", "ring"}) {
          Scenario c = cur;
          c.family = simple;
          c.params = {{"n", small}};
          candidates.push_back(std::move(c));
        }
      }
    } else if (cur.family != "complete") {
      Scenario c = cur;
      c.family = "complete";
      c.params = {{"n", std::clamp<std::uint64_t>(rough_n(cur.params), 2, 12)}};
      candidates.push_back(std::move(c));
    }

    // 3. Drop or weaken the delivery/fault adversary: the whole thing first
    // (is it an adversarial bug at all?), then one knob at a time, then
    // halving the survivors — so the minimal token keeps exactly the faults
    // the failure needs, at roughly the weakest strength that still bites.
    if (cur.adversary.active()) {
      const auto with_adv = [&cur](auto&& mutate) {
        Scenario c = cur;
        mutate(c.adversary);
        if (!c.adversary.active()) c.adversary = ScenarioAdversary{};
        return c;
      };
      candidates.push_back(
          with_adv([](ScenarioAdversary& a) { a = ScenarioAdversary{}; }));
      if (cur.adversary.max_delay > 0)
        candidates.push_back(
            with_adv([](ScenarioAdversary& a) { a.max_delay = 0; }));
      if (cur.adversary.drop_pm > 0)
        candidates.push_back(
            with_adv([](ScenarioAdversary& a) { a.drop_pm = 0; }));
      if (cur.adversary.dup_pm > 0)
        candidates.push_back(
            with_adv([](ScenarioAdversary& a) { a.dup_pm = 0; }));
      if (cur.adversary.reorder_pm > 0)
        candidates.push_back(
            with_adv([](ScenarioAdversary& a) { a.reorder_pm = 0; }));
      // Churn shrinks first drop recover tails (is the rebirth what bites,
      // or just the crash?), then whole intervals, then the schedule.
      for (std::size_t ci = 0; ci < cur.adversary.crashes.size(); ++ci) {
        if (cur.adversary.crashes[ci].recover != kRoundForever)
          candidates.push_back(with_adv([ci](ScenarioAdversary& a) {
            a.crashes[ci].recover = kRoundForever;
          }));
      }
      if (cur.adversary.crashes.size() > 1) {
        for (std::size_t ci = 0; ci < cur.adversary.crashes.size(); ++ci)
          candidates.push_back(with_adv([ci](ScenarioAdversary& a) {
            a.crashes.erase(a.crashes.begin() +
                            static_cast<std::ptrdiff_t>(ci));
          }));
      }
      if (!cur.adversary.crashes.empty())
        candidates.push_back(
            with_adv([](ScenarioAdversary& a) { a.crashes.clear(); }));
      if (cur.adversary.max_delay > 1)
        candidates.push_back(
            with_adv([](ScenarioAdversary& a) { a.max_delay /= 2; }));
      if (cur.adversary.drop_pm > 1)
        candidates.push_back(
            with_adv([](ScenarioAdversary& a) { a.drop_pm /= 2; }));
      if (cur.adversary.dup_pm > 1)
        candidates.push_back(
            with_adv([](ScenarioAdversary& a) { a.dup_pm /= 2; }));
      if (cur.adversary.reorder_pm > 1)
        candidates.push_back(
            with_adv([](ScenarioAdversary& a) { a.reorder_pm /= 2; }));
    }

    // 3b. Drop the reliable-transport override (the auto knobs are the
    // default — a failure that survives this was never about the timeout).
    if (cur.reliable.any()) {
      Scenario c = cur;
      c.reliable = ScenarioReliable{};
      candidates.push_back(std::move(c));
    }

    // 4. Drop the adversarial wakeup schedule — or, when the failure needs
    // it, at least halve the spread.
    if (cur.wakeup != WakeupKind::Simultaneous) {
      Scenario c = cur;
      c.wakeup = WakeupKind::Simultaneous;
      c.wakeup_spread = 0;
      c.wakeup_node = 0;
      candidates.push_back(std::move(c));
      if (cur.wakeup == WakeupKind::Random && cur.wakeup_spread > 1) {
        Scenario h = cur;
        h.wakeup_spread = cur.wakeup_spread / 2;
        candidates.push_back(std::move(h));
      }
    }

    // 5. Drop the thread count (is it a parallelism bug at all?).
    if (cur.threads > 1) {
      Scenario c = cur;
      c.threads = 1;
      candidates.push_back(std::move(c));
    }

    // 6. Reduce the knowledge grant to the protocol's minimum.
    if (cur.knowledge != proto.min_knowledge) {
      Scenario c = cur;
      c.knowledge = proto.min_knowledge;
      candidates.push_back(std::move(c));
    }

    for (Scenario& c : candidates) {
      if (c == cur) continue;
      if (still_fails(protocols, families, c, cfg)) {
        cur = std::move(c);
        ++adopted;
        progressed = true;
        break;
      }
    }
  }

  if (steps) *steps = adopted;
  return cur;
}

FuzzReport run_fuzz(const ProtocolRegistry& protocols,
                    const FamilyRegistry& families, const FuzzConfig& cfg,
                    std::ostream* log) {
  FuzzReport report;
  Rng rng(cfg.master_seed);
  const auto started = std::chrono::steady_clock::now();

  // Envelope stats slots, one per registered protocol (registry order).
  for (const ProtocolInfo& p : protocols.all())
    report.envelope_stats.push_back(EnvelopeStat{p.name, 0, 0, 0});
  const auto stat_of = [&report](const std::string& name) -> EnvelopeStat& {
    for (EnvelopeStat& s : report.envelope_stats) {
      if (s.protocol == name) return s;
    }
    report.envelope_stats.push_back(EnvelopeStat{name, 0, 0, 0});
    return report.envelope_stats.back();
  };

  for (std::size_t i = 0; i < cfg.count; ++i) {
    if (cfg.time_budget_sec > 0) {
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - started;
      if (elapsed.count() > cfg.time_budget_sec) {
        report.time_budget_hit = true;
        if (log)
          *log << "time budget hit after " << report.scenarios_run
               << " scenarios\n";
        break;
      }
    }

    const Scenario s =
        draw_scenario(rng, protocols, families, cfg.max_n,
                      cfg.threads_fraction, cfg.adversary_fraction,
                      cfg.protocol_filter, cfg.churn_fraction);
    const ScenarioOutcome out = run_scenario(protocols, families, s, cfg.run);
    ++report.scenarios_run;
    if (out.report.verdict.unique_leader) ++report.runs_elected;
    const ProtocolInfo& proto = protocols.at(s.protocol);
    if (proto.contract == Contract::MonteCarlo &&
        out.report.verdict.elected == 0)
      ++report.monte_carlo_misses;
    if (s.threads > 1) ++report.determinism_checked;
    if (s.adversary.active()) ++report.adversarial_runs;

    // Envelope headroom calibrates the REGISTERED bounds, which describe the
    // fault-free model; adversarial runs (stretched envelopes) stay out.
    if (!s.adversary.active()) {
      EnvelopeStat& st = stat_of(s.protocol);
      ++st.runs;
      const double rr = static_cast<double>(out.report.run.rounds) /
                        static_cast<double>(proto.round_envelope(out.shape));
      const double mr = static_cast<double>(out.report.run.messages) /
                        static_cast<double>(proto.message_envelope(out.shape));
      st.max_round_ratio = std::max(st.max_round_ratio, rr);
      st.max_message_ratio = std::max(st.max_message_ratio, mr);
    }

    if (!out.ok()) {
      FuzzFailure fail;
      fail.original = s;
      fail.original_violations = out.violations;
      if (log) {
        *log << "FAIL " << s.encode() << "\n";
        for (const std::string& v : out.violations) *log << "  " << v << "\n";
      }
      if (cfg.shrink) {
        fail.minimal = shrink_scenario(protocols, families, s, cfg.run,
                                       &fail.shrink_steps);
        fail.minimal_violations =
            run_scenario(protocols, families, fail.minimal, cfg.run).violations;
        if (log)
          *log << "  shrunk (" << fail.shrink_steps
               << " steps) to: " << fail.minimal.encode() << "\n";
      } else {
        fail.minimal = s;
        fail.minimal_violations = out.violations;
      }
      report.failures.push_back(std::move(fail));
    } else if (log && (i + 1) % 200 == 0) {
      *log << "  ..." << (i + 1) << "/" << cfg.count << " scenarios, "
           << report.failures.size() << " failures\n";
    }
  }

  return report;
}

}  // namespace ule
