// The deterministic conformance fuzzer: draw thousands of Scenarios from one
// master seed, run each through the invariant checker, and shrink any
// failure to a minimal replayable token.
//
// Everything is a pure function of (registries, FuzzConfig): the draw
// sequence, every scenario's run, and the shrinking walk.  A failure report
// therefore always ends in a replay string that reproduces the bug with
// `fuzz_scenarios --replay <token>` (or Scenario::parse + run_scenario).
//
// Shrinking is greedy: from a failing scenario, candidate simplifications
// are tried in a fixed order — family parameter shrinks (halve / decrement,
// from the family registry), substituting the structurally simplest families
// (path, ring) at a small size, dropping or weakening the delivery/fault
// adversary (whole thing first, then one knob at a time, then halving the
// survivors), dropping the adversarial wakeup schedule, dropping the thread
// count, and reducing the knowledge grant to the protocol's minimum.  The
// first candidate that still fails is adopted and the walk restarts; the
// result is a local minimum — every further single-step simplification
// passes.  A failure that NEEDS the adversary therefore keeps its `a=` /
// `f=` token segments, pared down to the knobs that actually bite.

#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "scenario/registry.hpp"
#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"

namespace ule {

struct FuzzConfig {
  std::uint64_t master_seed = 0xF00D5EEDULL;
  std::size_t count = 1000;
  /// Cap on a drawn instance's size parameter (families keep their total
  /// node count around this; dumbbell sides are halved, cliquecycle may
  /// round up to gamma * D').
  std::size_t max_n = 64;
  /// Fraction of scenarios drawn with threads > 1 (the determinism axis
  /// costs a second run).  In [0, 1].
  double threads_fraction = 0.25;
  /// Fraction of scenarios drawn with a delivery/fault adversary.  Drawn
  /// adversaries exercise only classes inside the protocol's safe_under
  /// mask, so every draw is a valid scenario (never a config error).
  double adversary_fraction = 0.25;
  /// Of the scenarios whose adversary draws a crash, the fraction whose
  /// schedule is upgraded to a bounded CHURN interval (crash before the
  /// node ever acked, rebirth within a bounded window).  Only protocols
  /// declaring live_under_churn are upgraded — there the runner enforces
  /// termination through the rebirth; for everything else the draw stays
  /// crash-stop (late recovery can legitimately break a plain protocol's
  /// safety, which would be a false conformance finding).  In [0, 1].
  double churn_fraction = 0.25;
  /// Stop drawing after this many seconds (0 = no budget).  Used by the
  /// nightly time-boxed job; the count still caps the total.
  double time_budget_sec = 0;
  /// Only draw protocols whose name contains this substring ("" = all).
  /// Lets CI aim a dedicated slice at e.g. the `*_reliable` fleet.
  std::string protocol_filter;
  bool shrink = true;
  ScenarioRunConfig run;
};

struct FuzzFailure {
  Scenario original;
  std::vector<std::string> original_violations;
  Scenario minimal;                        ///< == original when !cfg.shrink
  std::vector<std::string> minimal_violations;
  std::size_t shrink_steps = 0;
};

/// Per-protocol envelope headroom, for calibrating the registered bounds.
struct EnvelopeStat {
  std::string protocol;
  std::size_t runs = 0;
  double max_round_ratio = 0;    ///< max over runs of rounds / round_envelope
  double max_message_ratio = 0;  ///< max over runs of messages / msg_envelope
};

struct FuzzReport {
  std::size_t scenarios_run = 0;
  std::size_t runs_elected = 0;        ///< scenarios ending with a unique leader
  std::size_t monte_carlo_misses = 0;  ///< MC scenarios that elected nobody
  std::size_t determinism_checked = 0; ///< scenarios rerun at threads > 1
  std::size_t adversarial_runs = 0;    ///< scenarios drawn with an adversary
  bool time_budget_hit = false;
  std::vector<FuzzFailure> failures;
  std::vector<EnvelopeStat> envelope_stats;

  bool ok() const { return failures.empty(); }
};

/// Draw one valid scenario (protocol, compatible family, params, knowledge
/// >= the protocol's minimum, wakeup it tolerates, seed, threads, and — with
/// probability adversary_fraction — an adversary over a non-empty subset of
/// the protocol's declared-safe fault classes).
Scenario draw_scenario(Rng& rng, const ProtocolRegistry& protocols,
                       const FamilyRegistry& families, std::size_t max_n,
                       double threads_fraction, double adversary_fraction = 0,
                       const std::string& protocol_filter = "",
                       double churn_fraction = 0);

/// Greedily shrink a failing scenario (see file comment).  Returns the
/// minimal still-failing scenario; `steps`, when non-null, receives the
/// number of adopted simplifications.
Scenario shrink_scenario(const ProtocolRegistry& protocols,
                         const FamilyRegistry& families,
                         const Scenario& failing, const ScenarioRunConfig& cfg,
                         std::size_t* steps = nullptr);

/// Run the full fuzz loop.  `log`, when non-null, receives progress lines
/// and failure reports (with replay strings) as they happen.
FuzzReport run_fuzz(const ProtocolRegistry& protocols,
                    const FamilyRegistry& families, const FuzzConfig& cfg,
                    std::ostream* log = nullptr);

}  // namespace ule
