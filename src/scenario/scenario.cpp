#include "scenario/scenario.hpp"

#include <cctype>
#include <charconv>
#include <stdexcept>

namespace ule {

namespace {

constexpr const char* kVersion = "ule1";

[[noreturn]] void bad(const std::string& token, const std::string& why) {
  throw std::invalid_argument("bad scenario token \"" + token + "\": " + why);
}

bool valid_name(const std::string& s) {
  if (s.empty()) return false;
  for (const char c : s) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') return false;
  }
  return true;
}

std::uint64_t parse_u64(const std::string& token, std::string_view digits) {
  std::uint64_t v = 0;
  const auto [p, ec] =
      std::from_chars(digits.data(), digits.data() + digits.size(), v);
  if (ec != std::errc{} || p != digits.data() + digits.size())
    bad(token, "expected an unsigned integer, got \"" + std::string(digits) +
                   "\"");
  return v;
}

/// Split on top-level ':' (braces never nest and never contain ':').
std::vector<std::string> split_fields(const std::string& token) {
  std::vector<std::string> out;
  std::string cur;
  for (const char c : token) {
    if (c == ':') {
      out.push_back(std::move(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(std::move(cur));
  return out;
}

}  // namespace

const char* to_string(KnowledgeGrant k) {
  switch (k) {
    case KnowledgeGrant::None: return "none";
    case KnowledgeGrant::N: return "n";
    case KnowledgeGrant::ND: return "nd";
    case KnowledgeGrant::NMD: return "nmd";
  }
  return "?";
}

const char* to_string(WakeupKind w) {
  switch (w) {
    case WakeupKind::Simultaneous: return "sim";
    case WakeupKind::Random: return "rand";
    case WakeupKind::Single: return "one";
  }
  return "?";
}

std::string Scenario::encode() const {
  std::string out = kVersion;
  out += ':';
  out += family;
  out += '{';
  bool first = true;
  for (const auto& [name, value] : params) {
    if (!first) out += ',';
    first = false;
    out += name;
    out += '=';
    out += std::to_string(value);
  }
  out += "}:";
  out += protocol;
  out += ":k=";
  out += to_string(knowledge);
  out += ":w=";
  out += to_string(wakeup);
  if (wakeup == WakeupKind::Random) {
    out += '.';
    out += std::to_string(wakeup_spread);
  } else if (wakeup == WakeupKind::Single) {
    out += '.';
    out += std::to_string(wakeup_node);
  }
  out += ":s=";
  out += std::to_string(seed);
  out += ":t=";
  out += std::to_string(threads);
  return out;
}

Scenario Scenario::parse(const std::string& token) {
  const std::vector<std::string> fields = split_fields(token);
  if (fields.size() != 7) bad(token, "expected 7 ':'-separated fields");
  if (fields[0] != kVersion)
    bad(token, "unknown version tag \"" + fields[0] + "\"");

  Scenario s;

  // family{p=v,...}
  {
    const std::string& f = fields[1];
    const std::size_t open = f.find('{');
    if (open == std::string::npos || f.back() != '}')
      bad(token, "family field must look like name{p=v,...}");
    s.family = f.substr(0, open);
    if (!valid_name(s.family)) bad(token, "invalid family name");
    const std::string body = f.substr(open + 1, f.size() - open - 2);
    if (!body.empty()) {
      std::size_t pos = 0;
      while (pos <= body.size()) {
        std::size_t comma = body.find(',', pos);
        if (comma == std::string::npos) comma = body.size();
        const std::string item = body.substr(pos, comma - pos);
        const std::size_t eq = item.find('=');
        if (eq == std::string::npos || eq == 0)
          bad(token, "family param \"" + item + "\" must be name=value");
        const std::string name = item.substr(0, eq);
        if (!valid_name(name)) bad(token, "invalid param name \"" + name + "\"");
        s.params.emplace_back(name, parse_u64(token, item.substr(eq + 1)));
        pos = comma + 1;
        if (comma == body.size()) break;
      }
    }
  }

  s.protocol = fields[2];
  if (!valid_name(s.protocol)) bad(token, "invalid protocol name");

  // k=...
  {
    const std::string& f = fields[3];
    if (f.rfind("k=", 0) != 0) bad(token, "fourth field must be k=...");
    const std::string v = f.substr(2);
    if (v == "none") s.knowledge = KnowledgeGrant::None;
    else if (v == "n") s.knowledge = KnowledgeGrant::N;
    else if (v == "nd") s.knowledge = KnowledgeGrant::ND;
    else if (v == "nmd") s.knowledge = KnowledgeGrant::NMD;
    else bad(token, "unknown knowledge grant \"" + v + "\"");
  }

  // w=...
  {
    const std::string& f = fields[4];
    if (f.rfind("w=", 0) != 0) bad(token, "fifth field must be w=...");
    const std::string v = f.substr(2);
    if (v == "sim") {
      s.wakeup = WakeupKind::Simultaneous;
    } else if (v.rfind("rand.", 0) == 0) {
      s.wakeup = WakeupKind::Random;
      s.wakeup_spread = parse_u64(token, std::string_view(v).substr(5));
    } else if (v.rfind("one.", 0) == 0) {
      s.wakeup = WakeupKind::Single;
      s.wakeup_node = parse_u64(token, std::string_view(v).substr(4));
    } else {
      bad(token, "unknown wakeup schedule \"" + v + "\"");
    }
  }

  // s=...
  {
    const std::string& f = fields[5];
    if (f.rfind("s=", 0) != 0) bad(token, "sixth field must be s=...");
    s.seed = parse_u64(token, std::string_view(f).substr(2));
  }

  // t=...
  {
    const std::string& f = fields[6];
    if (f.rfind("t=", 0) != 0) bad(token, "seventh field must be t=...");
    const std::uint64_t t = parse_u64(token, std::string_view(f).substr(2));
    if (t == 0 || t > 64) bad(token, "threads must be in [1, 64]");
    s.threads = static_cast<unsigned>(t);
  }

  return s;
}

std::uint64_t Scenario::param(const std::string& name) const {
  for (const auto& [n, v] : params) {
    if (n == name) return v;
  }
  throw std::invalid_argument("scenario " + encode() + " has no param \"" +
                              name + "\"");
}

}  // namespace ule
