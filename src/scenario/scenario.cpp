#include "scenario/scenario.hpp"

#include <cctype>
#include <charconv>
#include <stdexcept>

namespace ule {

namespace {

constexpr const char* kVersion = "ule1";

[[noreturn]] void bad(const std::string& token, const std::string& why) {
  throw std::invalid_argument("bad scenario token \"" + token + "\": " + why);
}

bool valid_name(const std::string& s) {
  if (s.empty()) return false;
  for (const char c : s) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') return false;
  }
  return true;
}

std::uint64_t parse_u64(const std::string& token, std::string_view digits) {
  std::uint64_t v = 0;
  const auto [p, ec] =
      std::from_chars(digits.data(), digits.data() + digits.size(), v);
  if (ec != std::errc{} || p != digits.data() + digits.size())
    bad(token, "expected an unsigned integer, got \"" + std::string(digits) +
                   "\"");
  return v;
}

/// Split on top-level ':' (braces never nest and never contain ':').
std::vector<std::string> split_fields(const std::string& token) {
  std::vector<std::string> out;
  std::string cur;
  for (const char c : token) {
    if (c == ':') {
      out.push_back(std::move(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(std::move(cur));
  return out;
}

}  // namespace

const char* to_string(KnowledgeGrant k) {
  switch (k) {
    case KnowledgeGrant::None: return "none";
    case KnowledgeGrant::N: return "n";
    case KnowledgeGrant::ND: return "nd";
    case KnowledgeGrant::NMD: return "nmd";
  }
  return "?";
}

const char* to_string(WakeupKind w) {
  switch (w) {
    case WakeupKind::Simultaneous: return "sim";
    case WakeupKind::Random: return "rand";
    case WakeupKind::Single: return "one";
  }
  return "?";
}

AdversaryConfig ScenarioAdversary::engine_config(std::size_t n) const {
  AdversaryConfig adv;
  adv.seed = seed;
  adv.max_delay = max_delay;
  adv.drop = static_cast<double>(drop_pm) / 1000.0;
  adv.duplicate = static_cast<double>(dup_pm) / 1000.0;
  adv.reorder = static_cast<double>(reorder_pm) / 1000.0;
  adv.crashes.reserve(crashes.size());
  for (const ScenarioCrash& c : crashes)
    adv.crashes.push_back(
        CrashEvent{static_cast<NodeId>(c.node % n), c.at, c.recover});
  return adv;
}

std::string Scenario::encode() const {
  std::string out = kVersion;
  out += ':';
  out += family;
  out += '{';
  bool first = true;
  for (const auto& [name, value] : params) {
    if (!first) out += ',';
    first = false;
    out += name;
    out += '=';
    out += std::to_string(value);
  }
  out += "}:";
  out += protocol;
  out += ":k=";
  out += to_string(knowledge);
  out += ":w=";
  out += to_string(wakeup);
  if (wakeup == WakeupKind::Random) {
    out += '.';
    out += std::to_string(wakeup_spread);
  } else if (wakeup == WakeupKind::Single) {
    out += '.';
    out += std::to_string(wakeup_node);
  }
  out += ":s=";
  out += std::to_string(seed);
  out += ":t=";
  out += std::to_string(threads);
  if (adversary.any_faults()) {
    out += ":a=";
    out += std::to_string(adversary.max_delay);
    out += '.';
    out += std::to_string(adversary.drop_pm);
    out += '.';
    out += std::to_string(adversary.dup_pm);
    out += '.';
    out += std::to_string(adversary.reorder_pm);
    out += '.';
    out += std::to_string(adversary.seed);
  }
  if (!adversary.crashes.empty()) {
    out += ":f=";
    bool first = true;
    for (const ScenarioCrash& c : adversary.crashes) {
      if (!first) out += ',';
      first = false;
      out += std::to_string(c.node);
      out += '@';
      out += std::to_string(c.at);
      if (c.recover != kRoundForever) {
        out += '-';
        out += std::to_string(c.recover);
      }
    }
  }
  if (reliable.any()) {
    out += ":r=";
    out += std::to_string(reliable.rto);
    out += '.';
    out += std::to_string(reliable.cap);
  }
  return out;
}

Scenario Scenario::parse(const std::string& token) {
  const std::vector<std::string> fields = split_fields(token);
  if (fields.size() < 7 || fields.size() > 10)
    bad(token, "expected 7 ':'-separated fields (plus optional a= / f= / r=)");
  if (fields[0] != kVersion)
    bad(token, "unknown version tag \"" + fields[0] + "\"");

  Scenario s;

  // family{p=v,...}
  {
    const std::string& f = fields[1];
    const std::size_t open = f.find('{');
    if (open == std::string::npos || f.back() != '}')
      bad(token, "family field must look like name{p=v,...}");
    s.family = f.substr(0, open);
    if (!valid_name(s.family)) bad(token, "invalid family name");
    const std::string body = f.substr(open + 1, f.size() - open - 2);
    if (!body.empty()) {
      std::size_t pos = 0;
      while (pos <= body.size()) {
        std::size_t comma = body.find(',', pos);
        if (comma == std::string::npos) comma = body.size();
        const std::string item = body.substr(pos, comma - pos);
        const std::size_t eq = item.find('=');
        if (eq == std::string::npos || eq == 0)
          bad(token, "family param \"" + item + "\" must be name=value");
        const std::string name = item.substr(0, eq);
        if (!valid_name(name)) bad(token, "invalid param name \"" + name + "\"");
        for (const auto& [seen, _] : s.params)
          if (seen == name)
            bad(token, "duplicate family param \"" + name +
                           "\" (params must be unique; no last-wins)");
        s.params.emplace_back(name, parse_u64(token, item.substr(eq + 1)));
        pos = comma + 1;
        if (comma == body.size()) break;
      }
    }
  }

  s.protocol = fields[2];
  if (!valid_name(s.protocol)) bad(token, "invalid protocol name");

  // k=...
  {
    const std::string& f = fields[3];
    if (f.rfind("k=", 0) != 0) bad(token, "fourth field must be k=...");
    const std::string v = f.substr(2);
    if (v == "none") s.knowledge = KnowledgeGrant::None;
    else if (v == "n") s.knowledge = KnowledgeGrant::N;
    else if (v == "nd") s.knowledge = KnowledgeGrant::ND;
    else if (v == "nmd") s.knowledge = KnowledgeGrant::NMD;
    else bad(token, "unknown knowledge grant \"" + v + "\"");
  }

  // w=...
  {
    const std::string& f = fields[4];
    if (f.rfind("w=", 0) != 0) bad(token, "fifth field must be w=...");
    const std::string v = f.substr(2);
    if (v == "sim") {
      s.wakeup = WakeupKind::Simultaneous;
    } else if (v.rfind("rand.", 0) == 0) {
      s.wakeup = WakeupKind::Random;
      s.wakeup_spread = parse_u64(token, std::string_view(v).substr(5));
    } else if (v.rfind("one.", 0) == 0) {
      s.wakeup = WakeupKind::Single;
      s.wakeup_node = parse_u64(token, std::string_view(v).substr(4));
    } else {
      bad(token, "unknown wakeup schedule \"" + v + "\"");
    }
  }

  // s=...
  {
    const std::string& f = fields[5];
    if (f.rfind("s=", 0) != 0) bad(token, "sixth field must be s=...");
    s.seed = parse_u64(token, std::string_view(f).substr(2));
  }

  // t=...
  {
    const std::string& f = fields[6];
    if (f.rfind("t=", 0) != 0) bad(token, "seventh field must be t=...");
    const std::uint64_t t = parse_u64(token, std::string_view(f).substr(2));
    if (t == 0 || t > 64) bad(token, "threads must be in [1, 64]");
    s.threads = static_cast<unsigned>(t);
  }

  // Optional trailing fields in the order a= (delivery knobs) ≺ f= (crash
  // schedule) ≺ r= (reliable-transport knobs), each at most once.
  bool seen_a = false, seen_f = false, seen_r = false;
  for (std::size_t i = 7; i < fields.size(); ++i) {
    const std::string& f = fields[i];
    if (f.rfind("a=", 0) == 0) {
      // Duplicates and misordering are distinct mistakes; name the one that
      // actually happened (a silent last-wins was never acceptable, and a
      // misleading "out of order" error for a duplicate is barely better).
      if (seen_a) bad(token, "duplicate a= field (no last-wins)");
      if (seen_f || seen_r) bad(token, "a= must appear before f= and r=");
      seen_a = true;
      // a=DELAY.DROP.DUP.REORDER.ASEED — five '.'-separated integers.
      const std::string v = f.substr(2);
      std::vector<std::string_view> parts;
      std::size_t pos = 0;
      while (true) {
        const std::size_t dot = v.find('.', pos);
        parts.push_back(std::string_view(v).substr(
            pos, (dot == std::string::npos ? v.size() : dot) - pos));
        if (dot == std::string::npos) break;
        pos = dot + 1;
      }
      if (parts.size() != 5)
        bad(token, "a= must be delay.drop.dup.reorder.aseed");
      s.adversary.max_delay = parse_u64(token, parts[0]);
      s.adversary.drop_pm = parse_u64(token, parts[1]);
      s.adversary.dup_pm = parse_u64(token, parts[2]);
      s.adversary.reorder_pm = parse_u64(token, parts[3]);
      s.adversary.seed = parse_u64(token, parts[4]);
      if (s.adversary.drop_pm > 1000 || s.adversary.dup_pm > 1000 ||
          s.adversary.reorder_pm > 1000)
        bad(token, "adversary probabilities are permille (at most 1000)");
      if (!s.adversary.any_faults())
        bad(token, "a= with every knob zero (drop the field instead)");
    } else if (f.rfind("f=", 0) == 0) {
      if (seen_f) bad(token, "duplicate f= field (no last-wins)");
      if (seen_r) bad(token, "f= must appear before r=");
      seen_f = true;
      const std::string v = f.substr(2);
      if (v.empty()) bad(token, "f= with an empty crash list");
      std::size_t pos = 0;
      while (pos <= v.size()) {
        std::size_t comma = v.find(',', pos);
        if (comma == std::string::npos) comma = v.size();
        const std::string item = v.substr(pos, comma - pos);
        const std::size_t at = item.find('@');
        if (at == std::string::npos || at == 0 || at + 1 >= item.size())
          bad(token, "crash entry \"" + item +
                         "\" must be node@round or node@crash-recover");
        ScenarioCrash c;
        c.node = parse_u64(token, std::string_view(item).substr(0, at));
        const std::string_view tail = std::string_view(item).substr(at + 1);
        const std::size_t dash = tail.find('-');
        if (dash == std::string_view::npos) {
          c.at = parse_u64(token, tail);
        } else {
          if (dash == 0 || dash + 1 >= tail.size())
            bad(token, "crash entry \"" + item +
                           "\" must be node@round or node@crash-recover");
          c.at = parse_u64(token, tail.substr(0, dash));
          c.recover = parse_u64(token, tail.substr(dash + 1));
          if (c.recover < c.at)
            bad(token, "crash entry \"" + item +
                           "\" recovers before it crashes");
        }
        s.adversary.crashes.push_back(c);
        pos = comma + 1;
        if (comma == v.size()) break;
      }
    } else if (f.rfind("r=", 0) == 0) {
      if (seen_r) bad(token, "duplicate r= field (no last-wins)");
      seen_r = true;
      // r=RTO.CAP — two '.'-separated integers, not both zero.
      const std::string v = f.substr(2);
      const std::size_t dot = v.find('.');
      if (dot == std::string::npos || v.find('.', dot + 1) != std::string::npos)
        bad(token, "r= must be rto.cap");
      s.reliable.rto = parse_u64(token, std::string_view(v).substr(0, dot));
      s.reliable.cap = parse_u64(token, std::string_view(v).substr(dot + 1));
      if (!s.reliable.any())
        bad(token, "r= with both knobs zero (drop the field instead)");
    } else {
      bad(token, "trailing field \"" + f + "\" must be a=..., f=... or r=...");
    }
  }

  return s;
}

std::uint64_t Scenario::param(const std::string& name) const {
  for (const auto& [n, v] : params) {
    if (n == name) return v;
  }
  throw std::invalid_argument("scenario " + encode() + " has no param \"" +
                              name + "\"");
}

}  // namespace ule
