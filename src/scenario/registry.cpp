#include "scenario/registry.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "election/clustering.hpp"
#include "net/message.hpp"
#include "net/reliable.hpp"
#include "election/dfs_election.hpp"
#include "election/explicit_elect.hpp"
#include "election/flood_max.hpp"
#include "election/kingdom.hpp"
#include "election/least_el.hpp"
#include "election/size_estimate.hpp"
#include "election/sublinear_complete.hpp"
#include "graphgen/clique_cycle.hpp"
#include "graphgen/dumbbell.hpp"
#include "graphgen/generators.hpp"
#include "graphgen/path_of_cliques.hpp"
#include "spanner/spanner_elect.hpp"

namespace ule {

const char* to_string(Contract c) {
  switch (c) {
    case Contract::Deterministic: return "deterministic";
    case Contract::LasVegas: return "las_vegas";
    case Contract::MonteCarlo: return "monte_carlo";
  }
  return "?";
}

namespace faults {

std::uint8_t classes(const ScenarioAdversary& adv) {
  std::uint8_t c = kNone;
  if (adv.max_delay != 0) c |= kDelay;
  if (adv.drop_pm != 0) c |= kDrop;
  if (adv.dup_pm != 0) c |= kDuplicate;
  if (adv.reorder_pm != 0) c |= kReorder;
  if (!adv.crashes.empty()) c |= kCrash;
  return c;
}

std::string to_string(std::uint8_t classes) {
  if (classes == kNone) return "none";
  std::string out;
  const auto append = [&](std::uint8_t bit, const char* name) {
    if (!(classes & bit)) return;
    if (!out.empty()) out += '|';
    out += name;
  };
  append(kDelay, "delay");
  append(kDrop, "drop");
  append(kDuplicate, "dup");
  append(kReorder, "reorder");
  append(kCrash, "crash");
  return out;
}

}  // namespace faults

ScenarioShape shape_of(const Graph& g, std::uint32_t diameter,
                       Round wakeup_span, bool adversarial_wakeup) {
  ScenarioShape s;
  s.n = g.n();
  s.m = g.m();
  s.diameter = diameter;
  s.complete = true;
  for (NodeId u = 0; u < g.n(); ++u) {
    if (g.degree(u) + 1 != g.n()) {
      s.complete = false;
      break;
    }
  }
  s.wakeup_span = wakeup_span;
  s.adversarial_wakeup = adversarial_wakeup;
  return s;
}

Knowledge knowledge_for(const ScenarioShape& shape, KnowledgeGrant grant) {
  switch (grant) {
    case KnowledgeGrant::None: return Knowledge::none();
    case KnowledgeGrant::N: return Knowledge::of_n(shape.n);
    case KnowledgeGrant::ND: return Knowledge::of_n_d(shape.n, shape.diameter);
    case KnowledgeGrant::NMD: return Knowledge::all(shape.n, shape.m, shape.diameter);
  }
  return Knowledge::none();
}

ProcessFactory prepare_protocol(const ProtocolInfo& info,
                                const ScenarioShape& shape, RunOptions& opt) {
  opt.knowledge = knowledge_for(shape, info.min_knowledge);
  return info.prepare(shape, opt);
}

void ProtocolRegistry::add(ProtocolInfo info) {
  if (find(info.name) != nullptr)
    throw std::invalid_argument("duplicate protocol \"" + info.name + "\"");
  protocols_.push_back(std::move(info));
}

const ProtocolInfo* ProtocolRegistry::find(const std::string& name) const {
  for (const ProtocolInfo& p : protocols_) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

const ProtocolInfo& ProtocolRegistry::at(const std::string& name) const {
  const ProtocolInfo* p = find(name);
  if (!p) throw std::invalid_argument("unknown protocol \"" + name + "\"");
  return *p;
}

void FamilyRegistry::add(FamilyInfo info) {
  if (find(info.name) != nullptr)
    throw std::invalid_argument("duplicate family \"" + info.name + "\"");
  families_.push_back(std::move(info));
}

const FamilyInfo* FamilyRegistry::find(const std::string& name) const {
  for (const FamilyInfo& f : families_) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

const FamilyInfo& FamilyRegistry::at(const std::string& name) const {
  const FamilyInfo* f = find(name);
  if (!f) throw std::invalid_argument("unknown family \"" + name + "\"");
  return *f;
}

// ---------------------------------------------------------------------------
// Built-in protocols
// ---------------------------------------------------------------------------

namespace {

/// log2(n) + 2, the "L" of the envelope formulas below (>= 2 for n >= 1).
std::uint64_t lg(std::size_t n) {
  std::uint64_t l = 2;
  while (n > 1) {
    n >>= 1;
    ++l;
  }
  return l;
}

/// Diameter + 1 (so envelopes never degenerate to 0 on complete graphs).
Round dia(const ScenarioShape& s) { return Round{s.diameter} + 1; }

/// Extra rounds an adversarial wakeup schedule may cost: the last waker plus
/// the time for the first waker's flood to drag everyone in.
Round wake_slack(const ScenarioShape& s) {
  return s.adversarial_wakeup ? s.wakeup_span + Round{s.diameter} + 8 : 0;
}

ProtocolRegistry build_protocols() {
  ProtocolRegistry reg;
  using Shape = ScenarioShape;

  // The O(D)-time deterministic baseline: echoes + outbox pacing put the
  // constant well above 1, and adoption chains (up to O(log n) expected
  // improvements per node under random id placement) stretch both envelopes.
  // Safety declarations (safe_under / live_under_async) are EMPIRICAL
  // contracts, pinned per class by the adversary conformance matrix
  // (tests/scenario/adversary_matrix_test.cpp) and hunted at scale by the
  // fuzzer's adversarial draws (counterexamples that survived the small
  // matrix grid fell to `fuzz_scenarios --quick`).  The calibration cuts
  // against the obvious intuition in both directions:
  //   - reorder and crash-stop are safe for every protocol in the registry
  //     (no protocol reads its inbox positionally, and a crash only silences
  //     a node);
  //   - the wave/echo protocols (flood_max, the least-element family,
  //     las_vegas, size_estimate) survive NEITHER delay NOR drop NOR
  //     duplication: their completion accounting assumes exactly-once,
  //     FIFO delivery, so a dropped or overtaken forward lets a node
  //     complete its own wave without ever hearing the better id, and a
  //     duplicate trips "more echoes than forwards";
  //   - kingdom tolerates delay, drop and reorder (a lost merger just
  //     stalls the conquest) but NOT duplication — a replayed surrender
  //     resurrects a dead kingdom and two kings emerge; the known-D variant
  //     additionally loses LIVENESS under asynchrony (its fixed radius
  //     relaunches forever on delayed stragglers), the repo's one
  //     live_under_async = false entry;
  //   - sublinear_complete is the robust outlier (kAll): a referee decides
  //     exactly once, so forged or lost traffic only costs liveness;
  //   - the explicit overlay is strictly more fragile than its base
  //     election: a dropped or delayed LEADER flood re-elects.

  reg.add(ProtocolInfo{
      "flood_max", Contract::Deterministic, KnowledgeGrant::None,
      /*wakeup_tolerant=*/true, /*needs_complete=*/false,
      /*explicit_overlay=*/false,
      /*safe_under=*/faults::kReorder | faults::kCrash, /*live_under_async=*/true,
      [](const Shape&, RunOptions&) { return make_flood_max(); },
      [](const Shape& s) { return 32 * dia(s) + 2 * s.n + 4 * wake_slack(s) + 64; },
      [](const Shape& s) { return 8 * s.m * (lg(s.n) + 8) + 8 * s.n + 64; },
      {{"ring", "rounds", 1.0, 0.25, "O(D) time; D = n/2 on the ring"},
       {"ring", "messages", 1.0, 0.35, "O(m log n); m = n on the ring"},
       {"complete", "messages", 2.0, 0.35, "O(m log n); m = n(n-1)/2 on K_n"},
       {"cliquepath", "rounds", 1.0, 0.3,
        "O(D) time on the diameter ladder (n ~fixed, D grows); pacing/echo "
        "constants deflate the local slope", "diameter"},
       {"star", "rounds", 0.0, 0.2,
        "O(D) time is independent of n at fixed D (star: D = 2)"}}});

  const auto least_el_rounds = [](const Shape& s) {
    return 32 * dia(s) + 2 * s.n + 4 * wake_slack(s) + 64;
  };
  const auto least_el_messages = [](const Shape& s) {
    return 8 * s.m * (lg(s.n) + 8) + 8 * s.n + 64;
  };

  reg.add(ProtocolInfo{
      "least_el_all", Contract::LasVegas, KnowledgeGrant::None,
      true, false, false,
      /*safe_under=*/faults::kReorder | faults::kCrash, /*live_under_async=*/true,
      [](const Shape&, RunOptions&) {
        return make_least_el(LeastElConfig::all_candidates());
      },
      least_el_rounds, least_el_messages,
      {{"ring", "messages", 1.0, 0.4, "O(m log n) least-element lists"},
       {"ring", "rounds", 1.0, 0.3, "O(D) waves; D = n/2 on the ring"},
       {"cliquepath", "rounds", 1.0, 0.3,
        "O(D) waves on the diameter ladder", "diameter"}}});

  reg.add(ProtocolInfo{
      "least_el_logn", Contract::MonteCarlo, KnowledgeGrant::N,
      true, false, false,
      /*safe_under=*/faults::kReorder | faults::kCrash, /*live_under_async=*/true,
      [](const Shape& s, RunOptions&) {
        return make_least_el(LeastElConfig::variant_A(s.n));
      },
      least_el_rounds, least_el_messages,
      {{"ring", "messages", 1.0, 0.4,
        "O(m log n) with O(log n) expected candidates"}}});

  reg.add(ProtocolInfo{
      "least_el_f4", Contract::MonteCarlo, KnowledgeGrant::N,
      true, false, false,
      /*safe_under=*/faults::kReorder | faults::kCrash, /*live_under_async=*/true,
      [](const Shape&, RunOptions&) {
        return make_least_el(LeastElConfig::theorem_4_4(4.0));
      },
      least_el_rounds, least_el_messages});

  reg.add(ProtocolInfo{
      "least_el_b05", Contract::MonteCarlo, KnowledgeGrant::N,
      true, false, false,
      /*safe_under=*/faults::kReorder | faults::kCrash, /*live_under_async=*/true,
      [](const Shape&, RunOptions&) {
        return make_least_el(LeastElConfig::variant_B(0.05));
      },
      least_el_rounds, least_el_messages});

  // Cor 4.6: epoch restarts need the shared epoch clock, i.e. simultaneous
  // wakeup.  Worst case is a run of candidate-free epochs: P(fail) ~ e^-2
  // per epoch, so 48 epochs bound the tail at ~1e-41.
  reg.add(ProtocolInfo{
      "las_vegas", Contract::LasVegas, KnowledgeGrant::ND,
      false, false, false,
      /*safe_under=*/faults::kReorder | faults::kCrash, /*live_under_async=*/true,
      [](const Shape& s, RunOptions&) {
        return make_least_el(LeastElConfig::las_vegas(s.diameter));
      },
      [](const Shape& s) { return 48 * (3 * dia(s) + 8) + 2 * s.n + 64; },
      least_el_messages,
      {{"ring", "messages", 1.0, 0.4,
        "O(m log n) least-element lists per epoch"},
       {"cliquepath", "rounds", 1.0, 0.4,
        "Cor 4.6: O(D)-round epochs at fixed n; the epoch-count median "
        "wobbles at small replicate counts", "diameter"}}});

  reg.add(ProtocolInfo{
      "size_estimate", Contract::LasVegas, KnowledgeGrant::None,
      true, false, false,
      /*safe_under=*/faults::kReorder | faults::kCrash, /*live_under_async=*/true,
      [](const Shape&, RunOptions&) { return make_size_estimate_elect(); },
      [](const Shape& s) { return 48 * dia(s) + 2 * s.n + 4 * wake_slack(s) + 96; },
      [](const Shape& s) { return 16 * s.m * (lg(s.n) + 8) + 16 * s.n + 64; },
      {{"ring", "messages", 1.0, 0.4, "O(m log n) without knowing n"},
       {"barbell", "rounds", 1.0, 0.4,
        "O(D) up/down census waves at fixed n", "diameter"}}});

  reg.add(ProtocolInfo{
      "clustering", Contract::MonteCarlo, KnowledgeGrant::N,
      false, false, false,
      /*safe_under=*/faults::kReorder | faults::kCrash, /*live_under_async=*/true,
      [](const Shape&, RunOptions&) { return make_clustering(); },
      [](const Shape& s) { return 64 * dia(s) * lg(s.n) + 2 * s.n + 256; },
      [](const Shape& s) { return 16 * s.m + 64 * s.n * lg(s.n) + 64; },
      {{"gnm", "messages", 1.0, 0.45, "O(m + n log n) cluster formation"},
       {"barbell", "rounds", 0.5, 0.35,
        "O(D log n) cluster growth at fixed n: the additive Theta(log n) "
        "phase cost halves the local slope at lab-sized D; slope 0 (no D "
        "dependence) and slope 1 both leave the band", "diameter"}}});

  const auto kingdom_messages = [](const Shape& s) {
    return 32 * s.m * (lg(s.n) + 4) + 8 * s.n + 64;
  };
  reg.add(ProtocolInfo{
      "kingdom", Contract::Deterministic, KnowledgeGrant::None,
      true, false, false,
      /*safe_under=*/faults::kDelay | faults::kDrop | faults::kReorder |
          faults::kCrash,
      /*live_under_async=*/true,
      [](const Shape&, RunOptions&) { return make_kingdom(); },
      [](const Shape& s) {
        return 128 * dia(s) + 32 * lg(s.n) + 2 * s.n + 4 * wake_slack(s) + 128;
      },
      kingdom_messages,
      {{"ring", "messages", 1.0, 0.4, "O(m log n) kingdom mergers"},
       {"ring", "rounds", 1.0, 0.35, "O(D log n) merger phases"},
       {"cliquecycle", "rounds", 1.0, 0.35,
        "O(D log n) merger phases; log n fixed on the D-ladder",
        "diameter"}}});

  reg.add(ProtocolInfo{
      "kingdom_knownD", Contract::Deterministic, KnowledgeGrant::ND,
      true, false, false,
      /*safe_under=*/faults::kDelay | faults::kDrop | faults::kReorder |
          faults::kCrash,
      // Safety is message-driven (the spanning check holds "regardless of
      // timing").  Liveness under delay USED to fail (the PR-6 livelock):
      // the fixed D+1 radius assumed the first-arrival BFS tree is a
      // shortest-path tree, which bounded delays break — a claim that
      // detoured can land at tree depth up to D*(1+max_delay), and the
      // budget-less node reports an open frontier forever.  The budget now
      // accounts for the delay bound (KingdomConfig::delay_bound, set from
      // the scenario's adversary below), restoring termination; recalibrated
      // live by the adversary matrix's delay rungs and fuzz sweeps.
      /*live_under_async=*/true,
      [](const Shape& s, RunOptions& opt) {
        KingdomConfig cfg;
        cfg.known_diameter = std::max<std::uint64_t>(1, s.diameter);
        cfg.delay_bound = opt.adversary.max_delay;
        return make_kingdom(cfg);
      },
      [](const Shape& s) {
        return 128 * dia(s) + 32 * lg(s.n) + 2 * s.n + 4 * wake_slack(s) + 128;
      },
      kingdom_messages});

  // Theorem 4.1: RandomPermutation ids keep the smallest id at 1 (delay 2),
  // so the winner's 4m-step DFS finishes in O(m) logical rounds.
  reg.add(ProtocolInfo{
      "dfs", Contract::Deterministic, KnowledgeGrant::None,
      true, false, false,
      /*safe_under=*/faults::kDelay | faults::kDrop | faults::kReorder | faults::kCrash, /*live_under_async=*/true,
      [](const Shape& s, RunOptions& opt) {
        opt.ids = IdScheme::RandomPermutation;
        DfsConfig cfg;
        cfg.wake_broadcast = s.adversarial_wakeup;
        return make_dfs_election(cfg);
      },
      [](const Shape& s) { return 32 * s.m + 8 * dia(s) + 4 * wake_slack(s) + 256; },
      [](const Shape& s) { return 16 * s.m + 4 * s.n + 64; },
      {{"ring", "rounds", 1.0, 0.25, "Theorem 4.1: O(m) time; m = n on the ring"},
       {"ring", "messages", 1.0, 0.25, "Theorem 4.1: O(m) messages"}}});

  // Cor 4.2: the Baswana–Sen construction runs on a fixed global round
  // schedule, so simultaneous wakeup is required.  The election runs on the
  // spanner, whose diameter is <= (2k-1) D + 2k.
  reg.add(ProtocolInfo{
      "spanner_elect", Contract::LasVegas, KnowledgeGrant::N,
      false, false, false,
      /*safe_under=*/faults::kReorder, /*live_under_async=*/true,
      [](const Shape&, RunOptions&) {
        return make_spanner_elect(SpannerElectConfig{3, 0});
      },
      [](const Shape& s) { return 200 * dia(s) + 2 * s.n + 256; },
      [](const Shape& s) { return 24 * s.m + 8 * s.n * (lg(s.n) + 8) + 64; },
      {{"gnm", "messages", 1.0, 0.45,
        "O(m) Baswana-Sen + O(n log n) election on the spanner"},
       {"cliquecycle", "rounds", 0.75, 0.3,
        "Cor 4.2: O(D) election on the 3-spanner (diameter <= (2k-1)D + 2k) "
        "after O(1) construction phases, whose additive rounds deflate the "
        "local slope at lab-sized D", "diameter"}}});

  reg.add(ProtocolInfo{
      "sublinear_complete", Contract::MonteCarlo, KnowledgeGrant::N,
      false, /*needs_complete=*/true, false,
      /*safe_under=*/faults::kAll, /*live_under_async=*/true,
      [](const Shape&, RunOptions&) { return make_sublinear_complete(); },
      [](const Shape&) { return Round{16}; },
      [](const Shape& s) { return 4 * s.m + 4 * s.n + 64; },
      {{"complete", "messages", 0.5, 0.45,
        "KPPRT sublinear bound ~O(sqrt(n) log^{3/2} n): the log^{3/2} factor "
        "inflates the local slope at lab sizes, but it must stay well below "
        "the linear-in-m trivial bound (slope 2)"},
       {"complete", "rounds", 0.0, 0.15, "O(1) rounds on K_n"}}});

  // The explicit-election overlay over the flood-max baseline: same run plus
  // one LEADER flood (<= 2m messages, <= D + pacing extra rounds).  The
  // runner additionally checks leader-id agreement at every node.
  reg.add(ProtocolInfo{
      "explicit_flood_max", Contract::Deterministic, KnowledgeGrant::None,
      true, false, /*explicit_overlay=*/true,
      /*safe_under=*/faults::kReorder | faults::kCrash, /*live_under_async=*/true,
      [](const Shape&, RunOptions&) { return make_explicit(make_flood_max()); },
      [](const Shape& s) { return 48 * dia(s) + 2 * s.n + 4 * wake_slack(s) + 128; },
      [](const Shape& s) {
        return 8 * s.m * (lg(s.n) + 8) + 2 * s.m + 8 * s.n + 64;
      },
      {{"ring", "messages", 1.0, 0.35,
        "O(m log n) + one O(m) LEADER announcement flood"},
       {"cliquepath", "rounds", 1.0, 0.35,
        "O(D) election + one O(D) LEADER flood", "diameter"}}});

  // -------------------------------------------------------------------------
  // Reliable variants: the base protocol behind the ARQ link layer
  // (net/reliable.hpp).  The wrapper restores exactly-once per-port FIFO
  // delivery, so every variant's SAFETY holds under the full mask and its
  // LIVENESS survives lossy adversaries too (reliable_transport = true: the
  // runner enforces termination whenever drop < 1.0) — the measurable price
  // is the retransmit/ack message overhead, fitted by the lab's loss axis.
  //
  // Envelopes: fault-free a wrapped run sends at most one ack per data frame
  // (piggybacked or standalone) and retransmits nothing (the ack round trip
  // is 2 rounds < every legal rto), so 2x the base messages plus slack is
  // universal; the runner stretches both envelopes further when an adversary
  // is active (drop/dup multiply traffic, delay multiplies rounds).  Rounds
  // gain only the final ack-drain tail plus the give-up horizon on crashed
  // links (attempts ride the backoff ladder, capped well under 512 for every
  // legal rto/cap the fuzzer draws).
  const auto add_reliable = [&reg](const std::string& base,
                                   std::vector<GrowthExpectation> growth) {
    ProtocolInfo p = reg.at(base);
    p.name = base + "_reliable";
    p.safe_under = faults::kAll;
    p.live_under_async = true;
    p.reliable_transport = true;
    // Bounded churn: a node crashing at round 0 (before its first step, so
    // its first life is empty) and recovering within a bounded window is
    // revived by the wrapper's go-back-all replay — every peer still holds
    // its full send history toward the reborn node, so the fresh-epoch
    // stream re-delivers the whole run (including the winning wave) in
    // order, exactly once.  Later crashes stay SAFE but not live: peers'
    // queues then hold responses to the dead first life (which a fresh
    // process cannot account for) and acked prefixes the replay can never
    // fill — which is why the runner gates churn liveness on the window.
    p.live_under_churn = true;
    p.growth = std::move(growth);
    const auto base_prepare = p.prepare;
    p.prepare = [base_prepare](const Shape& s, RunOptions& opt) {
      ReliableConfig cfg = opt.reliable;
      cfg.enabled = true;
      if (cfg.rto == 0) {
        // Auto rto: the fault-free ack round trip is 2 rounds and each leg
        // stretches by up to max_delay — never time out a frame whose ack is
        // still legally in flight.
        cfg.rto = kReliableDefaultRto +
                  2 * static_cast<std::uint32_t>(opt.adversary.max_delay);
      }
      if (cfg.backoff_cap == 0) cfg.backoff_cap = 8 * cfg.rto;
      if (cfg.backoff_cap < cfg.rto) cfg.backoff_cap = cfg.rto;
      // Delay-sensitive bases (kingdom_knownD's fixed radius) must budget
      // for ARQ-induced latency, not just the adversary's delay knob: a
      // dropped frame is re-sent only after a backed-off interval, so one
      // hop can legally stall for the entire retransmit ladder.  Expose
      // that bound through opt.adversary.max_delay for the base prepare's
      // eyes only — the engine's real adversary config is restored before
      // the run.  (Fuzz-calibrated: without this, kingdom_knownD_reliable
      // under drop alone relaunched its fixed-radius expedition for tens of
      // thousands of rounds before converging.)
      const Round real_delay = opt.adversary.max_delay;
      if (opt.adversary.active()) {
        opt.adversary.max_delay =
            real_delay + Round{cfg.backoff_cap} * (cfg.max_retries + 1);
      }
      ProcessFactory inner = base_prepare(s, opt);
      opt.adversary.max_delay = real_delay;
      // The ARQ header is link-layer cost, not algorithm payload: raise the
      // CONGEST budget by exactly the header so the inner protocol's own
      // width discipline is still what the budget checks.
      opt.congest_bits =
          wire::kTypeTag + 8 * wire::kIdField + kReliableHeaderBits;
      return make_reliable(std::move(inner), cfg);
    };
    // 3x, not 2x: phase-driven protocols (kingdom) relaunch on straggler
    // reports, and ARQ latency stretches every phase — fuzz-calibrated
    // (kingdom_knownD_reliable on bipartite under drop=283pm ran 1.5x past
    // a 2x envelope while still terminating fine).
    const auto base_rounds = p.round_envelope;
    p.round_envelope = [base_rounds](const Shape& s) {
      return 3 * base_rounds(s) + 512;
    };
    const auto base_messages = p.message_envelope;
    p.message_envelope = [base_messages](const Shape& s) {
      return 4 * base_messages(s) + 4 * s.m + 512;
    };
    reg.add(std::move(p));
  };

  add_reliable("flood_max",
               {{"ring", "messages", 1.0, 0.4,
                 "wrapped O(m log n): the exponent in n is the base "
                 "protocol's (the ARQ tax is a constant factor fault-free)"},
                {"ring", "messages", 1.0, 0.5,
                 "retransmit overhead: messages ~ base * O(1/(1-p)) against "
                 "x = 1/(1-p) on the drop ladder", "loss"},
                {"ring", "rounds", 3.5, 2.5,
                 "ARQ latency is superlinear in x = 1/(1-p): a lost frame "
                 "stalls a whole backed-off interval (~rto*2^k rounds), not "
                 "one transmission, so the local slope sits near rto-ish "
                 "powers of x; the band gates that it stays polynomial",
                 "loss"}});
  add_reliable("least_el_all", {});
  add_reliable("dfs", {});
  add_reliable("kingdom",
               {{"ring", "messages", 1.0, 0.5,
                 "retransmit overhead on the merger traffic: messages ~ "
                 "base * O(1/(1-p))", "loss"}});
  add_reliable("kingdom_knownD", {});
  add_reliable("explicit_flood_max", {});

  return reg;
}

// ---------------------------------------------------------------------------
// Built-in graph families
// ---------------------------------------------------------------------------

std::uint64_t get_param(const ScenarioParams& ps, const char* name) {
  for (const auto& [k, v] : ps) {
    if (k == name) return v;
  }
  throw std::invalid_argument(std::string("missing family param \"") + name +
                              "\"");
}

/// Clamp a drawn size to [lo, hi] — every draw() must respect its declared
/// ParamSpec range even for huge --max-n, or run_scenario's validation
/// rejects the fuzzer's own output.
std::uint64_t cap(std::uint64_t v, std::uint64_t lo, std::uint64_t hi) {
  return std::clamp(v, lo, hi);
}

ScenarioParams params1(const char* a, std::uint64_t va) { return {{a, va}}; }
ScenarioParams params2(const char* a, std::uint64_t va, const char* b,
                       std::uint64_t vb) {
  return {{a, va}, {b, vb}};
}

/// Halve-and-decrement candidates for one parameter, clamped at `lo`.
void shrink_param(std::vector<ScenarioParams>& out, const ScenarioParams& ps,
                  std::size_t idx, std::uint64_t lo) {
  const std::uint64_t v = ps[idx].second;
  if (v / 2 >= lo && v / 2 < v) {
    ScenarioParams c = ps;
    c[idx].second = v / 2;
    out.push_back(std::move(c));
  }
  if (v > lo) {
    ScenarioParams c = ps;
    c[idx].second = v - 1;
    out.push_back(std::move(c));
  }
}

/// A family with one size parameter `n` in [lo, hi].
FamilyInfo simple_family(const char* name, std::uint64_t lo, std::uint64_t hi,
                         std::function<Graph(std::uint64_t)> make,
                         bool complete = false) {
  FamilyInfo f;
  f.name = name;
  f.params = {{"n", lo, hi}};
  f.complete = complete;
  f.build = [make = std::move(make)](const ScenarioParams& ps, Rng&) {
    return make(get_param(ps, "n"));
  };
  f.draw = [lo, hi](Rng& rng, std::size_t max_n) {
    const std::uint64_t ub = std::clamp<std::uint64_t>(max_n, lo, hi);
    return params1("n", rng.in_range(lo, ub));
  };
  f.shrink = [lo](const ScenarioParams& ps) {
    std::vector<ScenarioParams> out;
    shrink_param(out, ps, 0, lo);
    return out;
  };
  return f;
}

FamilyRegistry build_families() {
  FamilyRegistry reg;

  reg.add(simple_family("ring", 3, 4096,
                        [](std::uint64_t n) { return make_cycle(n); }));
  reg.add(simple_family("path", 2, 4096,
                        [](std::uint64_t n) { return make_path(n); }));
  reg.add(simple_family("star", 2, 4096,
                        [](std::uint64_t n) { return make_star(n); }));
  reg.add(simple_family(
      "complete", 2, 512, [](std::uint64_t n) { return make_complete(n); },
      /*complete=*/true));

  {
    FamilyInfo f;
    f.name = "bipartite";
    f.params = {{"a", 1, 2048}, {"b", 1, 2048}};
    f.build = [](const ScenarioParams& ps, Rng&) {
      const auto a = get_param(ps, "a"), b = get_param(ps, "b");
      if (a + b < 2) throw std::invalid_argument("bipartite needs >= 2 nodes");
      return make_complete_bipartite(a, b);
    };
    f.draw = [](Rng& rng, std::size_t max_n) {
      const std::uint64_t half = cap(max_n / 2, 1, 2048);
      return params2("a", rng.in_range(1, half), "b",
                     rng.in_range(2, half > 1 ? half : 2));
    };
    f.shrink = [](const ScenarioParams& ps) {
      std::vector<ScenarioParams> out;
      shrink_param(out, ps, 0, 1);
      shrink_param(out, ps, 1, 1);
      return out;
    };
    reg.add(std::move(f));
  }

  {
    FamilyInfo f;
    f.name = "grid";
    f.params = {{"rows", 1, 128}, {"cols", 1, 128}};
    f.build = [](const ScenarioParams& ps, Rng&) {
      const auto r = get_param(ps, "rows"), c = get_param(ps, "cols");
      if (r * c < 2) throw std::invalid_argument("grid needs >= 2 nodes");
      return make_grid(r, c);
    };
    f.draw = [](Rng& rng, std::size_t max_n) {
      const std::uint64_t r = rng.in_range(1, std::max<std::uint64_t>(2, std::min<std::uint64_t>(12, max_n / 2)));
      const std::uint64_t c_hi = std::clamp<std::uint64_t>(
          max_n / std::max<std::uint64_t>(1, r), 2, 128);
      return params2("rows", r, "cols", rng.in_range(2, c_hi));
    };
    f.shrink = [](const ScenarioParams& ps) {
      std::vector<ScenarioParams> out;
      shrink_param(out, ps, 0, 1);
      shrink_param(out, ps, 1, 2);
      return out;
    };
    reg.add(std::move(f));
  }

  {
    FamilyInfo f;
    f.name = "torus";
    f.params = {{"rows", 3, 64}, {"cols", 3, 64}};
    f.build = [](const ScenarioParams& ps, Rng&) {
      return make_torus(get_param(ps, "rows"), get_param(ps, "cols"));
    };
    f.draw = [](Rng& rng, std::size_t max_n) {
      const std::uint64_t cap =
          std::max<std::uint64_t>(3, std::min<std::uint64_t>(10, max_n / 3));
      const std::uint64_t r = rng.in_range(3, cap);
      const std::uint64_t c_hi =
          std::clamp<std::uint64_t>(max_n / r, 3, 64);
      return params2("rows", r, "cols", rng.in_range(3, c_hi));
    };
    f.shrink = [](const ScenarioParams& ps) {
      std::vector<ScenarioParams> out;
      shrink_param(out, ps, 0, 3);
      shrink_param(out, ps, 1, 3);
      return out;
    };
    reg.add(std::move(f));
  }

  {
    FamilyInfo f;
    f.name = "hypercube";
    f.params = {{"dim", 1, 12}};
    f.build = [](const ScenarioParams& ps, Rng&) {
      return make_hypercube(static_cast<unsigned>(get_param(ps, "dim")));
    };
    f.draw = [](Rng& rng, std::size_t max_n) {
      std::uint64_t max_dim = 1;
      while ((std::uint64_t{2} << max_dim) <= max_n && max_dim < 7) ++max_dim;
      return params1("dim", rng.in_range(1, max_dim));
    };
    f.shrink = [](const ScenarioParams& ps) {
      std::vector<ScenarioParams> out;
      shrink_param(out, ps, 0, 1);
      return out;
    };
    reg.add(std::move(f));
  }

  {
    FamilyInfo f;
    f.name = "tree";
    f.params = {{"n", 2, 4096}, {"arity", 1, 8}};
    f.build = [](const ScenarioParams& ps, Rng&) {
      return make_balanced_tree(get_param(ps, "n"), get_param(ps, "arity"));
    };
    f.draw = [](Rng& rng, std::size_t max_n) {
      return params2("n", rng.in_range(2, cap(max_n, 2, 4096)), "arity",
                     rng.in_range(1, 4));
    };
    f.shrink = [](const ScenarioParams& ps) {
      std::vector<ScenarioParams> out;
      shrink_param(out, ps, 0, 2);
      return out;
    };
    reg.add(std::move(f));
  }

  {
    FamilyInfo f;
    f.name = "lollipop";
    f.params = {{"clique", 2, 256}, {"tail", 1, 2048}};
    f.build = [](const ScenarioParams& ps, Rng&) {
      return make_lollipop(get_param(ps, "clique"), get_param(ps, "tail"));
    };
    f.draw = [](Rng& rng, std::size_t max_n) {
      const std::uint64_t cl =
          rng.in_range(2, std::max<std::uint64_t>(2, std::min<std::uint64_t>(12, max_n / 2)));
      const std::uint64_t tail_hi = cap(max_n > cl ? max_n - cl : 1, 1, 2048);
      return params2("clique", cl, "tail", rng.in_range(1, tail_hi));
    };
    f.shrink = [](const ScenarioParams& ps) {
      std::vector<ScenarioParams> out;
      shrink_param(out, ps, 0, 2);
      shrink_param(out, ps, 1, 1);
      return out;
    };
    reg.add(std::move(f));
  }

  {
    FamilyInfo f;
    f.name = "barbell";
    f.params = {{"clique", 2, 256}, {"bridge", 1, 2048}};
    f.build = [](const ScenarioParams& ps, Rng&) {
      return make_barbell(get_param(ps, "clique"), get_param(ps, "bridge"));
    };
    f.draw = [](Rng& rng, std::size_t max_n) {
      const std::uint64_t cl =
          rng.in_range(2, std::max<std::uint64_t>(2, std::min<std::uint64_t>(10, max_n / 3)));
      const std::uint64_t bridge_hi =
          cap(max_n > 2 * cl ? max_n - 2 * cl : 1, 1, 2048);
      return params2("clique", cl, "bridge", rng.in_range(1, bridge_hi));
    };
    f.shrink = [](const ScenarioParams& ps) {
      std::vector<ScenarioParams> out;
      shrink_param(out, ps, 0, 2);
      shrink_param(out, ps, 1, 1);
      return out;
    };
    // D-ladder: bridge = D - 2 (one clique hop at each end is exact for
    // clique >= 2), cliques absorb the rest of the nominal size.  n stays
    // within ~1 of nominal: 2*clique + bridge - 1.
    DiameterLadder dl;
    dl.min_d = 3;
    dl.max_d = 1024;
    dl.rung = [](std::uint64_t nominal_n, std::uint64_t d) {
      const std::uint64_t spare = nominal_n > d - 3 ? nominal_n - (d - 3) : 4;
      const std::uint64_t clique = std::clamp<std::uint64_t>(spare / 2, 2, 256);
      return DiameterRung{params2("clique", clique, "bridge", d - 2), d};
    };
    f.diameter_ladder = std::move(dl);
    reg.add(std::move(f));
  }

  {
    // Path of `cliques` groups of `size` nodes with consecutive groups
    // completely joined: every hop changes the group index by exactly one, so
    // the diameter is exactly cliques - 1 for every size >= 1.  That
    // exactness is the point — it is the diameter-ladder workhorse (fixed
    // nominal n, growing D) for the O(D)-time claims.
    FamilyInfo f;
    f.name = "cliquepath";
    f.params = {{"cliques", 2, 2048}, {"size", 1, 64}};
    f.build = [](const ScenarioParams& ps, Rng&) {
      return make_path_of_cliques(get_param(ps, "cliques"),
                                  get_param(ps, "size"));
    };
    f.draw = [](Rng& rng, std::size_t max_n) {
      const std::uint64_t size = rng.in_range(1, 4);
      const std::uint64_t hi = cap(max_n / size, 2, 2048);
      return params2("cliques", rng.in_range(2, hi), "size", size);
    };
    f.shrink = [](const ScenarioParams& ps) {
      std::vector<ScenarioParams> out;
      shrink_param(out, ps, 0, 2);
      shrink_param(out, ps, 1, 1);
      return out;
    };
    DiameterLadder dl;
    dl.min_d = 2;
    dl.max_d = 2047;
    dl.rung = [](std::uint64_t nominal_n, std::uint64_t d) {
      const std::uint64_t cliques = d + 1;
      const std::uint64_t size = std::clamp<std::uint64_t>(
          (nominal_n + cliques / 2) / cliques, 1, 64);
      return DiameterRung{params2("cliques", cliques, "size", size), d};
    };
    f.diameter_ladder = std::move(dl);
    reg.add(std::move(f));
  }

  {
    FamilyInfo f;
    f.name = "gnm";
    f.params = {{"n", 2, 4096}, {"m", 1, 1u << 22}};
    f.build = [](const ScenarioParams& ps, Rng& rng) {
      return make_random_connected(get_param(ps, "n"), get_param(ps, "m"), rng);
    };
    f.draw = [](Rng& rng, std::size_t max_n) {
      const std::uint64_t n = rng.in_range(4, cap(max_n, 4, 4096));
      const std::uint64_t hi =
          std::min<std::uint64_t>(n * (n - 1) / 2, n - 1 + 4 * n);
      return params2("n", n, "m", rng.in_range(n - 1, hi));
    };
    f.shrink = [](const ScenarioParams& ps) {
      const std::uint64_t n = ps[0].second, m = ps[1].second;
      std::vector<ScenarioParams> out;
      const auto clamp_m = [](std::uint64_t nn, std::uint64_t mm) {
        return std::clamp<std::uint64_t>(mm, nn - 1, nn * (nn - 1) / 2);
      };
      for (const std::uint64_t nn : {n / 2, n - 1}) {
        if (nn >= 2 && nn < n)
          out.push_back(params2("n", nn, "m", clamp_m(nn, m)));
      }
      if (m / 2 >= n - 1 && m / 2 < m)
        out.push_back(params2("n", n, "m", m / 2));
      return out;
    };
    reg.add(std::move(f));
  }

  {
    FamilyInfo f;
    f.name = "regular";
    f.params = {{"n", 4, 4096}, {"d", 3, 16}};
    f.build = [](const ScenarioParams& ps, Rng& rng) {
      return make_random_regular(get_param(ps, "n"), get_param(ps, "d"), rng);
    };
    f.draw = [](Rng& rng, std::size_t max_n) {
      const std::uint64_t d = rng.in_range(3, 6);
      std::uint64_t n = rng.in_range(d + 2, cap(max_n, d + 2, 4095));
      if ((n * d) % 2 != 0) ++n;
      return params2("n", n, "d", d);
    };
    f.shrink = [](const ScenarioParams& ps) {
      const std::uint64_t n = ps[0].second, d = ps[1].second;
      std::vector<ScenarioParams> out;
      for (std::uint64_t nn : {n / 2, n - 2}) {
        if ((nn * d) % 2 != 0) ++nn;
        if (nn > d + 1 && nn < n) out.push_back(params2("n", nn, "d", d));
      }
      if (d > 3 && (n * (d - 1)) % 2 == 0)
        out.push_back(params2("n", n, "d", d - 1));
      return out;
    };
    reg.add(std::move(f));
  }

  {
    // Theorem 3.1's construction: `n` and `m` are PER-SIDE (total 2n nodes);
    // ol / or index the opened clique edge on each side.
    FamilyInfo f;
    f.name = "dumbbell";
    f.params = {{"n", 3, 2048}, {"m", 3, 4096}, {"ol", 0, 4096}, {"or", 0, 4096}};
    f.build = [](const ScenarioParams& ps, Rng&) {
      const auto m = get_param(ps, "m");
      const std::size_t count = dumbbell_open_edge_count(m);
      const auto ol = get_param(ps, "ol"), orr = get_param(ps, "or");
      if (ol >= count || orr >= count)
        throw std::invalid_argument("open edge index out of range");
      return make_dumbbell(get_param(ps, "n"), m, ol, orr).graph;
    };
    f.draw = [](Rng& rng, std::size_t max_n) {
      const std::uint64_t m = rng.in_range(3, 45);
      const std::uint64_t kappa = dumbbell_clique_size(m);
      const std::uint64_t side =
          rng.in_range(kappa + 1, cap(max_n / 2, kappa + 1, 2048));
      const std::uint64_t count = dumbbell_open_edge_count(m);
      ScenarioParams ps = params2("n", side, "m", m);
      ps.emplace_back("ol", rng.below(count));
      ps.emplace_back("or", rng.below(count));
      return ps;
    };
    f.shrink = [](const ScenarioParams& ps) {
      const std::uint64_t n = ps[0].second, m = ps[1].second;
      std::vector<ScenarioParams> out;
      const auto cand = [&](std::uint64_t nn, std::uint64_t mm) {
        if (mm < 3) return;
        const std::uint64_t kappa = dumbbell_clique_size(mm);
        nn = std::max<std::uint64_t>(nn, kappa + 1);
        if (nn >= ps[0].second && mm >= ps[1].second) return;  // no progress
        ScenarioParams c = params2("n", nn, "m", mm);
        c.emplace_back("ol", 0);
        c.emplace_back("or", 0);
        out.push_back(std::move(c));
      };
      cand(n / 2, m);
      cand(n - 1, m);
      cand(n, m / 2);
      return out;
    };
    reg.add(std::move(f));
  }

  {
    // Theorem 3.13's construction; actual node count is gamma * D' ∈ Θ(n).
    FamilyInfo f;
    f.name = "cliquecycle";
    f.params = {{"n", 4, 4096}, {"D", 3, 512}};
    f.build = [](const ScenarioParams& ps, Rng&) {
      return make_clique_cycle(get_param(ps, "n"), get_param(ps, "D")).graph;
    };
    f.draw = [](Rng& rng, std::size_t max_n) {
      const std::uint64_t n = rng.in_range(8, cap(max_n, 8, 4096));
      const std::uint64_t hi =
          std::max<std::uint64_t>(3, std::min<std::uint64_t>(16, n / 2));
      return params2("n", n, "D", rng.in_range(3, hi));
    };
    f.shrink = [](const ScenarioParams& ps) {
      const std::uint64_t n = ps[0].second, d = ps[1].second;
      std::vector<ScenarioParams> out;
      if (n / 2 >= 4) out.push_back(params2("n", n / 2, "D", std::min(d, n / 4 > 3 ? n / 4 : 3)));
      if (n > 4) out.push_back(params2("n", n - 1, "D", d));
      if (d / 2 >= 3) out.push_back(params2("n", n, "D", d / 2));
      return out;
    };
    // D-ladder: the construction rounds the requested D up to D' = 4*ceil(D/4)
    // cliques; for gamma >= 3 the exact diameter is D' + 1 (antipodal middle
    // nodes pay D'/2 connector edges each way plus one entry->exit hop inside
    // every traversed clique and one hop out of / into the end cliques).
    // gamma >= 3 is forced by raising n to 3*D' when the nominal size is too
    // small for the rung; tests/graphgen/family_properties_test.cpp pins the
    // closed form by BFS.
    DiameterLadder dl;
    dl.min_d = 3;
    dl.max_d = 512;
    dl.rung = [](std::uint64_t nominal_n, std::uint64_t d) {
      const std::uint64_t d_prime = 4 * ((d + 3) / 4);
      const std::uint64_t n = std::clamp<std::uint64_t>(
          std::max(nominal_n, 3 * d_prime), 4, 4096);
      return DiameterRung{params2("n", n, "D", d), d_prime + 1};
    };
    f.diameter_ladder = std::move(dl);
    reg.add(std::move(f));
  }

  return reg;
}

}  // namespace

const ProtocolRegistry& default_protocols() {
  static const ProtocolRegistry reg = build_protocols();
  return reg;
}

const FamilyRegistry& default_families() {
  static const FamilyRegistry reg = build_families();
  return reg;
}

}  // namespace ule
