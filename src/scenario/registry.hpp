// The protocol and graph-family registries: one place declaring every
// protocol's factory, knowledge prerequisites and success contract, and every
// graph family's parameterized, seedable generator with its valid ranges.
//
// Everything that used to be re-declared ad hoc (the AlgoSpec lambdas of
// matrix_test / congest_matrix_test, the factory lists of complexity_test and
// bench_table1_summary) consumes these registries, and the conformance fuzzer
// draws its randomized scenario space from them.  A new protocol or family
// registers once and is immediately covered by the conformance matrix, the
// CONGEST matrix, the Table-1 bench and the fuzzer.
//
// The success contract is the paper's taxonomy (Table 1): deterministic
// algorithms and Las Vegas algorithms must elect a unique leader on every
// run; Monte Carlo algorithms may fail to elect (their whp analysis), but
// safety — never more than one leader — must still hold.  The round and
// message envelopes are generous universal bounds (they must hold for every
// family, seed and wakeup schedule, not just in expectation); the fuzzer
// treats a breach as a liveness / budget violation.

#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "election/election.hpp"
#include "net/graph.hpp"
#include "net/rng.hpp"
#include "scenario/scenario.hpp"

namespace ule {

/// Success contract of a protocol (Table 1's "success probability" column).
enum class Contract : std::uint8_t {
  Deterministic,  ///< must elect a unique leader on every run
  LasVegas,       ///< randomized; success probability 1
  MonteCarlo,     ///< may fail to elect (whp regime); safety must still hold
};

const char* to_string(Contract c);

/// Fault classes of the delivery adversary (net/adversary.hpp), as a bitmask
/// so a protocol can declare exactly which relaxations of the paper's
/// lockstep-synchronous fault-free model its SAFETY survives.  Safety here is
/// the paper's agreement half of the contract — never more than one leader,
/// never an agreement violation — with liveness declared separately
/// (ProtocolInfo::live_under_async): under drops and crashes no reactive
/// protocol can promise termination.
namespace faults {
inline constexpr std::uint8_t kNone = 0;
inline constexpr std::uint8_t kDelay = 1;      ///< bounded delivery delays
inline constexpr std::uint8_t kDrop = 2;       ///< message loss
inline constexpr std::uint8_t kDuplicate = 4;  ///< message duplication
inline constexpr std::uint8_t kReorder = 8;    ///< inbox reordering
inline constexpr std::uint8_t kCrash = 16;     ///< crash-stop node faults
inline constexpr std::uint8_t kAll = 31;

/// The classes a scenario-level adversary config exercises.
std::uint8_t classes(const ScenarioAdversary& adv);
/// Human-readable "delay|drop|..." (or "none") for reports and errors.
std::string to_string(std::uint8_t classes);
}  // namespace faults

/// Everything a protocol's prepare / envelope functions may assume about one
/// scenario instance.  Derived from the built graph + wakeup schedule by the
/// runner; tests and benches build it with shape_of().
struct ScenarioShape {
  std::size_t n = 0;
  std::size_t m = 0;
  std::uint32_t diameter = 0;  ///< exact
  bool complete = false;       ///< every node has degree n-1
  Round wakeup_span = 0;       ///< latest spontaneous wake round (0 = simultaneous)
  bool adversarial_wakeup = false;  ///< wakeup is not simultaneous
};

/// Shape of a concrete graph (diameter must be the exact diameter).
ScenarioShape shape_of(const Graph& g, std::uint32_t diameter,
                       Round wakeup_span = 0, bool adversarial_wakeup = false);

/// The engine Knowledge granting exactly `grant` for this instance.
Knowledge knowledge_for(const ScenarioShape& shape, KnowledgeGrant grant);

/// One declared asymptotic-growth claim: running the protocol over a ladder
/// of `family` instances, the log-log least-squares slope of `metric` against
/// the declared `axis` must land within `exponent` ± `tol`.  These are the
/// empirical counterparts of the paper's Table-1 entries; the Complexity Lab
/// (src/lab/) sweeps every declared curve and fails when a fitted slope
/// leaves its band.
///
/// Two axes, because the paper's bounds live on two axes: message bounds are
/// stated in n and m (axis "n": an ascending n-ladder), while the time bounds
/// are stated in the diameter — universal election runs in O(D) rounds, and
/// the lower-bound constructions hold D fixed while n grows — so O(D) claims
/// sweep a family's diameter ladder (axis "diameter": total size ~fixed,
/// growing D; see FamilyInfo::diameter_ladder) and fit against the
/// BFS-measured diameter.
///
/// Tolerances are calibrated for lab-sized ladders, where polylog factors
/// inflate the local slope (d ln(n·ln n)/d ln n = 1 + 1/ln n ≈ 1.2 at
/// n = 128), so a Θ(n log n) bound is declared as exponent 1 with tol ≥ 0.3.
/// Near-zero bands ("rounds independent of the axis") additionally get the
/// fit's own confidence width added to the tolerance (lab/fit.hpp,
/// effective_tolerance): a flat curve has no dynamic range in the metric, so
/// replicate noise dominates its slope.
struct GrowthExpectation {
  std::string family;  ///< family-registry key the ladder runs on
  std::string metric;  ///< "rounds" | "messages" | "bits"
  double exponent = 1.0;
  double tol = 0.3;
  std::string note;  ///< the paper bound this encodes (shown in reports)
  /// "n" | "diameter" | "loss": the ladder the fit runs on.  "loss" holds
  /// the shape fixed and sweeps the adversary's drop probability, fitting
  /// against x = 1/(1 - p) — the classical expected-transmissions factor of
  /// a retransmitting link — so the reliable wrapper's overhead
  /// (messages ≈ base · O(1/(1-p))) is a fitted, gated artifact.
  std::string axis = "n";
};

struct ProtocolInfo {
  std::string name;
  Contract contract = Contract::Deterministic;
  /// Minimum knowledge the protocol is entitled to; scenarios grant this or
  /// more (granting extra true values never hurts a correct algorithm).
  KnowledgeGrant min_knowledge = KnowledgeGrant::None;
  /// Safe under adversarial wakeup (random / single schedules).  Protocols
  /// running on a fixed global round schedule (spanner_elect) or epoch
  /// clock (the Las Vegas restarts) require simultaneous wakeup.
  bool wakeup_tolerant = false;
  /// Requires a complete topology (the [14] context result).
  bool needs_complete = false;
  /// The protocol is an explicit-election overlay (make_explicit): the
  /// runner additionally checks that every node learned the leader's id.
  bool explicit_overlay = false;
  /// Fault classes (faults::k*) under which the protocol's SAFETY holds:
  /// no run under an adversary restricted to these classes ever elects two
  /// leaders or violates agreement.  The runner rejects scenarios whose
  /// adversary exercises an undeclared class (a config error, not a
  /// violation); the conformance fuzzer draws adversaries inside this mask
  /// and the nightly hunts for declarations that are too generous.
  std::uint8_t safe_under = faults::kNone;
  /// Liveness survives bounded asynchrony: under an adversary limited to
  /// delay / duplicate / reorder (no loss, no crashes) the protocol still
  /// terminates with a unique leader — inside a round envelope stretched by
  /// the delay bound.  Clock-driven protocols (fixed global schedules,
  /// epoch restarts) are generally not, even when their safety is.
  bool live_under_async = false;
  /// Build the factory.  opt.knowledge is already set (>= min_knowledge);
  /// prepare may set opt.ids and other per-protocol options.
  std::function<ProcessFactory(const ScenarioShape&, RunOptions&)> prepare;
  /// Liveness envelope: max logical rounds a conforming run may take.
  std::function<Round(const ScenarioShape&)> round_envelope;
  /// Budget envelope: max messages a conforming run may send.
  std::function<std::uint64_t(const ScenarioShape&)> message_envelope;
  /// Declared growth curves (may be empty); consumed by the Complexity Lab.
  std::vector<GrowthExpectation> growth;
  /// The protocol runs behind the reliable link layer (net/reliable.hpp):
  /// prepare() wraps the base factory with make_reliable, the scenario's
  /// `r=` tail (ScenarioReliable) is honored, and liveness additionally
  /// holds under LOSSY adversaries (drop / duplication below total
  /// partition), not just the loss-free asynchrony live_under_async covers —
  /// the runner enforces termination for drop_pm < 1000 when this is set.
  bool reliable_transport = false;
  /// Liveness survives bounded CHURN: under a crash schedule whose every
  /// interval is an early, bounded rebirth (crash in the first rounds, before
  /// the node has acked anything, recovering within a bounded window) the
  /// protocol still terminates with a unique leader.  Requires
  /// reliable_transport — the ARQ layer's go-back-all replay is what delivers
  /// the full history (including the winning wave) to a reborn node.  Crashes
  /// AFTER ack progress leave peers' streams gap-stuck toward the reborn node:
  /// safety still holds (the node stays Undecided and the link eventually
  /// gives up) but termination does not, so the runner only enforces liveness
  /// for schedules inside the bounded-churn window (see runner.cpp).
  bool live_under_churn = false;
};

class ProtocolRegistry {
 public:
  /// Throws std::invalid_argument on a duplicate name.
  void add(ProtocolInfo info);
  const ProtocolInfo* find(const std::string& name) const;
  /// Like find(), but throws std::invalid_argument on an unknown name.
  const ProtocolInfo& at(const std::string& name) const;
  const std::vector<ProtocolInfo>& all() const { return protocols_; }

 private:
  std::vector<ProtocolInfo> protocols_;
};

/// Declared range of one integer family parameter.  Cross-parameter
/// constraints (e.g. gnm's n-1 <= m <= n(n-1)/2) are enforced by build().
struct ParamSpec {
  std::string name;
  std::uint64_t lo = 1;
  std::uint64_t hi = 1;
};

/// One rung of a family's diameter ladder: the parameterization to build and
/// the EXACT diameter the built instance will have.  Conventions must be
/// exact — tests/graphgen/family_properties_test.cpp BFS-measures every rung
/// and fails on any off-by-one, because a rung whose declared D drifts from
/// the real diameter silently poisons every diameter-axis fit.
struct DiameterRung {
  ScenarioParams params;
  std::uint64_t diameter = 0;
};

/// A family's diameter-ladder convention: instances of ~`nominal_n` total
/// nodes whose diameter grows with the rung (the dual of the n-ladder, where
/// the shape stays fixed and n grows).  rung(nominal_n, d) returns params
/// within the declared ParamSpec ranges and the exact resulting diameter;
/// `d` ranges over [min_d, max_d] (the lab additionally caps rungs at
/// ~nominal_n / 2 so the clique blobs never degenerate).
struct DiameterLadder {
  std::uint64_t min_d = 2;
  std::uint64_t max_d = 512;
  std::function<DiameterRung(std::uint64_t nominal_n, std::uint64_t d)> rung;
};

struct FamilyInfo {
  std::string name;
  std::vector<ParamSpec> params;
  /// Instances are complete graphs (usable by needs_complete protocols).
  bool complete = false;
  /// Build the instance.  `rng` drives randomized families (deterministic
  /// families ignore it), so a (params, seed) pair is fully replayable.
  /// Throws std::invalid_argument on invalid parameter combinations.
  std::function<Graph(const ScenarioParams&, Rng&)> build;
  /// Draw a valid parameterization with total n <= max_n (handles the
  /// cross-parameter constraints build() enforces).
  std::function<ScenarioParams(Rng&, std::size_t max_n)> draw;
  /// Candidate strictly-smaller parameterizations for failure shrinking
  /// (roughly halving and decrementing); empty when already minimal.
  std::function<std::vector<ScenarioParams>(const ScenarioParams&)> shrink;
  /// Diameter-ladder convention (fixed nominal n, growing D); absent for
  /// families whose diameter is tied to n (ring, path) or constant
  /// (complete, star).  Consumed by diameter-axis growth expectations.
  std::optional<DiameterLadder> diameter_ladder;
};

class FamilyRegistry {
 public:
  void add(FamilyInfo info);
  const FamilyInfo* find(const std::string& name) const;
  const FamilyInfo& at(const std::string& name) const;
  const std::vector<FamilyInfo>& all() const { return families_; }

 private:
  std::vector<FamilyInfo> families_;
};

/// The built-in sets: every conformant protocol and every family in the
/// library.  Returned by reference to a process-lifetime instance; copy it
/// to extend (e.g. tests registering deliberately broken protocols).
const ProtocolRegistry& default_protocols();
const FamilyRegistry& default_families();

/// Convenience for tests/benches running a protocol on a concrete graph:
/// grant exactly the protocol's required knowledge and build its factory.
ProcessFactory prepare_protocol(const ProtocolInfo& info,
                                const ScenarioShape& shape, RunOptions& opt);

}  // namespace ule
