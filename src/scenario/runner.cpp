#include "scenario/runner.hpp"

#include <algorithm>
#include <optional>
#include <set>
#include <stdexcept>
#include <string>

#include "election/explicit_elect.hpp"
#include "graphgen/graph_algos.hpp"
#include "net/reliable.hpp"
#include "net/wakeup.hpp"

namespace ule {

namespace {

/// Domain-separated streams derived from the scenario seed, so the graph,
/// the wakeup schedule and the run itself never share coins.
Rng graph_rng(const Scenario& s) {
  std::uint64_t sm = s.seed ^ 0x6B7A9E3C51D20F84ULL;
  return Rng(splitmix64(sm));
}
Rng wakeup_rng(const Scenario& s) {
  std::uint64_t sm = s.seed ^ 0x2F8D14C6A0B97E35ULL;
  return Rng(splitmix64(sm));
}

void validate_params(const FamilyInfo& fam, const Scenario& s) {
  if (s.params.size() != fam.params.size())
    throw std::invalid_argument("family \"" + fam.name + "\" takes " +
                                std::to_string(fam.params.size()) +
                                " params, scenario has " +
                                std::to_string(s.params.size()));
  for (std::size_t i = 0; i < fam.params.size(); ++i) {
    const ParamSpec& spec = fam.params[i];
    const auto& [name, value] = s.params[i];
    if (name != spec.name)
      throw std::invalid_argument("family \"" + fam.name + "\" param " +
                                  std::to_string(i) + " must be \"" +
                                  spec.name + "\", got \"" + name + "\"");
    if (value < spec.lo || value > spec.hi)
      throw std::invalid_argument(
          "family \"" + fam.name + "\" param " + spec.name + "=" +
          std::to_string(value) + " outside [" + std::to_string(spec.lo) +
          ", " + std::to_string(spec.hi) + "]");
  }
}

/// Bounded-churn window for liveness enforcement.  The reliable wrapper's
/// rebirth story only guarantees termination when every crashed node went
/// down at round 0 — before its first step, so its first life is EMPTY.
/// Rebirth is then indistinguishable (to every peer's inner protocol) from
/// a late-waking node behind a lossy link: the peers' unacked queues hold
/// only organic traffic, which the go-back-all replay delivers exactly once
/// and in order to the reborn node's fresh epoch.  A node that crashes
/// AFTER stepping leaves responses to its first life (wave echoes) in its
/// peers' queues; the replay hands those to the fresh process, which never
/// sent the wave they answer — strict-accounting protocols (the pif wave
/// pool) reject that as a protocol violation.  And a node that crashes
/// after ACKING leaves its peers' streams gap-stuck (seqs past the acked
/// prefix park forever against a reset expected=1).  Both stay SAFE —
/// quiesce-undecided at worst — but not live.  The recover bound just keeps
/// the window inside the envelope stretch below; the ARQ give-up horizon is
/// orders of magnitude further out.
constexpr Round kChurnLivenessCrashBy = 0;
constexpr Round kChurnLivenessRecoverBy = 16;

bool bounded_churn(const std::vector<ScenarioCrash>& cs) {
  if (cs.empty()) return false;
  for (const ScenarioCrash& c : cs) {
    if (c.recover == kRoundForever) return false;  // crash-stop, not churn
    if (c.at > kChurnLivenessCrashBy) return false;
    if (c.recover > kChurnLivenessRecoverBy) return false;
  }
  return true;
}

std::string counter_diff(const char* what, std::uint64_t base,
                         std::uint64_t got, unsigned threads) {
  return std::string("determinism: ") + what + " " + std::to_string(got) +
         " at threads=" + std::to_string(threads) + " != " +
         std::to_string(base) + " at threads=1";
}

}  // namespace

Graph build_scenario_graph(const FamilyRegistry& families, const Scenario& s) {
  const FamilyInfo& fam = families.at(s.family);
  validate_params(fam, s);
  Rng rng = graph_rng(s);
  return fam.build(s.params, rng);
}

std::vector<Round> scenario_wakeup(const Scenario& s, std::size_t n) {
  switch (s.wakeup) {
    case WakeupKind::Simultaneous:
      return {};
    case WakeupKind::Random: {
      Rng rng = wakeup_rng(s);
      return random_wakeup(n, s.wakeup_spread, rng);
    }
    case WakeupKind::Single:
      return single_wakeup(n, static_cast<NodeId>(s.wakeup_node % n));
  }
  return {};
}

ScenarioOutcome run_scenario(const ProtocolRegistry& protocols,
                             const FamilyRegistry& families, const Scenario& s,
                             const ScenarioRunConfig& cfg) {
  const ProtocolInfo& proto = protocols.at(s.protocol);

  // --- configuration validity (errors, not conformance violations) ---
  if (s.knowledge < proto.min_knowledge)
    throw std::invalid_argument("protocol \"" + proto.name + "\" requires " +
                                std::string(to_string(proto.min_knowledge)) +
                                " knowledge, scenario grants " +
                                to_string(s.knowledge));
  if (s.wakeup != WakeupKind::Simultaneous && !proto.wakeup_tolerant)
    throw std::invalid_argument("protocol \"" + proto.name +
                                "\" requires simultaneous wakeup");
  const std::uint8_t adv_classes = faults::classes(s.adversary);
  if (adv_classes & ~proto.safe_under)
    throw std::invalid_argument(
        "protocol \"" + proto.name + "\" declares no safety under " +
        faults::to_string(adv_classes & ~proto.safe_under) +
        " faults (safe_under = " + faults::to_string(proto.safe_under) + ")");
  if (s.reliable.any() && !proto.reliable_transport)
    throw std::invalid_argument("protocol \"" + proto.name +
                                "\" does not run the reliable transport "
                                "(r= is only valid for *_reliable variants)");
  // Churn validity: a rebirth only has clean semantics when the node's
  // first life was EMPTY (crash at round 0, before its first step ever).
  // A node reborn after stepping receives in-flight — or ARQ-replayed —
  // responses to a life its fresh state never lived, and strict-accounting
  // protocols (the pif wave pool) rightly abort on such frames; that is a
  // config error, not a conformance finding.  Crash-stop entries and empty
  // (recover == crash) intervals are not churn and pass through.
  for (const ScenarioCrash& c : s.adversary.crashes) {
    if (c.recover == kRoundForever || c.recover == c.at) continue;
    if (c.at > kChurnLivenessCrashBy || c.recover > kChurnLivenessRecoverBy)
      throw std::invalid_argument(
          "churn interval " + std::to_string(c.node) + "@" +
          std::to_string(c.at) + "-" + std::to_string(c.recover) +
          " outside the bounded-churn window (crash at round <= " +
          std::to_string(kChurnLivenessCrashBy) + ", recover by round " +
          std::to_string(kChurnLivenessRecoverBy) + ")");
  }
  // Liveness is only promised without loss OR forgery: drops and crashes can
  // livelock any reactive protocol, and duplicated messages stall echo
  // accounting even where they cannot forge a second leader (kingdom
  // quiesces undecided under duplication).  Delay and reorder alone must
  // still terminate when the protocol declares live_under_async.  A reliable
  // transport (the ARQ wrapper) additionally buys termination under drops
  // and duplication — every frame is retransmitted until acked — as long as
  // the loss stays in the calibrated domain (≤ 600‰, the lab loss ladder's
  // top rung, where give-up is astronomically unlikely; beyond that a
  // deadline-stretched run may legitimately see a link give up, and at
  // drop = 1.0 no wrapper can push a bit through an edge that delivers
  // nothing) and no node crashed for good.  Bounded CHURN is the exception
  // to the crash clause: when every crash is an early, bounded rebirth (see
  // bounded_churn above) and the protocol declares live_under_churn, the
  // reliable transport's full-history replay revives the reborn node and
  // termination is enforced again.
  const bool enforce_liveness =
      adv_classes == faults::kNone ||
      (proto.live_under_async &&
       (adv_classes & ~(faults::kDelay | faults::kReorder)) == 0) ||
      (proto.reliable_transport && proto.live_under_async &&
       (adv_classes & ~(faults::kDelay | faults::kDrop | faults::kDuplicate |
                        faults::kReorder)) == 0 &&
       s.adversary.drop_pm <= 600) ||
      (proto.live_under_churn && proto.live_under_async &&
       bounded_churn(s.adversary.crashes) &&
       (adv_classes & ~(faults::kDelay | faults::kDrop | faults::kDuplicate |
                        faults::kReorder | faults::kCrash)) == 0 &&
       s.adversary.drop_pm <= 600);

  const Graph g = build_scenario_graph(families, s);

  ScenarioOutcome out;
  out.scenario = s;
  out.shape = shape_of(
      g, diameter_exact(g),
      s.wakeup == WakeupKind::Random ? s.wakeup_spread : Round{0},
      s.wakeup != WakeupKind::Simultaneous);

  if (proto.needs_complete && !out.shape.complete)
    throw std::invalid_argument("protocol \"" + proto.name +
                                "\" requires a complete topology; family \"" +
                                s.family + "\" instance is not complete");

  // Under an adversary the envelopes stretch: every hop can cost up to
  // 1 + max_delay rounds, and reordering / duplication can reroute adoption
  // chains onto costlier paths (the 2x message headroom).  A reliable
  // transport under loss additionally pays the classical 1/(1 - p)
  // expected-transmissions factor on every frame (messages: 2/(1 - p)) —
  // and a steeper latency factor in rounds: a lost frame waits out a full
  // backed-off retransmit interval (~rto rounds, not 1) per loss, so hops
  // cost ~rto/(1 - p) rounds in the tail (rounds: 4/(1 - p),
  // fuzz-calibrated).
  std::uint64_t lossy_den = 1, lossy_round_num = 1, lossy_msg_num = 1;
  if (proto.reliable_transport && s.adversary.drop_pm != 0 &&
      s.adversary.drop_pm < 1000) {
    lossy_den = 1000 - s.adversary.drop_pm;
    lossy_round_num = 4000;
    lossy_msg_num = 2000;
  }
  // Churn stretches both envelopes further: a reborn node sits dead until
  // its recover round, then waits out a backed-off retransmit interval
  // before the replay reaches it (rounds), and the replay itself re-sends
  // each inbound link's history once per rebirth (messages).
  Round churn_round_slack = 0;
  std::uint64_t churn_rebirths = 0;
  for (const ScenarioCrash& c : s.adversary.crashes) {
    if (c.recover == kRoundForever || c.recover == c.at) continue;
    ++churn_rebirths;
    churn_round_slack = std::max(churn_round_slack, c.recover);
  }
  if (churn_rebirths > 0) churn_round_slack += 512;  // backoff-ladder slack
  const Round round_env =
      proto.round_envelope(out.shape) *
          (adv_classes == faults::kNone ? 1 : s.adversary.max_delay + 2) *
          lossy_round_num / lossy_den +
      churn_round_slack;
  const std::uint64_t msg_env = proto.message_envelope(out.shape) *
                                (adv_classes == faults::kNone ? 1 : 2) *
                                (1 + churn_rebirths) * lossy_msg_num /
                                lossy_den;

  RunOptions opt;
  opt.seed = s.seed;
  opt.knowledge = knowledge_for(out.shape, s.knowledge);
  opt.congest = CongestMode::Count;
  opt.max_rounds = round_env * cfg.envelope_slack;
  opt.adversary = s.adversary.engine_config(g.n());
  opt.reliable.rto = static_cast<std::uint32_t>(s.reliable.rto);
  opt.reliable.backoff_cap = static_cast<std::uint32_t>(s.reliable.cap);
  const std::vector<Round> wake = scenario_wakeup(s, g.n());
  if (!wake.empty()) opt.wakeup = wake;
  opt.threads = 1;
  opt.metrics = cfg.metrics;
  const ProcessFactory factory = proto.prepare(out.shape, opt);

  // --- reference run (threads = 1), with overlay inspection when needed ---
  std::size_t know_count = 0;
  std::set<std::uint64_t> learned;
  std::optional<Uid> winner_uid;
  const auto inspect = [&](const SyncEngine& eng) {
    if (!proto.explicit_overlay) return;
    const ElectionVerdict v = judge_election(eng);
    if (v.unique_leader && !eng.anonymous())
      winner_uid = eng.uid_of(v.leader_slot);
    for (NodeId slot = 0; slot < eng.graph().n(); ++slot) {
      const Process* raw = eng.process(slot);
      // The reliable wrapper is transparent to the overlay check: reach
      // through it to the wrapped ExplicitProcess.
      if (const auto* rel = dynamic_cast<const ReliableProcess*>(raw))
        raw = rel->inner();
      const auto* p = dynamic_cast<const ExplicitProcess*>(raw);
      if (p != nullptr && p->known_leader().has_value()) {
        ++know_count;
        learned.insert(*p->known_leader());
      }
    }
  };
  out.report = run_election(g, factory, opt, inspect);
  const ElectionReport& rep = out.report;
  auto violate = [&out](std::string v) { out.violations.push_back(std::move(v)); };

  // --- safety (holds under EVERY declared adversary) ---
  if (rep.verdict.elected > 1)
    violate("safety: " + std::to_string(rep.verdict.elected) + " leaders");
  const bool must_elect =
      proto.contract != Contract::MonteCarlo && enforce_liveness;
  if (must_elect && !rep.verdict.unique_leader) {
    // A run that quiesced undecided is a livelock diagnosis too: surface
    // last_progress / undecided_nodes instead of just the counts.
    const std::string diag = describe_nontermination(rep.run);
    violate("safety: " + std::string(to_string(proto.contract)) +
            " contract, but elected=" + std::to_string(rep.verdict.elected) +
            " undecided=" + std::to_string(rep.verdict.undecided) +
            (diag.empty() ? "" : "; " + diag));
  }
  if (rep.verdict.elected == 1 && rep.verdict.undecided != 0 &&
      rep.run.completed && adv_classes == faults::kNone)
    violate("safety: a leader exists but " +
            std::to_string(rep.verdict.undecided) + " nodes never decided");

  // --- explicit overlay agreement ---
  // Disagreement is a safety breach under every adversary; full coverage
  // ("everyone learned an id") is a liveness property — a dropped LEADER
  // flood legitimately leaves gaps.
  if (proto.explicit_overlay && rep.verdict.unique_leader) {
    if (know_count != g.n() && enforce_liveness)
      violate("explicit: only " + std::to_string(know_count) + "/" +
              std::to_string(g.n()) + " nodes learned a leader id");
    if (learned.size() > 1)
      violate("explicit: nodes disagree on the leader id (" +
              std::to_string(learned.size()) + " distinct)");
    if (winner_uid && learned.size() == 1 && *learned.begin() != *winner_uid)
      violate("explicit: learned id != the winner's uid");
  }

  // --- liveness / budget (only where termination is actually promised) ---
  if (enforce_liveness) {
    if (!rep.run.completed)
      violate("liveness: no quiescence within " +
              std::to_string(opt.max_rounds) + " rounds (envelope " +
              std::to_string(round_env) + "); " +
              describe_nontermination(rep.run));
    else if (rep.run.rounds > round_env)
      violate("liveness: " + std::to_string(rep.run.rounds) +
              " rounds > envelope " + std::to_string(round_env));
    if (rep.run.messages > msg_env)
      violate("budget: " + std::to_string(rep.run.messages) +
              " messages > envelope " + std::to_string(msg_env));
  }

  // --- congest ---
  // Send-side pacing is the protocol's own duty, but adversarial schedules
  // push protocols onto delivery patterns their pacing was never designed
  // for; breaches there are a liveness-grade finding, not a safety one.
  if (rep.run.congest_violations != 0 && adv_classes == faults::kNone)
    violate("congest: " + std::to_string(rep.run.congest_violations) +
            " violations");

  // --- determinism across thread counts ---
  if (cfg.check_determinism && s.threads > 1) {
    RunOptions popt = opt;
    popt.threads = s.threads;
    popt.parallel_cutoff = 1;  // force every round through the sharded path
    const ElectionReport par = run_election(g, factory, popt);
    const unsigned t = s.threads;
    if (par.run.rounds != rep.run.rounds)
      violate(counter_diff("rounds", rep.run.rounds, par.run.rounds, t));
    if (par.run.executed_rounds != rep.run.executed_rounds)
      violate(counter_diff("executed_rounds", rep.run.executed_rounds,
                           par.run.executed_rounds, t));
    if (par.run.node_steps != rep.run.node_steps)
      violate(counter_diff("node_steps", rep.run.node_steps,
                           par.run.node_steps, t));
    if (par.run.messages != rep.run.messages)
      violate(counter_diff("messages", rep.run.messages, par.run.messages, t));
    if (par.run.bits != rep.run.bits)
      violate(counter_diff("bits", rep.run.bits, par.run.bits, t));
    if (par.run.congest_violations != rep.run.congest_violations)
      violate(counter_diff("congest_violations", rep.run.congest_violations,
                           par.run.congest_violations, t));
    if (par.run.last_status_change != rep.run.last_status_change)
      violate(counter_diff("last_status_change", rep.run.last_status_change,
                           par.run.last_status_change, t));
    if (par.run.last_progress != rep.run.last_progress)
      violate(counter_diff("last_progress", rep.run.last_progress,
                           par.run.last_progress, t));
    if (par.run.crashed != rep.run.crashed)
      violate(counter_diff("crashed", rep.run.crashed, par.run.crashed, t));
    if (par.run.recoveries != rep.run.recoveries)
      violate(counter_diff("recoveries", rep.run.recoveries,
                           par.run.recoveries, t));
    if (par.run.adv_crash_drops != rep.run.adv_crash_drops)
      violate(counter_diff("adv_crash_drops", rep.run.adv_crash_drops,
                           par.run.adv_crash_drops, t));
    if (par.statuses != rep.statuses)
      violate("determinism: per-node statuses differ at threads=" +
              std::to_string(t));
    if (par.sent_by_node != rep.sent_by_node)
      violate("determinism: per-node send counts differ at threads=" +
              std::to_string(t));
    if (par.run.metrics != rep.run.metrics)
      violate("determinism: metrics snapshots differ at threads=" +
              std::to_string(t));
  }

  return out;
}

}  // namespace ule
