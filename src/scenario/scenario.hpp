// A Scenario is one point in the universal conformance space: graph family
// (with parameters) × protocol × knowledge grant × wakeup schedule × seed ×
// thread count.
//
// The paper's headline claim is *universality* — its bounds hold for every
// graph, knowledge regime and wakeup schedule — so the conformance surface
// cannot be a hand-enumerated grid.  A Scenario is the unit the randomized
// conformance fuzzer draws, runs, and (on failure) shrinks; the string
// round-trip (`encode()` / `parse()`) makes any run replayable from a single
// printed token:
//
//   ule1:gnm{n=40,m=100}:least_el_all:k=n:w=rand.20:s=7919:t=2
//
// Fields, colon-separated after the `ule1` version tag:
//   family{p1=v1,p2=v2}   graph family + integer params (registry order)
//   protocol              protocol-registry key
//   k=none|n|nd|nmd       knowledge grant (always the exact true values)
//   w=sim | rand.S | one.W   wakeup schedule: simultaneous, random in
//                         [0,S] (earliest forced to 0), or only node W%n
//   s=SEED                run seed (drives ids, coins, the graph when the
//                         family is randomized, and the wakeup schedule)
//   t=THREADS             engine worker threads (the determinism axis)
//
// `parse(encode(s)) == s` holds for every Scenario, and equal Scenarios
// produce bit-for-bit identical runs (the engine is a pure function of
// (graph, processes, seed); see net/engine.hpp).

#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "net/types.hpp"

namespace ule {

/// Which global parameters every node is told (always the true values).
/// Ordered as a chain None < N < ND < NMD so "grant at least what the
/// protocol requires" is a simple comparison.
enum class KnowledgeGrant : std::uint8_t { None = 0, N = 1, ND = 2, NMD = 3 };

enum class WakeupKind : std::uint8_t { Simultaneous, Random, Single };

/// Integer family parameters in registry-declared order.
using ScenarioParams = std::vector<std::pair<std::string, std::uint64_t>>;

struct Scenario {
  std::string family;
  ScenarioParams params;
  std::string protocol;
  KnowledgeGrant knowledge = KnowledgeGrant::None;
  WakeupKind wakeup = WakeupKind::Simultaneous;
  Round wakeup_spread = 0;        ///< Random only: wake rounds in [0, spread]
  std::uint64_t wakeup_node = 0;  ///< Single only: the waker (taken mod n)
  std::uint64_t seed = 1;
  unsigned threads = 1;

  bool operator==(const Scenario&) const = default;

  /// The replay token (see file comment).
  std::string encode() const;
  /// Inverse of encode(); throws std::invalid_argument with a diagnostic on
  /// malformed tokens.  Structural only — family/protocol names and param
  /// ranges are validated against the registries when the scenario is run.
  static Scenario parse(const std::string& token);

  /// Value of a named family parameter; throws std::invalid_argument when
  /// the scenario does not carry it.
  std::uint64_t param(const std::string& name) const;
};

const char* to_string(KnowledgeGrant k);
const char* to_string(WakeupKind w);

}  // namespace ule
