// A Scenario is one point in the universal conformance space: graph family
// (with parameters) × protocol × knowledge grant × wakeup schedule × seed ×
// thread count.
//
// The paper's headline claim is *universality* — its bounds hold for every
// graph, knowledge regime and wakeup schedule — so the conformance surface
// cannot be a hand-enumerated grid.  A Scenario is the unit the randomized
// conformance fuzzer draws, runs, and (on failure) shrinks; the string
// round-trip (`encode()` / `parse()`) makes any run replayable from a single
// printed token:
//
//   ule1:gnm{n=40,m=100}:least_el_all:k=n:w=rand.20:s=7919:t=2
//
// Fields, colon-separated after the `ule1` version tag:
//   family{p1=v1,p2=v2}   graph family + integer params (registry order;
//                         duplicate param names are rejected at parse time)
//   protocol              protocol-registry key
//   k=none|n|nd|nmd       knowledge grant (always the exact true values)
//   w=sim | rand.S | one.W   wakeup schedule: simultaneous, random in
//                         [0,S] (earliest forced to 0), or only node W%n
//   s=SEED                run seed (drives ids, coins, the graph when the
//                         family is randomized, and the wakeup schedule)
//   t=THREADS             engine worker threads (the determinism axis)
//
// Three OPTIONAL trailing fields carry the delivery/fault adversary
// (net/adversary.hpp) and the reliable-transport knobs; they appear in the
// order `a=` ≺ `f=` ≺ `r=`, each at most once:
//   a=DELAY.DROP.DUP.REORDER.ASEED
//                         bounded-async delay (max extra rounds), then drop /
//                         duplicate / reorder probabilities in PERMILLE
//                         (integers in [0, 1000] — exact round-trip, no
//                         float formatting), then the adversary's own seed.
//                         At least one of the four knobs must be non-zero.
//   f=NODE@CRASH[-RECOVER],...
//                         churn schedule: node (taken mod n, like the
//                         `one.W` waker) crashes at the start of round
//                         CRASH.  A bare NODE@CRASH entry is crash-stop
//                         (dead forever); an optional `-RECOVER` tail
//                         rebirths the node from its initial state at the
//                         start of that round.  RECOVER < CRASH is rejected;
//                         RECOVER == CRASH parses (and encodes back) but is
//                         an empty interval the engine drops as a no-op.
//   r=RTO.CAP             reliable-transport override (net/reliable.hpp),
//                         honored only by `*_reliable` protocols (the runner
//                         rejects it elsewhere): retransmit timeout in
//                         rounds and backoff cap.  0 = auto for either knob;
//                         at least one must be non-zero (auto/auto is the
//                         default and drops the field).
//
// `parse(encode(s)) == s` holds for every Scenario, and equal Scenarios
// produce bit-for-bit identical runs (the engine is a pure function of
// (graph, processes, seed); see net/engine.hpp).

#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "net/adversary.hpp"
#include "net/types.hpp"

namespace ule {

/// Which global parameters every node is told (always the true values).
/// Ordered as a chain None < N < ND < NMD so "grant at least what the
/// protocol requires" is a simple comparison.
enum class KnowledgeGrant : std::uint8_t { None = 0, N = 1, ND = 2, NMD = 3 };

enum class WakeupKind : std::uint8_t { Simultaneous, Random, Single };

/// Integer family parameters in registry-declared order.
using ScenarioParams = std::vector<std::pair<std::string, std::uint64_t>>;

/// One churn interval at scenario level (the `f=` segments): the node is
/// taken mod n at run time; recover == kRoundForever is crash-stop.
struct ScenarioCrash {
  std::uint64_t node = 0;
  Round at = 0;
  Round recover = kRoundForever;

  bool operator==(const ScenarioCrash&) const = default;
};

/// The adversary at scenario level: knob probabilities are PERMILLE integers
/// so the string round-trip is exact (doubles only materialize when the
/// engine config is built).  Crash nodes are taken mod n at run time, so a
/// schedule survives family shrinking the way `one.W` wakeups do.
struct ScenarioAdversary {
  Round max_delay = 0;            ///< max extra delivery rounds (0 = sync)
  std::uint64_t drop_pm = 0;      ///< drop probability, permille
  std::uint64_t dup_pm = 0;       ///< duplication probability, permille
  std::uint64_t reorder_pm = 0;   ///< inbox-shuffle probability, permille
  std::uint64_t seed = 1;         ///< the adversary's own coin seed
  /// Churn schedule: (node % n) crashes at the start of `at`; a bounded
  /// `recover` rebirths it from its initial state at that round.
  std::vector<ScenarioCrash> crashes;

  bool operator==(const ScenarioAdversary&) const = default;

  /// Any delivery knob set?  (Gates the `a=` token segment; the seed alone
  /// is inert.)
  bool any_faults() const {
    return max_delay != 0 || drop_pm != 0 || dup_pm != 0 || reorder_pm != 0;
  }
  bool active() const { return any_faults() || !crashes.empty(); }

  /// The engine-facing config for an n-node graph (crash nodes reduced
  /// mod n).  Fault classes (registry.hpp) it exercises: faults::classes().
  AdversaryConfig engine_config(std::size_t n) const;
};

/// Reliable-transport knobs at scenario level (the `r=` token tail).  Only
/// meaningful for `*_reliable` protocols; the runner rejects the field on a
/// protocol without reliable_transport.  Zero = auto (ReliableConfig's
/// resolution rules), so the default-constructed value encodes to nothing.
struct ScenarioReliable {
  std::uint64_t rto = 0;  ///< retransmit timeout in rounds (0 = auto)
  std::uint64_t cap = 0;  ///< backoff cap in rounds (0 = auto)

  bool operator==(const ScenarioReliable&) const = default;

  /// Any override set?  (Gates the `r=` token segment.)
  bool any() const { return rto != 0 || cap != 0; }
};

struct Scenario {
  std::string family;
  ScenarioParams params;
  std::string protocol;
  KnowledgeGrant knowledge = KnowledgeGrant::None;
  WakeupKind wakeup = WakeupKind::Simultaneous;
  Round wakeup_spread = 0;        ///< Random only: wake rounds in [0, spread]
  std::uint64_t wakeup_node = 0;  ///< Single only: the waker (taken mod n)
  std::uint64_t seed = 1;
  unsigned threads = 1;
  ScenarioAdversary adversary;    ///< default: off (no token segments)
  ScenarioReliable reliable;      ///< default: auto (no token segment)

  bool operator==(const Scenario&) const = default;

  /// The replay token (see file comment).
  std::string encode() const;
  /// Inverse of encode(); throws std::invalid_argument with a diagnostic on
  /// malformed tokens.  Structural only — family/protocol names and param
  /// ranges are validated against the registries when the scenario is run.
  static Scenario parse(const std::string& token);

  /// Value of a named family parameter; throws std::invalid_argument when
  /// the scenario does not carry it.
  std::uint64_t param(const std::string& name) const;
};

const char* to_string(KnowledgeGrant k);
const char* to_string(WakeupKind w);

}  // namespace ule
