// Run one Scenario through the SyncEngine and judge it against the generic
// conformance invariants:
//
//   safety       at most one node ends Elected; under a Deterministic or
//                Las Vegas contract exactly one, with everyone else
//                NonElected.  Explicit overlays must additionally leave
//                every node knowing the SAME leader identity (the winner's
//                uid, or its announcement token when anonymous).
//   liveness     the run quiesces (completed), within the protocol's
//                registered round envelope, and within its message budget.
//   congest      zero CONGEST violations (one O(log n)-bit message per edge
//                direction per round), counted by the engine.
//   determinism  when scenario.threads > 1, a rerun on that worker count
//                (with the sequential cutoff forced to 1, so every round
//                takes the sharded path) must match the threads=1 run on
//                every counter, every node status and every per-node send
//                count — the PR-2 guarantee extended to the whole space.
//
// Under an adversarial scenario (token `a=` / `f=` segments) the judgment
// splits along the registry's declarations: safety (at most one leader,
// leader-id agreement) is enforced under EVERY adversary the protocol
// declares itself safe against, while liveness, budget, full-coverage and
// congest checks apply only when termination is actually promised — no
// adversary at all, or a loss- and forgery-free adversary (delay / reorder)
// against a protocol declaring live_under_async.  Round and message
// envelopes stretch under the adversary (x(max_delay + 2) and x2).
//
// A scenario that names unknown registry entries or violates a protocol's
// prerequisites (knowledge grant too weak, adversarial wakeup on a
// wakeup-intolerant protocol, non-complete family for a complete-only
// protocol, params out of range, an adversary class outside the protocol's
// safe_under mask) throws std::invalid_argument: that is a configuration
// error, not a conformance violation.

#pragma once

#include <string>
#include <vector>

#include "net/metrics.hpp"
#include "scenario/registry.hpp"
#include "scenario/scenario.hpp"

namespace ule {

struct ScenarioRunConfig {
  /// Rerun at scenario.threads (when > 1) and diff against the threads=1 run.
  bool check_determinism = true;
  /// Engine round cap = round_envelope * this (breaching the envelope is the
  /// violation; the cap only bounds how long a broken run can spin).
  Round envelope_slack = 4;
  /// Engine telemetry (net/metrics.hpp).  When enabled the reference run's
  /// report.run.metrics carries the snapshot, and the determinism cross-check
  /// additionally diffs the two runs' snapshots byte for byte.
  MetricsConfig metrics;
};

struct ScenarioOutcome {
  Scenario scenario;
  ScenarioShape shape;
  ElectionReport report;                ///< the threads=1 reference run
  std::vector<std::string> violations;  ///< empty = conformant

  bool ok() const { return violations.empty(); }
};

/// Build the scenario's graph (replayable: depends only on family params and
/// scenario.seed).  Throws std::invalid_argument on bad family / params.
Graph build_scenario_graph(const FamilyRegistry& families, const Scenario& s);

/// The wakeup schedule of `s` for an n-node graph (empty = simultaneous).
std::vector<Round> scenario_wakeup(const Scenario& s, std::size_t n);

ScenarioOutcome run_scenario(const ProtocolRegistry& protocols,
                             const FamilyRegistry& families, const Scenario& s,
                             const ScenarioRunConfig& cfg = {});

}  // namespace ule
