#include "spanner/spanner_elect.hpp"

#include <cmath>
#include <memory>

#include "net/ids.hpp"

namespace ule {

std::uint32_t spanner_k_for_epsilon(double epsilon) {
  return static_cast<std::uint32_t>(std::ceil(2.0 / epsilon));
}

void SpannerElectProcess::on_spanner_complete(Context& ctx) {
  elect_.restrict_ports(spanner_ports());

  std::uint64_t space = ecfg_.rank_space;
  if (space == 0) space = id_space_size(ctx.knowledge().require_n());
  WaveKey key;
  key.primary = ctx.rng().in_range(1, space);
  key.tiebreak = ctx.anonymous() ? ctx.rng()() : ctx.uid();
  if (elect_.originate(ctx, key)) {
    ctx.set_status(Status::Elected);  // empty spanner overlay: n == 1
    decided_ = true;
  }
}

void SpannerElectProcess::app_round(Context& ctx,
                                    std::span<const Envelope> inbox) {
  const WavePool::Events ev = elect_.on_round(ctx, inbox);
  if (!decided_) {
    if (elect_.has_best() && !elect_.own_is_best()) {
      ctx.set_status(Status::NonElected);
      decided_ = true;
    } else if (ev.own_complete && elect_.own_is_best()) {
      ctx.set_status(Status::Elected);
      decided_ = true;
    }
  }
}

ProcessFactory make_spanner_elect(SpannerElectConfig cfg) {
  return [cfg](NodeId) { return std::make_unique<SpannerElectProcess>(cfg); };
}

}  // namespace ule
