// Corollary 4.2: leader election in O(D) time and expected O(m) messages for
// graphs with m > n^{1+ε}, by electing on a Baswana–Sen spanner.
//
// With k = ceil(2/ε) the spanner has O(n^{1+ε/2}) edges; running the
// least-element-list election (Theorem 4.4 with f(n) = n) on it costs
// O(n^{1+ε/2} log n) ⊆ O(m) expected messages, while the spanner itself
// costs O(km) = O(m) messages and O(k^2) = O(1) rounds.  The spanner
// finishes on a fixed global round, so all nodes enter the election
// simultaneously; its diameter is at most (2k-1)·D + 2k = O(D), keeping the
// overall time O(D).

#pragma once

#include "election/channels.hpp"
#include "election/pif.hpp"
#include "spanner/baswana_sen.hpp"

namespace ule {

struct SpannerElectConfig {
  /// Choose k = ceil(2/epsilon) to match the paper's parameterization.
  std::uint32_t k = 3;
  std::uint64_t rank_space = 0;  ///< 0 = auto n^4
};

class SpannerElectProcess final : public BaswanaSenProcess {
 public:
  explicit SpannerElectProcess(SpannerElectConfig cfg)
      : BaswanaSenProcess(SpannerConfig{cfg.k}), ecfg_(cfg) {
    elect_.pace_through(&outbox_);
  }

  std::size_t le_list_size() const { return elect_.adopted_count(); }

 protected:
  void on_spanner_complete(Context& ctx) override;
  void app_round(Context& ctx, std::span<const Envelope> inbox) override;

 private:
  SpannerElectConfig ecfg_;
  WavePool elect_{channel::kLeastEl, /*max_wins=*/false};
  bool decided_ = false;
};

ProcessFactory make_spanner_elect(SpannerElectConfig cfg = {});

/// k for a given epsilon (m > n^{1+epsilon}).
std::uint32_t spanner_k_for_epsilon(double epsilon);

}  // namespace ule
