// Distributed Baswana–Sen (2k-1)-spanner construction [6] — the
// sparsification substrate behind Corollary 4.2.
//
// Unweighted version, k clustering levels.  Level 0: every node is a
// singleton cluster.  In phase i = 1..k-1 each surviving cluster is sampled
// with probability n^{-1/k}; the sampled-bit floods through the cluster
// (radius <= i-1), every clustered node announces (cluster, sampled-bit,
// depth) to its neighbours, and then each node of an unsampled cluster
// either joins an adjacent sampled cluster through one edge (added to the
// spanner) or, if none is adjacent, adds one edge per adjacent cluster and
// leaves the clustering.  The final phase adds one edge per adjacent cluster
// for every still-clustered node.
//
// Everything runs on a fixed round schedule computable from k alone, so all
// nodes finish at the same round (finish_round()) — which is what lets
// Corollary 4.2 start the election on the spanner synchronously.
//
// Expected spanner size O(k n^{1+1/k}) and stretch <= 2k-1; both are
// verified empirically by the test suite.  Runs in O(k^2) rounds with
// O(k m) messages, matching [6] as cited by the paper.
//
// Wire format: the inline FlatMsg fast path by default — the state
// announcement bit-packs depth and phase into one payload word and carries
// the sampled bit in the flag byte.  SpannerConfig::legacy_wire selects the
// original MessagePtr representation; both produce identical runs (pinned
// by the wire-equality regression test).

#pragma once

#include <cstdint>
#include <vector>

#include "election/election.hpp"
#include "net/outbox.hpp"
#include "net/process.hpp"

namespace ule {

struct SpannerConfig {
  std::uint32_t k = 2;  ///< spanner parameter (stretch 2k-1)
  /// Use the legacy MessagePtr wire format instead of the inline FlatMsg
  /// fast path.  Both produce bit-for-bit identical runs (same message and
  /// bit counts, same spanner) — pinned by the wire-equality regression
  /// test; the flat path just moves zero heap blocks per send.
  bool legacy_wire = false;
};

/// The round by which every node knows its final spanner ports.
Round spanner_finish_round(std::uint32_t k);

class BaswanaSenProcess : public Process {
 public:
  explicit BaswanaSenProcess(SpannerConfig cfg) : cfg_(cfg) {}

  void on_wake(Context& ctx, std::span<const Envelope> inbox) override;
  void on_round(Context& ctx, std::span<const Envelope> inbox) override;

  /// Ports whose edges belong to the spanner (final after finish_round()).
  const std::vector<PortId>& spanner_ports() const { return spanner_ports_; }
  bool spanner_done() const { return done_; }

 protected:
  /// Hook for subclasses (Corollary 4.2 starts the election here).  Called
  /// exactly once, in the finish round.  Send through outbox_; do NOT call
  /// scheduling verbs (idle/sleep/halt) — the base class arbitrates
  /// scheduling so queued messages are never stranded on a sleeping node.
  virtual void on_spanner_complete(Context& ctx) { (void)ctx; }

  /// Called every round after the spanner is complete; subclasses implement
  /// whatever runs on top of the spanner.  Same contract as
  /// on_spanner_complete: queue sends on outbox_, no scheduling verbs.
  virtual void app_round(Context& ctx, std::span<const Envelope> inbox) {
    (void)ctx;
    (void)inbox;
  }

  /// Shared CONGEST pacing queue: one message per port per round, flushed by
  /// the base class at the end of every round.
  PortOutbox outbox_;

 private:
  void spanner_round(Context& ctx, std::span<const Envelope> inbox);
  void begin_window(Context& ctx, std::uint32_t phase);
  void decide(Context& ctx, std::uint32_t phase);
  void add_spanner_port(Context& ctx, PortId p, bool notify);
  Round window_start(std::uint32_t phase) const;
  /// One arriving cluster-state announcement, either wire representation.
  void handle_state(Context& ctx, PortId port, std::uint64_t center,
                    bool sampled, std::uint32_t depth, std::uint32_t phase);
  /// Broadcast our (center, sampled, depth) for `phase` on the configured
  /// wire format, through the paced outbox.
  void queue_state_broadcast(Context& ctx, std::uint32_t phase);

  SpannerConfig cfg_;
  std::uint64_t token_ = 0;
  std::uint32_t phase_ = 1;

  // Clustering state.
  bool clustered_ = true;
  std::uint64_t center_ = 0;   ///< our cluster's center token
  std::uint32_t depth_ = 0;    ///< hop distance to the center
  PortId parent_ = kNoPort;

  // Per-phase scratch.
  bool have_bit_ = false;      ///< own cluster's sampled bit known
  bool sampled_ = false;
  struct NbrState {
    bool clustered = false;
    std::uint64_t center = 0;
    bool sampled = false;
    std::uint32_t depth = 0;
  };
  std::vector<NbrState> nbr_;
  std::vector<bool> in_spanner_;
  std::vector<PortId> spanner_ports_;
  bool done_ = false;
};

ProcessFactory make_baswana_sen(SpannerConfig cfg);

}  // namespace ule
