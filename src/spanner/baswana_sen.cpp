#include "spanner/baswana_sen.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "election/channels.hpp"
#include "net/message.hpp"

namespace ule {

namespace {

// --- flat fast path (the default wire format) ------------------------------
// A cluster-state announcement needs center (one id word) plus depth, phase
// and the sampled bit; depth and phase are hop / level counters that fit 32
// bits each, so both bit-pack into the second payload word and the sampled
// bit rides the flag byte.  Accounted wire sizes match the legacy messages
// exactly, so both formats produce identical RunResult counters.
namespace spannerwire {
inline constexpr std::uint16_t kState = 1;
inline constexpr std::uint16_t kAddEdge = 2;
inline constexpr std::uint8_t kSampledFlag = 1;
inline constexpr std::uint32_t kStateBits =
    wire::kTypeTag + wire::kIdField + 2 * wire::kCounter + wire::kFlag;
inline constexpr std::uint32_t kAddEdgeBits = wire::kTypeTag;

inline FlatMsg state(std::uint64_t center, bool sampled, std::uint32_t depth,
                     std::uint32_t phase) {
  FlatMsg m;
  m.type = kState;
  m.channel = channel::kSpanner;
  m.flags = sampled ? kSampledFlag : 0;
  m.bits = kStateBits;
  m.a = center;
  m.b = (static_cast<std::uint64_t>(phase) << 32) | depth;
  return m;
}

inline FlatMsg add_edge() {
  FlatMsg m;
  m.type = kAddEdge;
  m.channel = channel::kSpanner;
  m.bits = kAddEdgeBits;
  return m;
}

inline std::uint32_t depth_of(const FlatMsg& m) {
  return static_cast<std::uint32_t>(m.b);
}
inline std::uint32_t phase_of(const FlatMsg& m) {
  return static_cast<std::uint32_t>(m.b >> 32);
}
}  // namespace spannerwire

// --- legacy pointer path (SpannerConfig::legacy_wire) ----------------------

/// Cluster-state flood: (center, sampled-bit for this phase, sender depth).
struct StateMsg final : Message {
  std::uint64_t center = 0;
  bool sampled = false;
  std::uint32_t depth = 0;
  std::uint32_t phase = 0;

  std::uint32_t size_bits() const override { return spannerwire::kStateBits; }
  std::string debug_string() const override {
    return "spanner-state(c" + std::to_string(center) +
           (sampled ? ",S" : ",u") + ")";
  }
};

/// "The edge we share is in the spanner."
struct AddEdgeMsg final : Message {
  std::uint32_t size_bits() const override {
    return spannerwire::kAddEdgeBits;
  }
  std::string debug_string() const override { return "spanner-add-edge"; }
};

}  // namespace

Round spanner_finish_round(std::uint32_t k) {
  Round start = 0;
  for (std::uint32_t i = 1; i < k; ++i) start += i + 2;
  return start + k + 2;
}

Round BaswanaSenProcess::window_start(std::uint32_t phase) const {
  Round start = 0;
  for (std::uint32_t i = 1; i < phase; ++i) start += i + 2;
  return start;
}

void BaswanaSenProcess::add_spanner_port(Context& /*ctx*/, PortId p,
                                         bool notify) {
  if (in_spanner_[p]) return;
  in_spanner_[p] = true;
  spanner_ports_.push_back(p);
  if (notify) {
    if (cfg_.legacy_wire) {
      outbox_.queue(p, std::make_shared<AddEdgeMsg>());
    } else {
      outbox_.queue(p, spannerwire::add_edge());
    }
  }
}

void BaswanaSenProcess::queue_state_broadcast(Context& ctx,
                                              std::uint32_t phase) {
  if (cfg_.legacy_wire) {
    auto m = std::make_shared<StateMsg>();
    m->center = center_;
    m->sampled = sampled_;
    m->depth = depth_;
    m->phase = phase;
    outbox_.queue_broadcast(ctx, m);
  } else {
    outbox_.queue_broadcast(ctx,
                            spannerwire::state(center_, sampled_, depth_, phase));
  }
}

void BaswanaSenProcess::begin_window(Context& ctx, std::uint32_t phase) {
  nbr_.assign(ctx.degree(), NbrState{});
  have_bit_ = false;
  sampled_ = false;
  if (!clustered_) return;
  if (center_ == token_) {
    // We are a cluster center.  Sample in the growth phases; the final
    // phase floods state only (everyone acts as unsampled).
    const auto n = static_cast<double>(ctx.knowledge().require_n());
    const double p = std::pow(n, -1.0 / static_cast<double>(cfg_.k));
    sampled_ = (phase < cfg_.k) && ctx.rng().bernoulli(p);
    have_bit_ = true;
    queue_state_broadcast(ctx, phase);
  }
}

void BaswanaSenProcess::decide(Context& ctx, std::uint32_t phase) {
  if (!clustered_) return;
  if (!have_bit_)
    throw std::logic_error("cluster sampled-bit did not arrive in time");

  if (phase < cfg_.k) {
    if (sampled_) return;  // sampled clusters ride into the next phase
    // Unsampled: join an adjacent sampled cluster if one exists...
    for (PortId p = 0; p < nbr_.size(); ++p) {
      if (nbr_[p].clustered && nbr_[p].sampled) {
        center_ = nbr_[p].center;
        depth_ = nbr_[p].depth + 1;
        parent_ = p;
        add_spanner_port(ctx, p, /*notify=*/true);
        return;
      }
    }
    // ...otherwise add one edge per adjacent foreign cluster and leave.
    clustered_ = false;
  }
  // Discard step / final phase: one representative edge per adjacent
  // foreign cluster (smallest port wins — any fixed rule works).
  std::vector<std::uint64_t> seen;
  for (PortId p = 0; p < nbr_.size(); ++p) {
    if (!nbr_[p].clustered || nbr_[p].center == center_) continue;
    if (std::find(seen.begin(), seen.end(), nbr_[p].center) != seen.end())
      continue;
    seen.push_back(nbr_[p].center);
    add_spanner_port(ctx, p, /*notify=*/true);
  }
}

void BaswanaSenProcess::handle_state(Context& ctx, PortId port,
                                     std::uint64_t center, bool sampled,
                                     std::uint32_t depth, std::uint32_t phase) {
  nbr_[port] = NbrState{true, center, sampled, depth};
  if (clustered_ && center == center_ && !have_bit_ && phase == phase_) {
    // Our own cluster's sampled-bit flood reached us: adopt and relay.
    have_bit_ = true;
    sampled_ = sampled;
    queue_state_broadcast(ctx, phase_);
  }
}

void BaswanaSenProcess::spanner_round(Context& ctx,
                                      std::span<const Envelope> inbox) {
  const Round r = ctx.round();
  if (phase_ <= cfg_.k && r == window_start(phase_)) begin_window(ctx, phase_);

  for (const auto& env : inbox) {
    if (env.is_flat()) {
      if (env.flat.channel != channel::kSpanner) continue;  // e.g. election
      if (env.flat.type == spannerwire::kAddEdge) {
        add_spanner_port(ctx, env.port, /*notify=*/false);
      } else if (env.flat.type == spannerwire::kState) {
        handle_state(ctx, env.port, env.flat.a,
                     (env.flat.flags & spannerwire::kSampledFlag) != 0,
                     spannerwire::depth_of(env.flat),
                     spannerwire::phase_of(env.flat));
      }
      continue;
    }
    if (dynamic_cast<const AddEdgeMsg*>(env.msg.get()) != nullptr) {
      add_spanner_port(ctx, env.port, /*notify=*/false);
      continue;
    }
    const auto* sm = dynamic_cast<const StateMsg*>(env.msg.get());
    if (!sm) continue;
    handle_state(ctx, env.port, sm->center, sm->sampled, sm->depth, sm->phase);
  }

  if (phase_ <= cfg_.k && r == window_start(phase_) + phase_) {
    decide(ctx, phase_);
    ++phase_;
  }

  if (r >= spanner_finish_round(cfg_.k) && !done_) {
    done_ = true;
    on_spanner_complete(ctx);
  }
}

void BaswanaSenProcess::on_wake(Context& ctx, std::span<const Envelope> inbox) {
  token_ = ctx.anonymous() ? ctx.rng()() : ctx.uid();
  center_ = token_;
  depth_ = 0;
  clustered_ = true;
  nbr_.assign(ctx.degree(), NbrState{});
  in_spanner_.assign(ctx.degree(), false);
  on_round(ctx, inbox);
}

void BaswanaSenProcess::on_round(Context& ctx, std::span<const Envelope> inbox) {
  if (!done_) {
    // The construction runs on a fixed round schedule: stay runnable for
    // the whole window regardless of traffic.
    spanner_round(ctx, inbox);
    outbox_.flush(ctx);
    return;
  }
  app_round(ctx, inbox);
  if (outbox_.flush(ctx)) return;  // backlog: stay runnable
  ctx.idle();
}

ProcessFactory make_baswana_sen(SpannerConfig cfg) {
  return [cfg](NodeId) { return std::make_unique<BaswanaSenProcess>(cfg); };
}

}  // namespace ule
