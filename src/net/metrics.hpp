// Always-on engine telemetry: a deterministic metrics surface.
//
// The bounds this repo gates — Kutten et al.'s Table 1 message/time
// trade-offs and the bit-round costs — are ultimately counters, and before
// this layer they were scattered across RunResult fields, ad-hoc ARQ
// accessors, and bench-only JSON.  MetricsRegistry is the one place they
// meet: per-round gauges sampled by the engine (active-set size, wake-heap
// depth, CSR inbox occupancy, outbox-arena footprint) plus named counters
// contributed by each subsystem (adversary fault events, ARQ recovery work,
// the engine's own message/bit totals).
//
// Contracts, in order of importance:
//
//  * Determinism.  Every gauge is sampled at a sequential point of the round
//    loop and every counter is a pure function of (graph, processes, seed),
//    so a snapshot — and its JSON rendering — is bit-for-bit identical at
//    every thread count.  Tests pin this at threads {1,2,4}.
//  * Zero overhead off.  `EngineConfig::metrics.enabled = false` (the
//    default) must reproduce every RunResult counter of a metrics-free
//    build, the same pinned contract as the inert adversary and the
//    disabled reliable wrapper (`metrics_off_overhead` bench row).
//  * bench::JsonReport-compatible output.  metrics_json() renders the
//    snapshot as `{"bench": "engine_metrics", "rows": [...]}` with the same
//    formatting conventions as bench/bench_util.hpp, so the nightly job can
//    append snapshots to a trajectory with the same tooling that reads every
//    other BENCH_*.json.  (This header is included by engine.hpp, which is
//    public API of the ule library, so it must NOT include bench_util.hpp —
//    the rendering is hand-rolled to the same format in metrics.cpp.)
//
// Schema (docs/OBSERVABILITY.md is the reference):
//
//   { "bench": "engine_metrics",
//     "rows": [ { "kind": "gauge", "name": "active_set" | "wake_heap"
//                                      | "inbox_csr" | "outbox_arena",
//                 "samples": ..., "last": ..., "max": ..., "total": ... },
//               { "kind": "counter", "name": "<subsystem>.<counter>",
//                 "value": ... } ] }
//
// Counter rows are sorted by name; gauge rows come first, in the fixed
// order above.

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ule {

/// Engine-owned telemetry switch (EngineConfig::metrics).  Off by default;
/// when off the engine takes no metrics branches and RunResult::metrics
/// stays empty.
struct MetricsConfig {
  bool enabled = false;
};

/// Running statistics of a per-round gauge.  `total` accumulates the sample
/// sum so total / samples is the mean without storing the series.
struct GaugeStats {
  std::uint64_t samples = 0;  ///< rounds observed
  std::uint64_t last = 0;     ///< final round's value
  std::uint64_t max = 0;      ///< high-water mark
  std::uint64_t total = 0;    ///< sum over all samples

  void observe(std::uint64_t v) {
    ++samples;
    last = v;
    if (v > max) max = v;
    total += v;
  }

  bool operator==(const GaugeStats&) const = default;
};

/// Write-side interface subsystems see during a metrics sweep.  A process
/// that owns counters (e.g. the ARQ wrapper) overrides
/// Process::export_metrics and calls counter() once per named value; the
/// engine sweeps processes in slot order, so the accumulated result is
/// thread-count invariant.
class MetricsSink {
 public:
  virtual ~MetricsSink() = default;

  /// Add `value` to the counter called `name`.  Names are dotted
  /// "<subsystem>.<counter>" strings ("arq.retransmissions"); repeated calls
  /// with the same name accumulate.
  virtual void counter(std::string_view name, std::uint64_t value) = 0;
};

/// The frozen, comparable result of a run's metrics collection.  Counters
/// are sorted by name; operator== makes "snapshots identical across thread
/// counts" a one-line assertion.
struct MetricsSnapshot {
  GaugeStats active_set;    ///< runnable nodes per executed round
  GaugeStats wake_heap;     ///< wake min-heap size (incl. lazy-deleted keys)
  GaugeStats inbox_csr;     ///< envelopes scattered into the CSR inbox
  GaugeStats outbox_arena;  ///< per-round lane outbox footprint (envelopes)
  std::vector<std::pair<std::string, std::uint64_t>> counters;

  bool operator==(const MetricsSnapshot&) const = default;
};

/// Accumulates gauges + counters during a run; owned by SyncEngine, filled
/// only when MetricsConfig::enabled.  Also usable standalone in tests.
class MetricsRegistry final : public MetricsSink {
 public:
  /// One sequential sample per executed round (called from the round loop
  /// after the lane merge, so every value is already thread-merged).
  void sample_round(std::uint64_t active, std::uint64_t heap,
                    std::uint64_t inbox, std::uint64_t outbox) {
    active_set_.observe(active);
    wake_heap_.observe(heap);
    inbox_csr_.observe(inbox);
    outbox_arena_.observe(outbox);
  }

  void counter(std::string_view name, std::uint64_t value) override {
    counters_[std::string(name)] += value;
  }

  MetricsSnapshot snapshot() const {
    MetricsSnapshot s;
    s.active_set = active_set_;
    s.wake_heap = wake_heap_;
    s.inbox_csr = inbox_csr_;
    s.outbox_arena = outbox_arena_;
    s.counters.assign(counters_.begin(), counters_.end());  // map: sorted
    return s;
  }

 private:
  GaugeStats active_set_;
  GaugeStats wake_heap_;
  GaugeStats inbox_csr_;
  GaugeStats outbox_arena_;
  std::map<std::string, std::uint64_t> counters_;
};

/// Render a snapshot as the bench-compatible JSON document described in the
/// header comment.  Deterministic byte-for-byte: fixed gauge order, counters
/// sorted by name, no floats, newline-terminated.
std::string metrics_json(const MetricsSnapshot& snap);

/// Validate that `doc` is a well-formed engine_metrics snapshot: the
/// "engine_metrics" bench tag, a rows array whose rows are gauge rows
/// (samples/last/max/total, all four well-known names present exactly once)
/// or counter rows (value), nothing else.  On failure returns false and, if
/// `error` is non-null, stores a one-line reason.  This is the schema gate
/// CI runs against every per-PR snapshot.
bool validate_metrics_json(std::string_view doc, std::string* error);

}  // namespace ule
