// Wakeup schedules.
//
// The lower bounds hold even under simultaneous wakeup (the harder case for
// lower bounds); several algorithms additionally tolerate adversarial wakeup,
// where nodes wake at arbitrary rounds — but also whenever a message arrives,
// and at least one node is awake at round 0 (Section 2).

#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "net/rng.hpp"
#include "net/types.hpp"

namespace ule {

/// All nodes wake at round 0 (the default model).
inline std::vector<Round> simultaneous_wakeup(std::size_t n) {
  return std::vector<Round>(n, 0);
}

/// Random wake rounds in [0, spread]; node 0 forced awake at round 0 so the
/// "at least one node initially awake" requirement holds.
inline std::vector<Round> random_wakeup(std::size_t n, Round spread, Rng& rng) {
  std::vector<Round> w(n);
  for (auto& r : w) r = rng.below(spread + 1);
  if (n > 0) {
    // Force the earliest wake to round 0 deterministically.
    auto it = std::min_element(w.begin(), w.end());
    *it = 0;
  }
  return w;
}

/// Only one chosen node wakes spontaneously; everyone else sleeps until a
/// message arrives (wake-on-message).  The adversary's most extreme schedule.
inline std::vector<Round> single_wakeup(std::size_t n, NodeId who) {
  std::vector<Round> w(n, kRoundForever);
  w[who] = 0;
  return w;
}

}  // namespace ule
