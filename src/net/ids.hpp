// Adversarial ID assignment strategies.
//
// The paper lets an adversary choose unique IDs from an arbitrary integer set
// Z of size n^4 (Section 2).  Lower bounds must hold for every assignment;
// upper-bound analyses assume nothing about them (ranks are separate, private
// random choices).  The harness sweeps these strategies to exercise the
// adversary's degrees of freedom.

#pragma once

#include <cstdint>
#include <vector>

#include "net/rng.hpp"
#include "net/types.hpp"

namespace ule {

enum class IdScheme : std::uint8_t {
  Sequential,        ///< 1, 2, ..., n
  ReverseSequential, ///< n, n-1, ..., 1
  RandomPermutation, ///< random permutation of 1..n
  RandomFromZ,       ///< n distinct values drawn from [1, n^4]
};

/// Produce a unique-ID assignment for n nodes under the given scheme.
std::vector<Uid> assign_ids(std::size_t n, IdScheme scheme, Rng& rng);

/// The size of the ID space Z = [1, n^4] (saturating at 2^62).
std::uint64_t id_space_size(std::size_t n);

const char* to_string(IdScheme s);

}  // namespace ule
