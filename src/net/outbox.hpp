// Outbound message buffering: the engine's per-worker send lanes and the
// per-process CONGEST pacing queue.
//
// --- SendLane -------------------------------------------------------------
//
// A SendLane is one worker's private outbox arena plus its counter block.
// During a parallel round every worker appends the envelopes its shard of
// nodes sends to its own lane (no shared append, no locks) and accumulates
// message/bit/violation counts locally; after the round barrier the engine
// merges lanes IN SLOT ORDER — shard w covers a contiguous ascending range
// of the sorted runnable set, so concatenating lane 0, lane 1, ... w
// reproduces the exact envelope sequence a sequential execution would have
// produced, and summing the counter blocks reproduces the exact RunResult
// counters.  The sequential path is the one-lane special case.
//
// --- PortOutbox -----------------------------------------------------------
//
// CONGEST pacing: a per-port send queue draining one message per port per
// round.  Storage is ONE arena per outbox (a pooled vector with per-port
// intrusive FIFO lists), not a container per port: a deque-per-port design
// eagerly allocates a ~512-byte chunk for every port ever touched, which on
// a K_n broadcast protocol means Θ(n²) allocator traffic per run — measured
// as multi-second kernel time (page-fault churn) on flood_max at n = 1024.
// The arena allocates O(log backlog) times total and frees nothing until
// the process dies.
//
// The model allows at most one message per edge-direction per round.  An
// algorithm frequently *generates* more than that in a single round — e.g.
// the wave pools answer a non-adopted forward with an echo while also
// re-flooding a freshly adopted wave over the same port, and Algorithm 1
// starts its election flood in the round it forwards the final DOWN-DONE of
// phase 2.  Real CONGEST executions serialize such sends over consecutive
// rounds; PortOutbox does exactly that.  Message counts are unchanged (every
// queued message is eventually sent and billed); only timing is affected,
// and only by the queue length, which for our algorithms is bounded by the
// number of concurrently outstanding protocol items per edge (a constant or
// O(log n)).
//
// Both message representations queue here: flat messages (the hot path) are
// stored by value, legacy MessagePtr payloads by pointer (net/message.hpp).
//
// Usage pattern inside a Process:
//
//   outbox_.queue(port, msg);           // instead of ctx.send(port, msg)
//   ...
//   if (outbox_.flush(ctx)) return;     // backlog: stay runnable this round
//   ctx.idle();                         // or the process's usual sleep rule
//
// flush() must be called exactly once per round (last), and the process must
// remain runnable while the outbox is non-empty — otherwise queued messages
// would sit until the next inbound message wakes the node.

#pragma once

#include <cstddef>
#include <cstdint>
#include <exception>
#include <stdexcept>
#include <utility>
#include <vector>

#include "net/message.hpp"
#include "net/process.hpp"

namespace ule {

/// An envelope on its way to next round's inbox: destination slot, the
/// arrival port there, the traversed edge, and the payload in either wire
/// representation (exactly one of `flat` / `msg` is populated).
struct OutboundEnvelope {
  NodeId to = kNoNode;
  PortId at_port = kNoPort;
  EdgeId edge = kNoEdge;
  FlatMsg flat;
  MessagePtr msg;
};

/// One worker's private outbox arena and counter block (see file comment).
/// Cache-line aligned so two workers' counter increments never share a line.
struct alignas(64) SendLane {
  std::vector<OutboundEnvelope> out;  ///< envelopes sent by this shard
  /// Adversarial delays only (net/adversary.hpp, max_delay > 0): the absolute
  /// arrival round of the envelope at the same index of `out`.  Stays empty —
  /// zero bytes touched per send — on every other run.
  std::vector<Round> adv_arrive;
  std::uint64_t messages = 0;
  std::uint64_t bits = 0;
  std::uint64_t congest_violations = 0;
  /// Adversary fault events in this shard (billed-then-eaten drops,
  /// delivered duplicate copies, envelopes assigned a positive delay).  Any
  /// such event implies a billed send, so the fold's messages/status guard
  /// covers these too.
  std::uint64_t adv_drops = 0;
  std::uint64_t adv_dups = 0;
  std::uint64_t adv_delays = 0;
  bool status_changed = false;  ///< some node's status changed this round
  std::exception_ptr error;     ///< first exception thrown in this shard
};

class PortOutbox {
 public:
  /// Queue `msg` for port `port`; it is sent by the first flush() that finds
  /// no earlier message queued ahead of it on the same port.
  void queue(PortId port, MessagePtr msg) {
    push(port, Queued{FlatMsg{}, std::move(msg), kNil});
  }
  void queue(PortId port, const FlatMsg& msg) {
    if (msg.type == 0)  // fail here, not at a far-away flush()
      throw std::invalid_argument("flat message without a type tag");
    push(port, Queued{msg, nullptr, kNil});
  }

  /// Queue the same payload on every port of `ctx` (paced broadcast).
  void queue_broadcast(const Context& ctx, const MessagePtr& msg) {
    for (PortId p = 0; p < ctx.degree(); ++p) queue(p, msg);
  }
  void queue_broadcast(const Context& ctx, const FlatMsg& msg) {
    for (PortId p = 0; p < ctx.degree(); ++p) queue(p, msg);
  }

  /// Send the head of every non-empty port queue (at most one message per
  /// port, the CONGEST allowance).  Returns true iff messages remain queued,
  /// in which case the caller must stay runnable for the next round.
  bool flush(Context& ctx) {
    for (PortId p = 0; p < heads_.size(); ++p) {
      const std::uint32_t slot = heads_[p].head;
      if (slot == kNil) continue;
      Queued& head = pool_[slot];
      if (head.flat.type != 0) {
        ctx.send(p, head.flat);
      } else {
        ctx.send(p, std::move(head.msg));
      }
      heads_[p].head = head.next;
      if (head.next == kNil) heads_[p].tail = kNil;
      head.msg = nullptr;  // release the payload while it sits on free list
      head.next = free_;
      free_ = slot;
      --queued_;
    }
    return queued_ > 0;
  }

  bool empty() const { return queued_ == 0; }
  std::size_t backlog() const { return queued_; }

 private:
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;

  struct Queued {
    FlatMsg flat;        ///< valid iff flat.type != 0
    MessagePtr msg;      ///< legacy path otherwise
    std::uint32_t next;  ///< next arena slot on the same port (or free list)
  };

  struct PortList {
    std::uint32_t head = kNil;
    std::uint32_t tail = kNil;
  };

  void push(PortId port, Queued&& q) {
    if (heads_.size() <= port) heads_.resize(std::size_t{port} + 1);
    std::uint32_t slot;
    if (free_ != kNil) {
      slot = free_;
      free_ = pool_[slot].next;
      pool_[slot] = std::move(q);
    } else {
      slot = static_cast<std::uint32_t>(pool_.size());
      pool_.push_back(std::move(q));
    }
    PortList& pl = heads_[port];
    if (pl.tail == kNil) {
      pl.head = slot;
    } else {
      pool_[pl.tail].next = slot;
    }
    pl.tail = slot;
    ++queued_;
  }

  std::vector<Queued> pool_;      ///< arena: grows to the peak backlog, only
  std::vector<PortList> heads_;   ///< per-port FIFO into the arena
  std::uint32_t free_ = kNil;     ///< recycled arena slots
  std::size_t queued_ = 0;
};

}  // namespace ule
