// CONGEST pacing: a per-port send queue draining one message per port per
// round.
//
// The model allows at most one message per edge-direction per round.  An
// algorithm frequently *generates* more than that in a single round — e.g.
// the wave pools answer a non-adopted forward with an echo while also
// re-flooding a freshly adopted wave over the same port, and Algorithm 1
// starts its election flood in the round it forwards the final DOWN-DONE of
// phase 2.  Real CONGEST executions serialize such sends over consecutive
// rounds; PortOutbox does exactly that.  Message counts are unchanged (every
// queued message is eventually sent and billed); only timing is affected,
// and only by the queue length, which for our algorithms is bounded by the
// number of concurrently outstanding protocol items per edge (a constant or
// O(log n)).
//
// Both message representations queue here: flat messages (the hot path) are
// stored by value, legacy MessagePtr payloads by pointer (net/message.hpp).
//
// Usage pattern inside a Process:
//
//   outbox_.queue(port, msg);           // instead of ctx.send(port, msg)
//   ...
//   if (outbox_.flush(ctx)) return;     // backlog: stay runnable this round
//   ctx.idle();                         // or the process's usual sleep rule
//
// flush() must be called exactly once per round (last), and the process must
// remain runnable while the outbox is non-empty — otherwise queued messages
// would sit until the next inbound message wakes the node.

#pragma once

#include <cstddef>
#include <deque>
#include <stdexcept>
#include <vector>

#include "net/message.hpp"
#include "net/process.hpp"

namespace ule {

class PortOutbox {
 public:
  /// Queue `msg` for port `port`; it is sent by the first flush() that finds
  /// no earlier message queued ahead of it on the same port.
  void queue(PortId port, MessagePtr msg) {
    ensure(port);
    queues_[port].push_back(Queued{FlatMsg{}, std::move(msg)});
    ++queued_;
  }
  void queue(PortId port, const FlatMsg& msg) {
    if (msg.type == 0)  // fail here, not at a far-away flush()
      throw std::invalid_argument("flat message without a type tag");
    ensure(port);
    queues_[port].push_back(Queued{msg, nullptr});
    ++queued_;
  }

  /// Queue the same payload on every port of `ctx` (paced broadcast).
  void queue_broadcast(const Context& ctx, const MessagePtr& msg) {
    for (PortId p = 0; p < ctx.degree(); ++p) queue(p, msg);
  }
  void queue_broadcast(const Context& ctx, const FlatMsg& msg) {
    for (PortId p = 0; p < ctx.degree(); ++p) queue(p, msg);
  }

  /// Send the head of every non-empty port queue (at most one message per
  /// port, the CONGEST allowance).  Returns true iff messages remain queued,
  /// in which case the caller must stay runnable for the next round.
  bool flush(Context& ctx) {
    for (PortId p = 0; p < queues_.size(); ++p) {
      auto& q = queues_[p];
      if (!q.empty()) {
        Queued& head = q.front();
        if (head.flat.type != 0) {
          ctx.send(p, head.flat);
        } else {
          ctx.send(p, std::move(head.msg));
        }
        q.pop_front();
        --queued_;
      }
    }
    return queued_ > 0;
  }

  bool empty() const { return queued_ == 0; }
  std::size_t backlog() const { return queued_; }

 private:
  struct Queued {
    FlatMsg flat;    ///< valid iff flat.type != 0
    MessagePtr msg;  ///< legacy path otherwise
  };

  void ensure(PortId port) {
    if (queues_.size() <= port) queues_.resize(std::size_t{port} + 1);
  }

  std::vector<std::deque<Queued>> queues_;
  std::size_t queued_ = 0;
};

}  // namespace ule
