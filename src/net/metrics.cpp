// metrics.hpp implementation: the bench-compatible JSON rendering and the
// schema validator CI runs against per-PR snapshots.
//
// The renderer reproduces bench::JsonReport's byte format ({"bench": ...,
// "rows": [...]}, 4-space row indent, ", "-separated fields) without
// including bench_util.hpp — engine.hpp includes metrics.hpp, so this header
// pair must stay free of the bench/ tree (a private include dir of the ule
// library, see CMakeLists.txt).
//
// The validator is a purpose-built scanner, not a general JSON parser: the
// schema is flat (one object per row, string/integer/bool values only), the
// documents are machine-written by metrics_json or bench::JsonReport, and a
// hand-rolled check keeps the tool free of external dependencies.  It is
// strict about what matters (bench tag, row kinds, required fields, the
// four well-known gauges appearing exactly once each) and lenient about
// whitespace.

#include "net/metrics.hpp"

#include <cctype>
#include <cstddef>

namespace ule {

namespace {

constexpr const char* kGaugeNames[] = {"active_set", "wake_heap", "inbox_csr",
                                       "outbox_arena"};

void append_gauge_row(std::string& out, const char* name,
                      const GaugeStats& g, bool last) {
  out += "    {\"kind\": \"gauge\", \"name\": \"";
  out += name;
  out += "\", \"samples\": " + std::to_string(g.samples);
  out += ", \"last\": " + std::to_string(g.last);
  out += ", \"max\": " + std::to_string(g.max);
  out += ", \"total\": " + std::to_string(g.total);
  out += last ? "}\n" : "},\n";
}

bool fail(std::string* error, const std::string& reason) {
  if (error != nullptr) *error = reason;
  return false;
}

/// Minimal tokenizer over the flat snapshot grammar.  Tracks position only;
/// all structure checks live in validate_metrics_json.
struct Scanner {
  std::string_view doc;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < doc.size() &&
           std::isspace(static_cast<unsigned char>(doc[pos])) != 0)
      ++pos;
  }
  bool eat(char c) {
    skip_ws();
    if (pos >= doc.size() || doc[pos] != c) return false;
    ++pos;
    return true;
  }
  char peek() {
    skip_ws();
    return pos < doc.size() ? doc[pos] : '\0';
  }
  /// Parses a double-quoted string with no escapes (the snapshot grammar
  /// never needs them: names are dotted identifiers).
  bool string(std::string& out) {
    if (!eat('"')) return false;
    out.clear();
    while (pos < doc.size() && doc[pos] != '"') out += doc[pos++];
    return eat('"');
  }
  /// Accepts an unsigned integer, a %.6g-style number, or a bool — the only
  /// scalar shapes bench-compatible writers emit.
  bool scalar(std::string& out) {
    skip_ws();
    out.clear();
    const std::string_view rest = doc.substr(pos);
    if (rest.starts_with("true")) {
      out = "true";
      pos += 4;
      return true;
    }
    if (rest.starts_with("false")) {
      out = "false";
      pos += 5;
      return true;
    }
    while (pos < doc.size()) {
      const char c = doc[pos];
      if ((std::isdigit(static_cast<unsigned char>(c)) == 0) && c != '-' &&
          c != '+' && c != '.' && c != 'e' && c != 'E')
        break;
      out += c;
      ++pos;
    }
    return !out.empty();
  }
};

bool is_uint(const std::string& s) {
  if (s.empty()) return false;
  for (const char c : s)
    if (std::isdigit(static_cast<unsigned char>(c)) == 0) return false;
  return true;
}

}  // namespace

std::string metrics_json(const MetricsSnapshot& snap) {
  std::string out = "{\n  \"bench\": \"engine_metrics\",\n  \"rows\": [\n";
  const GaugeStats* gauges[] = {&snap.active_set, &snap.wake_heap,
                                &snap.inbox_csr, &snap.outbox_arena};
  for (std::size_t i = 0; i < 4; ++i)
    append_gauge_row(out, kGaugeNames[i], *gauges[i],
                     i + 1 == 4 && snap.counters.empty());
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    out += "    {\"kind\": \"counter\", \"name\": \"" +
           snap.counters[i].first +
           "\", \"value\": " + std::to_string(snap.counters[i].second);
    out += i + 1 == snap.counters.size() ? "}\n" : "},\n";
  }
  out += "  ]\n}\n";
  return out;
}

bool validate_metrics_json(std::string_view doc, std::string* error) {
  Scanner sc{doc};
  if (!sc.eat('{')) return fail(error, "document is not a JSON object");

  // Header: "bench": "engine_metrics", "rows": [
  std::string key, value;
  if (!sc.string(key) || key != "bench" || !sc.eat(':') || !sc.string(value))
    return fail(error, "missing \"bench\" tag");
  if (value != "engine_metrics")
    return fail(error, "bench tag is \"" + value +
                           "\", expected \"engine_metrics\"");
  if (!sc.eat(',') || !sc.string(key) || key != "rows" || !sc.eat(':') ||
      !sc.eat('['))
    return fail(error, "missing \"rows\" array");

  int gauge_seen[4] = {0, 0, 0, 0};
  std::size_t row_index = 0;
  std::string prev_counter;
  while (sc.peek() != ']') {
    if (row_index > 0 && !sc.eat(','))
      return fail(error, "rows are not comma-separated");
    if (!sc.eat('{'))
      return fail(error, "row " + std::to_string(row_index) +
                             " is not an object");
    std::string kind, name;
    bool has_value = false;
    int stat_fields = 0;  // samples/last/max/total seen on a gauge row
    bool first_field = true;
    while (sc.peek() != '}') {
      if (!first_field && !sc.eat(','))
        return fail(error, "row " + std::to_string(row_index) +
                               ": fields are not comma-separated");
      first_field = false;
      if (!sc.string(key) || !sc.eat(':'))
        return fail(error, "row " + std::to_string(row_index) +
                               ": malformed field");
      if (key == "kind" || key == "name") {
        if (!sc.string(value))
          return fail(error, "row " + std::to_string(row_index) + ": \"" +
                                 key + "\" is not a string");
        (key == "kind" ? kind : name) = value;
        continue;
      }
      if (!sc.scalar(value))
        return fail(error, "row " + std::to_string(row_index) + ": \"" + key +
                               "\" has no scalar value");
      if (key == "samples" || key == "last" || key == "max" ||
          key == "total") {
        if (!is_uint(value))
          return fail(error, "row " + std::to_string(row_index) + ": \"" +
                                 key + "\" is not an unsigned integer");
        ++stat_fields;
      } else if (key == "value") {
        if (!is_uint(value))
          return fail(error, "row " + std::to_string(row_index) +
                                 ": counter value is not an unsigned integer");
        has_value = true;
      } else {
        return fail(error, "row " + std::to_string(row_index) +
                               ": unknown field \"" + key + "\"");
      }
    }
    if (!sc.eat('}'))
      return fail(error, "row " + std::to_string(row_index) + " not closed");
    if (name.empty())
      return fail(error, "row " + std::to_string(row_index) + " has no name");
    if (kind == "gauge") {
      if (stat_fields != 4 || has_value)
        return fail(error, "gauge row \"" + name +
                               "\" must carry exactly samples/last/max/total");
      bool known = false;
      for (int i = 0; i < 4; ++i)
        if (name == kGaugeNames[i]) {
          ++gauge_seen[i];
          known = true;
        }
      if (!known)
        return fail(error, "unknown gauge \"" + name + "\"");
    } else if (kind == "counter") {
      if (!has_value || stat_fields != 0)
        return fail(error, "counter row \"" + name +
                               "\" must carry exactly one value");
      if (!prev_counter.empty() && !(prev_counter < name))
        return fail(error, "counter rows not sorted: \"" + prev_counter +
                               "\" before \"" + name + "\"");
      prev_counter = name;
    } else {
      return fail(error, "row " + std::to_string(row_index) +
                             " has kind \"" + kind + "\"");
    }
    ++row_index;
  }
  if (!sc.eat(']') || !sc.eat('}'))
    return fail(error, "document not closed");
  sc.skip_ws();
  if (sc.pos != doc.size())
    return fail(error, "trailing content after the document");
  for (int i = 0; i < 4; ++i)
    if (gauge_seen[i] != 1)
      return fail(error, std::string("gauge \"") + kGaugeNames[i] +
                             "\" appears " + std::to_string(gauge_seen[i]) +
                             " times, expected exactly once");
  return true;
}

}  // namespace ule
