// What global parameters a node is allowed to know.
//
// The paper is explicit about knowledge assumptions per result (Table 1):
// Theorem 4.4 needs n; Corollary 4.6 needs n and D; Corollary 4.5 needs
// nothing; the lower bounds hold even when n, m, and D are all known.  The
// harness grants exactly the knowledge the algorithm under test is entitled
// to, and algorithms must fail fast if run without their prerequisites.

#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>

namespace ule {

struct Knowledge {
  std::optional<std::uint64_t> n;  ///< number of nodes
  std::optional<std::uint64_t> m;  ///< number of edges
  std::optional<std::uint64_t> diameter;

  static Knowledge none() { return {}; }
  static Knowledge of_n(std::uint64_t n) { return {n, std::nullopt, std::nullopt}; }
  static Knowledge of_n_d(std::uint64_t n, std::uint64_t d) {
    return {n, std::nullopt, d};
  }
  static Knowledge all(std::uint64_t n, std::uint64_t m, std::uint64_t d) {
    return {n, m, d};
  }

  std::uint64_t require_n() const {
    if (!n) throw std::logic_error("algorithm requires knowledge of n");
    return *n;
  }
  std::uint64_t require_diameter() const {
    if (!diameter) throw std::logic_error("algorithm requires knowledge of D");
    return *diameter;
  }
};

}  // namespace ule
