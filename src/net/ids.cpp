#include "net/ids.hpp"

#include <numeric>
#include <unordered_set>

namespace ule {

std::uint64_t id_space_size(std::size_t n) {
  // n^4, saturating so Uids stay well inside 64 bits.
  constexpr std::uint64_t cap = 1ULL << 62;
  std::uint64_t r = 1;
  for (int i = 0; i < 4; ++i) {
    if (r > cap / (n == 0 ? 1 : n)) return cap;
    r *= n;
  }
  return r < 2 ? 2 : r;
}

std::vector<Uid> assign_ids(std::size_t n, IdScheme scheme, Rng& rng) {
  std::vector<Uid> ids(n);
  switch (scheme) {
    case IdScheme::Sequential:
      std::iota(ids.begin(), ids.end(), Uid{1});
      break;
    case IdScheme::ReverseSequential:
      for (std::size_t i = 0; i < n; ++i) ids[i] = n - i;
      break;
    case IdScheme::RandomPermutation: {
      std::iota(ids.begin(), ids.end(), Uid{1});
      for (std::size_t i = n; i > 1; --i)
        std::swap(ids[i - 1], ids[rng.below(i)]);
      break;
    }
    case IdScheme::RandomFromZ: {
      const std::uint64_t z = id_space_size(n);
      std::unordered_set<Uid> used;
      used.reserve(n * 2);
      for (std::size_t i = 0; i < n; ++i) {
        Uid candidate;
        do {
          candidate = rng.in_range(1, z);
        } while (!used.insert(candidate).second);
        ids[i] = candidate;
      }
      break;
    }
  }
  return ids;
}

const char* to_string(IdScheme s) {
  switch (s) {
    case IdScheme::Sequential: return "sequential";
    case IdScheme::ReverseSequential: return "reverse";
    case IdScheme::RandomPermutation: return "permutation";
    case IdScheme::RandomFromZ: return "random-Z";
  }
  return "?";
}

}  // namespace ule
