#include "net/reliable.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "net/metrics.hpp"

namespace ule {

std::string ReliableFrame::debug_string() const {
  std::string s = seq == 0 ? "rel-ack" : "rel#" + std::to_string(seq);
  if (epoch != 0) s += "e" + std::to_string(epoch);
  s += " ack=" + std::to_string(ack);
  if (ack_epoch != 0) s += "e" + std::to_string(ack_epoch);
  if (inner_flat.type != 0) {
    s += " [" + flat_debug_string(inner_flat) + "]";
  } else if (inner_msg) {
    s += " [" + inner_msg->debug_string() + "]";
  }
  return s;
}

// A Context that passes everything through to the engine's context except
// sends (captured into the per-port ARQ queues) and the scheduling verbs
// (captured so the wrapper can arbitrate between the inner algorithm's
// wishes and its own retransmit deadlines).  Same shape as ExplicitProcess's
// PassThroughCtx — the wrapper relies only on the public Process/Context
// interface, so it composes with every algorithm in the registry.
class ReliableProcess::CaptureCtx final : public Context {
 public:
  CaptureCtx(Context& real, ReliableProcess& owner)
      : real_(real), owner_(owner) {}

  NodeId slot() const override { return real_.slot(); }
  std::size_t degree() const override { return real_.degree(); }
  bool anonymous() const override { return real_.anonymous(); }
  Uid uid() const override { return real_.uid(); }
  Round round() const override { return real_.round(); }
  Rng& rng() override { return real_.rng(); }
  const Knowledge& knowledge() const override { return real_.knowledge(); }

  void send(PortId port, MessagePtr msg) override {
    owner_.enqueue_data(port, Payload{FlatMsg{}, std::move(msg)}, real_.round());
  }
  void send(PortId port, const FlatMsg& msg) override {
    owner_.enqueue_data(port, Payload{msg, nullptr}, real_.round());
  }

  void set_status(Status s) override { real_.set_status(s); }
  Status status() const override { return real_.status(); }

  void idle() override { owner_.inner_wish_ = Wish::Idle; }
  void sleep_until(Round r) override {
    owner_.inner_wish_ = Wish::Sleep;
    owner_.inner_deadline_ = r;
  }
  void halt() override { owner_.inner_wish_ = Wish::Halt; }

 private:
  Context& real_;
  ReliableProcess& owner_;
};

ReliableProcess::ReliableProcess(std::unique_ptr<Process> inner,
                                 ReliableConfig cfg)
    : inner_(std::move(inner)), cfg_(cfg) {
  if (cfg_.rto == 0) cfg_.rto = kReliableDefaultRto;
  if (cfg_.backoff_cap == 0) cfg_.backoff_cap = 8 * cfg_.rto;
  if (cfg_.backoff_cap < cfg_.rto) cfg_.backoff_cap = cfg_.rto;
}

Round ReliableProcess::interval(std::uint32_t attempts) const {
  // min(rto << attempts, cap) without overflowing the shift.
  const std::uint32_t shift = std::min<std::uint32_t>(attempts, 24);
  const std::uint64_t raw = std::uint64_t{cfg_.rto} << shift;
  return std::min<std::uint64_t>(raw, cfg_.backoff_cap);
}

void ReliableProcess::arm_deadline(PortState& ps, Round now) const {
  ps.rto_deadline =
      ps.unacked.empty() ? kRoundForever : now + interval(ps.attempts);
}

void ReliableProcess::ingest(Context& ctx, std::span<const Envelope> inbox,
                             std::vector<Envelope>& inner_inbox) {
  const Round now = ctx.round();
  for (const Envelope& env : inbox) {
    const auto* frame = dynamic_cast<const ReliableFrame*>(env.msg.get());
    if (frame == nullptr) {
      // Not ARQ traffic (every peer runs the same wrapped factory, so this
      // only happens for wrapper-off runs mixed in by tests): pass through.
      inner_inbox.push_back(env);
      continue;
    }
    PortState& ps = ports_[env.port];

    // Cumulative ack: pop everything the peer has now delivered.  Progress
    // resets the backoff ladder and re-arms the timer from this round.
    // Epoch-qualified: an ack for a dead life of our stream (the peer acking
    // frames from before a heal) must never pop the successor stream's
    // frames, so only an ack naming our current epoch counts.
    if (frame->ack_epoch == ps.epoch && frame->ack > ps.acked) {
      ps.acked = frame->ack;
      while (!ps.unacked.empty() && ps.unacked.front().seq <= frame->ack)
        ps.unacked.pop_front();
      ps.attempts = 0;
      arm_deadline(ps, now);
    }

    if (frame->seq == 0) continue;  // pure ack: no data side

    // Epoch gate before any resequencing.  Older epoch = a stale retransmit
    // from a dead life of the peer's stream: discard and count — parking it
    // would let a dead life's seqs corrupt the successor stream's cursor.
    // Newer epoch = the peer healed (or is a reborn node's fresh wrapper):
    // adopt it by resetting the delivery cursor and the parked buffer.
    if (frame->epoch < ps.rx_epoch) {
      ++stale_epoch_drops_;
      continue;
    }
    if (frame->epoch > ps.rx_epoch) {
      ps.rx_epoch = frame->epoch;
      ps.expected = 1;
      ps.parked.clear();
    }

    if (frame->seq < ps.expected) {
      // Duplicate of a delivered frame — the peer is retransmitting, so our
      // ack was lost: re-ack (standalone if no data rides this round).
      ++duplicate_drops_;
      ps.ack_due = true;
    } else if (frame->seq == ps.expected) {
      // In order: deliver, then drain every parked successor.
      inner_inbox.push_back(
          Envelope{env.port, frame->inner_flat, frame->inner_msg});
      ++ps.expected;
      for (auto it = ps.parked.find(ps.expected); it != ps.parked.end();
           it = ps.parked.find(ps.expected)) {
        inner_inbox.push_back(
            Envelope{env.port, it->second.flat, it->second.msg});
        ps.parked.erase(it);
        ++ps.expected;
      }
      ps.ack_due = true;
    } else {
      // Out of order: park until the gap fills (dedup via try_emplace), and
      // re-ack so the sender learns the gap persists.  A re-park of an
      // already-parked seq is a duplicate, not new reordering pressure.
      if (ps.parked.try_emplace(frame->seq,
                                Payload{frame->inner_flat, frame->inner_msg})
              .second)
        ++parked_frames_;
      else
        ++duplicate_drops_;
      ps.ack_due = true;
    }
  }
}

void ReliableProcess::enqueue_data(PortId port, Payload payload, Round now) {
  PortState& ps = ports_[port];
  if (ps.dead) {
    // Heal: the first fresh send after a give-up re-arms the port as a new
    // stream.  The dead life's seqs and acks are fenced off by the fresh
    // epoch stamped below (next_seq was reset to 1 here).
    ps.dead = false;
    ps.next_seq = 1;
    ps.acked = 0;
    ps.attempts = 0;
    ++healed_links_;
  }
  // A stream's epoch is the round of its first fresh send, plus one so a
  // live stream is never epoch 0.  Monotone across the port's lives: a heal
  // (and a reborn node's fresh wrapper) always opens at a strictly later
  // round than the previous life's first send.
  if (ps.next_seq == 1)
    ps.epoch = static_cast<std::uint32_t>(now) + 1;
  const std::uint32_t seq = ps.next_seq++;
  ps.unacked.push_back(Unacked{seq, std::move(payload)});
  ++ps.fresh;
}

void ReliableProcess::send_frame(Context& ctx, PortId port, std::uint32_t seq,
                                 const Payload& payload) {
  auto frame = std::make_shared<ReliableFrame>();
  frame->seq = seq;
  frame->epoch = ports_[port].epoch;
  frame->ack = ports_[port].expected - 1;  // cumulative
  frame->ack_epoch = ports_[port].rx_epoch;
  frame->inner_flat = payload.flat;
  frame->inner_msg = payload.msg;
  ctx.send(port, MessagePtr(std::move(frame)));
}

void ReliableProcess::flush(Context& ctx) {
  const Round now = ctx.round();
  const std::size_t deg = ports_.size();
  for (PortId p = 0; p < deg; ++p) {
    PortState& ps = ports_[p];
    bool sent_data = false;

    if (!ps.unacked.empty() && now >= ps.rto_deadline) {
      // Timeout: no ack progress for a full backed-off interval.
      ++ps.attempts;
      if (ps.attempts > cfg_.max_retries) {
        // Link dead (crashed peer or a total partition): drop the queue so
        // the run can quiesce instead of retransmitting forever.  Not dead
        // forever — the next fresh inner send heals the port from a fresh
        // epoch (enqueue_data).
        ps.dead = true;
        ++dead_links_;
        ps.unacked.clear();
        ps.fresh = 0;
        ps.rto_deadline = kRoundForever;
      } else {
        // Go-back-all: retransmit every unacked frame (the receiver dedups
        // and re-acks, so over-sending costs messages, never correctness).
        for (const Unacked& u : ps.unacked) send_frame(ctx, p, u.seq, u.payload);
        retransmissions_ += ps.unacked.size();
        ps.fresh = 0;  // fresh frames went out with the batch
        sent_data = true;
        arm_deadline(ps, now);
      }
    }

    if (ps.fresh > 0) {
      // First transmission of the frames the inner enqueued this step.
      const std::size_t start = ps.unacked.size() - ps.fresh;
      for (std::size_t i = start; i < ps.unacked.size(); ++i)
        send_frame(ctx, p, ps.unacked[i].seq, ps.unacked[i].payload);
      ps.fresh = 0;
      sent_data = true;
      arm_deadline(ps, now);
    }

    if (sent_data) {
      ps.ack_due = false;  // the cumulative ack rode on the data frames
    } else if (ps.ack_due) {
      // Ack news but no traffic to piggyback on: one standalone ack frame.
      send_frame(ctx, p, 0, Payload{});
      ps.ack_due = false;
    }
  }
}

void ReliableProcess::run_step(Context& ctx, std::span<const Envelope> inbox,
                               bool wake) {
  if (!cfg_.enabled) {
    // Transparent pass-through: the inner process runs against the real
    // context — bit-for-bit identical to an unwrapped run (pinned by the
    // reliable_off_overhead bench row).
    if (wake) {
      inner_->on_wake(ctx, inbox);
    } else {
      inner_->on_round(ctx, inbox);
    }
    return;
  }

  if (ports_.empty() && ctx.degree() > 0) ports_.resize(ctx.degree());

  std::vector<Envelope> inner_inbox;
  inner_inbox.reserve(inbox.size());
  ingest(ctx, inbox, inner_inbox);

  // Deliver the round to the inner algorithm only when the engine itself
  // would have: it never slept, it has (reassembled) messages, or its
  // deadline fired.  A pure retransmit wake must NOT step a sleeping inner —
  // protocols that sleep on a round deadline would see a spurious early
  // round.
  const bool due =
      wake || inner_wish_ == Wish::Running || !inner_inbox.empty() ||
      (inner_wish_ == Wish::Sleep && ctx.round() >= inner_deadline_);
  if (due && inner_wish_ != Wish::Halt) {
    inner_wish_ = Wish::Running;
    CaptureCtx cc(ctx, *this);
    if (wake) {
      inner_->on_wake(cc, inner_inbox);
    } else {
      inner_->on_round(cc, inner_inbox);
    }
  }

  flush(ctx);

  // Arbitrate scheduling.  The wrapper never halts: even after the inner
  // algorithm is done, peers may retransmit at us and the re-acks that stop
  // them only flow while we can still be woken by an arrival.  Idle costs
  // nothing (no heap entry), so quiescence is reached exactly when every
  // queue has drained or died.
  Round my_wake = kRoundForever;
  for (const PortState& ps : ports_)
    my_wake = std::min(my_wake, ps.rto_deadline);

  Round inner_wake = kRoundForever;
  switch (inner_wish_) {
    case Wish::Running:
      return;  // inner stays runnable; deadlines are checked every round
    case Wish::Sleep:
      inner_wake = inner_deadline_;
      break;
    case Wish::Idle:
    case Wish::Halt:
      break;  // forever
  }
  const Round wake_at = std::min(inner_wake, my_wake);
  if (wake_at == kRoundForever) {
    ctx.idle();
  } else {
    ctx.sleep_until(wake_at);
  }
}

void ReliableProcess::on_wake(Context& ctx, std::span<const Envelope> inbox) {
  run_step(ctx, inbox, /*wake=*/true);
}

void ReliableProcess::on_round(Context& ctx, std::span<const Envelope> inbox) {
  run_step(ctx, inbox, /*wake=*/false);
}

void ReliableProcess::export_metrics(MetricsSink& sink) const {
  // The disabled wrapper is a transparent pass-through with no ARQ state —
  // reporting (all-zero) counters would make a wrapped-off snapshot differ
  // from an unwrapped one, which the zero-overhead contract forbids.
  if (cfg_.enabled) {
    sink.counter("arq.retransmissions", retransmissions_);
    sink.counter("arq.duplicate_drops", duplicate_drops_);
    sink.counter("arq.parked_frames", parked_frames_);
    sink.counter("arq.dead_links", dead_links_);
    sink.counter("arq.dead_link_drops", dead_link_drops_);
    sink.counter("arq.healed_links", healed_links_);
    sink.counter("arq.stale_epoch_drops", stale_epoch_drops_);
  }
  inner_->export_metrics(sink);
}

std::function<std::unique_ptr<Process>(NodeId)> make_reliable(
    std::function<std::unique_ptr<Process>(NodeId)> inner,
    ReliableConfig cfg) {
  return [inner = std::move(inner),
          cfg](NodeId slot) -> std::unique_ptr<Process> {
    return std::make_unique<ReliableProcess>(inner(slot), cfg);
  };
}

}  // namespace ule
