// Messages and their CONGEST accounting.
//
// Two wire representations share one delivery pipeline:
//
// 1. The FLAT FAST PATH (`FlatMsg`): a 32-byte POD — type tag, protocol
//    channel, flag byte, accounted bit size, and three 64-bit payload words —
//    stored INLINE in the engine's in-flight and inbox buffers.  Sending one
//    costs a struct copy: no heap allocation, no shared_ptr refcount, no
//    virtual dispatch, and receivers discriminate by (channel, type) integer
//    compare instead of dynamic_cast.  Every hot algorithm (the wave pools
//    behind flood_max/least_el/size_estimate, dfs_election, kingdom,
//    sublinear_complete) speaks FlatMsg.  Three words is a deliberate cap:
//    CONGEST grants O(log n) bits per edge per round, so any message needing
//    more than a tag plus a few id-sized fields is over budget anyway.
//
// 2. The LEGACY POINTER PATH (`Message`/`MessagePtr`): algorithms define
//    concrete types derived from Message; broadcast-style sends share one
//    immutable payload through shared_ptr.  Kept as the extensibility
//    adapter for cold protocols (e.g. the Baswana–Sen spanner phases,
//    broadcast and truncation experiments) and for tests; an Envelope
//    carries either representation and both are billed identically.
//
// Each representation reports its encoded size in bits so the engine can
// (a) total up bit complexity and (b) enforce the CONGEST bound of O(log n)
// bits per edge per round when asked to.

#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "net/types.hpp"

namespace ule {

class Message {
 public:
  virtual ~Message() = default;

  /// Size of the encoded message in bits (header + payload).  CONGEST allows
  /// O(log n) bits; helpers below size common field kinds consistently.
  virtual std::uint32_t size_bits() const = 0;

  /// For traces and test failure diagnostics.
  virtual std::string debug_string() const { return "msg"; }
};

using MessagePtr = std::shared_ptr<const Message>;

/// The inline fast-path representation.  `type == 0` means "no flat payload"
/// (the envelope's MessagePtr is in use); protocols pick their own nonzero
/// type tags, scoped by `channel` (see election/channels.hpp), so two
/// protocols never need to coordinate tag ranges.
struct FlatMsg {
  std::uint16_t type = 0;    ///< protocol-local discriminator; 0 = unused
  std::uint8_t channel = 0;  ///< protocol channel, keeps concurrent runs apart
  std::uint8_t flags = 0;    ///< protocol-defined flag bits
  std::uint32_t bits = 0;    ///< accounted wire size (the size_bits analogue)
  std::uint64_t a = 0;       ///< payload word (ids, ranks, depths, ...)
  std::uint64_t b = 0;
  std::uint64_t c = 0;
};

/// A received message, tagged with the local port it arrived on.  Exactly one
/// representation is populated: `flat.type != 0` xor `msg != nullptr`.
struct Envelope {
  PortId port = kNoPort;
  FlatMsg flat;
  MessagePtr msg;

  bool is_flat() const { return flat.type != 0; }
};

/// Conventional field sizes, in bits.  IDs/ranks come from a set of size
/// n^4, i.e. 4*log2(n) bits; we account a uniform 64-bit field for them so
/// measured "bits" scale like Theta(messages * log n) for the n we simulate.
namespace wire {
inline constexpr std::uint32_t kTypeTag = 8;    ///< message discriminator
inline constexpr std::uint32_t kIdField = 64;   ///< node id / rank / edge id
inline constexpr std::uint32_t kCounter = 32;   ///< hop counters, phase nums
inline constexpr std::uint32_t kFlag = 1;       ///< booleans
}  // namespace wire

/// Generic render of a flat message for traces (protocols that want prettier
/// trace lines can keep a legacy debug type; the hot path favours speed).
std::string flat_debug_string(const FlatMsg& m);

}  // namespace ule
