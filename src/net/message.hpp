// Messages and their CONGEST accounting.
//
// Algorithms define their own concrete message types derived from Message.
// Each type reports its own size in bits so the engine can (a) total up the
// bit complexity and (b) enforce the CONGEST bound of O(log n) bits per edge
// per round when asked to.  Broadcast-style sends share one immutable payload
// through shared_ptr, so fan-out is cheap.

#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "net/types.hpp"

namespace ule {

class Message {
 public:
  virtual ~Message() = default;

  /// Size of the encoded message in bits (header + payload).  CONGEST allows
  /// O(log n) bits; helpers below size common field kinds consistently.
  virtual std::uint32_t size_bits() const = 0;

  /// For traces and test failure diagnostics.
  virtual std::string debug_string() const { return "msg"; }
};

using MessagePtr = std::shared_ptr<const Message>;

/// A received message, tagged with the local port it arrived on.
struct Envelope {
  PortId port = kNoPort;
  MessagePtr msg;
};

/// Conventional field sizes, in bits.  IDs/ranks come from a set of size
/// n^4, i.e. 4*log2(n) bits; we account a uniform 64-bit field for them so
/// measured "bits" scale like Theta(messages * log n) for the n we simulate.
namespace wire {
inline constexpr std::uint32_t kTypeTag = 8;    ///< message discriminator
inline constexpr std::uint32_t kIdField = 64;   ///< node id / rank / edge id
inline constexpr std::uint32_t kCounter = 32;   ///< hop counters, phase nums
inline constexpr std::uint32_t kFlag = 1;       ///< booleans
}  // namespace wire

}  // namespace ule
