#include "net/message.hpp"

namespace ule {

std::string flat_debug_string(const FlatMsg& m) {
  std::string out = "flat(ch" + std::to_string(m.channel) + ",t" +
                    std::to_string(m.type);
  if (m.flags != 0) out += ",f" + std::to_string(m.flags);
  out += "," + std::to_string(m.a);
  if (m.b != 0 || m.c != 0) out += "/" + std::to_string(m.b);
  if (m.c != 0) out += "/" + std::to_string(m.c);
  return out + ")";
}

}  // namespace ule
