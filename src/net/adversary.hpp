// The deterministic message/fault adversary (see docs/ADVERSARY.md).
//
// The paper's model is lockstep-synchronous and fault-free: a message sent in
// round r arrives at the start of round r+1, exactly once, in send order, and
// no node ever stops.  AdversaryConfig relaxes each of those guarantees
// independently, under a *seeded oblivious adversary*: every adverse decision
// (delay amount, drop, duplication, inbox reordering) is a pure function of
// (adversary seed, sender, edge, per-sender send index) — never of thread
// interleaving or wall clock — so adversarial runs remain bit-for-bit
// reproducible at every thread count, exactly like fault-free runs.
//
//   max_delay   bounded asynchrony: a message sent in round r arrives in
//               round r + 1 + d with d drawn uniformly from [0, max_delay].
//               FIFO per edge is NOT preserved (delays are per-message).
//   drop        each message is destroyed in transit with this probability.
//               The send is still billed (the sender paid for it); the
//               receiver simply never sees it.
//   duplicate   each message is delivered twice with this probability (the
//               copy draws its own delay).  The copy is NOT billed — it is
//               the adversary's forgery, not the sender's message.
//   reorder     per receiver per round: with this probability an inbox of
//               two or more messages is shuffled (Fisher-Yates, seeded),
//               breaking the engine's send-order delivery guarantee.
//   crashes     churn schedule: (node, crash_round, recover_round) intervals.
//               From the start of crash_round the node never steps and never
//               sends; messages delivered into the crashed window are purged
//               from its inbox and billed to RunResult::adv_crash_drops.  A
//               bounded interval (recover_round < kRoundForever) rebirths the
//               node at the start of recover_round: it restarts from its
//               initial state (fresh process instance, same ID and UID, a
//               fresh RNG stream salted by the recovery round) with its inbox
//               purged, and re-enters the wake heap at that round.  The
//               default recover_round = kRoundForever is classic crash-stop.
//               Intervals are repeatable per node (crash, recover, crash
//               again); a recover_round == crash_round interval is a no-op
//               and is dropped at schedule-build time.
//
// A default-constructed config is OFF: the engine detects this once and
// compiles down to the exact fault-free hot path (no per-send or per-round
// adversary work; pinned by the adversary_off_overhead bench row).  The seed
// alone is inert — only a non-zero fault knob activates the adversary.

#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "net/rng.hpp"
#include "net/types.hpp"

namespace ule {

/// One churn interval: node `node` crashes at the start of round `at` and —
/// if `recover` is bounded — restarts from its initial state at the start of
/// round `recover`.  The default keeps the PR-6 crash-stop meaning, and the
/// two-field brace form `{node, at}` still compiles unchanged.
struct CrashEvent {
  NodeId node = kNoNode;
  Round at = 0;
  Round recover = kRoundForever;

  friend bool operator==(const CrashEvent&, const CrashEvent&) = default;
};

struct AdversaryConfig {
  /// Seed of the adversary's own coin stream, domain-separated from every
  /// run/graph/wakeup stream.  Inert while all fault knobs are zero.
  std::uint64_t seed = 1;
  /// Max extra delivery rounds per message (0 = synchronous delivery).
  Round max_delay = 0;
  /// Per-message destruction probability in [0, 1].
  double drop = 0.0;
  /// Per-message duplication probability in [0, 1].
  double duplicate = 0.0;
  /// Per-receiver-per-round inbox shuffle probability in [0, 1].
  double reorder = 0.0;
  /// Churn schedule: each entry crashes a node at `at` and, when `recover`
  /// is bounded, rebirths it from its initial state at `recover` (see the
  /// header comment).  Entries may repeat a node for crash/recover/crash
  /// chains.
  std::vector<CrashEvent> crashes;

  /// Any per-message fault active (drop / duplicate / delay)?
  bool send_faults() const {
    return max_delay > 0 || drop > 0.0 || duplicate > 0.0;
  }
  /// Any fault at all?  False = the engine takes the exact fault-free path.
  bool active() const {
    return send_faults() || reorder > 0.0 || !crashes.empty();
  }
};

/// The adversary's per-message coin: a pure function of (seed, sender, edge,
/// the sender's send index), so it is identical however the round's nodes are
/// interleaved across workers.  Inputs are avalanched pairwise (same rationale
/// as node_rng: raw XOR of small consecutive values would alias streams).
inline std::uint64_t adversary_coin(std::uint64_t seed, std::uint64_t a,
                                    std::uint64_t b, std::uint64_t c) {
  std::uint64_t sm = seed ^ (0xA24BAED4963EE407ULL * (a + 1));
  sm = splitmix64(sm) ^ (0x9FB21C651E98DF25ULL * (b + 1));
  sm = splitmix64(sm) ^ c;
  return splitmix64(sm);
}

/// Domain separation for the reorder stream (keyed by receiver + round, not
/// by sender + send index).
inline constexpr std::uint64_t kAdversaryReorderDomain = 0x5E4D3C2B1A0F9E8DULL;

/// Domain separation for the RNG streams handed to reborn nodes: a recovery
/// re-seeds the node from (run seed, recovery round, slot) under this domain,
/// so a node's second life never replays its first life's coins and rebirth
/// streams never alias the initial per-node streams.
inline constexpr std::uint64_t kAdversaryRecoveryDomain = 0x8D1B5C6E9F3A2D47ULL;

}  // namespace ule
