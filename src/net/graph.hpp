// Port-numbered undirected graph: the network topology substrate.
//
// The paper's model (Section 2): each node is given a port numbering where
// each port is connected to an incident edge; the node has *no* knowledge of
// the neighbour at the other endpoint.  Algorithms therefore only ever see
// port indices; the Graph owns the port->neighbour mapping and the engine
// routes messages through it.  Edges carry dense global ids (used only by
// instrumentation, e.g. bridge-crossing watches, never exposed to processes
// except where an algorithm legitimately learns an edge's identity by
// communication, as in Algorithm 1's inter-cluster graph).

#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "net/rng.hpp"
#include "net/types.hpp"

namespace ule {

class Graph {
 public:
  /// One directed half of an undirected edge, as seen from its source node.
  struct HalfEdge {
    NodeId to = kNoNode;       ///< Neighbour reached through this port.
    PortId rev = kNoPort;      ///< Port at `to` leading back here.
    EdgeId edge = kNoEdge;     ///< Global undirected edge id.
  };

  Graph() = default;

  /// Build from an undirected edge list over nodes 0..n-1.
  /// Self-loops and duplicate edges are rejected (throws std::invalid_argument).
  static Graph from_edges(std::size_t n,
                          const std::vector<std::pair<NodeId, NodeId>>& edges);

  std::size_t n() const { return adj_.size(); }
  std::size_t m() const { return endpoints_.size(); }

  std::size_t degree(NodeId u) const { return adj_[u].size(); }
  const HalfEdge& half_edge(NodeId u, PortId p) const { return adj_[u][p]; }
  std::span<const HalfEdge> ports(NodeId u) const {
    return {adj_[u].data(), adj_[u].size()};
  }

  /// Endpoints of undirected edge e (u < v normalised at construction).
  std::pair<NodeId, NodeId> edge_endpoints(EdgeId e) const {
    return endpoints_[e];
  }

  /// Finds the port at u leading to v, or kNoPort if not adjacent. O(deg(u)).
  PortId port_to(NodeId u, NodeId v) const;

  /// Randomly permute every node's port numbering (an adversarial degree of
  /// freedom in the lower-bound constructions).  Preserves edge ids.
  void shuffle_ports(Rng& rng);

  std::size_t max_degree() const;
  std::uint64_t degree_sum() const { return 2 * m(); }

  /// Human-readable one-line summary ("n=12 m=17 maxdeg=5").
  std::string summary() const;

 private:
  std::vector<std::vector<HalfEdge>> adj_;
  std::vector<std::pair<NodeId, NodeId>> endpoints_;
};

}  // namespace ule
