// The synchronous message-passing engine.
//
// Realizes the paper's model (Section 2): computation advances in synchronous
// rounds; in every round nodes receive the messages their neighbours sent in
// the previous round, compute locally, and send at most one message per edge
// (CONGEST, optionally enforced).  The engine is deterministic: a run is a
// pure function of (graph, processes, config.seed).
//
// Scheduling is EVENT-DRIVEN: a round costs O(runnable + delivered), not
// O(n).  The runnable set of a round is the union of
//   - nodes that stayed Running after their last step,
//   - nodes receiving a message this round (the delivery dirty list), and
//   - nodes whose sleep_until / scheduled-wakeup deadline fires, popped from
//     a min-heap of wake deadlines (stale entries are skipped lazily).
// The union is sorted, so execution order (ascending slot) and therefore
// every counter and election outcome is bit-for-bit identical to the
// original full-scan scheduler — enforced by the engine-equivalence
// regression test.  Fast-forward reads the next deadline off the heap top in
// O(log n) instead of an O(n) sweep; rounds where nothing is runnable and no
// message is in flight are skipped wholesale, so Theorem 4.1's agents
// stepping every 2^ID rounds stay cheap even at n = 10^6.
//
// Delivery uses a flat CSR-style buffer: in-flight envelopes are bucketed by
// destination (stable, preserving send order) into one contiguous array with
// per-node offsets, replacing the old vector-of-vectors inbox and its
// per-node reallocation.  Messages themselves prefer the inline FlatMsg
// representation (net/message.hpp) — the common case moves zero heap blocks
// per round.
//
// PARALLEL ROUND PIPELINE (EngineConfig::threads > 1): within a round the
// synchronous model has no intra-node dependencies — every node reads last
// round's inbox and writes this round's outbox — so dense rounds execute on
// a fixed worker pool in three phases:
//   shard     the sorted runnable set is split into `threads` contiguous
//             ascending-slot ranges (shard w = slots [w*k/T, (w+1)*k/T));
//   execute   each worker steps its shard in slot order, appending sends to
//             a private SendLane (outbox arena + counter block, net/
//             outbox.hpp) — no shared mutable state is touched: node state,
//             RNG stream, per-node send counts and per-directed-port CONGEST
//             stamps are all owned by the stepping node's worker;
//   merge     after the barrier, lanes are drained in shard order.  Because
//             shards are contiguous ranges of the slot-sorted runnable set,
//             the lane-order concatenation of envelopes IS the sequential
//             send order, and summing the counter blocks in lane order
//             reproduces every RunResult counter exactly.  Hence runs are
//             bit-for-bit identical at every thread count (pinned by the
//             parallel-determinism matrix test).
// The CSR bucket pass is parallelized the same way: a sequential addressing
// pass assigns every envelope its exact delivery slot, then workers move
// disjoint contiguous chunks.  Rounds below EngineConfig::parallel_cutoff
// runnable nodes stay on the sequential fast path (pool dispatch costs a few
// microseconds; a quiescent ring round costs ~16 ns), as do runs with
// order-dependent instrumentation (tracing, edge traffic, edge watches).
//
// ADVERSARY (EngineConfig::adversary, net/adversary.hpp): a seeded oblivious
// adversary can delay (bounded), drop, duplicate and reorder messages and
// crash nodes — forever (crash-stop) or for a bounded churn interval, after
// which the node is reborn from its initial state (fresh process, same ID,
// inbox purged, wake-heap re-entry).  Delayed envelopes park in a small ring of future-arrival
// buckets and re-enter the normal CSR delivery machinery in their arrival
// round; every adverse coin is a pure function of (adversary seed, sender,
// edge, send index), so adversarial runs are bit-for-bit identical at every
// thread count.  With the adversary off (the default) the engine runs the
// exact fault-free hot path — no adversary state is allocated or touched.
//
// Instrumentation: total messages and bits, per-node send counts, optional
// per-edge traffic, and *edge watches* — per-edge records of the first round
// a message crossed, used to operationalize the bridge-crossing (BC) problem
// from the Theorem 3.1 lower-bound proof.

#pragma once

#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <optional>
#include <queue>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "net/adversary.hpp"
#include "net/graph.hpp"
#include "net/knowledge.hpp"
#include "net/message.hpp"
#include "net/metrics.hpp"
#include "net/outbox.hpp"
#include "net/process.hpp"
#include "net/rng.hpp"
#include "net/types.hpp"
#include "net/worker_pool.hpp"

namespace ule {

enum class CongestMode : std::uint8_t {
  Off,      ///< no checking (LOCAL model)
  Count,    ///< record violations, do not fail
  Enforce,  ///< throw on violation
};

struct EngineConfig {
  std::uint64_t seed = 1;
  Round max_rounds = 50'000'000;
  CongestMode congest = CongestMode::Off;
  /// Per-message bit budget for CONGEST checks.  0 = auto: room for a small
  /// constant number of id-sized fields (ids live in [1, n^4], i.e. Θ(log n)
  /// bits; our wire format sizes them at 64 bits uniformly).
  std::uint32_t congest_bits = 0;
  bool fast_forward = true;
  bool record_edge_traffic = false;
  /// Record up to this many TraceEvents (0 = tracing off).  Wakes, sends
  /// (with payload debug strings) and status changes, in execution order —
  /// the round-by-round story of a run, for debugging and teaching.
  std::size_t trace_limit = 0;
  /// Record (round, cumulative messages) after every executed round — used
  /// by e.g. the majority-broadcast experiment ("messages until > n/2
  /// informed").
  bool record_message_timeline = false;
  std::vector<EdgeId> watch_edges;
  /// Worker threads for round execution and CSR bucketing.  1 = fully
  /// sequential (the exact legacy code path); 0 = hardware concurrency.
  /// Completed runs are bit-for-bit identical at every thread count.  On
  /// the exception path (a step or CONGEST-Enforce throw), every shard
  /// first finishes its own range (stopping at its own first error) before
  /// the first error in slot order is rethrown — so post-throw engine state
  /// is deterministic for a fixed thread count but, unlike a completed run,
  /// may differ between thread counts (a sequential run stops at the first
  /// error; aborting peer shards mid-flight would instead make the state
  /// timing-dependent).
  unsigned threads = 1;
  /// Minimum sorted-runnable size before a round is dispatched to the worker
  /// pool (pool dispatch costs microseconds; tiny rounds — e.g. ring DFS at
  /// ~1.6 runnable nodes/round — must stay on the ~16 ns sequential path).
  /// The CSR scatter pass parallelizes at 16x this many delivered envelopes.
  std::size_t parallel_cutoff = 192;
  /// Seeded delivery/fault adversary (net/adversary.hpp).  Default = off: the
  /// engine takes the exact fault-free hot path.  Adversarial delivery (the
  /// delay ring and the CSR bucket pass it feeds) is sequential; node stepping
  /// still parallelizes, and adversarial runs stay bit-for-bit identical at
  /// every thread count because every adverse coin is keyed by
  /// (adversary.seed, sender, edge, send index), never by execution order.
  AdversaryConfig adversary;
  /// Engine telemetry (net/metrics.hpp).  Default = off, with the same
  /// pinned zero-overhead contract as the inert adversary and the disabled
  /// reliable wrapper: a disabled-metrics run reproduces every RunResult
  /// counter of a metrics-free build (metrics_off_overhead bench row).
  /// When on, RunResult::metrics carries a snapshot that is bit-for-bit
  /// identical at every thread count.
  MetricsConfig metrics;
};

struct RunResult {
  Round rounds = 0;          ///< logical rounds until global quiescence
  Round executed_rounds = 0; ///< rounds actually simulated (not fast-forwarded)
  std::uint64_t node_steps = 0;  ///< process invocations (on_wake + on_round)
  std::uint64_t messages = 0;
  std::uint64_t bits = 0;
  bool completed = false;    ///< quiesced before max_rounds
  std::uint64_t congest_violations = 0;
  std::size_t elected = 0;
  std::size_t non_elected = 0;
  std::size_t undecided = 0;
  Round last_status_change = 0;  ///< the paper's "from round T on" T
  /// Last executed round that made observable progress (sent a message or
  /// changed a status).  Under adversarial drops/crashes a run can livelock —
  /// spin to max_rounds without progressing — and `rounds - last_progress`
  /// is then the length of the silent tail.
  Round last_progress = 0;
  /// Crash events applied by the adversary's churn schedule (a node that
  /// crashes, recovers and crashes again counts twice).
  std::size_t crashed = 0;
  /// Recovery events applied: bounded churn intervals whose node was reborn
  /// from its initial state (fresh process, same ID, inbox purged).
  std::size_t recoveries = 0;
  /// Messages purged from a node's inbox because they were delivered inside
  /// its crashed window.  Billed here — the single crash-drop counter — and
  /// never to adv_drops (the in-transit coin) or left uncounted (the
  /// voluntary-halt delivery path).
  std::uint64_t adv_crash_drops = 0;
  /// Adversary fault events, always on (folded from the send lanes): sends
  /// billed then eaten, duplicate copies delivered, envelopes held back by a
  /// positive drawn delay.  All zero when the adversary is off or inert.
  std::uint64_t adv_drops = 0;
  std::uint64_t adv_dups = 0;
  std::uint64_t adv_delays = 0;
  /// ARQ links declared dead and the fresh sends they swallowed afterwards,
  /// summed over all nodes (net/reliable.hpp).  Filled on the same failure
  /// path as undecided_nodes — a quiesced-undecided run names its dead
  /// edges — so a fully decided run leaves them zero.
  std::uint64_t dead_links = 0;
  std::uint64_t dead_link_drops = 0;
  /// Dead ARQ ports later re-armed from a fresh epoch by a fresh send
  /// (arq.healed_links), swept on the same failure path.
  std::uint64_t healed_links = 0;
  std::vector<NodeId> dead_link_nodes;  ///< up to 32 owners of dead ports
  /// Non-termination sample, filled when the run failed to fully decide: up
  /// to 32 slots still Undecided either when max_rounds cut the run off
  /// (livelock) or when it quiesced with them stuck (deadlock/starvation —
  /// a drop=1.0 partition or a crashed relay).  Crashed nodes are excluded —
  /// they can never decide.  Makes adversary-induced failures debuggable
  /// from the result alone; see describe_nontermination().
  std::vector<NodeId> undecided_nodes;
  /// Telemetry snapshot, engaged only when EngineConfig::metrics.enabled.
  std::optional<MetricsSnapshot> metrics;
};

/// One-line diagnostic for a run that hit max_rounds OR quiesced with
/// undecided nodes (empty if it completed fully decided).
std::string describe_nontermination(const RunResult& r);

/// One recorded engine event (requires cfg.trace_limit > 0).
struct TraceEvent {
  enum class Kind : std::uint8_t { Wake, Send, StatusChange };
  Kind kind = Kind::Send;
  Round round = 0;
  NodeId node = kNoNode;
  PortId port = kNoPort;   ///< Send only: the sending port
  NodeId peer = kNoNode;   ///< Send only: the receiving node
  Status status = Status::Undecided;  ///< StatusChange only
  std::string detail;      ///< Send only: the payload's debug string
};

// --- the parallel-merge seam (free functions so the fold order, counter
// summation and exception selection are unit-testable with hand-crafted
// lanes; the engine calls them on both the sequential one-lane path and
// after the worker barrier) -------------------------------------------------

/// Fold one lane's counter block into `result` — stamping
/// `result.last_status_change = round` when the lane saw a status change —
/// and zero the block.  Returns the lane's captured error, if any, for the
/// caller to rethrow (the error is cleared from the lane).  Forced inline:
/// this is the body of the sequential per-round fold, and letting it fall
/// out of line costs ~5 ns/round on the quiescent scheduler path.
[[gnu::always_inline]] inline std::exception_ptr fold_lane_counters(
    SendLane& lane, RunResult& result, Round round) {
  // Guarded: on a quiescent round every counter is zero and the fold is a
  // single predictable branch.  Violations, bits and adversary fault events
  // all imply messages != 0 (a dropped send is billed before it is eaten),
  // so the guard never skips a non-zero block.
  if (lane.messages != 0 || lane.status_changed) {
    result.messages += lane.messages;
    result.bits += lane.bits;
    result.congest_violations += lane.congest_violations;
    result.adv_drops += lane.adv_drops;
    result.adv_dups += lane.adv_dups;
    result.adv_delays += lane.adv_delays;
    if (lane.status_changed) result.last_status_change = round;
    lane.messages = 0;
    lane.bits = 0;
    lane.congest_violations = 0;
    lane.adv_drops = 0;
    lane.adv_dups = 0;
    lane.adv_delays = 0;
    lane.status_changed = false;
  }
  if (lane.error) [[unlikely]] {
    const std::exception_ptr e = lane.error;
    lane.error = nullptr;
    return e;
  }
  return nullptr;
}

/// Fold every lane in lane order and return the FIRST captured error in
/// lane order.  Lane order is slot order — shards are contiguous ascending
/// ranges of the sorted runnable set and each worker stops at its own first
/// throw — so the error returned is the one a sequential execution would
/// have hit first.  Every lane is folded even when an earlier one errored:
/// counters must reflect every send that happened before the rethrow.
inline std::exception_ptr merge_lane_counters(std::span<SendLane> lanes,
                                              RunResult& result, Round round) {
  std::exception_ptr first_error;
  for (SendLane& lane : lanes) {
    const std::exception_ptr err = fold_lane_counters(lane, result, round);
    if (err && !first_error) first_error = err;
  }
  return first_error;
}

class SyncEngine;

/// Render a recorded trace round-by-round (up to max_lines lines).
std::string format_trace(const SyncEngine& eng, std::size_t max_lines = 200);

/// First-crossing record for a watched edge (bridge-crossing experiments).
struct WatchReport {
  EdgeId edge = kNoEdge;
  Round first_cross = kRoundForever;       ///< round of first traversal
  std::uint64_t messages_before_cross = 0; ///< total sends strictly before it
};

class SyncEngine {
 public:
  SyncEngine(const Graph& g, EngineConfig cfg = {});

  // --- run setup (call before run()) ---
  /// Assign application-level unique IDs; empty vector = anonymous network.
  void set_uids(std::vector<Uid> uids);
  /// Wakeup schedule: absolute wake round per node (default: all zero, the
  /// simultaneous-wakeup model the lower bounds assume).  Nodes also wake on
  /// message arrival.  At least one entry must be 0 in adversarial schedules.
  void set_wakeup(std::vector<Round> wake_rounds);
  void set_knowledge(Knowledge k) { knowledge_ = k; }
  void set_process(NodeId slot, std::unique_ptr<Process> p);

  template <typename Factory>
  void init_processes(Factory&& make) {
    for (NodeId s = 0; s < graph_.n(); ++s) set_process(s, make(s));
    // Retained only when the churn schedule can rebirth a node: recovery
    // reinstalls a fresh process from the same factory (same slot, same ID).
    if (has_recoveries_) factory_ = std::forward<Factory>(make);
  }

  RunResult run();

  // --- post-run inspection ---
  const Graph& graph() const { return graph_; }
  Status status(NodeId slot) const { return nodes_[slot].status; }
  Process* process(NodeId slot) { return procs_[slot].get(); }
  const Process* process(NodeId slot) const { return procs_[slot].get(); }
  Uid uid_of(NodeId slot) const { return uids_.empty() ? 0 : uids_[slot]; }
  bool anonymous() const { return uids_.empty(); }
  const RunResult& result() const { return result_; }
  std::uint64_t messages_sent() const { return result_.messages; }
  const std::vector<std::uint64_t>& sent_by_node() const { return sent_by_node_; }
  /// Requires cfg.record_edge_traffic.
  const std::vector<std::uint64_t>& edge_traffic() const { return edge_traffic_; }
  const std::vector<WatchReport>& watch_reports() const { return watch_reports_; }
  /// Requires cfg.record_message_timeline.
  const std::vector<std::pair<Round, std::uint64_t>>& message_timeline() const {
    return message_timeline_;
  }
  /// Requires cfg.trace_limit > 0.  Truncated at trace_limit events.
  const std::vector<TraceEvent>& trace() const { return trace_; }
  bool trace_truncated() const { return trace_truncated_; }
  /// Cumulative messages sent in rounds < r (requires timeline recording).
  /// Binary search over the sorted timeline: O(log #executed-rounds).
  std::uint64_t messages_before(Round r) const;

 private:
  enum class RunState : std::uint8_t { Unwoken, Running, Sleeping, Halted };

  struct NodeState {
    RunState state = RunState::Unwoken;
    Round wake_at = 0;  ///< Unwoken: scheduled wakeup; Sleeping: deadline.
    Status status = Status::Undecided;
    /// True while the adversary holds this node crashed (distinguishes an
    /// adversary kill from a voluntary halt(); cleared on recovery).
    bool crashed = false;
    Rng rng;
  };

  /// Min-heap entry: (deadline, node).  Entries are never removed on state
  /// change; a popped entry is acted on only if the node is still waiting
  /// for exactly this deadline (lazy deletion).
  using WakeEntry = std::pair<Round, NodeId>;
  using WakeHeap = std::priority_queue<WakeEntry, std::vector<WakeEntry>,
                                       std::greater<WakeEntry>>;

  class Ctx;  // Context implementation, defined in engine.cpp

  void do_send(SendLane& lane, NodeId from, PortId port, MessagePtr msg);
  void do_send(SendLane& lane, NodeId from, PortId port, const FlatMsg& msg);
  /// Shared send bookkeeping (congest, counters, watches, trace); returns
  /// the traversed half-edge.  `legacy` is null on the flat path.
  const Graph::HalfEdge& account_send(SendLane& lane, NodeId from, PortId port,
                                      std::uint32_t bits, const FlatMsg* flat,
                                      const Message* legacy);
  std::uint32_t congest_budget() const;

  /// Execute one node's step (wake or round) through `ctx`.  Forced inline:
  /// it is the body of both execution loops, and letting it fall out of
  /// line costs ~5 ns/round on the quiescent scheduler path.
  [[gnu::always_inline]] inline void step_node(Ctx& ctx, NodeId s);
  /// Worker w's contiguous chunk [lo, hi) of `total` work items.  This
  /// formula IS the determinism argument: chunks are contiguous ascending
  /// ranges, so lane order = send order — both the execute and the scatter
  /// phase must shard through it.
  std::pair<std::size_t, std::size_t> shard_range(unsigned w,
                                                  std::size_t total) const {
    return {total * w / threads_, total * (w + 1) / threads_};
  }
  /// The worker pool, spawned on first use (threads_ > 1 only).
  WorkerPool& ensure_pool() {
    if (!pool_) pool_ = std::make_unique<WorkerPool>(threads_);
    return *pool_;
  }
  /// Execute the sorted runnable set on the worker pool in contiguous
  /// shards (one lane per worker), then fold every lane's counter block
  /// into result_ in lane order (= slot order) and rethrow the first
  /// captured worker exception, if any.  The sequential fast path is
  /// inlined in run().
  void execute_round_parallel(const std::vector<NodeId>& runnable);
  /// The delivered inbox of node `s` this round (empty span if none).
  std::span<const Envelope> inbox_of(NodeId s) const {
    return inbox_len_[s] > 0
               ? std::span<const Envelope>{delivery_.data() + inbox_off_[s],
                                           inbox_len_[s]}
               : std::span<const Envelope>{};
  }

  /// Bucket last round's lane outboxes (in lane order = send order) by
  /// destination into the CSR delivery buffer; fills dirty_ (receivers this
  /// round, in first-delivery order).  Clears the previous round's buckets
  /// first.  The scatter runs on the worker pool above the cutoff.
  void deliver_round();
  /// Adversarial-delay delivery: drain the ring slot due this round, then
  /// route fresh lane envelopes by their drawn arrival round (due now vs.
  /// back into the ring), and CSR-bucket the due set sequentially.  Delayed
  /// envelopes ride the same dirty_/CSR machinery downstream.
  void deliver_round_delayed();
  /// Adversary hook inside do_send (send_faults_on_ only): roll drop /
  /// duplicate / delay coins and append the surviving envelope copies.
  void adv_enqueue(SendLane& lane, NodeId from, const Graph::HalfEdge& he,
                   const FlatMsg& flat, MessagePtr msg);
  /// Seeded per-receiver inbox shuffles (reorder_on_ only), applied after
  /// delivery, before any node steps.
  void apply_reorder();
  /// Apply every churn event whose round has come (crashes_on_): kill crash
  /// victims; rebirth recovering nodes from their initial state (fresh
  /// process via the retained factory, fresh RNG stream salted by the
  /// recovery round, wake-heap re-entry at the current round).
  void apply_churn();
  /// Earliest recovery round still pending in the churn schedule
  /// (kRoundForever if none): joins the fast-forward floor and blocks
  /// quiescent completion while a rebirth is still due.
  Round next_recovery_round() const;
  /// Earliest arrival round of any in-flight delayed envelope (requires
  /// pending_count_ > 0): the fast-forward floor while the wake heap is
  /// empty or later.
  Round earliest_pending_arrival() const;
  /// Pop every wake-heap entry due at `round_` into the runnable buffer.
  void pop_due_wakes(std::vector<NodeId>& runnable);
  /// True while `s` is waiting (Unwoken/Sleeping) on deadline `r`.
  bool wake_entry_live(Round r, NodeId s) const {
    const NodeState& n = nodes_[s];
    return (n.state == RunState::Unwoken || n.state == RunState::Sleeping) &&
           n.wake_at == r;
  }

  const Graph& graph_;
  EngineConfig cfg_;
  Knowledge knowledge_;
  std::vector<Uid> uids_;
  std::vector<NodeState> nodes_;
  std::vector<std::unique_ptr<Process>> procs_;

  Round round_ = 0;

  // Per-worker send lanes.  lanes_[0] doubles as the sequential outbox; a
  // round's sends live in the lanes until the next round's deliver_round()
  // buckets them (lane order = shard order = send order).
  std::vector<SendLane> lanes_;
  unsigned threads_ = 1;        // resolved worker count (cfg.threads, 0=hw)
  bool parallel_ok_ = false;    // threads_>1 and no order-dependent instr.
  std::unique_ptr<WorkerPool> pool_;            // spawned on first dense round
  std::vector<std::uint32_t> scatter_pos_;      // per-envelope delivery slot

  // CSR delivery buffer: envelopes of the current round, bucketed by
  // destination.  Node s's inbox is delivery_[inbox_off_[s] ..
  // inbox_off_[s] + inbox_len_[s]) — valid only for s in dirty_.
  std::vector<Envelope> delivery_;
  std::vector<std::uint32_t> inbox_off_;
  std::vector<std::uint32_t> inbox_len_;
  std::vector<NodeId> dirty_;        // nodes with a non-empty inbox this round

  // Active-set scheduling state.
  std::vector<NodeId> running_;      // nodes in RunState::Running
  WakeHeap wake_heap_;               // pending sleep/wakeup deadlines
  // 64-bit: the epoch increments once per scheduler iteration and must
  // never wrap into old marks (max_rounds is settable beyond 2^32).
  std::vector<std::uint64_t> runnable_mark_;  // epoch stamps (dedup)
  std::uint64_t runnable_epoch_ = 0;

  // Hot-path branch hints, precomputed once (satellite: keep do_send lean).
  bool congest_on_ = false;
  bool tracing_ = false;
  bool traffic_on_ = false;
  bool watching_ = false;

  // Adversary state (net/adversary.hpp).  Every flag below is false — and
  // every container empty — when cfg.adversary is inactive, so the fault-free
  // run never touches any of it beyond one predicted-not-taken branch.
  bool send_faults_on_ = false;  // drop / duplicate / delay hook in do_send
  bool delays_on_ = false;       // max_delay > 0: delivery takes the ring path
  bool reorder_on_ = false;      // seeded inbox shuffles after delivery
  bool crashes_on_ = false;      // crash-stop schedule is non-empty
  /// Delay ring: slot r % (max_delay + 1) holds the envelopes arriving in
  /// round r.  Live arrivals always span < max_delay + 1 distinct rounds, so
  /// slots never mix arrival rounds; each slot's contents are appended in
  /// global send order, which makes delayed delivery deterministic.
  std::vector<std::vector<OutboundEnvelope>> delay_ring_;
  std::size_t pending_count_ = 0;      // envelopes waiting in the ring
  std::vector<OutboundEnvelope> adv_due_;  // staging: this round's arrivals
  /// One churn schedule entry: a crash or a rebirth of `node` at the start
  /// of round `at`.  The merged schedule is sorted by (at, rebirth-first) —
  /// at equal rounds recovery applies before crash, so chained intervals
  /// [a,r] + [r,b] behave as one dead window [a,b).
  struct ChurnEvent {
    Round at = 0;
    NodeId node = kNoNode;
    bool rebirth = false;
  };
  std::vector<ChurnEvent> churn_schedule_;  // sorted by (at, rebirth-first)
  std::size_t churn_idx_ = 0;          // next unapplied schedule entry
  bool has_recoveries_ = false;        // any rebirth event in the schedule
  /// Rebirth factory, retained by init_processes iff has_recoveries_.
  std::function<std::unique_ptr<Process>(NodeId)> factory_;

  void record(TraceEvent ev) {
    if (trace_.size() < cfg_.trace_limit) {
      trace_.push_back(std::move(ev));
    } else {
      trace_truncated_ = true;
    }
  }

  /// Telemetry (net/metrics.hpp).  metrics_on_ mirrors cfg.metrics.enabled;
  /// off (the default) skips every sampling branch, so the registry stays
  /// untouched on the hot path.
  bool metrics_on_ = false;
  MetricsRegistry metrics_;

  RunResult result_;
  std::vector<TraceEvent> trace_;
  bool trace_truncated_ = false;
  std::vector<std::uint64_t> sent_by_node_;
  std::vector<std::uint64_t> edge_traffic_;
  std::vector<std::pair<Round, std::uint64_t>> message_timeline_;
  std::vector<WatchReport> watch_reports_;
  std::vector<std::uint32_t> watch_index_;     // edge -> index+1, 0 = none
  std::vector<Round> last_send_round_;         // per directed port
  std::vector<std::size_t> dir_port_offset_;   // node -> base directed index
  bool ran_ = false;
};

}  // namespace ule
