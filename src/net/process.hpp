// The distributed algorithm interface.
//
// A Process is the code running at one node.  It sees only: its degree, its
// assigned unique ID (unless the network is anonymous), whatever global
// parameters the Knowledge grants, its private coins, and the messages
// arriving on its ports.  All interaction goes through the Context the engine
// passes into the callbacks.
//
// Lifecycle: the engine calls on_wake() once (at the node's scheduled wakeup
// round, or earlier if a message arrives first — the classical wake-on-message
// rule), then on_round() every round while the process is RUNNING, plus at
// any round where a message arrives or a sleep deadline fires.  A process may
// idle() (wake only on message), sleep_until(r) (wake at r or on message), or
// halt() (terminal).  Rounds with no runnable process and no in-flight
// messages are skipped wholesale by the engine, which is what makes the 2^ID
// step delays of Theorem 4.1 simulable.
//
// THREAD-SAFETY CONTRACT (parallel rounds, EngineConfig::threads > 1): the
// engine may step different nodes of one round on different worker threads.
// A step may freely touch anything owned by its own node — the Process
// object itself, ctx.rng() (a per-node stream keyed by (seed, slot), see
// net/rng.hpp), status, scheduling verbs, and sends (routed to a per-worker
// outbox lane) — but must NOT read or write state shared with other
// Processes.  Everything reachable through Context besides those is
// read-only shared data (graph topology, uids, Knowledge).  Holding copies
// of immutable payloads via MessagePtr is fine (shared_ptr refcounts are
// atomic).  Every Process in this library is self-contained per node;
// factories must not hand out objects with shared mutable state if runs may
// use threads > 1.

#pragma once

#include <cstdint>
#include <span>

#include "net/knowledge.hpp"
#include "net/message.hpp"
#include "net/rng.hpp"
#include "net/types.hpp"

namespace ule {

/// Leader-election status; the paper's {⊥, elected, non-elected}.
enum class Status : std::uint8_t { Undecided, Elected, NonElected };

class Context {
 public:
  virtual ~Context() = default;

  // --- local, always-legal information ---
  virtual NodeId slot() const = 0;        ///< dense engine index (not an ID!)
  virtual std::size_t degree() const = 0;
  virtual bool anonymous() const = 0;
  virtual Uid uid() const = 0;            ///< throws if anonymous
  virtual Round round() const = 0;
  virtual Rng& rng() = 0;
  virtual const Knowledge& knowledge() const = 0;

  // --- actions ---
  virtual void send(PortId port, MessagePtr msg) = 0;
  /// Flat fast path: the message is copied inline into the engine's delivery
  /// buffers — no allocation, no refcounting (see net/message.hpp).
  virtual void send(PortId port, const FlatMsg& msg) = 0;
  virtual void set_status(Status s) = 0;
  virtual Status status() const = 0;

  /// Stop being scheduled every round; wake on message arrival only.
  virtual void idle() = 0;
  /// Wake at the given absolute round (or earlier on message arrival).
  virtual void sleep_until(Round r) = 0;
  /// Terminal: never scheduled again; pending messages to this node are
  /// still delivered (and counted) but dropped.
  virtual void halt() = 0;

  /// Convenience: send the same payload on every port.
  void broadcast(const MessagePtr& msg) {
    for (PortId p = 0; p < degree(); ++p) send(p, msg);
  }
  void broadcast(const FlatMsg& msg) {
    for (PortId p = 0; p < degree(); ++p) send(p, msg);
  }
};

class MetricsSink;  // net/metrics.hpp

class Process {
 public:
  virtual ~Process() = default;

  /// Called exactly once, at the node's wakeup.  `inbox` holds any messages
  /// that arrived in the wakeup round (non-empty when woken by a message).
  virtual void on_wake(Context& ctx, std::span<const Envelope> inbox) = 0;

  /// Called on every subsequent round the node is runnable.
  virtual void on_round(Context& ctx, std::span<const Envelope> inbox) = 0;

  /// Contribute named counters to an end-of-run metrics sweep (see
  /// net/metrics.hpp).  The engine calls this sequentially in slot order —
  /// after the round loop, never concurrently with it — so implementations
  /// just report their own state.  Wrappers must forward to their inner
  /// process so nested subsystems stay observable.  Default: no counters.
  virtual void export_metrics(MetricsSink& sink) const { (void)sink; }
};

}  // namespace ule
