// Deterministic random number generation.
//
// Every node owns a private generator (the paper's "private unbiased coins");
// generators are derived from the run seed and the node slot via splitmix64 so
// that runs are reproducible and nodes are pairwise independent for all
// practical purposes.
//
// Parallel-execution note: because every stream is keyed by (seed, slot) and
// owned exclusively by its node, a node's draw sequence depends only on how
// many times *that node* has drawn — never on the interleaving of other
// nodes' steps.  This is what lets the engine execute a round's nodes on
// worker threads with bit-for-bit identical outcomes: there is no shared RNG
// state to contend for (and none may ever be introduced; a global stream
// would both race and break determinism).

#pragma once

#include <cstdint>

namespace ule {

/// splitmix64: used to expand seeds; passes BigCrush, never returns the same
/// stream for different inputs in practice.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256**: fast, high-quality PRNG.  Satisfies the C++ named
/// requirement UniformRandomBitGenerator so it composes with <random>.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853C49E6748FEA9BULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) via Lemire's multiply-shift (bound > 0).
  std::uint64_t below(std::uint64_t bound) {
    // Rejection-free enough for simulation purposes; bias < 2^-64 * bound.
    unsigned __int128 product =
        static_cast<unsigned __int128>(operator()()) * bound;
    return static_cast<std::uint64_t>(product >> 64);
  }

  /// Uniform integer in [lo, hi] (inclusive; requires lo <= hi).
  std::uint64_t in_range(std::uint64_t lo, std::uint64_t hi) {
    return lo + below(hi - lo + 1);
  }

  /// Unbiased coin flip (the primitive the paper's model grants each node).
  bool flip() { return (operator()() >> 63) != 0; }

  /// Bernoulli with success probability p in [0,1].
  bool bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    constexpr double k2_64 = 18446744073709551616.0;
    return static_cast<double>(operator()()) < p * k2_64;
  }

  /// Uniform double in [0,1).
  double uniform01() {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

/// Derive a node-private generator from a run seed.
///
/// The seed is avalanched before the slot is mixed in, and the slot is
/// spread by an odd multiplier.  Combining the raw inputs directly (e.g.
/// `run_seed ^ (CONST + slot)`) is *wrong*: for the small consecutive run
/// seeds experiments use, (seed, slot) and (seed', slot + (seed' - seed))
/// produce the same state, so the same "node" reappears across trials and
/// success-rate estimates are silently correlated.
inline Rng node_rng(std::uint64_t run_seed, std::uint32_t slot) {
  std::uint64_t sm = run_seed;
  const std::uint64_t seed_hash = splitmix64(sm);
  std::uint64_t sm2 =
      seed_hash ^ (0xA0761D6478BD642FULL * (std::uint64_t{slot} + 1));
  const std::uint64_t a = splitmix64(sm2);
  const std::uint64_t b = splitmix64(sm2);
  return Rng(a ^ (b << 1));
}

}  // namespace ule
