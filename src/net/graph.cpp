#include "net/graph.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <unordered_set>

namespace ule {

Graph Graph::from_edges(std::size_t n,
                        const std::vector<std::pair<NodeId, NodeId>>& edges) {
  Graph g;
  g.adj_.resize(n);
  g.endpoints_.reserve(edges.size());

  std::unordered_set<std::uint64_t> seen;
  seen.reserve(edges.size() * 2);

  for (const auto& [a, b] : edges) {
    if (a >= n || b >= n) throw std::invalid_argument("edge endpoint out of range");
    if (a == b) throw std::invalid_argument("self-loop not allowed");
    const NodeId u = std::min(a, b);
    const NodeId v = std::max(a, b);
    const std::uint64_t key = (static_cast<std::uint64_t>(u) << 32) | v;
    if (!seen.insert(key).second) throw std::invalid_argument("duplicate edge");

    const auto e = static_cast<EdgeId>(g.endpoints_.size());
    const auto pu = static_cast<PortId>(g.adj_[u].size());
    const auto pv = static_cast<PortId>(g.adj_[v].size());
    g.adj_[u].push_back(HalfEdge{v, pv, e});
    g.adj_[v].push_back(HalfEdge{u, pu, e});
    g.endpoints_.emplace_back(u, v);
  }
  return g;
}

PortId Graph::port_to(NodeId u, NodeId v) const {
  for (PortId p = 0; p < adj_[u].size(); ++p) {
    if (adj_[u][p].to == v) return p;
  }
  return kNoPort;
}

void Graph::shuffle_ports(Rng& rng) {
  // Permute each node's port list, then repair all `rev` pointers.
  for (auto& ports : adj_) {
    for (std::size_t i = ports.size(); i > 1; --i) {
      const std::size_t j = rng.below(i);
      std::swap(ports[i - 1], ports[j]);
    }
  }
  // Rebuild rev: for each directed half-edge (u -> v via port p, edge e),
  // find v's port carrying edge e.
  std::vector<std::vector<PortId>> port_of_edge_at(adj_.size());
  // edge -> port at each endpoint; use a flat map keyed by edge id per node.
  std::vector<PortId> port_at_u(endpoints_.size(), kNoPort);
  std::vector<PortId> port_at_v(endpoints_.size(), kNoPort);
  for (NodeId u = 0; u < adj_.size(); ++u) {
    for (PortId p = 0; p < adj_[u].size(); ++p) {
      const EdgeId e = adj_[u][p].edge;
      if (endpoints_[e].first == u) {
        port_at_u[e] = p;
      } else {
        port_at_v[e] = p;
      }
    }
  }
  for (NodeId u = 0; u < adj_.size(); ++u) {
    for (auto& he : adj_[u]) {
      const EdgeId e = he.edge;
      he.rev = (endpoints_[e].first == he.to) ? port_at_u[e] : port_at_v[e];
    }
  }
}

std::size_t Graph::max_degree() const {
  std::size_t best = 0;
  for (const auto& ports : adj_) best = std::max(best, ports.size());
  return best;
}

std::string Graph::summary() const {
  return "n=" + std::to_string(n()) + " m=" + std::to_string(m()) +
         " maxdeg=" + std::to_string(max_degree());
}

}  // namespace ule
