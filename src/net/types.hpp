// Basic identifier types shared by the whole library.
//
// A node is addressed by its *slot* (dense index 0..n-1) inside the engine;
// its application-level unique identifier (the "ID" of the paper, drawn from
// an adversarial set Z with |Z| = n^4) is a separate 64-bit value assigned per
// run.  Ports are local per node (0..deg-1) and edges have dense global ids.

#pragma once

#include <cstdint>
#include <limits>

namespace ule {

using NodeId = std::uint32_t;  ///< Dense node slot, 0..n-1.
using PortId = std::uint32_t;  ///< Local port index at a node, 0..deg-1.
using EdgeId = std::uint32_t;  ///< Dense undirected edge index, 0..m-1.
using Uid = std::uint64_t;     ///< Application-level unique identifier.

inline constexpr NodeId kNoNode = std::numeric_limits<NodeId>::max();
inline constexpr PortId kNoPort = std::numeric_limits<PortId>::max();
inline constexpr EdgeId kNoEdge = std::numeric_limits<EdgeId>::max();

/// Rounds are unbounded (Theorem 4.1 runs for up to 2^ID rounds).
using Round = std::uint64_t;

inline constexpr Round kRoundForever = std::numeric_limits<Round>::max();

}  // namespace ule
