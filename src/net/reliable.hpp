// Reliable per-edge transport: the ack/retransmit/dedup wrapper that upgrades
// fault-fragile protocols to survive the full delivery adversary.
//
// PR 6's fuzz calibration showed most protocols lean on the paper's lockstep
// model: wave pools need exactly-once FIFO delivery, kingdom dies to
// duplication, and delays break any per-edge ordering assumption
// (docs/ADVERSARY.md).  ReliableProcess buys those guarantees back the way a
// real network stack does — as a link layer with a measurable message cost:
//
//   * per-(edge, direction) sequence numbers on every data frame;
//   * receiver-side dedup (a seq below the delivery cursor is re-acked and
//     dropped) and a FIFO resequencing buffer (out-of-order seqs park until
//     the gap fills), so the inner protocol sees exactly-once, per-port FIFO
//     delivery no matter what the adversary did in flight;
//   * cumulative acks piggybacked on every outgoing data frame, with a
//     standalone ack frame only when an edge has ack news but no traffic —
//     an idle edge costs exactly zero messages;
//   * round-based retransmit timeouts with bounded exponential backoff.  The
//     deadlines ride the engine's existing wake min-heap (Context::
//     sleep_until), so a node with no unacked frames schedules nothing and
//     the quiescent-round cost is untouched.  After `max_retries`
//     retransmissions without ack progress the link is declared dead and its
//     queue dropped — this is what lets runs with crashed peers (or
//     drop = 1.0 partitions) reach quiescence instead of retransmitting
//     forever;
//   * link healing: a dead port is not dead forever.  The next fresh inner
//     send re-arms it from a fresh EPOCH — every seq stream is tagged with
//     the epoch it belongs to (derived from the round of the stream's first
//     fresh send, so epochs are strictly monotone across a port's lives and
//     across node rebirths).  The receiver adopts a newer epoch by resetting
//     its delivery cursor and resequencing buffer; a frame from an older
//     epoch is a stale retransmit from a dead life and is discarded and
//     counted (arq.stale_epoch_drops), never resequenced.  Acks are
//     epoch-qualified the same way (ack_epoch names the stream the
//     cumulative ack refers to), so a stale ack can never pop frames of a
//     successor stream.  Healing is what lets a run survive churn: a node
//     reborn by the adversary's recovery schedule starts a fresh wrapper
//     whose streams open new epochs, and its peers' go-back-all queues
//     replay their history to the new incarnation from seq 1.
//
// Every decision is a pure function of (round, seq, config): the wrapper
// draws no randomness and reads no thread-dependent state, so wrapped runs
// stay bit-for-bit deterministic at every thread count, exactly like the
// adversary itself.
//
// Wire format (legacy Message path — the frame carries an entire inner
// FlatMsg or MessagePtr plus the ARQ header, which no 32-byte FlatMsg can):
//
//   ReliableFrame { seq+epoch, ack+ack_epoch, inner payload }
//     seq        32-bit per-(edge, direction) sequence number; 0 = pure ack
//     epoch      32-bit epoch of the seq stream (packs into seq's counter
//                field — kCounter is 64-bit, seq uses the low half)
//     ack        32-bit cumulative ack: every seq <= ack has been delivered
//     ack_epoch  32-bit epoch the ack refers to (packs into ack's field)
//     size_bits = kTypeTag + 2*kCounter (= 72) + inner payload bits
//     (the epoch tags ride in the existing header budget — no bit drift)
//
// The header rides on top of whatever the inner protocol pays, so reliable
// registry variants raise their CONGEST budget by kReliableHeaderBits
// (a link-layer header keeps O(log n) messages O(log n)).
//
// ReliableConfig{enabled = false} is a transparent pass-through: the inner
// process runs against the real Context with no interception at all, and the
// `reliable_off_overhead` bench row pins counter identity with an unwrapped
// run (the zero-overhead contract, same as adversary_off_overhead).

#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "net/message.hpp"
#include "net/process.hpp"

namespace ule {

/// ARQ header cost on top of the inner payload: type tag + seq + ack.
inline constexpr std::uint32_t kReliableHeaderBits =
    wire::kTypeTag + 2 * wire::kCounter;

struct ReliableConfig {
  /// false = transparent pass-through (zero interception, zero overhead).
  bool enabled = true;
  /// Rounds without ack progress before the first retransmission.  0 = auto
  /// (kReliableDefaultRto).  Callers that know the adversary's max_delay
  /// should set 4 + 2*max_delay: the fault-free ack round trip is 2 rounds,
  /// and each leg stretches by up to max_delay.
  std::uint32_t rto = 0;
  /// Upper bound on the backed-off retransmit interval.  0 = auto (8 * rto).
  std::uint32_t backoff_cap = 0;
  /// Retransmissions without ack progress before the link is declared dead
  /// and its queue dropped (bounds the message cost of unreachable peers).
  /// Each attempt fails with probability 1 - (1-p)^2 (data leg AND some ack
  /// leg must survive), so the default must survive the lab's loss ladder
  /// top rung: at p = 0.6 an attempt fails w.p. 0.84, and 0.84^121 ≈ 7e-10
  /// makes spurious link death astronomically unlikely across a whole
  /// campaign — while a true partition still quiesces after
  /// ~cap·max_retries rounds.  (30 retries looked safe but gave 0.84^31 ≈
  /// 0.5% death per burst at p = 0.6 — observed as a quiesced-undecided
  /// kingdom_reliable run in the first loss campaign.)
  std::uint32_t max_retries = 120;
};

inline constexpr std::uint32_t kReliableDefaultRto = 4;

/// The ARQ frame.  `seq == 0` is a pure (standalone) ack.
class ReliableFrame final : public Message {
 public:
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  /// Epoch of the seq stream this frame belongs to (0 = the stream never
  /// opened; data frames always carry the stream's stamped epoch).
  std::uint32_t epoch = 0;
  /// Epoch of the peer's stream that `ack` refers to: the sender applies a
  /// cumulative ack only when this matches its current stream epoch.
  std::uint32_t ack_epoch = 0;
  FlatMsg inner_flat;   ///< inner flat payload (type == 0 when absent)
  MessagePtr inner_msg; ///< inner legacy payload (null when absent)

  std::uint32_t payload_bits() const {
    if (inner_flat.type != 0) return inner_flat.bits;
    if (inner_msg) return inner_msg->size_bits();
    return 0;
  }
  std::uint32_t size_bits() const override {
    return kReliableHeaderBits + payload_bits();
  }
  std::string debug_string() const override;
};

/// Wraps any Process with the reliable link layer.  One instance per node;
/// per-port sender/receiver state is sized lazily from the node's degree.
class ReliableProcess final : public Process {
 public:
  ReliableProcess(std::unique_ptr<Process> inner, ReliableConfig cfg);

  void on_wake(Context& ctx, std::span<const Envelope> inbox) override;
  void on_round(Context& ctx, std::span<const Envelope> inbox) override;

  /// Reports the arq.* counters below and forwards to the inner process.
  void export_metrics(MetricsSink& sink) const override;

  const Process* inner() const { return inner_.get(); }
  const ReliableConfig& config() const { return cfg_; }

  /// Retransmissions performed so far (diagnostics/tests).
  std::uint64_t retransmissions() const { return retransmissions_; }
  /// Data frames discarded because their seq was already delivered (true
  /// duplicates: adversary copies and go-back-all resends of acked frames).
  std::uint64_t duplicate_drops() const { return duplicate_drops_; }
  /// Data frames buffered out of order for later in-order delivery.  NOT a
  /// drop — every parked frame is eventually delivered — but counted
  /// separately so reordering pressure is observable.
  std::uint64_t parked_frames() const { return parked_frames_; }
  /// Ports this sender declared dead after exhausting max_retries.
  std::uint64_t dead_links() const { return dead_links_; }
  /// Fresh inner sends swallowed because their port was already dead.
  /// Always zero since link healing: the first fresh send to a dead port
  /// re-arms it instead of being swallowed.  Kept (counter, metrics name and
  /// RunResult plumbing) so the failure-path diagnostics stay stable.
  std::uint64_t dead_link_drops() const { return dead_link_drops_; }
  /// Dead ports re-armed from a fresh epoch by a later fresh inner send.
  std::uint64_t healed_links() const { return healed_links_; }
  /// Data frames discarded because they belonged to a dead epoch of their
  /// stream (stale retransmits from before a heal) — dropped and counted,
  /// never resequenced.
  std::uint64_t stale_epoch_drops() const { return stale_epoch_drops_; }

 private:
  class CaptureCtx;
  /// The inner algorithm's last scheduling verb (persists across rounds; an
  /// idle inner process stays idle until a message arrives).
  enum class Wish : std::uint8_t { Running, Idle, Sleep, Halt };

  struct Payload {
    FlatMsg flat;
    MessagePtr msg;
  };
  struct Unacked {
    std::uint32_t seq = 0;
    Payload payload;
  };
  struct PortState {
    // --- sender side -----------------------------------------------------
    std::uint32_t next_seq = 1;  ///< seq assigned to the next fresh frame
    std::uint32_t acked = 0;     ///< highest cumulative ack received
    /// Epoch of the outgoing stream: stamped from the round of the stream's
    /// first fresh send (round + 1, so a live stream's epoch is never 0),
    /// re-stamped on heal.  Strictly monotone across the port's lives.
    std::uint32_t epoch = 0;
    std::deque<Unacked> unacked; ///< in seq order; front is the oldest
    std::uint32_t attempts = 0;  ///< retransmissions since last ack progress
    Round rto_deadline = kRoundForever;
    bool dead = false;           ///< gave up; healed by the next fresh send
    std::uint32_t fresh = 0;     ///< frames enqueued by the inner this step
    // --- receiver side ---------------------------------------------------
    std::uint32_t expected = 1;  ///< next in-order seq to deliver
    /// Epoch of the incoming stream the cursor tracks.  A data frame with a
    /// newer epoch resets the cursor and the parked buffer; an older one is
    /// a stale retransmit, dropped and counted.
    std::uint32_t rx_epoch = 0;
    std::map<std::uint32_t, Payload> parked;  ///< out-of-order buffer
    bool ack_due = false;        ///< ack news with no data to ride on yet
  };

  void run_step(Context& ctx, std::span<const Envelope> inbox, bool wake);
  void ingest(Context& ctx, std::span<const Envelope> inbox,
              std::vector<Envelope>& inner_inbox);
  void enqueue_data(PortId port, Payload payload, Round now);
  void flush(Context& ctx);
  void send_frame(Context& ctx, PortId port, std::uint32_t seq,
                  const Payload& payload);
  /// Backed-off retransmit interval after `attempts` fruitless rounds:
  /// min(rto << attempts, backoff_cap) — a pure function of (attempts, cfg).
  Round interval(std::uint32_t attempts) const;
  void arm_deadline(PortState& ps, Round now) const;

  std::unique_ptr<Process> inner_;
  ReliableConfig cfg_;
  std::vector<PortState> ports_;
  Wish inner_wish_ = Wish::Running;
  Round inner_deadline_ = 0;
  std::uint64_t retransmissions_ = 0;
  std::uint64_t duplicate_drops_ = 0;
  std::uint64_t parked_frames_ = 0;
  std::uint64_t dead_links_ = 0;
  std::uint64_t dead_link_drops_ = 0;
  std::uint64_t healed_links_ = 0;
  std::uint64_t stale_epoch_drops_ = 0;
};

/// Wrap a process factory with the reliable link layer.  `cfg.rto == 0`
/// resolves to kReliableDefaultRto; pass an explicit value (e.g.
/// 4 + 2*max_delay) when the adversary's delay bound is known.  (The
/// spelled-out std::function type is election's ProcessFactory — net/ cannot
/// include election/ headers.)
std::function<std::unique_ptr<Process>(NodeId)> make_reliable(
    std::function<std::unique_ptr<Process>(NodeId)> inner,
    ReliableConfig cfg = {});

}  // namespace ule
