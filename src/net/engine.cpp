#include "net/engine.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <string>
#include <thread>

namespace ule {

// ---------------------------------------------------------------------------
// Context implementation
// ---------------------------------------------------------------------------

// One Ctx per executing worker: sends and status-change flags go to the
// worker's private SendLane; everything else a step touches (node state, RNG
// stream, per-node send counts, CONGEST port stamps) is owned by the node
// being stepped, which belongs to exactly one shard.
class SyncEngine::Ctx final : public Context {
 public:
  Ctx(SyncEngine& eng, SendLane* lane) : eng_(eng), lane_(lane) {}

  void bind(NodeId slot) { slot_ = slot; }

  NodeId slot() const override { return slot_; }
  std::size_t degree() const override { return eng_.graph_.degree(slot_); }
  bool anonymous() const override { return eng_.uids_.empty(); }
  Uid uid() const override {
    if (eng_.uids_.empty())
      throw std::logic_error("uid() requested in an anonymous network");
    return eng_.uids_[slot_];
  }
  Round round() const override { return eng_.round_; }
  Rng& rng() override { return eng_.nodes_[slot_].rng; }
  const Knowledge& knowledge() const override { return eng_.knowledge_; }

  void send(PortId port, MessagePtr msg) override {
    eng_.do_send(*lane_, slot_, port, std::move(msg));
  }
  void send(PortId port, const FlatMsg& msg) override {
    eng_.do_send(*lane_, slot_, port, msg);
  }

  void set_status(Status s) override {
    auto& st = eng_.nodes_[slot_].status;
    if (st != s) {
      st = s;
      lane_->status_changed = true;
      if (eng_.tracing_) {
        TraceEvent ev;
        ev.kind = TraceEvent::Kind::StatusChange;
        ev.round = eng_.round_;
        ev.node = slot_;
        ev.status = s;
        eng_.record(std::move(ev));
      }
    }
  }
  Status status() const override { return eng_.nodes_[slot_].status; }

  void idle() override {
    auto& n = eng_.nodes_[slot_];
    n.state = RunState::Sleeping;
    n.wake_at = kRoundForever;
  }
  void sleep_until(Round r) override {
    auto& n = eng_.nodes_[slot_];
    n.state = RunState::Sleeping;
    n.wake_at = r;
  }
  void halt() override { eng_.nodes_[slot_].state = RunState::Halted; }

 private:
  SyncEngine& eng_;
  SendLane* lane_;
  NodeId slot_ = kNoNode;
};

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

SyncEngine::SyncEngine(const Graph& g, EngineConfig cfg)
    : graph_(g), cfg_(std::move(cfg)) {
  const std::size_t n = graph_.n();
  nodes_.resize(n);
  procs_.resize(n);
  inbox_off_.assign(n, 0);
  inbox_len_.assign(n, 0);
  runnable_mark_.assign(n, 0);
  sent_by_node_.assign(n, 0);
  for (NodeId s = 0; s < n; ++s) nodes_[s].rng = node_rng(cfg_.seed, s);

  if (cfg_.record_edge_traffic) edge_traffic_.assign(graph_.m(), 0);

  if (!cfg_.watch_edges.empty()) {
    watch_index_.assign(graph_.m(), 0);
    for (EdgeId e : cfg_.watch_edges) {
      watch_reports_.push_back(WatchReport{e, kRoundForever, 0});
      watch_index_[e] = static_cast<std::uint32_t>(watch_reports_.size());
    }
  }

  if (cfg_.congest != CongestMode::Off) {
    dir_port_offset_.resize(n + 1, 0);
    for (NodeId s = 0; s < n; ++s)
      dir_port_offset_[s + 1] = dir_port_offset_[s] + graph_.degree(s);
    last_send_round_.assign(dir_port_offset_[n], kRoundForever);
  }

  congest_on_ = cfg_.congest != CongestMode::Off;
  tracing_ = cfg_.trace_limit > 0;
  traffic_on_ = cfg_.record_edge_traffic;
  watching_ = !cfg_.watch_edges.empty();
  metrics_on_ = cfg_.metrics.enabled;

  const AdversaryConfig& adv = cfg_.adversary;
  if (adv.drop < 0.0 || adv.drop > 1.0 || adv.duplicate < 0.0 ||
      adv.duplicate > 1.0 || adv.reorder < 0.0 || adv.reorder > 1.0)
    throw std::invalid_argument("adversary probabilities must be in [0, 1]");
  send_faults_on_ = adv.send_faults();
  delays_on_ = adv.max_delay > 0;
  reorder_on_ = adv.reorder > 0.0;
  crashes_on_ = !adv.crashes.empty();
  if (delays_on_) delay_ring_.resize(adv.max_delay + 1);
  if (crashes_on_) {
    for (const CrashEvent& c : adv.crashes) {
      if (c.node >= n)
        throw std::invalid_argument("crash schedule names node " +
                                    std::to_string(c.node) + " in an " +
                                    std::to_string(n) + "-node graph");
      if (c.recover < c.at)
        throw std::invalid_argument(
            "crash schedule for node " + std::to_string(c.node) +
            " recovers at round " + std::to_string(c.recover) +
            " before its crash at round " + std::to_string(c.at));
    }
    // Merge the intervals into one event stream.  An empty interval
    // (recover == at) is a no-op and is dropped here — below, recovery
    // applies BEFORE crash at equal rounds (so chained intervals [a,r] +
    // [r,b] form one dead window), which would otherwise turn an empty
    // interval into a permanent crash.
    for (const CrashEvent& c : adv.crashes) {
      if (c.recover == c.at) continue;
      churn_schedule_.push_back(ChurnEvent{c.at, c.node, false});
      if (c.recover != kRoundForever) {
        churn_schedule_.push_back(ChurnEvent{c.recover, c.node, true});
        has_recoveries_ = true;
      }
    }
    std::stable_sort(churn_schedule_.begin(), churn_schedule_.end(),
                     [](const ChurnEvent& a, const ChurnEvent& b) {
                       if (a.at != b.at) return a.at < b.at;
                       return a.rebirth && !b.rebirth;
                     });
    // All intervals may have been empty no-ops: then the schedule is inert
    // and the run must take the exact fault-free hot path.
    crashes_on_ = !churn_schedule_.empty();
  }

  threads_ = cfg_.threads != 0
                 ? cfg_.threads
                 : std::max(1u, std::thread::hardware_concurrency());
  // Tracing, edge traffic and edge watches record *global send order* (or
  // race on per-edge counters shared by both endpoints); runs using them
  // stay sequential regardless of the thread setting.
  parallel_ok_ = threads_ > 1 && !tracing_ && !traffic_on_ && !watching_;
  lanes_.resize(parallel_ok_ ? threads_ : 1);
}

void SyncEngine::set_uids(std::vector<Uid> uids) {
  if (!uids.empty() && uids.size() != graph_.n())
    throw std::invalid_argument("uid vector size mismatch");
  uids_ = std::move(uids);
}

void SyncEngine::set_wakeup(std::vector<Round> wake_rounds) {
  if (wake_rounds.size() != graph_.n())
    throw std::invalid_argument("wakeup vector size mismatch");
  for (NodeId s = 0; s < graph_.n(); ++s) nodes_[s].wake_at = wake_rounds[s];
}

void SyncEngine::set_process(NodeId slot, std::unique_ptr<Process> p) {
  procs_[slot] = std::move(p);
}

std::uint64_t SyncEngine::messages_before(Round r) const {
  // message_timeline_ is sorted by round (appended in execution order), so
  // the answer is the cumulative count of the last entry strictly before r.
  const auto it = std::lower_bound(
      message_timeline_.begin(), message_timeline_.end(), r,
      [](const std::pair<Round, std::uint64_t>& e, Round round) {
        return e.first < round;
      });
  if (it == message_timeline_.begin()) return 0;
  return std::prev(it)->second;
}

std::uint32_t SyncEngine::congest_budget() const {
  if (cfg_.congest_bits != 0) return cfg_.congest_bits;
  // Room for a tag plus a handful of id-sized fields.  Ids are Θ(log n)
  // conceptually; the wire format sizes them at 64 bits, so a constant
  // number of fields stays O(log n) for every n we can simulate.
  return wire::kTypeTag + 8 * wire::kIdField;
}

const Graph::HalfEdge& SyncEngine::account_send(SendLane& lane, NodeId from,
                                                PortId port,
                                                std::uint32_t bits,
                                                const FlatMsg* flat,
                                                const Message* legacy) {
  if (port >= graph_.degree(from))
    throw std::out_of_range("send on invalid port " + std::to_string(port) +
                            " at node " + std::to_string(from));

  if (congest_on_) {
    const std::size_t dp = dir_port_offset_[from] + port;
    const bool dup = last_send_round_[dp] == round_;
    const bool too_big = bits > congest_budget();
    if (dup || too_big) [[unlikely]] {
      if (cfg_.congest == CongestMode::Enforce) {
        throw std::runtime_error(
            std::string("CONGEST violation at node ") + std::to_string(from) +
            (dup ? " (two messages on one port in a round)"
                 : " (message of " + std::to_string(bits) +
                       " bits exceeds budget " +
                       std::to_string(congest_budget()) + ")"));
      }
      ++lane.congest_violations;
    }
    last_send_round_[dp] = round_;
  }

  const Graph::HalfEdge& he = graph_.half_edge(from, port);

  if (tracing_) [[unlikely]] {
    TraceEvent ev;
    ev.kind = TraceEvent::Kind::Send;
    ev.round = round_;
    ev.node = from;
    ev.port = port;
    ev.peer = he.to;
    ev.detail = legacy ? legacy->debug_string() : flat_debug_string(*flat);
    record(std::move(ev));
  }

  ++lane.messages;
  lane.bits += bits;
  ++sent_by_node_[from];
  if (traffic_on_) [[unlikely]] ++edge_traffic_[he.edge];
  if (watching_) [[unlikely]] {
    if (const std::uint32_t wi = watch_index_[he.edge]; wi != 0) {
      WatchReport& w = watch_reports_[wi - 1];
      if (w.first_cross == kRoundForever) {
        w.first_cross = round_;
        // Watching forces sequential execution, so the global send count so
        // far is the merged total plus this round's (single) lane.
        w.messages_before_cross = result_.messages + lane.messages - 1;
      }
    }
  }
  return he;
}

void SyncEngine::do_send(SendLane& lane, NodeId from, PortId port,
                         MessagePtr msg) {
  if (!msg) throw std::invalid_argument("null message");
  const Graph::HalfEdge& he =
      account_send(lane, from, port, msg->size_bits(), nullptr, msg.get());
  if (send_faults_on_) [[unlikely]] {
    adv_enqueue(lane, from, he, FlatMsg{}, std::move(msg));
    return;
  }
  lane.out.push_back(
      OutboundEnvelope{he.to, he.rev, he.edge, FlatMsg{}, std::move(msg)});
}

void SyncEngine::do_send(SendLane& lane, NodeId from, PortId port,
                         const FlatMsg& msg) {
  if (msg.type == 0)
    throw std::invalid_argument("flat message without a type tag");
  const Graph::HalfEdge& he =
      account_send(lane, from, port, msg.bits, &msg, nullptr);
  if (send_faults_on_) [[unlikely]] {
    adv_enqueue(lane, from, he, msg, nullptr);
    return;
  }
  lane.out.push_back(OutboundEnvelope{he.to, he.rev, he.edge, msg, nullptr});
}

void SyncEngine::adv_enqueue(SendLane& lane, NodeId from,
                             const Graph::HalfEdge& he, const FlatMsg& flat,
                             MessagePtr msg) {
  const AdversaryConfig& adv = cfg_.adversary;
  // account_send already billed this send and bumped sent_by_node_[from]; the
  // post-increment value is the sender's send index — a pure function of the
  // sender's own history, identical at every thread count (each node's sends
  // are sequential within its own step, and sent_by_node_[from] is only ever
  // touched by the worker stepping `from`).
  Rng coin(adversary_coin(adv.seed, from, he.edge, sent_by_node_[from]));
  if (adv.drop > 0.0 && coin.bernoulli(adv.drop)) {
    ++lane.adv_drops;  // billed, eaten
    return;
  }
  const int copies =
      (adv.duplicate > 0.0 && coin.bernoulli(adv.duplicate)) ? 2 : 1;
  if (copies == 2) ++lane.adv_dups;
  for (int c = 0; c < copies; ++c) {
    // The duplicate shares the payload: FlatMsg by value, legacy MessagePtr
    // by refcount (payloads are immutable by the Process contract).
    lane.out.push_back(OutboundEnvelope{he.to, he.rev, he.edge, flat,
                                        c + 1 == copies ? std::move(msg) : msg});
    if (delays_on_) {
      const Round extra = coin.below(adv.max_delay + 1);
      lane.adv_arrive.push_back(round_ + 1 + extra);
      if (extra > 0) ++lane.adv_delays;
    }
  }
}

void SyncEngine::deliver_round() {
  // Reset the previous round's buckets (only the nodes that had one).
  for (const NodeId s : dirty_) inbox_len_[s] = 0;
  dirty_.clear();
  if (delays_on_) [[unlikely]] {
    deliver_round_delayed();
    return;
  }
  // Quiescent fast path: a sequential round's sends all live in lane 0.
  if (lanes_.size() == 1 && lanes_[0].out.empty()) return;
  std::size_t total = 0;
  for (const SendLane& lane : lanes_) total += lane.out.size();
  if (total == 0) return;

  // Stable counting-bucket by destination: count, prefix, scatter.  Lanes
  // are scanned in lane order, which is the send order (shards are
  // contiguous slot ranges executed in ascending lane order), so each
  // node's inbox order is identical to a sequential execution.
  for (const SendLane& lane : lanes_) {
    for (const OutboundEnvelope& f : lane.out) {
      if (inbox_len_[f.to]++ == 0) dirty_.push_back(f.to);
    }
  }
  std::uint32_t cursor = 0;
  for (const NodeId s : dirty_) {
    inbox_off_[s] = cursor;
    cursor += inbox_len_[s];
    inbox_len_[s] = 0;  // reused as the fill cursor during the scatter
  }
  delivery_.resize(total);

  if (parallel_ok_ && total >= 16 * cfg_.parallel_cutoff) {
    // Parallel scatter: a sequential addressing pass fixes every envelope's
    // delivery slot (send order per destination), then workers move disjoint
    // contiguous chunks of the envelope sequence — fully deterministic.
    scatter_pos_.resize(total);
    std::size_t i = 0;
    for (const SendLane& lane : lanes_) {
      for (const OutboundEnvelope& f : lane.out)
        scatter_pos_[i++] = inbox_off_[f.to] + inbox_len_[f.to]++;
    }
    ensure_pool().run([this, total](unsigned w) {
      auto [lo, hi] = shard_range(w, total);
      // Walk the lanes to the w-th chunk of the global envelope sequence.
      std::size_t base = 0;
      for (SendLane& lane : lanes_) {
        const std::size_t sz = lane.out.size();
        while (lo < hi && lo < base + sz) {
          OutboundEnvelope& f = lane.out[lo - base];
          Envelope& env = delivery_[scatter_pos_[lo]];
          env.port = f.at_port;
          env.flat = f.flat;
          env.msg = std::move(f.msg);
          ++lo;
        }
        base += sz;
        if (lo >= hi) break;
      }
    });
    for (SendLane& lane : lanes_) lane.out.clear();
  } else {
    for (SendLane& lane : lanes_) {
      for (OutboundEnvelope& f : lane.out) {
        Envelope& env = delivery_[inbox_off_[f.to] + inbox_len_[f.to]++];
        env.port = f.at_port;
        env.flat = f.flat;
        env.msg = std::move(f.msg);
      }
      lane.out.clear();
    }
  }
}

void SyncEngine::deliver_round_delayed() {
  const std::size_t W = delay_ring_.size();
  // Envelopes parked for this round deliver FIRST: they were sent in earlier
  // rounds, and older sends precede this round's on-time sends.  The ring
  // slot holds them in park order, which is global send order (lane order at
  // the round that parked them).
  adv_due_.clear();
  std::vector<OutboundEnvelope>& due_slot = delay_ring_[round_ % W];
  if (!due_slot.empty()) {
    pending_count_ -= due_slot.size();
    for (OutboundEnvelope& f : due_slot) adv_due_.push_back(std::move(f));
    due_slot.clear();
  }
  // Route last round's fresh sends (lane order = send order) by their drawn
  // arrival round: due now, or parked for a future slot.  Live arrivals span
  // rounds (round_, round_ + W], exactly W values, so slots never mix rounds
  // and the slot drained above can be re-filled only with arrivals W rounds
  // out.
  for (SendLane& lane : lanes_) {
    for (std::size_t i = 0; i < lane.out.size(); ++i) {
      if (lane.adv_arrive[i] <= round_) {
        adv_due_.push_back(std::move(lane.out[i]));
      } else {
        delay_ring_[lane.adv_arrive[i] % W].push_back(std::move(lane.out[i]));
        ++pending_count_;
      }
    }
    lane.out.clear();
    lane.adv_arrive.clear();
  }
  if (adv_due_.empty()) return;

  // Sequential CSR bucketing of the due set — identical to the fault-free
  // pass, minus the parallel scatter (adversarial delivery volume per round
  // is a fraction of the fault-free case; keeping it sequential keeps the
  // ordering argument trivial).
  for (const OutboundEnvelope& f : adv_due_) {
    if (inbox_len_[f.to]++ == 0) dirty_.push_back(f.to);
  }
  std::uint32_t cursor = 0;
  for (const NodeId s : dirty_) {
    inbox_off_[s] = cursor;
    cursor += inbox_len_[s];
    inbox_len_[s] = 0;  // reused as the fill cursor during the scatter
  }
  delivery_.resize(adv_due_.size());
  for (OutboundEnvelope& f : adv_due_) {
    Envelope& env = delivery_[inbox_off_[f.to] + inbox_len_[f.to]++];
    env.port = f.at_port;
    env.flat = f.flat;
    env.msg = std::move(f.msg);
  }
  adv_due_.clear();
}

void SyncEngine::apply_reorder() {
  const AdversaryConfig& adv = cfg_.adversary;
  for (const NodeId s : dirty_) {
    const std::uint32_t len = inbox_len_[s];
    if (len < 2) continue;  // nothing to permute
    // Keyed by (receiver, round, inbox size) under the reorder domain: pure
    // function of what was delivered, never of how lanes were interleaved.
    Rng coin(adversary_coin(adv.seed ^ kAdversaryReorderDomain, s, round_, len));
    if (!coin.bernoulli(adv.reorder)) continue;
    Envelope* inbox = delivery_.data() + inbox_off_[s];
    for (std::uint32_t i = len - 1; i > 0; --i)
      std::swap(inbox[i], inbox[coin.below(i + 1)]);
  }
}

void SyncEngine::apply_churn() {
  // `<= round_`, not `==`: fast-forward may jump the round counter past a
  // scheduled event; the schedule is sorted by round (rebirth before crash
  // at equal rounds), so replaying the backlog in order lands every node in
  // the same state as stepping round by round would have.
  while (churn_idx_ < churn_schedule_.size() &&
         churn_schedule_[churn_idx_].at <= round_) {
    const ChurnEvent ev = churn_schedule_[churn_idx_];
    ++churn_idx_;
    NodeState& n = nodes_[ev.node];
    if (ev.rebirth) {
      // Only an adversary-crashed node is reborn: if the crash half of the
      // interval was skipped (the node had already halted voluntarily), the
      // recovery half is a no-op too.
      if (!n.crashed) continue;
      n.crashed = false;
      n.state = RunState::Unwoken;
      n.wake_at = round_;
      n.status = Status::Undecided;
      // Fresh RNG stream, distinct from the node's previous life and from
      // every other node's: the run seed salted by the recovery round under
      // its own domain, then split per slot like the initial streams.
      std::uint64_t salt =
          cfg_.seed ^ (kAdversaryRecoveryDomain *
                       (static_cast<std::uint64_t>(round_) + 1));
      n.rng = node_rng(splitmix64(salt), ev.node);
      procs_[ev.node] = factory_(ev.node);
      wake_heap_.emplace(round_, ev.node);
      ++result_.recoveries;
    } else {
      if (n.state == RunState::Halted) continue;  // already dead (or done)
      n.state = RunState::Halted;
      n.crashed = true;
      ++result_.crashed;
    }
  }
}

Round SyncEngine::next_recovery_round() const {
  for (std::size_t i = churn_idx_; i < churn_schedule_.size(); ++i) {
    if (churn_schedule_[i].rebirth) return churn_schedule_[i].at;
  }
  return kRoundForever;
}

Round SyncEngine::earliest_pending_arrival() const {
  const std::size_t W = delay_ring_.size();
  Round best = kRoundForever;
  for (std::size_t s = 0; s < W; ++s) {
    if (delay_ring_[s].empty()) continue;
    // A non-empty slot holds exactly one arrival round: the unique value in
    // (round_, round_ + W] congruent to s mod W.
    const Round r = round_ + 1 + (s + W - ((round_ + 1) % W)) % W;
    best = std::min(best, r);
  }
  return best;
}

void SyncEngine::pop_due_wakes(std::vector<NodeId>& runnable) {
  while (!wake_heap_.empty() && wake_heap_.top().first <= round_) {
    const auto [r, s] = wake_heap_.top();
    wake_heap_.pop();
    if (!wake_entry_live(r, s)) continue;  // stale (node ran or re-slept)
    if (runnable_mark_[s] != runnable_epoch_) {
      runnable_mark_[s] = runnable_epoch_;
      runnable.push_back(s);
    }
  }
}

inline void SyncEngine::step_node(Ctx& ctx, NodeId s) {
  NodeState& n = nodes_[s];
  ctx.bind(s);
  // inbox_off_ is stale for nodes that received nothing this round; only
  // form the pointer when there is an inbox (the buffer may have shrunk).
  const std::span<const Envelope> in = inbox_of(s);
  if (n.state == RunState::Unwoken) {
    n.state = RunState::Running;
    if (tracing_) {
      TraceEvent ev;
      ev.kind = TraceEvent::Kind::Wake;
      ev.round = round_;
      ev.node = s;
      record(std::move(ev));
    }
    procs_[s]->on_wake(ctx, in);
  } else {
    n.state = RunState::Running;  // woken sleepers resume running
    procs_[s]->on_round(ctx, in);
  }
}

void SyncEngine::execute_round_parallel(const std::vector<NodeId>& runnable) {
  const std::size_t total = runnable.size();
  ensure_pool().run([this, &runnable, total](unsigned w) {
    SendLane& lane = lanes_[w];
    Ctx ctx(*this, &lane);
    const auto [lo, hi] = shard_range(w, total);
    try {
      for (std::size_t i = lo; i < hi; ++i) step_node(ctx, runnable[i]);
    } catch (...) {
      lane.error = std::current_exception();
    }
  });

  const std::exception_ptr first_error =
      merge_lane_counters(lanes_, result_, round_);
  if (first_error) std::rethrow_exception(first_error);
}

namespace {

/// Picks the ARQ dead-link counters out of a process's exported metrics for
/// the failure-path sweep (the engine cannot name ReliableProcess — net/
/// layering — but any process reporting these counters is a link owner).
class DeadLinkProbe final : public MetricsSink {
 public:
  std::uint64_t dead = 0;
  std::uint64_t drops = 0;
  std::uint64_t healed = 0;
  void counter(std::string_view name, std::uint64_t value) override {
    if (name == "arq.dead_links") {
      dead += value;
    } else if (name == "arq.dead_link_drops") {
      drops += value;
    } else if (name == "arq.healed_links") {
      healed += value;
    }
  }
};

}  // namespace

RunResult SyncEngine::run() {
  if (ran_) throw std::logic_error("SyncEngine::run() called twice");
  ran_ = true;
  for (NodeId s = 0; s < graph_.n(); ++s) {
    if (!procs_[s]) throw std::logic_error("node without a process");
  }
  if (has_recoveries_ && !factory_)
    throw std::logic_error(
        "churn schedule includes recoveries but processes were installed "
        "without init_processes (no factory to rebirth a node from)");

  Ctx ctx(*this, &lanes_[0]);
  std::vector<NodeId> runnable;
  runnable.reserve(64);
  running_.reserve(64);
  lanes_[0].out.reserve(64);

  // Seed the wake heap with every scheduled wakeup.  Nodes scheduled "never"
  // (kRoundForever) are reachable only through message arrival.
  for (NodeId s = 0; s < graph_.n(); ++s) {
    if (nodes_[s].wake_at != kRoundForever)
      wake_heap_.emplace(nodes_[s].wake_at, s);
  }

  while (true) {
    if (round_ >= cfg_.max_rounds) {
      result_.completed = false;
      break;
    }

    // Churn events apply at the start of their round, before delivery and
    // stepping: a crash victim's sends of earlier rounds stand and from here
    // on it neither steps nor sends; a recovering node is live again for
    // this round's deliveries and steps (its dead window is [at, recover)).
    if (crashes_on_) [[unlikely]] apply_churn();

    // Deliver messages sent last round (fills dirty_ and the CSR buckets).
    deliver_round();
    if (reorder_on_) [[unlikely]] apply_reorder();

    // Who runs this round?  Union of running nodes, message receivers, and
    // due wake deadlines — then sorted, so execution order is ascending slot
    // exactly like the original full scan.
    runnable.clear();
    ++runnable_epoch_;
    for (const NodeId s : running_) {
      if (crashes_on_ && nodes_[s].state != RunState::Running)
        continue;  // killed since it was queued
      runnable_mark_[s] = runnable_epoch_;
      runnable.push_back(s);
    }
    for (const NodeId s : dirty_) {
      const RunState st = nodes_[s].state;
      if (st == RunState::Halted) {
        // Delivered, counted, dropped.  An adversary-crashed receiver's
        // purged inbox is billed to the one crash-drop counter; a voluntary
        // halt()'s deliveries stay uncounted, exactly as before churn.
        if (crashes_on_ && nodes_[s].crashed) [[unlikely]]
          result_.adv_crash_drops += inbox_len_[s];
        continue;
      }
      if (runnable_mark_[s] != runnable_epoch_) {
        runnable_mark_[s] = runnable_epoch_;
        runnable.push_back(s);
      }
    }
    pop_due_wakes(runnable);

    if (runnable.empty()) {
      // Nothing to do this round.  The next event is the first live wake
      // deadline (drop stale heap entries on the way — lazy deletion) or,
      // under adversarial delays, the earliest in-flight arrival.
      while (!wake_heap_.empty() &&
             !wake_entry_live(wake_heap_.top().first, wake_heap_.top().second))
        wake_heap_.pop();
      Round next = wake_heap_.empty() ? kRoundForever : wake_heap_.top().first;
      if (delays_on_ && pending_count_ > 0) [[unlikely]]
        next = std::min(next, earliest_pending_arrival());
      // A pending rebirth is an event too: a quiesced network must not
      // complete while the churn schedule still owes a node its recovery.
      // (Pending crash-only events stay skippable — crashing a quiescent
      // node changes nothing observable.)
      if (has_recoveries_) [[unlikely]]
        next = std::min(next, next_recovery_round());
      if (next == kRoundForever) {
        result_.completed = true;  // global quiescence
        break;
      }
      round_ = cfg_.fast_forward ? next : round_ + 1;
      continue;
    }

    std::sort(runnable.begin(), runnable.end());

    ++result_.executed_rounds;
    result_.node_steps += runnable.size();
    const std::uint64_t messages_before_round = result_.messages;
    if (!parallel_ok_ || runnable.size() < cfg_.parallel_cutoff) [[likely]] {
      // Sequential fast path: execute in slot order into lane 0 and fold its
      // counter block inline (the quiescent per-round cost lives here).
      SendLane& lane = lanes_[0];
      try {
        for (const NodeId s : runnable) step_node(ctx, s);
      } catch (...) {
        // Fold first so counters reflect every send before the throw (seed
        // semantics), then propagate.
        lane.error = std::current_exception();
      }
      const std::exception_ptr err = fold_lane_counters(lane, result_, round_);
      if (err) [[unlikely]] std::rethrow_exception(err);
    } else {
      // Dense round: shard onto the worker pool, then merge the lanes in
      // slot order (rethrows the first worker error).
      execute_round_parallel(runnable);
    }

    if (result_.messages != messages_before_round ||
        result_.last_status_change == round_)
      result_.last_progress = round_;

    // Post-round transitions: rebuild the running set; every node that went
    // to sleep with a finite deadline gets a heap entry (duplicates are
    // deduped by the epoch mark, stale ones die in wake_entry_live).
    running_.clear();
    for (const NodeId s : runnable) {
      const NodeState& n = nodes_[s];
      if (n.state == RunState::Running) {
        running_.push_back(s);
      } else if (n.state == RunState::Sleeping && n.wake_at != kRoundForever) {
        wake_heap_.emplace(n.wake_at, s);
      }
    }

    if (cfg_.record_message_timeline)
      message_timeline_.emplace_back(round_, result_.messages);

    // Telemetry gauges, one sample per executed round, taken at a sequential
    // point after the lane merge: the runnable set, the wake heap (incl.
    // lazily deleted entries — heap content is identical at every thread
    // count), this round's CSR inbox occupancy (dirty_ still indexes this
    // round's deliveries; deliver_round resets it next round), and the lane
    // outboxes holding this round's post-adversary sends.
    if (metrics_on_) [[unlikely]] {
      std::uint64_t inbox = 0;
      for (const NodeId s : dirty_) inbox += inbox_len_[s];
      std::uint64_t outbox = 0;
      for (const SendLane& lane : lanes_) outbox += lane.out.size();
      metrics_.sample_round(runnable.size(), wake_heap_.size(), inbox, outbox);
    }

    ++round_;
  }

  result_.rounds = round_;
  for (const NodeState& n : nodes_) {
    switch (n.status) {
      case Status::Elected: ++result_.elected; break;
      case Status::NonElected: ++result_.non_elected; break;
      case Status::Undecided: ++result_.undecided; break;
    }
  }
  if (!result_.completed || result_.undecided != 0) {
    // Non-termination sample: the first 32 live undecided slots — also
    // collected when the run QUIESCED undecided (a partitioned or starved
    // run completes with nothing left in flight), so a failed-election
    // diagnosis can name the stuck nodes either way.  Crash victims are
    // excluded — they can never decide, so listing them would bury the
    // nodes whose indecision is the actual diagnosis.
    for (NodeId s = 0; s < graph_.n(); ++s) {
      if (result_.undecided_nodes.size() >= 32) break;
      if (nodes_[s].status != Status::Undecided) continue;
      if (nodes_[s].crashed) continue;
      result_.undecided_nodes.push_back(s);
    }
    // Name the dead edges too: any process owning link state (the ARQ
    // wrapper) reports arq.dead_links / arq.dead_link_drops through the same
    // export_metrics hook the metrics sweep uses, so a quiesced-undecided
    // run can say which nodes gave up on which volume of traffic.
    DeadLinkProbe probe;
    for (NodeId s = 0; s < graph_.n(); ++s) {
      const std::uint64_t dead_before = probe.dead;
      procs_[s]->export_metrics(probe);
      if (probe.dead > dead_before && result_.dead_link_nodes.size() < 32)
        result_.dead_link_nodes.push_back(s);
    }
    result_.dead_links = probe.dead;
    result_.dead_link_drops = probe.drops;
    result_.healed_links = probe.healed;
  }
  if (metrics_on_) [[unlikely]] {
    // The counter half of the snapshot: the engine's own totals, the
    // adversary's fault events, then every process's subsystem counters
    // swept in slot order.  All pure functions of the run — the snapshot is
    // bit-for-bit identical at every thread count.
    metrics_.counter("engine.rounds", result_.rounds);
    metrics_.counter("engine.executed_rounds", result_.executed_rounds);
    metrics_.counter("engine.node_steps", result_.node_steps);
    metrics_.counter("engine.messages", result_.messages);
    metrics_.counter("engine.bits", result_.bits);
    metrics_.counter("engine.congest_violations", result_.congest_violations);
    metrics_.counter("engine.crashed", result_.crashed);
    metrics_.counter("adversary.drops", result_.adv_drops);
    metrics_.counter("adversary.duplicates", result_.adv_dups);
    metrics_.counter("adversary.delays", result_.adv_delays);
    metrics_.counter("adversary.recoveries", result_.recoveries);
    metrics_.counter("adversary.crash_drops", result_.adv_crash_drops);
    for (NodeId s = 0; s < graph_.n(); ++s)
      procs_[s]->export_metrics(metrics_);
    result_.metrics = metrics_.snapshot();
  }
  return result_;
}

std::string describe_nontermination(const RunResult& r) {
  if (r.completed && r.undecided == 0) return "";
  // Two distinct failure shapes: a run that never quiesced (livelock — hit
  // the round cap with work still pending) and a run that quiesced with
  // undecided nodes (deadlock/starvation — a partition, a crash, or dropped
  // traffic left nodes waiting on messages that can no longer arrive).
  std::string out =
      r.completed
          ? "quiesced undecided at round " + std::to_string(r.rounds) +
                "; last progress (send or status change) at round " +
                std::to_string(r.last_progress)
          : "hit max_rounds at round " + std::to_string(r.rounds) +
                "; last progress (send or status change) at round " +
                std::to_string(r.last_progress);
  if (r.crashed > 0) {
    out += "; " + std::to_string(r.crashed) + " crash(es)";
    if (r.recoveries > 0)
      out += " (" + std::to_string(r.recoveries) + " recovered)";
    if (r.adv_crash_drops > 0)
      out += ", " + std::to_string(r.adv_crash_drops) +
             " message(s) purged in crashed windows";
  }
  out += "; " + std::to_string(r.undecided) + " undecided";
  if (!r.undecided_nodes.empty()) {
    out += " (nodes";
    for (const NodeId s : r.undecided_nodes) out += " " + std::to_string(s);
    if (r.undecided_nodes.size() >= 32) out += " ...";
    out += ")";
  }
  if (r.dead_links > 0) {
    out += "; " + std::to_string(r.dead_links) +
           " dead ARQ link(s) swallowed " + std::to_string(r.dead_link_drops) +
           " post-death send(s)";
    if (r.healed_links > 0)
      out += ", " + std::to_string(r.healed_links) + " later healed";
    if (!r.dead_link_nodes.empty()) {
      out += " (at nodes";
      for (const NodeId s : r.dead_link_nodes) out += " " + std::to_string(s);
      if (r.dead_link_nodes.size() >= 32) out += " ...";
      out += ")";
    }
  }
  return out;
}

std::string format_trace(const SyncEngine& eng, std::size_t max_lines) {
  std::string out;
  Round current = kRoundForever;
  std::size_t lines = 0;
  for (const TraceEvent& ev : eng.trace()) {
    if (lines >= max_lines) {
      out += "... (truncated at " + std::to_string(max_lines) + " lines)\n";
      return out;
    }
    if (ev.round != current) {
      current = ev.round;
      out += "--- round " + std::to_string(current) + " ---\n";
    }
    switch (ev.kind) {
      case TraceEvent::Kind::Wake:
        out += "  n" + std::to_string(ev.node) + " wakes\n";
        break;
      case TraceEvent::Kind::Send:
        out += "  n" + std::to_string(ev.node) + " -> n" +
               std::to_string(ev.peer) + " (port " + std::to_string(ev.port) +
               "): " + ev.detail + "\n";
        break;
      case TraceEvent::Kind::StatusChange:
        out += "  n" + std::to_string(ev.node) + " status := " +
               (ev.status == Status::Elected
                    ? "elected"
                    : ev.status == Status::NonElected ? "non-elected" : "?") +
               "\n";
        break;
    }
    ++lines;
  }
  if (eng.trace_truncated()) out += "... (event buffer full)\n";
  return out;
}

}  // namespace ule
