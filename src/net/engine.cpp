#include "net/engine.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <string>

namespace ule {

// ---------------------------------------------------------------------------
// Context implementation
// ---------------------------------------------------------------------------

class SyncEngine::Ctx final : public Context {
 public:
  Ctx(SyncEngine& eng) : eng_(eng) {}

  void bind(NodeId slot) { slot_ = slot; }

  NodeId slot() const override { return slot_; }
  std::size_t degree() const override { return eng_.graph_.degree(slot_); }
  bool anonymous() const override { return eng_.uids_.empty(); }
  Uid uid() const override {
    if (eng_.uids_.empty())
      throw std::logic_error("uid() requested in an anonymous network");
    return eng_.uids_[slot_];
  }
  Round round() const override { return eng_.round_; }
  Rng& rng() override { return eng_.nodes_[slot_].rng; }
  const Knowledge& knowledge() const override { return eng_.knowledge_; }

  void send(PortId port, MessagePtr msg) override {
    eng_.do_send(slot_, port, std::move(msg));
  }

  void set_status(Status s) override {
    auto& st = eng_.nodes_[slot_].status;
    if (st != s) {
      st = s;
      eng_.result_.last_status_change = eng_.round_;
      if (eng_.cfg_.trace_limit > 0) {
        TraceEvent ev;
        ev.kind = TraceEvent::Kind::StatusChange;
        ev.round = eng_.round_;
        ev.node = slot_;
        ev.status = s;
        eng_.record(std::move(ev));
      }
    }
  }
  Status status() const override { return eng_.nodes_[slot_].status; }

  void idle() override {
    auto& n = eng_.nodes_[slot_];
    n.state = RunState::Sleeping;
    n.wake_at = kRoundForever;
  }
  void sleep_until(Round r) override {
    auto& n = eng_.nodes_[slot_];
    n.state = RunState::Sleeping;
    n.wake_at = r;
  }
  void halt() override { eng_.nodes_[slot_].state = RunState::Halted; }

 private:
  SyncEngine& eng_;
  NodeId slot_ = kNoNode;
};

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

SyncEngine::SyncEngine(const Graph& g, EngineConfig cfg)
    : graph_(g), cfg_(std::move(cfg)) {
  const std::size_t n = graph_.n();
  nodes_.resize(n);
  procs_.resize(n);
  inbox_.resize(n);
  sent_by_node_.assign(n, 0);
  for (NodeId s = 0; s < n; ++s) nodes_[s].rng = node_rng(cfg_.seed, s);

  if (cfg_.record_edge_traffic) edge_traffic_.assign(graph_.m(), 0);

  if (!cfg_.watch_edges.empty()) {
    watch_index_.assign(graph_.m(), 0);
    for (EdgeId e : cfg_.watch_edges) {
      watch_reports_.push_back(WatchReport{e, kRoundForever, 0});
      watch_index_[e] = static_cast<std::uint32_t>(watch_reports_.size());
    }
  }

  if (cfg_.congest != CongestMode::Off) {
    dir_port_offset_.resize(n + 1, 0);
    for (NodeId s = 0; s < n; ++s)
      dir_port_offset_[s + 1] = dir_port_offset_[s] + graph_.degree(s);
    last_send_round_.assign(dir_port_offset_[n], kRoundForever);
  }
}

void SyncEngine::set_uids(std::vector<Uid> uids) {
  if (!uids.empty() && uids.size() != graph_.n())
    throw std::invalid_argument("uid vector size mismatch");
  uids_ = std::move(uids);
}

void SyncEngine::set_wakeup(std::vector<Round> wake_rounds) {
  if (wake_rounds.size() != graph_.n())
    throw std::invalid_argument("wakeup vector size mismatch");
  for (NodeId s = 0; s < graph_.n(); ++s) nodes_[s].wake_at = wake_rounds[s];
}

void SyncEngine::set_process(NodeId slot, std::unique_ptr<Process> p) {
  procs_[slot] = std::move(p);
}

std::uint64_t SyncEngine::messages_before(Round r) const {
  std::uint64_t count = 0;
  for (const auto& [round, cumulative] : message_timeline_) {
    if (round >= r) break;
    count = cumulative;
  }
  return count;
}

std::uint32_t SyncEngine::congest_budget() const {
  if (cfg_.congest_bits != 0) return cfg_.congest_bits;
  // Room for a tag plus a handful of id-sized fields.  Ids are Θ(log n)
  // conceptually; the wire format sizes them at 64 bits, so a constant
  // number of fields stays O(log n) for every n we can simulate.
  return wire::kTypeTag + 8 * wire::kIdField;
}

void SyncEngine::do_send(NodeId from, PortId port, MessagePtr msg) {
  if (port >= graph_.degree(from))
    throw std::out_of_range("send on invalid port " + std::to_string(port) +
                            " at node " + std::to_string(from));
  if (!msg) throw std::invalid_argument("null message");

  if (cfg_.congest != CongestMode::Off) {
    const std::size_t dp = dir_port_offset_[from] + port;
    const bool dup = last_send_round_[dp] == round_;
    const bool too_big = msg->size_bits() > congest_budget();
    if (dup || too_big) {
      if (cfg_.congest == CongestMode::Enforce) {
        throw std::runtime_error(
            std::string("CONGEST violation at node ") + std::to_string(from) +
            (dup ? " (two messages on one port in a round)"
                 : " (message of " + std::to_string(msg->size_bits()) +
                       " bits exceeds budget " +
                       std::to_string(congest_budget()) + ")"));
      }
      ++result_.congest_violations;
    }
    last_send_round_[dp] = round_;
  }

  const Graph::HalfEdge& he = graph_.half_edge(from, port);

  if (cfg_.trace_limit > 0) {
    TraceEvent ev;
    ev.kind = TraceEvent::Kind::Send;
    ev.round = round_;
    ev.node = from;
    ev.port = port;
    ev.peer = he.to;
    ev.detail = msg->debug_string();
    record(std::move(ev));
  }

  ++result_.messages;
  result_.bits += msg->size_bits();
  ++sent_by_node_[from];
  if (cfg_.record_edge_traffic) ++edge_traffic_[he.edge];
  if (!watch_index_.empty()) {
    if (const std::uint32_t wi = watch_index_[he.edge]; wi != 0) {
      WatchReport& w = watch_reports_[wi - 1];
      if (w.first_cross == kRoundForever) {
        w.first_cross = round_;
        w.messages_before_cross = result_.messages - 1;
      }
    }
  }

  outgoing_.push_back(InFlight{he.to, he.rev, he.edge, std::move(msg)});
}

RunResult SyncEngine::run() {
  if (ran_) throw std::logic_error("SyncEngine::run() called twice");
  ran_ = true;
  for (NodeId s = 0; s < graph_.n(); ++s) {
    if (!procs_[s]) throw std::logic_error("node without a process");
  }

  Ctx ctx(*this);
  std::vector<NodeId> runnable;
  runnable.reserve(graph_.n());

  while (true) {
    if (round_ >= cfg_.max_rounds) {
      result_.completed = false;
      break;
    }

    // Deliver messages sent last round.
    for (NodeId s : touched_) inbox_[s].clear();
    touched_.clear();
    for (auto& f : inflight_) {
      if (inbox_[f.to].empty()) touched_.push_back(f.to);
      inbox_[f.to].push_back(Envelope{f.at_port, std::move(f.msg)});
    }
    inflight_.clear();

    // Who runs this round?  (Deterministic: ascending slot order.)
    runnable.clear();
    for (NodeId s = 0; s < graph_.n(); ++s) {
      const NodeState& n = nodes_[s];
      switch (n.state) {
        case RunState::Halted:
          break;  // still receives (messages already counted) but never runs
        case RunState::Running:
          runnable.push_back(s);
          break;
        case RunState::Unwoken:
        case RunState::Sleeping:
          if (n.wake_at <= round_ || !inbox_[s].empty()) runnable.push_back(s);
          break;
      }
    }

    if (runnable.empty()) {
      // Nothing to do this round.  Jump to the next scheduled wake, if any.
      Round next_wake = kRoundForever;
      for (const NodeState& n : nodes_) {
        if (n.state == RunState::Unwoken || n.state == RunState::Sleeping)
          next_wake = std::min(next_wake, n.wake_at);
      }
      if (next_wake == kRoundForever) {
        result_.completed = true;  // global quiescence
        break;
      }
      round_ = cfg_.fast_forward ? next_wake : round_ + 1;
      continue;
    }

    for (NodeId s : runnable) {
      NodeState& n = nodes_[s];
      ctx.bind(s);
      const std::span<const Envelope> in{inbox_[s].data(), inbox_[s].size()};
      if (n.state == RunState::Unwoken) {
        n.state = RunState::Running;
        if (cfg_.trace_limit > 0) {
          TraceEvent ev;
          ev.kind = TraceEvent::Kind::Wake;
          ev.round = round_;
          ev.node = s;
          record(std::move(ev));
        }
        procs_[s]->on_wake(ctx, in);
      } else {
        n.state = RunState::Running;  // woken sleepers resume running
        procs_[s]->on_round(ctx, in);
      }
    }

    if (cfg_.record_message_timeline)
      message_timeline_.emplace_back(round_, result_.messages);

    inflight_ = std::move(outgoing_);
    outgoing_.clear();
    ++round_;
  }

  result_.rounds = round_;
  for (const NodeState& n : nodes_) {
    switch (n.status) {
      case Status::Elected: ++result_.elected; break;
      case Status::NonElected: ++result_.non_elected; break;
      case Status::Undecided: ++result_.undecided; break;
    }
  }
  return result_;
}

std::string format_trace(const SyncEngine& eng, std::size_t max_lines) {
  std::string out;
  Round current = kRoundForever;
  std::size_t lines = 0;
  for (const TraceEvent& ev : eng.trace()) {
    if (lines >= max_lines) {
      out += "... (truncated at " + std::to_string(max_lines) + " lines)\n";
      return out;
    }
    if (ev.round != current) {
      current = ev.round;
      out += "--- round " + std::to_string(current) + " ---\n";
    }
    switch (ev.kind) {
      case TraceEvent::Kind::Wake:
        out += "  n" + std::to_string(ev.node) + " wakes\n";
        break;
      case TraceEvent::Kind::Send:
        out += "  n" + std::to_string(ev.node) + " -> n" +
               std::to_string(ev.peer) + " (port " + std::to_string(ev.port) +
               "): " + ev.detail + "\n";
        break;
      case TraceEvent::Kind::StatusChange:
        out += "  n" + std::to_string(ev.node) + " status := " +
               (ev.status == Status::Elected
                    ? "elected"
                    : ev.status == Status::NonElected ? "non-elected" : "?") +
               "\n";
        break;
    }
    ++lines;
  }
  if (eng.trace_truncated()) out += "... (event buffer full)\n";
  return out;
}

}  // namespace ule
