// A fixed-size pool of worker threads for deterministic round execution.
//
// The engine's parallel path needs exactly one primitive: "run task(w) for
// every worker index w in [0, size), and return when all of them finished".
// The calling thread participates as worker 0, so a pool of size T spawns
// T-1 OS threads; dispatch is a generation-counter barrier (one mutex, two
// condition variables).  Dispatch latency is a few microseconds, which is
// why the engine only routes rounds above a work cutoff through the pool.
//
// Determinism is the caller's job: the pool guarantees only that every
// worker index runs the task exactly once per run() and that run() is a
// full barrier.  Tasks must not throw (the engine captures exceptions into
// its per-worker lanes instead).

#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ule {

class WorkerPool {
 public:
  /// A pool of `workers` total workers (the caller counts as worker 0).
  explicit WorkerPool(unsigned workers) : total_(workers < 1 ? 1 : workers) {
    threads_.reserve(total_ - 1);
    for (unsigned w = 1; w < total_; ++w)
      threads_.emplace_back([this, w] { worker_loop(w); });
  }

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  ~WorkerPool() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
      ++generation_;
    }
    start_cv_.notify_all();
    for (std::thread& t : threads_) t.join();
  }

  unsigned size() const { return total_; }

  /// Execute task(w) on every worker (worker 0 = the calling thread) and
  /// block until all are done.  The task must not throw.
  void run(const std::function<void(unsigned)>& task) {
    if (total_ == 1) {
      task(0);
      return;
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      task_ = &task;
      pending_ = total_ - 1;
      ++generation_;
    }
    start_cv_.notify_all();
    task(0);
    std::unique_lock<std::mutex> lk(mu_);
    done_cv_.wait(lk, [this] { return pending_ == 0; });
    task_ = nullptr;
  }

 private:
  void worker_loop(unsigned w) {
    std::uint64_t seen = 0;
    for (;;) {
      const std::function<void(unsigned)>* task = nullptr;
      {
        std::unique_lock<std::mutex> lk(mu_);
        start_cv_.wait(lk, [&] { return stop_ || generation_ != seen; });
        if (stop_) return;
        seen = generation_;
        task = task_;
      }
      (*task)(w);
      {
        std::lock_guard<std::mutex> lk(mu_);
        if (--pending_ == 0) done_cv_.notify_one();
      }
    }
  }

  const unsigned total_;
  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(unsigned)>* task_ = nullptr;  // guarded by mu_
  unsigned pending_ = 0;                                 // guarded by mu_
  std::uint64_t generation_ = 0;                         // guarded by mu_
  bool stop_ = false;                                    // guarded by mu_
};

}  // namespace ule
