// Channel tags keeping concurrently running sub-protocols' messages apart
// (e.g. Corollary 4.5 runs a size-estimation wave pool and then an election
// wave pool; Algorithm 1 runs cluster construction, sparsification, and then
// an election).

#pragma once

#include <cstdint>

namespace ule::channel {

inline constexpr std::uint8_t kLeastEl = 1;
inline constexpr std::uint8_t kFloodMax = 2;
inline constexpr std::uint8_t kSizeEstimate = 3;
inline constexpr std::uint8_t kSpanner = 4;
inline constexpr std::uint8_t kClustering = 5;
inline constexpr std::uint8_t kKingdom = 6;
inline constexpr std::uint8_t kBroadcast = 7;
inline constexpr std::uint8_t kDfs = 8;
inline constexpr std::uint8_t kSublinear = 9;
inline constexpr std::uint8_t kExplicit = 10;  ///< leader-announcement overlay

}  // namespace ule::channel
