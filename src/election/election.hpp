// Common harness-facing API for leader election runs.
//
// The library never hides the engine — these helpers just bundle the
// boilerplate every experiment repeats: assign IDs, grant knowledge, run,
// and judge the outcome against the paper's success criterion ("exactly one
// node has status elected while all other nodes are in state non-elected",
// Section 2).

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/engine.hpp"
#include "net/ids.hpp"
#include "net/knowledge.hpp"
#include "net/process.hpp"
#include "net/reliable.hpp"

namespace ule {

struct ElectionVerdict {
  bool unique_leader = false;   ///< exactly 1 elected, rest non-elected
  std::size_t elected = 0;
  std::size_t non_elected = 0;
  std::size_t undecided = 0;
  NodeId leader_slot = kNoNode; ///< set iff unique_leader
};

/// Judge a finished engine run.
ElectionVerdict judge_election(const SyncEngine& eng);

using ProcessFactory = std::function<std::unique_ptr<Process>(NodeId)>;

struct RunOptions {
  std::uint64_t seed = 1;
  IdScheme ids = IdScheme::RandomFromZ;
  bool anonymous = false;
  Knowledge knowledge;  ///< what every node is told (n / m / D)
  std::optional<std::vector<Round>> wakeup;  ///< default: simultaneous
  Round max_rounds = 50'000'000;
  CongestMode congest = CongestMode::Count;
  std::vector<EdgeId> watch_edges;
  bool record_edge_traffic = false;
  /// Worker threads for round execution (EngineConfig::threads): 1 =
  /// sequential, 0 = hardware concurrency.  Outcomes are identical at every
  /// setting; only wall-clock changes.
  unsigned threads = 1;
  /// Override the engine's sequential-fallback cutoff (0 = engine default).
  /// Mainly for tests that force tiny rounds onto the parallel path.
  std::size_t parallel_cutoff = 0;
  /// Seeded delivery/fault adversary (net/adversary.hpp).  Default = off.
  AdversaryConfig adversary;
  /// Override the engine's CONGEST bit budget (0 = engine default).  The
  /// reliable registry variants raise it by kReliableHeaderBits — the ARQ
  /// header is link-layer cost, not algorithm payload.
  std::uint32_t congest_bits = 0;
  /// Reliable-transport knobs consumed by the `*_reliable` registry
  /// variants' prepare() (ignored by plain protocols).  rto == 0 = auto.
  ReliableConfig reliable;
  /// Engine telemetry (net/metrics.hpp).  Default = off; when on,
  /// ElectionReport::run.metrics carries the deterministic snapshot.
  MetricsConfig metrics;
};

struct ElectionReport {
  RunResult run;
  ElectionVerdict verdict;
  std::vector<WatchReport> watches;
  std::vector<Uid> uids;  ///< the assignment used (empty when anonymous)
  std::vector<Status> statuses;            ///< per-node final status
  std::vector<std::uint64_t> sent_by_node; ///< per-node send counts
};

/// Build an engine for `g`, populate processes from `factory`, run to
/// quiescence, and judge.  `inspect`, when set, is called on the finished
/// engine before it is torn down — the hook for checks that need process
/// state (e.g. the scenario runner reading ExplicitProcess::known_leader()).
ElectionReport run_election(
    const Graph& g, const ProcessFactory& factory, const RunOptions& opt,
    const std::function<void(const SyncEngine&)>& inspect = {});

}  // namespace ule
