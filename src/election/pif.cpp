#include "election/pif.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace ule {

bool WavePool::originate(Context& ctx, WaveKey key) {
  if (originated_) throw std::logic_error("wave already originated");
  if (best_ && !better(key, *best_))
    throw std::logic_error("originating a wave weaker than an adopted one");
  originated_ = true;
  own_ = key;
  best_ = key;

  WaveRec rec;
  rec.parent = kNoPort;
  rec.pending = static_cast<std::uint32_t>(active_degree(ctx));
  if (rec.pending == 0) {
    // Isolated node / empty overlay: the wave is trivially complete.
    rec.echoed_up = true;
    waves_.emplace(key, std::move(rec));
    return true;
  }
  const FlatMsg fwd = wavewire::forward(channel_, key);
  for_each_port(ctx, [&](PortId p) { emit(ctx, p, fwd); });
  waves_.emplace(key, std::move(rec));
  return false;
}

void WavePool::adopt(Context& ctx, WaveKey key, PortId from) {
  best_ = key;
  WaveRec rec;
  rec.parent = from;
  rec.pending = static_cast<std::uint32_t>(active_degree(ctx)) - 1;
  if (rec.pending > 0) {
    const FlatMsg fwd = wavewire::forward(channel_, key);
    for_each_port(ctx, [&](PortId p) {
      if (p != from) emit(ctx, p, fwd);
    });
    waves_.emplace(key, std::move(rec));
  } else {
    // Leaf: echo straight back up.
    emit(ctx, from, wavewire::echo(channel_, key, /*adopted=*/true));
    rec.echoed_up = true;
    waves_.emplace(key, std::move(rec));
  }
}

void WavePool::maybe_echo_up(Context& ctx, const WaveKey& key, WaveRec& rec,
                             Events& ev) {
  if (rec.pending != 0 || rec.echoed_up) return;
  rec.echoed_up = true;
  if (rec.parent == kNoPort) {
    ev.own_complete = true;
  } else {
    emit(ctx, rec.parent, wavewire::echo(channel_, key, /*adopted=*/true));
  }
}

WavePool::Events WavePool::on_round(Context& ctx,
                                    std::span<const Envelope> inbox) {
  Events ev;

  const auto mine = [this](const Envelope& env) {
    return env.flat.channel == channel_ &&
           (env.flat.type == wavewire::kForward ||
            env.flat.type == wavewire::kEcho);
  };

  // Pass 1: find the single best adoptable forward of this round (at most
  // one adoption per round — the "one least-element-list entry per distance"
  // property of [11] that Lemma 4.3's min(.., D) bound rests on).
  const Envelope* best_fwd = nullptr;
  for (const auto& env : inbox) {
    if (!mine(env) || env.flat.type != wavewire::kForward) continue;
    if (!ports_.empty() &&
        std::find(ports_.begin(), ports_.end(), env.port) == ports_.end())
      throw std::logic_error("wave arrived on a port outside the overlay");
    ev.any_wave_seen = true;
    const WaveKey key = wavewire::key_of(env.flat);
    const bool beats_best = !best_ || better(key, *best_);
    if (beats_best &&
        (!best_fwd || better(key, wavewire::key_of(best_fwd->flat)))) {
      best_fwd = &env;
    }
  }
  if (best_fwd) {
    adopt(ctx, wavewire::key_of(best_fwd->flat), best_fwd->port);
    ev.improved = true;
  }

  // Pass 2: echo every non-adopted forward; process incoming echoes.
  for (const auto& env : inbox) {
    if (!mine(env)) continue;
    const WaveKey key = wavewire::key_of(env.flat);
    if (env.flat.type == wavewire::kForward) {
      if (&env == best_fwd) continue;  // the adopted copy: echoed when done
      emit(ctx, env.port, wavewire::echo(channel_, key, /*adopted=*/false));
    } else {
      auto it = waves_.find(key);
      if (it == waves_.end())
        throw std::logic_error("echo for a wave we never forwarded");
      WaveRec& rec = it->second;
      if (rec.pending == 0)
        throw std::logic_error("more echoes than forwards for a wave");
      --rec.pending;
      if (env.flat.flags & wavewire::kAdoptedFlag)
        rec.children.push_back(env.port);
      maybe_echo_up(ctx, key, rec, ev);
    }
  }
  return ev;
}

PortId WavePool::parent_of(const WaveKey& k) const {
  auto it = waves_.find(k);
  return it == waves_.end() ? kNoPort : it->second.parent;
}

std::vector<PortId> WavePool::adopted_children(const WaveKey& k) const {
  auto it = waves_.find(k);
  if (it == waves_.end()) return {};
  return it->second.children;
}

void WavePool::reset() {
  originated_ = false;
  own_ = WaveKey{};
  best_.reset();
  waves_.clear();
}

}  // namespace ule
