#include "election/pif.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace ule {

std::string WaveMsg::debug_string() const {
  return std::string(is_echo ? "echo" : "wave") + "(ch" +
         std::to_string(channel) + "," + std::to_string(key.primary) + "/" +
         std::to_string(key.tiebreak) + (is_echo && adopted ? ",adopted" : "") +
         ")";
}

bool WavePool::originate(Context& ctx, WaveKey key) {
  if (originated_) throw std::logic_error("wave already originated");
  if (best_ && !better(key, *best_))
    throw std::logic_error("originating a wave weaker than an adopted one");
  originated_ = true;
  own_ = key;
  best_ = key;

  WaveRec rec;
  rec.parent = kNoPort;
  rec.pending = static_cast<std::uint32_t>(active_degree(ctx));
  if (rec.pending == 0) {
    // Isolated node / empty overlay: the wave is trivially complete.
    rec.echoed_up = true;
    waves_.emplace(key, std::move(rec));
    return true;
  }
  auto fwd = std::make_shared<WaveMsg>();
  fwd->channel = channel_;
  fwd->key = key;
  for_each_port(ctx, [&](PortId p) { emit(ctx, p, fwd); });
  waves_.emplace(key, std::move(rec));
  return false;
}

void WavePool::adopt(Context& ctx, WaveKey key, PortId from) {
  best_ = key;
  WaveRec rec;
  rec.parent = from;
  rec.pending = static_cast<std::uint32_t>(active_degree(ctx)) - 1;
  if (rec.pending > 0) {
    auto fwd = std::make_shared<WaveMsg>();
    fwd->channel = channel_;
    fwd->key = key;
    for_each_port(ctx, [&](PortId p) {
      if (p != from) emit(ctx, p, fwd);
    });
    waves_.emplace(key, std::move(rec));
  } else {
    // Leaf: echo straight back up.
    auto up = std::make_shared<WaveMsg>();
    up->channel = channel_;
    up->is_echo = true;
    up->adopted = true;
    up->key = key;
    emit(ctx, from, up);
    rec.echoed_up = true;
    waves_.emplace(key, std::move(rec));
  }
}

void WavePool::maybe_echo_up(Context& ctx, const WaveKey& key, WaveRec& rec,
                             Events& ev) {
  if (rec.pending != 0 || rec.echoed_up) return;
  rec.echoed_up = true;
  if (rec.parent == kNoPort) {
    ev.own_complete = true;
  } else {
    auto up = std::make_shared<WaveMsg>();
    up->channel = channel_;
    up->is_echo = true;
    up->adopted = true;
    up->key = key;
    emit(ctx, rec.parent, up);
  }
}

WavePool::Events WavePool::on_round(Context& ctx,
                                    std::span<const Envelope> inbox) {
  Events ev;

  // Pass 1: find the single best adoptable forward of this round (at most
  // one adoption per round — the "one least-element-list entry per distance"
  // property of [11] that Lemma 4.3's min(.., D) bound rests on).
  const WaveMsg* best_fwd = nullptr;
  PortId best_port = kNoPort;
  for (const auto& env : inbox) {
    const auto* wm = dynamic_cast<const WaveMsg*>(env.msg.get());
    if (!wm || wm->channel != channel_ || wm->is_echo) continue;
    if (!ports_.empty() &&
        std::find(ports_.begin(), ports_.end(), env.port) == ports_.end())
      throw std::logic_error("wave arrived on a port outside the overlay");
    ev.any_wave_seen = true;
    const bool beats_best = !best_ || better(wm->key, *best_);
    if (beats_best && (!best_fwd || better(wm->key, best_fwd->key))) {
      best_fwd = wm;
      best_port = env.port;
    }
  }
  if (best_fwd) {
    adopt(ctx, best_fwd->key, best_port);
    ev.improved = true;
  }

  // Pass 2: echo every non-adopted forward; process incoming echoes.
  for (const auto& env : inbox) {
    const auto* wm = dynamic_cast<const WaveMsg*>(env.msg.get());
    if (!wm || wm->channel != channel_) continue;
    if (!wm->is_echo) {
      if (wm == best_fwd) continue;  // the adopted copy: echoed when done
      auto back = std::make_shared<WaveMsg>();
      back->channel = channel_;
      back->is_echo = true;
      back->adopted = false;
      back->key = wm->key;
      emit(ctx, env.port, back);
    } else {
      auto it = waves_.find(wm->key);
      if (it == waves_.end())
        throw std::logic_error("echo for a wave we never forwarded");
      WaveRec& rec = it->second;
      if (rec.pending == 0)
        throw std::logic_error("more echoes than forwards for a wave");
      --rec.pending;
      if (wm->adopted) rec.children.push_back(env.port);
      maybe_echo_up(ctx, wm->key, rec, ev);
    }
  }
  return ev;
}

PortId WavePool::parent_of(const WaveKey& k) const {
  auto it = waves_.find(k);
  return it == waves_.end() ? kNoPort : it->second.parent;
}

std::vector<PortId> WavePool::adopted_children(const WaveKey& k) const {
  auto it = waves_.find(k);
  if (it == waves_.end()) return {};
  return it->second.children;
}

void WavePool::reset() {
  originated_ = false;
  own_ = WaveKey{};
  best_.reset();
  waves_.clear();
}

}  // namespace ule
