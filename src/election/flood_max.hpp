// Flood-max: the time-optimal baseline (stands in for Peleg [20]).
//
// Every node originates a wave keyed by its unique ID; maxima flood, echoes
// detect termination, and the node holding the global maximum elects itself
// once its wave completes — O(D) rounds deterministically, with no knowledge
// of n, m or D.  Message complexity is Θ(m · #improvements-per-node), i.e.
// up to Θ(m·D) under adversarial ID placement (the classic time/message
// trade-off the paper contrasts against the O(m)-message algorithms).

#pragma once

#include "election/channels.hpp"
#include "election/election.hpp"
#include "election/pif.hpp"
#include "net/process.hpp"

namespace ule {

class FloodMaxProcess final : public Process {
 public:
  FloodMaxProcess() { pool_.pace_through(&outbox_); }

  void on_wake(Context& ctx, std::span<const Envelope> inbox) override;
  void on_round(Context& ctx, std::span<const Envelope> inbox) override;

  std::size_t improvements() const { return pool_.adopted_count(); }

 private:
  void finish_round(Context& ctx);

  PortOutbox outbox_;
  WavePool pool_{channel::kFloodMax, /*max_wins=*/true};
  bool decided_ = false;
};

ProcessFactory make_flood_max();

}  // namespace ule
