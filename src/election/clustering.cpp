#include "election/clustering.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <string>

#include "net/ids.hpp"

namespace ule {

namespace {

// Cluster-construction wire format: flat fast-path messages on the
// clustering channel (the phase-3 election wave pool rides kLeastEl, so the
// channels never collide).  Every kind is billed at a tag plus three
// id-sized fields, exactly like the legacy ClusterMsg it replaced.
enum class CKind : std::uint16_t {
  Join = 1,   ///< a = node token, b = cluster token
  ChildAck,   ///< a = node token, b = cluster token; sender joined via us
  UpEntry,    ///< a,b = edge name, c = foreign cluster
  UpDone,
  DownEntry,  ///< a,b = edge name, c = foreign cluster
  DownDone,
};

FlatMsg make_msg(CKind k, std::uint64_t a = 0, std::uint64_t b = 0,
                 std::uint64_t c = 0) {
  FlatMsg m;
  m.type = static_cast<std::uint16_t>(k);
  m.channel = channel::kClustering;
  m.bits = wire::kTypeTag + 3 * wire::kIdField;
  m.a = a;
  m.b = b;
  m.c = c;
  return m;
}

}  // namespace

void ClusteringProcess::on_wake(Context& ctx, std::span<const Envelope> inbox) {
  token_ = ctx.anonymous() ? ctx.rng()() : ctx.uid();
  nbr_token_.assign(ctx.degree(), 0);
  nbr_cluster_.assign(ctx.degree(), 0);
  port_heard_.assign(ctx.degree(), false);

  const auto n = static_cast<double>(ctx.knowledge().require_n());
  const double prob =
      std::min(1.0, cfg_.candidate_factor * std::log(std::max(2.0, n)) / n);
  candidate_ = ctx.rng().bernoulli(prob);

  if (candidate_) {
    cluster_ = token_;
    parent_ = kNoPort;
    outbox_.queue_broadcast(ctx, make_msg(CKind::Join, token_, cluster_));
  }
  on_round(ctx, inbox);
}

void ClusteringProcess::note_neighbor(Context& /*ctx*/, PortId port,
                                      std::uint64_t node_token,
                                      std::uint64_t cluster_token) {
  if (!port_heard_[port]) {
    port_heard_[port] = true;
    ++ports_heard_;
  }
  nbr_token_[port] = node_token;
  nbr_cluster_[port] = cluster_token;
}

void ClusteringProcess::join_cluster(Context& ctx, std::uint64_t cluster,
                                     PortId parent, std::uint64_t) {
  cluster_ = cluster;
  parent_ = parent;
  outbox_.queue(parent, make_msg(CKind::ChildAck, token_, cluster_));
  for (PortId p = 0; p < ctx.degree(); ++p) {
    if (p != parent)
      outbox_.queue(p, make_msg(CKind::Join, token_, cluster_));
  }
}

void ClusteringProcess::try_send_up(Context& /*ctx*/) {
  if (up_started_ || cluster_ == 0) return;
  if (ports_heard_ != nbr_token_.size()) return;
  if (children_done_ != children_.size()) return;
  up_started_ = true;

  // Fold our own inter-cluster edges into the subtree merge (Line 13's
  // sparsify: keep the lexicographically smallest edge per foreign cluster —
  // a deterministic rule, so the cluster on the other side selects the same
  // representative from its own view of the same edge set).
  for (PortId p = 0; p < nbr_token_.size(); ++p) {
    if (nbr_cluster_[p] == cluster_) continue;
    Entry e;
    e.edge_a = std::min(token_, nbr_token_[p]);
    e.edge_b = std::max(token_, nbr_token_[p]);
    e.foreign = nbr_cluster_[p];
    auto it = merged_.find(e.foreign);
    if (it == merged_.end() ||
        std::pair(e.edge_a, e.edge_b) <
            std::pair(it->second.edge_a, it->second.edge_b)) {
      merged_[e.foreign] = e;
    }
  }

  if (parent_ == kNoPort) {
    // Root: the merged map is the final inter-cluster graph of our cluster.
    down_entries_.reserve(merged_.size());
    for (const auto& [foreign, e] : merged_) down_entries_.push_back(e);
    // Downlink pumping starts next round (or phase 3 if we have no tree).
    if (children_.empty()) down_complete_ = true;
  } else {
    up_queue_.reserve(merged_.size());
    for (const auto& [foreign, e] : merged_) up_queue_.push_back(e);
  }
}

void ClusteringProcess::pump_uplink(Context& /*ctx*/) {
  if (!up_started_ || parent_ == kNoPort || up_done_sent_) return;
  if (up_sent_ < up_queue_.size()) {
    const Entry& e = up_queue_[up_sent_++];
    outbox_.queue(parent_, make_msg(CKind::UpEntry, e.edge_a,
                                    e.edge_b, e.foreign));
  } else {
    outbox_.queue(parent_, make_msg(CKind::UpDone));
    up_done_sent_ = true;
  }
}

void ClusteringProcess::pump_downlink(Context& /*ctx*/) {
  // Root only: stream the final graph down, one entry per round, then DONE.
  if (parent_ != kNoPort || !up_started_ || down_done_forwarded_) return;
  if (children_.empty()) return;
  if (down_forwarded_ < down_entries_.size()) {
    const Entry& e = down_entries_[down_forwarded_++];
    for (const PortId p : children_)
      outbox_.queue(p, make_msg(CKind::DownEntry, e.edge_a,
                                e.edge_b, e.foreign));
  } else {
    for (const PortId p : children_)
      outbox_.queue(p, make_msg(CKind::DownDone));
    down_done_forwarded_ = true;
    down_complete_ = true;
  }
}

void ClusteringProcess::maybe_begin_phase3(Context& ctx) {
  if (phase3_ || !down_complete_) return;
  phase3_ = true;

  // Overlay = tree edges + our incident representative inter-cluster edges.
  std::vector<PortId> overlay;
  if (parent_ != kNoPort) overlay.push_back(parent_);
  overlay.insert(overlay.end(), children_.begin(), children_.end());
  for (PortId p = 0; p < nbr_token_.size(); ++p) {
    if (nbr_cluster_[p] == cluster_ || nbr_cluster_[p] == 0) continue;
    const std::uint64_t ea = std::min(token_, nbr_token_[p]);
    const std::uint64_t eb = std::max(token_, nbr_token_[p]);
    const bool kept = std::any_of(
        down_entries_.begin(), down_entries_.end(), [&](const Entry& e) {
          return e.edge_a == ea && e.edge_b == eb;
        });
    if (kept) overlay.push_back(p);
  }
  elect_.restrict_ports(std::move(overlay));

  // Phase 3: Theorem 4.4 with f(n) = n — every node is a candidate.
  std::uint64_t space = cfg_.rank_space;
  if (space == 0) space = id_space_size(ctx.knowledge().require_n());
  WaveKey key;
  key.primary = ctx.rng().in_range(1, space);
  key.tiebreak = token_;
  if (elect_.originate(ctx, key)) {
    // Empty overlay: we are the only node, so the only candidate.
    ctx.set_status(Status::Elected);
    decided_ = true;
  }

  if (!buffered_.empty()) {
    run_election_round(ctx, buffered_);
    buffered_.clear();
  }
}

void ClusteringProcess::run_election_round(Context& ctx,
                                           std::span<const Envelope> inbox) {
  const WavePool::Events ev = elect_.on_round(ctx, inbox);
  if (!decided_) {
    if (elect_.has_best() && !elect_.own_is_best()) {
      ctx.set_status(Status::NonElected);
      decided_ = true;
    } else if (ev.own_complete && elect_.own_is_best()) {
      ctx.set_status(Status::Elected);
      decided_ = true;
    }
  }
}

void ClusteringProcess::on_round(Context& ctx, std::span<const Envelope> inbox) {
  std::vector<Envelope> election_msgs;

  for (const auto& env : inbox) {
    if (env.flat.channel == channel::kClustering) {
      const FlatMsg& cm = env.flat;
      switch (static_cast<CKind>(cm.type)) {
        case CKind::Join:
          if (cluster_ == 0) join_cluster(ctx, cm.b, env.port, cm.a);
          note_neighbor(ctx, env.port, cm.a, cm.b);
          break;
        case CKind::ChildAck:
          note_neighbor(ctx, env.port, cm.a, cm.b);
          children_.push_back(env.port);
          break;
        case CKind::UpEntry: {
          auto it = merged_.find(cm.c);
          if (it == merged_.end() ||
              std::pair(cm.a, cm.b) <
                  std::pair(it->second.edge_a, it->second.edge_b)) {
            merged_[cm.c] = Entry{cm.a, cm.b, cm.c};
          }
          break;
        }
        case CKind::UpDone:
          ++children_done_;
          break;
        case CKind::DownEntry:
          down_entries_.push_back(Entry{cm.a, cm.b, cm.c});
          for (const PortId p : children_)
            outbox_.queue(p, make_msg(CKind::DownEntry, cm.a,
                                      cm.b, cm.c));
          break;
        case CKind::DownDone:
          for (const PortId p : children_)
            outbox_.queue(p, make_msg(CKind::DownDone));
          down_complete_ = true;
          break;
      }
    } else {
      election_msgs.push_back(env);  // phase-3 wave traffic
    }
  }

  try_send_up(ctx);
  pump_uplink(ctx);
  pump_downlink(ctx);
  maybe_begin_phase3(ctx);

  if (!election_msgs.empty()) {
    if (phase3_) {
      run_election_round(ctx, election_msgs);
    } else {
      buffered_.insert(buffered_.end(), election_msgs.begin(),
                       election_msgs.end());
    }
  }

  // Stay runnable while entries remain to pump or the outbox has backlog;
  // otherwise sleep until the next message.
  const bool backlog = outbox_.flush(ctx);
  const bool pumping =
      (up_started_ && parent_ != kNoPort && !up_done_sent_) ||
      (up_started_ && parent_ == kNoPort && !children_.empty() &&
       !down_done_forwarded_);
  if (!pumping && !backlog) ctx.idle();
}

ProcessFactory make_clustering(ClusteringConfig cfg) {
  return [cfg](NodeId) { return std::make_unique<ClusteringProcess>(cfg); };
}

}  // namespace ule
