#include "election/dfs_election.hpp"

#include <memory>
#include <stdexcept>
#include <string>

#include "election/channels.hpp"

namespace ule {

namespace {

// Flat wire format (net/message.hpp) on the DFS channel.  An agent message
// is the agent crossing an edge: Forward = exploring; Bounce = "target was
// already visited, agent returns"; Backtrack = "subtree done, agent returns
// to parent".  The kind rides in the flag byte, the agent's ID in word a.
constexpr std::uint16_t kAgentType = 1;
constexpr std::uint16_t kWakeType = 2;  ///< wakeup flood (adversarial wakeup)

enum class AgentKind : std::uint8_t { Forward, Bounce, Backtrack };

FlatMsg agent_msg(Uid id, AgentKind kind) {
  FlatMsg m;
  m.type = kAgentType;
  m.channel = channel::kDfs;
  m.flags = static_cast<std::uint8_t>(kind);
  m.bits = wire::kTypeTag + wire::kIdField;
  m.a = id;
  return m;
}

FlatMsg wake_msg() {
  FlatMsg m;
  m.type = kWakeType;
  m.channel = channel::kDfs;
  m.bits = wire::kTypeTag;
  return m;
}

}  // namespace

Round DfsElectionProcess::next_fire(Round now, Uid id) const {
  const std::uint32_t exp =
      static_cast<std::uint32_t>(std::min<Uid>(id, cfg_.delay_cap));
  const Round delay = Round{1} << exp;
  return (now / delay + 1) * delay;
}

void DfsElectionProcess::launch_own_agent(Context& ctx) {
  started_ = true;
  const Uid me = ctx.uid();
  if (me < min_seen_) {
    min_seen_ = me;
    AgentRec rec;
    rec.visited = true;
    rec.parent = kNoPort;
    rec.cursor = 0;
    agents_.emplace(me, rec);
    waiting_ = Waiting{me, next_fire(ctx.round(), me), StepMode::Explore,
                       kNoPort};
  } else {
    // A smaller agent already passed through: our agent is stillborn and we
    // already know we lost.
    if (!decided_) {
      ctx.set_status(Status::NonElected);
      decided_ = true;
    }
  }
}

void DfsElectionProcess::handle_arrival(Context& ctx, const Envelope& env) {
  if (env.flat.type != kAgentType || env.flat.channel != channel::kDfs) return;
  const Uid id = env.flat.a;
  const auto kind = static_cast<AgentKind>(env.flat.flags);

  // Destruction rule: arriving at a node a smaller agent has visited kills
  // the arrival (min_seen_ <= our own ID from the moment we launch).
  if (id > min_seen_) return;

  // Rule: a smaller arrival destroys any waiting larger agent.
  if (waiting_ && waiting_->id > id) waiting_.reset();
  if (id < min_seen_) {
    min_seen_ = id;
    if (!decided_ && started_) {
      ctx.set_status(Status::NonElected);  // our own agent can never win now
      decided_ = true;
    }
  }

  switch (kind) {
    case AgentKind::Forward: {
      auto [it, inserted] = agents_.try_emplace(id);
      AgentRec& rec = it->second;
      if (inserted || !rec.visited) {
        // First visit: adopt this node into the agent's DFS tree.
        rec.visited = true;
        rec.parent = env.port;
        rec.cursor = 0;
        waiting_ = Waiting{id, next_fire(ctx.round(), id), StepMode::Explore,
                           kNoPort};
      } else {
        // Already visited: the agent bounces back on its next step.
        waiting_ = Waiting{id, next_fire(ctx.round(), id),
                           StepMode::BounceBack, env.port};
      }
      break;
    }
    case AgentKind::Bounce:
    case AgentKind::Backtrack: {
      auto it = agents_.find(id);
      if (it == agents_.end() || !it->second.visited)
        throw std::logic_error("agent returned to a node it never visited");
      AgentRec& rec = it->second;
      if (rec.cursor != env.port)
        throw std::logic_error("agent returned on an unexpected port");
      ++rec.cursor;  // that edge is now fully explored
      waiting_ =
          Waiting{id, next_fire(ctx.round(), id), StepMode::Explore, kNoPort};
      break;
    }
  }
}

void DfsElectionProcess::take_step(Context& ctx) {
  const Waiting w = *waiting_;
  waiting_.reset();

  auto send_agent = [&](PortId p, AgentKind kind) {
    ctx.send(p, agent_msg(w.id, kind));
  };

  if (w.mode == StepMode::BounceBack) {
    send_agent(w.bounce_port, AgentKind::Bounce);
    return;
  }

  AgentRec& rec = agents_.at(w.id);
  // Skip the parent port; it is used by the final backtrack only.
  while (rec.cursor < ctx.degree() && rec.cursor == rec.parent) ++rec.cursor;

  if (rec.cursor < ctx.degree()) {
    send_agent(rec.cursor, AgentKind::Forward);
  } else if (rec.parent != kNoPort) {
    send_agent(rec.parent, AgentKind::Backtrack);
  } else {
    // The agent is home with every port explored: full DFS completed.  By
    // the destruction rules it must be the smallest surviving ID.
    ctx.set_status(Status::Elected);
    decided_ = true;
  }
}

void DfsElectionProcess::reschedule(Context& ctx) {
  if (waiting_) {
    ctx.sleep_until(waiting_->fire);
  } else {
    ctx.idle();
  }
}

void DfsElectionProcess::on_wake(Context& ctx, std::span<const Envelope> inbox) {
  if (cfg_.wake_broadcast && !wake_sent_) {
    wake_sent_ = true;
    ctx.broadcast(wake_msg());
  }
  launch_own_agent(ctx);
  for (const auto& env : inbox) handle_arrival(ctx, env);
  if (waiting_ && waiting_->fire <= ctx.round()) take_step(ctx);
  reschedule(ctx);
}

void DfsElectionProcess::on_round(Context& ctx, std::span<const Envelope> inbox) {
  for (const auto& env : inbox) handle_arrival(ctx, env);
  // Fire the step timer if due (arrivals above may have destroyed the
  // waiting agent or replaced the schedule).
  if (waiting_ && waiting_->fire <= ctx.round()) take_step(ctx);
  reschedule(ctx);
}

ProcessFactory make_dfs_election(DfsConfig cfg) {
  return [cfg](NodeId) { return std::make_unique<DfsElectionProcess>(cfg); };
}

}  // namespace ule
