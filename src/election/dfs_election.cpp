#include "election/dfs_election.hpp"

#include <memory>
#include <stdexcept>
#include <string>

namespace ule {

namespace {

/// The agent crossing an edge.  Forward = exploring; Bounce = "target was
/// already visited, agent returns"; Backtrack = "subtree done, agent
/// returns to parent".
struct AgentMsg final : Message {
  enum class Kind : std::uint8_t { Forward, Bounce, Backtrack };
  Uid id = 0;
  Kind kind = Kind::Forward;

  std::uint32_t size_bits() const override {
    return wire::kTypeTag + wire::kIdField;
  }
  std::string debug_string() const override {
    const char* k = kind == Kind::Forward   ? "fwd"
                    : kind == Kind::Bounce  ? "bounce"
                                            : "backtrack";
    return std::string("agent-") + k + "(" + std::to_string(id) + ")";
  }
};

/// Wakeup-phase flood (adversarial wakeup only).
struct WakeMsg final : Message {
  std::uint32_t size_bits() const override { return wire::kTypeTag; }
  std::string debug_string() const override { return "wake"; }
};

}  // namespace

Round DfsElectionProcess::next_fire(Round now, Uid id) const {
  const std::uint32_t exp =
      static_cast<std::uint32_t>(std::min<Uid>(id, cfg_.delay_cap));
  const Round delay = Round{1} << exp;
  return (now / delay + 1) * delay;
}

void DfsElectionProcess::launch_own_agent(Context& ctx) {
  started_ = true;
  const Uid me = ctx.uid();
  if (me < min_seen_) {
    min_seen_ = me;
    AgentRec rec;
    rec.visited = true;
    rec.parent = kNoPort;
    rec.cursor = 0;
    agents_.emplace(me, rec);
    waiting_ = Waiting{me, next_fire(ctx.round(), me), StepMode::Explore,
                       kNoPort};
  } else {
    // A smaller agent already passed through: our agent is stillborn and we
    // already know we lost.
    if (!decided_) {
      ctx.set_status(Status::NonElected);
      decided_ = true;
    }
  }
}

void DfsElectionProcess::handle_arrival(Context& ctx, const Envelope& env) {
  const auto* am = dynamic_cast<const AgentMsg*>(env.msg.get());
  if (!am) return;
  const Uid id = am->id;

  // Destruction rule: arriving at a node a smaller agent has visited kills
  // the arrival (min_seen_ <= our own ID from the moment we launch).
  if (id > min_seen_) return;

  // Rule: a smaller arrival destroys any waiting larger agent.
  if (waiting_ && waiting_->id > id) waiting_.reset();
  if (id < min_seen_) {
    min_seen_ = id;
    if (!decided_ && started_) {
      ctx.set_status(Status::NonElected);  // our own agent can never win now
      decided_ = true;
    }
  }

  switch (am->kind) {
    case AgentMsg::Kind::Forward: {
      auto [it, inserted] = agents_.try_emplace(id);
      AgentRec& rec = it->second;
      if (inserted || !rec.visited) {
        // First visit: adopt this node into the agent's DFS tree.
        rec.visited = true;
        rec.parent = env.port;
        rec.cursor = 0;
        waiting_ = Waiting{id, next_fire(ctx.round(), id), StepMode::Explore,
                           kNoPort};
      } else {
        // Already visited: the agent bounces back on its next step.
        waiting_ = Waiting{id, next_fire(ctx.round(), id),
                           StepMode::BounceBack, env.port};
      }
      break;
    }
    case AgentMsg::Kind::Bounce:
    case AgentMsg::Kind::Backtrack: {
      auto it = agents_.find(id);
      if (it == agents_.end() || !it->second.visited)
        throw std::logic_error("agent returned to a node it never visited");
      AgentRec& rec = it->second;
      if (rec.cursor != env.port)
        throw std::logic_error("agent returned on an unexpected port");
      ++rec.cursor;  // that edge is now fully explored
      waiting_ =
          Waiting{id, next_fire(ctx.round(), id), StepMode::Explore, kNoPort};
      break;
    }
  }
}

void DfsElectionProcess::take_step(Context& ctx) {
  const Waiting w = *waiting_;
  waiting_.reset();

  auto send_agent = [&](PortId p, AgentMsg::Kind kind) {
    auto msg = std::make_shared<AgentMsg>();
    msg->id = w.id;
    msg->kind = kind;
    ctx.send(p, msg);
  };

  if (w.mode == StepMode::BounceBack) {
    send_agent(w.bounce_port, AgentMsg::Kind::Bounce);
    return;
  }

  AgentRec& rec = agents_.at(w.id);
  // Skip the parent port; it is used by the final backtrack only.
  while (rec.cursor < ctx.degree() && rec.cursor == rec.parent) ++rec.cursor;

  if (rec.cursor < ctx.degree()) {
    send_agent(rec.cursor, AgentMsg::Kind::Forward);
  } else if (rec.parent != kNoPort) {
    send_agent(rec.parent, AgentMsg::Kind::Backtrack);
  } else {
    // The agent is home with every port explored: full DFS completed.  By
    // the destruction rules it must be the smallest surviving ID.
    ctx.set_status(Status::Elected);
    decided_ = true;
  }
}

void DfsElectionProcess::reschedule(Context& ctx) {
  if (waiting_) {
    ctx.sleep_until(waiting_->fire);
  } else {
    ctx.idle();
  }
}

void DfsElectionProcess::on_wake(Context& ctx, std::span<const Envelope> inbox) {
  if (cfg_.wake_broadcast && !wake_sent_) {
    wake_sent_ = true;
    ctx.broadcast(std::make_shared<WakeMsg>());
  }
  launch_own_agent(ctx);
  for (const auto& env : inbox) handle_arrival(ctx, env);
  if (waiting_ && waiting_->fire <= ctx.round()) take_step(ctx);
  reschedule(ctx);
}

void DfsElectionProcess::on_round(Context& ctx, std::span<const Envelope> inbox) {
  for (const auto& env : inbox) handle_arrival(ctx, env);
  // Fire the step timer if due (arrivals above may have destroyed the
  // waiting agent or replaced the schedule).
  if (waiting_ && waiting_->fire <= ctx.round()) take_step(ctx);
  reschedule(ctx);
}

ProcessFactory make_dfs_election(DfsConfig cfg) {
  return [cfg](NodeId) { return std::make_unique<DfsElectionProcess>(cfg); };
}

}  // namespace ule
