#include "election/size_estimate.hpp"

#include <memory>

namespace ule {

namespace {
std::uint64_t saturating_pow4(std::uint64_t v) {
  constexpr std::uint64_t cap = std::uint64_t{1} << 62;
  std::uint64_t r = 1;
  for (int i = 0; i < 4; ++i) {
    if (v != 0 && r > cap / v) return cap;
    r *= v;
  }
  return r < 2 ? 2 : r;
}
}  // namespace

void SizeEstimateElectProcess::on_wake(Context& ctx,
                                       std::span<const Envelope> inbox) {
  // Geometric coin count: flips until the first heads, inclusive.
  x_ = 1;
  while (!ctx.rng().flip()) ++x_;

  const std::uint64_t tb = ctx.anonymous() ? ctx.rng()() : ctx.uid();
  if (estimate_.originate(ctx, WaveKey{x_, tb})) {
    begin_phase_b(ctx, x_);  // isolated node: the global maximum is ours
  }

  if (!inbox.empty()) {
    on_round(ctx, inbox);
  } else {
    finish_round(ctx);
  }
}

void SizeEstimateElectProcess::finish_round(Context& ctx) {
  if (outbox_.flush(ctx)) return;  // backlog: stay runnable for the next round
  ctx.idle();
}

void SizeEstimateElectProcess::begin_phase_b(Context& ctx,
                                             std::uint64_t x_bar) {
  phase_b_ = true;
  n_hat_ = (x_bar >= 62) ? (std::uint64_t{1} << 62)
                         : std::max<std::uint64_t>(2, std::uint64_t{1} << x_bar);

  // Forward DONE down the estimation wave tree (children lists are final
  // by the time the origin completes — echoes precede completion).  Queued:
  // the election flood below starts on the same ports in the same round.
  const FlatMsg done = sizewire::done(x_bar);
  for (const PortId p : estimate_.adopted_children(estimate_.best()))
    outbox_.queue(p, done);

  // Become a candidate (f(n̂) = n̂: every node) unless a foreign election
  // wave already arrived — then we cannot win and simply participate.
  if (!elect_.has_best()) {
    WaveKey key;
    key.primary = ctx.rng().in_range(1, saturating_pow4(n_hat_));
    key.tiebreak = ctx.anonymous() ? ctx.rng()() : ctx.uid();
    if (elect_.originate(ctx, key)) {
      ctx.set_status(Status::Elected);
      decided_ = true;
    }
    originated_election_ = true;
  } else if (!decided_) {
    ctx.set_status(Status::NonElected);
    decided_ = true;
  }
}

void SizeEstimateElectProcess::on_round(Context& ctx,
                                        std::span<const Envelope> inbox) {
  // DONE from our estimation-tree parent?
  for (const auto& env : inbox) {
    if (sizewire::is_done(env)) {
      if (!phase_b_) begin_phase_b(ctx, env.flat.a);
    }
  }

  const WavePool::Events est_ev = estimate_.on_round(ctx, inbox);
  if (est_ev.own_complete && estimate_.own_is_best() && !phase_b_) {
    // We hold the global maximum: the estimate is X̄ = our own x.
    begin_phase_b(ctx, x_);
  }

  const WavePool::Events el_ev = elect_.on_round(ctx, inbox);
  if (!decided_) {
    if (originated_election_ && elect_.has_best() && !elect_.own_is_best()) {
      ctx.set_status(Status::NonElected);
      decided_ = true;
    } else if (!originated_election_ && elect_.has_best()) {
      // Degenerate: an election wave overtook our DONE (only possible after
      // an estimation-key collision).  We cannot win; bow out.
      ctx.set_status(Status::NonElected);
      decided_ = true;
    } else if (originated_election_ && el_ev.own_complete &&
               elect_.own_is_best()) {
      ctx.set_status(Status::Elected);
      decided_ = true;
    }
  }
  finish_round(ctx);
}

ProcessFactory make_size_estimate_elect() {
  return [](NodeId) { return std::make_unique<SizeEstimateElectProcess>(); };
}

}  // namespace ule
