// Sublinear-message election on complete graphs — the [14] context result.
//
// The paper's framing turns on this: "it was recently shown that the
// randomized message complexity of leader election in complete graphs is
// sublinear, O(sqrt(n) log^{3/2} n) [14]" — which is why the Ω(m) and Ω(D)
// *universal* lower bounds of Theorems 3.1/3.13 are non-obvious, and why
// they must (and do) evade complete graphs: the dumbbell construction has
// bottleneck bridges, a clique does not.
//
// This is a simplified 2-round referee version of Kutten–Pandurangan–
// Peleg–Robinson–Trehan (ICDCN'13):
//
//   round 0  each node becomes a candidate with probability
//            min(1, candidate_factor * ln(n) / n)  (Θ(log n) candidates);
//            a candidate draws a random rank and sends QUERY(rank) to
//            referee_factor * sqrt(n ln n) distinct random ports;
//   round 1  every queried node (referee) replies VERDICT(max rank seen)
//            to each querier;
//   round 2  a candidate elects itself iff every verdict equals its own
//            rank; everyone else is non-elected.
//
// Whp analysis: Θ(log n) candidates exist (miss prob n^{-Θ(cf)}); any two
// referee sets of size r = rf*sqrt(n ln n) intersect with probability
// 1 - e^{-r^2/n} = 1 - n^{-rf^2}, so every weaker candidate shares a
// referee with the strongest and hears a larger rank; rank collisions are
// n^{-Θ(1)} with the n^4 domain + random tiebreak.  Messages:
// Θ(log n) * r queries + as many verdicts = O(sqrt(n) log^{3/2} n) —
// *sublinear in n*, let alone m = n(n-1)/2.  Time: 3 rounds.
//
// Requires: a complete topology (checked: degree = n-1), knowledge of n,
// simultaneous wakeup.  Works anonymously (ranks and tiebreaks are private
// coins).

#pragma once

#include <cstdint>
#include <vector>

#include "election/election.hpp"
#include "net/process.hpp"

namespace ule {

struct SublinearConfig {
  /// Candidacy probability = min(1, candidate_factor * ln(n) / n).
  double candidate_factor = 3.0;
  /// Referee-set size = min(n-1, ceil(referee_factor * sqrt(n ln n))).
  double referee_factor = 2.0;
  /// Rank domain (0 = auto n^4).
  std::uint64_t rank_space = 0;
};

class SublinearCompleteProcess final : public Process {
 public:
  explicit SublinearCompleteProcess(SublinearConfig cfg) : cfg_(cfg) {}

  void on_wake(Context& ctx, std::span<const Envelope> inbox) override;
  void on_round(Context& ctx, std::span<const Envelope> inbox) override;

  // Instrumentation.
  bool is_candidate() const { return candidate_; }
  std::size_t referees_contacted() const { return expected_verdicts_; }
  std::size_t queries_refereed() const { return queries_seen_; }

 private:
  SublinearConfig cfg_;
  bool candidate_ = false;
  bool decided_ = false;
  std::uint64_t rank_ = 0;
  std::uint64_t tiebreak_ = 0;
  std::size_t expected_verdicts_ = 0;
  std::size_t verdicts_seen_ = 0;
  std::size_t queries_seen_ = 0;
  bool lost_ = false;
};

ProcessFactory make_sublinear_complete(SublinearConfig cfg = {});

}  // namespace ule
