// Algorithm 1 / Theorem 4.7: the randomized clustering algorithm.
// With high probability: O(D log n) rounds and O(m + n log n) messages.
//
// Phase 1 (cluster construction, O(m) messages): each node becomes a
// candidate with probability 8 ln(n)/n; candidates grow BFS trees ("join"
// floods); every node joins the first cluster to reach it.  Every directed
// edge carries exactly one message — a JOIN announcement or a CHILD_ACK —
// so each node learns the cluster of every neighbour.
//
// Phase 2 (inter-cluster sparsification, O(n log n) messages): each cluster
// convergecasts its inter-cluster edge list up its BFS tree, keeping only
// one representative edge per adjacent cluster at every merge (the
// lexicographically smallest edge name — a deterministic rule, so the two
// clusters adjacent to an edge independently select the SAME representative,
// making the sparsified overlay symmetric without extra coordination).  The
// root broadcasts the final O(log^2 n)-entry inter-cluster graph back down,
// one O(log n)-bit entry per message per edge per round (the paper's
// "this might take multiple rounds" — honest CONGEST fragmentation).
//
// Phase 3 (election, O(n log n) messages): the least-element-list election
// of Theorem 4.4 with f(n) = n runs on the overlay = BFS-tree edges plus
// selected inter-cluster edges.  Election messages arriving before a node
// finished Phase 2 are buffered, which preserves the PIF safety argument
// (a node echoes only after it has originated).
//
// Works in anonymous networks: cluster and node names are 64-bit private
// random tokens (unique IDs are used when available).

#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "election/channels.hpp"
#include "election/election.hpp"
#include "election/pif.hpp"
#include "net/process.hpp"

namespace ule {

struct ClusteringConfig {
  /// Candidate probability numerator: prob = candidate_factor * ln(n) / n.
  /// The paper uses 8; lowering it is the failure/cluster-count ablation.
  double candidate_factor = 8.0;
  /// Election rank domain (0 = auto n^4).
  std::uint64_t rank_space = 0;
};

class ClusteringProcess final : public Process {
 public:
  explicit ClusteringProcess(ClusteringConfig cfg) : cfg_(cfg) {
    elect_.pace_through(&outbox_);
  }

  void on_wake(Context& ctx, std::span<const Envelope> inbox) override;
  void on_round(Context& ctx, std::span<const Envelope> inbox) override;

  // Instrumentation.
  bool is_candidate() const { return candidate_; }
  std::uint64_t cluster() const { return cluster_; }
  std::size_t final_intergraph_size() const { return down_entries_.size(); }
  bool phase3_started() const { return phase3_; }

 private:
  /// A surviving inter-cluster edge: its name and the foreign cluster.
  struct Entry {
    std::uint64_t edge_a = 0;  ///< min endpoint token
    std::uint64_t edge_b = 0;  ///< max endpoint token
    std::uint64_t foreign = 0; ///< the cluster on the other side
  };

  void join_cluster(Context& ctx, std::uint64_t cluster, PortId parent,
                    std::uint64_t parent_token);
  void note_neighbor(Context& ctx, PortId port, std::uint64_t node_token,
                     std::uint64_t cluster_token);
  void try_send_up(Context& ctx);
  void pump_uplink(Context& ctx);
  void pump_downlink(Context& ctx);
  void maybe_begin_phase3(Context& ctx);
  void run_election_round(Context& ctx, std::span<const Envelope> inbox);

  ClusteringConfig cfg_;

  /// All phases share one paced outbox (CONGEST: one message per port per
  /// round) — phase transitions overlap in a round (e.g. forwarding the
  /// final DOWN-DONE and originating the phase-3 flood), so pacing must see
  /// every send.
  PortOutbox outbox_;

  // Identity.
  std::uint64_t token_ = 0;     ///< node name (uid or random)
  bool candidate_ = false;
  std::uint64_t cluster_ = 0;   ///< 0 = not joined yet
  PortId parent_ = kNoPort;

  // Per-port neighbour info.
  std::vector<std::uint64_t> nbr_token_;
  std::vector<std::uint64_t> nbr_cluster_;
  std::vector<bool> port_heard_;
  std::size_t ports_heard_ = 0;
  std::vector<PortId> children_;
  std::size_t children_done_ = 0;

  // Phase 2 state.
  std::map<std::uint64_t, Entry> merged_;  ///< foreign cluster -> min edge
  bool up_started_ = false;
  bool up_done_sent_ = false;
  std::vector<Entry> up_queue_;
  std::size_t up_sent_ = 0;
  bool down_complete_ = false;
  std::vector<Entry> down_entries_;
  std::size_t down_forwarded_ = 0;
  bool down_done_forwarded_ = false;

  // Phase 3 state.
  bool phase3_ = false;
  WavePool elect_{channel::kLeastEl, /*max_wins=*/false};
  std::vector<Envelope> buffered_;
  bool decided_ = false;
};

ProcessFactory make_clustering(ClusteringConfig cfg = {});

}  // namespace ule
