// Algorithm 2 / Theorem 4.10: the deterministic "growing kingdoms"
// algorithm — O(D log n) time and O(m log n) messages, with NO knowledge of
// n, m or D (unique IDs required, which is necessary for deterministic LE).
//
// Every node starts as a candidate.  A candidate in phase p grows a BFS
// kingdom of radius 2^{p-1} through a 4-stage election:
//   Stage 1  ELECT   — BFS growth; nodes join the strongest *claim*
//                      (phase, id), lexicographically, phase first.
//   Stage 2  ACK     — convergecast: subtree aggregates report the strongest
//                      foreign claim met at the borders, whether any node in
//                      the kingdom is itself a still-live candidate, and
//                      whether the BFS frontier is open (graph continues).
//   Stage 3  CONFIRM — the candidate's neighbourhood winner is broadcast
//                      down the tree AND across border edges (this is the
//                      paper's "double win": defeated kingdoms relay who
//                      beat them to their own neighbours).
//   Stage 4  VICTOR  — convergecast of the strongest winner heard (including
//                      foreign CONFIRMs that crossed in).  The candidate
//                      survives iff the result is its own claim.
//
// The paper's overrun/LATE-flag mechanics are realized with two rules:
//   * higher claims overrun: a node always joins a strictly stronger claim.
//     If it had not yet answered its old parent it sends a *defect* answer
//     (the paper's LATE flag), and from then on serves the old expedition as
//     a *zombie*: it still relays the CONFIRM wave to its subtree and still
//     fulfils any VICTOR it owes, so every pending convergecast terminates
//     (no election stage can deadlock — in particular a node overrun in the
//     window between its stage-2 ack and the CONFIRM keeps its obligations);
//   * a candidate declares leader only when its kingdom's aggregation came
//     back with (a) a closed frontier (the tree spans the graph: every edge
//     out of the tree leads back into it), (b) no foreign claim, and (c) no
//     node reporting itself a live candidate.  Two candidates can never both
//     satisfy this — each spanning tree contains the other candidate, which
//     would have reported itself live — so at most one leader is ever
//     declared, regardless of timing.
//
// Liveness: claims are totally ordered and only ever strengthen; the
// candidate holding the eventually-maximal claim never meets a stronger one,
// survives every phase, doubles its radius past D, and declares.
//
// Knowledge of D (paper, "Knowledge of D" paragraph): radius D from the
// start instead of doubling — same bounds, simpler schedule.  Configure with
// KingdomConfig::known_diameter.

#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "election/election.hpp"
#include "net/outbox.hpp"
#include "net/process.hpp"

namespace ule {

struct KingdomConfig {
  /// 0 = paper's doubling schedule (radius 2^{p-1} in phase p);
  /// otherwise every phase uses this fixed radius (the known-D variant).
  std::uint64_t known_diameter = 0;
  /// Upper bound on per-message delivery delay (the adversary's max_delay).
  /// The known-D radius becomes known_diameter * (1 + delay_bound) + 1:
  /// under delays the first-arrival BFS tree is no longer a shortest-path
  /// tree — a claim that detoured through slow edges can reach a node at
  /// tree depth up to D * (1 + delay_bound), and a fixed radius below that
  /// leaves the node budget-less with unexplored ports, reporting an open
  /// frontier forever (the PR-6 livelock).  Fault-free (delay_bound = 0)
  /// this is exactly the old D + 1, so clean runs are bit-for-bit unchanged.
  std::uint64_t delay_bound = 0;
};

/// (phase, id), ordered phase-first: higher phases overrun lower ones, ties
/// go to the larger ID — the paper's collision rule.
struct Claim {
  std::uint32_t phase = 0;
  Uid id = 0;
  auto operator<=>(const Claim&) const = default;
  bool none() const { return phase == 0; }
};

class KingdomProcess final : public Process {
 public:
  explicit KingdomProcess(KingdomConfig cfg) : cfg_(cfg) {}

  void on_wake(Context& ctx, std::span<const Envelope> inbox) override;
  void on_round(Context& ctx, std::span<const Envelope> inbox) override;

  // Instrumentation.
  std::uint32_t phases_played() const { return my_phase_; }
  bool still_live() const { return live_; }

 private:
  enum class Answer : std::uint8_t { Joined, Same, Refused, Defected };
  enum class Stage : std::uint8_t { Growing, Confirmed };

  /// Aggregate carried by stage-2 ACKs.
  struct Agg {
    Claim foreign;            ///< strongest foreign claim met
    bool frontier_open = false;
    bool live_seen = false;   ///< some kingdom node is a live candidate
    void merge(const Agg& o) {
      foreign = std::max(foreign, o.foreign);
      frontier_open = frontier_open || o.frontier_open;
      live_seen = live_seen || o.live_seen;
    }
  };

  /// Bookkeeping for one expedition (one candidate's phase-p BFS) at this
  /// node.  A node holds at most two: its own (as root) + the strongest
  /// foreign one that claimed it.
  struct Exped {
    Claim claim;
    PortId parent = kNoPort;  ///< kNoPort at the candidate itself
    Stage stage = Stage::Growing;
    std::uint32_t pending = 0;  ///< outstanding stage-2 answers
    bool acked_up = false;
    /// This node was overrun by a stronger claim while serving the
    /// expedition.  A zombie no longer aggregates, but it still relays the
    /// CONFIRM wave to its recorded children and still sends the VICTOR it
    /// owes (iff victor_expected) — otherwise the parent's convergecast
    /// would wait forever on a count that can no longer drain.
    bool zombie = false;
    /// The parent received our Joined ack, so it counts us among the
    /// children it awaits a VICTOR from.  False for roots and for nodes
    /// whose stage-2 answer was Defected (the parent lists those as
    /// borders, which get the CONFIRM but owe nothing back).
    bool victor_expected = false;
    std::vector<PortId> children;
    std::vector<PortId> borders;  ///< ports that answered Refused/Defected
    Agg agg;
    Claim confirm_winner;
    std::uint32_t victor_pending = 0;
    bool victor_sent = false;
    Claim victor_agg;
  };

  Claim my_claim() const { return Claim{my_phase_, my_id_}; }
  std::uint64_t radius(std::uint32_t phase) const;
  void launch_phase(Context& ctx);
  void handle_elect(Context& ctx, PortId port, Claim claim,
                    std::uint64_t depth);
  void handle_answer(Context& ctx, PortId port, Claim exped, Answer answer,
                     const Agg& agg);
  void handle_confirm(Context& ctx, PortId port, Claim exped, Claim winner);
  void handle_victor(Context& ctx, PortId port, Claim exped, Claim winner);
  void defect_from(Context& ctx, Exped& e, Claim overrunner);
  void finish_stage2(Context& ctx, Exped& e);
  void send_victor_up(Context& ctx, Exped& e);
  void decide_phase(Context& ctx, const Exped& e);
  Exped* find(Claim c);

  KingdomConfig cfg_;
  /// CONGEST pacing: answers to one claim and forwards of another can land
  /// on the same port in the same round; the queue serializes them.
  PortOutbox outbox_;
  Uid my_id_ = 0;
  std::uint32_t my_phase_ = 0;
  bool live_ = true;
  bool decided_ = false;
  Claim current_claim_;          ///< strongest claim holding this territory
  Claim heard_winner_;           ///< strongest CONFIRMed winner seen
  std::map<Claim, Exped> expeds_;
};

ProcessFactory make_kingdom(KingdomConfig cfg = {});

}  // namespace ule
