#include "election/election.hpp"

namespace ule {

ElectionVerdict judge_election(const SyncEngine& eng) {
  ElectionVerdict v;
  const auto& r = eng.result();
  v.elected = r.elected;
  v.non_elected = r.non_elected;
  v.undecided = r.undecided;
  v.unique_leader = (v.elected == 1 && v.undecided == 0);
  if (v.elected == 1) {
    for (NodeId s = 0; s < eng.graph().n(); ++s) {
      if (eng.status(s) == Status::Elected) {
        v.leader_slot = s;
        break;
      }
    }
  }
  return v;
}

ElectionReport run_election(const Graph& g, const ProcessFactory& factory,
                            const RunOptions& opt,
                            const std::function<void(const SyncEngine&)>& inspect) {
  EngineConfig cfg;
  cfg.seed = opt.seed;
  cfg.max_rounds = opt.max_rounds;
  cfg.congest = opt.congest;
  cfg.watch_edges = opt.watch_edges;
  cfg.record_edge_traffic = opt.record_edge_traffic;
  cfg.threads = opt.threads;
  if (opt.parallel_cutoff != 0) cfg.parallel_cutoff = opt.parallel_cutoff;
  cfg.adversary = opt.adversary;
  if (opt.congest_bits != 0) cfg.congest_bits = opt.congest_bits;
  cfg.metrics = opt.metrics;

  SyncEngine eng(g, cfg);

  ElectionReport rep;
  if (!opt.anonymous) {
    Rng id_rng(opt.seed ^ 0x1D5B1D5B1D5B1D5BULL);
    rep.uids = assign_ids(g.n(), opt.ids, id_rng);
    eng.set_uids(rep.uids);
  }
  eng.set_knowledge(opt.knowledge);
  if (opt.wakeup) eng.set_wakeup(*opt.wakeup);
  eng.init_processes(factory);

  rep.run = eng.run();
  rep.verdict = judge_election(eng);
  rep.watches = eng.watch_reports();
  rep.statuses.reserve(g.n());
  for (NodeId s = 0; s < g.n(); ++s) rep.statuses.push_back(eng.status(s));
  rep.sent_by_node = eng.sent_by_node();
  if (inspect) inspect(eng);
  return rep;
}

}  // namespace ule
