// Explicit leader election: every node must also KNOW the leader's identity.
//
// The paper studies the implicit variant ("these nodes need not be aware of
// the identity of the leader") but notes the explicit one throughout: "our
// algorithms apply to the explicit version as well" (Section 1), and the
// broadcast lower bound (Corollary 3.12) shows the extra announcement costs
// Θ(m) messages on general graphs — asymptotically free next to any of the
// election algorithms here.
//
// ExplicitProcess wraps ANY implicit election process: it runs the inner
// algorithm unchanged (through a pass-through Context) and, the moment the
// inner algorithm sets status Elected at some node, that node floods a
// LEADER(id) announcement.  Every node forwards it once, so the overlay
// cost is exactly one message per edge direction, 2m in total, plus O(D)
// extra rounds.  In anonymous networks the winner announces a fresh random
// 64-bit token instead of an ID (the identity every node learns is that
// token — the strongest "explicit" guarantee possible without identifiers).
//
// Composition note: the wrapper relies only on the public Process/Context
// interface, so it composes with every algorithm in this library and any
// user-defined one, and it is itself an example of layering protocols over
// the engine.

#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "election/channels.hpp"
#include "election/election.hpp"
#include "net/outbox.hpp"
#include "net/process.hpp"

namespace ule {

/// LEADER(token): the winner's identity, flooded once over every edge.
/// Flat fast path on the wrapper's own channel, so it never collides with
/// whatever channel(s) the wrapped inner algorithm speaks.
namespace explicitwire {
inline constexpr std::uint16_t kLeader = 1;

inline FlatMsg leader(std::uint64_t token) {
  FlatMsg m;
  m.type = kLeader;
  m.channel = channel::kExplicit;
  m.bits = wire::kTypeTag + wire::kIdField;
  m.a = token;
  return m;
}

inline bool is_leader(const Envelope& env) {
  return env.flat.type == kLeader && env.flat.channel == channel::kExplicit;
}
}  // namespace explicitwire

class ExplicitProcess final : public Process {
 public:
  explicit ExplicitProcess(std::unique_ptr<Process> inner)
      : inner_(std::move(inner)) {}

  void on_wake(Context& ctx, std::span<const Envelope> inbox) override;
  void on_round(Context& ctx, std::span<const Envelope> inbox) override;

  /// The overlay owns no counters of its own; keep the inner observable.
  void export_metrics(MetricsSink& sink) const override {
    inner_->export_metrics(sink);
  }

  /// The leader identity this node learned (nullopt until the announcement
  /// reaches it).  Under unique IDs this is the leader's uid; in anonymous
  /// networks it is the winner's announcement token.
  std::optional<std::uint64_t> known_leader() const { return known_leader_; }

  const Process* inner() const { return inner_.get(); }

 private:
  class PassThroughCtx;
  /// The inner algorithm's last scheduling verb (it persists across rounds:
  /// an idle process stays idle until a message arrives).
  enum class Wish : std::uint8_t { Running, Idle, Sleep, Halt };

  void run_inner(Context& ctx, std::span<const Envelope> inbox, bool wake);
  void announce(Context& ctx, std::uint64_t token, PortId skip);

  std::unique_ptr<Process> inner_;
  PortOutbox outbox_;
  std::optional<std::uint64_t> known_leader_;
  bool announced_ = false;        ///< we already forwarded/originated
  bool inner_elected_ = false;
  Wish inner_wish_ = Wish::Running;
  Round inner_deadline_ = 0;
};

/// Wrap an implicit-election factory into an explicit-election factory.
ProcessFactory make_explicit(ProcessFactory inner);

}  // namespace ule
