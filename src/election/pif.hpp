// Wave flooding with per-wave feedback ("PIF": propagation of information
// with feedback) — the paper's echo mechanism, factored out.
//
// The least-element-list construction of [11] (Section 4.2), the size
// estimation of Corollary 4.5, and the flood-max baseline all follow the same
// skeleton: nodes originate *waves* carrying a totally ordered key; a node
// *adopts* a wave strictly better than its current best (recording the parent
// port and re-flooding), and immediately *echoes* every non-adopted copy.
// When all of a node's forwards have been echoed, it echoes to its own
// parent; when the origin collects all echoes, its wave is complete.  The
// globally best wave is adopted by every node, so its origin's completion is
// a correct termination signal after <= 3D+O(1) rounds.
//
// Accounting matches the paper: each node forwards each newly added
// least-element-list entry once over each incident edge (Lemma 4.3 bounds
// the expected number of adopted entries by O(min(log f(n), D))), and every
// forward triggers exactly one echo.

#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "net/message.hpp"
#include "net/outbox.hpp"
#include "net/process.hpp"

namespace ule {

/// Totally ordered wave identity.  `primary` is the rank (or size-estimate
/// coin count); `tiebreak` is the unique ID (Corollary 4.5) or a private
/// random value.  Keys colliding across distinct origins is precisely the
/// Monte-Carlo failure mode the rank-domain ablation measures.
struct WaveKey {
  std::uint64_t primary = 0;
  std::uint64_t tiebreak = 0;
  auto operator<=>(const WaveKey&) const = default;
};

/// Wave wire format: flat fast-path messages (net/message.hpp) tagged with
/// the pool's channel.  A forward or echo carries a tag, two id-sized fields
/// and two flags — O(log n) bits, CONGEST-legal.
namespace wavewire {
inline constexpr std::uint16_t kForward = 1;
inline constexpr std::uint16_t kEcho = 2;
inline constexpr std::uint8_t kAdoptedFlag = 1;  ///< echo: sender adopted
inline constexpr std::uint32_t kBits =
    wire::kTypeTag + 2 * wire::kIdField + 2 * wire::kFlag;

inline FlatMsg forward(std::uint8_t channel, const WaveKey& key) {
  FlatMsg m;
  m.type = kForward;
  m.channel = channel;
  m.bits = kBits;
  m.a = key.primary;
  m.b = key.tiebreak;
  return m;
}

inline FlatMsg echo(std::uint8_t channel, const WaveKey& key, bool adopted) {
  FlatMsg m;
  m.type = kEcho;
  m.channel = channel;
  m.flags = adopted ? kAdoptedFlag : 0;
  m.bits = kBits;
  m.a = key.primary;
  m.b = key.tiebreak;
  return m;
}

inline WaveKey key_of(const FlatMsg& m) { return WaveKey{m.a, m.b}; }
}  // namespace wavewire

/// Per-node wave bookkeeping for one channel.
class WavePool {
 public:
  struct Events {
    bool improved = false;      ///< best changed to a foreign wave this round
    bool own_complete = false;  ///< our originated wave collected all echoes
    bool any_wave_seen = false; ///< at least one forward arrived this round
  };

  /// `max_wins`: true = larger key is better (flood-max, size estimate);
  /// false = smaller key is better (least-element ranks).
  WavePool(std::uint8_t channel, bool max_wins)
      : channel_(channel), max_wins_(max_wins) {}

  /// Restrict the pool to an overlay: waves are forwarded only over these
  /// ports (Algorithm 1 runs its election on the sparsified network).  Must
  /// be called before any wave activity; arrivals on other ports are a
  /// protocol error.  Both endpoints of an overlay edge must agree on it.
  void restrict_ports(std::vector<PortId> ports) { ports_ = std::move(ports); }

  /// Route all sends through a caller-owned outbox (CONGEST pacing: one
  /// message per port per round).  The caller must flush the outbox once per
  /// round and stay runnable while it reports backlog.  Without an outbox
  /// the pool sends directly, which can put an echo and a re-flood on the
  /// same port in one round (counted as a CONGEST violation by the engine).
  void pace_through(PortOutbox* outbox) { outbox_ = outbox; }

  /// Originate our own wave (the node becomes a "candidate" on this channel).
  /// Must be called at most once, before any foreign wave has been adopted.
  /// Returns true when the wave is complete on the spot — the degree-0 case
  /// (an isolated node, or an empty overlay): there is nobody to flood to,
  /// so no echo will ever fire own_complete through on_round, and the
  /// caller must treat the origination itself as the completion signal.
  [[nodiscard]] bool originate(Context& ctx, WaveKey key);

  /// Feed this round's inbox; handles forwards/echoes of our channel and
  /// ignores everything else.  Sends any required messages through ctx.
  Events on_round(Context& ctx, std::span<const Envelope> inbox);

  bool has_best() const { return best_.has_value(); }
  WaveKey best() const { return *best_; }
  bool originated() const { return originated_; }
  WaveKey own() const { return own_; }
  /// We originated and our key still equals the best we know (nobody better
  /// has been seen).  Combined with own_complete, this is the win condition.
  bool own_is_best() const { return originated_ && best_ && *best_ == own_; }

  /// Parent port of an adopted wave (kNoPort for self-originated).
  PortId parent_of(const WaveKey& k) const;
  /// Ports that adopted wave `k` from us (known once they echoed).
  std::vector<PortId> adopted_children(const WaveKey& k) const;

  /// Number of adopted entries — the size of the node's least-element list
  /// |le_v| (Lemma 4.3's measured quantity).  Counts the own wave if any.
  std::size_t adopted_count() const { return waves_.size(); }

  /// Reset all state (Las Vegas epoch restart, Corollary 4.6).
  void reset();

 private:
  struct WaveRec {
    PortId parent = kNoPort;
    std::uint32_t pending = 0;
    bool echoed_up = false;
    std::vector<PortId> children;
  };

  bool better(const WaveKey& a, const WaveKey& b) const {
    return max_wins_ ? (b < a) : (a < b);
  }
  void emit(Context& ctx, PortId port, const FlatMsg& msg) {
    if (outbox_ != nullptr) {
      outbox_->queue(port, msg);
    } else {
      ctx.send(port, msg);
    }
  }
  void adopt(Context& ctx, WaveKey key, PortId from);
  void maybe_echo_up(Context& ctx, const WaveKey& key, WaveRec& rec,
                     Events& ev);
  std::size_t active_degree(const Context& ctx) const {
    return ports_.empty() ? ctx.degree() : ports_.size();
  }
  template <typename Fn>
  void for_each_port(const Context& ctx, Fn&& fn) const {
    if (ports_.empty()) {
      for (PortId p = 0; p < ctx.degree(); ++p) fn(p);
    } else {
      for (const PortId p : ports_) fn(p);
    }
  }

  std::uint8_t channel_;
  bool max_wins_;
  PortOutbox* outbox_ = nullptr;  ///< not owned; nullptr = direct sends
  std::vector<PortId> ports_;     ///< empty = all ports
  bool originated_ = false;
  WaveKey own_{};
  std::optional<WaveKey> best_;
  std::map<WaveKey, WaveRec> waves_;
};

}  // namespace ule
