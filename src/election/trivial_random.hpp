// The introduction's strawman: "each node elects itself with probability
// 1/n".  One round, zero messages, success probability n·(1/n)(1-1/n)^{n-1}
// ≈ 1/e ≈ 0.368.  Exists to demonstrate why the lower bounds require a
// *suitably large* constant success probability (Theorems 3.1 / 3.13 demand
// > 53/56 and > 15/16 respectively — this algorithm clears neither).

#pragma once

#include "election/election.hpp"
#include "net/process.hpp"

namespace ule {

class TrivialRandomProcess final : public Process {
 public:
  void on_wake(Context& ctx, std::span<const Envelope>) override {
    const double n = static_cast<double>(ctx.knowledge().require_n());
    ctx.set_status(ctx.rng().bernoulli(1.0 / n) ? Status::Elected
                                                : Status::NonElected);
    ctx.halt();
  }
  void on_round(Context&, std::span<const Envelope>) override {}
};

ProcessFactory make_trivial_random();

}  // namespace ule
