#include "election/kingdom.hpp"

#include <algorithm>
#include <memory>
#include <string>

#include "net/message.hpp"

namespace ule {

namespace {

struct KingdomMsg final : Message {
  enum class Kind : std::uint8_t { Elect, Ack, Confirm, Victor };
  Kind kind = Kind::Elect;
  Claim exped;          ///< which expedition this message belongs to
  std::uint64_t depth = 0;  ///< Elect: remaining BFS radius
  std::uint8_t answer = 0;  ///< Ack: Answer enum
  Claim info;           ///< Ack: strongest foreign; Confirm/Victor: winner
  bool frontier_open = false;
  bool live_seen = false;

  std::uint32_t size_bits() const override {
    // Two claims (phase counter + id each), a depth counter, tag and flags.
    return wire::kTypeTag + 2 * (wire::kCounter + wire::kIdField) +
           wire::kCounter + 2 * wire::kFlag;
  }
  std::string debug_string() const override {
    static const char* names[] = {"elect", "ack", "confirm", "victor"};
    return std::string("kingdom-") + names[static_cast<int>(kind)] + "(p" +
           std::to_string(exped.phase) + ",id" + std::to_string(exped.id) +
           ")";
  }
};

std::shared_ptr<KingdomMsg> msg(KingdomMsg::Kind k, Claim exped) {
  auto m = std::make_shared<KingdomMsg>();
  m->kind = k;
  m->exped = exped;
  return m;
}

}  // namespace

KingdomProcess::Exped* KingdomProcess::find(Claim c) {
  auto it = expeds_.find(c);
  return it == expeds_.end() ? nullptr : &it->second;
}

std::uint64_t KingdomProcess::radius(std::uint32_t phase) const {
  // The radius must STRICTLY exceed the root's eccentricity for the spanning
  // check to close: a node reached with no budget left (remaining == 0) and
  // unexplored ports reports an open frontier, even when those ports lead
  // back into the tree — it has no way to tell.  With radius D+1 every node
  // is reached with budget >= 1 and probes all its ports (getting Same/
  // Refused back), so coverage is detected exactly.  The doubling schedule
  // needs no such care: 2^{p-1} eventually strictly exceeds any eccentricity.
  if (cfg_.known_diameter != 0) return cfg_.known_diameter + 1;
  return phase >= 63 ? (std::uint64_t{1} << 62) : (std::uint64_t{1} << (phase - 1));
}

void KingdomProcess::launch_phase(Context& ctx) {
  ++my_phase_;
  const Claim c = my_claim();

  Exped e;
  e.claim = c;
  e.parent = kNoPort;
  e.pending = static_cast<std::uint32_t>(ctx.degree());
  auto [it, inserted] = expeds_.emplace(c, std::move(e));

  current_claim_ = std::max(current_claim_, c);

  if (it->second.pending == 0) {  // isolated node (n == 1): phase is trivial
    finish_stage2(ctx, it->second);
    return;
  }
  auto m = msg(KingdomMsg::Kind::Elect, c);
  m->depth = radius(my_phase_);
  outbox_.queue_broadcast(ctx, m);
}

void KingdomProcess::defect_from(Context& /*ctx*/, Exped& e,
                                 Claim overrunner) {
  if (e.parent == kNoPort) return;  // roots are never territory
  e.zombie = true;
  if (e.stage == Stage::Growing && !e.acked_up) {
    // We had not answered yet: cut the parent's wait with a Defected ack.
    // The parent lists us as a border, so it will not await our VICTOR but
    // will still send us the CONFIRM, which we relay to our subtree.
    e.acked_up = true;
    auto m = msg(KingdomMsg::Kind::Ack, e.claim);
    m->answer = static_cast<std::uint8_t>(Answer::Defected);
    m->info = std::max(e.agg.foreign, overrunner);
    m->frontier_open = e.agg.frontier_open;
    m->live_seen = e.agg.live_seen || (live_ && my_id_ != e.claim.id);
    outbox_.queue(e.parent, m);
  } else {
    // We already answered Joined (stage 2 done, awaiting CONFIRM) or are in
    // the victor stage: the parent counts on our VICTOR, so we stay in the
    // expedition and let its remaining stages run their course.  The only
    // effect of the overrun is extra evidence for the upward aggregation.
    e.victor_agg = std::max(e.victor_agg, overrunner);
  }
}

void KingdomProcess::handle_elect(Context& ctx, PortId port, Claim claim,
                                  std::uint64_t depth) {
  if (claim > current_claim_) {
    // Overrun.  Our own (root) expedition, if any, records the collision as
    // foreign evidence but keeps running — the paper's "continues the
    // present phase as usual".
    if (Exped* own = find(my_claim())) {
      own->agg.foreign = std::max(own->agg.foreign, claim);
    }
    // Any foreign expedition we were serving turns into a zombie: it keeps
    // whatever relay duties it still owes (CONFIRM downwards, VICTOR
    // upwards), so its convergecasts always terminate.
    if (!current_claim_.none() && current_claim_ != my_claim()) {
      if (Exped* old = find(current_claim_)) defect_from(ctx, *old, claim);
    }

    current_claim_ = claim;
    Exped t;
    t.claim = claim;
    t.parent = port;
    const std::uint64_t remaining = depth - 1;
    const auto other_ports = static_cast<std::uint32_t>(ctx.degree()) - 1;
    if (remaining > 0 && other_ports > 0) {
      t.pending = other_ports;
      auto m = msg(KingdomMsg::Kind::Elect, claim);
      m->depth = remaining;
      for (PortId p = 0; p < ctx.degree(); ++p) {
        if (p != port) outbox_.queue(p, m);
      }
      expeds_.emplace(claim, std::move(t));
    } else {
      // Leaf: answer straight away.  The frontier stays open if the radius
      // ran out while unexplored ports remain.
      t.acked_up = true;
      t.victor_expected = true;
      auto m = msg(KingdomMsg::Kind::Ack, claim);
      m->answer = static_cast<std::uint8_t>(Answer::Joined);
      m->frontier_open = (remaining == 0 && other_ports > 0);
      m->live_seen = live_ && my_id_ != claim.id;
      outbox_.queue(port, m);
      expeds_.emplace(claim, std::move(t));
    }
  } else if (claim == current_claim_) {
    auto m = msg(KingdomMsg::Kind::Ack, claim);
    m->answer = static_cast<std::uint8_t>(Answer::Same);
    outbox_.queue(port, m);
  } else {
    auto m = msg(KingdomMsg::Kind::Ack, claim);
    m->answer = static_cast<std::uint8_t>(Answer::Refused);
    m->info = current_claim_;
    outbox_.queue(port, m);
  }
}

void KingdomProcess::handle_answer(Context& ctx, PortId port, Claim exped,
                                   Answer answer, const Agg& agg) {
  Exped* e = find(exped);
  if (!e) return;
  if (e->zombie) {
    // A child that joined us before we were overrun.  It still needs the
    // CONFIRM wave: record it if the wave has not passed yet, otherwise
    // relay the winner directly.  (Its VICTOR is not awaited: zombies set
    // victor_pending from the children recorded at CONFIRM time, and
    // handle_victor ignores ports outside that set.)
    if (answer == Answer::Joined) {
      if (e->stage == Stage::Growing) {
        e->children.push_back(port);
      } else {
        auto m = msg(KingdomMsg::Kind::Confirm, e->claim);
        m->info = e->confirm_winner;
        outbox_.queue(port, m);
      }
    }
    return;
  }
  if (e->stage != Stage::Growing || e->acked_up || e->pending == 0)
    return;  // stale duplicate
  --e->pending;
  switch (answer) {
    case Answer::Joined:
      e->children.push_back(port);
      e->agg.merge(agg);
      break;
    case Answer::Same:
      break;  // internal (non-tree) edge of the kingdom
    case Answer::Refused:
      e->borders.push_back(port);
      e->agg.foreign = std::max(e->agg.foreign, agg.foreign);
      break;
    case Answer::Defected:
      e->borders.push_back(port);
      e->agg.merge(agg);
      break;
  }
  if (e->pending == 0) finish_stage2(ctx, *e);
}

void KingdomProcess::finish_stage2(Context& ctx, Exped& e) {
  e.acked_up = true;
  const bool live_mine = live_ && my_id_ != e.claim.id;
  if (e.parent != kNoPort) {
    e.victor_expected = true;  // the Joined ack makes the parent await us
    auto m = msg(KingdomMsg::Kind::Ack, e.claim);
    m->answer = static_cast<std::uint8_t>(Answer::Joined);
    m->info = e.agg.foreign;
    m->frontier_open = e.agg.frontier_open;
    m->live_seen = e.agg.live_seen || live_mine;
    outbox_.queue(e.parent, m);
    return;
  }
  // Root: stage 3 — announce the neighbourhood winner down the tree and
  // across every border edge (the double-win information flow).
  e.stage = Stage::Confirmed;
  e.confirm_winner = std::max({e.claim, e.agg.foreign, heard_winner_});
  auto m = msg(KingdomMsg::Kind::Confirm, e.claim);
  m->info = e.confirm_winner;
  for (const PortId p : e.children) outbox_.queue(p, m);
  for (const PortId p : e.borders) outbox_.queue(p, m);
  e.victor_pending = static_cast<std::uint32_t>(e.children.size());
  if (e.victor_pending == 0) send_victor_up(ctx, e);
}

void KingdomProcess::handle_confirm(Context& ctx, PortId port, Claim exped,
                                    Claim winner) {
  heard_winner_ = std::max(heard_winner_, winner);
  Exped* e = find(exped);
  if (!e || e->stage != Stage::Growing || !e->acked_up || e->parent != port)
    return;  // a foreign kingdom's confirm crossing our border: noted above
  e->stage = Stage::Confirmed;
  e->confirm_winner = winner;
  auto m = msg(KingdomMsg::Kind::Confirm, exped);
  m->info = winner;
  for (const PortId p : e->children) outbox_.queue(p, m);
  for (const PortId p : e->borders) outbox_.queue(p, m);
  e->victor_pending = static_cast<std::uint32_t>(e->children.size());
  if (e->victor_pending == 0) send_victor_up(ctx, *e);
}

void KingdomProcess::handle_victor(Context& ctx, PortId port, Claim exped,
                                   Claim winner) {
  Exped* e = find(exped);
  if (!e || e->stage != Stage::Confirmed || e->victor_sent ||
      e->victor_pending == 0)
    return;
  // Only children recorded at CONFIRM time are part of the count; a VICTOR
  // from any other port (e.g. a late joiner a zombie confirmed directly)
  // must not drain a slot that belongs to a real child.
  if (std::find(e->children.begin(), e->children.end(), port) ==
      e->children.end())
    return;
  e->victor_agg = std::max(e->victor_agg, winner);
  --e->victor_pending;
  if (e->victor_pending == 0) send_victor_up(ctx, *e);
}

void KingdomProcess::send_victor_up(Context& ctx, Exped& e) {
  e.victor_sent = true;
  if (e.parent != kNoPort) {
    if (e.victor_expected) {
      auto m = msg(KingdomMsg::Kind::Victor, e.claim);
      m->info = std::max({e.confirm_winner, e.victor_agg, heard_winner_});
      outbox_.queue(e.parent, m);
    }
    // Zombies stay in the map: a straggling child may still answer Joined
    // and needs its CONFIRM relayed (handle_answer).  Completed regular
    // expeditions can be dropped — every port has answered by now.
    if (!e.zombie) expeds_.erase(e.claim);
    return;
  }
  // Root: phase decision.  Copy what we need — launch_phase mutates the map.
  const Exped snapshot = e;
  expeds_.erase(e.claim);
  decide_phase(ctx, snapshot);
}

void KingdomProcess::decide_phase(Context& ctx, const Exped& e) {
  const Claim evidence =
      std::max({e.agg.foreign, e.victor_agg, heard_winner_});
  const bool beaten = evidence > e.claim;
  const bool alone = !beaten && !e.agg.frontier_open && !e.agg.live_seen &&
                     e.agg.foreign.none();
  if (alone) {
    ctx.set_status(Status::Elected);
    decided_ = true;
  } else if (!beaten) {
    launch_phase(ctx);
  } else {
    live_ = false;
    if (!decided_) {
      ctx.set_status(Status::NonElected);
      decided_ = true;
    }
  }
}

void KingdomProcess::on_wake(Context& ctx, std::span<const Envelope> inbox) {
  my_id_ = ctx.uid();
  launch_phase(ctx);
  on_round(ctx, inbox);
}

void KingdomProcess::on_round(Context& ctx, std::span<const Envelope> inbox) {
  for (const auto& env : inbox) {
    const auto* km = dynamic_cast<const KingdomMsg*>(env.msg.get());
    if (!km) continue;
    switch (km->kind) {
      case KingdomMsg::Kind::Elect:
        handle_elect(ctx, env.port, km->exped, km->depth);
        break;
      case KingdomMsg::Kind::Ack: {
        Agg agg;
        agg.foreign = km->info;
        agg.frontier_open = km->frontier_open;
        agg.live_seen = km->live_seen;
        handle_answer(ctx, env.port, km->exped,
                      static_cast<Answer>(km->answer), agg);
        break;
      }
      case KingdomMsg::Kind::Confirm:
        handle_confirm(ctx, env.port, km->exped, km->info);
        break;
      case KingdomMsg::Kind::Victor:
        handle_victor(ctx, env.port, km->exped, km->info);
        break;
    }
  }
  if (outbox_.flush(ctx)) return;  // backlog: stay runnable
  ctx.idle();
}

ProcessFactory make_kingdom(KingdomConfig cfg) {
  return [cfg](NodeId) { return std::make_unique<KingdomProcess>(cfg); };
}

}  // namespace ule
