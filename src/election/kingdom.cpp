#include "election/kingdom.hpp"

#include <algorithm>
#include <memory>
#include <string>

#include "election/channels.hpp"
#include "net/message.hpp"

namespace ule {

namespace {

// Flat wire format (net/message.hpp) on the kingdom channel.  A message
// names its expedition (a Claim: phase + id) and, depending on kind, carries
// either the remaining BFS radius (Elect) or a second Claim (Ack: strongest
// foreign met; Confirm/Victor: the winner).  Layout: word a = exped.id,
// word b = depth or info.id, word c = exped.phase | info.phase << 32; the
// flag byte packs kind (bits 0-1), the Ack answer (bits 2-3), frontier_open
// (bit 4) and live_seen (bit 5).
constexpr std::uint16_t kKingdomType = 1;

enum class Kind : std::uint8_t { Elect, Ack, Confirm, Victor };

// Accounted wire size: two claims (phase counter + id each), a depth
// counter, tag and flags — unchanged from the legacy message type.
constexpr std::uint32_t kKingdomBits =
    wire::kTypeTag + 2 * (wire::kCounter + wire::kIdField) + wire::kCounter +
    2 * wire::kFlag;

FlatMsg msg(Kind k, Claim exped) {
  FlatMsg m;
  m.type = kKingdomType;
  m.channel = channel::kKingdom;
  m.flags = static_cast<std::uint8_t>(k);
  m.bits = kKingdomBits;
  m.a = exped.id;
  m.c = exped.phase;
  return m;
}

void set_info(FlatMsg& m, Claim info) {
  m.b = info.id;
  m.c |= static_cast<std::uint64_t>(info.phase) << 32;
}
void set_depth(FlatMsg& m, std::uint64_t depth) { m.b = depth; }
void set_answer(FlatMsg& m, std::uint8_t a) {
  m.flags |= a << 2;
}
void set_frontier_open(FlatMsg& m, bool v) {
  if (v) m.flags |= 1u << 4;
}
void set_live_seen(FlatMsg& m, bool v) {
  if (v) m.flags |= 1u << 5;
}

Kind kind_of(const FlatMsg& m) { return static_cast<Kind>(m.flags & 3u); }
Claim exped_of(const FlatMsg& m) {
  return Claim{static_cast<std::uint32_t>(m.c & 0xffffffffu), m.a};
}
Claim info_of(const FlatMsg& m) {
  return Claim{static_cast<std::uint32_t>(m.c >> 32), m.b};
}
std::uint64_t depth_of(const FlatMsg& m) { return m.b; }
std::uint8_t answer_of(const FlatMsg& m) { return (m.flags >> 2) & 3u; }
bool frontier_open_of(const FlatMsg& m) { return (m.flags >> 4) & 1u; }
bool live_seen_of(const FlatMsg& m) { return (m.flags >> 5) & 1u; }

}  // namespace

KingdomProcess::Exped* KingdomProcess::find(Claim c) {
  auto it = expeds_.find(c);
  return it == expeds_.end() ? nullptr : &it->second;
}

std::uint64_t KingdomProcess::radius(std::uint32_t phase) const {
  // The radius must STRICTLY exceed the root's eccentricity for the spanning
  // check to close: a node reached with no budget left (remaining == 0) and
  // unexplored ports reports an open frontier, even when those ports lead
  // back into the tree — it has no way to tell.  With radius D+1 every node
  // is reached with budget >= 1 and probes all its ports (getting Same/
  // Refused back), so coverage is detected exactly.  The doubling schedule
  // needs no such care: 2^{p-1} eventually strictly exceeds any eccentricity.
  //
  // Under bounded delivery delay the "eccentricity" that matters is the
  // first-arrival tree depth, not the graph distance: a hop costs up to
  // 1 + delay_bound rounds, and the first claim to ARRIVE may have taken a
  // detour of up to D such hops while the shortest path sat delayed.  The
  // budget must cover that worst-case depth, hence the (1 + delay_bound)
  // factor; fault-free it reduces to the original D + 1 exactly.
  if (cfg_.known_diameter != 0)
    return cfg_.known_diameter * (1 + cfg_.delay_bound) + 1;
  return phase >= 63 ? (std::uint64_t{1} << 62) : (std::uint64_t{1} << (phase - 1));
}

void KingdomProcess::launch_phase(Context& ctx) {
  ++my_phase_;
  const Claim c = my_claim();

  Exped e;
  e.claim = c;
  e.parent = kNoPort;
  e.pending = static_cast<std::uint32_t>(ctx.degree());
  auto [it, inserted] = expeds_.emplace(c, std::move(e));

  current_claim_ = std::max(current_claim_, c);

  if (it->second.pending == 0) {  // isolated node (n == 1): phase is trivial
    finish_stage2(ctx, it->second);
    return;
  }
  FlatMsg m = msg(Kind::Elect, c);
  set_depth(m, radius(my_phase_));
  outbox_.queue_broadcast(ctx, m);
}

void KingdomProcess::defect_from(Context& /*ctx*/, Exped& e,
                                 Claim overrunner) {
  if (e.parent == kNoPort) return;  // roots are never territory
  e.zombie = true;
  if (e.stage == Stage::Growing && !e.acked_up) {
    // We had not answered yet: cut the parent's wait with a Defected ack.
    // The parent lists us as a border, so it will not await our VICTOR but
    // will still send us the CONFIRM, which we relay to our subtree.
    e.acked_up = true;
    FlatMsg m = msg(Kind::Ack, e.claim);
    set_answer(m, static_cast<std::uint8_t>(Answer::Defected));
    set_info(m, std::max(e.agg.foreign, overrunner));
    set_frontier_open(m, e.agg.frontier_open);
    set_live_seen(m, e.agg.live_seen || (live_ && my_id_ != e.claim.id));
    outbox_.queue(e.parent, m);
  } else {
    // We already answered Joined (stage 2 done, awaiting CONFIRM) or are in
    // the victor stage: the parent counts on our VICTOR, so we stay in the
    // expedition and let its remaining stages run their course.  The only
    // effect of the overrun is extra evidence for the upward aggregation.
    e.victor_agg = std::max(e.victor_agg, overrunner);
  }
}

void KingdomProcess::handle_elect(Context& ctx, PortId port, Claim claim,
                                  std::uint64_t depth) {
  if (claim > current_claim_) {
    // Overrun.  Our own (root) expedition, if any, records the collision as
    // foreign evidence but keeps running — the paper's "continues the
    // present phase as usual".
    if (Exped* own = find(my_claim())) {
      own->agg.foreign = std::max(own->agg.foreign, claim);
    }
    // Any foreign expedition we were serving turns into a zombie: it keeps
    // whatever relay duties it still owes (CONFIRM downwards, VICTOR
    // upwards), so its convergecasts always terminate.
    if (!current_claim_.none() && current_claim_ != my_claim()) {
      if (Exped* old = find(current_claim_)) defect_from(ctx, *old, claim);
    }

    current_claim_ = claim;
    Exped t;
    t.claim = claim;
    t.parent = port;
    const std::uint64_t remaining = depth - 1;
    const auto other_ports = static_cast<std::uint32_t>(ctx.degree()) - 1;
    if (remaining > 0 && other_ports > 0) {
      t.pending = other_ports;
      FlatMsg m = msg(Kind::Elect, claim);
      set_depth(m, remaining);
      for (PortId p = 0; p < ctx.degree(); ++p) {
        if (p != port) outbox_.queue(p, m);
      }
      expeds_.emplace(claim, std::move(t));
    } else {
      // Leaf: answer straight away.  The frontier stays open if the radius
      // ran out while unexplored ports remain.
      t.acked_up = true;
      t.victor_expected = true;
      FlatMsg m = msg(Kind::Ack, claim);
      set_answer(m, static_cast<std::uint8_t>(Answer::Joined));
      set_frontier_open(m, remaining == 0 && other_ports > 0);
      set_live_seen(m, live_ && my_id_ != claim.id);
      outbox_.queue(port, m);
      expeds_.emplace(claim, std::move(t));
    }
  } else if (claim == current_claim_) {
    FlatMsg m = msg(Kind::Ack, claim);
    set_answer(m, static_cast<std::uint8_t>(Answer::Same));
    outbox_.queue(port, m);
  } else {
    FlatMsg m = msg(Kind::Ack, claim);
    set_answer(m, static_cast<std::uint8_t>(Answer::Refused));
    set_info(m, current_claim_);
    outbox_.queue(port, m);
  }
}

void KingdomProcess::handle_answer(Context& ctx, PortId port, Claim exped,
                                   Answer answer, const Agg& agg) {
  Exped* e = find(exped);
  if (!e) return;
  if (e->zombie) {
    // A child that joined us before we were overrun.  It still needs the
    // CONFIRM wave: record it if the wave has not passed yet, otherwise
    // relay the winner directly.  (Its VICTOR is not awaited: zombies set
    // victor_pending from the children recorded at CONFIRM time, and
    // handle_victor ignores ports outside that set.)
    if (answer == Answer::Joined) {
      if (e->stage == Stage::Growing) {
        e->children.push_back(port);
      } else {
        FlatMsg m = msg(Kind::Confirm, e->claim);
        set_info(m, e->confirm_winner);
        outbox_.queue(port, m);
      }
    }
    return;
  }
  if (e->stage != Stage::Growing || e->acked_up || e->pending == 0)
    return;  // stale duplicate
  --e->pending;
  switch (answer) {
    case Answer::Joined:
      e->children.push_back(port);
      e->agg.merge(agg);
      break;
    case Answer::Same:
      break;  // internal (non-tree) edge of the kingdom
    case Answer::Refused:
      e->borders.push_back(port);
      e->agg.foreign = std::max(e->agg.foreign, agg.foreign);
      break;
    case Answer::Defected:
      e->borders.push_back(port);
      e->agg.merge(agg);
      break;
  }
  if (e->pending == 0) finish_stage2(ctx, *e);
}

void KingdomProcess::finish_stage2(Context& ctx, Exped& e) {
  e.acked_up = true;
  const bool live_mine = live_ && my_id_ != e.claim.id;
  if (e.parent != kNoPort) {
    e.victor_expected = true;  // the Joined ack makes the parent await us
    FlatMsg m = msg(Kind::Ack, e.claim);
    set_answer(m, static_cast<std::uint8_t>(Answer::Joined));
    set_info(m, e.agg.foreign);
    set_frontier_open(m, e.agg.frontier_open);
    set_live_seen(m, e.agg.live_seen || live_mine);
    outbox_.queue(e.parent, m);
    return;
  }
  // Root: stage 3 — announce the neighbourhood winner down the tree and
  // across every border edge (the double-win information flow).
  e.stage = Stage::Confirmed;
  e.confirm_winner = std::max({e.claim, e.agg.foreign, heard_winner_});
  FlatMsg m = msg(Kind::Confirm, e.claim);
  set_info(m, e.confirm_winner);
  for (const PortId p : e.children) outbox_.queue(p, m);
  for (const PortId p : e.borders) outbox_.queue(p, m);
  e.victor_pending = static_cast<std::uint32_t>(e.children.size());
  if (e.victor_pending == 0) send_victor_up(ctx, e);
}

void KingdomProcess::handle_confirm(Context& ctx, PortId port, Claim exped,
                                    Claim winner) {
  heard_winner_ = std::max(heard_winner_, winner);
  Exped* e = find(exped);
  if (!e || e->stage != Stage::Growing || !e->acked_up || e->parent != port)
    return;  // a foreign kingdom's confirm crossing our border: noted above
  e->stage = Stage::Confirmed;
  e->confirm_winner = winner;
  FlatMsg m = msg(Kind::Confirm, exped);
  set_info(m, winner);
  for (const PortId p : e->children) outbox_.queue(p, m);
  for (const PortId p : e->borders) outbox_.queue(p, m);
  e->victor_pending = static_cast<std::uint32_t>(e->children.size());
  if (e->victor_pending == 0) send_victor_up(ctx, *e);
}

void KingdomProcess::handle_victor(Context& ctx, PortId port, Claim exped,
                                   Claim winner) {
  Exped* e = find(exped);
  if (!e || e->stage != Stage::Confirmed || e->victor_sent ||
      e->victor_pending == 0)
    return;
  // Only children recorded at CONFIRM time are part of the count; a VICTOR
  // from any other port (e.g. a late joiner a zombie confirmed directly)
  // must not drain a slot that belongs to a real child.
  if (std::find(e->children.begin(), e->children.end(), port) ==
      e->children.end())
    return;
  e->victor_agg = std::max(e->victor_agg, winner);
  --e->victor_pending;
  if (e->victor_pending == 0) send_victor_up(ctx, *e);
}

void KingdomProcess::send_victor_up(Context& ctx, Exped& e) {
  e.victor_sent = true;
  if (e.parent != kNoPort) {
    if (e.victor_expected) {
      FlatMsg m = msg(Kind::Victor, e.claim);
      set_info(m, std::max({e.confirm_winner, e.victor_agg, heard_winner_}));
      outbox_.queue(e.parent, m);
    }
    // Zombies stay in the map: a straggling child may still answer Joined
    // and needs its CONFIRM relayed (handle_answer).  Completed regular
    // expeditions can be dropped — every port has answered by now.
    if (!e.zombie) expeds_.erase(e.claim);
    return;
  }
  // Root: phase decision.  Copy what we need — launch_phase mutates the map.
  const Exped snapshot = e;
  expeds_.erase(e.claim);
  decide_phase(ctx, snapshot);
}

void KingdomProcess::decide_phase(Context& ctx, const Exped& e) {
  const Claim evidence =
      std::max({e.agg.foreign, e.victor_agg, heard_winner_});
  const bool beaten = evidence > e.claim;
  const bool alone = !beaten && !e.agg.frontier_open && !e.agg.live_seen &&
                     e.agg.foreign.none();
  if (alone) {
    ctx.set_status(Status::Elected);
    decided_ = true;
  } else if (!beaten) {
    launch_phase(ctx);
  } else {
    live_ = false;
    if (!decided_) {
      ctx.set_status(Status::NonElected);
      decided_ = true;
    }
  }
}

void KingdomProcess::on_wake(Context& ctx, std::span<const Envelope> inbox) {
  my_id_ = ctx.uid();
  launch_phase(ctx);
  on_round(ctx, inbox);
}

void KingdomProcess::on_round(Context& ctx, std::span<const Envelope> inbox) {
  for (const auto& env : inbox) {
    if (env.flat.type != kKingdomType ||
        env.flat.channel != channel::kKingdom)
      continue;
    const Claim exped = exped_of(env.flat);
    switch (kind_of(env.flat)) {
      case Kind::Elect:
        handle_elect(ctx, env.port, exped, depth_of(env.flat));
        break;
      case Kind::Ack: {
        Agg agg;
        agg.foreign = info_of(env.flat);
        agg.frontier_open = frontier_open_of(env.flat);
        agg.live_seen = live_seen_of(env.flat);
        handle_answer(ctx, env.port, exped,
                      static_cast<Answer>(answer_of(env.flat)), agg);
        break;
      }
      case Kind::Confirm:
        handle_confirm(ctx, env.port, exped, info_of(env.flat));
        break;
      case Kind::Victor:
        handle_victor(ctx, env.port, exped, info_of(env.flat));
        break;
    }
  }
  if (outbox_.flush(ctx)) return;  // backlog: stay runnable
  ctx.idle();
}

ProcessFactory make_kingdom(KingdomConfig cfg) {
  return [cfg](NodeId) { return std::make_unique<KingdomProcess>(cfg); };
}

}  // namespace ule
