// Corollary 4.5: universal leader election with NO knowledge of n (or D, m).
//
// Phase A (size estimation): every node u flips a fair coin until heads;
// X_u = number of flips.  The maximum X̄ = max_u X_u satisfies, whp,
// log2(n) - log2(log n) <= X̄ <= 2 log2(n), so n̂ = 2^X̄ ∈ [n/log n, n^2].
// The maxima flood through a max-wins wave pool; the node holding the global
// maximum detects termination through echoes (the paper's echo mechanism)
// and broadcasts DONE(X̄) down its wave tree, which spans every node.
//
// Phase B (election): upon DONE, every node becomes a candidate (f(n̂) = n̂),
// draws a rank from [1, n̂^4], and runs the least-element-list election with
// the *unique node ID as tiebreak* — this makes the algorithm succeed with
// probability 1 (Las Vegas) while keeping O(D) time and, whp,
// O(m·min(log n, D)) messages.  In anonymous networks the tiebreak falls
// back to 64 private random bits (failure probability ~2^-64 per pair).

#pragma once

#include "election/channels.hpp"
#include "election/election.hpp"
#include "election/pif.hpp"
#include "net/process.hpp"

namespace ule {

/// DONE(x): the completed maximum X̄ flowing down the estimation wave tree.
/// Rides the size-estimate channel on the flat fast path; the tag is
/// distinct from the wave pool's forward/echo tags so both coexist on one
/// channel (WavePool ignores foreign tags).
namespace sizewire {
inline constexpr std::uint16_t kDone = 3;

inline FlatMsg done(std::uint64_t x) {
  FlatMsg m;
  m.type = kDone;
  m.channel = channel::kSizeEstimate;
  m.bits = wire::kTypeTag + wire::kIdField;
  m.a = x;
  return m;
}

inline bool is_done(const Envelope& env) {
  return env.flat.type == kDone && env.flat.channel == channel::kSizeEstimate;
}
}  // namespace sizewire

class SizeEstimateElectProcess final : public Process {
 public:
  SizeEstimateElectProcess() {
    estimate_.pace_through(&outbox_);
    elect_.pace_through(&outbox_);
  }

  void on_wake(Context& ctx, std::span<const Envelope> inbox) override;
  void on_round(Context& ctx, std::span<const Envelope> inbox) override;

  // Instrumentation.
  std::uint64_t coin_flips() const { return x_; }
  std::uint64_t n_hat() const { return n_hat_; }  ///< 0 until DONE received
  std::size_t le_list_size() const { return elect_.adopted_count(); }

 private:
  void begin_phase_b(Context& ctx, std::uint64_t x_bar);
  void finish_round(Context& ctx);

  PortOutbox outbox_;
  WavePool estimate_{channel::kSizeEstimate, /*max_wins=*/true};
  WavePool elect_{channel::kLeastEl, /*max_wins=*/false};
  std::uint64_t x_ = 0;
  std::uint64_t n_hat_ = 0;
  bool phase_b_ = false;
  bool originated_election_ = false;
  bool decided_ = false;
};

ProcessFactory make_size_estimate_elect();

}  // namespace ule
