#include "election/explicit_elect.hpp"

#include <vector>

namespace ule {

// A Context that passes everything through to the engine's context except
// the scheduling verbs (idle/sleep/halt) and set_status, which are captured
// so the wrapper can arbitrate between the inner algorithm's wishes and its
// own announcement duties.
class ExplicitProcess::PassThroughCtx final : public Context {
 public:
  PassThroughCtx(Context& real, ExplicitProcess::Wish& wish, Round& deadline,
                 bool& elected)
      : real_(real), wish_(wish), deadline_(deadline), elected_(elected) {}

  NodeId slot() const override { return real_.slot(); }
  std::size_t degree() const override { return real_.degree(); }
  bool anonymous() const override { return real_.anonymous(); }
  Uid uid() const override { return real_.uid(); }
  Round round() const override { return real_.round(); }
  Rng& rng() override { return real_.rng(); }
  const Knowledge& knowledge() const override { return real_.knowledge(); }
  void send(PortId port, MessagePtr msg) override {
    real_.send(port, std::move(msg));
  }
  void send(PortId port, const FlatMsg& msg) override {
    real_.send(port, msg);
  }
  Status status() const override { return real_.status(); }

  void set_status(Status s) override {
    real_.set_status(s);
    if (s == Status::Elected) elected_ = true;
  }
  void idle() override { wish_ = Wish::Idle; }
  void sleep_until(Round r) override {
    wish_ = Wish::Sleep;
    deadline_ = r;
  }
  void halt() override { wish_ = Wish::Halt; }

 private:
  Context& real_;
  ExplicitProcess::Wish& wish_;
  Round& deadline_;
  bool& elected_;
};

void ExplicitProcess::announce(Context& ctx, std::uint64_t token,
                               PortId skip) {
  announced_ = true;
  known_leader_ = token;
  const FlatMsg msg = explicitwire::leader(token);
  for (PortId p = 0; p < ctx.degree(); ++p) {
    if (p != skip) outbox_.queue(p, msg);
  }
}

void ExplicitProcess::run_inner(Context& ctx, std::span<const Envelope> inbox,
                                bool wake) {
  // Split the inbox: announcements are the wrapper's, the rest is the inner
  // algorithm's.
  std::vector<Envelope> inner_inbox;
  inner_inbox.reserve(inbox.size());
  PortId first_announce_port = kNoPort;
  std::uint64_t announce_token = 0;
  for (const auto& env : inbox) {
    if (explicitwire::is_leader(env)) {
      if (first_announce_port == kNoPort) {
        first_announce_port = env.port;
        announce_token = env.flat.a;
      }
    } else {
      inner_inbox.push_back(env);
    }
  }
  if (first_announce_port != kNoPort && !announced_) {
    announce(ctx, announce_token, first_announce_port);
  }

  // Deliver the round to the inner algorithm only when the engine itself
  // would have: it never slept, it has messages, or its deadline fired.
  const bool due =
      wake || inner_wish_ == Wish::Running || !inner_inbox.empty() ||
      (inner_wish_ == Wish::Sleep && ctx.round() >= inner_deadline_);
  if (due && inner_wish_ != Wish::Halt) {
    inner_wish_ = Wish::Running;
    bool elected_now = false;
    PassThroughCtx pc(ctx, inner_wish_, inner_deadline_, elected_now);
    if (wake) {
      inner_->on_wake(pc, inner_inbox);
    } else {
      inner_->on_round(pc, inner_inbox);
    }
    if (elected_now) inner_elected_ = true;
  }

  // The moment this node wins the inner election, announce its identity.
  if (inner_elected_ && !announced_) {
    const std::uint64_t token = ctx.anonymous() ? ctx.rng()() : ctx.uid();
    announce(ctx, token, kNoPort);
  }

  // Arbitrate scheduling: announcement backlog keeps us runnable; otherwise
  // follow the inner algorithm, except that a halt is deferred until the
  // announcement has passed through this node (a halted node would break
  // the flood).
  const bool backlog = outbox_.flush(ctx);
  if (backlog) return;  // stay runnable
  switch (inner_wish_) {
    case Wish::Running:
      return;
    case Wish::Idle:
      ctx.idle();
      return;
    case Wish::Sleep:
      ctx.sleep_until(inner_deadline_);
      return;
    case Wish::Halt:
      if (known_leader_.has_value()) {
        ctx.halt();
      } else {
        ctx.idle();  // wait for the announcement before disappearing
      }
      return;
  }
}

void ExplicitProcess::on_wake(Context& ctx, std::span<const Envelope> inbox) {
  run_inner(ctx, inbox, /*wake=*/true);
}

void ExplicitProcess::on_round(Context& ctx, std::span<const Envelope> inbox) {
  run_inner(ctx, inbox, /*wake=*/false);
}

ProcessFactory make_explicit(ProcessFactory inner) {
  return [inner = std::move(inner)](NodeId slot) {
    return std::make_unique<ExplicitProcess>(inner(slot));
  };
}

}  // namespace ule
