// Theorem 4.1: a deterministic universal leader election algorithm with O(m)
// messages and arbitrary (finite, ID-dependent) time — the generalization of
// Frederickson–Lynch's ring algorithm to arbitrary graphs.
//
// Every node launches an *annexing agent* carrying its ID that walks the
// graph in DFS order (implemented, as the paper notes, by messages: the agent
// "moving" over an edge is one message; DFS markings live at the nodes).
// Rate limiting does the message bookkeeping: an agent with ID i takes one
// DFS step every 2^i rounds, so the agent with the k-th smallest ID performs
// at most 4m / 2^{k-1} steps before the smallest agent's full 4m-step DFS
// destroys it — a geometric series summing to O(m).
//
// Destruction rules (the paper's): an agent arriving at a node previously
// visited by a smaller-ID agent dies; an agent waiting at a node dies when a
// smaller-ID agent arrives; edge contention resolves in favour of the
// smaller ID.  The smallest-ID agent completes its DFS, returns home, and
// its origin elects itself.  Every other node is visited by the winning
// agent, so every loser observes a smaller ID locally and decides
// non-elected — making the election implicit-complete.
//
// Time is Θ(m · 2^{i_min}) rounds where i_min is the smallest ID: faithful
// to the paper ("depends exponentially on the size of the smallest ID") and
// simulable thanks to engine fast-forwarding.  Step delays cap at 2^62; a
// capped agent is effectively frozen, which only matters for assignments
// whose smallest ID exceeds 62 — those runs are as infeasible for us as for
// a real network.
//
// Adversarial wakeup (paper Section 4.1): with wake_broadcast enabled, each
// spontaneously woken node first floods a wakeup wave (2m messages, <= D
// rounds) so all nodes participate; total stays O(m).

#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "election/election.hpp"
#include "net/message.hpp"
#include "net/process.hpp"

namespace ule {

struct DfsConfig {
  /// Flood a wakeup wave before launching agents (needed under adversarial
  /// wakeup; pure overhead under simultaneous wakeup).
  bool wake_broadcast = false;
  /// Step delay exponent cap (delay = 2^min(ID, cap) rounds).
  std::uint32_t delay_cap = 62;
};

class DfsElectionProcess final : public Process {
 public:
  explicit DfsElectionProcess(DfsConfig cfg) : cfg_(cfg) {}

  void on_wake(Context& ctx, std::span<const Envelope> inbox) override;
  void on_round(Context& ctx, std::span<const Envelope> inbox) override;

  Uid min_seen() const { return min_seen_; }

 private:
  enum class StepMode : std::uint8_t { Explore, BounceBack };

  struct AgentRec {
    bool visited = false;
    PortId parent = kNoPort;  ///< kNoPort at the agent's origin
    PortId cursor = 0;        ///< next port to try
  };

  struct Waiting {
    Uid id = 0;
    Round fire = 0;
    StepMode mode = StepMode::Explore;
    PortId bounce_port = kNoPort;
  };

  Round next_fire(Round now, Uid id) const;
  void launch_own_agent(Context& ctx);
  void handle_arrival(Context& ctx, const Envelope& env);
  void take_step(Context& ctx);
  void reschedule(Context& ctx);

  DfsConfig cfg_;
  std::map<Uid, AgentRec> agents_;
  Uid min_seen_ = ~Uid{0};
  std::optional<Waiting> waiting_;
  bool started_ = false;
  bool wake_sent_ = false;
  bool decided_ = false;
};

ProcessFactory make_dfs_election(DfsConfig cfg = {});

}  // namespace ule
