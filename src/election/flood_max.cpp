#include "election/flood_max.hpp"

#include <stdexcept>

#include "election/channels.hpp"

namespace ule {

void FloodMaxProcess::finish_round(Context& ctx) {
  if (outbox_.flush(ctx)) return;  // backlog: stay runnable for the next round
  ctx.idle();
}

void FloodMaxProcess::on_wake(Context& ctx, std::span<const Envelope> inbox) {
  if (ctx.anonymous())
    throw std::logic_error("flood-max is deterministic and requires IDs");
  if (pool_.originate(ctx, WaveKey{ctx.uid(), ctx.uid()})) {
    ctx.set_status(Status::Elected);  // isolated node: trivially the max
    decided_ = true;
  }
  if (!inbox.empty()) {
    on_round(ctx, inbox);
  } else {
    finish_round(ctx);
  }
}

void FloodMaxProcess::on_round(Context& ctx, std::span<const Envelope> inbox) {
  const WavePool::Events ev = pool_.on_round(ctx, inbox);
  if (!decided_) {
    if (!pool_.own_is_best()) {
      ctx.set_status(Status::NonElected);
      decided_ = true;
    } else if (ev.own_complete) {
      ctx.set_status(Status::Elected);
      decided_ = true;
    }
  }
  finish_round(ctx);
}

ProcessFactory make_flood_max() {
  return [](NodeId) { return std::make_unique<FloodMaxProcess>(); };
}

}  // namespace ule
