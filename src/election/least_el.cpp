#include "election/least_el.hpp"

#include <algorithm>
#include <cmath>

#include "election/channels.hpp"
#include "net/ids.hpp"

namespace ule {

LeastElConfig LeastElConfig::all_candidates() { return {}; }

LeastElConfig LeastElConfig::theorem_4_4(double f_n) {
  LeastElConfig c;
  c.f = f_n;
  return c;
}

LeastElConfig LeastElConfig::variant_A(std::uint64_t n) {
  LeastElConfig c;
  c.f = std::max(1.0, std::log2(static_cast<double>(n)));
  return c;
}

LeastElConfig LeastElConfig::variant_B(double epsilon) {
  LeastElConfig c;
  c.f = 4.0 * std::log(1.0 / epsilon);
  return c;
}

LeastElConfig LeastElConfig::las_vegas(std::uint64_t diameter) {
  LeastElConfig c;
  c.f = 2.0;  // Θ(1) expected candidates; constant success prob per epoch
  c.epoch_rounds = 3 * diameter + 4;  // wave + echoes fit in one epoch
  return c;
}

namespace {
std::uint64_t auto_rank_space(const Context& ctx, std::uint64_t configured) {
  if (configured != 0) return configured;
  if (ctx.knowledge().n) return id_space_size(*ctx.knowledge().n);
  return std::uint64_t{1} << 62;
}
}  // namespace

void LeastElProcess::start_epoch(Context& ctx) {
  ++epochs_;
  epoch_start_ = ctx.round();
  saw_wave_this_epoch_ = false;
  pool_.reset();

  double prob = 1.0;
  if (cfg_.f >= 0.0) {
    const auto n = static_cast<double>(ctx.knowledge().require_n());
    prob = std::min(1.0, cfg_.f / n);
  }
  candidate_ = ctx.rng().bernoulli(prob);
  decided_ = false;

  if (candidate_) {
    ctx.set_status(Status::Undecided);
    WaveKey key;
    key.primary = ctx.rng().in_range(1, auto_rank_space(ctx, cfg_.rank_space));
    switch (cfg_.tiebreak) {
      case LeastElConfig::Tiebreak::Uid:
        key.tiebreak = ctx.anonymous() ? ctx.rng()() : ctx.uid();
        break;
      case LeastElConfig::Tiebreak::Random:
        key.tiebreak = ctx.rng()();
        break;
      case LeastElConfig::Tiebreak::None:
        key.tiebreak = 0;
        break;
    }
    if (pool_.originate(ctx, key)) {
      ctx.set_status(Status::Elected);  // isolated node: trivially least
      decided_ = true;
    }
    saw_wave_this_epoch_ = true;
  } else {
    // Implicit leader election: a node that will never elect itself can
    // decide non-elected right away.
    ctx.set_status(Status::NonElected);
  }
}

void LeastElProcess::finish_round(Context& ctx) {
  if (outbox_.flush(ctx)) return;  // backlog: stay runnable for the next round
  if (cfg_.epoch_rounds > 0 && !decided_ && !saw_wave_this_epoch_) {
    ctx.sleep_until(epoch_start_ + cfg_.epoch_rounds);
  } else {
    ctx.idle();
  }
}

void LeastElProcess::on_wake(Context& ctx, std::span<const Envelope> inbox) {
  start_epoch(ctx);
  if (!inbox.empty()) on_round(ctx, inbox);  // adversarial wakeup by message
  else finish_round(ctx);
}

void LeastElProcess::on_round(Context& ctx, std::span<const Envelope> inbox) {
  // Las Vegas restart: the epoch elapsed and no wave was ever seen, so (by
  // the flooding argument) no candidate existed anywhere.  Every node
  // reaches this conclusion at the same round; all re-flip candidacy.
  if (cfg_.epoch_rounds > 0 && !saw_wave_this_epoch_ &&
      ctx.round() >= epoch_start_ + cfg_.epoch_rounds) {
    start_epoch(ctx);
  }

  const WavePool::Events ev = pool_.on_round(ctx, inbox);
  if (ev.any_wave_seen) saw_wave_this_epoch_ = true;

  if (!decided_) {
    if (candidate_ && pool_.has_best() && !pool_.own_is_best()) {
      // Some strictly smaller rank exists; we can never win.
      ctx.set_status(Status::NonElected);
      decided_ = true;
    } else if (ev.own_complete && pool_.own_is_best()) {
      // Our wave echoed back from the whole reachable graph without meeting
      // anything smaller: we hold the least element.
      ctx.set_status(Status::Elected);
      decided_ = true;
    }
  }
  finish_round(ctx);
}

ProcessFactory make_least_el(LeastElConfig cfg) {
  return [cfg](NodeId) { return std::make_unique<LeastElProcess>(cfg); };
}

}  // namespace ule
