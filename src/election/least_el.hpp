// The least-element-list election family (Section 4.2).
//
// Each candidate draws a random rank from [1, rank_space] and floods it; a
// node adopts strictly smaller ranks (growing its least-element list le_v)
// and forwards each adopted entry once per incident edge; echoes provide
// termination detection (see pif.hpp).  The candidate holding the globally
// smallest (rank, tiebreak) pair learns completion of its own wave and
// elects itself.
//
// One process class covers the whole family via configuration:
//   * Theorem 4.4   — candidacy probability f(n)/n, knowledge of n:
//       f(n) = n         : the [11] baseline, O(m log n) msgs expected,
//       f(n) = log n     : variant (A), O(m log log n) msgs, whp success,
//       f(n) = 4 ln(1/ε) : variant (B), O(m) msgs, success >= 1-ε.
//     All take O(D) rounds; success prob is 1 - e^{-Θ(f(n))} (at least one
//     candidate must exist).
//   * Corollary 4.6 — f(n) ∈ Θ(1) plus restart epochs of Θ(D) rounds
//     (knowledge of n and D): a Las Vegas algorithm, success probability 1,
//     expected O(D) time and expected O(m) messages.
//   * Anonymous networks — candidacy and ranks use only private coins; with
//     tiebreak = Random the failure probability is the probability of a
//     full (rank, tiebreak) collision.

#pragma once

#include <cstdint>
#include <memory>

#include "election/channels.hpp"
#include "election/election.hpp"
#include "election/pif.hpp"
#include "net/process.hpp"

namespace ule {

struct LeastElConfig {
  /// Expected number of candidates f(n); candidacy probability is
  /// min(1, f / n) with n taken from Knowledge.  f < 0 means "every node is
  /// a candidate" (no knowledge of n needed).
  double f = -1.0;

  /// Rank domain [1, rank_space]; 0 = auto (n^4 when n is known, else 2^62).
  /// Shrinking this is the collision ablation.
  std::uint64_t rank_space = 0;

  enum class Tiebreak : std::uint8_t {
    Uid,     ///< unique IDs break rank ties (Corollary 4.5; success prob 1)
    Random,  ///< 64 private random bits (anonymous networks)
    None,    ///< no tiebreak: exposes rank collisions (ablation)
  };
  Tiebreak tiebreak = Tiebreak::Uid;

  /// Corollary 4.6: restart epoch length in rounds (0 = no restarts).
  /// Requires simultaneous wakeup.  Use las_vegas() to size it from D.
  Round epoch_rounds = 0;

  // ---- named constructions matching the paper's results ----
  static LeastElConfig all_candidates();           ///< [11]; Cor 4.5 phase 2
  static LeastElConfig theorem_4_4(double f_n);    ///< general f(n)
  static LeastElConfig variant_A(std::uint64_t n); ///< f = log2 n
  static LeastElConfig variant_B(double epsilon);  ///< f = 4 ln(1/ε)
  static LeastElConfig las_vegas(std::uint64_t diameter);  ///< Cor 4.6
};

class LeastElProcess final : public Process {
 public:
  explicit LeastElProcess(LeastElConfig cfg) : cfg_(cfg) {
    pool_.pace_through(&outbox_);
  }

  void on_wake(Context& ctx, std::span<const Envelope> inbox) override;
  void on_round(Context& ctx, std::span<const Envelope> inbox) override;

  // Instrumentation (property tests, Lemma 4.3).
  bool is_candidate() const { return candidate_; }
  std::size_t le_list_size() const { return pool_.adopted_count(); }
  std::uint64_t epochs_started() const { return epochs_; }

 private:
  void start_epoch(Context& ctx);
  void finish_round(Context& ctx);

  LeastElConfig cfg_;
  PortOutbox outbox_;
  WavePool pool_{channel::kLeastEl, /*max_wins=*/false};
  bool candidate_ = false;
  bool decided_ = false;
  bool saw_wave_this_epoch_ = false;
  Round epoch_start_ = 0;
  std::uint64_t epochs_ = 0;
};

/// Factory for run_election().
ProcessFactory make_least_el(LeastElConfig cfg);

}  // namespace ule
