#include "election/sublinear_complete.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <string>

#include "election/channels.hpp"
#include "net/ids.hpp"
#include "net/message.hpp"

namespace ule {

namespace {

// Flat wire format (net/message.hpp): a QUERY carries the candidate's
// (rank, tiebreak); a VERDICT answers with the maximum pair seen.  The
// verdict bit rides in the flag byte; rank/tiebreak in words a/b.
constexpr std::uint16_t kSublinearType = 1;
constexpr std::uint8_t kVerdictFlag = 1;

FlatMsg sublinear_msg(bool verdict, std::uint64_t rank,
                      std::uint64_t tiebreak) {
  FlatMsg m;
  m.type = kSublinearType;
  m.channel = channel::kSublinear;
  m.flags = verdict ? kVerdictFlag : 0;
  m.bits = wire::kTypeTag + 2 * wire::kIdField + wire::kFlag;
  m.a = rank;
  m.b = tiebreak;
  return m;
}

bool is_sublinear(const Envelope& env) {
  return env.flat.type == kSublinearType &&
         env.flat.channel == channel::kSublinear;
}

}  // namespace

void SublinearCompleteProcess::on_wake(Context& ctx,
                                       std::span<const Envelope> inbox) {
  const std::uint64_t n = ctx.knowledge().require_n();
  if (ctx.degree() + 1 != n) {
    throw std::logic_error(
        "sublinear election requires a complete graph (degree = n-1)");
  }

  const double dn = static_cast<double>(n);
  const double ln_n = std::log(std::max(2.0, dn));
  candidate_ = ctx.rng().bernoulli(
      std::min(1.0, cfg_.candidate_factor * ln_n / dn));

  if (!candidate_) {
    ctx.set_status(Status::NonElected);
    decided_ = true;
    ctx.idle();
    if (!inbox.empty()) on_round(ctx, inbox);
    return;
  }

  const std::uint64_t space =
      cfg_.rank_space != 0 ? cfg_.rank_space : id_space_size(n);
  rank_ = ctx.rng().in_range(1, space);
  tiebreak_ = ctx.rng()();

  const auto want = static_cast<std::size_t>(
      std::ceil(cfg_.referee_factor * std::sqrt(dn * ln_n)));
  const std::size_t r = std::min(ctx.degree(), want);
  expected_verdicts_ = r;
  if (r == 0) {  // n == 1: the sole node is the sole candidate
    ctx.set_status(Status::Elected);
    decided_ = true;
    ctx.idle();
    return;
  }

  // r distinct random ports via a partial Fisher–Yates shuffle.
  std::vector<PortId> ports(ctx.degree());
  for (PortId p = 0; p < ctx.degree(); ++p) ports[p] = p;
  for (std::size_t i = 0; i < r; ++i) {
    const std::size_t j = i + ctx.rng().below(ports.size() - i);
    std::swap(ports[i], ports[j]);
    ctx.send(ports[i], sublinear_msg(false, rank_, tiebreak_));
  }
  ctx.idle();
  if (!inbox.empty()) on_round(ctx, inbox);
}

void SublinearCompleteProcess::on_round(Context& ctx,
                                        std::span<const Envelope> inbox) {
  // Referee duty: answer this round's queries with the maximum (rank,
  // tiebreak) among them — every query arrives in the same round under
  // simultaneous wakeup, so one pass suffices.  A candidate referee has
  // also "seen" its own pair and must include it: with only mutual referees
  // (n = 2, or tiny referee sets) the weaker candidate would otherwise hear
  // nothing but its own query echoed back and both would elect.
  std::uint64_t best_rank = candidate_ ? rank_ : 0;
  std::uint64_t best_tb = candidate_ ? tiebreak_ : 0;
  std::vector<PortId> query_ports;
  for (const auto& env : inbox) {
    if (!is_sublinear(env) || (env.flat.flags & kVerdictFlag)) continue;
    ++queries_seen_;
    query_ports.push_back(env.port);
    if (std::pair(env.flat.a, env.flat.b) > std::pair(best_rank, best_tb)) {
      best_rank = env.flat.a;
      best_tb = env.flat.b;
    }
  }
  if (!query_ports.empty()) {
    const FlatMsg v = sublinear_msg(true, best_rank, best_tb);
    for (const PortId p : query_ports) ctx.send(p, v);
  }

  // Candidate duty: tally verdicts.
  if (candidate_ && !decided_) {
    for (const auto& env : inbox) {
      if (!is_sublinear(env) || !(env.flat.flags & kVerdictFlag)) continue;
      ++verdicts_seen_;
      if (std::pair(env.flat.a, env.flat.b) > std::pair(rank_, tiebreak_))
        lost_ = true;
    }
    if (verdicts_seen_ >= expected_verdicts_) {
      ctx.set_status(lost_ ? Status::NonElected : Status::Elected);
      decided_ = true;
    }
  }
  ctx.idle();
}

ProcessFactory make_sublinear_complete(SublinearConfig cfg) {
  return [cfg](NodeId) {
    return std::make_unique<SublinearCompleteProcess>(cfg);
  };
}

}  // namespace ule
