#include "election/trivial_random.hpp"

#include <memory>

namespace ule {

ProcessFactory make_trivial_random() {
  return [](NodeId) { return std::make_unique<TrivialRandomProcess>(); };
}

}  // namespace ule
