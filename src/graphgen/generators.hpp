// Graph family generators.
//
// Everything the benchmark harness sweeps over: classical families (cycle,
// complete, star, grid, hypercube, ...), random connected G(n,m) (the "any n
// and m" of Theorem 3.1's statement), random regular graphs (expanders, the
// family where [14] beats the Ω(n) folklore bound), and the lollipop graph
// that is the G0 building block of the dumbbell construction.

#pragma once

#include <cstdint>

#include "net/graph.hpp"
#include "net/rng.hpp"

namespace ule {

Graph make_path(std::size_t n);
Graph make_cycle(std::size_t n);
Graph make_star(std::size_t n);                 ///< node 0 is the hub
Graph make_complete(std::size_t n);
Graph make_complete_bipartite(std::size_t a, std::size_t b);
Graph make_grid(std::size_t rows, std::size_t cols);
Graph make_torus(std::size_t rows, std::size_t cols);
Graph make_hypercube(unsigned dim);
Graph make_balanced_tree(std::size_t n, std::size_t arity);

/// Clique K_k with a path of `tail` extra nodes attached to clique node 0.
/// (The fixed-diameter dumbbell halves are built from these.)
Graph make_lollipop(std::size_t clique, std::size_t tail);

/// Two cliques K_k joined by a path of `bridge_len` edges.
Graph make_barbell(std::size_t clique, std::size_t bridge_len);

/// Connected uniform-ish G(n,m): a random spanning tree plus m-(n-1) random
/// extra edges (requires n-1 <= m <= n(n-1)/2).
Graph make_random_connected(std::size_t n, std::size_t m, Rng& rng);

/// Random d-regular graph via the pairing model with restarts (n*d even,
/// d < n).  Connected with high probability for d >= 3; retries until
/// simple AND connected so callers can rely on it.
Graph make_random_regular(std::size_t n, std::size_t d, Rng& rng);

}  // namespace ule
