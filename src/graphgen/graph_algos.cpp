#include "graphgen/graph_algos.hpp"

#include <algorithm>
#include <stdexcept>

namespace ule {

std::vector<std::uint32_t> bfs_distances(const Graph& g, NodeId src) {
  std::vector<std::uint32_t> dist(g.n(), kUnreachable);
  std::vector<NodeId> frontier{src}, next;
  dist[src] = 0;
  std::uint32_t d = 0;
  while (!frontier.empty()) {
    ++d;
    next.clear();
    for (const NodeId u : frontier) {
      for (const auto& he : g.ports(u)) {
        if (dist[he.to] == kUnreachable) {
          dist[he.to] = d;
          next.push_back(he.to);
        }
      }
    }
    frontier.swap(next);
  }
  return dist;
}

std::uint32_t eccentricity(const Graph& g, NodeId src) {
  const auto dist = bfs_distances(g, src);
  std::uint32_t ecc = 0;
  for (const std::uint32_t d : dist) {
    if (d == kUnreachable) throw std::runtime_error("graph is disconnected");
    ecc = std::max(ecc, d);
  }
  return ecc;
}

bool is_connected(const Graph& g) {
  if (g.n() == 0) return true;
  const auto dist = bfs_distances(g, 0);
  return std::none_of(dist.begin(), dist.end(),
                      [](std::uint32_t d) { return d == kUnreachable; });
}

std::uint32_t diameter_exact(const Graph& g) {
  std::uint32_t best = 0;
  for (NodeId u = 0; u < g.n(); ++u) best = std::max(best, eccentricity(g, u));
  return best;
}

std::pair<std::uint32_t, std::uint32_t> diameter_double_sweep(const Graph& g) {
  // Sweep 1: farthest node from 0.  Sweep 2: eccentricity of that node is a
  // lower bound; twice the BFS-tree height from its midpoint-ish node bounds
  // above.  We settle for lb and 2*lb as the (lb, ub) pair plus one repair
  // sweep, which is the standard cheap estimate.
  if (g.n() == 0) return {0, 0};
  auto d0 = bfs_distances(g, 0);
  NodeId far = 0;
  for (NodeId u = 0; u < g.n(); ++u) {
    if (d0[u] == kUnreachable) throw std::runtime_error("disconnected");
    if (d0[u] > d0[far]) far = u;
  }
  const std::uint32_t lb = eccentricity(g, far);
  return {lb, 2 * lb};
}

std::uint32_t hop_distance(const Graph& g, NodeId a, NodeId b) {
  return bfs_distances(g, a)[b];
}

}  // namespace ule
