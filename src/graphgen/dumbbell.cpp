#include "graphgen/dumbbell.hpp"

#include <stdexcept>
#include <utility>

namespace ule {

namespace {
/// Canonical list of clique-edge endpoint pairs (i < j) for K_kappa.
std::vector<std::pair<NodeId, NodeId>> clique_edges(std::size_t kappa) {
  std::vector<std::pair<NodeId, NodeId>> e;
  e.reserve(kappa * (kappa - 1) / 2);
  for (NodeId i = 0; i < kappa; ++i)
    for (NodeId j = i + 1; j < kappa; ++j) e.emplace_back(i, j);
  return e;
}
}  // namespace

std::size_t dumbbell_clique_size(std::size_t m) {
  std::size_t kappa = 1;
  while ((kappa + 1) * (kappa + 2) / 2 <= m) ++kappa;
  return kappa;
}

std::size_t dumbbell_open_edge_count(std::size_t m) {
  const std::size_t kappa = dumbbell_clique_size(m);
  return kappa * (kappa - 1) / 2;
}

Dumbbell make_dumbbell(std::size_t n, std::size_t m, std::size_t open_left,
                       std::size_t open_right) {
  const std::size_t kappa = dumbbell_clique_size(m);
  if (kappa < 2) throw std::invalid_argument("m too small: need m >= 3");
  if (n < kappa + 1)
    throw std::invalid_argument("n too small for clique + path construction");
  const auto ce = clique_edges(kappa);
  if (open_left >= ce.size() || open_right >= ce.size())
    throw std::invalid_argument("open edge index out of range");

  // Slot layout per side: clique nodes 0..kappa-1, path nodes kappa..n-1
  // with b_1 = kappa adjacent to every clique node.
  std::vector<std::pair<NodeId, NodeId>> edges;
  const auto side = [&](std::size_t offset, std::size_t open_idx) {
    for (std::size_t k = 0; k < ce.size(); ++k) {
      if (k == open_idx) continue;  // the opened edge
      edges.emplace_back(static_cast<NodeId>(offset + ce[k].first),
                         static_cast<NodeId>(offset + ce[k].second));
    }
    if (kappa < n) {
      for (NodeId c = 0; c < kappa; ++c)
        edges.emplace_back(static_cast<NodeId>(offset + kappa),
                           static_cast<NodeId>(offset + c));
      for (std::size_t p = kappa; p + 1 < n; ++p)
        edges.emplace_back(static_cast<NodeId>(offset + p),
                           static_cast<NodeId>(offset + p + 1));
    }
  };
  side(0, open_left);
  side(n, open_right);

  // Bridges: (v', v'') and (w', w'') where e' = (v', w'), ID(v') < ID(w')
  // (we use slot order, matching the paper's concreteness convention).
  const auto [vl, wl] = ce[open_left];
  const auto [vr, wr] = ce[open_right];
  const std::size_t bridge1_pos = edges.size();
  edges.emplace_back(vl, static_cast<NodeId>(n + vr));
  const std::size_t bridge2_pos = edges.size();
  edges.emplace_back(wl, static_cast<NodeId>(n + wr));

  Dumbbell d;
  d.graph = Graph::from_edges(2 * n, edges);
  d.bridge1 = static_cast<EdgeId>(bridge1_pos);
  d.bridge2 = static_cast<EdgeId>(bridge2_pos);
  d.kappa = kappa;
  d.side_n = n;
  d.diameter = (n > kappa) ? 2 * (n - kappa) + 1 : 2;
  return d;
}

}  // namespace ule
