// Path of cliques: the diameter-ladder workhorse.
//
// `cliques` groups of `size` nodes each; every group is a clique and every
// pair of consecutive groups is completely joined (a biclique), so each hop
// along the path changes the group index by exactly one.  The diameter is
// therefore EXACTLY cliques - 1 for every size >= 1 (size = 1 degenerates to
// a path), which is what makes the family usable as a diameter ladder: hold
// the total node count ~fixed, grow the number of groups, and the measured
// BFS diameter equals the declared rung with no off-by-one slack — the paper's
// O(D)-time claims can then be fitted against D directly instead of being
// conflated with n (the Θ(D) additive term of the Casteigts et al. bit-round
// bound lives on this axis, not on n).
//
//   n = cliques * size
//   m = cliques * size*(size-1)/2 + (cliques-1) * size^2
//   D = cliques - 1 (exact)

#pragma once

#include <cstddef>

#include "net/graph.hpp"

namespace ule {

/// Group of node v (nodes are numbered group-major).
/// slot(j, k) = j * size + k for group j in [0, cliques), member k in [0, size).
Graph make_path_of_cliques(std::size_t cliques, std::size_t size);

}  // namespace ule
