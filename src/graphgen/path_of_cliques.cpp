#include "graphgen/path_of_cliques.hpp"

#include <stdexcept>
#include <vector>

namespace ule {

Graph make_path_of_cliques(std::size_t cliques, std::size_t size) {
  if (cliques < 2) throw std::invalid_argument("need >= 2 cliques");
  if (size < 1) throw std::invalid_argument("need clique size >= 1");

  std::vector<std::pair<NodeId, NodeId>> edges;
  const auto slot = [size](std::size_t j, std::size_t k) {
    return static_cast<NodeId>(j * size + k);
  };
  for (std::size_t j = 0; j < cliques; ++j) {
    for (std::size_t a = 0; a < size; ++a) {
      // Clique within group j.
      for (std::size_t b = a + 1; b < size; ++b)
        edges.emplace_back(slot(j, a), slot(j, b));
      // Biclique to group j+1.
      if (j + 1 < cliques)
        for (std::size_t b = 0; b < size; ++b)
          edges.emplace_back(slot(j, a), slot(j + 1, b));
    }
  }
  return Graph::from_edges(cliques * size, edges);
}

}  // namespace ule
