#include "graphgen/clique_cycle.hpp"

#include <stdexcept>
#include <vector>

namespace ule {

CliqueCycle make_clique_cycle(std::size_t n, std::size_t D) {
  if (D < 3 || n < 4) throw std::invalid_argument("need D >= 3 and n >= 4");

  CliqueCycle cc;
  cc.d_prime = 4 * ((D + 3) / 4);
  cc.gamma = (n + cc.d_prime - 1) / cc.d_prime;
  if (cc.gamma == 0) cc.gamma = 1;
  cc.n_actual = cc.gamma * cc.d_prime;

  std::vector<std::pair<NodeId, NodeId>> edges;
  const std::size_t per_arc = cc.d_prime / 4;

  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < per_arc; ++j) {
      // Clique c_{i,j}.
      for (std::size_t a = 0; a < cc.gamma; ++a)
        for (std::size_t b = a + 1; b < cc.gamma; ++b)
          edges.emplace_back(cc.slot(i, j, a), cc.slot(i, j, b));
      // Chain to the next clique in the same arc.
      if (j + 1 < per_arc)
        edges.emplace_back(cc.slot(i, j, cc.gamma - 1), cc.slot(i, j + 1, 0));
    }
    // Arc boundary: last clique of arc i to first clique of arc i+1 mod 4.
    edges.emplace_back(cc.slot(i, per_arc - 1, cc.gamma - 1),
                       cc.slot((i + 1) % 4, 0, 0));
  }

  cc.graph = Graph::from_edges(cc.n_actual, edges);
  return cc;
}

}  // namespace ule
