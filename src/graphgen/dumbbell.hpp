// The dumbbell construction of Theorem 3.1 (message lower bound).
//
// Fixed-diameter variant from the end of the proof: each side is the graph
// G0 built from (i) a clique G0^1 on κ nodes, where κ is the largest integer
// with κ(κ+1)/2 <= m, (ii) a path G0^2 of n-κ nodes b_1..b_{n-κ}, and (iii)
// κ edges connecting b_1 to every clique node.  An *open graph* G[e'] erases
// one clique edge e', leaving two free ports; a dumbbell joins two ID-disjoint
// open graphs by two *bridge* edges between the freed ports.  The key
// property: whatever clique edges e', e'' are opened, the dumbbell's diameter
// is exactly 2(n-κ)+1, so knowledge of D gives algorithms no edge-dependent
// information.
//
// Bridge-crossing (BC): any universal leader-election or broadcast algorithm
// must move a message across a bridge; the engine's watch_edges hook observes
// exactly that event.

#pragma once

#include <cstddef>
#include <vector>

#include "net/graph.hpp"

namespace ule {

struct Dumbbell {
  Graph graph;
  EdgeId bridge1 = kNoEdge;
  EdgeId bridge2 = kNoEdge;
  std::size_t kappa = 0;       ///< clique size per side
  std::size_t side_n = 0;      ///< nodes per side; total n() = 2*side_n
  std::uint64_t diameter = 0;  ///< exact: 2*(side_n - kappa) + 1
  /// Left side occupies slots [0, side_n), right side [side_n, 2*side_n).
};

/// Largest clique size κ with κ(κ+1)/2 <= m (the paper's choice).
std::size_t dumbbell_clique_size(std::size_t m);

/// Number of distinct open-edge choices per side, m1 = κ(κ-1)/2.
std::size_t dumbbell_open_edge_count(std::size_t m);

/// Build Dumbbell(G'[e'], G''[e'']) where open_left / open_right index the
/// clique-edge lists (0 <= index < dumbbell_open_edge_count(m)).
/// Requires: per-side n >= κ+1, m >= 3 (so κ >= 2 and an edge can be opened).
Dumbbell make_dumbbell(std::size_t n, std::size_t m, std::size_t open_left,
                       std::size_t open_right);

}  // namespace ule
