// Centralized graph algorithms (harness-side only — distributed algorithms
// never call these; they exist to set up experiments and verify claims).

#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "net/graph.hpp"

namespace ule {

inline constexpr std::uint32_t kUnreachable = 0xFFFFFFFFu;

/// BFS hop distances from src (kUnreachable where disconnected).
std::vector<std::uint32_t> bfs_distances(const Graph& g, NodeId src);

/// Max finite distance from src; throws if the graph is disconnected.
std::uint32_t eccentricity(const Graph& g, NodeId src);

bool is_connected(const Graph& g);

/// Exact diameter via all-pairs BFS; O(n*m), fine for harness sizes.
std::uint32_t diameter_exact(const Graph& g);

/// Double-sweep heuristic: returns (lower_bound, upper_bound) on the
/// diameter using a handful of BFS passes.  For large instances.
std::pair<std::uint32_t, std::uint32_t> diameter_double_sweep(const Graph& g);

/// Hop distance between two nodes.
std::uint32_t hop_distance(const Graph& g, NodeId a, NodeId b);

}  // namespace ule
