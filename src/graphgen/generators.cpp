#include "graphgen/generators.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "graphgen/graph_algos.hpp"

namespace ule {

namespace {
using EdgeList = std::vector<std::pair<NodeId, NodeId>>;

std::uint64_t edge_key(NodeId a, NodeId b) {
  if (a > b) std::swap(a, b);
  return (static_cast<std::uint64_t>(a) << 32) | b;
}
}  // namespace

Graph make_path(std::size_t n) {
  if (n == 0) throw std::invalid_argument("empty path");
  EdgeList e;
  for (NodeId i = 0; i + 1 < n; ++i) e.emplace_back(i, i + 1);
  return Graph::from_edges(n, e);
}

Graph make_cycle(std::size_t n) {
  if (n < 3) throw std::invalid_argument("cycle needs n >= 3");
  EdgeList e;
  for (NodeId i = 0; i + 1 < n; ++i) e.emplace_back(i, i + 1);
  e.emplace_back(static_cast<NodeId>(n - 1), 0);
  return Graph::from_edges(n, e);
}

Graph make_star(std::size_t n) {
  if (n < 2) throw std::invalid_argument("star needs n >= 2");
  EdgeList e;
  for (NodeId i = 1; i < n; ++i) e.emplace_back(0, i);
  return Graph::from_edges(n, e);
}

Graph make_complete(std::size_t n) {
  if (n < 2) throw std::invalid_argument("complete graph needs n >= 2");
  EdgeList e;
  for (NodeId i = 0; i < n; ++i)
    for (NodeId j = i + 1; j < n; ++j) e.emplace_back(i, j);
  return Graph::from_edges(n, e);
}

Graph make_complete_bipartite(std::size_t a, std::size_t b) {
  if (a == 0 || b == 0) throw std::invalid_argument("empty side");
  EdgeList e;
  for (NodeId i = 0; i < a; ++i)
    for (NodeId j = 0; j < b; ++j)
      e.emplace_back(i, static_cast<NodeId>(a + j));
  return Graph::from_edges(a + b, e);
}

Graph make_grid(std::size_t rows, std::size_t cols) {
  if (rows == 0 || cols == 0) throw std::invalid_argument("empty grid");
  EdgeList e;
  auto at = [cols](std::size_t r, std::size_t c) {
    return static_cast<NodeId>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) e.emplace_back(at(r, c), at(r, c + 1));
      if (r + 1 < rows) e.emplace_back(at(r, c), at(r + 1, c));
    }
  return Graph::from_edges(rows * cols, e);
}

Graph make_torus(std::size_t rows, std::size_t cols) {
  if (rows < 3 || cols < 3)
    throw std::invalid_argument("torus needs both dims >= 3");
  EdgeList e;
  auto at = [cols](std::size_t r, std::size_t c) {
    return static_cast<NodeId>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c) {
      e.emplace_back(at(r, c), at(r, (c + 1) % cols));
      e.emplace_back(at(r, c), at((r + 1) % rows, c));
    }
  return Graph::from_edges(rows * cols, e);
}

Graph make_hypercube(unsigned dim) {
  if (dim == 0 || dim > 20) throw std::invalid_argument("bad hypercube dim");
  const std::size_t n = std::size_t{1} << dim;
  EdgeList e;
  for (NodeId u = 0; u < n; ++u)
    for (unsigned b = 0; b < dim; ++b) {
      const NodeId v = u ^ (NodeId{1} << b);
      if (u < v) e.emplace_back(u, v);
    }
  return Graph::from_edges(n, e);
}

Graph make_balanced_tree(std::size_t n, std::size_t arity) {
  if (n == 0 || arity == 0) throw std::invalid_argument("bad tree shape");
  EdgeList e;
  for (NodeId i = 1; i < n; ++i)
    e.emplace_back(static_cast<NodeId>((i - 1) / arity), i);
  return Graph::from_edges(n, e);
}

Graph make_lollipop(std::size_t clique, std::size_t tail) {
  if (clique < 2) throw std::invalid_argument("lollipop clique needs >= 2");
  EdgeList e;
  for (NodeId i = 0; i < clique; ++i)
    for (NodeId j = i + 1; j < clique; ++j) e.emplace_back(i, j);
  // Path b1..b_tail hangs off clique node 0 (b1 adjacent to ALL clique nodes
  // in the paper's G0; see dumbbell.cpp — this generator is the simple
  // textbook lollipop used by tests and examples).
  NodeId prev = 0;
  for (std::size_t t = 0; t < tail; ++t) {
    const NodeId next = static_cast<NodeId>(clique + t);
    e.emplace_back(prev, next);
    prev = next;
  }
  return Graph::from_edges(clique + tail, e);
}

Graph make_barbell(std::size_t clique, std::size_t bridge_len) {
  if (clique < 2) throw std::invalid_argument("barbell clique needs >= 2");
  EdgeList e;
  const std::size_t n = 2 * clique + (bridge_len ? bridge_len - 1 : 0);
  auto left = [](std::size_t i) { return static_cast<NodeId>(i); };
  auto right = [&](std::size_t i) {
    return static_cast<NodeId>(clique + (bridge_len ? bridge_len - 1 : 0) + i);
  };
  for (std::size_t i = 0; i < clique; ++i)
    for (std::size_t j = i + 1; j < clique; ++j) {
      e.emplace_back(left(i), left(j));
      e.emplace_back(right(i), right(j));
    }
  // Path of bridge_len edges from left(0) to right(0).
  NodeId prev = left(0);
  for (std::size_t t = 0; t + 1 < bridge_len; ++t) {
    const NodeId mid = static_cast<NodeId>(clique + t);
    e.emplace_back(prev, mid);
    prev = mid;
  }
  if (bridge_len == 0) throw std::invalid_argument("bridge_len must be >= 1");
  e.emplace_back(prev, right(0));
  return Graph::from_edges(n, e);
}

Graph make_random_connected(std::size_t n, std::size_t m, Rng& rng) {
  if (n < 2) throw std::invalid_argument("need n >= 2");
  const std::size_t max_m = n * (n - 1) / 2;
  if (m < n - 1 || m > max_m)
    throw std::invalid_argument("m out of [n-1, n(n-1)/2]");

  EdgeList e;
  e.reserve(m);
  std::unordered_set<std::uint64_t> used;
  used.reserve(m * 2);

  // Random spanning tree: random permutation, attach each node to a random
  // earlier one (uniform random recursive tree on a shuffled labelling).
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), NodeId{0});
  for (std::size_t i = n; i > 1; --i)
    std::swap(order[i - 1], order[rng.below(i)]);
  for (std::size_t i = 1; i < n; ++i) {
    const NodeId u = order[i];
    const NodeId v = order[rng.below(i)];
    e.emplace_back(u, v);
    used.insert(edge_key(u, v));
  }
  while (e.size() < m) {
    const NodeId u = static_cast<NodeId>(rng.below(n));
    const NodeId v = static_cast<NodeId>(rng.below(n));
    if (u == v) continue;
    if (!used.insert(edge_key(u, v)).second) continue;
    e.emplace_back(u, v);
  }
  return Graph::from_edges(n, e);
}

Graph make_random_regular(std::size_t n, std::size_t d, Rng& rng) {
  if (d >= n || (n * d) % 2 != 0)
    throw std::invalid_argument("need d < n and n*d even");
  // Pairing model with edge-swap repair.  Rejecting the whole matching on
  // any self-loop or duplicate works only for tiny d (the simple-graph
  // probability is ~e^{-d^2/4}, i.e. hopeless already at d = 6); instead a
  // defective pair is repaired by a degree-preserving 2-swap with a random
  // partner edge, which converges in O(defects) expected swaps.
  for (int attempt = 0; attempt < 100; ++attempt) {
    std::vector<NodeId> stubs;
    stubs.reserve(n * d);
    for (NodeId u = 0; u < n; ++u)
      for (std::size_t k = 0; k < d; ++k) stubs.push_back(u);
    for (std::size_t i = stubs.size(); i > 1; --i)
      std::swap(stubs[i - 1], stubs[rng.below(i)]);

    EdgeList e;
    e.reserve(n * d / 2);
    std::unordered_map<std::uint64_t, int> count;
    for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
      e.emplace_back(stubs[i], stubs[i + 1]);
      if (stubs[i] != stubs[i + 1]) ++count[edge_key(stubs[i], stubs[i + 1])];
    }
    const auto defective = [&](const std::pair<NodeId, NodeId>& ed) {
      return ed.first == ed.second || count[edge_key(ed.first, ed.second)] > 1;
    };

    bool simple = false;
    for (std::size_t budget = 400 * e.size(); budget > 0; --budget) {
      std::vector<std::size_t> bad;
      for (std::size_t i = 0; i < e.size(); ++i)
        if (defective(e[i])) bad.push_back(i);
      if (bad.empty()) {
        simple = true;
        break;
      }
      const std::size_t i = bad[rng.below(bad.size())];
      const std::size_t j = rng.below(e.size());
      if (i == j) continue;
      const auto [a, b] = e[i];
      const auto [c, f] = e[j];
      // Propose (a,b),(c,f) -> (a,f),(c,b); require both new edges simple
      // and fresh so the defect count strictly drops.
      if (a == f || c == b) continue;
      if (count[edge_key(a, f)] > 0 || count[edge_key(c, b)] > 0) continue;
      if (a != b) --count[edge_key(a, b)];
      if (c != f) --count[edge_key(c, f)];
      ++count[edge_key(a, f)];
      ++count[edge_key(c, b)];
      e[i] = {a, f};
      e[j] = {c, b};
    }
    if (!simple) continue;
    Graph g = Graph::from_edges(n, e);
    if (is_connected(g)) return g;
  }
  throw std::runtime_error("random regular generation failed (try d >= 3)");
}

}  // namespace ule
