// The clique-cycle construction of Theorem 3.13 / Figure 1 (time lower bound).
//
// D' = 4*ceil(D/4) cliques of size γ arranged in a cycle and partitioned into
// four arcs C_0..C_3.  γ is the smallest integer with γ·D' >= n, so the graph
// has n' = γ·D' ∈ Θ(n) nodes and diameter Θ(D).  The construction is
// 4-fold rotation symmetric: φ(v_{i,j,k}) = v_{(i+1 mod 4),j,k} is a graph
// automorphism, which is what forces any algorithm that stops in o(D) rounds
// to elect leaders in opposite arcs independently (and hence to sometimes
// elect 0 or >= 2 leaders).

#pragma once

#include <cstddef>

#include "net/graph.hpp"

namespace ule {

struct CliqueCycle {
  Graph graph;
  std::size_t d_prime = 0;   ///< number of cliques (multiple of 4)
  std::size_t gamma = 0;     ///< clique size
  std::size_t n_actual = 0;  ///< gamma * d_prime

  /// Slot of v_{i,j,k}: arc i in 0..3, clique j in 0..d_prime/4-1, member k.
  NodeId slot(std::size_t i, std::size_t j, std::size_t k) const {
    return static_cast<NodeId>((i * (d_prime / 4) + j) * gamma + k);
  }

  /// The rotation automorphism φ of the proof of Claim 3.14.
  NodeId rotate(NodeId v) const {
    const std::size_t per_arc = (d_prime / 4) * gamma;
    return static_cast<NodeId>((v + per_arc) % n_actual);
  }
};

/// Build the construction for the requested n and D (paper: 2 < D < n).
CliqueCycle make_clique_cycle(std::size_t n, std::size_t D);

}  // namespace ule
