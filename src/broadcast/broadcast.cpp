#include "broadcast/broadcast.hpp"

#include <algorithm>
#include <memory>
#include <vector>

#include "net/engine.hpp"

namespace ule {

void FloodBroadcastProcess::on_wake(Context& ctx,
                                    std::span<const Envelope> inbox) {
  if (is_source_) {
    informed_round_ = ctx.round();
    // A degree-0 source has already informed its whole (singleton) graph;
    // the return value only signals that no echoes will come.
    (void)pool_.originate(ctx, WaveKey{1, 1});
  }
  if (!inbox.empty()) {
    on_round(ctx, inbox);
  } else {
    ctx.idle();
  }
}

void FloodBroadcastProcess::on_round(Context& ctx,
                                     std::span<const Envelope> inbox) {
  const WavePool::Events ev = pool_.on_round(ctx, inbox);
  if (ev.improved && informed_round_ == kRoundForever)
    informed_round_ = ctx.round();
  if (ev.own_complete) complete_round_ = ctx.round();
  ctx.idle();
}

ProcessFactory make_flood_broadcast(NodeId source) {
  return [source](NodeId slot) {
    return std::make_unique<FloodBroadcastProcess>(slot == source);
  };
}

BroadcastReport run_broadcast(const Graph& g, NodeId source,
                              std::uint64_t seed) {
  EngineConfig cfg;
  cfg.seed = seed;
  cfg.record_message_timeline = true;
  SyncEngine eng(g, cfg);
  eng.init_processes(make_flood_broadcast(source));
  const RunResult res = eng.run();

  BroadcastReport rep;
  rep.messages_total = res.messages;
  rep.rounds_total = res.rounds;

  // Round at which the (floor(n/2)+1)-th node became informed.
  std::vector<Round> informed;
  informed.reserve(g.n());
  bool all = true;
  for (NodeId s = 0; s < g.n(); ++s) {
    const auto* p = dynamic_cast<const FloodBroadcastProcess*>(eng.process(s));
    if (p->informed()) {
      informed.push_back(p->informed_round());
    } else {
      all = false;
    }
  }
  rep.all_informed = all;
  const std::size_t need = g.n() / 2 + 1;
  if (informed.size() >= need) {
    std::nth_element(informed.begin(), informed.begin() + (need - 1),
                     informed.end());
    rep.round_majority = informed[need - 1];
    // Messages sent in rounds <= round_majority (informing messages were
    // sent the round before they arrived).
    rep.messages_majority = eng.messages_before(rep.round_majority);
  }
  return rep;
}

}  // namespace ule
