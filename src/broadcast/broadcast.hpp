// Broadcast (Section 3.2 / Corollary 3.12).
//
// A single source must convey a message to all nodes (broadcast) or to more
// than n/2 nodes (majority broadcast).  The lower-bound claim: any algorithm
// succeeding with probability >= 1-β (β <= 3/8) spends Ω(m) messages on some
// dumbbell graph — because broadcasting across the dumbbell requires bridge
// crossing, the same reduction as for leader election.
//
// The implementation is flooding-with-echo (a single PIF wave): each node
// forwards the payload once on every other port and echoes; the source
// detects completion.  The per-node informed round is exposed so the harness
// can measure "messages until a majority is informed" via the engine's
// message timeline.

#pragma once

#include "election/channels.hpp"
#include "election/election.hpp"
#include "election/pif.hpp"
#include "net/process.hpp"

namespace ule {

class FloodBroadcastProcess final : public Process {
 public:
  explicit FloodBroadcastProcess(bool is_source) : is_source_(is_source) {}

  void on_wake(Context& ctx, std::span<const Envelope> inbox) override;
  void on_round(Context& ctx, std::span<const Envelope> inbox) override;

  bool informed() const { return informed_round_ != kRoundForever; }
  Round informed_round() const { return informed_round_; }
  /// Source only: the round its echo-completion arrived.
  Round complete_round() const { return complete_round_; }

 private:
  void finish(Context& ctx);

  bool is_source_;
  WavePool pool_{channel::kBroadcast, /*max_wins=*/true};
  Round informed_round_ = kRoundForever;
  Round complete_round_ = kRoundForever;
};

/// Factory: `source` is the slot that originates the broadcast.
ProcessFactory make_flood_broadcast(NodeId source);

/// Harness summary of one broadcast run.
struct BroadcastReport {
  std::uint64_t messages_total = 0;
  std::uint64_t messages_majority = 0;  ///< msgs until > n/2 nodes informed
  Round rounds_total = 0;
  Round round_majority = kRoundForever;
  bool all_informed = false;
};

/// Run a broadcast from `source` on g and measure total + majority costs.
BroadcastReport run_broadcast(const Graph& g, NodeId source,
                              std::uint64_t seed);

}  // namespace ule
