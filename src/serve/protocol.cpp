#include "serve/protocol.hpp"

#include <stdexcept>

#include "serve/frame.hpp"

namespace ule::serve {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

void fnv_word(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= kFnvPrime;
  }
}

}  // namespace

std::uint64_t outcome_digest(const ElectionReport& rep) {
  std::uint64_t h = kFnvOffset;
  fnv_word(h, rep.statuses.size());
  for (const Status s : rep.statuses)
    fnv_word(h, static_cast<std::uint64_t>(s));
  fnv_word(h, rep.sent_by_node.size());
  for (const std::uint64_t c : rep.sent_by_node) fnv_word(h, c);
  return h;
}

ResultCounters result_counters(const ElectionReport& rep) {
  const RunResult& r = rep.run;
  ResultCounters out;
  out.reserve(28);
  const auto add = [&out](const char* name, std::uint64_t v) {
    out.emplace_back(name, v);
  };
  add("rounds", r.rounds);
  add("executed_rounds", r.executed_rounds);
  add("node_steps", r.node_steps);
  add("messages", r.messages);
  add("bits", r.bits);
  add("completed", r.completed ? 1 : 0);
  add("congest_violations", r.congest_violations);
  add("elected", r.elected);
  add("non_elected", r.non_elected);
  add("undecided", r.undecided);
  add("last_status_change", r.last_status_change);
  add("last_progress", r.last_progress);
  add("crashed", r.crashed);
  add("recoveries", r.recoveries);
  add("adv_crash_drops", r.adv_crash_drops);
  add("adv_drops", r.adv_drops);
  add("adv_dups", r.adv_dups);
  add("adv_delays", r.adv_delays);
  add("dead_links", r.dead_links);
  add("dead_link_drops", r.dead_link_drops);
  add("healed_links", r.healed_links);
  add("unique_leader", rep.verdict.unique_leader ? 1 : 0);
  add("leader_slot", rep.verdict.leader_slot);
  add("outcome_digest", outcome_digest(rep));
  return out;
}

std::string encode_result(const ResultCounters& counters) {
  std::string out;
  for (const auto& [name, value] : counters) {
    out += name;
    out += '=';
    out += std::to_string(value);
    out += '\n';
  }
  return out;
}

ResultCounters parse_result(const std::string& payload) {
  ResultCounters out;
  std::size_t pos = 0;
  while (pos < payload.size()) {
    std::size_t nl = payload.find('\n', pos);
    if (nl == std::string::npos) nl = payload.size();
    const std::string line = payload.substr(pos, nl - pos);
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= line.size())
      throw std::invalid_argument("malformed result line \"" + line + "\"");
    const std::string digits = line.substr(eq + 1);
    std::uint64_t v = 0;
    for (const char c : digits) {
      if (c < '0' || c > '9')
        throw std::invalid_argument("malformed result value \"" + line +
                                    "\"");
      v = v * 10 + static_cast<std::uint64_t>(c - '0');
    }
    out.emplace_back(line.substr(0, eq), v);
    pos = nl + 1;
  }
  return out;
}

Scenario parse_submit(const std::string& payload, std::uint8_t flags) {
  if ((flags & kSubmitFields) == 0) return Scenario::parse(payload);

  // Explicit fields: assemble a token, then reuse the one validation path.
  // Scalar keys overwrite (last wins is an ERROR — the token parser's
  // duplicate-segment rule extends here); unrecognized keys are family
  // params in the order given.
  std::string family, protocol, k = "none", w = "sim", s = "1", t = "1";
  std::string a, f, r;
  std::vector<std::pair<std::string, std::string>> params;
  bool seen_family = false, seen_protocol = false, seen_k = false,
       seen_w = false, seen_s = false, seen_t = false;
  std::size_t pos = 0;
  while (pos < payload.size()) {
    std::size_t semi = payload.find(';', pos);
    if (semi == std::string::npos) semi = payload.size();
    const std::string item = payload.substr(pos, semi - pos);
    pos = semi + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos || eq == 0)
      throw std::invalid_argument("submit field \"" + item +
                                  "\" must be key=value");
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    const auto scalar = [&](std::string& slot, bool& seen) {
      if (seen)
        throw std::invalid_argument("duplicate submit field \"" + key + "\"");
      seen = true;
      slot = value;
    };
    if (key == "family") scalar(family, seen_family);
    else if (key == "protocol") scalar(protocol, seen_protocol);
    else if (key == "k") scalar(k, seen_k);
    else if (key == "w") scalar(w, seen_w);
    else if (key == "s") scalar(s, seen_s);
    else if (key == "t") scalar(t, seen_t);
    else if (key == "a" || key == "f" || key == "r") {
      std::string& slot = key == "a" ? a : key == "f" ? f : r;
      if (!slot.empty())
        throw std::invalid_argument("duplicate submit field \"" + key + "\"");
      slot = value;
    } else {
      params.emplace_back(key, value);
    }
  }
  if (!seen_family || !seen_protocol)
    throw std::invalid_argument(
        "submit fields must name at least family=... and protocol=...");

  std::string token = "ule1:" + family + "{";
  bool first = true;
  for (const auto& [name, value] : params) {
    if (!first) token += ',';
    first = false;
    token += name + "=" + value;
  }
  token += "}:" + protocol + ":k=" + k + ":w=" + w + ":s=" + s + ":t=" + t;
  if (!a.empty()) token += ":a=" + a;
  if (!f.empty()) token += ":f=" + f;
  if (!r.empty()) token += ":r=" + r;
  return Scenario::parse(token);
}

}  // namespace ule::serve
