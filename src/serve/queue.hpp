// Bounded MPMC job queue with explicit backpressure — the seam between the
// daemon's IO thread and the WorkerPool executing jobs.
//
// The contract the wire protocol exposes (docs/SERVER.md) is decided here:
// try_push() NEVER blocks the IO thread — a full queue returns false and the
// session gets an explicit JobReject frame, so an overloaded daemon sheds
// load visibly instead of buffering unboundedly or stalling every session
// behind one slow producer.  pop() blocks workers until a job or close();
// after close() the remaining queued jobs still drain (pop keeps returning
// them) so a SIGTERM drain finishes accepted work before the pool exits.

#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace ule::serve {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  /// Enqueue, or refuse: false when the queue is at capacity or closed.
  bool try_push(T item) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Dequeue, blocking until an item is available or the queue is closed
  /// AND empty (then nullopt — the worker-loop exit signal).
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Refuse new pushes and wake every blocked pop.  Queued items still
  /// drain through pop() — close is "no new work", not "discard work".
  void close() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  std::size_t depth() const {
    std::lock_guard<std::mutex> lk(mu_);
    return items_.size();
  }
  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace ule::serve
