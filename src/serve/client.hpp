// Blocking client for the election daemon (serve/server.hpp): connect,
// submit `ule1:` tokens, collect streamed telemetry and results.  One
// ServeClient is one frame session; it is not thread-safe — the loadgen
// opens one client per concurrent session thread, which is also the
// daemon-side unit of multiplexing.
//
// All socket calls retry EINTR and sends carry MSG_NOSIGNAL (the same
// signal/errno hygiene contract as the server side).

#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "serve/frame.hpp"
#include "serve/protocol.hpp"

namespace ule::serve {

class ServeClient {
 public:
  ServeClient() = default;
  ~ServeClient();

  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  /// Connect to the daemon's frame port.  Throws std::runtime_error.
  void connect(const std::string& host, std::uint16_t port);
  void close();
  bool connected() const { return fd_ >= 0; }

  /// Send any frame (tests use this to inject malformed bytes via
  /// send_raw).  Throws std::runtime_error on a dead socket.
  void send_frame(FrameType type, std::uint8_t channel, std::uint8_t flags,
                  std::uint64_t a, std::uint64_t b, std::uint64_t c,
                  std::string_view payload);
  void send_raw(std::string_view bytes);

  /// Read the next complete frame.  Returns false on EOF (server closed the
  /// session); throws std::runtime_error on socket errors or a frame the
  /// DECODER rejects (a server never sends malformed frames).
  bool read_frame(Frame& out);

  struct Submission {
    bool accepted = false;
    std::uint64_t job_id = 0;   ///< valid when accepted
    std::string reject_reason;  ///< valid when !accepted
  };

  /// Submit a replay token and wait for JobAccepted / JobReject.  A
  /// JobError at this stage (malformed token) throws std::runtime_error
  /// with the server's diagnostic.  Submits may be pipelined: frames
  /// belonging to earlier accepted jobs that arrive while waiting for the
  /// accept are buffered for a later await_result().
  Submission submit_token(const std::string& token, std::uint64_t tag = 0,
                          std::uint8_t channel = 0);
  /// Same, with an explicit-fields payload (serve::kSubmitFields).
  Submission submit_fields(const std::string& fields, std::uint64_t tag = 0,
                           std::uint8_t channel = 0);

  struct JobReply {
    bool ok = false;            ///< JobResult received (vs JobError)
    ResultCounters counters;    ///< the result grammar, parsed
    std::uint64_t violations = 0;
    std::string metrics_doc;    ///< reassembled StreamChunk payloads
    std::string error;          ///< JobError payload when !ok
  };

  /// Read frames (buffered first, then the socket) until `job_id`'s
  /// JobResult or JobError arrives, reassembling its StreamChunks.  Frames
  /// for OTHER jobs are buffered, so pipelined jobs can be awaited in any
  /// order.
  JobReply await_result(std::uint64_t job_id);

 private:
  Submission submit(std::uint8_t flags, const std::string& payload,
                    std::uint64_t tag, std::uint8_t channel);

  int fd_ = -1;
  FrameDecoder decoder_;
  std::deque<Frame> pending_;  ///< frames read while waiting for another
};

/// One-shot HTTP GET against the daemon's metrics port (no external tools
/// in tests).  Returns the status code and fills `body`; throws
/// std::runtime_error on connection failure.
int http_get(const std::string& host, std::uint16_t port,
             const std::string& path, std::string* body);

}  // namespace ule::serve
