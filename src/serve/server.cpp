#include "serve/server.hpp"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <map>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "net/metrics.hpp"
#include "net/worker_pool.hpp"
#include "scenario/registry.hpp"
#include "scenario/runner.hpp"
#include "serve/frame.hpp"
#include "serve/protocol.hpp"
#include "serve/queue.hpp"

namespace ule::serve {

namespace {

// --- EINTR-hardened POSIX wrappers (the signal/errno hygiene satellite:
// a handled SIGTERM mid-syscall must never surface as a phantom IO error) --

int accept_retry(int fd) {
  for (;;) {
    const int c = ::accept(fd, nullptr, nullptr);
    if (c >= 0 || errno != EINTR) return c;
  }
}

ssize_t recv_retry(int fd, char* buf, std::size_t len) {
  for (;;) {
    const ssize_t n = ::recv(fd, buf, len, 0);
    if (n >= 0 || errno != EINTR) return n;
  }
}

// MSG_NOSIGNAL: a peer that closed mid-write yields EPIPE, never a
// process-killing SIGPIPE — even before install_signal_handlers() ran.
ssize_t send_retry(int fd, const char* buf, std::size_t len) {
  for (;;) {
    const ssize_t n = ::send(fd, buf, len, MSG_NOSIGNAL);
    if (n >= 0 || errno != EINTR) return n;
  }
}

int poll_retry(pollfd* fds, nfds_t n, int timeout_ms) {
  for (;;) {
    const int r = ::poll(fds, n, timeout_ms);
    if (r >= 0 || errno != EINTR) return r;
  }
}

void write_byte(int fd) {
  const char b = 1;
  for (;;) {
    const ssize_t n = ::write(fd, &b, 1);
    if (n >= 0 || errno != EINTR) return;  // EAGAIN: pipe already signaled
  }
}

void drain_pipe(int fd) {
  char buf[256];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n > 0) continue;
    if (n < 0 && errno == EINTR) continue;
    return;  // EAGAIN or EOF: drained
  }
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

int listen_on(const std::string& bind_addr, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("socket(): " + std::string(std::strerror(errno)));
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, bind_addr.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("bad bind address \"" + bind_addr + "\"");
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    throw std::runtime_error("bind(" + bind_addr + ":" +
                             std::to_string(port) + "): " + err);
  }
  if (::listen(fd, SOMAXCONN) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    throw std::runtime_error("listen(): " + err);
  }
  set_nonblocking(fd);
  return fd;
}

std::uint16_t bound_port(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0)
    return 0;
  return ntohs(addr.sin_port);
}

constexpr std::size_t kMaxHttpRequest = 8192;
constexpr std::size_t kMaxSessionOutbuf = 8u << 20;

struct Job {
  std::uint64_t id = 0;
  std::uint64_t sid = 0;
  std::uint8_t channel = 0;
  std::uint64_t tag = 0;
  Scenario scenario;
};

struct Completion {
  std::uint64_t id = 0;
  std::uint64_t sid = 0;
  std::uint8_t channel = 0;
  std::uint64_t tag = 0;
  bool ok = false;
  ResultCounters counters;
  std::uint64_t violations = 0;
  std::string error;
  bool have_snapshot = false;
  MetricsSnapshot snapshot;
};

struct Session {
  std::uint64_t sid = 0;
  int fd = -1;
  bool http = false;
  FrameDecoder decoder;
  std::string http_in;
  std::string out;
  bool close_after_flush = false;
  bool dead = false;
};

void merge_gauge(GaugeStats& into, const GaugeStats& g) {
  into.samples += g.samples;
  into.total += g.total;
  if (g.max > into.max) into.max = g.max;
  into.last = g.last;
}

}  // namespace

struct ElectionServer::Impl {
  ServeConfig cfg;

  int listen_fd = -1;
  int http_fd = -1;
  std::uint16_t frame_port = 0;
  std::uint16_t metrics_port = 0;
  int shutdown_rd = -1, shutdown_wr = -1;
  int completion_rd = -1, completion_wr = -1;

  std::thread io_thread;
  std::thread executor;
  bool started = false;
  bool joined = false;

  BoundedQueue<Job> queue;
  std::mutex completion_mu;
  std::vector<Completion> completions;  // guarded by completion_mu

  // --- IO-thread-owned state (no locks) ---
  std::map<int, Session> sessions;  // fd -> session
  std::uint64_t next_sid = 1;
  std::uint64_t next_job = 1;
  std::uint64_t jobs_inflight = 0;
  bool draining = false;
  // Aggregated telemetry across completed jobs (GET /metrics).
  MetricsSnapshot aggregate;
  std::map<std::string, std::uint64_t> aggregate_counters;

  mutable std::mutex stats_mu;
  ServeStats stats_v;  // guarded by stats_mu

  explicit Impl(ServeConfig c) : cfg(std::move(c)), queue(cfg.queue_capacity) {}

  // ----- worker side ---------------------------------------------------
  Completion run_job(const Job& job) const {
    Completion c;
    c.id = job.id;
    c.sid = job.sid;
    c.channel = job.channel;
    c.tag = job.tag;
    try {
      ScenarioRunConfig rc;
      rc.check_determinism = false;
      rc.metrics.enabled = cfg.metrics;
      const ScenarioOutcome oc =
          run_scenario(default_protocols(), default_families(), job.scenario, rc);
      c.ok = true;
      c.counters = result_counters(oc.report);
      c.violations = oc.violations.size();
      if (oc.report.run.metrics.has_value()) {
        c.snapshot = *oc.report.run.metrics;
        c.have_snapshot = true;
      }
    } catch (const std::exception& e) {
      c.error = e.what();
    } catch (...) {
      c.error = "unknown execution error";
    }
    return c;
  }

  void worker_loop() {
    for (;;) {
      std::optional<Job> job = queue.pop();
      if (!job.has_value()) return;  // closed and drained
      Completion c = run_job(*job);
      {
        std::lock_guard<std::mutex> lk(completion_mu);
        completions.push_back(std::move(c));
      }
      write_byte(completion_wr);
    }
  }

  // ----- IO-thread helpers ---------------------------------------------
  void bump(std::uint64_t ServeStats::* field) {
    std::lock_guard<std::mutex> lk(stats_mu);
    ++(stats_v.*field);
  }

  void queue_frame(Session& s, FrameType type, std::uint8_t channel,
                   std::uint8_t flags, std::uint64_t a, std::uint64_t b,
                   std::uint64_t c, std::string_view payload) {
    s.out += encode_frame(type, channel, flags, a, b, c, payload);
    if (s.out.size() > kMaxSessionOutbuf) s.dead = true;  // reader gone AWOL
  }

  void flush(Session& s) {
    while (!s.out.empty() && !s.dead) {
      const ssize_t n = send_retry(s.fd, s.out.data(), s.out.size());
      if (n > 0) {
        s.out.erase(0, static_cast<std::size_t>(n));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      s.dead = true;  // EPIPE / ECONNRESET / anything else
      return;
    }
    if (s.out.empty() && s.close_after_flush) s.dead = true;
  }

  void handle_submit(Session& s, const Frame& f) {
    Scenario scenario;
    try {
      scenario = parse_submit(f.payload, f.header.flags);
    } catch (const std::exception& e) {
      bump(&ServeStats::errors);
      queue_frame(s, FrameType::JobError, f.header.channel, 0, 0, f.header.b,
                  0, e.what());
      return;
    }
    if (draining) {
      bump(&ServeStats::rejected);
      queue_frame(s, FrameType::JobReject, f.header.channel, 0, 0, f.header.b,
                  queue.capacity(), "daemon is draining");
      return;
    }
    Job job;
    job.id = next_job;
    job.sid = s.sid;
    job.channel = f.header.channel;
    job.tag = f.header.b;
    job.scenario = std::move(scenario);
    if (!queue.try_push(std::move(job))) {
      bump(&ServeStats::rejected);
      queue_frame(s, FrameType::JobReject, f.header.channel, 0, 0, f.header.b,
                  queue.capacity(),
                  "job queue full (capacity " +
                      std::to_string(queue.capacity()) + ")");
      return;
    }
    ++next_job;
    ++jobs_inflight;
    bump(&ServeStats::accepted);
    queue_frame(s, FrameType::JobAccepted, f.header.channel, 0, job.id,
                f.header.b, queue.depth(), {});
  }

  void handle_frames(Session& s) {
    Frame f;
    std::string err;
    for (;;) {
      const FrameDecoder::Status st = s.decoder.next(f, &err);
      if (st == FrameDecoder::Status::NeedMore) return;
      if (st == FrameDecoder::Status::Bad) {
        // The stream is unrecoverable: one diagnostic, then close.
        bump(&ServeStats::errors);
        queue_frame(s, FrameType::JobError, 0, 0, 0, 0, 0,
                    "malformed frame: " + err);
        s.close_after_flush = true;
        return;
      }
      if (f.header.type == static_cast<std::uint16_t>(FrameType::SubmitJob)) {
        handle_submit(s, f);
      } else {
        // Well-formed but server-bound-invalid (a client echoing response
        // types): same terminal treatment as a malformed frame.
        bump(&ServeStats::errors);
        queue_frame(
            s, FrameType::JobError, f.header.channel, 0, 0, f.header.b, 0,
            std::string("unexpected client frame ") +
                to_string(static_cast<FrameType>(f.header.type)));
        s.close_after_flush = true;
        return;
      }
    }
  }

  // ----- HTTP ------------------------------------------------------------
  std::string metrics_document() {
    MetricsSnapshot snap = aggregate;
    std::map<std::string, std::uint64_t> counters = aggregate_counters;
    ServeStats st = stats();
    counters["serve.jobs_accepted"] += st.accepted;
    counters["serve.jobs_completed"] += st.completed;
    counters["serve.jobs_rejected"] += st.rejected;
    counters["serve.job_errors"] += st.errors;
    counters["serve.sessions"] += st.sessions;
    snap.counters.assign(counters.begin(), counters.end());
    return metrics_json(snap);
  }

  std::string health_document() {
    const ServeStats st = stats();
    std::string out = "{\"status\": \"";
    out += draining ? "draining" : "ok";
    out += "\", \"accepted\": " + std::to_string(st.accepted);
    out += ", \"completed\": " + std::to_string(st.completed);
    out += ", \"rejected\": " + std::to_string(st.rejected);
    out += ", \"errors\": " + std::to_string(st.errors);
    out += ", \"queue_depth\": " + std::to_string(queue.depth());
    out += ", \"queue_capacity\": " + std::to_string(queue.capacity());
    out += ", \"workers\": " + std::to_string(cfg.workers);
    out += "}\n";
    return out;
  }

  void http_respond(Session& s, int code, const char* reason,
                    const std::string& body) {
    std::string resp = "HTTP/1.1 " + std::to_string(code) + " " + reason +
                       "\r\nContent-Type: application/json\r\n"
                       "Content-Length: " + std::to_string(body.size()) +
                       "\r\nConnection: close\r\n\r\n";
    resp += body;
    s.out += resp;
    s.close_after_flush = true;
  }

  void handle_http(Session& s) {
    if (s.http_in.size() > kMaxHttpRequest) {
      http_respond(s, 431, "Request Header Fields Too Large", "{}\n");
      return;
    }
    if (s.http_in.find("\r\n\r\n") == std::string::npos) return;  // need more
    const std::size_t eol = s.http_in.find("\r\n");
    const std::string line = s.http_in.substr(0, eol);
    // "METHOD SP PATH SP VERSION"
    const std::size_t sp1 = line.find(' ');
    const std::size_t sp2 = sp1 == std::string::npos
                                ? std::string::npos
                                : line.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos) {
      http_respond(s, 400, "Bad Request", "{}\n");
      return;
    }
    const std::string method = line.substr(0, sp1);
    const std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
    if (method != "GET") {
      http_respond(s, 405, "Method Not Allowed", "{}\n");
      return;
    }
    if (path == "/health") {
      http_respond(s, 200, "OK", health_document());
    } else if (path == "/metrics") {
      http_respond(s, 200, "OK", metrics_document());
    } else {
      http_respond(s, 404, "Not Found", "{}\n");
    }
  }

  // ----- completions -----------------------------------------------------
  void deliver_completion(const Completion& c) {
    --jobs_inflight;
    if (c.ok) bump(&ServeStats::completed);
    else { bump(&ServeStats::completed); bump(&ServeStats::errors); }
    if (c.have_snapshot) {
      merge_gauge(aggregate.active_set, c.snapshot.active_set);
      merge_gauge(aggregate.wake_heap, c.snapshot.wake_heap);
      merge_gauge(aggregate.inbox_csr, c.snapshot.inbox_csr);
      merge_gauge(aggregate.outbox_arena, c.snapshot.outbox_arena);
      for (const auto& [name, value] : c.snapshot.counters)
        aggregate_counters[name] += value;
    }
    // The session may be gone; results for a dead session are dropped.
    Session* s = nullptr;
    for (auto& [fd, sess] : sessions)
      if (sess.sid == c.sid && !sess.http) { s = &sess; break; }
    if (s == nullptr) return;
    if (!c.ok) {
      queue_frame(*s, FrameType::JobError, c.channel, 0, c.id, c.tag, 0,
                  c.error);
      flush(*s);
      return;
    }
    if (c.have_snapshot) {
      const std::string doc = metrics_json(c.snapshot);
      const std::size_t chunk = cfg.stream_chunk == 0 ? 512 : cfg.stream_chunk;
      std::uint64_t index = 0;
      for (std::size_t pos = 0; pos < doc.size(); pos += chunk, ++index) {
        const std::size_t len = std::min(chunk, doc.size() - pos);
        const bool last = pos + len >= doc.size();
        queue_frame(*s, FrameType::StreamChunk, c.channel,
                    last ? kLastChunk : 0, c.id, c.tag, index,
                    std::string_view(doc).substr(pos, len));
      }
    }
    queue_frame(*s, FrameType::JobResult, c.channel, 0, c.id, c.tag,
                c.violations, encode_result(c.counters));
    flush(*s);
  }

  void process_completions() {
    std::vector<Completion> batch;
    {
      std::lock_guard<std::mutex> lk(completion_mu);
      batch.swap(completions);
    }
    for (const Completion& c : batch) deliver_completion(c);
  }

  // ----- the loop --------------------------------------------------------
  void begin_drain() {
    if (draining) return;
    draining = true;
    {
      std::lock_guard<std::mutex> lk(stats_mu);
      stats_v.draining = true;
    }
    if (listen_fd >= 0) { ::close(listen_fd); listen_fd = -1; }
    if (http_fd >= 0) { ::close(http_fd); http_fd = -1; }
    queue.close();  // workers drain what was accepted, then exit
  }

  void accept_on(int lfd, bool http) {
    for (;;) {
      const int fd = accept_retry(lfd);
      if (fd < 0) return;  // EAGAIN (or a transient error): done for now
      set_nonblocking(fd);
      Session s;
      s.sid = next_sid++;
      s.fd = fd;
      s.http = http;
      sessions.emplace(fd, std::move(s));
      if (!http) bump(&ServeStats::sessions);
    }
  }

  void read_session(Session& s) {
    char buf[65536];
    for (;;) {
      const ssize_t n = recv_retry(s.fd, buf, sizeof(buf));
      if (n > 0) {
        if (s.http) {
          s.http_in.append(buf, static_cast<std::size_t>(n));
          handle_http(s);
        } else if (!s.close_after_flush) {
          s.decoder.feed(buf, static_cast<std::size_t>(n));
          handle_frames(s);
        }
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      // EOF or a hard error: the peer is done.  Anything still buffered
      // outbound is unreachable — drop the session.
      s.dead = true;
      return;
    }
  }

  void io_loop() {
    std::vector<pollfd> fds;
    std::vector<int> session_fds;
    for (;;) {
      fds.clear();
      session_fds.clear();
      fds.push_back({shutdown_rd, POLLIN, 0});
      fds.push_back({completion_rd, POLLIN, 0});
      if (listen_fd >= 0) fds.push_back({listen_fd, POLLIN, 0});
      if (http_fd >= 0) fds.push_back({http_fd, POLLIN, 0});
      const std::size_t first_session = fds.size();
      for (auto& [fd, s] : sessions) {
        short ev = POLLIN;
        if (!s.out.empty()) ev |= POLLOUT;
        fds.push_back({fd, ev, 0});
        session_fds.push_back(fd);
      }

      poll_retry(fds.data(), fds.size(), draining ? 100 : -1);

      if ((fds[0].revents & POLLIN) != 0) {
        drain_pipe(shutdown_rd);
        begin_drain();
      }
      if ((fds[1].revents & POLLIN) != 0) {
        drain_pipe(completion_rd);
        process_completions();
      }
      std::size_t idx = 2;
      if (listen_fd >= 0) {
        if ((fds[idx].revents & POLLIN) != 0) accept_on(listen_fd, false);
        ++idx;
      }
      if (http_fd >= 0) {
        if ((fds[idx].revents & POLLIN) != 0) accept_on(http_fd, true);
        ++idx;
      }
      for (std::size_t i = 0; i < session_fds.size(); ++i) {
        const auto it = sessions.find(session_fds[i]);
        if (it == sessions.end()) continue;
        Session& s = it->second;
        const short rev = fds[first_session + i].revents;
        if ((rev & (POLLERR | POLLHUP | POLLNVAL)) != 0 &&
            (rev & POLLIN) == 0)
          s.dead = true;
        if (!s.dead && (rev & POLLIN) != 0) read_session(s);
        if (!s.dead && (rev & POLLOUT) != 0) flush(s);
        if (!s.dead && !s.out.empty()) flush(s);  // opportunistic
        if (s.dead) {
          ::close(s.fd);
          sessions.erase(it);
        }
      }

      if (draining && jobs_inflight == 0) {
        bool flushing = false;
        for (auto& [fd, s] : sessions)
          if (!s.out.empty()) flushing = true;
        if (!flushing) break;
      }
    }
    for (auto& [fd, s] : sessions) ::close(fd);
    sessions.clear();
  }

  ServeStats stats() const {
    std::lock_guard<std::mutex> lk(stats_mu);
    return stats_v;
  }
};

namespace {
/// The one server the signal handlers target; handlers only touch the
/// shutdown pipe fd (async-signal-safe single write).
std::atomic<int> g_signal_fd{-1};

extern "C" void serve_signal_handler(int) {
  const int fd = g_signal_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char b = 1;
    [[maybe_unused]] const ssize_t n = ::write(fd, &b, 1);
  }
}
}  // namespace

ElectionServer::ElectionServer(ServeConfig cfg)
    : impl_(std::make_unique<Impl>(std::move(cfg))) {}

ElectionServer::~ElectionServer() {
  if (impl_->started && !impl_->joined) {
    request_shutdown();
    wait();
  }
  if (g_signal_fd.load(std::memory_order_relaxed) == impl_->shutdown_wr)
    g_signal_fd.store(-1, std::memory_order_relaxed);
  for (const int fd : {impl_->shutdown_rd, impl_->shutdown_wr,
                       impl_->completion_rd, impl_->completion_wr})
    if (fd >= 0) ::close(fd);
}

void ElectionServer::start() {
  Impl& im = *impl_;
  if (im.started) throw std::runtime_error("server already started");
  int sp[2], cp[2];
  if (::pipe(sp) != 0 || ::pipe(cp) != 0)
    throw std::runtime_error("pipe(): " + std::string(std::strerror(errno)));
  im.shutdown_rd = sp[0];
  im.shutdown_wr = sp[1];
  im.completion_rd = cp[0];
  im.completion_wr = cp[1];
  for (const int fd : {sp[0], sp[1], cp[0], cp[1]}) set_nonblocking(fd);

  im.listen_fd = listen_on(im.cfg.bind, im.cfg.port);
  im.http_fd = listen_on(im.cfg.bind, im.cfg.http_port);
  im.frame_port = bound_port(im.listen_fd);
  im.metrics_port = bound_port(im.http_fd);

  im.started = true;
  im.executor = std::thread([&im] {
    WorkerPool pool(im.cfg.workers);
    pool.run([&im](unsigned) { im.worker_loop(); });
  });
  im.io_thread = std::thread([&im] { im.io_loop(); });
}

std::uint16_t ElectionServer::port() const { return impl_->frame_port; }
std::uint16_t ElectionServer::http_port() const { return impl_->metrics_port; }

void ElectionServer::request_shutdown() {
  if (impl_->shutdown_wr >= 0) write_byte(impl_->shutdown_wr);
}

void ElectionServer::wait() {
  Impl& im = *impl_;
  if (!im.started || im.joined) return;
  if (im.io_thread.joinable()) im.io_thread.join();
  if (im.executor.joinable()) im.executor.join();
  im.joined = true;
}

ServeStats ElectionServer::stats() const { return impl_->stats(); }

void ElectionServer::install_signal_handlers() {
  g_signal_fd.store(impl_->shutdown_wr, std::memory_order_relaxed);
  struct sigaction sa{};
  sa.sa_handler = serve_signal_handler;
  ::sigemptyset(&sa.sa_mask);
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  struct sigaction ign{};
  ign.sa_handler = SIG_IGN;
  ::sigemptyset(&ign.sa_mask);
  ::sigaction(SIGPIPE, &ign, nullptr);
}

}  // namespace ule::serve
