// The election-as-a-service daemon: a POSIX-socket server that accepts
// election/simulation jobs over the FlatMsg-shaped frame protocol
// (serve/frame.hpp), executes them on the existing WorkerPool, and streams
// results back — plus a minimal HTTP side-port serving GET /metrics (strict
// engine_metrics JSON aggregated across completed jobs) and GET /health.
//
// Architecture (docs/SERVER.md is the operator-facing reference):
//
//   IO thread          one poll() loop multiplexing the two listen sockets,
//                      every session socket (non-blocking, per-session
//                      FrameDecoder + outbound buffer), a completion pipe
//                      and a shutdown pipe.  All session and HTTP state is
//                      owned by this thread — no locks on the wire path.
//   executor thread    parks inside WorkerPool::run(worker_loop): every
//                      worker pops jobs from the bounded queue and runs
//                      them through the scenario runner (threads=1 engine
//                      per job — job-level parallelism, not round-level).
//                      Completions post to a mutex-guarded list and wake
//                      the IO thread via the completion pipe.
//
// Contracts:
//   * Results are bit-for-bit what an in-process run of the same token
//     produces: a job is exactly run_scenario(token) with the determinism
//     cross-check off, and the JobResult payload is result_counters() of
//     that run (tests/serve/soak_test.cpp pins this under concurrency).
//   * Backpressure is explicit: a full queue answers JobReject, never a
//     stalled or dropped session (serve/queue.hpp).
//   * Signal hygiene: all socket IO retries EINTR, sends carry MSG_NOSIGNAL
//     (no SIGPIPE from a dead peer), and install_signal_handlers() maps
//     SIGTERM/SIGINT onto request_shutdown() — a DRAIN: accepted jobs
//     finish, results flush, then the loop exits (tests kill a daemon
//     mid-job and still collect the result).
//   * A malformed frame gets JobError and a session close; a malformed
//     token inside a valid frame gets JobError with the parser diagnostic
//     and the session stays open.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <thread>

namespace ule::serve {

struct ServeConfig {
  std::string bind = "127.0.0.1";
  std::uint16_t port = 0;       ///< frame port (0 = ephemeral, see port())
  std::uint16_t http_port = 0;  ///< /metrics + /health port (0 = ephemeral)
  unsigned workers = 2;         ///< WorkerPool size executing jobs
  std::size_t queue_capacity = 256;  ///< bounded job queue (backpressure)
  std::size_t stream_chunk = 512;    ///< StreamChunk payload bytes
  bool metrics = true;  ///< per-job engine telemetry, streamed + aggregated
};

struct ServeStats {
  std::uint64_t accepted = 0;   ///< jobs enqueued (JobAccepted sent)
  std::uint64_t completed = 0;  ///< jobs finished (JobResult/JobError sent)
  std::uint64_t rejected = 0;   ///< backpressure rejections (JobReject sent)
  std::uint64_t errors = 0;     ///< JobError frames sent
  std::uint64_t sessions = 0;   ///< frame sessions ever accepted
  bool draining = false;
};

class ElectionServer {
 public:
  explicit ElectionServer(ServeConfig cfg = {});
  ~ElectionServer();

  ElectionServer(const ElectionServer&) = delete;
  ElectionServer& operator=(const ElectionServer&) = delete;

  /// Bind + listen on both ports and spawn the IO and executor threads.
  /// Throws std::runtime_error on any socket failure.
  void start();

  /// Actual bound ports (resolves port 0), valid after start().
  std::uint16_t port() const;
  std::uint16_t http_port() const;

  /// Begin a graceful drain: stop accepting, finish in-flight jobs, flush
  /// results, exit the IO loop.  Safe from any thread; the signal handlers
  /// installed by install_signal_handlers() call the async-signal-safe core
  /// of this (one write to a pipe).
  void request_shutdown();

  /// Block until the IO loop has exited and every thread is joined.
  void wait();

  ServeStats stats() const;

  /// Ignore SIGPIPE and route SIGTERM/SIGINT to request_shutdown() of this
  /// server (one live instance at a time).  Called by the daemon binary and
  /// the drain tests.
  void install_signal_handlers();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace ule::serve
