// Payload grammars of the serve wire protocol (serve/frame.hpp): what goes
// INSIDE SubmitJob and JobResult frames.  Both grammars are deliberately
// line-oriented text — deterministic to the byte, diffable by eye, and
// parseable without a JSON library on either end.
//
// Submit payload (SubmitJob):
//   * default: a full `ule1:` replay token (docs/REPLAY.md) — the exact
//     string the fuzzer prints and run_scenario replays.
//   * with serve::kSubmitFields: explicit scenario fields as
//     `key=value;key=value;...`.  Recognized keys: family, protocol, k, w,
//     s, t (with the token grammar's value syntax) plus the optional a / f /
//     r tails; every OTHER key is a family parameter, kept in the order
//     given.  Example:
//       family=ring;n=16;protocol=flood_max;k=none;w=sim;s=7;t=1
//     The server assembles the fields into a token and parses it through
//     Scenario::parse, so both forms hit the same validation path.
//
// Result payload (JobResult): the result grammar — one `name=value` line
// per counter, in the fixed order result_counters() emits.  The counters
// cover every deterministic RunResult field, the verdict, and a digest over
// the per-node outcome vectors (statuses + send counts), so "the daemon
// returned bit-for-bit what an in-process run_election produces" is a
// straight vector comparison: run the token locally, render result_counters
// of both, diff.  Wall-clock never appears — every line is a pure function
// of the token.

#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "election/election.hpp"
#include "scenario/scenario.hpp"

namespace ule::serve {

/// Named deterministic counters of one finished run, in a fixed order (see
/// file comment).  Identical scenarios produce identical vectors.
using ResultCounters = std::vector<std::pair<std::string, std::uint64_t>>;

/// Flatten a finished run into the result grammar's counter vector.
ResultCounters result_counters(const ElectionReport& rep);

/// Render counters as the JobResult payload (one `name=value\n` per entry).
std::string encode_result(const ResultCounters& counters);

/// Parse a JobResult payload back into its counter vector.  Throws
/// std::invalid_argument on a malformed line.
ResultCounters parse_result(const std::string& payload);

/// Interpret a SubmitJob payload (token or — when kSubmitFields is set —
/// explicit fields) as a Scenario.  Throws std::invalid_argument with a
/// client-facing diagnostic on malformed input.
Scenario parse_submit(const std::string& payload, std::uint8_t flags);

/// FNV-1a over the per-node outcome vectors (statuses, then send counts):
/// one word that pins "every node ended in the same state with the same
/// traffic" without shipping n-sized vectors per job.
std::uint64_t outcome_digest(const ElectionReport& rep);

}  // namespace ule::serve
