#include "serve/frame.hpp"

#include <stdexcept>

namespace ule::serve {

namespace {

void put_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

std::uint64_t get_le(const char* p, int bytes) {
  std::uint64_t v = 0;
  for (int i = 0; i < bytes; ++i)
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  return v;
}

}  // namespace

bool known_frame_type(std::uint16_t t) {
  return t >= static_cast<std::uint16_t>(FrameType::SubmitJob) &&
         t <= static_cast<std::uint16_t>(FrameType::JobError);
}

const char* to_string(FrameType t) {
  switch (t) {
    case FrameType::SubmitJob: return "SubmitJob";
    case FrameType::JobAccepted: return "JobAccepted";
    case FrameType::JobReject: return "JobReject";
    case FrameType::StreamChunk: return "StreamChunk";
    case FrameType::JobResult: return "JobResult";
    case FrameType::JobError: return "JobError";
  }
  return "?";
}

std::string encode_frame(FrameType type, std::uint8_t channel,
                         std::uint8_t flags, std::uint64_t a, std::uint64_t b,
                         std::uint64_t c, std::string_view payload) {
  if (payload.size() > kMaxPayload)
    throw std::invalid_argument("frame payload of " +
                                std::to_string(payload.size()) +
                                " bytes exceeds kMaxPayload");
  std::string out;
  out.reserve(kHeaderBytes + payload.size());
  put_u16(out, static_cast<std::uint16_t>(type));
  out.push_back(static_cast<char>(channel));
  out.push_back(static_cast<char>(flags));
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  put_u64(out, a);
  put_u64(out, b);
  put_u64(out, c);
  out.append(payload);
  return out;
}

void FrameDecoder::feed(const char* data, std::size_t len) {
  if (bad_) return;
  // Drop the consumed prefix before growing, so the buffer stays bounded by
  // one frame plus whatever the last read delivered.
  if (pos_ > 0) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  buf_.append(data, len);
}

FrameDecoder::Status FrameDecoder::next(Frame& out, std::string* error) {
  if (bad_) {
    if (error != nullptr) *error = bad_reason_;
    return Status::Bad;
  }
  const std::size_t avail = buf_.size() - pos_;
  if (avail < kHeaderBytes) return Status::NeedMore;

  const char* h = buf_.data() + pos_;
  FrameHeader hdr;
  hdr.type = static_cast<std::uint16_t>(get_le(h, 2));
  hdr.channel = static_cast<std::uint8_t>(get_le(h + 2, 1));
  hdr.flags = static_cast<std::uint8_t>(get_le(h + 3, 1));
  hdr.length = static_cast<std::uint32_t>(get_le(h + 4, 4));
  hdr.a = get_le(h + 8, 8);
  hdr.b = get_le(h + 16, 8);
  hdr.c = get_le(h + 24, 8);

  // Validate BEFORE sizing any allocation off the length field: an unknown
  // type or an oversized length poisons the stream for good.
  if (!known_frame_type(hdr.type)) {
    bad_ = true;
    bad_reason_ =
        "unknown frame type " + std::to_string(hdr.type) + " (garbage frame?)";
    if (error != nullptr) *error = bad_reason_;
    return Status::Bad;
  }
  if (hdr.length > kMaxPayload) {
    bad_ = true;
    bad_reason_ = "frame payload length " + std::to_string(hdr.length) +
                  " exceeds the " + std::to_string(kMaxPayload) + "-byte cap";
    if (error != nullptr) *error = bad_reason_;
    return Status::Bad;
  }
  if (avail < kHeaderBytes + hdr.length) return Status::NeedMore;

  out.header = hdr;
  out.payload.assign(buf_, pos_ + kHeaderBytes, hdr.length);
  pos_ += kHeaderBytes + hdr.length;
  return Status::Frame;
}

}  // namespace ule::serve
