#include "serve/client.hpp"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <stdexcept>

namespace ule::serve {

namespace {

int connect_to(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0)
    throw std::runtime_error("socket(): " + std::string(std::strerror(errno)));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("bad host \"" + host + "\"");
  }
  for (;;) {
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0)
      return fd;
    if (errno == EINTR) continue;
    const std::string err = std::strerror(errno);
    ::close(fd);
    throw std::runtime_error("connect(" + host + ":" + std::to_string(port) +
                             "): " + err);
  }
}

void send_all(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("send(): " + std::string(std::strerror(errno)));
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
}

}  // namespace

ServeClient::~ServeClient() { close(); }

void ServeClient::connect(const std::string& host, std::uint16_t port) {
  close();
  fd_ = connect_to(host, port);
}

void ServeClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void ServeClient::send_frame(FrameType type, std::uint8_t channel,
                             std::uint8_t flags, std::uint64_t a,
                             std::uint64_t b, std::uint64_t c,
                             std::string_view payload) {
  send_raw(encode_frame(type, channel, flags, a, b, c, payload));
}

void ServeClient::send_raw(std::string_view bytes) {
  if (fd_ < 0) throw std::runtime_error("client not connected");
  send_all(fd_, bytes.data(), bytes.size());
}

bool ServeClient::read_frame(Frame& out) {
  if (fd_ < 0) throw std::runtime_error("client not connected");
  std::string err;
  for (;;) {
    const FrameDecoder::Status st = decoder_.next(out, &err);
    if (st == FrameDecoder::Status::Frame) return true;
    if (st == FrameDecoder::Status::Bad)
      throw std::runtime_error("bad frame from server: " + err);
    char buf[65536];
    for (;;) {
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n > 0) {
        decoder_.feed(buf, static_cast<std::size_t>(n));
        break;
      }
      if (n == 0) return false;  // EOF
      if (errno == EINTR) continue;
      throw std::runtime_error("recv(): " + std::string(std::strerror(errno)));
    }
  }
}

ServeClient::Submission ServeClient::submit(std::uint8_t flags,
                                            const std::string& payload,
                                            std::uint64_t tag,
                                            std::uint8_t channel) {
  send_frame(FrameType::SubmitJob, channel, flags, 0, tag, 0, payload);
  Frame f;
  for (;;) {
    if (!read_frame(f))
      throw std::runtime_error("server closed the session before answering");
    Submission sub;
    switch (static_cast<FrameType>(f.header.type)) {
      case FrameType::JobAccepted:
        sub.accepted = true;
        sub.job_id = f.header.a;
        return sub;
      case FrameType::JobReject:
        sub.accepted = false;
        sub.reject_reason = f.payload;
        return sub;
      case FrameType::JobError:
        // a == 0 means "this submit" (the job never existed); a JobError
        // carrying a job id belongs to an earlier pipelined job.
        if (f.header.a == 0)
          throw std::runtime_error("submit rejected: " + f.payload);
        pending_.push_back(std::move(f));
        continue;
      case FrameType::StreamChunk:
      case FrameType::JobResult:
        // An earlier pipelined job finishing; park it for await_result().
        pending_.push_back(std::move(f));
        continue;
      default:
        throw std::runtime_error(
            std::string("unexpected reply to SubmitJob: ") +
            to_string(static_cast<FrameType>(f.header.type)));
    }
  }
}

ServeClient::Submission ServeClient::submit_token(const std::string& token,
                                                  std::uint64_t tag,
                                                  std::uint8_t channel) {
  return submit(0, token, tag, channel);
}

ServeClient::Submission ServeClient::submit_fields(const std::string& fields,
                                                   std::uint64_t tag,
                                                   std::uint8_t channel) {
  return submit(kSubmitFields, fields, tag, channel);
}

ServeClient::JobReply ServeClient::await_result(std::uint64_t job_id) {
  JobReply reply;
  Frame f;
  std::size_t scanned = 0;  // pending_ frames already inspected this call
  for (;;) {
    bool from_pending = false;
    if (scanned < pending_.size()) {
      f = std::move(pending_[scanned]);
      pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(scanned));
      from_pending = true;
    } else if (!read_frame(f)) {
      throw std::runtime_error("server closed the session mid-job");
    }
    const auto type = static_cast<FrameType>(f.header.type);
    if (type == FrameType::StreamChunk && f.header.a == job_id) {
      reply.metrics_doc += f.payload;
      continue;
    }
    if (type == FrameType::JobResult && f.header.a == job_id) {
      reply.ok = true;
      reply.violations = f.header.c;
      reply.counters = parse_result(f.payload);
      return reply;
    }
    if (type == FrameType::JobError && f.header.a == job_id) {
      reply.ok = false;
      reply.error = f.payload;
      return reply;
    }
    // A frame for some other pipelined job: keep it (in order) for its own
    // await_result().
    if (type == FrameType::StreamChunk || type == FrameType::JobResult ||
        type == FrameType::JobError) {
      if (from_pending) {
        pending_.insert(pending_.begin() + static_cast<std::ptrdiff_t>(scanned),
                        std::move(f));
        ++scanned;
      } else {
        pending_.push_back(std::move(f));
        ++scanned;  // == pending_.size(); don't re-inspect it this call
      }
      continue;
    }
    throw std::runtime_error(std::string("unexpected frame ") +
                             to_string(type) + " while awaiting job " +
                             std::to_string(job_id));
  }
}

int http_get(const std::string& host, std::uint16_t port,
             const std::string& path, std::string* body) {
  const int fd = connect_to(host, port);
  const std::string req = "GET " + path + " HTTP/1.1\r\nHost: " + host +
                          "\r\nConnection: close\r\n\r\n";
  try {
    send_all(fd, req.data(), req.size());
  } catch (...) {
    ::close(fd);
    throw;
  }
  std::string resp;
  char buf[65536];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n > 0) {
      resp.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    break;  // EOF or error: response complete (Connection: close)
  }
  ::close(fd);
  const std::size_t sp = resp.find(' ');
  if (resp.rfind("HTTP/", 0) != 0 || sp == std::string::npos)
    throw std::runtime_error("malformed HTTP response");
  const int code = std::atoi(resp.c_str() + sp + 1);
  if (body != nullptr) {
    const std::size_t sep = resp.find("\r\n\r\n");
    *body = sep == std::string::npos ? "" : resp.substr(sep + 4);
  }
  return code;
}

}  // namespace ule::serve
