// The election-as-a-service wire protocol: length-prefixed typed frames
// whose 32-byte header IS the FlatMsg POD layout (net/message.hpp) put on a
// socket.  The engine's hot-path message — type tag, channel, flags, a
// 32-bit size slot and three 64-bit payload words — needed no redesign to
// become a wire format; the only reinterpretation is that the size slot
// (`FlatMsg::bits`) now counts the variable-length payload bytes that follow
// the header.
//
// Frame layout (little-endian, no padding — serialized field by field, never
// memcpy'd through a struct):
//
//   offset  size  field     FlatMsg analogue
//   0       2     type      FlatMsg::type     frame discriminator, non-zero
//   2       1     channel   FlatMsg::channel  client-chosen session channel,
//                                             echoed verbatim in responses
//   3       1     flags     FlatMsg::flags    per-type flag bits (below)
//   4       4     length    FlatMsg::bits     payload bytes following the
//                                             header, <= kMaxPayload
//   8       8     a         FlatMsg::a        per-type word (job id, ...)
//   16      8     b         FlatMsg::b        per-type word (client tag, ...)
//   24      8     c         FlatMsg::c        per-type word (counts, ...)
//   32      len   payload                     type-specific bytes
//
// Frame types and their word/payload conventions (docs/SERVER.md is the
// reference, including the submit and result payload grammars):
//
//   SubmitJob    client -> server.  payload = a `ule1:` replay token
//                (docs/REPLAY.md), or — with kSubmitFields set — explicit
//                `key=value;...` scenario fields the server assembles into a
//                token.  b = client correlation tag, echoed in every frame
//                the job produces.
//   JobAccepted  server -> client.  a = server job id, b = client tag,
//                c = queue depth after enqueue.  No payload.
//   JobReject    server -> client.  Backpressure: the bounded queue was full
//                (or the daemon is draining).  b = client tag, c = queue
//                capacity.  payload = one-line reason.
//   StreamChunk  server -> client.  Telemetry stream: the job's
//                engine_metrics snapshot JSON (net/metrics.hpp), split into
//                bounded chunks.  a = job id, b = client tag, c = chunk
//                index; kLastChunk marks the final chunk.
//   JobResult    server -> client.  a = job id, b = client tag,
//                c = violation count.  payload = the result grammar: one
//                `name=value` line per RunResult counter (result_counters in
//                serve/protocol.hpp), bit-for-bit comparable against an
//                in-process run_election of the same token.
//   JobError     server -> client.  a = job id (0 when the job never
//                existed), b = client tag.  payload = one-line diagnostic.
//                A malformed FRAME additionally closes the session (the
//                stream can no longer be trusted); a malformed TOKEN inside
//                a well-formed frame leaves the session open.
//
// Decoder contract (the fuzz target, tests/serve/frame_test.cpp): feed()
// arbitrary bytes, next() yields complete frames.  A short read is NeedMore,
// never a partial frame; an unknown type or a length above kMaxPayload is
// Bad with a one-line reason and the decoder refuses further input — the
// server answers JobError and closes.  The decoder never allocates more
// than header + kMaxPayload bytes per frame, so a hostile length field
// cannot balloon memory.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace ule::serve {

enum class FrameType : std::uint16_t {
  SubmitJob = 1,
  JobAccepted = 2,
  JobReject = 3,
  StreamChunk = 4,
  JobResult = 5,
  JobError = 6,
};

/// Frame flag bits (FrameHeader::flags).
inline constexpr std::uint8_t kSubmitFields = 1;  ///< SubmitJob: payload is
                                                  ///< key=value;... fields
inline constexpr std::uint8_t kLastChunk = 1;     ///< StreamChunk: final chunk

inline constexpr std::size_t kHeaderBytes = 32;
/// Hard cap on a frame's payload; a decoded length above this is a protocol
/// violation, not a large allocation.
inline constexpr std::uint32_t kMaxPayload = 1u << 20;

/// The FlatMsg-shaped frame header (see file comment for the field map).
struct FrameHeader {
  std::uint16_t type = 0;
  std::uint8_t channel = 0;
  std::uint8_t flags = 0;
  std::uint32_t length = 0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t c = 0;

  bool operator==(const FrameHeader&) const = default;
};

struct Frame {
  FrameHeader header;
  std::string payload;

  bool operator==(const Frame&) const = default;
};

/// True iff `t` is a known FrameType discriminator.
bool known_frame_type(std::uint16_t t);
const char* to_string(FrameType t);

/// Serialize header + payload (header.length is taken from payload.size();
/// throws std::invalid_argument when the payload exceeds kMaxPayload).
std::string encode_frame(FrameType type, std::uint8_t channel,
                         std::uint8_t flags, std::uint64_t a, std::uint64_t b,
                         std::uint64_t c, std::string_view payload);
inline std::string encode_frame(const Frame& f) {
  return encode_frame(static_cast<FrameType>(f.header.type), f.header.channel,
                      f.header.flags, f.header.a, f.header.b, f.header.c,
                      f.payload);
}

/// Incremental, allocation-bounded frame decoder (see file comment).
class FrameDecoder {
 public:
  enum class Status {
    Frame,     ///< `out` holds the next complete frame
    NeedMore,  ///< no complete frame buffered yet
    Bad,       ///< protocol violation; the stream is dead
  };

  /// Append raw socket bytes.  Once Bad, further input is ignored.
  void feed(const char* data, std::size_t len);

  /// Extract the next complete frame.  On Bad, `error` (when non-null)
  /// receives a one-line reason; every later call stays Bad.
  Status next(Frame& out, std::string* error);

  bool bad() const { return bad_; }
  /// Bytes buffered but not yet consumed (bounded by header + kMaxPayload
  /// plus the size of the last feed() call).
  std::size_t buffered() const { return buf_.size() - pos_; }

 private:
  std::string buf_;
  std::size_t pos_ = 0;  ///< consumed prefix of buf_
  bool bad_ = false;
  std::string bad_reason_;
};

}  // namespace ule::serve
