// Theorem 4.10 / Algorithm 2 — the deterministic growing-kingdoms
// algorithm, measured: O(D log n) rounds, O(m log n) messages, no knowledge.

#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "election/kingdom.hpp"
#include "graphgen/generators.hpp"
#include "graphgen/graph_algos.hpp"
#include "net/engine.hpp"

using namespace ule;

int main() {
  bench::header("Theorem 4.10: growing kingdoms (Algorithm 2)",
                "deterministic; O(D log n) time, O(m log n) messages; "
                "no knowledge of n, m, D");

  Rng rng(8);
  std::printf("%-14s %7s %5s | %10s %14s | %8s %14s | %7s\n", "graph", "m",
              "D", "messages", "msgs/(m*logn)", "rounds", "rnds/(D*logn)",
              "phases");
  bench::row_divider(96);

  struct Row {
    std::string name;
    Graph g;
  };
  std::vector<Row> rows;
  rows.push_back({"cycle64", make_cycle(64)});
  rows.push_back({"cycle256", make_cycle(256)});
  rows.push_back({"grid8x8", make_grid(8, 8)});
  rows.push_back({"grid16x16", make_grid(16, 16)});
  rows.push_back({"complete32", make_complete(32)});
  rows.push_back({"star128", make_star(128)});
  rows.push_back({"gnm128-512", make_random_connected(128, 512, rng)});
  rows.push_back({"gnm256-1024", make_random_connected(256, 1024, rng)});
  rows.push_back({"hypercube7", make_hypercube(7)});

  for (const auto& row : rows) {
    const auto d = std::max(1u, diameter_exact(row.g));
    EngineConfig cfg;
    cfg.seed = 17;
    cfg.max_rounds = 10'000'000;
    SyncEngine eng(row.g, cfg);
    Rng id_rng(17);
    eng.set_uids(assign_ids(row.g.n(), IdScheme::RandomFromZ, id_rng));
    eng.init_processes(make_kingdom());
    const RunResult res = eng.run();

    std::uint32_t max_phase = 0;
    for (NodeId s = 0; s < row.g.n(); ++s) {
      max_phase = std::max(
          max_phase,
          dynamic_cast<const KingdomProcess*>(eng.process(s))->phases_played());
    }
    const double logn = std::log2(static_cast<double>(row.g.n()));
    std::printf("%-14s %7zu %5u | %10llu %14.2f | %8llu %14.2f | %7u%s\n",
                row.name.c_str(), row.g.m(), d,
                static_cast<unsigned long long>(res.messages),
                static_cast<double>(res.messages) / (row.g.m() * logn),
                static_cast<unsigned long long>(res.rounds),
                static_cast<double>(res.rounds) / (d * logn), max_phase,
                res.elected == 1 ? "" : "  FAIL");
  }

  std::printf("\n[known-D variant (paper: 'Knowledge of D')]\n");
  std::printf("%-14s | %-10s %-10s | %-10s %-10s\n", "graph",
              "genl rounds", "genl msgs", "knownD rnds", "knownD msgs");
  bench::row_divider(68);
  for (const auto& row : rows) {
    const auto d = std::max(1u, diameter_exact(row.g));
    RunOptions opt;
    opt.seed = 17;
    opt.max_rounds = 10'000'000;
    const auto general = run_election(row.g, make_kingdom(), opt);
    KingdomConfig kc;
    kc.known_diameter = d;
    RunOptions opt2 = opt;
    opt2.knowledge = Knowledge::of_n_d(row.g.n(), d);
    const auto knownd = run_election(row.g, make_kingdom(kc), opt2);
    std::printf("%-14s | %10llu %10llu | %10llu %10llu\n", row.name.c_str(),
                static_cast<unsigned long long>(general.run.rounds),
                static_cast<unsigned long long>(general.run.messages),
                static_cast<unsigned long long>(knownd.run.rounds),
                static_cast<unsigned long long>(knownd.run.messages));
  }
  std::printf(
      "shape check: ratio columns bounded across families; phases <= ~log n\n"
      "+ log D; the known-D variant trades phases for bigger first waves.\n");
  return 0;
}
