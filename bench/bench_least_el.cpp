// Theorem 4.4 (+ variants A and B) — the least-element-list family.
//
// Sweeps f(n) ∈ {1, 4ln(1/ε), log n, n} on a fixed graph and graph sizes
// for fixed f, reporting:
//   messages / (m · min(log2 f(n), D))  — the claimed message bound,
//   rounds / D                          — the claimed O(D) time,
//   measured success rate vs the claimed 1 - e^{-Θ(f(n))}.
// Plus the rank-domain ablation: how fast collisions (≥2 leaders) appear
// when |Z| shrinks below the paper's n^4 and the tiebreak is disabled.

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "election/least_el.hpp"
#include "graphgen/generators.hpp"
#include "graphgen/graph_algos.hpp"

using namespace ule;

int main() {
  bench::header("Theorem 4.4: least-element election, candidate trade-off",
                "O(D) time, O(m min(log f(n), D)) msgs, success "
                "1 - e^{-Theta(f(n))}");

  Rng rng(2);
  const std::size_t n = 256;
  const Graph g = make_random_connected(n, 1536, rng);
  const auto diam = diameter_exact(g);
  std::printf("graph: %s, D=%u\n\n", g.summary().c_str(), diam);

  std::printf("[f(n) sweep, %zu trials each]\n", std::size_t{25});
  std::printf("%-14s %8s | %10s %16s | %8s %8s | %9s %9s\n", "f(n)", "value",
              "messages", "msgs/(m*minlogf)", "rounds", "rnds/D", "success",
              "predicted");
  bench::row_divider(100);

  struct FRow {
    const char* label;
    double f;
  };
  const std::vector<FRow> fs = {
      {"1", 1.0},
      {"2", 2.0},
      {"4ln(20)  [B]", 4.0 * std::log(20.0)},
      {"log2 n   [A]", std::log2(static_cast<double>(n))},
      {"sqrt n", std::sqrt(static_cast<double>(n))},
      {"n", static_cast<double>(n)},
  };
  for (const auto& fr : fs) {
    LeastElConfig cfg = LeastElConfig::theorem_4_4(fr.f);
    RunOptions opt;
    opt.knowledge = Knowledge::of_n(n);
    opt.seed = 500;
    const auto st = bench::measure(g, make_least_el(cfg), opt, 25);
    const double minlogf =
        std::max(1.0, std::min(std::log2(std::max(2.0, fr.f)),
                               static_cast<double>(diam)));
    const double predicted = 1.0 - std::exp(-fr.f);
    std::printf("%-14s %8.1f | %10.0f %16.2f | %8.1f %8.2f | %8.0f%% %8.0f%%\n",
                fr.label, fr.f, st.mean_messages,
                st.mean_messages / (g.m() * minlogf), st.mean_rounds,
                st.mean_rounds / diam, 100.0 * st.success_rate,
                100.0 * predicted);
  }

  std::printf("\n[size sweep at f=n: msgs/(m log n) and rounds/D stay flat]\n");
  std::printf("%-12s %6s %7s %5s | %10s %14s | %8s %8s\n", "graph", "n", "m",
              "D", "messages", "msgs/(m*logn)", "rounds", "rnds/D");
  bench::row_divider(90);
  for (const std::size_t nn : {64u, 128u, 256u, 512u}) {
    const Graph gg = make_random_connected(nn, 4 * nn, rng);
    const auto d = diameter_exact(gg);
    RunOptions opt;
    opt.knowledge = Knowledge::of_n(nn);
    opt.seed = 900;
    const auto st = bench::measure(
        gg, make_least_el(LeastElConfig::all_candidates()), opt, 10);
    std::printf("%-12s %6zu %7zu %5u | %10.0f %14.2f | %8.1f %8.2f\n",
                ("gnm" + std::to_string(nn)).c_str(), nn, gg.m(), d,
                st.mean_messages,
                st.mean_messages / (gg.m() * std::log2(double(nn))),
                st.mean_rounds, st.mean_rounds / d);
  }

  std::printf(
      "\n[ablation: rank domain |Z| vs duplicate-leader rate, no tiebreak,\n"
      " path(64), f=n, 60 trials — why the paper takes |Z| = n^4]\n");
  std::printf("%-14s %12s %12s\n", "|Z|", "multi-lead", "unique");
  bench::row_divider(42);
  const Graph pg = make_path(64);
  for (const std::uint64_t space :
       {std::uint64_t{4}, std::uint64_t{16}, std::uint64_t{64},
        std::uint64_t{4096}, id_space_size(64)}) {
    LeastElConfig cfg = LeastElConfig::all_candidates();
    cfg.rank_space = space;
    cfg.tiebreak = LeastElConfig::Tiebreak::None;
    std::size_t multi = 0, uniq = 0;
    for (std::uint64_t seed = 1; seed <= 60; ++seed) {
      RunOptions opt;
      opt.knowledge = Knowledge::of_n(pg.n());
      opt.seed = seed * 37;
      const auto rep = run_election(pg, make_least_el(cfg), opt);
      multi += rep.verdict.elected >= 2;
      uniq += rep.verdict.unique_leader;
    }
    std::printf("%-14llu %11zu%% %11zu%%\n",
                static_cast<unsigned long long>(space), multi * 100 / 60,
                uniq * 100 / 60);
  }
  std::printf(
      "shape check: success tracks 1-e^{-f}; msgs grow with log f but cap\n"
      "at the D regime; collisions vanish once |Z| >> n^2 pairs.\n");
  return 0;
}
