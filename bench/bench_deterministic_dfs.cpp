// Theorem 4.1 — the deterministic O(m)-message algorithm, measured.
//
// Rows: graph families with wildly different n, m, D.  Claim shape: the
// messages/m ratio stays below ~4 everywhere (the paper's 4m+2D+2m budget),
// while time explodes exponentially in the smallest ID — also measured, via
// the engine's fast-forwarded logical clock.

#include <chrono>
#include <cstdio>

#include "bench_util.hpp"
#include "election/dfs_election.hpp"
#include "graphgen/generators.hpp"
#include "graphgen/graph_algos.hpp"
#include "net/wakeup.hpp"

using namespace ule;

int main() {
  bench::header("Theorem 4.1: deterministic O(m) messages (DFS agents)",
                "O(m) messages universally; arbitrary finite time "
                "(~4m * 2^{min id} rounds)");

  Rng rng(5);
  struct Row {
    std::string name;
    Graph g;
  };
  std::vector<Row> rows;
  rows.push_back({"cycle128", make_cycle(128)});
  rows.push_back({"path96", make_path(96)});
  rows.push_back({"star128", make_star(128)});
  rows.push_back({"complete24", make_complete(24)});
  rows.push_back({"grid10x10", make_grid(10, 10)});
  rows.push_back({"gnm128-512", make_random_connected(128, 512, rng)});
  rows.push_back({"gnm128-2048", make_random_connected(128, 2048, rng)});
  rows.push_back({"hypercube7", make_hypercube(7)});

  std::printf("%-14s %6s %7s | %10s %9s | %14s | %7s\n", "graph", "n", "m",
              "messages", "msgs/m", "logical rounds", "leader");
  bench::row_divider(80);
  for (const auto& row : rows) {
    RunOptions opt;
    opt.seed = 31;
    opt.ids = IdScheme::RandomPermutation;
    opt.max_rounds = Round{1} << 62;
    const auto rep = run_election(row.g, make_dfs_election(), opt);
    std::printf("%-14s %6zu %7zu | %10llu %9.2f | %14llu | %7s\n",
                row.name.c_str(), row.g.n(), row.g.m(),
                static_cast<unsigned long long>(rep.run.messages),
                static_cast<double>(rep.run.messages) / row.g.m(),
                static_cast<unsigned long long>(rep.run.rounds),
                rep.verdict.unique_leader ? "unique" : "FAIL");
  }

  std::printf("\n[ablation] time vs smallest ID (cycle32, ids base..base+31)\n");
  std::printf("%-10s %16s %12s\n", "min id", "logical rounds", "messages");
  bench::row_divider(44);
  const Graph g = make_cycle(32);
  for (const Uid base : {1u, 2u, 4u, 6u, 8u}) {
    EngineConfig cfg;
    cfg.max_rounds = Round{1} << 62;
    SyncEngine eng(g, cfg);
    std::vector<Uid> ids(g.n());
    for (NodeId s = 0; s < g.n(); ++s) ids[s] = base + s;
    eng.set_uids(ids);
    eng.init_processes(make_dfs_election());
    const RunResult res = eng.run();
    std::printf("%-10llu %16llu %12llu\n",
                static_cast<unsigned long long>(base),
                static_cast<unsigned long long>(res.rounds),
                static_cast<unsigned long long>(res.messages));
  }

  std::printf(
      "\n[adversarial wakeup] with wake-broadcast (cost <= 2m extra)\n");
  std::printf("%-14s %10s %9s %7s\n", "graph", "messages", "msgs/m", "leader");
  bench::row_divider(44);
  for (const auto& row : rows) {
    DfsConfig dcfg;
    dcfg.wake_broadcast = true;
    RunOptions opt;
    opt.seed = 31;
    opt.ids = IdScheme::RandomPermutation;
    opt.max_rounds = Round{1} << 62;
    Rng wk(7);
    opt.wakeup = random_wakeup(row.g.n(), 8, wk);
    const auto rep = run_election(row.g, make_dfs_election(dcfg), opt);
    std::printf("%-14s %10llu %9.2f %7s\n", row.name.c_str(),
                static_cast<unsigned long long>(rep.run.messages),
                static_cast<double>(rep.run.messages) / row.g.m(),
                rep.verdict.unique_leader ? "unique" : "FAIL");
  }
  std::printf("\n[ablation] fast-forward on/off: identical logical results,"
              "\n  wall-clock separated by the 2^minID quiet stretches\n");
  std::printf("%-12s %14s %12s %12s\n", "fast-forward", "logical rounds",
              "messages", "wall ms");
  bench::row_divider(56);
  for (const bool ff : {true, false}) {
    const Graph g2 = make_cycle(24);
    EngineConfig cfg;
    cfg.max_rounds = Round{1} << 62;
    cfg.fast_forward = ff;
    SyncEngine eng(g2, cfg);
    std::vector<Uid> ids(g2.n());
    for (NodeId s = 0; s < g2.n(); ++s) ids[s] = 10 + s;  // min id 10
    eng.set_uids(ids);
    eng.init_processes(make_dfs_election());
    const auto t0 = std::chrono::steady_clock::now();
    const RunResult res = eng.run();
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    std::printf("%-12s %14llu %12llu %12.2f\n", ff ? "on" : "off",
                static_cast<unsigned long long>(res.rounds),
                static_cast<unsigned long long>(res.messages), ms);
  }

  std::printf(
      "shape check: msgs/m flat (<~4 simultaneous, <~6 adversarial) across\n"
      "all families; logical time doubles per +1 of the smallest ID; the\n"
      "fast-forward rows agree on every logical number, only wall-clock\n"
      "differs (what makes Theorem 4.1's 2^ID delays simulable).\n");
  return 0;
}
