// The intro's motivating observation, measured: "even Ω(n) ... is not a
// lower bound on the messages in complete networks" — [14]'s sublinear
// election makes the paper's universal Ω(m) bound non-obvious, and the
// dumbbell construction is what walls it off from general graphs.
//
// Sweeps K_n and prints the sublinear algorithm against variant B (the
// O(m)-message universal optimum) and against the n and m yardsticks.
// On cliques m = n(n-1)/2, so even an O(m)-optimal universal algorithm
// pays Θ(n^2) here while [14] pays Θ(sqrt(n) log^{3/2} n).

#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "election/least_el.hpp"
#include "election/sublinear_complete.hpp"
#include "graphgen/generators.hpp"

using namespace ule;

int main() {
  bench::header("[14] sublinear election on complete graphs",
                "O(sqrt(n) log^{3/2} n) msgs, O(1) time, whp success — vs "
                "the O(m)-message universal optimum");

  std::printf("%6s %9s | %10s %9s %9s | %10s %9s | %7s\n", "n", "m",
              "sublinear", "/sqrt*lg", "/n", "variantB", "/m", "success");
  bench::row_divider(92);
  for (const std::size_t n : {64u, 128u, 256u, 512u, 1024u}) {
    const Graph g = make_complete(n);
    RunOptions opt;
    opt.seed = 11;
    opt.knowledge = Knowledge::of_n(n);
    const auto sub = bench::measure(g, make_sublinear_complete(), opt, 15);
    const auto vb = bench::measure(
        g, make_least_el(LeastElConfig::variant_B(0.05)), opt, 3);
    const double dn = static_cast<double>(n);
    const double yard = std::sqrt(dn) * std::pow(std::log2(dn), 1.5);
    std::printf("%6zu %9zu | %10.0f %9.2f %9.2f | %10.0f %9.2f | %6.0f%%\n",
                n, g.m(), sub.mean_messages, sub.mean_messages / yard,
                sub.mean_messages / dn, vb.mean_messages,
                vb.mean_messages / static_cast<double>(g.m()),
                sub.success_rate * 100.0);
  }
  std::printf(
      "shape check: sublinear's /sqrt*lg column is flat and its /n column\n"
      "FALLS (sublinearity in n, not just in m); variant B's /m is flat —\n"
      "optimal among universal algorithms, yet Theta(n^2) here.  The\n"
      "takeaway is the paper's: universal lower bounds need graphs with\n"
      "bottlenecks (dumbbells), because cliques admit sublinear election.\n");
  return 0;
}
