// Table 1 of the paper, regenerated end-to-end: every row measured on one
// reference graph (plus the lower-bound constructions for the bound rows).
// Columns mirror the paper: Time, Messages, Knowledge, Success probability —
// with the measured values next to the claimed bounds.
//
// Upper-bound rows pull their factories from the scenario registry
// (scenario/registry.hpp) — the same entries the conformance matrix and the
// fuzzer exercise — so this bench can never drift from the tested configs.
// The lower-bound rows keep their dedicated harnesses (bridge crossing,
// truncation), and the intro's 1/n strawman stays inline: it is deliberately
// NOT a registered protocol (it fails the safety contract by design).

#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "bounds/bridge_crossing.hpp"
#include "bounds/truncation.hpp"
#include "election/least_el.hpp"
#include "election/trivial_random.hpp"
#include "graphgen/clique_cycle.hpp"
#include "graphgen/generators.hpp"
#include "graphgen/graph_algos.hpp"
#include "scenario/registry.hpp"

using namespace ule;

namespace {

void print_row(const char* row, const char* paper_time, const char* paper_msg,
               const char* knowledge, const char* paper_succ, double rounds,
               double msgs, double succ) {
  std::printf("%-22s | %-14s %-16s %-9s %-12s | %9.1f %11.0f %7.0f%%\n", row,
              paper_time, paper_msg, knowledge, paper_succ, rounds, msgs,
              succ * 100.0);
}

/// Measure a registered protocol on `g` over `trials` seeds.
bench::Stats measure_registered(const char* name, const Graph& g,
                                std::uint32_t diameter, std::uint64_t seed,
                                std::size_t trials,
                                Round max_rounds = 50'000'000) {
  RunOptions opt;
  opt.seed = seed;
  opt.max_rounds = max_rounds;
  const ProcessFactory factory = prepare_protocol(
      default_protocols().at(name), shape_of(g, diameter), opt);
  return bench::measure(g, factory, opt, trials);
}

}  // namespace

int main() {
  bench::header("Table 1: all rows, measured",
                "see the paper's Table 1; reference graph gnm(256, 1024)");

  Rng rng(9);
  const std::size_t n = 256;
  const Graph g = make_random_connected(n, 1024, rng);
  const auto d = diameter_exact(g);
  std::printf("reference graph: %s D=%u   (lower-bound rows use their own "
              "constructions)\n\n",
              g.summary().c_str(), d);
  std::printf("%-22s | %-14s %-16s %-9s %-12s | %9s %11s %8s\n", "row",
              "paper time", "paper msgs", "knows", "paper succ",
              "rounds", "messages", "success");
  bench::row_divider(110);

  const std::size_t trials = 15;

  // --- Lower bounds ---
  {
    const auto sum = run_bridge_crossing(
        130, 256, make_least_el(LeastElConfig::all_candidates()), 5, 42);
    print_row("Thm 3.1 (dumbbell)", "-", "Omega(m)", "n,m,D", "> 53/56",
              0.0, sum.mean_messages_before_cross, sum.crossing_fraction);
    std::printf("%-22s   msgs-before-crossing / side-m = %.2f (flat in m "
                "=> Omega(m))\n",
                "", sum.mean_messages_before_cross / sum.side_m);
  }
  {
    const CliqueCycle cc = make_clique_cycle(128, 32);
    const auto diam = diameter_exact(cc.graph);
    const auto st = run_truncation_trials(cc.graph, diam / 8, 40, 7);
    print_row("Thm 3.13 (cliquecyc)", "Omega(D)", "-", "n,m,D", "> 15/16",
              static_cast<double>(diam / 8), 0.0, st.success_rate());
    std::printf("%-22s   truncation at D/8 succeeds only %.0f%% => time "
                "Omega(D) binds\n",
                "", 100.0 * st.success_rate());
  }

  // --- Randomized upper bounds (registry rows) ---
  {
    const auto st = measure_registered("least_el_f4", g, d, 1, trials);
    print_row("Thm 4.4 (f=4)", "O(D)", "O(m min(lgf,D))", "n",
              "1-1/e^Th(f)", st.mean_rounds, st.mean_messages,
              st.success_rate);
  }
  {
    const auto st = measure_registered("least_el_logn", g, d, 2, trials);
    print_row("Thm 4.4.A (f=lg n)", "O(D)", "O(m min(lglg,D))", "n", "whp",
              st.mean_rounds, st.mean_messages, st.success_rate);
  }
  {
    const auto st = measure_registered("least_el_b05", g, d, 3, trials);
    print_row("Thm 4.4.B (eps=.05)", "O(D)", "O(m)", "n", ">= 1-eps",
              st.mean_rounds, st.mean_messages, st.success_rate);
  }
  {
    // Corollary 4.2 wants m > n^{1+eps}; use the dense companion graph.
    const auto md = static_cast<std::size_t>(std::pow(n, 1.5));
    const Graph gd = make_random_connected(n, md, rng);
    const auto st =
        measure_registered("spanner_elect", gd, diameter_exact(gd), 4, 5);
    print_row("Cor 4.2 (m>n^1+e)", "O(D)", "O(m)", "n", "whp",
              st.mean_rounds, st.mean_messages, st.success_rate);
  }
  {
    const auto st = measure_registered("size_estimate", g, d, 5, trials);
    print_row("Cor 4.5 (unknown n)", "O(D)", "O(m min(lgn,D))", "-", "1",
              st.mean_rounds, st.mean_messages, st.success_rate);
  }
  {
    const auto st = measure_registered("las_vegas", g, d, 6, trials);
    print_row("Cor 4.6 (knows n,D)", "O(D) exp", "O(m) exp", "n,D", "1",
              st.mean_rounds, st.mean_messages, st.success_rate);
  }
  {
    const auto st = measure_registered("clustering", g, d, 7, trials);
    print_row("Thm 4.7 (clustering)", "O(D lg n)", "O(m + n lg n)", "n",
              "whp", st.mean_rounds, st.mean_messages, st.success_rate);
  }

  // --- Deterministic upper bounds (registry rows) ---
  {
    const auto st = measure_registered("kingdom", g, d, 8, 3, 10'000'000);
    print_row("Thm 4.10 (kingdoms)", "O(D lg n)", "O(m lg n)", "-", "det",
              st.mean_rounds, st.mean_messages, st.success_rate);
  }
  {
    const auto st = measure_registered("dfs", g, d, 9, 3, Round{1} << 62);
    print_row("Thm 4.1 (DFS agents)", "arbitrary", "O(m)", "-", "det",
              st.mean_rounds, st.mean_messages, st.success_rate);
  }

  // --- baselines (not Table 1 rows, for context) ---
  bench::row_divider(110);
  {
    const auto st = measure_registered("flood_max", g, d, 10, trials);
    print_row("[20] flood-max basel.", "O(D)", "O(mD) worst", "-", "det",
              st.mean_rounds, st.mean_messages, st.success_rate);
  }
  {
    RunOptions opt;
    opt.knowledge = Knowledge::of_n(n);
    opt.seed = 11;
    const auto st =
        bench::measure(g, make_trivial_random(), opt, 200);
    print_row("intro strawman 1/n", "1", "0", "n", "~1/e",
              st.mean_rounds, st.mean_messages, st.success_rate);
  }
  {
    // Not a Table-1 row: the intro's [14] context result on K_n — why the
    // universal Omega(m) bound needed proving at all.
    const Graph k = make_complete(n);
    const auto st = measure_registered("sublinear_complete", k, 1, 12, trials);
    print_row("[14] sublinear on K_n", "O(1)", "O(sqrt n lg^1.5)", "n",
              "whp", st.mean_rounds, st.mean_messages, st.success_rate);
  }
  return 0;
}
