// Table 1 of the paper, regenerated end-to-end: every row measured on one
// reference graph (plus the lower-bound constructions for the bound rows).
// Columns mirror the paper: Time, Messages, Knowledge, Success probability —
// with the measured values next to the claimed bounds.

#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "bounds/bridge_crossing.hpp"
#include "bounds/truncation.hpp"
#include "election/clustering.hpp"
#include "election/dfs_election.hpp"
#include "election/flood_max.hpp"
#include "election/kingdom.hpp"
#include "election/least_el.hpp"
#include "election/size_estimate.hpp"
#include "election/sublinear_complete.hpp"
#include "election/trivial_random.hpp"
#include "graphgen/clique_cycle.hpp"
#include "graphgen/generators.hpp"
#include "graphgen/graph_algos.hpp"
#include "spanner/spanner_elect.hpp"

using namespace ule;

namespace {

void print_row(const char* row, const char* paper_time, const char* paper_msg,
               const char* knowledge, const char* paper_succ, double rounds,
               double msgs, double succ) {
  std::printf("%-22s | %-14s %-16s %-9s %-12s | %9.1f %11.0f %7.0f%%\n", row,
              paper_time, paper_msg, knowledge, paper_succ, rounds, msgs,
              succ * 100.0);
}

}  // namespace

int main() {
  bench::header("Table 1: all rows, measured",
                "see the paper's Table 1; reference graph gnm(256, 1024)");

  Rng rng(9);
  const std::size_t n = 256;
  const Graph g = make_random_connected(n, 1024, rng);
  const auto d = diameter_exact(g);
  std::printf("reference graph: %s D=%u   (lower-bound rows use their own "
              "constructions)\n\n",
              g.summary().c_str(), d);
  std::printf("%-22s | %-14s %-16s %-9s %-12s | %9s %11s %8s\n", "row",
              "paper time", "paper msgs", "knows", "paper succ",
              "rounds", "messages", "success");
  bench::row_divider(110);

  const std::size_t trials = 15;

  // --- Lower bounds ---
  {
    const auto sum = run_bridge_crossing(
        130, 256, make_least_el(LeastElConfig::all_candidates()), 5, 42);
    print_row("Thm 3.1 (dumbbell)", "-", "Omega(m)", "n,m,D", "> 53/56",
              0.0, sum.mean_messages_before_cross, sum.crossing_fraction);
    std::printf("%-22s   msgs-before-crossing / side-m = %.2f (flat in m "
                "=> Omega(m))\n",
                "", sum.mean_messages_before_cross / sum.side_m);
  }
  {
    const CliqueCycle cc = make_clique_cycle(128, 32);
    const auto diam = diameter_exact(cc.graph);
    const auto st = run_truncation_trials(cc.graph, diam / 8, 40, 7);
    print_row("Thm 3.13 (cliquecyc)", "Omega(D)", "-", "n,m,D", "> 15/16",
              static_cast<double>(diam / 8), 0.0, st.success_rate());
    std::printf("%-22s   truncation at D/8 succeeds only %.0f%% => time "
                "Omega(D) binds\n",
                "", 100.0 * st.success_rate());
  }

  // --- Randomized upper bounds ---
  {
    RunOptions opt;
    opt.knowledge = Knowledge::of_n(n);
    opt.seed = 1;
    const auto st = bench::measure(
        g, make_least_el(LeastElConfig::theorem_4_4(4.0)), opt, trials);
    print_row("Thm 4.4 (f=4)", "O(D)", "O(m min(lgf,D))", "n",
              "1-1/e^Th(f)", st.mean_rounds, st.mean_messages,
              st.success_rate);
  }
  {
    RunOptions opt;
    opt.knowledge = Knowledge::of_n(n);
    opt.seed = 2;
    const auto st = bench::measure(
        g, make_least_el(LeastElConfig::variant_A(n)), opt, trials);
    print_row("Thm 4.4.A (f=lg n)", "O(D)", "O(m min(lglg,D))", "n", "whp",
              st.mean_rounds, st.mean_messages, st.success_rate);
  }
  {
    RunOptions opt;
    opt.knowledge = Knowledge::of_n(n);
    opt.seed = 3;
    const auto st = bench::measure(
        g, make_least_el(LeastElConfig::variant_B(0.05)), opt, trials);
    print_row("Thm 4.4.B (eps=.05)", "O(D)", "O(m)", "n", ">= 1-eps",
              st.mean_rounds, st.mean_messages, st.success_rate);
  }
  {
    // Corollary 4.2 wants m > n^{1+eps}; use the dense companion graph.
    const auto md = static_cast<std::size_t>(std::pow(n, 1.5));
    const Graph gd = make_random_connected(n, md, rng);
    RunOptions opt;
    opt.knowledge = Knowledge::of_n(n);
    opt.seed = 4;
    const auto st = bench::measure(gd, make_spanner_elect({3, 0}), opt, 5);
    print_row("Cor 4.2 (m>n^1+e)", "O(D)", "O(m)", "n", "whp",
              st.mean_rounds, st.mean_messages, st.success_rate);
  }
  {
    RunOptions opt;
    opt.seed = 5;  // no knowledge at all
    const auto st = bench::measure(g, make_size_estimate_elect(), opt, trials);
    print_row("Cor 4.5 (unknown n)", "O(D)", "O(m min(lgn,D))", "-", "1",
              st.mean_rounds, st.mean_messages, st.success_rate);
  }
  {
    RunOptions opt;
    opt.knowledge = Knowledge::of_n_d(n, d);
    opt.seed = 6;
    const auto st = bench::measure(
        g, make_least_el(LeastElConfig::las_vegas(d)), opt, trials);
    print_row("Cor 4.6 (knows n,D)", "O(D) exp", "O(m) exp", "n,D", "1",
              st.mean_rounds, st.mean_messages, st.success_rate);
  }
  {
    RunOptions opt;
    opt.knowledge = Knowledge::of_n(n);
    opt.seed = 7;
    const auto st = bench::measure(g, make_clustering(), opt, trials);
    print_row("Thm 4.7 (clustering)", "O(D lg n)", "O(m + n lg n)", "n",
              "whp", st.mean_rounds, st.mean_messages, st.success_rate);
  }

  // --- Deterministic upper bounds ---
  {
    RunOptions opt;
    opt.seed = 8;
    opt.max_rounds = 10'000'000;
    const auto st = bench::measure(g, make_kingdom(), opt, 3);
    print_row("Thm 4.10 (kingdoms)", "O(D lg n)", "O(m lg n)", "-", "det",
              st.mean_rounds, st.mean_messages, st.success_rate);
  }
  {
    RunOptions opt;
    opt.seed = 9;
    opt.ids = IdScheme::RandomPermutation;
    opt.max_rounds = Round{1} << 62;
    const auto st = bench::measure(g, make_dfs_election(), opt, 3);
    print_row("Thm 4.1 (DFS agents)", "arbitrary", "O(m)", "-", "det",
              st.mean_rounds, st.mean_messages, st.success_rate);
  }

  // --- baselines (not Table 1 rows, for context) ---
  bench::row_divider(110);
  {
    RunOptions opt;
    opt.seed = 10;
    const auto st = bench::measure(g, make_flood_max(), opt, trials);
    print_row("[20] flood-max basel.", "O(D)", "O(mD) worst", "-", "det",
              st.mean_rounds, st.mean_messages, st.success_rate);
  }
  {
    RunOptions opt;
    opt.knowledge = Knowledge::of_n(n);
    opt.seed = 11;
    const auto st =
        bench::measure(g, make_trivial_random(), opt, 200);
    print_row("intro strawman 1/n", "1", "0", "n", "~1/e",
              st.mean_rounds, st.mean_messages, st.success_rate);
  }
  {
    // Not a Table-1 row: the intro's [14] context result on K_n — why the
    // universal Omega(m) bound needed proving at all.
    const Graph k = make_complete(n);
    RunOptions opt;
    opt.knowledge = Knowledge::of_n(n);
    opt.seed = 12;
    const auto st = bench::measure(k, make_sublinear_complete(), opt, trials);
    print_row("[14] sublinear on K_n", "O(1)", "O(sqrt n lg^1.5)", "n",
              "whp", st.mean_rounds, st.mean_messages, st.success_rate);
  }
  return 0;
}
