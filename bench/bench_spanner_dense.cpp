// Corollary 4.2 — O(D) time and expected O(m) messages when m > n^{1+ε},
// via Baswana–Sen sparsification, plus the spanner-parameter ablation.

#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "election/least_el.hpp"
#include "graphgen/generators.hpp"
#include "graphgen/graph_algos.hpp"
#include "spanner/spanner_elect.hpp"

using namespace ule;

int main() {
  bench::header("Corollary 4.2: spanner + least-el on dense graphs",
                "m > n^{1+eps}: whp success, O(D) time, expected O(m) msgs");

  Rng rng(3);
  std::printf("%-12s %7s %6s | %-22s | %-22s\n", "n (m=n^1.5)", "m", "D",
              "spanner+LE msgs (ratio/m)", "plain LE msgs (ratio/m)");
  bench::row_divider(84);
  for (const std::size_t n : {100u, 200u, 400u, 800u}) {
    const auto m = static_cast<std::size_t>(std::pow(n, 1.5));
    const Graph g = make_random_connected(n, m, rng);
    const auto d = diameter_exact(g);
    RunOptions opt;
    opt.knowledge = Knowledge::of_n(n);
    opt.seed = 100 + n;
    const auto sp =
        bench::measure(g, make_spanner_elect({3, 0}), opt, 5);
    const auto le = bench::measure(
        g, make_least_el(LeastElConfig::all_candidates()), opt, 5);
    std::printf("%-12zu %7zu %6u | %10.0f (%5.2f)      | %10.0f (%5.2f)\n", n,
                m, d, sp.mean_messages, sp.mean_messages / m,
                le.mean_messages, le.mean_messages / m);
  }

  std::printf("\n[time: spanner route stays O(D)]\n");
  std::printf("%-12s %6s | %10s %9s | %9s\n", "n", "D", "rounds", "rounds/D",
              "success");
  bench::row_divider(56);
  for (const std::size_t n : {100u, 400u}) {
    const auto m = static_cast<std::size_t>(std::pow(n, 1.5));
    const Graph g = make_random_connected(n, m, rng);
    const auto d = diameter_exact(g);
    RunOptions opt;
    opt.knowledge = Knowledge::of_n(n);
    opt.seed = 4;
    const auto sp = bench::measure(g, make_spanner_elect({3, 0}), opt, 5);
    std::printf("%-12zu %6u | %10.1f %9.2f | %8.0f%%\n", n, d, sp.mean_rounds,
                sp.mean_rounds / std::max(1u, d), 100.0 * sp.success_rate);
  }

  std::printf("\n[ablation: spanner parameter k on gnm(300, 5196)]\n");
  std::printf("%-4s %14s %14s %10s\n", "k", "total msgs", "ratio/m", "success");
  bench::row_divider(48);
  {
    const std::size_t n = 300;
    const auto m = static_cast<std::size_t>(std::pow(n, 1.5));
    const Graph g = make_random_connected(n, m, rng);
    for (const std::uint32_t k : {1u, 2u, 3u, 4u, 5u}) {
      RunOptions opt;
      opt.knowledge = Knowledge::of_n(n);
      opt.seed = 17;
      const auto st = bench::measure(g, make_spanner_elect({k, 0}), opt, 5);
      std::printf("%-4u %14.0f %14.2f %9.0f%%\n", k, st.mean_messages,
                  st.mean_messages / m, 100.0 * st.success_rate);
    }
  }
  std::printf(
      "shape check: spanner+LE ratio/m flat and below plain LE's growing\n"
      "ratio; k=1 degenerates to plain LE; k>=3 pays off on dense graphs.\n");
  return 0;
}
