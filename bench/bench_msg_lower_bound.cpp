// Theorem 3.1 — the Ω(m) message lower bound, measured.
//
// Construction: dumbbell graphs (κ-clique + path per side, two bridges);
// the diameter is the same for every choice of opened edges, so knowing
// n, m, D tells an algorithm nothing about where the bridges are.
//
// Measured quantities, per per-side edge budget m:
//   * messages before the first bridge crossing (the BC cost that
//     Lemma 3.5 lower-bounds by Ω(m)), averaged over sampled (e', e'');
//   * total messages to elect, for several algorithm families.
// The claim's shape holds if both scale linearly with m (flat ratio
// columns) for every correct algorithm.

#include <cstdio>

#include "bench_util.hpp"
#include "bounds/bridge_crossing.hpp"
#include "election/flood_max.hpp"
#include "election/kingdom.hpp"
#include "election/least_el.hpp"

using namespace ule;

int main() {
  bench::header("Theorem 3.1: message lower bound Omega(m) on dumbbells",
                "any universal LE algorithm with success > 53/56 spends "
                "Omega(m) expected messages; BC itself costs Omega(m)");

  struct Algo {
    const char* name;
    ProcessFactory factory;
  };
  const std::vector<Algo> algos = {
      {"flood-max (det)", make_flood_max()},
      {"least-el f=n", make_least_el(LeastElConfig::all_candidates())},
      {"least-el f=4ln20", make_least_el(LeastElConfig::variant_B(0.05))},
      {"kingdom (det)", make_kingdom()},
  };

  const std::size_t samples = 6;
  std::printf("%-18s %8s %8s %8s | %14s %10s | %12s %10s | %8s\n", "algorithm",
              "side-m", "kappa", "D", "msgs<cross", "ratio/m", "msgs-total",
              "ratio/m", "success");
  bench::row_divider();

  for (const auto& algo : algos) {
    for (const std::size_t m : {40u, 80u, 160u, 320u, 640u}) {
      const std::size_t n = m / 2 + 4;  // keeps the path part non-trivial
      const auto sum =
          run_bridge_crossing(n, m, algo.factory, samples, 12345 + m);
      double success = 0;
      for (const auto& r : sum.runs) success += r.unique_leader;
      success /= static_cast<double>(sum.runs.size());
      const Dumbbell probe = make_dumbbell(n, m, 0, 0);
      std::printf(
          "%-18s %8zu %8zu %8llu | %14.0f %10.2f | %12.0f %10.2f | %7.0f%%\n",
          algo.name, sum.side_m, sum.kappa,
          static_cast<unsigned long long>(probe.diameter),
          sum.mean_messages_before_cross,
          sum.mean_messages_before_cross / static_cast<double>(sum.side_m),
          sum.mean_messages_total,
          sum.mean_messages_total / static_cast<double>(sum.side_m),
          100.0 * success);
    }
    bench::row_divider();
  }

  std::printf(
      "shape check: both ratio columns should stay roughly flat as m grows\n"
      "(linear in m), and never collapse toward 0 — that is Theorem 3.1.\n");
  return 0;
}
