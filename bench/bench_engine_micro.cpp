// Micro-benchmarks of the simulation substrate itself (google-benchmark):
// engine round throughput, flooding, and the full least-element election.
// These are sanity numbers for anyone extending the simulator, not paper
// claims.

#include <benchmark/benchmark.h>

#include "election/flood_max.hpp"
#include "election/least_el.hpp"
#include "graphgen/generators.hpp"
#include "net/engine.hpp"

namespace ule {
namespace {

void BM_FloodMaxCycle(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Graph g = make_cycle(n);
  for (auto _ : state) {
    EngineConfig cfg;
    cfg.seed = 1;
    SyncEngine eng(g, cfg);
    Rng id_rng(1);
    eng.set_uids(assign_ids(n, IdScheme::RandomPermutation, id_rng));
    eng.init_processes(make_flood_max());
    benchmark::DoNotOptimize(eng.run());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_FloodMaxCycle)->Arg(64)->Arg(256)->Arg(1024);

void BM_LeastElRandomGraph(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  const Graph g = make_random_connected(n, 4 * n, rng);
  for (auto _ : state) {
    EngineConfig cfg;
    cfg.seed = 3;
    SyncEngine eng(g, cfg);
    Rng id_rng(3);
    eng.set_uids(assign_ids(n, IdScheme::RandomFromZ, id_rng));
    eng.set_knowledge(Knowledge::of_n(n));
    eng.init_processes(make_least_el(LeastElConfig::all_candidates()));
    benchmark::DoNotOptimize(eng.run());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_LeastElRandomGraph)->Arg(128)->Arg(512)->Arg(2048);

void BM_EngineRoundOverhead(benchmark::State& state) {
  // A process that stays Running but does nothing: measures the pure
  // scheduler cost per node-round.
  class Idle : public Process {
   public:
    void on_wake(Context& ctx, std::span<const Envelope>) override {
      if (ctx.round() >= 1000) ctx.halt();
    }
    void on_round(Context& ctx, std::span<const Envelope>) override {
      if (ctx.round() >= 1000) ctx.halt();
    }
  };
  const auto n = static_cast<std::size_t>(state.range(0));
  const Graph g = make_cycle(n);
  for (auto _ : state) {
    EngineConfig cfg;
    cfg.seed = 1;
    SyncEngine eng(g, cfg);
    eng.init_processes([](NodeId) { return std::make_unique<Idle>(); });
    benchmark::DoNotOptimize(eng.run());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n *
                          1000);
}
BENCHMARK(BM_EngineRoundOverhead)->Arg(64)->Arg(512);

}  // namespace
}  // namespace ule

BENCHMARK_MAIN();
