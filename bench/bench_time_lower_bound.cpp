// Theorem 3.13 / Figure 1 — the Ω(D) time lower bound, measured.
//
// Construction: the clique-cycle (Figure 1): D' = 4⌈D/4⌉ cliques of size γ
// in a cycle, four arcs, 4-fold rotation symmetry.
//
// Part A: every (correct) algorithm we implement spends Ω(D) rounds on it —
// the rounds/D ratio stays bounded below as D sweeps.
//
// Part B: the probabilistic argument itself.  A horizon-r truncated
// election (elect the max rank of the radius-r ball) on the clique-cycle:
// for r < D'/4 the arcs are causally independent and multiple leaders
// appear with constant probability; the success rate must stay below the
// 15/16 threshold of the theorem.  As r approaches D the success rate
// converges to 1 — reproducing the shape of the bound.

#include <cstdio>

#include "bench_util.hpp"
#include "bounds/truncation.hpp"
#include "election/flood_max.hpp"
#include "election/least_el.hpp"
#include "graphgen/clique_cycle.hpp"
#include "graphgen/graph_algos.hpp"

using namespace ule;

int main() {
  bench::header("Theorem 3.13 / Figure 1: time lower bound Omega(D)",
                "success prob > 15/16 (+1/n^2 with ids) forces Omega(D) "
                "rounds on the clique-cycle");

  std::printf("\n[Part A] full algorithms on clique-cycle(n~192, D sweep)\n");
  std::printf("%-18s %6s %6s %6s | %10s %10s\n", "algorithm", "D'", "gamma",
              "diam", "rounds", "rounds/D");
  bench::row_divider(70);
  for (const std::size_t d : {8u, 16u, 32u, 64u}) {
    const CliqueCycle cc = make_clique_cycle(192, d);
    const auto diam = diameter_exact(cc.graph);

    RunOptions fm;
    fm.seed = 11;
    const auto fm_rep = run_election(cc.graph, make_flood_max(), fm);

    RunOptions le;
    le.seed = 11;
    le.knowledge = Knowledge::of_n(cc.graph.n());
    const auto le_rep = run_election(
        cc.graph, make_least_el(LeastElConfig::all_candidates()), le);

    std::printf("%-18s %6zu %6zu %6u | %10llu %10.2f\n", "flood-max",
                cc.d_prime, cc.gamma, diam,
                static_cast<unsigned long long>(fm_rep.run.rounds),
                static_cast<double>(fm_rep.run.rounds) / diam);
    std::printf("%-18s %6zu %6zu %6u | %10llu %10.2f\n", "least-el f=n",
                cc.d_prime, cc.gamma, diam,
                static_cast<unsigned long long>(le_rep.run.rounds),
                static_cast<double>(le_rep.run.rounds) / diam);
  }

  std::printf(
      "\n[Part B] truncated (horizon-r) election on clique-cycle(128, D=32)\n"
      "%-12s %10s %10s %10s %10s %12s\n", "horizon/D", "trials", "unique",
      "multi", "zero", "success");
  bench::row_divider(70);
  const CliqueCycle cc = make_clique_cycle(128, 32);
  const auto diam = diameter_exact(cc.graph);
  const std::size_t trials = 60;
  for (const double frac : {0.05, 0.125, 0.25, 0.5, 1.0, 1.5}) {
    const Round horizon = static_cast<Round>(frac * diam);
    const auto st = run_truncation_trials(cc.graph, horizon, trials, 777);
    std::printf("%-12.3f %10zu %10zu %10zu %10zu %11.1f%%%s\n", frac,
                st.trials, st.unique_leader, st.multi_leaders, st.zero_leaders,
                100.0 * st.success_rate(),
                st.success_rate() < 15.0 / 16.0 ? "  [< 15/16]" : "");
  }
  std::printf(
      "shape check: success < 15/16 while horizon << D, -> 100%% at ~D.\n");
  return 0;
}
