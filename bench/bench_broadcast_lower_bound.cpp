// Corollary 3.12 — Ω(m) messages for (majority) broadcast, measured on the
// same dumbbell family as Theorem 3.1.

#include <cstdio>

#include "bench_util.hpp"
#include "broadcast/broadcast.hpp"
#include "graphgen/dumbbell.hpp"

using namespace ule;

int main() {
  bench::header("Corollary 3.12: broadcast message lower bound Omega(m)",
                "majority broadcast with success >= 1 - 3/8 costs Omega(m) "
                "messages on dumbbells");

  std::printf("%-10s %8s %8s | %12s %9s | %12s %9s | %6s\n", "side-m", "n'",
              "D", "msgs-total", "ratio/m", "msgs-major", "ratio/m", "ok");
  bench::row_divider(90);

  for (const std::size_t m : {40u, 80u, 160u, 320u, 640u, 1280u}) {
    const std::size_t n = m / 2 + 4;
    double tot = 0, maj = 0;
    bool ok = true;
    const std::size_t samples = 5;
    for (std::size_t s = 0; s < samples; ++s) {
      const std::size_t choices = dumbbell_open_edge_count(m);
      const Dumbbell d = make_dumbbell(n, m, s % choices, (3 * s) % choices);
      // Source inside the left clique: majority requires bridge crossing.
      const auto rep = run_broadcast(d.graph, 0, 99 + s);
      tot += static_cast<double>(rep.messages_total);
      maj += static_cast<double>(rep.messages_majority);
      ok = ok && rep.all_informed;
    }
    tot /= samples;
    maj /= samples;
    const Dumbbell probe = make_dumbbell(n, m, 0, 0);
    const double side_m = (static_cast<double>(probe.graph.m()) - 2) / 2;
    std::printf("%-10zu %8zu %8llu | %12.0f %9.2f | %12.0f %9.2f | %6s\n", m,
                probe.graph.n(),
                static_cast<unsigned long long>(probe.diameter), tot,
                tot / side_m, maj, maj / side_m, ok ? "yes" : "NO");
  }
  std::printf(
      "shape check: even *majority* broadcast keeps a flat ratio/m — the\n"
      "message of Corollary 3.12 (reaching n/2+1 nodes forces a bridge\n"
      "crossing, and reaching the bridge costs Omega(m1) clique messages).\n");
  return 0;
}
