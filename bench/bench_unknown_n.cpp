// Corollary 4.5 — universal leader election with no knowledge of anything:
// size estimation (geometric coin maxima) + least-element election with ID
// tiebreaks.  Success probability 1; O(D) time; O(m min(log n, D)) messages.

#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "election/size_estimate.hpp"
#include "graphgen/generators.hpp"
#include "graphgen/graph_algos.hpp"
#include "net/engine.hpp"

using namespace ule;

int main() {
  bench::header("Corollary 4.5: unknown n (size estimate + election)",
                "success prob 1; O(D) time; O(m min(log n, D)) msgs whp");

  Rng rng(4);
  std::printf("%-12s %7s %5s | %10s %14s | %8s %8s | %8s\n", "graph", "m", "D",
              "messages", "msgs/(m*logn)", "rounds", "rnds/D", "success");
  bench::row_divider(92);
  for (const std::size_t n : {64u, 128u, 256u, 512u}) {
    const Graph g = make_random_connected(n, 4 * n, rng);
    const auto d = diameter_exact(g);
    RunOptions opt;
    opt.seed = n;  // NOTE: Knowledge::none() — the whole point
    const auto st = bench::measure(g, make_size_estimate_elect(), opt, 10);
    std::printf("%-12s %7zu %5u | %10.0f %14.2f | %8.1f %8.2f | %7.0f%%\n",
                ("gnm" + std::to_string(n)).c_str(), g.m(), d,
                st.mean_messages,
                st.mean_messages / (g.m() * std::log2(double(n))),
                st.mean_rounds, st.mean_rounds / d, 100.0 * st.success_rate);
  }

  std::printf("\n[estimate quality: n_hat vs n over 20 runs each]\n");
  std::printf("%-8s %12s %12s %12s %16s\n", "n", "min n_hat", "med n_hat",
              "max n_hat", "in [n/4logn,4n^2]");
  bench::row_divider(68);
  for (const std::size_t n : {64u, 256u, 1024u}) {
    const Graph g = make_cycle(n);
    std::vector<std::uint64_t> hats;
    std::size_t in_range = 0;
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
      EngineConfig cfg;
      cfg.seed = seed * 53;
      SyncEngine eng(g, cfg);
      Rng id_rng(seed);
      eng.set_uids(assign_ids(g.n(), IdScheme::RandomFromZ, id_rng));
      eng.init_processes(make_size_estimate_elect());
      eng.run();
      const auto* p =
          dynamic_cast<const SizeEstimateElectProcess*>(eng.process(0));
      hats.push_back(p->n_hat());
      const double nh = static_cast<double>(p->n_hat());
      const double nd = static_cast<double>(n);
      in_range += (nh >= nd / (4 * std::log2(nd)) && nh <= 4 * nd * nd);
    }
    std::sort(hats.begin(), hats.end());
    std::printf("%-8zu %12llu %12llu %12llu %15zu%%\n", n,
                static_cast<unsigned long long>(hats.front()),
                static_cast<unsigned long long>(hats[hats.size() / 2]),
                static_cast<unsigned long long>(hats.back()),
                in_range * 100 / 20);
  }
  std::printf(
      "shape check: success 100%% everywhere (Las Vegas via ID tiebreak);\n"
      "msgs/(m log n) flat; n_hat within the paper's whp window.\n");
  return 0;
}
