// The deterministic/randomized separation on rings.
//
// The paper's answer to "can one algorithm be simultaneously time- and
// message-optimal?" hinges on the ring: "the answer is negative if we
// restrict ourselves to deterministic algorithms, since it is known that
// for a cycle any O(n) time deterministic algorithm requires at least
// Omega(n log n) messages (even when nodes know n) [8].  However, the
// problem still stands for randomized algorithms" — and Theorem 4.4.(B)
// then matches both bounds with constant success probability.
//
// This bench regenerates that separation.  On cycles (m = n, D = n/2):
//   * deterministic O(~D)-time algorithms (flood-max, growing kingdoms)
//     pay ~n log n messages — msgs/(n log2 n) stays flat, msgs/n grows;
//   * the randomized variant B pays O(n) messages — msgs/n stays flat —
//     at O(D) time and constant success probability;
//   * the deterministic O(m) DFS algorithm also pays O(n), but its time is
//     unbounded in D (here: ~2^minID * m), which is the trade-off [8]'s
//     lower bound says deterministic algorithms cannot escape.

#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "election/dfs_election.hpp"
#include "election/flood_max.hpp"
#include "election/kingdom.hpp"
#include "election/least_el.hpp"
#include "graphgen/generators.hpp"

using namespace ule;

namespace {

void run_series(const char* name,
                const std::function<ProcessFactory(std::size_t)>& make,
                const std::function<RunOptions(std::size_t)>& opts,
                std::size_t trials) {
  std::printf("%-22s | %6s %9s | %9s %9s %9s | %7s\n", name, "n", "rounds",
              "messages", "msg/n", "msg/nlgn", "success");
  for (const std::size_t n : {32u, 64u, 128u, 256u, 512u}) {
    const Graph g = make_cycle(n);
    RunOptions base = opts(n);
    const auto st = bench::measure(g, make(n), base, trials);
    std::printf("%-22s | %6zu %9.1f | %9.0f %9.2f %9.3f | %6.0f%%\n", "", n,
                st.mean_rounds, st.mean_messages,
                st.mean_messages / static_cast<double>(n),
                st.mean_messages /
                    (static_cast<double>(n) * std::log2(double(n))),
                st.success_rate * 100.0);
  }
  bench::row_divider(96);
}

}  // namespace

int main() {
  bench::header("Ring separation: deterministic vs randomized",
                "[8] forces Omega(n log n) msgs on any fast deterministic "
                "ring election; Thm 4.4.B gets O(n) msgs + O(D) time "
                "randomized");

  run_series(
      "flood-max (det)", [](std::size_t) { return make_flood_max(); },
      [](std::size_t) {
        RunOptions opt;
        opt.seed = 3;
        opt.ids = IdScheme::RandomFromZ;
        return opt;
      },
      3);

  run_series(
      "kingdoms (det)", [](std::size_t) { return make_kingdom(); },
      [](std::size_t) {
        RunOptions opt;
        opt.seed = 4;
        opt.ids = IdScheme::RandomFromZ;
        opt.max_rounds = 5'000'000;
        return opt;
      },
      3);

  run_series(
      "least-el B eps=.1",
      [](std::size_t) {
        return make_least_el(LeastElConfig::variant_B(0.1));
      },
      [](std::size_t n) {
        RunOptions opt;
        opt.seed = 5;
        opt.knowledge = Knowledge::of_n(n);
        return opt;
      },
      25);

  run_series(
      "dfs agents (det)",
      [](std::size_t) { return make_dfs_election(); },
      [](std::size_t) {
        RunOptions opt;
        opt.seed = 6;
        opt.ids = IdScheme::RandomPermutation;
        opt.max_rounds = Round{1} << 62;
        return opt;
      },
      3);

  std::printf(
      "shape check: the deterministic O(D)-time rows keep msg/nlgn flat\n"
      "(their msg/n column grows ~log n); variant B keeps msg/n flat at\n"
      "constant success — the separation the paper proves possible.  The\n"
      "DFS row has flat msg/n too but pays unbounded time (rounds column),\n"
      "which is [8]'s trade-off in action.\n");
  return 0;
}
