// Theorem 4.7 / Algorithm 1 — the clustering algorithm, measured.
// Claim: whp O(D log n) rounds and O(m + n log n) messages.

#include <cmath>
#include <cstdio>
#include <set>

#include "bench_util.hpp"
#include "election/clustering.hpp"
#include "election/least_el.hpp"
#include "graphgen/generators.hpp"
#include "graphgen/graph_algos.hpp"
#include "net/engine.hpp"

using namespace ule;

int main() {
  bench::header("Theorem 4.7: the clustering algorithm (Algorithm 1)",
                "whp O(D log n) time and O(m + n log n) messages");

  Rng rng(7);
  std::printf("%-14s %8s %5s | %10s %18s | %8s %12s | %8s\n", "graph", "m",
              "D", "messages", "msgs/(m+n*logn)", "rounds", "rnds/(D*logn)",
              "success");
  bench::row_divider(100);

  for (const std::size_t n : {64u, 128u, 256u, 512u}) {
    for (const std::size_t mfactor : {3u, 12u}) {
      const std::size_t m = std::min(n * mfactor, n * (n - 1) / 2);
      const Graph g = make_random_connected(n, m, rng);
      const auto d = diameter_exact(g);
      RunOptions opt;
      opt.knowledge = Knowledge::of_n(n);
      opt.seed = n + mfactor;
      const auto st = bench::measure(g, make_clustering(), opt, 10);
      const double logn = std::log2(static_cast<double>(n));
      std::printf("%-14s %8zu %5u | %10.0f %18.2f | %8.1f %12.2f | %7.0f%%\n",
                  ("gnm" + std::to_string(n) + "x" + std::to_string(mfactor))
                      .c_str(),
                  g.m(), d, st.mean_messages,
                  st.mean_messages / (g.m() + n * logn), st.mean_rounds,
                  st.mean_rounds / (std::max(1u, d) * logn),
                  100.0 * st.success_rate);
    }
  }

  std::printf("\n[vs plain least-el on dense graphs: the sparsification win]\n");
  std::printf("%-14s | %14s | %14s\n", "graph", "clustering", "least-el f=n");
  bench::row_divider(52);
  for (const std::size_t n : {128u, 256u}) {
    const std::size_t m = n * n / 10;
    const Graph g = make_random_connected(n, m, rng);
    RunOptions opt;
    opt.knowledge = Knowledge::of_n(n);
    opt.seed = 3;
    const auto cl = bench::measure(g, make_clustering(), opt, 5);
    const auto le = bench::measure(
        g, make_least_el(LeastElConfig::all_candidates()), opt, 5);
    std::printf("%-14s | %14.0f | %14.0f\n",
                ("gnm" + std::to_string(n) + "-dense").c_str(),
                cl.mean_messages, le.mean_messages);
  }

  std::printf("\n[ablation: candidate factor c in prob = c*ln(n)/n, gnm(256,1024), 30 trials]\n");
  std::printf("%-8s %10s %12s %12s\n", "c", "success", "E[clusters]",
              "E[messages]");
  bench::row_divider(48);
  const Graph g = make_random_connected(256, 1024, rng);
  for (const double c : {0.1, 0.5, 1.0, 2.0, 8.0}) {
    ClusteringConfig ccfg;
    ccfg.candidate_factor = c;
    double ok = 0, clusters = 0, msgs = 0;
    const std::size_t trials = 30;
    for (std::uint64_t seed = 1; seed <= trials; ++seed) {
      EngineConfig ecfg;
      ecfg.seed = seed * 101;
      SyncEngine eng(g, ecfg);
      Rng id_rng(seed);
      eng.set_uids(assign_ids(g.n(), IdScheme::RandomFromZ, id_rng));
      eng.set_knowledge(Knowledge::of_n(g.n()));
      eng.init_processes(make_clustering(ccfg));
      const RunResult res = eng.run();
      ok += res.elected == 1;
      msgs += static_cast<double>(res.messages);
      std::set<std::uint64_t> cl;
      for (NodeId s = 0; s < g.n(); ++s) {
        const auto* p = dynamic_cast<const ClusteringProcess*>(eng.process(s));
        if (p->cluster() != 0) cl.insert(p->cluster());
      }
      clusters += static_cast<double>(cl.size());
    }
    std::printf("%-8.1f %9.0f%% %12.1f %12.0f\n", c, 100.0 * ok / trials,
                clusters / trials, msgs / trials);
  }
  std::printf(
      "shape check: ratio columns flat; clustering beats least-el once\n"
      "m >> n log n; c << 1 risks zero-candidate failures (paper picks 8).\n");
  return 0;
}
