// Corollary 4.6 — n and D known: Las Vegas election with expected O(D) time
// and expected O(m) messages (restart epochs of Θ(D) rounds, f(n) = Θ(1)
// expected candidates).

#include <cstdio>

#include "bench_util.hpp"
#include "election/least_el.hpp"
#include "graphgen/generators.hpp"
#include "graphgen/graph_algos.hpp"
#include "net/engine.hpp"

using namespace ule;

int main() {
  bench::header("Corollary 4.6: Las Vegas with n and D known",
                "success prob 1; expected O(D) time; expected O(m) msgs");

  Rng rng(6);
  std::printf("%-12s %7s %5s | %10s %8s | %8s %8s | %8s %9s\n", "graph", "m",
              "D", "messages", "msgs/m", "rounds", "rnds/D", "success",
              "E[epochs]");
  bench::row_divider(96);

  for (const std::size_t n : {64u, 128u, 256u, 512u}) {
    const Graph g = make_random_connected(n, 3 * n, rng);
    const auto d = diameter_exact(g);
    const auto cfg = LeastElConfig::las_vegas(d);

    double msgs = 0, rounds = 0, epochs = 0, ok = 0;
    const std::size_t trials = 30;
    for (std::uint64_t seed = 1; seed <= trials; ++seed) {
      EngineConfig ecfg;
      ecfg.seed = seed * 7919;
      SyncEngine eng(g, ecfg);
      Rng id_rng(seed);
      eng.set_uids(assign_ids(g.n(), IdScheme::RandomFromZ, id_rng));
      eng.set_knowledge(Knowledge::of_n_d(n, d));
      eng.init_processes(make_least_el(cfg));
      const RunResult res = eng.run();
      msgs += static_cast<double>(res.messages);
      rounds += static_cast<double>(res.rounds);
      ok += res.elected == 1;
      epochs += static_cast<double>(
          dynamic_cast<const LeastElProcess*>(eng.process(0))
              ->epochs_started());
    }
    std::printf("%-12s %7zu %5u | %10.0f %8.2f | %8.1f %8.2f | %7.0f%% %9.2f\n",
                ("gnm" + std::to_string(n)).c_str(), g.m(), d,
                msgs / trials, msgs / trials / g.m(), rounds / trials,
                rounds / trials / d, 100.0 * ok / trials, epochs / trials);
  }
  std::printf(
      "shape check: success 100%% (Las Vegas); msgs/m and rounds/D flat;\n"
      "E[epochs] ~ 1/(1 - e^{-2}) ~ 1.16 — restarts are rare but real.\n");
  return 0;
}
