// Shared helpers for the experiment harnesses in bench/.
//
// Every bench binary regenerates one row-group of the paper's Table 1 (or
// one lower-bound construction) as a *measured* table: a sweep over graph
// sizes, the measured time/messages, and the ratio against the paper's
// claimed bound.  Ratios that stay flat across the sweep confirm the shape
// of the claim; the absolute constant is implementation-specific and
// reported as-is.

#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <numeric>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

#include "election/election.hpp"
#include "graphgen/graph_algos.hpp"
#include "net/graph.hpp"

namespace ule::bench {

// ---------------------------------------------------------------------------
// Wall-clock timing + machine-readable output (the perf-baseline convention:
// every perf-sensitive bench writes a BENCH_*.json so later PRs have a
// trajectory to beat; see ROADMAP.md).
// ---------------------------------------------------------------------------

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  void reset() { start_ = std::chrono::steady_clock::now(); }
  double elapsed_ms() const {
    const auto d = std::chrono::steady_clock::now() - start_;
    return std::chrono::duration<double, std::milli>(d).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// One flat JSON object: ordered key -> (string | number | bool).  Enough for
/// bench rows; no nesting, no escapes beyond the basics.
class JsonObject {
 public:
  JsonObject& set(std::string key, std::string v) {
    fields_.emplace_back(std::move(key), Value{std::move(v)});
    return *this;
  }
  JsonObject& set(std::string key, const char* v) {
    return set(std::move(key), std::string(v));
  }
  JsonObject& set(std::string key, double v) {
    fields_.emplace_back(std::move(key), Value{v});
    return *this;
  }
  JsonObject& set(std::string key, std::uint64_t v) {
    fields_.emplace_back(std::move(key), Value{v});
    return *this;
  }
  JsonObject& set(std::string key, bool v) {
    fields_.emplace_back(std::move(key), Value{v});
    return *this;
  }

  std::string to_string() const {
    std::string out = "{";
    bool first = true;
    for (const auto& [k, v] : fields_) {
      if (!first) out += ", ";
      first = false;
      out += "\"" + k + "\": ";
      if (std::holds_alternative<std::string>(v)) {
        out += "\"" + std::get<std::string>(v) + "\"";
      } else if (std::holds_alternative<double>(v)) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.6g", std::get<double>(v));
        out += buf;
      } else if (std::holds_alternative<std::uint64_t>(v)) {
        out += std::to_string(std::get<std::uint64_t>(v));
      } else {
        out += std::get<bool>(v) ? "true" : "false";
      }
    }
    return out + "}";
  }

 private:
  using Value = std::variant<std::string, double, std::uint64_t, bool>;
  std::vector<std::pair<std::string, Value>> fields_;
};

/// Collects rows and writes {"bench": ..., "rows": [...]} to a file.
class JsonReport {
 public:
  explicit JsonReport(std::string bench_name)
      : bench_name_(std::move(bench_name)) {}

  JsonObject& add_row() { return rows_.emplace_back(); }

  void write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) throw std::runtime_error("cannot open " + path);
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"rows\": [\n",
                 bench_name_.c_str());
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      std::fprintf(f, "    %s%s\n", rows_[i].to_string().c_str(),
                   i + 1 < rows_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
  }

 private:
  std::string bench_name_;
  std::vector<JsonObject> rows_;
};

inline void header(const std::string& title, const std::string& claim) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("paper claim: %s\n", claim.c_str());
}

inline void row_divider(int width = 100) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

struct Stats {
  double mean_messages = 0;
  double mean_rounds = 0;
  double success_rate = 0;
  std::size_t trials = 0;
};

/// Average an election over `trials` seeds.
inline Stats measure(const Graph& g, const ProcessFactory& factory,
                     RunOptions base, std::size_t trials) {
  Stats st;
  st.trials = trials;
  double msgs = 0, rounds = 0, ok = 0;
  for (std::size_t t = 0; t < trials; ++t) {
    RunOptions opt = base;
    opt.seed = base.seed + 7919 * t + 13;
    const ElectionReport rep = run_election(g, factory, opt);
    msgs += static_cast<double>(rep.run.messages);
    rounds += static_cast<double>(rep.run.rounds);
    ok += rep.verdict.unique_leader ? 1.0 : 0.0;
  }
  st.mean_messages = msgs / static_cast<double>(trials);
  st.mean_rounds = rounds / static_cast<double>(trials);
  st.success_rate = ok / static_cast<double>(trials);
  return st;
}

}  // namespace ule::bench
