// Shared helpers for the experiment harnesses in bench/.
//
// Every bench binary regenerates one row-group of the paper's Table 1 (or
// one lower-bound construction) as a *measured* table: a sweep over graph
// sizes, the measured time/messages, and the ratio against the paper's
// claimed bound.  Ratios that stay flat across the sweep confirm the shape
// of the claim; the absolute constant is implementation-specific and
// reported as-is.

#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <numeric>
#include <string>
#include <vector>

#include "election/election.hpp"
#include "graphgen/graph_algos.hpp"
#include "net/graph.hpp"

namespace ule::bench {

inline void header(const std::string& title, const std::string& claim) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("paper claim: %s\n", claim.c_str());
}

inline void row_divider(int width = 100) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

struct Stats {
  double mean_messages = 0;
  double mean_rounds = 0;
  double success_rate = 0;
  std::size_t trials = 0;
};

/// Average an election over `trials` seeds.
inline Stats measure(const Graph& g, const ProcessFactory& factory,
                     RunOptions base, std::size_t trials) {
  Stats st;
  st.trials = trials;
  double msgs = 0, rounds = 0, ok = 0;
  for (std::size_t t = 0; t < trials; ++t) {
    RunOptions opt = base;
    opt.seed = base.seed + 7919 * t + 13;
    const ElectionReport rep = run_election(g, factory, opt);
    msgs += static_cast<double>(rep.run.messages);
    rounds += static_cast<double>(rep.run.rounds);
    ok += rep.verdict.unique_leader ? 1.0 : 0.0;
  }
  st.mean_messages = msgs / static_cast<double>(trials);
  st.mean_rounds = rounds / static_cast<double>(trials);
  st.success_rate = ok / static_cast<double>(trials);
  return st;
}

}  // namespace ule::bench
