// Engine hot-path baseline: end-to-end wall-clock throughput of the
// SyncEngine on the three topology regimes the Table-1 reproductions sweep
// (ring / clique / dumbbell), plus a quiescent-heavy scheduler stressor.
//
// Writes BENCH_engine.json: one row per (workload, n) with wall_ms and
// derived rounds/sec, messages/sec and node-steps/sec ("ops").  Every future
// engine-perf PR reruns this bench and must not regress the trajectory
// (the bench-baseline convention; see ROADMAP.md).  Row schema:
//
//   { "bench": "engine_hotpath",
//     "rows": [ { "workload": ring_dfs | clique_sublinear | dumbbell_least_el
//                            | clique_flood_max | adversary_off_overhead
//                            | churn_off_overhead
//                            | reliable_off_overhead | metrics_off_overhead
//                            | ring_quiescent | ring_quiescent_perround,
//                 "family": ring | clique | dumbbell, "n": ..., "m": ...,
//                 "seed": ..., "threads": ..., "wall_ms": ...,
//                 "logical_rounds": ..., "executed_rounds": ...,
//                 "node_steps": ..., "messages": ..., "bits": ...,
//                 "completed": ..., "elected": ..., "unique_leader": ...,
//                 "rounds_per_sec": ..., "messages_per_sec": ...,
//                 "ops_per_sec": ...,
//                 "per_round_ns": ... (perround rows only) } ] }
//
// Counters (executed_rounds, messages, bits) are deterministic per seed and
// per thread count and double as a regression check; wall times are
// machine-specific.
//
//   $ ./bench_engine_hotpath                 # full sweep, ring up to 10^6
//   $ ./bench_engine_hotpath --quick         # CI smoke (tiny n, <1s)
//   $ ./bench_engine_hotpath --max-n 100000  # cap every sweep
//   $ ./bench_engine_hotpath --threads 4     # worker pool for all workloads
//   $ ./bench_engine_hotpath --out FILE      # default BENCH_engine.json
//   $ ./bench_engine_hotpath --metrics-out FILE
//                                            # also write one engine_metrics
//                                            # snapshot (net/metrics.hpp) from
//                                            # an adversarial reliable
//                                            # flood-max run — the nightly
//                                            # telemetry trajectory source
//
// Workloads:
//   ring_dfs         Theorem 4.1's DFS-agent election on a cycle.  Almost
//                    every round has exactly one runnable node, so it
//                    measures scheduler overhead per executed round.
//   clique_sublinear The [14]-style sublinear election on K_n: few rounds,
//                    dense delivery — measures the message path.
//   dumbbell_least_el Least-element-list election on Dumbbell(n/2, n):
//                    wave floods over a high-diameter graph.
//   clique_flood_max Flood-max on K_n: every round steps ~n nodes, each
//                    scanning ~n envelopes — the dense-round regime the
//                    parallel pipeline targets.  Swept at threads ∈
//                    {1, 2, 4, hw} (deduped); counters must be identical
//                    across the sweep (checked, not just reported).
//   adversary_off_overhead  Flood-max on K_n twice: plain vs an INERT
//                    adversary config (seed set, every knob zero).  All
//                    counters must be identical (hard failure otherwise);
//                    the wall-clock ratio is recorded, not gated.
//   churn_off_overhead  Flood-max on K_n twice: plain vs a crash schedule
//                    made only of EMPTY churn intervals (recover == crash,
//                    the documented no-op).  The engine must fold the
//                    schedule away at build and take the fault-free hot
//                    path: counter identity (including crashed, recoveries
//                    and adv_crash_drops staying zero) is a hard failure,
//                    the wall ratio is recorded, not gated.
//   reliable_off_overhead  Flood-max on K_n twice: plain vs wrapped in the
//                    reliable transport with enabled=false (transparent
//                    pass-through).  Same contract as adversary_off_overhead:
//                    counter identity is a hard failure, the wall ratio is
//                    recorded, not gated.
//   metrics_off_overhead  Flood-max on K_n twice: plain vs the SAME run with
//                    engine telemetry enabled.  Metrics are pure observation,
//                    so every RunResult counter must be identical (hard
//                    failure — a metrics build that perturbs a run is a
//                    correctness bug, not a perf note); the wall ratio of the
//                    metrics-ON run is recorded, not gated.
//   ring_quiescent   One spinning node on an otherwise unwoken ring, 1000
//                    rounds, zero messages: pure per-round scheduler cost.
//                    Wall time must be independent of n (the seed engine's
//                    O(n)-scan scheduler fails this by orders of magnitude).

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "election/dfs_election.hpp"
#include "net/metrics.hpp"
#include "election/flood_max.hpp"
#include "election/least_el.hpp"
#include "election/sublinear_complete.hpp"
#include "graphgen/dumbbell.hpp"
#include "graphgen/generators.hpp"
#include "net/engine.hpp"
#include "net/reliable.hpp"
#include "net/wakeup.hpp"

namespace ule {
namespace {

/// Stays runnable every round (without sending) until `limit`, then halts.
class SpinProcess final : public Process {
 public:
  explicit SpinProcess(Round limit) : limit_(limit) {}
  void on_wake(Context& ctx, std::span<const Envelope>) override {
    if (ctx.round() + 1 >= limit_) ctx.halt();
  }
  void on_round(Context& ctx, std::span<const Envelope>) override {
    if (ctx.round() + 1 >= limit_) ctx.halt();
  }

 private:
  Round limit_;
};

struct Measured {
  double wall_ms = 0;
  RunResult run;
  std::size_t m = 0;
  bool unique_leader = false;
};

void report_row(bench::JsonReport& report, const char* workload,
                const char* family, std::size_t n, std::uint64_t seed,
                const Measured& mr, unsigned threads) {
  const double secs = mr.wall_ms / 1000.0;
  auto rate = [&](std::uint64_t v) {
    return secs > 0 ? static_cast<double>(v) / secs : 0.0;
  };
  report.add_row()
      .set("workload", workload)
      .set("family", family)
      .set("n", static_cast<std::uint64_t>(n))
      .set("m", static_cast<std::uint64_t>(mr.m))
      .set("seed", seed)
      .set("threads", static_cast<std::uint64_t>(threads))
      .set("wall_ms", mr.wall_ms)
      .set("logical_rounds", static_cast<std::uint64_t>(mr.run.rounds))
      .set("executed_rounds",
           static_cast<std::uint64_t>(mr.run.executed_rounds))
      .set("node_steps", mr.run.node_steps)
      .set("messages", mr.run.messages)
      .set("bits", mr.run.bits)
      .set("completed", mr.run.completed)
      .set("elected", static_cast<std::uint64_t>(mr.run.elected))
      .set("unique_leader", mr.unique_leader)
      .set("rounds_per_sec", rate(mr.run.executed_rounds))
      .set("messages_per_sec", rate(mr.run.messages))
      .set("ops_per_sec", rate(mr.run.node_steps));
  std::printf("%-18s %-9s n=%-8zu t=%-2u %10.2f ms  %9llu exec rounds"
              "  %10llu msgs  %12.0f ops/s\n",
              workload, family, n, threads, mr.wall_ms,
              static_cast<unsigned long long>(mr.run.executed_rounds),
              static_cast<unsigned long long>(mr.run.messages),
              rate(mr.run.node_steps));
}

Measured run_election_timed(const Graph& g, const ProcessFactory& factory,
                            RunOptions opt) {
  bench::WallTimer timer;
  const ElectionReport rep = run_election(g, factory, opt);
  Measured mr;
  mr.wall_ms = timer.elapsed_ms();
  mr.run = rep.run;
  mr.m = g.m();
  mr.unique_leader = rep.verdict.unique_leader;
  return mr;
}

Measured run_quiescent(std::size_t n, Round rounds, unsigned threads,
                       std::size_t parallel_cutoff) {
  const Graph g = make_cycle(n);
  EngineConfig cfg;
  cfg.congest = CongestMode::Off;
  cfg.threads = threads;  // must not matter: counters are thread-invariant
  if (parallel_cutoff != 0) cfg.parallel_cutoff = parallel_cutoff;
  SyncEngine eng(g, cfg);
  // Only node 0 ever wakes; everyone else stays unwoken forever, so the
  // whole run is scheduler bookkeeping, no delivery, no messages.
  eng.set_wakeup(single_wakeup(n, 0));
  eng.init_processes(
      [rounds](NodeId) { return std::make_unique<SpinProcess>(rounds); });
  bench::WallTimer timer;
  const RunResult run = eng.run();
  Measured mr;
  mr.wall_ms = timer.elapsed_ms();
  mr.run = run;
  mr.m = g.m();
  mr.unique_leader = false;
  return mr;
}

}  // namespace
}  // namespace ule

int main(int argc, char** argv) {
  using namespace ule;

  bool quick = false;
  std::size_t max_n = 1'000'000;
  unsigned threads = 1;
  std::size_t parallel_cutoff = 0;  // 0 = engine default
  std::string out = "BENCH_engine.json";
  std::string metrics_out;
  std::string only;
  const auto usage = [&argv] {
    std::fprintf(stderr,
                 "usage: %s [--quick] [--max-n N] [--threads T (1..1024)] "
                 "[--parallel-cutoff K] [--only WORKLOAD] [--out FILE] "
                 "[--metrics-out FILE]\n",
                 argv[0]);
    return 2;
  };
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    else if (std::strcmp(argv[i], "--max-n") == 0 && i + 1 < argc)
      max_n = static_cast<std::size_t>(std::atoll(argv[++i]));
    else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      const int t = std::atoi(argv[++i]);
      if (t < 1 || t > 1024) return usage();
      threads = static_cast<unsigned>(t);
    } else if (std::strcmp(argv[i], "--parallel-cutoff") == 0 && i + 1 < argc) {
      const long long k = std::atoll(argv[++i]);
      if (k < 1) return usage();
      parallel_cutoff = static_cast<std::size_t>(k);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      out = argv[++i];
    else if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc)
      metrics_out = argv[++i];
    else if (std::strcmp(argv[i], "--only") == 0 && i + 1 < argc)
      only = argv[++i];
    else
      return usage();
  }
  const auto enabled = [&only](const char* workload) {
    return only.empty() || std::string(workload).find(only) != std::string::npos;
  };

  bench::header("Engine hot path: wall-clock throughput",
                "per-round cost O(runnable + delivered), not O(n)");
  bench::JsonReport report("engine_hotpath");
  const std::uint64_t seed = 1;

  auto capped = [&](std::initializer_list<std::size_t> sizes) {
    std::vector<std::size_t> out_sizes;
    for (std::size_t s : sizes)
      if (s <= max_n) out_sizes.push_back(s);
    return out_sizes;
  };

  // --- ring_dfs ---
  if (enabled("ring_dfs"))
    for (std::size_t n :
       capped(quick ? std::initializer_list<std::size_t>{64, 256}
                    : std::initializer_list<std::size_t>{1'000, 10'000,
                                                         100'000, 1'000'000})) {
    const Graph g = make_cycle(n);
    RunOptions opt;
    opt.seed = seed;
    opt.ids = IdScheme::RandomPermutation;
    opt.max_rounds = Round{1} << 62;
    opt.congest = CongestMode::Off;
    opt.threads = threads;
    opt.parallel_cutoff = parallel_cutoff;
    report_row(report, "ring_dfs", "ring", n, seed,
               run_election_timed(g, make_dfs_election(), opt), threads);
  }

  // --- clique_sublinear ---
  if (enabled("clique_sublinear"))
    for (std::size_t n :
       capped(quick ? std::initializer_list<std::size_t>{32, 64}
                    : std::initializer_list<std::size_t>{512, 1'024, 2'048,
                                                         4'096})) {
    const Graph g = make_complete(n);
    RunOptions opt;
    opt.seed = seed;
    opt.knowledge = Knowledge::of_n(n);
    opt.congest = CongestMode::Off;
    opt.threads = threads;
    opt.parallel_cutoff = parallel_cutoff;
    report_row(report, "clique_sublinear", "clique", n, seed,
               run_election_timed(g, make_sublinear_complete(), opt), threads);
  }

  // --- dumbbell_least_el ---
  if (enabled("dumbbell_least_el"))
    for (std::size_t n :
       capped(quick ? std::initializer_list<std::size_t>{64, 128}
                    : std::initializer_list<std::size_t>{1'000, 10'000,
                                                         100'000})) {
    const Dumbbell db = make_dumbbell(n / 2, n, 0, 1);
    RunOptions opt;
    opt.seed = seed;
    opt.knowledge = Knowledge::of_n(db.graph.n());
    opt.congest = CongestMode::Off;
    opt.threads = threads;
    opt.parallel_cutoff = parallel_cutoff;
    report_row(report, "dumbbell_least_el", "dumbbell", db.graph.n(), seed,
               run_election_timed(
                   db.graph,
                   make_least_el(LeastElConfig::variant_A(db.graph.n())),
                   opt),
               threads);
  }

  // --- clique_flood_max: dense rounds swept across the thread ladder ---
  if (enabled("clique_flood_max")) {
    std::vector<unsigned> ladder = {1, 2, 4};
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    ladder.push_back(hw);
    std::sort(ladder.begin(), ladder.end());
    ladder.erase(std::unique(ladder.begin(), ladder.end()), ladder.end());
    for (std::size_t n :
         capped(quick ? std::initializer_list<std::size_t>{48}
                      : std::initializer_list<std::size_t>{512, 1'024})) {
      const Graph g = make_complete(n);
      Measured base;
      for (const unsigned t : ladder) {
        RunOptions opt;
        opt.seed = seed;
        opt.congest = CongestMode::Off;
        opt.threads = t;
        opt.parallel_cutoff = parallel_cutoff;
        const Measured mr = run_election_timed(g, make_flood_max(), opt);
        if (t == ladder.front()) {
          base = mr;
        }
        // Every RunResult counter must be identical across the ladder (and
        // the election must actually succeed) — a scheduling bug that
        // preserves message totals must still fail the sweep.
        if (mr.run.rounds != base.run.rounds ||
            mr.run.executed_rounds != base.run.executed_rounds ||
            mr.run.node_steps != base.run.node_steps ||
            mr.run.messages != base.run.messages ||
            mr.run.bits != base.run.bits ||
            mr.run.elected != base.run.elected || !mr.unique_leader) {
          std::fprintf(stderr,
                       "DETERMINISM BREAK: clique_flood_max n=%zu threads=%u "
                       "diverges from threads=%u\n",
                       n, t, ladder.front());
          return 1;
        }
        report_row(report, "clique_flood_max", "clique", n, seed, mr, t);
      }
    }
  }

  // --- adversary_off_overhead: the zero-overhead contract, pinned ---
  // An INERT adversary config (seed set, every knob zero — active() is
  // false) must compile down to the exact fault-free hot path.  Counters are
  // compared hard (exit 1 on any divergence); the wall-clock ratio is
  // recorded for trend-watching but not gated — wall noise on CI runners
  // would make a gate flaky, and the counter identity is the real contract.
  if (enabled("adversary_off_overhead")) {
    for (std::size_t n :
         capped(quick ? std::initializer_list<std::size_t>{48}
                      : std::initializer_list<std::size_t>{512})) {
      const Graph g = make_complete(n);
      RunOptions opt;
      opt.seed = seed;
      opt.congest = CongestMode::Off;
      opt.threads = threads;
      opt.parallel_cutoff = parallel_cutoff;
      const Measured plain = run_election_timed(g, make_flood_max(), opt);
      opt.adversary = AdversaryConfig{};
      opt.adversary.seed = 0xFEED;  // inert: seed set, no knobs
      const Measured inert = run_election_timed(g, make_flood_max(), opt);
      if (inert.run.rounds != plain.run.rounds ||
          inert.run.executed_rounds != plain.run.executed_rounds ||
          inert.run.node_steps != plain.run.node_steps ||
          inert.run.messages != plain.run.messages ||
          inert.run.bits != plain.run.bits ||
          inert.run.elected != plain.run.elected ||
          inert.run.last_progress != plain.run.last_progress ||
          inert.run.crashed != 0 || !inert.unique_leader) {
        std::fprintf(stderr,
                     "ZERO-OVERHEAD BREAK: inert adversary diverges from the "
                     "plain run on clique_flood_max n=%zu\n",
                     n);
        return 1;
      }
      const double ratio =
          plain.wall_ms > 0 ? inert.wall_ms / plain.wall_ms : 1.0;
      report.add_row()
          .set("workload", "adversary_off_overhead")
          .set("family", "clique")
          .set("n", static_cast<std::uint64_t>(n))
          .set("seed", seed)
          .set("threads", static_cast<std::uint64_t>(threads))
          .set("wall_ms", inert.wall_ms)
          .set("plain_wall_ms", plain.wall_ms)
          .set("wall_ratio", ratio)
          .set("counters_identical", true);
      std::printf("%-18s %-9s n=%-8zu t=%-2u %10.2f ms  vs plain %.2f ms  "
                  "ratio %.3f (counters identical)\n",
                  "adv_off_overhead", "clique", n, threads, inert.wall_ms,
                  plain.wall_ms, ratio);
    }
  }

  // --- churn_off_overhead: the folded-schedule contract, pinned ---
  // A crash schedule made ENTIRELY of empty intervals (recover == crash, the
  // documented no-op shape) must fold away at engine build and take the
  // exact fault-free hot path — no churn-event scan, no crash bitmap, no
  // factory retention.  Same discipline: counters compared hard (including
  // the churn surface itself: crashed / recoveries / adv_crash_drops must
  // all be zero), wall ratio recorded but not gated.
  if (enabled("churn_off_overhead")) {
    for (std::size_t n :
         capped(quick ? std::initializer_list<std::size_t>{48}
                      : std::initializer_list<std::size_t>{512})) {
      const Graph g = make_complete(n);
      RunOptions opt;
      opt.seed = seed;
      opt.congest = CongestMode::Off;
      opt.threads = threads;
      opt.parallel_cutoff = parallel_cutoff;
      const Measured plain = run_election_timed(g, make_flood_max(), opt);
      opt.adversary = AdversaryConfig{};
      opt.adversary.crashes = {{1, 3, 3}, {5, 7, 7}};  // all no-op intervals
      const Measured inert = run_election_timed(g, make_flood_max(), opt);
      if (inert.run.rounds != plain.run.rounds ||
          inert.run.executed_rounds != plain.run.executed_rounds ||
          inert.run.node_steps != plain.run.node_steps ||
          inert.run.messages != plain.run.messages ||
          inert.run.bits != plain.run.bits ||
          inert.run.elected != plain.run.elected ||
          inert.run.last_progress != plain.run.last_progress ||
          inert.run.crashed != 0 || inert.run.recoveries != 0 ||
          inert.run.adv_crash_drops != 0 || !inert.unique_leader) {
        std::fprintf(stderr,
                     "ZERO-OVERHEAD BREAK: all-no-op churn schedule diverges "
                     "from the plain run on clique_flood_max n=%zu\n",
                     n);
        return 1;
      }
      const double ratio =
          plain.wall_ms > 0 ? inert.wall_ms / plain.wall_ms : 1.0;
      report.add_row()
          .set("workload", "churn_off_overhead")
          .set("family", "clique")
          .set("n", static_cast<std::uint64_t>(n))
          .set("seed", seed)
          .set("threads", static_cast<std::uint64_t>(threads))
          .set("wall_ms", inert.wall_ms)
          .set("plain_wall_ms", plain.wall_ms)
          .set("wall_ratio", ratio)
          .set("counters_identical", true);
      std::printf("%-18s %-9s n=%-8zu t=%-2u %10.2f ms  vs plain %.2f ms  "
                  "ratio %.3f (counters identical)\n",
                  "churn_off_overhead", "clique", n, threads, inert.wall_ms,
                  plain.wall_ms, ratio);
    }
  }

  // --- reliable_off_overhead: the wrapper-off contract, pinned ---
  // The ARQ wrapper with enabled=false must be a transparent pass-through:
  // no frame rewriting, no sequence numbers, no extra wakes — the exact
  // counters of an unwrapped run.  Same discipline as adversary_off_overhead:
  // counters compared hard, wall ratio recorded but not gated.
  if (enabled("reliable_off_overhead")) {
    for (std::size_t n :
         capped(quick ? std::initializer_list<std::size_t>{48}
                      : std::initializer_list<std::size_t>{512})) {
      const Graph g = make_complete(n);
      RunOptions opt;
      opt.seed = seed;
      opt.congest = CongestMode::Off;
      opt.threads = threads;
      opt.parallel_cutoff = parallel_cutoff;
      const Measured plain = run_election_timed(g, make_flood_max(), opt);
      ReliableConfig rcfg;
      rcfg.enabled = false;
      const Measured wrapped =
          run_election_timed(g, make_reliable(make_flood_max(), rcfg), opt);
      if (wrapped.run.rounds != plain.run.rounds ||
          wrapped.run.executed_rounds != plain.run.executed_rounds ||
          wrapped.run.node_steps != plain.run.node_steps ||
          wrapped.run.messages != plain.run.messages ||
          wrapped.run.bits != plain.run.bits ||
          wrapped.run.elected != plain.run.elected ||
          wrapped.run.last_progress != plain.run.last_progress ||
          !wrapped.unique_leader) {
        std::fprintf(stderr,
                     "ZERO-OVERHEAD BREAK: disabled reliable wrapper diverges "
                     "from the plain run on clique_flood_max n=%zu\n",
                     n);
        return 1;
      }
      const double ratio =
          plain.wall_ms > 0 ? wrapped.wall_ms / plain.wall_ms : 1.0;
      report.add_row()
          .set("workload", "reliable_off_overhead")
          .set("family", "clique")
          .set("n", static_cast<std::uint64_t>(n))
          .set("seed", seed)
          .set("threads", static_cast<std::uint64_t>(threads))
          .set("wall_ms", wrapped.wall_ms)
          .set("plain_wall_ms", plain.wall_ms)
          .set("wall_ratio", ratio)
          .set("counters_identical", true);
      std::printf("%-18s %-9s n=%-8zu t=%-2u %10.2f ms  vs plain %.2f ms  "
                  "ratio %.3f (counters identical)\n",
                  "rel_off_overhead", "clique", n, threads, wrapped.wall_ms,
                  plain.wall_ms, ratio);
    }
  }

  // --- metrics_off_overhead: telemetry is pure observation, pinned ---
  // Enabling the metrics registry must not change a single RunResult counter:
  // gauges are sampled at a sequential point of the round pipeline and
  // counters are folded from the same lane totals the engine already bills.
  // Counters compared hard (exit 1 on divergence), wall ratio of the
  // metrics-ON run recorded but not gated — the same discipline as the
  // adversary and reliable off-switch rows above.
  if (enabled("metrics_off_overhead")) {
    for (std::size_t n :
         capped(quick ? std::initializer_list<std::size_t>{48}
                      : std::initializer_list<std::size_t>{512})) {
      const Graph g = make_complete(n);
      RunOptions opt;
      opt.seed = seed;
      opt.congest = CongestMode::Off;
      opt.threads = threads;
      opt.parallel_cutoff = parallel_cutoff;
      const Measured plain = run_election_timed(g, make_flood_max(), opt);
      opt.metrics.enabled = true;
      const Measured metered = run_election_timed(g, make_flood_max(), opt);
      if (metered.run.rounds != plain.run.rounds ||
          metered.run.executed_rounds != plain.run.executed_rounds ||
          metered.run.node_steps != plain.run.node_steps ||
          metered.run.messages != plain.run.messages ||
          metered.run.bits != plain.run.bits ||
          metered.run.elected != plain.run.elected ||
          metered.run.last_progress != plain.run.last_progress ||
          metered.run.crashed != 0 || !metered.unique_leader ||
          !metered.run.metrics || plain.run.metrics) {
        std::fprintf(stderr,
                     "ZERO-OVERHEAD BREAK: enabling engine metrics perturbs "
                     "the run on clique_flood_max n=%zu\n",
                     n);
        return 1;
      }
      const double ratio =
          plain.wall_ms > 0 ? metered.wall_ms / plain.wall_ms : 1.0;
      report.add_row()
          .set("workload", "metrics_off_overhead")
          .set("family", "clique")
          .set("n", static_cast<std::uint64_t>(n))
          .set("seed", seed)
          .set("threads", static_cast<std::uint64_t>(threads))
          .set("wall_ms", metered.wall_ms)
          .set("plain_wall_ms", plain.wall_ms)
          .set("wall_ratio", ratio)
          .set("counters_identical", true);
      std::printf("%-18s %-9s n=%-8zu t=%-2u %10.2f ms  vs plain %.2f ms  "
                  "ratio %.3f (counters identical)\n",
                  "mx_off_overhead", "clique", n, threads, metered.wall_ms,
                  plain.wall_ms, ratio);
    }
  }

  // --- ring_quiescent ---
  const Round spin = 1'000;
  if (enabled("ring_quiescent"))
    for (std::size_t n :
         capped(quick ? std::initializer_list<std::size_t>{1'000}
                      : std::initializer_list<std::size_t>{10'000, 100'000,
                                                           1'000'000})) {
      const Measured mr = run_quiescent(n, spin, threads, parallel_cutoff);
      report_row(report, "ring_quiescent", "ring", n, seed, mr, threads);
      // Per-round scheduler cost, setup-free: a run's wall time includes
      // one-time O(n) work (wake-heap seeding, the final status tally), so
      // take the difference quotient of a long and a short spin — with a
      // window long enough to dominate setup noise, best of three.  This is
      // the number that must be independent of n.
      const Round window = 1'000'000;
      double best_short = mr.wall_ms, best_long = 1e300;
      for (int rep = 0; rep < 3; ++rep) {
        best_short =
            std::min(best_short, run_quiescent(n, spin, threads, parallel_cutoff).wall_ms);
        best_long = std::min(best_long,
                             run_quiescent(n, spin + window, threads, parallel_cutoff).wall_ms);
      }
      const double per_round_ns =
          (best_long - best_short) * 1e6 / static_cast<double>(window);
      report.add_row()
          .set("workload", "ring_quiescent_perround")
          .set("family", "ring")
          .set("n", static_cast<std::uint64_t>(n))
          .set("seed", seed)
          .set("threads", static_cast<std::uint64_t>(threads))
          .set("per_round_ns", per_round_ns);
      std::printf("%-18s %-9s n=%-8zu %10.1f ns/round\n",
                  "quiescent_perround", "ring", n, per_round_ns);
    }

  // --- --metrics-out: one standalone engine_metrics snapshot ---
  // A fixed adversarial reliable flood-max run exercising every counter
  // family (engine.*, adversary.*, arq.*).  The snapshot is a pure function
  // of the seed, so nightly CI can append it to the committed telemetry
  // trajectory and any drift is a real behavior change.
  if (!metrics_out.empty()) {
    const std::size_t n = quick ? 24 : 96;
    const Graph g = make_complete(n);
    RunOptions opt;
    opt.seed = seed;
    opt.congest = CongestMode::Off;
    opt.threads = threads;
    opt.parallel_cutoff = parallel_cutoff;
    opt.metrics.enabled = true;
    opt.adversary.seed = 0xBEEF;
    opt.adversary.drop = 0.10;
    opt.adversary.duplicate = 0.05;
    ReliableConfig rcfg;
    const Measured mr =
        run_election_timed(g, make_reliable(make_flood_max(), rcfg), opt);
    if (!mr.run.metrics || !mr.unique_leader) {
      std::fprintf(stderr, "metrics snapshot run failed (n=%zu)\n", n);
      return 1;
    }
    const std::string doc = metrics_json(*mr.run.metrics);
    std::string err;
    if (!validate_metrics_json(doc, &err)) {
      std::fprintf(stderr, "metrics snapshot fails its own schema: %s\n",
                   err.c_str());
      return 1;
    }
    std::FILE* f = std::fopen(metrics_out.c_str(), "wb");
    if (!f || std::fwrite(doc.data(), 1, doc.size(), f) != doc.size()) {
      std::fprintf(stderr, "cannot write %s\n", metrics_out.c_str());
      if (f) std::fclose(f);
      return 1;
    }
    std::fclose(f);
    std::printf("wrote %s (engine_metrics snapshot, n=%zu)\n",
                metrics_out.c_str(), n);
  }

  try {
    report.write(out);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::printf("\nwrote %s\n", out.c_str());
  return 0;
}
