// The Complexity Lab CLI: run sweep campaigns over every registry-declared
// growth curve, fit growth exponents, and emit the bench baseline + docs.
//
//   complexity_lab                       default campaign: full ladders,
//                                        writes BENCH_lab.json +
//                                        docs/COMPLEXITY.md, exit 1 when any
//                                        fitted exponent leaves its band
//   complexity_lab --quick               small ladders (CI smoke, seconds)
//   complexity_lab --seed S              change the master seed
//   complexity_lab --replicates R        seed replicates per cell (default 5)
//   complexity_lab --threads T           worker pool size (0 = hardware)
//   complexity_lab --protocol P          restrict to protocol P (repeatable)
//   complexity_lab --family F            restrict to family F (repeatable)
//   complexity_lab --ladder 32,64,128    override every curve's n-ladder
//   complexity_lab --out FILE            JSON path (default BENCH_lab.json)
//   complexity_lab --md FILE             report path (docs/COMPLEXITY.md)
//   complexity_lab --no-md / --no-json   skip an output
//   complexity_lab --no-check            exit 0 even when fits fail
//   complexity_lab --list-registry       print the registries (plain text)
//   complexity_lab --list-registry --markdown
//                                        emit docs/REGISTRY.md to stdout
//                                        (CI regenerates + diffs it)
//
// Exit status: 0 = every fit in band and zero conformance violations,
// 1 = a fit left its band or a run violated an invariant, 2 = usage errors.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "lab/campaign.hpp"
#include "lab/report.hpp"
#include "scenario/registry.hpp"

using namespace ule;

namespace {

void print_registry_plain(const ProtocolRegistry& protos,
                          const FamilyRegistry& fams) {
  std::printf("protocols (%zu):\n", protos.all().size());
  for (const ProtocolInfo& p : protos.all()) {
    std::printf("  %-20s %-13s min-knowledge=%-4s%s%s%s\n", p.name.c_str(),
                to_string(p.contract), to_string(p.min_knowledge),
                p.wakeup_tolerant ? " wakeup-tolerant" : "",
                p.needs_complete ? " complete-only" : "",
                p.explicit_overlay ? " explicit-overlay" : "");
    for (const GrowthExpectation& e : p.growth)
      std::printf("    growth: %s %s ~ n^%.2f +- %.2f  (%s)\n",
                  e.family.c_str(), e.metric.c_str(), e.exponent, e.tol,
                  e.note.c_str());
  }
  std::printf("families (%zu):\n", fams.all().size());
  for (const FamilyInfo& f : fams.all()) {
    std::printf("  %-12s", f.name.c_str());
    for (const ParamSpec& ps : f.params)
      std::printf(" %s in [%llu,%llu]", ps.name.c_str(),
                  static_cast<unsigned long long>(ps.lo),
                  static_cast<unsigned long long>(ps.hi));
    std::printf("%s\n", f.complete ? "  (complete)" : "");
  }
}

std::vector<std::uint64_t> parse_ladder(const char* arg) {
  std::vector<std::uint64_t> out;
  const std::string s = arg;
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    out.push_back(std::strtoull(s.substr(pos, comma - pos).c_str(), nullptr, 10));
    pos = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const ProtocolRegistry& protos = default_protocols();
  const FamilyRegistry& fams = default_families();

  lab::CampaignConfig cfg;
  std::string out_json = "BENCH_lab.json";
  std::string out_md = "docs/COMPLEXITY.md";
  bool write_json = true, write_md = true, check = true;
  bool list_registry = false, markdown = false;
  bool replicates_set = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--quick") {
      cfg.quick = true;
    } else if (arg == "--seed") {
      cfg.master_seed = std::strtoull(need_value("--seed"), nullptr, 10);
    } else if (arg == "--replicates") {
      cfg.replicates = std::strtoull(need_value("--replicates"), nullptr, 10);
      replicates_set = true;
    } else if (arg == "--threads") {
      cfg.threads =
          static_cast<unsigned>(std::strtoul(need_value("--threads"), nullptr, 10));
    } else if (arg == "--protocol") {
      cfg.protocols.push_back(need_value("--protocol"));
    } else if (arg == "--family") {
      cfg.families.push_back(need_value("--family"));
    } else if (arg == "--ladder") {
      cfg.ladder = parse_ladder(need_value("--ladder"));
    } else if (arg == "--out") {
      out_json = need_value("--out");
    } else if (arg == "--md") {
      out_md = need_value("--md");
    } else if (arg == "--no-md") {
      write_md = false;
    } else if (arg == "--no-json") {
      write_json = false;
    } else if (arg == "--no-check") {
      check = false;
    } else if (arg == "--list-registry") {
      list_registry = true;
    } else if (arg == "--markdown") {
      markdown = true;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return 2;
    }
  }

  // --quick lowers the replicate default; an explicit --replicates wins
  // regardless of flag order.
  if (cfg.quick && !replicates_set) cfg.replicates = 3;

  if (list_registry) {
    if (markdown)
      std::fputs(lab::registry_markdown(protos, fams).c_str(), stdout);
    else
      print_registry_plain(protos, fams);
    return 0;
  }
  if (markdown) {
    std::fprintf(stderr, "--markdown only applies to --list-registry\n");
    return 2;
  }

  std::printf("complexity lab: %s ladders, master seed %llu, "
              "%zu replicates per cell\n\n",
              cfg.quick ? "quick" : "full",
              static_cast<unsigned long long>(cfg.master_seed),
              cfg.replicates);

  lab::CampaignResult res;
  try {
    res = lab::run_campaign(protos, fams, cfg, &std::cout);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "configuration error: %s\n", e.what());
    return 2;
  }

  try {
    if (write_json) {
      lab::write_text_file(out_json, lab::bench_json(res));
      std::printf("\nwrote %s\n", out_json.c_str());
    }
    if (write_md) {
      lab::write_text_file(out_md, lab::complexity_markdown(res));
      std::printf("wrote %s\n", out_md.c_str());
    }
  } catch (const std::runtime_error& e) {
    std::fprintf(stderr, "output error: %s\n", e.what());
    return 2;
  }

  const std::size_t failed = res.failed_fits();
  const std::size_t viol = res.violation_count();
  std::printf("\n%zu engine runs over %zu curves: %zu fit failures, "
              "%zu conformance violations\n",
              res.total_runs, res.curves.size(), failed, viol);
  if (res.ok()) {
    std::printf("all fitted exponents within their declared bands\n");
    return 0;
  }
  return check ? 1 : 0;
}
