// The Complexity Lab CLI: run sweep campaigns over every registry-declared
// growth curve, fit growth exponents, and emit the bench baseline + docs.
//
//   complexity_lab                       default campaign: full ladders,
//                                        writes BENCH_lab.json +
//                                        docs/COMPLEXITY.md, exit 1 when any
//                                        fitted exponent leaves its band
//   complexity_lab --quick               small ladders (CI smoke, seconds)
//   complexity_lab --seed S              change the master seed
//   complexity_lab --replicates R        seed replicates per cell (default 5)
//   complexity_lab --threads T           worker pool size (0 = hardware)
//   complexity_lab --protocol P          restrict to protocol P (repeatable)
//   complexity_lab --family F            restrict to family F (repeatable)
//   complexity_lab --ladder 32,64,128    override every n-axis curve's ladder
//   complexity_lab --d-ladder 4,8,16     override every diameter-axis ladder
//   complexity_lab --loss-ladder 0,300,600
//                                        override every loss-axis drop_pm ladder
//   complexity_lab --nominal-n N         fixed total size for diameter-axis
//   complexity_lab --loss-n N            fixed instance size for loss-axis
//                                        curves (default 96 quick / 256 full)
//   complexity_lab --out FILE            JSON path (default BENCH_lab.json)
//   complexity_lab --md FILE             report path (docs/COMPLEXITY.md)
//   complexity_lab --no-md / --no-json   skip an output
//   complexity_lab --no-check            exit 0 even when fits fail
//   complexity_lab --list-registry       print the registries (plain text)
//   complexity_lab --list-registry --markdown
//                                        emit docs/REGISTRY.md to stdout
//                                        (CI regenerates + diffs it)
//   complexity_lab --trend BASELINE CURRENT
//                                        diff two BENCH_lab.json documents
//                                        and fail on drift in any
//                                        deterministic counter statistic or
//                                        fitted exponent (lab/trend.hpp;
//                                        the CI trend gate)
//   complexity_lab --trend-exp-tol T     exponent drift tolerance (0.05)
//   complexity_lab --allow-missing       tolerate baseline rows absent from
//                                        the current document
//   complexity_lab --metrics             collect an engine telemetry snapshot
//                                        (net/metrics.hpp) on replicate 0 of
//                                        every cell; cell rows grow mx_*
//                                        fields (ignored by the trend gate)
//   complexity_lab --validate-metrics FILE
//                                        validate FILE against the
//                                        engine_metrics snapshot schema and
//                                        exit (the CI metrics smoke)
//
// Exit status: 0 = every fit in band and zero conformance violations (for
// --trend: no drift; for --validate-metrics: schema OK), 1 = a fit left its
// band, a run violated an invariant, the trend gate found drift or the
// snapshot failed validation, 2 = usage errors.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "lab/campaign.hpp"
#include "lab/report.hpp"
#include "lab/trend.hpp"
#include "net/metrics.hpp"
#include "scenario/registry.hpp"

using namespace ule;

namespace {

void print_registry_plain(const ProtocolRegistry& protos,
                          const FamilyRegistry& fams) {
  std::printf("protocols (%zu):\n", protos.all().size());
  for (const ProtocolInfo& p : protos.all()) {
    std::printf("  %-20s %-13s min-knowledge=%-4s%s%s%s\n", p.name.c_str(),
                to_string(p.contract), to_string(p.min_knowledge),
                p.wakeup_tolerant ? " wakeup-tolerant" : "",
                p.needs_complete ? " complete-only" : "",
                p.explicit_overlay ? " explicit-overlay" : "");
    for (const GrowthExpectation& e : p.growth)
      std::printf("    growth: %s %s ~ n^%.2f +- %.2f  (%s)\n",
                  e.family.c_str(), e.metric.c_str(), e.exponent, e.tol,
                  e.note.c_str());
  }
  std::printf("families (%zu):\n", fams.all().size());
  for (const FamilyInfo& f : fams.all()) {
    std::printf("  %-12s", f.name.c_str());
    for (const ParamSpec& ps : f.params)
      std::printf(" %s in [%llu,%llu]", ps.name.c_str(),
                  static_cast<unsigned long long>(ps.lo),
                  static_cast<unsigned long long>(ps.hi));
    std::printf("%s\n", f.complete ? "  (complete)" : "");
  }
}

std::vector<std::uint64_t> parse_ladder(const char* arg) {
  std::vector<std::uint64_t> out;
  const std::string s = arg;
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    out.push_back(std::strtoull(s.substr(pos, comma - pos).c_str(), nullptr, 10));
    pos = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const ProtocolRegistry& protos = default_protocols();
  const FamilyRegistry& fams = default_families();

  lab::CampaignConfig cfg;
  lab::TrendConfig trend_cfg;
  std::string out_json = "BENCH_lab.json";
  std::string out_md = "docs/COMPLEXITY.md";
  std::string trend_baseline, trend_current;
  std::string validate_metrics_path;
  bool write_json = true, write_md = true, check = true;
  bool list_registry = false, markdown = false, trend = false;
  bool replicates_set = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--quick") {
      cfg.quick = true;
    } else if (arg == "--seed") {
      cfg.master_seed = std::strtoull(need_value("--seed"), nullptr, 10);
    } else if (arg == "--replicates") {
      cfg.replicates = std::strtoull(need_value("--replicates"), nullptr, 10);
      replicates_set = true;
    } else if (arg == "--threads") {
      cfg.threads =
          static_cast<unsigned>(std::strtoul(need_value("--threads"), nullptr, 10));
    } else if (arg == "--protocol") {
      cfg.protocols.push_back(need_value("--protocol"));
    } else if (arg == "--family") {
      cfg.families.push_back(need_value("--family"));
    } else if (arg == "--ladder") {
      cfg.ladder = parse_ladder(need_value("--ladder"));
    } else if (arg == "--d-ladder") {
      cfg.d_ladder = parse_ladder(need_value("--d-ladder"));
    } else if (arg == "--loss-ladder") {
      cfg.loss_ladder = parse_ladder(need_value("--loss-ladder"));
    } else if (arg == "--nominal-n") {
      cfg.nominal_n = std::strtoull(need_value("--nominal-n"), nullptr, 10);
    } else if (arg == "--loss-n") {
      cfg.loss_n = std::strtoull(need_value("--loss-n"), nullptr, 10);
    } else if (arg == "--trend") {
      trend = true;
      trend_baseline = need_value("--trend");
      trend_current = need_value("--trend");
    } else if (arg == "--trend-exp-tol") {
      trend_cfg.exponent_tol =
          std::strtod(need_value("--trend-exp-tol"), nullptr);
    } else if (arg == "--allow-missing") {
      trend_cfg.allow_missing = true;
    } else if (arg == "--metrics") {
      cfg.metrics = true;
    } else if (arg == "--validate-metrics") {
      validate_metrics_path = need_value("--validate-metrics");
    } else if (arg == "--out") {
      out_json = need_value("--out");
    } else if (arg == "--md") {
      out_md = need_value("--md");
    } else if (arg == "--no-md") {
      write_md = false;
    } else if (arg == "--no-json") {
      write_json = false;
    } else if (arg == "--no-check") {
      check = false;
    } else if (arg == "--list-registry") {
      list_registry = true;
    } else if (arg == "--markdown") {
      markdown = true;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return 2;
    }
  }

  // --quick lowers the replicate default; an explicit --replicates wins
  // regardless of flag order.
  if (cfg.quick && !replicates_set) cfg.replicates = 3;

  if (!validate_metrics_path.empty()) {
    try {
      std::string err;
      if (validate_metrics_json(lab::read_text_file(validate_metrics_path),
                                &err)) {
        std::printf("metrics snapshot OK: %s\n",
                    validate_metrics_path.c_str());
        return 0;
      }
      std::fprintf(stderr, "metrics schema violation in %s: %s\n",
                   validate_metrics_path.c_str(), err.c_str());
      return 1;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "metrics validation error: %s\n", e.what());
      return 2;
    }
  }

  if (trend) {
    try {
      const lab::TrendReport rep = lab::compare_lab_trend(
          lab::read_text_file(trend_baseline),
          lab::read_text_file(trend_current), trend_cfg);
      for (const std::string& n : rep.notes)
        std::printf("note:  %s\n", n.c_str());
      for (const std::string& e : rep.errors)
        std::printf("DRIFT: %s\n", e.c_str());
      std::printf("trend gate: %zu cells + %zu fits compared against %s: "
                  "%zu drifts\n",
                  rep.cells_compared, rep.fits_compared,
                  trend_baseline.c_str(), rep.errors.size());
      if (rep.ok()) {
        std::printf("no drift outside tolerance\n");
        return 0;
      }
      std::printf("counter statistics and exponents are pure functions of "
                  "the master seed;\nintentional changes must regenerate the "
                  "committed baselines (see\ndocs/ARCHITECTURE.md, "
                  "\"Trend gate\")\n");
      return 1;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "trend error: %s\n", e.what());
      return 2;
    }
  }

  if (list_registry) {
    if (markdown)
      std::fputs(lab::registry_markdown(protos, fams).c_str(), stdout);
    else
      print_registry_plain(protos, fams);
    return 0;
  }
  if (markdown) {
    std::fprintf(stderr, "--markdown only applies to --list-registry\n");
    return 2;
  }

  std::printf("complexity lab: %s ladders, master seed %llu, "
              "%zu replicates per cell\n\n",
              cfg.quick ? "quick" : "full",
              static_cast<unsigned long long>(cfg.master_seed),
              cfg.replicates);

  lab::CampaignResult res;
  try {
    res = lab::run_campaign(protos, fams, cfg, &std::cout);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "configuration error: %s\n", e.what());
    return 2;
  }

  try {
    if (write_json) {
      lab::write_text_file(out_json, lab::bench_json(res));
      std::printf("\nwrote %s\n", out_json.c_str());
    }
    if (write_md) {
      lab::write_text_file(out_md, lab::complexity_markdown(res));
      std::printf("wrote %s\n", out_md.c_str());
    }
  } catch (const std::runtime_error& e) {
    std::fprintf(stderr, "output error: %s\n", e.what());
    return 2;
  }

  const std::size_t failed = res.failed_fits();
  const std::size_t viol = res.violation_count();
  std::printf("\n%zu engine runs over %zu curves: %zu fit failures, "
              "%zu conformance violations\n",
              res.total_runs, res.curves.size(), failed, viol);
  if (res.ok()) {
    std::printf("all fitted exponents within their declared bands\n");
    return 0;
  }
  return check ? 1 : 0;
}
