// The conformance fuzzer CLI: draw scenarios from a master seed, run them
// through the invariant checker, shrink failures, print replay strings.
//
//   fuzz_scenarios --quick              1000 scenarios, small graphs (CI gate)
//   fuzz_scenarios --smoke              200 scenarios (PR-workflow smoke)
//   fuzz_scenarios --count N --max-n M  custom sweep
//   fuzz_scenarios --time-budget SEC    stop drawing after SEC seconds
//   fuzz_scenarios --seed S             change the master seed
//   fuzz_scenarios --adversary-fraction F
//                                       fraction of draws carrying a
//                                       delivery/fault adversary (default .25)
//   fuzz_scenarios --protocol-filter S  only draw protocols whose name
//                                       contains S (e.g. "reliable")
//   fuzz_scenarios --threads-fraction F fraction of draws rerun at
//                                       threads > 1 (default .25)
//   fuzz_scenarios --churn-fraction F   fraction of crash draws upgraded to
//                                       bounded crash-recovery intervals
//                                       (live_under_churn protocols only,
//                                       default .25)
//   fuzz_scenarios --replay TOKEN      re-run one scenario from its token
//   fuzz_scenarios --list              print registered protocols + families
//   fuzz_scenarios --stats             print per-protocol envelope headroom
//   fuzz_scenarios --no-shrink         report failures unshrunk
//
// Exit status: 0 when every scenario conforms, 1 on any violation, 2 on
// usage / configuration errors.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "net/metrics.hpp"
#include "scenario/fuzzer.hpp"
#include "scenario/registry.hpp"
#include "scenario/runner.hpp"

using namespace ule;

namespace {

void print_list(const ProtocolRegistry& protos, const FamilyRegistry& fams) {
  std::printf("protocols (%zu):\n", protos.all().size());
  for (const ProtocolInfo& p : protos.all()) {
    std::printf("  %-20s %-13s min-knowledge=%-4s safe-under=%-28s%s%s%s%s%s\n",
                p.name.c_str(), to_string(p.contract),
                to_string(p.min_knowledge),
                faults::to_string(p.safe_under).c_str(),
                p.live_under_async ? " live-async" : "",
                p.reliable_transport ? " reliable-transport" : "",
                p.wakeup_tolerant ? " wakeup-tolerant" : "",
                p.needs_complete ? " complete-only" : "",
                p.explicit_overlay ? " explicit-overlay" : "");
  }
  std::printf("families (%zu):\n", fams.all().size());
  for (const FamilyInfo& f : fams.all()) {
    std::printf("  %-12s", f.name.c_str());
    for (const ParamSpec& ps : f.params)
      std::printf(" %s∈[%llu,%llu]", ps.name.c_str(),
                  static_cast<unsigned long long>(ps.lo),
                  static_cast<unsigned long long>(ps.hi));
    std::printf("%s\n", f.complete ? "  (complete)" : "");
  }
}

int replay(const ProtocolRegistry& protos, const FamilyRegistry& fams,
           const std::string& token) {
  Scenario s;
  try {
    s = Scenario::parse(token);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "parse error: %s\n", e.what());
    std::fprintf(stderr, "(token grammar: docs/REPLAY.md)\n");
    return 2;
  }
  try {
    // Replays always carry the engine telemetry snapshot: the whole point of
    // replaying a token is to look inside the run, and metrics are a pure
    // function of it (docs/OBSERVABILITY.md).
    ScenarioRunConfig cfg;
    cfg.metrics.enabled = true;
    const ScenarioOutcome out = run_scenario(protos, fams, s, cfg);
    std::printf("scenario  %s\n", out.scenario.encode().c_str());
    std::printf("shape     n=%zu m=%zu D=%u%s\n", out.shape.n, out.shape.m,
                out.shape.diameter, out.shape.complete ? " complete" : "");
    const RunResult& r = out.report.run;
    std::printf("run       rounds=%llu executed=%llu messages=%llu bits=%llu "
                "completed=%d\n",
                static_cast<unsigned long long>(r.rounds),
                static_cast<unsigned long long>(r.executed_rounds),
                static_cast<unsigned long long>(r.messages),
                static_cast<unsigned long long>(r.bits), r.completed ? 1 : 0);
    std::printf("verdict   elected=%zu non_elected=%zu undecided=%zu%s\n",
                out.report.verdict.elected, out.report.verdict.non_elected,
                out.report.verdict.undecided,
                out.report.verdict.unique_leader ? "  (unique leader)" : "");
    // Livelock/starvation story: which nodes are stuck and when progress
    // stopped (non-empty when the run hit max_rounds or quiesced undecided).
    const std::string diag = describe_nontermination(r);
    if (!diag.empty()) std::printf("diagnosis %s\n", diag.c_str());
    if (r.metrics) std::fputs(metrics_json(*r.metrics).c_str(), stdout);
    if (out.ok()) {
      std::printf("CONFORMS\n");
      return 0;
    }
    std::printf("VIOLATIONS:\n");
    for (const std::string& v : out.violations)
      std::printf("  %s\n", v.c_str());
    return 1;
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "configuration error: %s\n", e.what());
    return 2;
  }
}

}  // namespace

int main(int argc, char** argv) {
  const ProtocolRegistry& protos = default_protocols();
  const FamilyRegistry& fams = default_families();

  FuzzConfig cfg;
  cfg.count = 3000;
  cfg.max_n = 96;
  bool stats = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--quick") {
      cfg.count = 1000;
      cfg.max_n = 48;
    } else if (arg == "--smoke") {
      cfg.count = 200;
      cfg.max_n = 40;
    } else if (arg == "--count") {
      cfg.count = std::strtoull(need_value("--count"), nullptr, 10);
    } else if (arg == "--max-n") {
      cfg.max_n = std::strtoull(need_value("--max-n"), nullptr, 10);
    } else if (arg == "--seed") {
      cfg.master_seed = std::strtoull(need_value("--seed"), nullptr, 10);
    } else if (arg == "--time-budget") {
      cfg.time_budget_sec = std::strtod(need_value("--time-budget"), nullptr);
    } else if (arg == "--adversary-fraction") {
      cfg.adversary_fraction =
          std::strtod(need_value("--adversary-fraction"), nullptr);
      if (cfg.adversary_fraction < 0 || cfg.adversary_fraction > 1) {
        std::fprintf(stderr, "--adversary-fraction must be in [0, 1]\n");
        return 2;
      }
    } else if (arg == "--protocol-filter") {
      cfg.protocol_filter = need_value("--protocol-filter");
    } else if (arg == "--threads-fraction") {
      cfg.threads_fraction =
          std::strtod(need_value("--threads-fraction"), nullptr);
      if (cfg.threads_fraction < 0 || cfg.threads_fraction > 1) {
        std::fprintf(stderr, "--threads-fraction must be in [0, 1]\n");
        return 2;
      }
    } else if (arg == "--churn-fraction") {
      cfg.churn_fraction = std::strtod(need_value("--churn-fraction"), nullptr);
      if (cfg.churn_fraction < 0 || cfg.churn_fraction > 1) {
        std::fprintf(stderr, "--churn-fraction must be in [0, 1]\n");
        return 2;
      }
    } else if (arg == "--no-shrink") {
      cfg.shrink = false;
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--list") {
      print_list(protos, fams);
      return 0;
    } else if (arg == "--replay") {
      return replay(protos, fams, need_value("--replay"));
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return 2;
    }
  }

  std::printf("fuzzing %zu scenarios (master seed %llu, max n ~%zu)...\n",
              cfg.count, static_cast<unsigned long long>(cfg.master_seed),
              cfg.max_n);
  const FuzzReport rep = run_fuzz(protos, fams, cfg, &std::cout);

  std::printf("\nran %zu scenarios: %zu elected a unique leader, "
              "%zu Monte-Carlo misses, %zu determinism cross-checks, "
              "%zu adversarial%s\n",
              rep.scenarios_run, rep.runs_elected, rep.monte_carlo_misses,
              rep.determinism_checked, rep.adversarial_runs,
              rep.time_budget_hit ? " (time budget hit)" : "");

  if (stats) {
    std::printf("\nenvelope headroom (max observed / registered bound):\n");
    std::printf("  %-20s %6s %14s %14s\n", "protocol", "runs", "rounds",
                "messages");
    for (const EnvelopeStat& s : rep.envelope_stats) {
      if (s.runs == 0) continue;
      std::printf("  %-20s %6zu %13.1f%% %13.1f%%\n", s.protocol.c_str(),
                  s.runs, 100.0 * s.max_round_ratio,
                  100.0 * s.max_message_ratio);
    }
  }

  if (rep.ok()) {
    std::printf("\nall scenarios conform\n");
    return 0;
  }
  std::printf("\n%zu FAILURES — minimal replay strings:\n",
              rep.failures.size());
  for (const FuzzFailure& f : rep.failures) {
    std::printf("  %s\n", f.minimal.encode().c_str());
    for (const std::string& v : f.minimal_violations)
      std::printf("    %s\n", v.c_str());
    // Re-run the minimal scenario with telemetry on and attach its snapshot:
    // the counters (adversary faults, ARQ retransmits/parks, dead links) are
    // usually the fastest route from a replay token to a root cause.
    try {
      ScenarioRunConfig mcfg;
      mcfg.check_determinism = false;
      mcfg.metrics.enabled = true;
      const ScenarioOutcome mo = run_scenario(protos, fams, f.minimal, mcfg);
      if (mo.report.run.metrics)
        std::fputs(metrics_json(*mo.report.run.metrics).c_str(), stdout);
    } catch (const std::invalid_argument&) {
      // A minimal token that no longer parses/configures is itself the bug
      // report; skip the snapshot rather than dying mid-listing.
    }
  }
  std::printf("reproduce with `fuzz_scenarios --replay <token>`; "
              "token grammar: docs/REPLAY.md\n");
  return 1;
}
