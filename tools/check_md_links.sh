#!/usr/bin/env bash
# Markdown link check: every relative link target in the given markdown files
# (and every .md file under the given directories) must exist on disk.
# External links (http/https/mailto) and pure #anchors are skipped; anchors on
# relative links are stripped before the existence check.
#
#   tools/check_md_links.sh README.md docs
#
# Exit status: 0 when every relative link resolves, 1 otherwise.
set -u

fail=0
files=()
for arg in "$@"; do
  if [ -d "$arg" ]; then
    while IFS= read -r f; do files+=("$f"); done \
      < <(find "$arg" -name '*.md' | sort)
  else
    files+=("$arg")
  fi
done

if [ "${#files[@]}" -eq 0 ]; then
  echo "usage: $0 <file.md | dir> ..." >&2
  exit 1
fi

for f in "${files[@]}"; do
  if [ ! -f "$f" ]; then
    echo "MISSING FILE: $f" >&2
    fail=1
    continue
  fi
  dir=$(dirname "$f")
  # Inline links: [text](target). Reference-style links are not used in this
  # repo. grep -o keeps one match per link even with several per line.
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*|'#'*) continue ;;
    esac
    path="${target%%#*}"
    [ -z "$path" ] && continue
    if [ ! -e "$dir/$path" ]; then
      echo "BROKEN LINK in $f: ($target)" >&2
      fail=1
    fi
  done < <(grep -o '](\([^)]*\))' "$f" | sed 's/^](//; s/)$//')
done

if [ "$fail" -eq 0 ]; then
  echo "all relative markdown links resolve (${#files[@]} files checked)"
fi
exit "$fail"
