// The election-as-a-service daemon binary (src/serve/server.hpp).
//
//   election_served                         serve on ephemeral loopback ports
//   election_served --port P --http-port H pin the frame / metrics ports
//   election_served --bind ADDR            bind address (default 127.0.0.1)
//   election_served --workers W            job-executing WorkerPool size
//   election_served --queue N              bounded job queue capacity
//   election_served --no-metrics           skip per-job engine telemetry
//   election_served --port-file FILE       write "FRAME_PORT HTTP_PORT\n"
//                                          once listening (CI discovers the
//                                          ephemeral ports from this)
//
// The daemon serves until SIGTERM/SIGINT, then DRAINS: accepted jobs finish
// on the WorkerPool, results flush to their sessions, and only then does the
// process exit 0.  SIGPIPE is ignored; a dead client costs one session,
// never the daemon.  Frame grammar and endpoint schemas: docs/SERVER.md.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "serve/server.hpp"

using namespace ule;

int main(int argc, char** argv) {
  serve::ServeConfig cfg;
  std::string port_file;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--port") {
      cfg.port = static_cast<std::uint16_t>(
          std::strtoul(need_value("--port"), nullptr, 10));
    } else if (arg == "--http-port") {
      cfg.http_port = static_cast<std::uint16_t>(
          std::strtoul(need_value("--http-port"), nullptr, 10));
    } else if (arg == "--bind") {
      cfg.bind = need_value("--bind");
    } else if (arg == "--workers") {
      cfg.workers = static_cast<unsigned>(
          std::strtoul(need_value("--workers"), nullptr, 10));
    } else if (arg == "--queue") {
      cfg.queue_capacity = std::strtoull(need_value("--queue"), nullptr, 10);
    } else if (arg == "--no-metrics") {
      cfg.metrics = false;
    } else if (arg == "--port-file") {
      port_file = need_value("--port-file");
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return 2;
    }
  }

  serve::ElectionServer server(cfg);
  try {
    server.start();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "election_served: %s\n", e.what());
    return 1;
  }
  server.install_signal_handlers();

  std::printf("election_served: frames on %s:%u, /metrics + /health on "
              "%s:%u (workers %u, queue %zu)\n",
              cfg.bind.c_str(), server.port(), cfg.bind.c_str(),
              server.http_port(), cfg.workers, cfg.queue_capacity);
  std::fflush(stdout);
  if (!port_file.empty()) {
    std::FILE* f = std::fopen(port_file.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", port_file.c_str());
      return 1;
    }
    std::fprintf(f, "%u %u\n", server.port(), server.http_port());
    std::fclose(f);
  }

  server.wait();  // returns after the SIGTERM/SIGINT drain completes
  const serve::ServeStats st = server.stats();
  std::printf("election_served: drained — %llu accepted, %llu completed, "
              "%llu rejected, %llu errors\n",
              static_cast<unsigned long long>(st.accepted),
              static_cast<unsigned long long>(st.completed),
              static_cast<unsigned long long>(st.rejected),
              static_cast<unsigned long long>(st.errors));
  return 0;
}
