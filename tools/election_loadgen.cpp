// Load generator + determinism checker for the election daemon.
//
// Spins up S concurrent sessions (one ServeClient + thread each), each
// submitting registry-drawn scenarios (scenario/fuzzer.hpp's draw_scenario,
// so adversary / churn / reliable tokens are in the mix) and waiting for the
// streamed result.  Every JobResult is diffed counter-for-counter against a
// local in-process run_scenario of the same token — the daemon must be
// bit-for-bit a remote run_election.  Any mismatch is printed and fails the
// run.
//
//   election_loadgen --port P [--http-port H]   target an external daemon
//   election_loadgen                            self-host an in-process server
//   election_loadgen --quick                    8 sessions x 125 jobs (CI)
//   election_loadgen --sessions S --jobs J      explicit load shape
//   election_loadgen --seed N                   master draw seed
//   election_loadgen --no-check                 skip the local replay diff
//   election_loadgen --json FILE                report path (BENCH_serve.json)
//
// Writes sustained jobs/sec and p50/p95/p99 submit->result latency to
// BENCH_serve.json (bench::JsonReport convention; see ROADMAP.md).  Exits
// nonzero on any counter mismatch, job error, or transport failure.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "net/rng.hpp"
#include "scenario/fuzzer.hpp"
#include "scenario/registry.hpp"
#include "scenario/runner.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

using namespace ule;

namespace {

struct SessionResult {
  std::size_t jobs_done = 0;
  std::size_t mismatches = 0;
  std::size_t errors = 0;
  std::vector<double> latencies_ms;
  std::string first_failure;  // one diagnostic is enough to act on
};

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

std::string diff_counters(const serve::ResultCounters& remote,
                          const serve::ResultCounters& local) {
  if (remote.size() != local.size())
    return "counter count " + std::to_string(remote.size()) + " vs local " +
           std::to_string(local.size());
  for (std::size_t i = 0; i < remote.size(); ++i) {
    if (remote[i].first != local[i].first)
      return "counter #" + std::to_string(i) + " named \"" +
             remote[i].first + "\" vs local \"" + local[i].first + "\"";
    if (remote[i].second != local[i].second)
      return remote[i].first + "=" + std::to_string(remote[i].second) +
             " vs local " + std::to_string(local[i].second);
  }
  return "";
}

void run_session(const std::string& host, std::uint16_t port,
                 std::uint64_t session_seed, std::size_t jobs, bool check,
                 const ProtocolRegistry& protocols,
                 const FamilyRegistry& families, SessionResult& out) {
  Rng rng(session_seed);
  serve::ServeClient client;
  try {
    client.connect(host, port);
  } catch (const std::exception& e) {
    out.errors = jobs;
    out.first_failure = e.what();
    return;
  }
  // Keep engine threads at 1: the determinism axis is the soak test's job;
  // here the daemon itself is the system under load.
  constexpr double kThreadsFraction = 0.0;
  constexpr double kAdversaryFraction = 0.35;
  constexpr double kChurnFraction = 0.35;
  for (std::size_t j = 0; j < jobs; ++j) {
    const Scenario s =
        draw_scenario(rng, protocols, families, /*max_n=*/24, kThreadsFraction,
                      kAdversaryFraction, "", kChurnFraction);
    const std::string token = s.encode();
    try {
      bench::WallTimer timer;
      const auto sub = client.submit_token(token, /*tag=*/j);
      if (!sub.accepted) {
        // Backpressure: the daemon said "come back later".  Count it and
        // retry the same token once the queue has drained a little.
        --j;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        continue;
      }
      const auto reply = client.await_result(sub.job_id);
      const double ms = timer.elapsed_ms();
      if (!reply.ok) {
        ++out.errors;
        if (out.first_failure.empty())
          out.first_failure = token + ": JobError: " + reply.error;
        continue;
      }
      out.latencies_ms.push_back(ms);
      ++out.jobs_done;
      if (check) {
        ScenarioRunConfig rc;
        rc.check_determinism = false;
        const ScenarioOutcome local =
            run_scenario(protocols, families, s, rc);
        const std::string diff = diff_counters(
            reply.counters, serve::result_counters(local.report));
        if (!diff.empty() || reply.violations != local.violations.size()) {
          ++out.mismatches;
          if (out.first_failure.empty())
            out.first_failure =
                token + ": " +
                (diff.empty() ? "violations " +
                                    std::to_string(reply.violations) +
                                    " vs local " +
                                    std::to_string(local.violations.size())
                              : diff);
        }
      }
    } catch (const std::exception& e) {
      ++out.errors;
      if (out.first_failure.empty())
        out.first_failure = token + ": " + e.what();
      return;  // the session socket is gone; no point continuing
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::uint16_t http_port = 0;
  std::size_t sessions = 8;
  std::size_t jobs_per_session = 125;
  std::uint64_t seed = 0x10ADULL;
  bool check = true;
  std::string json_path = "BENCH_serve.json";

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--quick") {
      sessions = 8;
      jobs_per_session = 125;
    } else if (arg == "--host") {
      host = need_value("--host");
    } else if (arg == "--port") {
      port = static_cast<std::uint16_t>(
          std::strtoul(need_value("--port"), nullptr, 10));
    } else if (arg == "--http-port") {
      http_port = static_cast<std::uint16_t>(
          std::strtoul(need_value("--http-port"), nullptr, 10));
    } else if (arg == "--sessions") {
      sessions = std::strtoull(need_value("--sessions"), nullptr, 10);
    } else if (arg == "--jobs") {
      jobs_per_session = std::strtoull(need_value("--jobs"), nullptr, 10);
    } else if (arg == "--seed") {
      seed = std::strtoull(need_value("--seed"), nullptr, 10);
    } else if (arg == "--no-check") {
      check = false;
    } else if (arg == "--json") {
      json_path = need_value("--json");
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return 2;
    }
  }
  if (sessions == 0 || jobs_per_session == 0) {
    std::fprintf(stderr, "--sessions and --jobs must be positive\n");
    return 2;
  }

  // Self-host when no --port was given: the loadgen then measures the daemon
  // code in-process (same sockets, same IO loop) without orchestration.
  std::unique_ptr<serve::ElectionServer> self_hosted;
  if (port == 0) {
    serve::ServeConfig cfg;
    cfg.workers = std::max(2u, std::thread::hardware_concurrency() / 2);
    self_hosted = std::make_unique<serve::ElectionServer>(cfg);
    self_hosted->start();
    port = self_hosted->port();
    http_port = self_hosted->http_port();
    std::printf("self-hosted daemon on 127.0.0.1:%u (workers %u)\n", port,
                cfg.workers);
  }

  const ProtocolRegistry& protocols = default_protocols();
  const FamilyRegistry& families = default_families();

  std::printf("loadgen: %zu sessions x %zu jobs against %s:%u%s\n", sessions,
              jobs_per_session, host.c_str(), port,
              check ? " (with local replay diff)" : "");

  std::vector<SessionResult> results(sessions);
  std::vector<std::thread> threads;
  threads.reserve(sessions);
  bench::WallTimer wall;
  for (std::size_t i = 0; i < sessions; ++i) {
    threads.emplace_back([&, i] {
      run_session(host, port, seed + 0x9E3779B9ULL * (i + 1), jobs_per_session,
                  check, protocols, families, results[i]);
    });
  }
  for (auto& t : threads) t.join();
  const double wall_ms = wall.elapsed_ms();

  std::size_t done = 0, mismatches = 0, errors = 0;
  std::vector<double> latencies;
  for (const auto& r : results) {
    done += r.jobs_done;
    mismatches += r.mismatches;
    errors += r.errors;
    latencies.insert(latencies.end(), r.latencies_ms.begin(),
                     r.latencies_ms.end());
    if (!r.first_failure.empty())
      std::fprintf(stderr, "FAIL: %s\n", r.first_failure.c_str());
  }
  std::sort(latencies.begin(), latencies.end());
  const double p50 = percentile(latencies, 0.50);
  const double p95 = percentile(latencies, 0.95);
  const double p99 = percentile(latencies, 0.99);
  const double jobs_per_sec =
      wall_ms > 0 ? static_cast<double>(done) / (wall_ms / 1000.0) : 0;

  std::printf("%zu jobs done in %.1f ms: %.1f jobs/sec, latency p50 %.2f ms, "
              "p95 %.2f ms, p99 %.2f ms\n",
              done, wall_ms, jobs_per_sec, p50, p95, p99);
  std::printf("mismatches %zu, errors %zu\n", mismatches, errors);

  // Health + metrics probe when we know the HTTP port: the smoke should fail
  // here, not in a separate curl step, if the endpoints regress.
  if (http_port != 0) {
    std::string body;
    const int health = serve::http_get(host, http_port, "/health", &body);
    std::printf("/health -> %d %s\n", health, body.c_str());
    if (health != 200) ++errors;
  }

  bench::JsonReport report("serve_loadgen");
  report.add_row()
      .set("sessions", static_cast<std::uint64_t>(sessions))
      .set("jobs_per_session", static_cast<std::uint64_t>(jobs_per_session))
      .set("jobs_done", static_cast<std::uint64_t>(done))
      .set("wall_ms", wall_ms)
      .set("jobs_per_sec", jobs_per_sec)
      .set("latency_p50_ms", p50)
      .set("latency_p95_ms", p95)
      .set("latency_p99_ms", p99)
      .set("replay_checked", check)
      .set("mismatches", static_cast<std::uint64_t>(mismatches))
      .set("errors", static_cast<std::uint64_t>(errors));
  report.write(json_path);
  std::printf("wrote %s\n", json_path.c_str());

  if (self_hosted) {
    self_hosted->request_shutdown();
    self_hosted->wait();
  }
  return (mismatches == 0 && errors == 0 && done == sessions * jobs_per_session)
             ? 0
             : 1;
}
