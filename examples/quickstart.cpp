// Quickstart: elect a leader on a random network in a dozen lines.
//
// Builds a random connected graph, runs the least-element-list election of
// Theorem 4.4 variant (A) — O(D) rounds, O(m log log n) expected messages,
// success with high probability — and prints what happened.
//
//   $ ./quickstart [n] [m] [seed]
//   $ ./quickstart trace          # tiny run + round-by-round event trace

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "election/least_el.hpp"
#include "graphgen/generators.hpp"
#include "graphgen/graph_algos.hpp"
#include "net/engine.hpp"

namespace {

// The engine can narrate a run (EngineConfig::trace_limit): wakes, every
// message with its payload, and status changes, grouped by round.
int traced_demo() {
  using namespace ule;
  const ule::Graph g = make_cycle(5);
  EngineConfig cfg;
  cfg.seed = 7;
  cfg.trace_limit = 10'000;
  SyncEngine eng(g, cfg);
  Rng id_rng(3);
  eng.set_uids(assign_ids(g.n(), IdScheme::RandomPermutation, id_rng));
  eng.set_knowledge(Knowledge::of_n(g.n()));
  eng.init_processes(make_least_el(LeastElConfig::all_candidates()));
  eng.run();
  std::printf("least-element election on cycle(5), narrated:\n%s",
              format_trace(eng).c_str());
  return 0;
}

}  // namespace

using namespace ule;

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "trace") == 0) return traced_demo();
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 64;
  const std::size_t m = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 4 * n;
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1;

  // 1. A network: any connected Graph works; generators cover the classics.
  Rng graph_rng(42);
  const Graph g = make_random_connected(n, m, graph_rng);
  const std::uint64_t diameter = diameter_exact(g);

  // 2. An algorithm: Theorem 4.4 (A) samples ~log n candidates (needs n).
  const auto algorithm = make_least_el(LeastElConfig::variant_A(n));

  // 3. Run options: who knows what, ID assignment, the run seed.
  RunOptions opt;
  opt.seed = seed;
  opt.ids = IdScheme::RandomFromZ;  // adversarial IDs from [1, n^4]
  opt.knowledge = Knowledge::of_n(n);

  // 4. Go.
  const ElectionReport rep = run_election(g, algorithm, opt);

  std::printf("network    : %s, diameter %llu\n", g.summary().c_str(),
              static_cast<unsigned long long>(diameter));
  std::printf("algorithm  : least-element lists, f(n) = log2 n "
              "(Theorem 4.4.A)\n");
  if (rep.verdict.unique_leader) {
    std::printf("result     : node %u elected (id %llu); %zu non-elected\n",
                rep.verdict.leader_slot,
                static_cast<unsigned long long>(
                    rep.uids[rep.verdict.leader_slot]),
                rep.verdict.non_elected);
  } else {
    std::printf("result     : FAILED (%zu elected, %zu undecided) — "
                "possible but exponentially unlikely\n",
                rep.verdict.elected, rep.verdict.undecided);
  }
  std::printf("cost       : %llu rounds (%.2f x D), %llu messages "
              "(%.2f x m)\n",
              static_cast<unsigned long long>(rep.run.rounds),
              static_cast<double>(rep.run.rounds) /
                  static_cast<double>(diameter),
              static_cast<unsigned long long>(rep.run.messages),
              static_cast<double>(rep.run.messages) /
                  static_cast<double>(g.m()));
  std::printf("congestion : %llu CONGEST violations (0 = every round sent "
              "<= 1 message per edge direction)\n",
              static_cast<unsigned long long>(rep.run.congest_violations));
  return rep.verdict.unique_leader ? 0 : 1;
}
