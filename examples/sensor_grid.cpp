// Sensor-field energy budget: the paper's motivating scenario.
//
// "Minimizing messages and time for basic tasks such as leader election can
// help in minimizing energy consumption in ad hoc and sensor networks."
// (Section 1.)  A sensor's radio dominates its energy budget, so messages
// sent is the energy currency.  This example deploys every algorithm in the
// library on the same simulated sensor field (a torus: a grid of radio
// ranges with wraparound) and prints the energy/latency trade-off next to
// the paper's predictions — Table 1, measured on one concrete network.
//
//   $ ./sensor_grid [rows] [cols] [seed]

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "election/clustering.hpp"
#include "election/dfs_election.hpp"
#include "election/explicit_elect.hpp"
#include "election/flood_max.hpp"
#include "election/kingdom.hpp"
#include "election/least_el.hpp"
#include "election/size_estimate.hpp"
#include "graphgen/generators.hpp"
#include "graphgen/graph_algos.hpp"
#include "spanner/spanner_elect.hpp"

using namespace ule;

namespace {

struct Contender {
  std::string name;
  std::string paper_claim;
  ProcessFactory factory;
  Knowledge knowledge;
  Round max_rounds = 5'000'000;
  // Theorem 4.1's agents step every 2^ID rounds, so its *simulated* time is
  // astronomical unless IDs are small — the paper's "arbitrary finite time
  // (which depends exponentially on the size of the smallest ID)" taken
  // literally.  Give it a permutation of 1..n; everyone else gets
  // adversarial IDs from [1, n^4].
  IdScheme ids = IdScheme::RandomFromZ;
};

void print_row(const Contender& c, const ElectionReport& rep, double m,
               double d) {
  std::printf("%-28s | %8llu %7.1f | %9llu %7.1f | %-4s | %s\n",
              c.name.c_str(),
              static_cast<unsigned long long>(rep.run.rounds),
              static_cast<double>(rep.run.rounds) / d,
              static_cast<unsigned long long>(rep.run.messages),
              static_cast<double>(rep.run.messages) / m,
              rep.verdict.unique_leader ? "yes" : "NO",
              c.paper_claim.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t rows = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 12;
  const std::size_t cols = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 12;
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 7;

  const Graph g = make_torus(rows, cols);
  const auto n = g.n();
  const auto m = static_cast<double>(g.m());
  const auto diameter = diameter_exact(g);
  const auto d = static_cast<double>(diameter);

  std::printf("sensor field: %zux%zu torus — %s, diameter %llu\n\n", rows,
              cols, g.summary().c_str(),
              static_cast<unsigned long long>(diameter));

  const Knowledge none = Knowledge::none();
  const Knowledge kn = Knowledge::of_n(n);
  const Knowledge knd = Knowledge::of_n_d(n, diameter);

  std::vector<Contender> contenders;
  contenders.push_back({"flood-max [20] baseline", "O(D) / O(mD)",
                        make_flood_max(), none});
  contenders.push_back({"DFS agents (Thm 4.1)", "arbitrary / O(m)",
                        make_dfs_election(), none, Round{1} << 62,
                        IdScheme::RandomPermutation});
  contenders.push_back({"least-el f=n [11]", "O(D) / O(m log n)",
                        make_least_el(LeastElConfig::all_candidates()), none});
  contenders.push_back({"least-el f=log n (4.4.A)", "O(D) / O(m loglog n)",
                        make_least_el(LeastElConfig::variant_A(n)), kn});
  contenders.push_back({"least-el f=4ln20 (4.4.B)", "O(D) / O(m), p>=.95",
                        make_least_el(LeastElConfig::variant_B(0.05)), kn});
  contenders.push_back({"size-estimate (Cor 4.5)", "O(D) / O(m log n), p=1",
                        make_size_estimate_elect(), none});
  contenders.push_back({"las vegas (Cor 4.6)", "exp O(D) / exp O(m), p=1",
                        make_least_el(LeastElConfig::las_vegas(diameter)),
                        knd});
  contenders.push_back({"spanner k=3 (Cor 4.2)", "O(D) / O(m) if dense",
                        make_spanner_elect({3, 0}), kn});
  contenders.push_back({"clustering (Thm 4.7)", "O(D log n) / O(m+n log n)",
                        make_clustering(), kn});
  contenders.push_back({"kingdoms (Thm 4.10)", "O(D log n) / O(m log n)",
                        make_kingdom(), none});
  contenders.push_back({"kingdoms, D known", "O(D log n) / O(m log n)",
                        make_kingdom(KingdomConfig{diameter}), knd});
  contenders.push_back({"explicit flood-max", "+O(D) / +(2m-n+1)",
                        make_explicit(make_flood_max()), none});

  std::printf("%-28s | %8s %7s | %9s %7s | %-4s | paper bound "
              "(time / messages)\n",
              "algorithm", "rounds", "/D", "messages", "/m", "ok");
  std::printf("%s\n", std::string(110, '-').c_str());

  for (const Contender& c : contenders) {
    RunOptions opt;
    opt.seed = seed;
    opt.ids = c.ids;
    opt.knowledge = c.knowledge;
    opt.max_rounds = c.max_rounds;
    const auto rep = run_election(g, c.factory, opt);
    print_row(c, rep, m, d);
  }

  std::printf("\nReading the table: '/m' is the energy a sensor fleet pays "
              "per radio link;\n'/D' is the latency in network sweeps.  The "
              "O(m)-message algorithms (DFS,\nvariant B) are the energy "
              "optimum the Omega(m) lower bound (Theorem 3.1)\nproves "
              "unbeatable; flood-max pays ~D x more energy for optimal "
              "latency;\nthe kingdoms/clustering rows sit in between "
              "(log-factor overheads).\n");
  return 0;
}
