// Anonymous networks: leader election without identities.
//
// Deterministic leader election is IMPOSSIBLE in anonymous networks (the
// classic symmetry argument: on a ring, identical nodes in identical states
// stay identical forever).  The paper's randomized algorithms sidestep this:
// candidacy and ranks come from private coins, so "the randomized algorithms
// in this paper also apply for anonymous networks" (Section 2).
//
// This example runs the least-element election on an anonymous ring and
// demonstrates:
//   1. the deterministic algorithms refuse to run (they require IDs);
//   2. the randomized one elects exactly one leader almost always;
//   3. the failure mode is a full (rank, tiebreak) collision, whose
//      probability is controlled by the rank-domain size — the ablation
//      the paper's n^4 ID-space assumption is about.
//
//   $ ./anonymous_ring [n] [trials]

#include <cstdio>
#include <cstdlib>
#include <exception>

#include "election/flood_max.hpp"
#include "election/kingdom.hpp"
#include "election/least_el.hpp"
#include "graphgen/generators.hpp"

using namespace ule;

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 32;
  const std::size_t trials =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 400;
  const Graph g = make_cycle(n);

  std::printf("anonymous ring, n = %zu\n\n", n);

  // --- 1. Deterministic algorithms need IDs and say so loudly. -----------
  for (const auto& [name, factory] :
       {std::pair<const char*, ProcessFactory>{"flood-max", make_flood_max()},
        {"growing kingdoms", make_kingdom()}}) {
    RunOptions opt;
    opt.anonymous = true;
    try {
      run_election(g, factory, opt);
      std::printf("%-18s: BUG — ran without IDs\n", name);
    } catch (const std::exception& e) {
      std::printf("%-18s: refused, \"%s\"\n", name, e.what());
    }
  }

  // --- 2. Randomized election with private coins only. -------------------
  // Tiebreak::Random replaces the unique-ID tiebreak with 64 private random
  // bits; rank_space = n^4 mirrors the paper's ID-space assumption.
  std::printf("\nleast-element election, ranks from [1, n^4], random "
              "tiebreak:\n");
  std::size_t wins = 0;
  for (std::uint64_t seed = 1; seed <= trials; ++seed) {
    LeastElConfig cfg = LeastElConfig::all_candidates();
    cfg.tiebreak = LeastElConfig::Tiebreak::Random;
    RunOptions opt;
    opt.anonymous = true;
    opt.seed = seed;
    wins += run_election(g, make_least_el(cfg), opt).verdict.unique_leader;
  }
  std::printf("  %zu/%zu trials elected exactly one leader (%.1f%%)\n", wins,
              trials, 100.0 * static_cast<double>(wins) /
                          static_cast<double>(trials));

  // --- 3. Shrink the rank domain until collisions actually bite. ---------
  std::printf("\ncollision ablation (no tiebreak, rank domain shrinking):\n");
  std::printf("  %-12s %-10s %s\n", "rank space", "success", "collisions hurt?");
  for (const std::uint64_t space :
       {std::uint64_t{1} << 40, std::uint64_t{1024}, std::uint64_t{64},
        std::uint64_t{8}}) {
    std::size_t ok = 0;
    for (std::uint64_t seed = 1; seed <= trials; ++seed) {
      LeastElConfig cfg = LeastElConfig::all_candidates();
      cfg.tiebreak = LeastElConfig::Tiebreak::None;
      cfg.rank_space = space;
      RunOptions opt;
      opt.anonymous = true;
      opt.seed = seed ^ 0xABCDEF;
      ok += run_election(g, make_least_el(cfg), opt).verdict.unique_leader;
    }
    std::printf("  %-12llu %6.1f%%    %s\n",
                static_cast<unsigned long long>(space),
                100.0 * static_cast<double>(ok) / static_cast<double>(trials),
                space >= (std::uint64_t{1} << 20)
                    ? "no (birthday bound negligible)"
                    : "yes (two minima share the rank)");
  }
  std::printf("\nThe paper draws IDs from a set of size n^4 so that random "
              "ranks collide\nwith probability <= 1/n^2 — the first row.  "
              "The last row is what happens\nwhen that assumption is "
              "dropped.\n");
  return 0;
}
