// Token ring: leader election's original application (Le Lann 1977).
//
// The implicit leader election the paper studies was first motivated by
// token generation in token-ring networks: when the token is lost, the ring
// must regenerate exactly one — i.e. elect a leader, who then injects a new
// token.  This example builds that protocol *on the library's public
// substrate*: the PIF wave pool (the paper's echo mechanism) carries the
// election, then the winner injects a token that makes `laps` rounds of the
// ring, then a STOP wave shuts every station down.
//
// It also demonstrates writing a custom Process against the engine API —
// everything here uses only public headers.
//
//   $ ./token_ring [n] [laps]

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "election/channels.hpp"
#include "election/pif.hpp"
#include "graphgen/generators.hpp"
#include "net/engine.hpp"
#include "net/ids.hpp"

using namespace ule;

namespace {

struct TokenMsg final : Message {
  bool stop = false;      ///< false: the circulating token; true: shutdown
  std::uint32_t lap = 0;  ///< completed laps (token only)
  std::uint32_t size_bits() const override {
    return wire::kTypeTag + wire::kCounter + wire::kFlag;
  }
  std::string debug_string() const override {
    return stop ? "stop" : "token(lap " + std::to_string(lap) + ")";
  }
};

/// A token-ring station: elects via flood-max waves, then passes the token.
class StationProcess final : public Process {
 public:
  explicit StationProcess(std::uint32_t laps) : laps_(laps) {
    pool_.pace_through(&outbox_);
  }

  std::uint32_t tokens_seen() const { return tokens_seen_; }

  void on_wake(Context& ctx, std::span<const Envelope> inbox) override {
    (void)pool_.originate(ctx, WaveKey{ctx.uid(), ctx.uid()});  // deg 2
    on_round(ctx, inbox);
  }

  void on_round(Context& ctx, std::span<const Envelope> inbox) override {
    // --- token phase ----------------------------------------------------
    for (const auto& env : inbox) {
      if (const auto* tok = dynamic_cast<const TokenMsg*>(env.msg.get())) {
        if (tok->stop) {
          if (!stopped_) {
            stopped_ = true;
            ctx.send(other_port(env.port), env.msg);  // pass it on, then out
          }
          ctx.halt();
          return;
        }
        ++tokens_seen_;
        auto fwd = std::make_shared<TokenMsg>();
        if (leader_) {
          // The token is home: one lap done.
          if (tok->lap + 1 == laps_) {
            fwd->stop = true;
            ctx.send(other_port(env.port), fwd);
            stopped_ = true;
            continue;  // wait for the STOP to come around, then halt
          }
          fwd->lap = tok->lap + 1;
        } else {
          fwd->lap = tok->lap;
        }
        ctx.send(other_port(env.port), fwd);
      }
    }

    // --- election phase (flood-max over the wave substrate) --------------
    const WavePool::Events ev = pool_.on_round(ctx, inbox);
    if (!decided_) {
      if (!pool_.own_is_best()) {
        ctx.set_status(Status::NonElected);
        decided_ = true;
      } else if (ev.own_complete) {
        ctx.set_status(Status::Elected);
        decided_ = true;
        leader_ = true;
        auto tok = std::make_shared<TokenMsg>();  // inject the new token
        ctx.send(0, tok);
      }
    }
    if (outbox_.flush(ctx)) return;
    ctx.idle();
  }

 private:
  PortId other_port(PortId p) const { return p == 0 ? 1 : 0; }

  std::uint32_t laps_;
  PortOutbox outbox_;
  WavePool pool_{channel::kFloodMax, /*max_wins=*/true};
  bool decided_ = false;
  bool leader_ = false;
  bool stopped_ = false;
  std::uint32_t tokens_seen_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 16;
  const std::uint32_t laps =
      argc > 2 ? static_cast<std::uint32_t>(std::strtoul(argv[2], nullptr, 10))
               : 3;
  if (n < 3) {
    std::fprintf(stderr, "need a ring of at least 3 stations\n");
    return 2;
  }

  const Graph ring = make_cycle(n);
  EngineConfig cfg;
  cfg.seed = 2026;
  cfg.congest = CongestMode::Count;
  SyncEngine eng(ring, cfg);
  Rng id_rng(99);
  eng.set_uids(assign_ids(n, IdScheme::RandomFromZ, id_rng));
  eng.init_processes(
      [laps](NodeId) { return std::make_unique<StationProcess>(laps); });

  const RunResult res = eng.run();

  NodeId leader = kNoNode;
  std::uint64_t passes = 0;
  for (NodeId s = 0; s < ring.n(); ++s) {
    if (eng.status(s) == Status::Elected) leader = s;
    const auto* st = dynamic_cast<const StationProcess*>(eng.process(s));
    passes += st->tokens_seen();
  }

  std::printf("ring of %zu stations, %u laps requested\n", n, laps);
  std::printf("leader      : station %u (id %llu) — the max id, as "
              "flood-max guarantees\n",
              leader, static_cast<unsigned long long>(eng.uid_of(leader)));
  std::printf("token passes: %llu (expected %zu per lap x %u laps = %zu)\n",
              static_cast<unsigned long long>(passes), n, laps,
              n * static_cast<std::size_t>(laps));
  std::printf("total cost  : %llu rounds, %llu messages "
              "(election %s + token %zu + stop %zu)\n",
              static_cast<unsigned long long>(res.rounds),
              static_cast<unsigned long long>(res.messages),
              "O(n log n)", n * static_cast<std::size_t>(laps), n);
  std::printf("clean finish: %s (every station halted)\n",
              res.completed ? "yes" : "NO");
  return res.completed && leader != kNoNode ? 0 : 1;
}
