// Scenario-level contract of the *_reliable registry variants: every variant
// conforms under the full delivery fault mask (delay + drop + dup + reorder)
// with bit-for-bit identical counters at threads {1, 2, 4}, the r= replay
// token tail round-trips and is rejected off reliable transports, and the
// adversary boundary cases behave — a total partition (drop = 1.0) quiesces
// with a clean non-termination diagnosis, a crash at round 0 kills a node
// before its first step without confusing the survivors, and bounded delay
// composes with random wakeup schedules.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/engine.hpp"
#include "scenario/registry.hpp"
#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"

namespace ule {
namespace {

/// The full delivery fault mask at rough strengths (no crashes: those are
/// exercised separately — a dead node is outside any liveness promise).
ScenarioAdversary full_mask() {
  ScenarioAdversary a;
  a.max_delay = 2;
  a.drop_pm = 150;
  a.dup_pm = 150;
  a.reorder_pm = 300;
  a.seed = 0xF0LL;
  return a;
}

TEST(ReliableScenario, EveryVariantConformsUnderFullMaskAcrossThreads) {
  const ProtocolRegistry& protos = default_protocols();
  const FamilyRegistry& fams = default_families();
  std::size_t variants = 0;
  for (const ProtocolInfo& proto : protos.all()) {
    if (!proto.reliable_transport) continue;
    ++variants;
    EXPECT_EQ(proto.safe_under, faults::kAll) << proto.name;
    EXPECT_TRUE(proto.live_under_async) << proto.name;

    Scenario s;
    s.family = proto.needs_complete ? "complete" : "ring";
    s.params = {{"n", proto.needs_complete ? 8 : 9}};
    s.protocol = proto.name;
    s.knowledge = proto.min_knowledge;
    s.seed = 4242;
    s.adversary = full_mask();

    RunResult base;
    for (const unsigned t : {1u, 2u, 4u}) {
      s.threads = t;
      const ScenarioOutcome out = run_scenario(protos, fams, s);
      EXPECT_TRUE(out.ok()) << proto.name << " t=" << t << " on "
                            << s.encode() << ": " << out.violations[0];
      EXPECT_LE(out.report.verdict.elected, 1u) << s.encode();
      const RunResult& r = out.report.run;
      if (t == 1) {
        base = r;
        continue;
      }
      // Bit-for-bit: retransmit deadlines, adversary coins and wrapper state
      // are all pure functions of (round, seq, config) — worker interleaving
      // must never show through.
      EXPECT_EQ(r.rounds, base.rounds) << proto.name << " t=" << t;
      EXPECT_EQ(r.executed_rounds, base.executed_rounds)
          << proto.name << " t=" << t;
      EXPECT_EQ(r.node_steps, base.node_steps) << proto.name << " t=" << t;
      EXPECT_EQ(r.messages, base.messages) << proto.name << " t=" << t;
      EXPECT_EQ(r.bits, base.bits) << proto.name << " t=" << t;
      EXPECT_EQ(r.last_progress, base.last_progress)
          << proto.name << " t=" << t;
    }
  }
  // The registry actually carries the reliable fleet.
  EXPECT_GE(variants, 6u);
}

TEST(ReliableScenario, ReplayTokenTailRoundTrips) {
  Scenario s;
  s.family = "ring";
  s.params = {{"n", 8}};
  s.protocol = "flood_max_reliable";
  s.knowledge = KnowledgeGrant::None;
  s.seed = 7;
  s.threads = 1;
  s.adversary.drop_pm = 200;
  s.adversary.seed = 99;
  s.reliable.rto = 5;
  s.reliable.cap = 20;
  const std::string token = s.encode();
  EXPECT_NE(token.find(":r=5.20"), std::string::npos) << token;
  EXPECT_EQ(Scenario::parse(token), s);
}

TEST(ReliableScenario, ReliableTailIsRejectedOffReliableTransports) {
  // r= on a protocol without the wrapper is a config error, not a silent
  // no-op — a replay token must never mean less than it says.
  Scenario s;
  s.family = "ring";
  s.params = {{"n", 8}};
  s.protocol = "flood_max";
  s.knowledge = KnowledgeGrant::None;
  s.seed = 7;
  s.threads = 1;
  s.reliable.rto = 5;
  EXPECT_THROW(run_scenario(default_protocols(), default_families(), s),
               std::invalid_argument);
}

TEST(ReliableScenario, TotalPartitionQuiescesWithDiagnosis) {
  // drop = 1.0: nothing is ever delivered.  The wrapper's give-up bound must
  // bring the run to quiescence (completed, undecided survivors) and the
  // non-termination story must name the stall — no livelock, no silence.
  Scenario s;
  s.family = "ring";
  s.params = {{"n", 6}};
  s.protocol = "flood_max_reliable";
  s.knowledge = KnowledgeGrant::None;
  s.seed = 11;
  s.threads = 1;
  s.adversary.drop_pm = 1000;
  s.adversary.seed = 5;
  s.reliable.rto = 2;
  s.reliable.cap = 2;  // tight ladder: give-up in ~2*max_retries rounds

  const ScenarioOutcome out =
      run_scenario(default_protocols(), default_families(), s);
  // Liveness is out of scope at drop = 1.0 (the runner only promises it up
  // to the calibrated 600‰); safety and clean quiescence still hold.
  EXPECT_TRUE(out.ok()) << out.violations[0];
  EXPECT_TRUE(out.report.run.completed);
  EXPECT_EQ(out.report.verdict.elected, 0u);
  EXPECT_EQ(out.report.verdict.undecided, 6u);
  const std::string diag = describe_nontermination(out.report.run);
  EXPECT_NE(diag.find("quiesced undecided"), std::string::npos) << diag;
  EXPECT_NE(diag.find("last progress"), std::string::npos) << diag;
}

TEST(ReliableScenario, CrashAtRoundZeroPreWakeup) {
  // A node crashed at the start of round 0 never takes a step — not even its
  // wakeup.  Survivors keep retransmitting into the corpse until give-up and
  // must then quiesce cleanly: safety intact, the crash reported, and the
  // stall narrated (a dead node is outside every liveness promise — its
  // neighbors' echo accounting can legally never close).
  Scenario s;
  s.family = "ring";
  s.params = {{"n", 7}};
  s.protocol = "flood_max_reliable";
  s.knowledge = KnowledgeGrant::None;
  s.seed = 13;
  s.threads = 1;
  s.adversary.crashes = {{2, 0}};
  s.reliable.rto = 2;
  s.reliable.cap = 2;

  const ScenarioOutcome out =
      run_scenario(default_protocols(), default_families(), s);
  EXPECT_TRUE(out.ok()) << out.violations[0];
  EXPECT_EQ(out.report.run.crashed, 1u);
  EXPECT_TRUE(out.report.run.completed);
  EXPECT_LE(out.report.verdict.elected, 1u);
  // If nobody decided, the run must say so — never a silent stall.
  if (out.report.verdict.elected == 0) {
    const std::string diag = describe_nontermination(out.report.run);
    EXPECT_NE(diag.find("undecided"), std::string::npos) << diag;
  }
}

TEST(ReliableScenario, BoundedDelayComposesWithRandomWakeup) {
  // Two independent sources of asynchrony at once: nodes wake over a spread
  // of rounds AND every delivery may stall up to max_delay.  A reliable
  // variant must conform with liveness enforced (delay-only mask).
  for (const std::uint64_t seed : {3ull, 77ull, 901ull}) {
    Scenario s;
    s.family = "ring";
    s.params = {{"n", 9}};
    s.protocol = "flood_max_reliable";
    s.knowledge = KnowledgeGrant::None;
    s.wakeup = WakeupKind::Random;
    s.wakeup_spread = 6;
    s.seed = seed;
    s.threads = 1;
    s.adversary.max_delay = 3;
    s.adversary.seed = seed + 1;

    const ScenarioOutcome out =
        run_scenario(default_protocols(), default_families(), s);
    EXPECT_TRUE(out.ok()) << "seed " << seed << ": " << out.violations[0];
    EXPECT_TRUE(out.report.verdict.unique_leader) << "seed " << seed;
  }
}

}  // namespace
}  // namespace ule
