// The conformance fuzzer: a clean registry fuzzes violation-free and
// deterministically; deliberately broken protocols are caught and shrunk to
// minimal replay strings that still reproduce the failure.

#include <gtest/gtest.h>

#include <memory>

#include "scenario/fuzzer.hpp"
#include "scenario/registry.hpp"
#include "scenario/runner.hpp"

namespace ule {
namespace {

TEST(Fuzzer, CleanRegistryFuzzesViolationFree) {
  FuzzConfig cfg;
  cfg.master_seed = 0xCAFE;
  cfg.count = 120;
  cfg.max_n = 32;
  const FuzzReport rep =
      run_fuzz(default_protocols(), default_families(), cfg);
  EXPECT_EQ(rep.scenarios_run, cfg.count);
  EXPECT_TRUE(rep.ok()) << rep.failures.size() << " failures, first: "
                        << (rep.failures.empty()
                                ? ""
                                : rep.failures[0].minimal.encode());
  // The space is not degenerate: most runs elect, some exercise threads.
  EXPECT_GT(rep.runs_elected, cfg.count / 2);
  EXPECT_GT(rep.determinism_checked, 0u);
}

TEST(Fuzzer, NewDiameterFamilyFuzzesViolationFree) {
  // A focused smoke on the D-ladder family: every scenario the fuzzer draws
  // is a cliquepath instance, swept across wakeup schedules, knowledge
  // grants and thread counts by the usual distribution.
  ProtocolRegistry protos;
  for (const char* name : {"flood_max", "kingdom", "dfs", "least_el_all"})
    protos.add(default_protocols().at(name));
  FamilyRegistry fams;
  fams.add(default_families().at("cliquepath"));

  FuzzConfig cfg;
  cfg.master_seed = 0xD1A11;
  cfg.count = 80;
  cfg.max_n = 40;
  const FuzzReport rep = run_fuzz(protos, fams, cfg);
  EXPECT_EQ(rep.scenarios_run, cfg.count);
  EXPECT_TRUE(rep.ok()) << rep.failures.size() << " failures, first: "
                        << (rep.failures.empty()
                                ? ""
                                : rep.failures[0].minimal.encode());
  EXPECT_GT(rep.runs_elected, cfg.count / 2);
}

TEST(Fuzzer, DrawSequenceIsDeterministic) {
  const auto draw_some = [] {
    Rng rng(0xD5EED);
    std::vector<std::string> tokens;
    for (int i = 0; i < 50; ++i)
      tokens.push_back(draw_scenario(rng, default_protocols(),
                                     default_families(), 48, 0.25, 0.5)
                           .encode());
    return tokens;
  };
  EXPECT_EQ(draw_some(), draw_some());
}

// --- deliberately broken protocols (test fixtures) -------------------------

/// Violates safety everywhere: the two lowest slots both elect themselves.
class TwoLeaders final : public Process {
 public:
  void on_wake(Context& ctx, std::span<const Envelope>) override {
    ctx.set_status(ctx.slot() < 2 ? Status::Elected : Status::NonElected);
    ctx.halt();
  }
  void on_round(Context&, std::span<const Envelope>) override {}
};

/// Violates safety only on graphs with n >= 10 (shrinking must stop at the
/// boundary, not at the family minimum).
class TwoLeadersAbove9 final : public Process {
 public:
  void on_wake(Context& ctx, std::span<const Envelope>) override {
    const bool big = ctx.knowledge().require_n() >= 10;
    ctx.set_status(ctx.slot() < (big ? 2u : 1u) ? Status::Elected
                                                : Status::NonElected);
    ctx.halt();
  }
  void on_round(Context&, std::span<const Envelope>) override {}
};

/// Violates liveness: node 0 sleeps far past any registered envelope before
/// electing itself.
class SlowPoke final : public Process {
 public:
  void on_wake(Context& ctx, std::span<const Envelope>) override {
    if (ctx.slot() != 0) {
      ctx.set_status(Status::NonElected);
      ctx.halt();
      return;
    }
    ctx.sleep_until(1'000'000);
  }
  void on_round(Context& ctx, std::span<const Envelope>) override {
    ctx.set_status(Status::Elected);
    ctx.halt();
  }
};

/// Safe only under in-order delivery, but does not know it: each node
/// broadcasts its slot and elects iff the FIRST inbox envelope carries a
/// higher slot.  With lane-order delivery (inbox sorted by sender slot) node
/// 0 is the unique leader on paths and rings; one inbox shuffle at a middle
/// node mints a second.  Registered as reorder-safe to prove the fuzzer's
/// adversarial draws catch the false declaration.
class OrderSensitive final : public Process {
 public:
  void on_wake(Context& ctx, std::span<const Envelope>) override {
    FlatMsg m;
    m.type = 1;
    m.channel = 200;
    m.bits = wire::kIdField;
    m.a = ctx.slot();
    ctx.broadcast(m);
  }
  void on_round(Context& ctx, std::span<const Envelope> inbox) override {
    if (inbox.empty()) {
      ctx.idle();
      return;
    }
    ctx.set_status(inbox[0].flat.a > ctx.slot() ? Status::Elected
                                                : Status::NonElected);
    ctx.halt();
  }
};

ProtocolRegistry registry_with(const char* name,
                               std::function<std::unique_ptr<Process>()> make,
                               std::uint8_t safe_under = faults::kAll,
                               bool wakeup_tolerant = true) {
  ProtocolRegistry reg;  // ONLY the broken protocol: every draw hits it
  reg.add(ProtocolInfo{
      name, Contract::Deterministic, KnowledgeGrant::N,
      wakeup_tolerant, /*needs_complete=*/false,
      /*explicit_overlay=*/false,
      safe_under, /*live_under_async=*/true,
      [make = std::move(make)](const ScenarioShape&, RunOptions&) {
        return [make](NodeId) { return make(); };
      },
      [](const ScenarioShape& s) { return Round{64} + 2 * s.n; },
      [](const ScenarioShape& s) { return std::uint64_t{64} + 16 * s.m; }});
  return reg;
}

TEST(Fuzzer, CatchesAndShrinksASafetyBug) {
  const ProtocolRegistry broken = registry_with(
      "broken_duo", [] { return std::make_unique<TwoLeaders>(); });

  FuzzConfig cfg;
  cfg.master_seed = 7;
  cfg.count = 5;
  cfg.max_n = 40;
  cfg.adversary_fraction = 0;  // base machinery: a crash could mask a leader
  const FuzzReport rep = run_fuzz(broken, default_families(), cfg);
  ASSERT_EQ(rep.failures.size(), 5u);  // every scenario fails

  for (const FuzzFailure& f : rep.failures) {
    EXPECT_FALSE(f.original_violations.empty());
    EXPECT_FALSE(f.minimal_violations.empty());
    EXPECT_EQ(f.minimal_violations[0].rfind("safety", 0), 0u)
        << f.minimal_violations[0];

    // The minimal scenario is fully simplified: simplest family at the
    // smallest size that still has two slots to elect, simultaneous wakeup,
    // one thread — and its token still reproduces the failure.
    EXPECT_TRUE(f.minimal.family == "path" || f.minimal.family == "ring")
        << f.minimal.encode();
    EXPECT_LE(f.minimal.param("n"), 3u) << f.minimal.encode();
    EXPECT_EQ(f.minimal.wakeup, WakeupKind::Simultaneous);
    EXPECT_EQ(f.minimal.threads, 1u);
    const Scenario replay = Scenario::parse(f.minimal.encode());
    EXPECT_EQ(replay, f.minimal);
    EXPECT_FALSE(
        run_scenario(broken, default_families(), replay).ok());
  }
}

TEST(Fuzzer, ShrinkStopsAtTheFailureBoundary) {
  const ProtocolRegistry broken = registry_with(
      "broken_above_9", [] { return std::make_unique<TwoLeadersAbove9>(); });

  // Hand a known-failing scenario straight to the shrinker.
  Scenario s;
  s.family = "gnm";
  s.params = {{"n", 36}, {"m", 90}};
  s.protocol = "broken_above_9";
  s.knowledge = KnowledgeGrant::NMD;
  s.wakeup = WakeupKind::Random;
  s.wakeup_spread = 12;
  s.seed = 4242;
  s.threads = 3;
  ASSERT_FALSE(run_scenario(broken, default_families(), s).ok());

  std::size_t steps = 0;
  const Scenario minimal =
      shrink_scenario(broken, default_families(), s, {}, &steps);
  EXPECT_GT(steps, 0u);
  EXPECT_FALSE(run_scenario(broken, default_families(), minimal).ok());
  // n = 10 is the smallest failing size; 9 passes, so the shrinker must
  // stop exactly there (decrement candidates make the minimum tight).
  EXPECT_EQ(minimal.param("n"), 10u) << minimal.encode();
  EXPECT_EQ(minimal.wakeup, WakeupKind::Simultaneous);
  EXPECT_EQ(minimal.threads, 1u);
  EXPECT_EQ(minimal.knowledge, KnowledgeGrant::N);  // the registered minimum

  // Every further single-step simplification passes (local minimality).
  Scenario smaller = minimal;
  smaller.params = {{"n", 9}};
  EXPECT_TRUE(run_scenario(broken, default_families(), smaller).ok());
}

TEST(Fuzzer, CatchesAndShrinksAnAdversarialBug) {
  // Every draw carries a reorder adversary (adversary_fraction = 1 and the
  // fixture declares only kReorder safe).  The failures it catches must
  // shrink to tokens that KEEP the a= segment — dropping the adversary makes
  // the run pass, so the shrinker has to retain the knob that bites — and
  // those tokens must round-trip and reproduce.
  const ProtocolRegistry broken = registry_with(
      "order_sensitive", [] { return std::make_unique<OrderSensitive>(); },
      faults::kReorder, /*wakeup_tolerant=*/false);
  FamilyRegistry fams;
  fams.add(default_families().at("ring"));
  fams.add(default_families().at("path"));

  FuzzConfig cfg;
  cfg.master_seed = 0xAD5EED;
  cfg.count = 60;
  cfg.max_n = 24;
  cfg.adversary_fraction = 1.0;
  const FuzzReport rep = run_fuzz(broken, fams, cfg);
  EXPECT_EQ(rep.adversarial_runs, rep.scenarios_run);
  ASSERT_FALSE(rep.failures.empty());  // the shuffle fires often at 60 draws

  for (const FuzzFailure& f : rep.failures) {
    ASSERT_FALSE(f.minimal_violations.empty());
    EXPECT_EQ(f.minimal_violations[0].rfind("safety", 0), 0u)
        << f.minimal_violations[0];
    EXPECT_GT(f.minimal.adversary.reorder_pm, 0u) << f.minimal.encode();
    EXPECT_NE(f.minimal.encode().find(":a="), std::string::npos)
        << f.minimal.encode();
    const Scenario replay = Scenario::parse(f.minimal.encode());
    EXPECT_EQ(replay, f.minimal);
    EXPECT_FALSE(run_scenario(broken, fams, replay).ok());
  }
}

TEST(Fuzzer, CatchesALivenessBug) {
  const ProtocolRegistry broken =
      registry_with("slow_poke", [] { return std::make_unique<SlowPoke>(); });

  FuzzConfig cfg;
  cfg.master_seed = 11;
  cfg.count = 3;
  cfg.max_n = 24;
  cfg.adversary_fraction = 0;  // a drop/crash draw would waive liveness
  const FuzzReport rep = run_fuzz(broken, default_families(), cfg);
  ASSERT_EQ(rep.failures.size(), 3u);
  for (const FuzzFailure& f : rep.failures) {
    ASSERT_FALSE(f.minimal_violations.empty());
    bool liveness = false;
    for (const std::string& v : f.minimal_violations)
      liveness = liveness || v.rfind("liveness", 0) == 0;
    EXPECT_TRUE(liveness) << f.minimal.encode();
  }
}

TEST(Fuzzer, TimeBudgetStopsTheLoop) {
  FuzzConfig cfg;
  cfg.master_seed = 13;
  cfg.count = 1'000'000;       // would take far too long...
  cfg.max_n = 24;
  cfg.time_budget_sec = 0.05;  // ...but the budget cuts it off
  const FuzzReport rep =
      run_fuzz(default_protocols(), default_families(), cfg);
  EXPECT_TRUE(rep.time_budget_hit);
  EXPECT_LT(rep.scenarios_run, cfg.count);
  EXPECT_GT(rep.scenarios_run, 0u);
}

}  // namespace
}  // namespace ule
