// The churn conformance matrix: crash-RECOVERY schedules (bounded rebirth
// intervals, net/adversary.hpp churn) run against every crash-safe registry
// protocol on small families and fixed seeds.
//
// Two walls, matching the declarations:
//   - SAFETY for every protocol whose safe_under mask includes kCrash: no
//     churn cell ever elects two leaders, whatever else the rebirth wrecked.
//   - LIVENESS for every protocol declaring live_under_churn (the
//     *_reliable fleet): inside the bounded-churn window (crash at round 0,
//     bounded recover) the run must still elect a unique leader — the ARQ
//     epoch-healing replay is what carries the winning wave to the reborn
//     node, and these cells pin that end to end, including the runner's
//     envelope stretch and its threads>1 determinism cross-check (which
//     compares recoveries and adv_crash_drops too).
//
// Post-step rebirth is NOT here: a node reborn after stepping receives
// responses to a life its fresh state never lived, which strict-accounting
// protocols rightly treat as a protocol violation — the runner rejects such
// schedules as config errors (pinned below), and the engine-level boundary
// tests in tests/net/adversary_test.cpp cover the raw semantics.

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "scenario/registry.hpp"
#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"

namespace ule {
namespace {

struct Rung {
  const char* name;
  ScenarioAdversary adv;
  /// Multi-node churn can disconnect the LIVE subgraph (two dead windows
  /// cut a ring into two segments), and disconnected components
  /// legitimately elect independent leaders on a plain transport — no
  /// protocol can agree across a cut that delivers nothing.  Only the
  /// reliable fleet is expected to survive it: the ARQ replay bridges a
  /// dead window, so to the inner protocol the graph never disconnected.
  bool reliable_only = false;
};

/// The churn ladder.  Every rebirth interval crashes at round 0 (the
/// runner's validity window); the rungs vary the recover round, the number
/// of churning nodes, and whether delivery faults ride along.
std::vector<Rung> ladder() {
  std::vector<Rung> rungs;
  {
    ScenarioAdversary a;
    a.crashes = {{3, 0, 5}};  // node 3 % n dead for rounds [0, 5)
    rungs.push_back({"churn", a});
  }
  {
    ScenarioAdversary a;
    a.crashes = {{1, 0, 3}, {5, 0, 7}};  // two nodes, staggered rebirths
    rungs.push_back({"churn2", a, /*reliable_only=*/true});
  }
  {
    ScenarioAdversary a;  // churn under the full delivery mix
    a.max_delay = 2;
    a.drop_pm = 80;
    a.dup_pm = 80;
    a.reorder_pm = 250;
    a.crashes = {{2, 0, 4}};
    a.seed = 0xC0A1;
    rungs.push_back({"churnmix", a});
  }
  {
    ScenarioAdversary a;  // empty interval: recover == crash is a no-op
    a.crashes = {{4, 2, 2}};
    rungs.push_back({"churn_noop", a});
  }
  return rungs;
}

std::vector<std::pair<std::string, ScenarioParams>> shapes_for(
    const ProtocolInfo& proto) {
  std::vector<std::pair<std::string, ScenarioParams>> shapes;
  if (!proto.needs_complete) {
    shapes.push_back({"ring", {{"n", 9}}});
    shapes.push_back({"gnm", {{"n", 12}, {"m", 24}}});
  }
  shapes.push_back({"complete", {{"n", 8}}});
  return shapes;
}

TEST(ChurnMatrix, SafetyHoldsForEveryCrashSafeProtocol) {
  const ProtocolRegistry& protos = default_protocols();
  const FamilyRegistry& fams = default_families();
  const std::vector<Rung> rungs = ladder();
  const std::uint64_t seeds[] = {11, 1231, 990017};

  std::size_t ran = 0, recovered_runs = 0;
  for (const ProtocolInfo& proto : protos.all()) {
    for (const Rung& rung : rungs) {
      const std::uint8_t classes = faults::classes(rung.adv);
      if (classes & ~proto.safe_under) continue;  // not declared safe: skip
      if (rung.reliable_only && !proto.reliable_transport) continue;
      for (const auto& [family, params] : shapes_for(proto)) {
        for (const std::uint64_t seed : seeds) {
          Scenario s;
          s.family = family;
          s.params = params;
          s.protocol = proto.name;
          s.knowledge = proto.min_knowledge;
          s.wakeup = WakeupKind::Simultaneous;
          s.seed = seed;
          // One seed runs the runner's parallel determinism cross-check,
          // which diffs recoveries and adv_crash_drops across thread counts.
          s.threads = seed == 1231 ? 2 : 1;
          s.adversary = rung.adv;

          const ScenarioOutcome out = run_scenario(protos, fams, s);
          ++ran;
          if (out.report.run.recoveries > 0) ++recovered_runs;
          EXPECT_TRUE(out.ok()) << proto.name << " under " << rung.name
                                << " on " << s.encode() << ": "
                                << out.violations[0];
          EXPECT_LE(out.report.verdict.elected, 1u) << s.encode();
          // The engine folded the churn into the run surface: every
          // non-empty interval crashes exactly once and recovers exactly
          // once (churn_noop's empty interval folds to zero of each).
          std::size_t rebirths = 0;
          for (const ScenarioCrash& c : rung.adv.crashes)
            if (c.recover != kRoundForever && c.recover != c.at) ++rebirths;
          EXPECT_EQ(out.report.run.crashed, rebirths) << s.encode();
          EXPECT_EQ(out.report.run.recoveries, rebirths) << s.encode();
        }
      }
    }
  }
  EXPECT_GT(ran, 100u);
  EXPECT_GT(recovered_runs, 50u);
}

TEST(ChurnMatrix, ReliableFleetStaysLiveUnderBoundedChurn) {
  // The liveness wall: every live_under_churn protocol must ELECT — not
  // just stay safe — through every bounded-churn rung.  out.ok() already
  // enforces the runner's liveness contract (completion inside the churn-
  // stretched envelope); the explicit unique-leader check keeps this test
  // honest even if the enforcement gate regresses.
  const ProtocolRegistry& protos = default_protocols();
  const FamilyRegistry& fams = default_families();
  const std::vector<Rung> rungs = ladder();
  const std::uint64_t seeds[] = {11, 1231, 990017};

  std::size_t ran = 0;
  for (const ProtocolInfo& proto : protos.all()) {
    if (!proto.live_under_churn) continue;
    for (const Rung& rung : rungs) {
      const std::uint8_t classes = faults::classes(rung.adv);
      if (classes & ~proto.safe_under) continue;
      for (const auto& [family, params] : shapes_for(proto)) {
        for (const std::uint64_t seed : seeds) {
          Scenario s;
          s.family = family;
          s.params = params;
          s.protocol = proto.name;
          s.knowledge = proto.min_knowledge;
          s.wakeup = WakeupKind::Simultaneous;
          s.seed = seed;
          s.threads = seed == 990017 ? 2 : 1;
          s.adversary = rung.adv;

          const ScenarioOutcome out = run_scenario(protos, fams, s);
          ++ran;
          EXPECT_TRUE(out.ok()) << proto.name << " under " << rung.name
                                << " on " << s.encode() << ": "
                                << out.violations[0];
          EXPECT_TRUE(out.report.verdict.unique_leader)
              << proto.name << " under " << rung.name << " on " << s.encode()
              << ": elected=" << out.report.verdict.elected
              << " undecided=" << out.report.verdict.undecided;
          EXPECT_TRUE(out.report.run.completed) << s.encode();
        }
      }
    }
  }
  // Six reliable variants x 4 rungs x shapes x 3 seeds, minus the
  // complete-only restriction: the wall actually has bricks in it.
  EXPECT_GT(ran, 100u);
}

TEST(ChurnMatrix, PostStepRebirthIsAConfigError) {
  // Rebirth after the node's first step hands the fresh process responses
  // to a life it never lived; the runner must reject the schedule up front
  // for EVERY crash-safe protocol — a config error, not a late abort or a
  // phantom conformance finding.  Same for a recover round past the
  // bounded-churn window.
  const ProtocolRegistry& protos = default_protocols();
  const FamilyRegistry& fams = default_families();
  for (const ProtocolInfo& proto : protos.all()) {
    if (!(proto.safe_under & faults::kCrash)) continue;
    Scenario s;
    s.family = proto.needs_complete ? "complete" : "ring";
    s.params = {{"n", 8}};
    s.protocol = proto.name;
    s.knowledge = proto.min_knowledge;
    s.seed = 5;
    s.threads = 1;
    s.adversary.crashes = {{3, 1, 4}};  // post-step: crash at round 1
    EXPECT_THROW(run_scenario(protos, fams, s), std::invalid_argument)
        << proto.name;
    s.adversary.crashes = {{3, 0, 40}};  // recover beyond the window
    EXPECT_THROW(run_scenario(protos, fams, s), std::invalid_argument)
        << proto.name;
  }
}

}  // namespace
}  // namespace ule
