// The safety-under-adversary conformance matrix: every registry protocol runs
// against a small adversary ladder — delay-only, drop, duplication, reorder,
// a single crash, and an everything-at-once mix — on a handful of small
// families and seeds, asserting that no run EVER elects two leaders or
// breaks leader-id agreement.  Liveness is asserted only where the registry
// declares it survives (live_under_async, loss-free classes); everywhere
// else a livelock is legal and only safety counts.
//
// This is the empirical pin behind every ProtocolInfo::safe_under mask: a
// declaration generous enough to let the fuzzer draw a double-electing
// adversary would first fail here.  The rungs use fixed seeds so the matrix
// is a regression test; the nightly fuzz hunts the open seed space.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "scenario/registry.hpp"
#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"

namespace ule {
namespace {

struct Rung {
  const char* name;
  ScenarioAdversary adv;
};

/// The ladder: one rung per fault class, plus the all-at-once mix.  Knob
/// strengths are deliberately rough — ~10% loss and multi-round delays are
/// far outside anything the paper's model permits.
std::vector<Rung> ladder() {
  std::vector<Rung> rungs;
  {
    ScenarioAdversary a;
    a.max_delay = 2;
    a.seed = 0xDE1A;
    rungs.push_back({"delay", a});
  }
  {
    ScenarioAdversary a;
    a.drop_pm = 100;
    a.seed = 0xD20;
    rungs.push_back({"drop", a});
  }
  {
    ScenarioAdversary a;
    a.dup_pm = 150;
    a.seed = 0xD0B;
    rungs.push_back({"dup", a});
  }
  {
    ScenarioAdversary a;
    a.reorder_pm = 400;
    a.seed = 0x2E02;
    rungs.push_back({"reorder", a});
  }
  {
    ScenarioAdversary a;
    a.crashes = {{1, 2}};  // node 1 % n dies at the start of round 2
    rungs.push_back({"crash1", a});
  }
  {
    ScenarioAdversary a;
    a.max_delay = 2;
    a.drop_pm = 80;
    a.dup_pm = 80;
    a.reorder_pm = 250;
    a.crashes = {{2, 3}};
    a.seed = 0xA11;
    rungs.push_back({"mix", a});
  }
  return rungs;
}

TEST(AdversaryMatrix, SafetyHoldsUnderEveryDeclaredClass) {
  const ProtocolRegistry& protos = default_protocols();
  const FamilyRegistry& fams = default_families();
  const std::vector<Rung> rungs = ladder();
  const std::uint64_t seeds[] = {11, 1231, 990017};

  std::size_t ran = 0, livelocked = 0;
  for (const ProtocolInfo& proto : protos.all()) {
    // Two shapes per protocol: a sparse one (long paths for delays to bite)
    // and a dense one.  Complete-only protocols get only the clique.
    std::vector<std::pair<std::string, ScenarioParams>> shapes;
    if (!proto.needs_complete) {
      shapes.push_back({"ring", {{"n", 9}}});
      shapes.push_back({"gnm", {{"n", 12}, {"m", 24}}});
    }
    shapes.push_back({"complete", {{"n", 8}}});

    for (const Rung& rung : rungs) {
      const std::uint8_t classes = faults::classes(rung.adv);
      if (classes & ~proto.safe_under) continue;  // not declared safe: skip
      for (const auto& [family, params] : shapes) {
        for (const std::uint64_t seed : seeds) {
          Scenario s;
          s.family = family;
          s.params = params;
          s.protocol = proto.name;
          s.knowledge = proto.min_knowledge;
          s.wakeup = WakeupKind::Simultaneous;
          s.seed = seed;
          s.threads = 1;
          s.adversary = rung.adv;

          const ScenarioOutcome out = run_scenario(protos, fams, s);
          ++ran;
          if (!out.report.run.completed) ++livelocked;
          EXPECT_TRUE(out.ok())
              << proto.name << " under " << rung.name << " on "
              << s.encode() << ": " << out.violations[0];
          // The safety half of the contract, stated directly: never two
          // leaders, whatever else the adversary managed to wreck.
          EXPECT_LE(out.report.verdict.elected, 1u) << s.encode();
        }
      }
    }
  }
  // The matrix actually exercised the space (every protocol declares at
  // least one class, both shapes, three seeds).
  EXPECT_GT(ran, 100u);
}

TEST(AdversaryMatrix, UndeclaredClassIsAConfigError) {
  // A scenario whose adversary exercises a class outside safe_under must be
  // rejected up front — a config error, not a (missed) violation.
  const ProtocolRegistry& protos = default_protocols();
  for (const ProtocolInfo& proto : protos.all()) {
    if (proto.safe_under == faults::kAll) continue;
    ScenarioAdversary adv;
    if (!(proto.safe_under & faults::kDelay)) adv.max_delay = 1;
    else if (!(proto.safe_under & faults::kDrop)) adv.drop_pm = 50;
    else if (!(proto.safe_under & faults::kDuplicate)) adv.dup_pm = 50;
    else if (!(proto.safe_under & faults::kReorder)) adv.reorder_pm = 50;
    else adv.crashes = {{0, 1}};

    Scenario s;
    s.family = proto.needs_complete ? "complete" : "ring";
    s.params = proto.needs_complete ? ScenarioParams{{"n", 6}}
                                    : ScenarioParams{{"n", 6}};
    s.protocol = proto.name;
    s.knowledge = proto.min_knowledge;
    s.seed = 5;
    s.threads = 1;
    s.adversary = adv;
    EXPECT_THROW(run_scenario(protos, default_families(), s),
                 std::invalid_argument)
        << proto.name;
  }
}

TEST(AdversaryMatrix, CrashedNodesAreReportedNotBlamed) {
  // A crash victim can never decide; the runner must not flag the survivors'
  // clean election as incomplete because of it, and the result must carry
  // the crash count.
  Scenario s;
  s.family = "ring";
  s.params = {{"n", 9}};
  s.protocol = "flood_max";
  s.knowledge = KnowledgeGrant::None;
  s.seed = 77;
  s.threads = 1;
  s.adversary.crashes = {{3, 4}};

  const ScenarioOutcome out =
      run_scenario(default_protocols(), default_families(), s);
  EXPECT_TRUE(out.ok()) << out.violations[0];
  EXPECT_EQ(out.report.run.crashed, 1u);
  EXPECT_LE(out.report.verdict.elected, 1u);
}

}  // namespace
}  // namespace ule
