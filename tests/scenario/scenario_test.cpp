// The scenario spec and registries: string round-trip, parse diagnostics,
// registry completeness, and replayability (same token -> same graph, same
// run).

#include <gtest/gtest.h>

#include <set>

#include "scenario/fuzzer.hpp"
#include "scenario/registry.hpp"
#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"

namespace ule {
namespace {

TEST(ScenarioCodec, EncodeProducesTheDocumentedShape) {
  Scenario s;
  s.family = "gnm";
  s.params = {{"n", 40}, {"m", 100}};
  s.protocol = "least_el_all";
  s.knowledge = KnowledgeGrant::N;
  s.wakeup = WakeupKind::Random;
  s.wakeup_spread = 20;
  s.seed = 7919;
  s.threads = 2;
  EXPECT_EQ(s.encode(), "ule1:gnm{n=40,m=100}:least_el_all:k=n:w=rand.20:s=7919:t=2");
}

TEST(ScenarioCodec, ParseInvertsEncodeOnHandPickedScenarios) {
  Scenario sim;
  sim.family = "ring";
  sim.params = {{"n", 24}};
  sim.protocol = "flood_max";
  EXPECT_EQ(Scenario::parse(sim.encode()), sim);

  Scenario one;
  one.family = "complete";
  one.params = {{"n", 12}};
  one.protocol = "kingdom";
  one.knowledge = KnowledgeGrant::NMD;
  one.wakeup = WakeupKind::Single;
  one.wakeup_node = 7;
  one.seed = ~std::uint64_t{0} >> 1;
  one.threads = 8;
  EXPECT_EQ(Scenario::parse(one.encode()), one);
}

TEST(ScenarioCodec, CliquepathTokensRoundTripAndReplay) {
  // The D-ladder family goes through the same replay-token grammar as
  // everything else; its two params are registry-ordered (cliques, size).
  Scenario s;
  s.family = "cliquepath";
  s.params = {{"cliques", 9}, {"size", 3}};
  s.protocol = "flood_max";
  s.seed = 77;
  EXPECT_EQ(s.encode(), "ule1:cliquepath{cliques=9,size=3}:flood_max:k=none:w=sim:s=77:t=1");
  EXPECT_EQ(Scenario::parse(s.encode()), s);

  // And the built instance honors the family's exactness guarantee inside a
  // full conformance run: D = cliques - 1.
  const auto out = run_scenario(default_protocols(), default_families(), s);
  EXPECT_TRUE(out.ok()) << (out.violations.empty() ? "" : out.violations[0]);
  EXPECT_EQ(out.shape.n, 27u);
  EXPECT_EQ(out.shape.diameter, 8u);
}

TEST(ScenarioCodec, ParseInvertsEncodeOnTheFuzzDistribution) {
  // The acceptance property: parse(encode(s)) == s for every drawable s —
  // and the distribution actually reaches every registered family (so a
  // newly added family, e.g. cliquepath, is covered the moment it lands).
  Rng rng(0xABCDEF);
  std::set<std::string> drawn;
  std::size_t adversarial = 0;
  for (int i = 0; i < 500; ++i) {
    const Scenario s = draw_scenario(rng, default_protocols(),
                                     default_families(), 64, 0.3, 0.4);
    drawn.insert(s.family);
    if (s.adversary.active()) ++adversarial;
    const std::string token = s.encode();
    EXPECT_EQ(Scenario::parse(token), s) << token;
  }
  for (const FamilyInfo& fam : default_families().all())
    EXPECT_TRUE(drawn.count(fam.name)) << fam.name << " never drawn";
  EXPECT_GT(adversarial, 100u);  // the a=/f= segments are really exercised
}

TEST(ScenarioCodec, ParseRejectsMalformedTokens) {
  const char* bad[] = {
      "",
      "ule1",
      "ule2:ring{n=8}:flood_max:k=none:w=sim:s=1:t=1",   // wrong version
      "ule1:ring{n=8}:flood_max:k=none:w=sim:s=1",       // missing field
      "ule1:ring(n=8):flood_max:k=none:w=sim:s=1:t=1",   // wrong braces
      "ule1:ring{n=}:flood_max:k=none:w=sim:s=1:t=1",    // empty value
      "ule1:ring{n=8}:flood_max:k=maybe:w=sim:s=1:t=1",  // bad knowledge
      "ule1:ring{n=8}:flood_max:k=none:w=soon:s=1:t=1",  // bad wakeup
      "ule1:ring{n=8}:flood_max:k=none:w=rand.:s=1:t=1", // missing spread
      "ule1:ring{n=8}:flood_max:k=none:w=sim:s=x:t=1",   // non-numeric seed
      "ule1:ring{n=8}:flood_max:k=none:w=sim:s=1:t=0",   // zero threads
      "ule1:ring{n=8}:flood-max:k=none:w=sim:s=1:t=1",   // bad name char
  };
  for (const char* token : bad)
    EXPECT_THROW(Scenario::parse(token), std::invalid_argument) << token;
}

TEST(ScenarioCodec, AdversaryTokensRoundTrip) {
  Scenario s;
  s.family = "ring";
  s.params = {{"n", 9}};
  s.protocol = "flood_max";
  s.adversary.reorder_pm = 400;
  s.adversary.seed = 99;
  EXPECT_EQ(s.encode(),
            "ule1:ring{n=9}:flood_max:k=none:w=sim:s=1:t=1:a=0.0.0.400.99");
  EXPECT_EQ(Scenario::parse(s.encode()), s);

  // All knobs plus a crash schedule: a= strictly before f=.
  s.adversary.max_delay = 2;
  s.adversary.drop_pm = 100;
  s.adversary.dup_pm = 50;
  s.adversary.crashes = {{3, 4}, {5, 1}};
  EXPECT_EQ(s.encode(),
            "ule1:ring{n=9}:flood_max:k=none:w=sim:s=1:t=1"
            ":a=2.100.50.400.99:f=3@4,5@1");
  EXPECT_EQ(Scenario::parse(s.encode()), s);

  // Crash-only adversary: f= stands alone, no a= segment (and the inert
  // adversary seed is not encoded).
  Scenario c;
  c.family = "ring";
  c.params = {{"n", 9}};
  c.protocol = "flood_max";
  c.adversary.crashes = {{1, 2}};
  EXPECT_EQ(c.encode(), "ule1:ring{n=9}:flood_max:k=none:w=sim:s=1:t=1:f=1@2");
  EXPECT_EQ(Scenario::parse(c.encode()), c);
}

TEST(ScenarioCodec, ChurnTokensRoundTrip) {
  // A churn interval encodes as NODE@CRASH-RECOVER; a crash-stop entry
  // (recover == forever) keeps the bare NODE@CRASH shape, so old tokens
  // parse unchanged and mixed schedules encode both shapes side by side.
  Scenario s;
  s.family = "ring";
  s.params = {{"n", 9}};
  s.protocol = "flood_max";
  s.adversary.crashes = {{3, 0, 5}, {5, 2}};
  EXPECT_EQ(s.encode(),
            "ule1:ring{n=9}:flood_max:k=none:w=sim:s=1:t=1:f=3@0-5,5@2");
  EXPECT_EQ(Scenario::parse(s.encode()), s);

  // recover == crash (the empty interval, a documented no-op) still carries
  // its tail through the round trip: the token preserves the schedule as
  // written, and the engine folds it away.
  s.adversary.crashes = {{4, 2, 2}};
  EXPECT_EQ(s.encode(),
            "ule1:ring{n=9}:flood_max:k=none:w=sim:s=1:t=1:f=4@2-2");
  EXPECT_EQ(Scenario::parse(s.encode()), s);

  // Parsed fields land where they should, not just equality.
  const Scenario p = Scenario::parse(
      "ule1:ring{n=9}:flood_max:k=none:w=sim:s=7:t=1:f=1@0-3,2@4");
  ASSERT_EQ(p.adversary.crashes.size(), 2u);
  EXPECT_EQ(p.adversary.crashes[0].node, 1u);
  EXPECT_EQ(p.adversary.crashes[0].at, 0u);
  EXPECT_EQ(p.adversary.crashes[0].recover, 3u);
  EXPECT_EQ(p.adversary.crashes[1].node, 2u);
  EXPECT_EQ(p.adversary.crashes[1].at, 4u);
  EXPECT_EQ(p.adversary.crashes[1].recover, kRoundForever);
}

TEST(ScenarioCodec, ParseRejectsMalformedAdversaryTokens) {
  const std::string base = "ule1:ring{n=9}:flood_max:k=none:w=sim:s=1:t=1";
  const char* bad[] = {
      ":a=0.0.0.0.5",            // every knob zero: the segment says nothing
      ":a=1.0.0",                // wrong arity
      ":a=1.0.0.0",              // still missing the adversary seed
      ":a=1.1001.0.0.5",         // probability above 1000 permille
      ":a=1.0.0.0.x",            // non-numeric seed
      ":a=1.0.0.0.5:a=1.0.0.0.5",  // duplicate a=
      ":f=",                     // empty crash list
      ":f=3",                    // missing @round
      ":f=3@",                   // missing the round number
      ":f=@3",                   // missing the node
      ":f=1@2:f=3@4",            // duplicate f=
      ":f=1@2:a=1.0.0.0.5",      // f= before a=
      ":f=3@5-2",                // recovers before it crashes
      ":f=3@2-",                 // dangling recover tail
      ":f=3@-2",                 // missing the crash round
      ":f=3@2-x",                // non-numeric recover
      ":q=7",                    // unknown optional field
  };
  for (const char* suffix : bad)
    EXPECT_THROW(Scenario::parse(base + suffix), std::invalid_argument)
        << suffix;
}

std::string parse_error(const std::string& token) {
  try {
    Scenario::parse(token);
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
  ADD_FAILURE() << "parsed without error: " << token;
  return "";
}

TEST(ScenarioCodec, ParseRejectsDuplicateFamilyParams) {
  // A repeated param name used to parse silently with param() resolving to
  // the FIRST occurrence — a token that lies about what it runs.  Now it is
  // a parse error naming the offender.
  const std::string msg =
      parse_error("ule1:ring{n=8,n=9}:flood_max:k=none:w=sim:s=1:t=1");
  EXPECT_NE(msg.find("duplicate family param \"n\""), std::string::npos)
      << msg;
  EXPECT_NE(
      parse_error("ule1:gnm{n=8,m=12,m=13}:flood_max:k=none:w=sim:s=1:t=1")
          .find("duplicate family param \"m\""),
      std::string::npos);
  // Distinct names stay legal, whatever the order.
  EXPECT_NO_THROW(
      Scenario::parse("ule1:gnm{m=12,n=8}:flood_max:k=none:w=sim:s=1:t=1"));
}

TEST(ScenarioCodec, DuplicateTailDiagnosticsNameTheRealProblem) {
  // Duplicate optional fields and out-of-order optional fields are different
  // user mistakes; each diagnostic must say which one happened instead of a
  // catch-all (the old messages conflated them).
  const std::string base = "ule1:ring{n=9}:flood_max:k=none:w=sim:s=1:t=1";
  EXPECT_NE(parse_error(base + ":a=1.0.0.0.5:a=2.0.0.0.5")
                .find("duplicate a= field (no last-wins)"),
            std::string::npos);
  EXPECT_NE(parse_error(base + ":f=1@2:f=3@4")
                .find("duplicate f= field (no last-wins)"),
            std::string::npos);
  EXPECT_NE(parse_error(base + ":r=4.0:r=8.0")
                .find("duplicate r= field (no last-wins)"),
            std::string::npos);
  EXPECT_NE(parse_error(base + ":f=1@2:a=1.0.0.0.5")
                .find("a= must appear before f= and r="),
            std::string::npos);
  EXPECT_NE(parse_error(base + ":r=4.0:f=1@2")
                .find("f= must appear before r="),
            std::string::npos);
}

TEST(Registry, ProtocolNamesAreUniqueAndComplete) {
  const auto& protos = default_protocols().all();
  ASSERT_GE(protos.size(), 14u);
  std::set<std::string> names;
  for (const ProtocolInfo& p : protos) {
    EXPECT_TRUE(names.insert(p.name).second) << "duplicate " << p.name;
    EXPECT_TRUE(static_cast<bool>(p.prepare)) << p.name;
    EXPECT_TRUE(static_cast<bool>(p.round_envelope)) << p.name;
    EXPECT_TRUE(static_cast<bool>(p.message_envelope)) << p.name;
    // Envelopes must be positive on a modest reference shape.
    ScenarioShape shape;
    shape.n = 24;
    shape.m = 48;
    shape.diameter = 6;
    EXPECT_GT(p.round_envelope(shape), 0u) << p.name;
    EXPECT_GT(p.message_envelope(shape), 0u) << p.name;
  }
  EXPECT_NE(default_protocols().find("flood_max"), nullptr);
  EXPECT_EQ(default_protocols().find("nonexistent"), nullptr);
  EXPECT_THROW(default_protocols().at("nonexistent"), std::invalid_argument);
}

TEST(Registry, EveryFamilyDrawsValidBuildableParams) {
  Rng rng(42);
  for (const FamilyInfo& fam : default_families().all()) {
    for (int i = 0; i < 40; ++i) {
      const ScenarioParams ps = fam.draw(rng, 48);
      // Draws respect the declared specs (names in order, values in range).
      ASSERT_EQ(ps.size(), fam.params.size()) << fam.name;
      for (std::size_t j = 0; j < ps.size(); ++j) {
        EXPECT_EQ(ps[j].first, fam.params[j].name) << fam.name;
        EXPECT_GE(ps[j].second, fam.params[j].lo) << fam.name;
        EXPECT_LE(ps[j].second, fam.params[j].hi) << fam.name;
      }
      Rng grng(7);
      const Graph g = fam.build(ps, grng);  // must not throw
      EXPECT_GE(g.n(), 2u) << fam.name;
    }
  }
}

TEST(Registry, DrawsRespectDeclaredRangesEvenForHugeMaxN) {
  // draw() must clamp to the declared ParamSpec ranges for ANY --max-n, or
  // run_scenario rejects the fuzzer's own output mid-sweep.
  Rng rng(44);
  for (const FamilyInfo& fam : default_families().all()) {
    for (const std::size_t max_n : {1000u, 100000u}) {
      for (int i = 0; i < 20; ++i) {
        const ScenarioParams ps = fam.draw(rng, max_n);
        ASSERT_EQ(ps.size(), fam.params.size()) << fam.name;
        for (std::size_t j = 0; j < ps.size(); ++j) {
          EXPECT_GE(ps[j].second, fam.params[j].lo)
              << fam.name << " " << ps[j].first << " max_n=" << max_n;
          EXPECT_LE(ps[j].second, fam.params[j].hi)
              << fam.name << " " << ps[j].first << " max_n=" << max_n;
        }
      }
    }
  }
}

TEST(Registry, ShrinkCandidatesAreSmallerAndBuildable) {
  Rng rng(43);
  for (const FamilyInfo& fam : default_families().all()) {
    const ScenarioParams ps = fam.draw(rng, 48);
    for (const ScenarioParams& cand : fam.shrink(ps)) {
      EXPECT_NE(cand, ps) << fam.name;
      Rng grng(7);
      EXPECT_NO_THROW(fam.build(cand, grng)) << fam.name;
    }
  }
}

TEST(Runner, GraphBuildIsReplayable) {
  Scenario s;
  s.family = "gnm";
  s.params = {{"n", 30}, {"m", 70}};
  s.protocol = "flood_max";
  s.seed = 12345;
  const Graph a = build_scenario_graph(default_families(), s);
  const Graph b = build_scenario_graph(default_families(), s);
  ASSERT_EQ(a.n(), b.n());
  ASSERT_EQ(a.m(), b.m());
  for (EdgeId e = 0; e < a.m(); ++e)
    EXPECT_EQ(a.edge_endpoints(e), b.edge_endpoints(e));
  // A different seed draws a different random graph (same n, m).
  s.seed = 54321;
  const Graph c = build_scenario_graph(default_families(), s);
  bool any_differs = c.m() != a.m();
  for (EdgeId e = 0; !any_differs && e < a.m(); ++e)
    any_differs = a.edge_endpoints(e) != c.edge_endpoints(e);
  EXPECT_TRUE(any_differs);
}

TEST(Runner, RunIsReplayableFromTheToken) {
  Scenario s;
  s.family = "torus";
  s.params = {{"rows", 4}, {"cols", 5}};
  s.protocol = "kingdom";
  s.knowledge = KnowledgeGrant::None;
  s.seed = 99;
  const auto a = run_scenario(default_protocols(), default_families(), s);
  const auto b = run_scenario(default_protocols(), default_families(),
                              Scenario::parse(s.encode()));
  EXPECT_TRUE(a.ok());
  EXPECT_EQ(a.report.run.rounds, b.report.run.rounds);
  EXPECT_EQ(a.report.run.messages, b.report.run.messages);
  EXPECT_EQ(a.report.run.bits, b.report.run.bits);
  EXPECT_EQ(a.report.verdict.leader_slot, b.report.verdict.leader_slot);
}

TEST(Runner, ConfigurationErrorsThrowInsteadOfViolating) {
  // Unknown names.
  Scenario s;
  s.family = "ring";
  s.params = {{"n", 8}};
  s.protocol = "no_such_protocol";
  EXPECT_THROW(run_scenario(default_protocols(), default_families(), s),
               std::invalid_argument);
  s.protocol = "flood_max";
  s.family = "no_such_family";
  EXPECT_THROW(run_scenario(default_protocols(), default_families(), s),
               std::invalid_argument);

  // Knowledge below the protocol's minimum.
  s.family = "ring";
  s.protocol = "las_vegas";  // requires ND
  s.knowledge = KnowledgeGrant::N;
  EXPECT_THROW(run_scenario(default_protocols(), default_families(), s),
               std::invalid_argument);

  // Adversarial wakeup on a fixed-schedule protocol.
  s.protocol = "spanner_elect";
  s.knowledge = KnowledgeGrant::N;
  s.wakeup = WakeupKind::Single;
  EXPECT_THROW(run_scenario(default_protocols(), default_families(), s),
               std::invalid_argument);

  // Complete-only protocol on a non-complete family.
  s.protocol = "sublinear_complete";
  s.wakeup = WakeupKind::Simultaneous;
  EXPECT_THROW(run_scenario(default_protocols(), default_families(), s),
               std::invalid_argument);

  // Param out of its declared range.
  s.protocol = "flood_max";
  s.knowledge = KnowledgeGrant::None;
  s.params = {{"n", 2}};  // ring needs n >= 3
  EXPECT_THROW(run_scenario(default_protocols(), default_families(), s),
               std::invalid_argument);
}

TEST(Runner, ExplicitOverlayAgreementIsChecked) {
  Scenario s;
  s.family = "grid";
  s.params = {{"rows", 4}, {"cols", 6}};
  s.protocol = "explicit_flood_max";
  s.seed = 17;
  const auto out = run_scenario(default_protocols(), default_families(), s);
  EXPECT_TRUE(out.ok()) << (out.violations.empty() ? "" : out.violations[0]);
  EXPECT_TRUE(out.report.verdict.unique_leader);
}

TEST(Runner, DeterminismAxisRunsTheParallelPath) {
  Scenario s;
  s.family = "complete";
  s.params = {{"n", 24}};
  s.protocol = "flood_max";
  s.seed = 5;
  s.threads = 3;
  const auto out = run_scenario(default_protocols(), default_families(), s);
  EXPECT_TRUE(out.ok()) << (out.violations.empty() ? "" : out.violations[0]);
}

}  // namespace
}  // namespace ule
