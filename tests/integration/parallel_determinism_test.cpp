// Parallel-determinism matrix: the engine must produce BIT-FOR-BIT identical
// runs at every thread count.  A subset of the engine-equivalence golden
// cells (every algorithm family, sparse and dense graphs) runs at threads ∈
// {1, 2, 3, 8} with the sequential-fallback cutoff forced to 1 so even these
// small graphs exercise the sharded execute / ordered-merge pipeline (and,
// via the 16x scatter threshold, the parallel CSR bucket pass).  Everything
// observable must match the threads=1 run: every RunResult counter, every
// node's election status, the leader slot, and the per-node send counts.
//
// The threads=1 runs themselves are pinned against the seed engine by
// engine_equivalence_test, so transitively every thread count reproduces the
// seed engine exactly.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "election/clustering.hpp"
#include "election/dfs_election.hpp"
#include "election/flood_max.hpp"
#include "election/kingdom.hpp"
#include "election/least_el.hpp"
#include "election/size_estimate.hpp"
#include "election/sublinear_complete.hpp"
#include "graphgen/dumbbell.hpp"
#include "graphgen/generators.hpp"
#include "net/engine.hpp"
#include "net/ids.hpp"
#include "spanner/spanner_elect.hpp"

namespace ule {
namespace {

/// The production path itself: run_election reports per-node statuses and
/// send counts, so the matrix tests exactly the engine configuration every
/// experiment uses (no hand-mirrored setup to drift).
ElectionReport run_snapshot(const Graph& g, const ProcessFactory& factory,
                            const RunOptions& opt) {
  return run_election(g, factory, opt);
}

void expect_identical(const ElectionReport& base, const ElectionReport& got,
                      const std::string& where) {
  EXPECT_EQ(base.run.rounds, got.run.rounds) << where;
  EXPECT_EQ(base.run.executed_rounds, got.run.executed_rounds) << where;
  EXPECT_EQ(base.run.node_steps, got.run.node_steps) << where;
  EXPECT_EQ(base.run.messages, got.run.messages) << where;
  EXPECT_EQ(base.run.bits, got.run.bits) << where;
  EXPECT_EQ(base.run.completed, got.run.completed) << where;
  EXPECT_EQ(base.run.congest_violations, got.run.congest_violations) << where;
  EXPECT_EQ(base.run.elected, got.run.elected) << where;
  EXPECT_EQ(base.run.non_elected, got.run.non_elected) << where;
  EXPECT_EQ(base.run.undecided, got.run.undecided) << where;
  EXPECT_EQ(base.run.last_status_change, got.run.last_status_change) << where;
  EXPECT_EQ(base.run.last_progress, got.run.last_progress) << where;
  EXPECT_EQ(base.run.crashed, got.run.crashed) << where;
  EXPECT_EQ(base.run.recoveries, got.run.recoveries) << where;
  EXPECT_EQ(base.run.adv_crash_drops, got.run.adv_crash_drops) << where;
  EXPECT_EQ(base.run.adv_drops, got.run.adv_drops) << where;
  EXPECT_EQ(base.run.adv_dups, got.run.adv_dups) << where;
  EXPECT_EQ(base.run.adv_delays, got.run.adv_delays) << where;
  EXPECT_EQ(base.run.undecided_nodes, got.run.undecided_nodes) << where;
  ASSERT_EQ(base.statuses.size(), got.statuses.size()) << where;
  for (NodeId s = 0; s < base.statuses.size(); ++s)
    EXPECT_EQ(base.statuses[s], got.statuses[s]) << where << " node " << s;
  EXPECT_EQ(base.sent_by_node, got.sent_by_node) << where;
}

struct Cell {
  const char* name;
  Graph graph;
  ProcessFactory factory;
  RunOptions opt;
  /// Adversarial cells may legitimately fail to elect (that's the scenario
  /// layer's concern, not this test's) — they only have to fail identically.
  bool require_completed = true;
};

std::vector<Cell> matrix() {
  std::vector<Cell> cells;
  const auto add = [&cells](const char* name, Graph g, ProcessFactory f,
                            RunOptions opt) {
    cells.push_back(Cell{name, std::move(g), std::move(f), std::move(opt)});
  };

  RunOptions opt;
  add("flood_max/complete12", make_complete(12), make_flood_max(), opt);
  add("flood_max/grid4x6", make_grid(4, 6), make_flood_max(), opt);

  opt = RunOptions{};
  opt.ids = IdScheme::RandomPermutation;
  opt.max_rounds = Round{1} << 62;
  add("dfs/cycle24", make_cycle(24), make_dfs_election(), opt);

  {
    Rng rng(0xFA417ULL);
    Graph g = make_random_connected(40, 100, rng);
    opt = RunOptions{};
    opt.knowledge = Knowledge::of_n(g.n());
    add("least_el_all/gnm40_100", std::move(g),
        make_least_el(LeastElConfig::all_candidates()), opt);
  }

  opt = RunOptions{};
  opt.max_rounds = 1'000'000;
  add("kingdom/cycle24", make_cycle(24), make_kingdom(), opt);

  opt = RunOptions{};
  opt.knowledge = Knowledge::of_n(64);
  add("sublinear/complete64", make_complete(64), make_sublinear_complete(),
      opt);

  opt = RunOptions{};
  add("size_estimate/cycle24", make_cycle(24), make_size_estimate_elect(),
      opt);

  opt = RunOptions{};
  opt.knowledge = Knowledge::of_n(24);
  add("clustering/grid4x6", make_grid(4, 6), make_clustering(), opt);

  {
    Rng rng(0xFA417ULL);
    Graph g = make_random_connected(40, 100, rng);
    opt = RunOptions{};
    opt.knowledge = Knowledge::of_n(g.n());
    add("spanner_elect/gnm40_100", std::move(g),
        make_spanner_elect(SpannerElectConfig{3, 0}), opt);
  }

  // Dense rounds at a size where shards hold real work and the scatter pass
  // crosses its 16x threshold with cutoff=1 (K96: ~9k envelopes per round).
  opt = RunOptions{};
  add("flood_max/complete96", make_complete(96), make_flood_max(), opt);

  {
    const Dumbbell db = make_dumbbell(32, 60, 0, 3);
    opt = RunOptions{};
    opt.knowledge = Knowledge::of_n(db.graph.n());
    add("least_el_logn/dumbbell32_60", db.graph,
        make_least_el(LeastElConfig::variant_A(db.graph.n())), opt);
  }

  // Adversarial cells.  The adversary's coins are keyed by (seed, sender,
  // edge, per-sender send index) — never by execution order — so a faulty
  // run must be just as bit-for-bit reproducible across thread counts as a
  // clean one.  Cells with lossy faults run under a tight round cap and are
  // allowed to end undecided; the matrix then also pins the non-termination
  // diagnostics (last_progress, crashed, undecided_nodes) across threads.
  const auto add_adv = [&cells](const char* name, Graph g, ProcessFactory f,
                                RunOptions opt) {
    cells.push_back(Cell{name, std::move(g), std::move(f), std::move(opt),
                         /*require_completed=*/false});
  };

  opt = RunOptions{};
  opt.adversary.seed = 0xA11CE;
  opt.adversary.reorder = 0.5;
  add_adv("flood_max/complete12+reorder", make_complete(12), make_flood_max(),
          opt);

  opt = RunOptions{};
  opt.max_rounds = 20'000;
  opt.adversary.seed = 0xBEEF;
  opt.adversary.max_delay = 2;
  opt.adversary.drop = 0.10;
  add_adv("kingdom/cycle24+delay_drop", make_cycle(24), make_kingdom(), opt);

  opt = RunOptions{};
  opt.max_rounds = 5'000;
  opt.adversary.seed = 0xC4A5;
  opt.adversary.crashes = {{5, 2}, {17, 4}};
  add_adv("flood_max/grid4x6+crash", make_grid(4, 6), make_flood_max(), opt);

  // Churn cells: crash-RECOVERY intervals.  A rebirth replaces the process
  // mid-run (fresh state, per-incarnation RNG domain) and purges the dead
  // window's deliveries into adv_crash_drops — all of which must reproduce
  // bit-for-bit across thread counts, including the recovery coins.
  opt = RunOptions{};
  opt.max_rounds = 5'000;
  opt.adversary.seed = 0xC4A6;
  opt.adversary.crashes = {{5, 0, 4}, {17, 0, 6}};  // two empty first lives
  add_adv("flood_max/grid4x6+churn", make_grid(4, 6), make_flood_max(), opt);

  opt = RunOptions{};
  opt.max_rounds = 20'000;
  opt.adversary.seed = 0xBEE2;
  opt.adversary.max_delay = 2;
  opt.adversary.drop = 0.10;
  opt.adversary.crashes = {{7, 1, 5}};  // post-step rebirth, delivery mix on
  add_adv("kingdom/cycle24+churn_mix", make_cycle(24), make_kingdom(), opt);

  // Every fault class at once, on the one protocol calibrated as safe under
  // all of them (sublinear_complete, safe_under = kAll).
  opt = RunOptions{};
  opt.knowledge = Knowledge::of_n(32);
  opt.max_rounds = 5'000;
  opt.adversary.seed = 0xF17E;
  opt.adversary.max_delay = 1;
  opt.adversary.drop = 0.05;
  opt.adversary.duplicate = 0.05;
  opt.adversary.reorder = 0.3;
  opt.adversary.crashes = {{3, 3}};
  add_adv("sublinear/complete32+all_faults", make_complete(32),
          make_sublinear_complete(), opt);

  return cells;
}

TEST(ParallelDeterminism, MatrixIdenticalAtEveryThreadCount) {
  const unsigned kThreads[] = {2, 3, 8};
  for (Cell& cell : matrix()) {
    for (std::uint64_t seed = 1; seed <= 2; ++seed) {
      RunOptions opt = cell.opt;
      opt.seed = seed;
      opt.threads = 1;
      const ElectionReport base = run_snapshot(cell.graph, cell.factory, opt);
      if (cell.require_completed) ASSERT_TRUE(base.run.completed) << cell.name;
      for (const unsigned t : kThreads) {
        opt.threads = t;
        opt.parallel_cutoff = 1;  // force even tiny rounds onto the pool
        const ElectionReport got = run_snapshot(cell.graph, cell.factory, opt);
        expect_identical(base, got,
                         std::string(cell.name) + " seed " +
                             std::to_string(seed) + " threads " +
                             std::to_string(t));
      }
    }
  }
}

TEST(ParallelDeterminism, DefaultCutoffKeepsSmallGraphsSequentialAndIdentical) {
  // Without the cutoff override, small graphs should take the sequential
  // fallback inside a threads>1 engine — and still match, trivially.
  RunOptions opt;
  opt.seed = 7;
  const Graph g = make_complete(12);
  opt.threads = 1;
  const ElectionReport base = run_snapshot(g, make_flood_max(), opt);
  opt.threads = 4;
  const ElectionReport got = run_snapshot(g, make_flood_max(), opt);
  expect_identical(base, got, "flood_max/complete12 default cutoff");
}

TEST(ParallelDeterminism, CongestEnforceThrowsAtEveryThreadCount) {
  // A protocol that double-sends on one port must throw under Enforce on
  // the parallel path too (the first worker error in shard order).
  class DoubleSend final : public Process {
   public:
    void on_wake(Context& ctx, std::span<const Envelope>) override {
      FlatMsg m;
      m.type = 1;
      m.channel = 99;
      m.bits = 64;
      ctx.send(0, m);
      ctx.send(0, m);
      ctx.halt();
    }
    void on_round(Context&, std::span<const Envelope>) override {}
  };
  const Graph g = make_complete(8);
  for (const unsigned t : {1u, 4u}) {
    EngineConfig cfg;
    cfg.congest = CongestMode::Enforce;
    cfg.threads = t;
    cfg.parallel_cutoff = 1;
    SyncEngine eng(g, cfg);
    eng.init_processes(
        [](NodeId) { return std::make_unique<DoubleSend>(); });
    EXPECT_THROW(eng.run(), std::runtime_error) << "threads " << t;
  }
}

}  // namespace
}  // namespace ule
