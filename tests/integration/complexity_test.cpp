// Cross-cutting complexity-shape checks: the Table 1 claims as assertions.

#include <gtest/gtest.h>

#include <cmath>

#include "election/least_el.hpp"
#include "graphgen/generators.hpp"
#include "graphgen/graph_algos.hpp"
#include "helpers.hpp"
#include "net/engine.hpp"
#include "scenario/registry.hpp"

namespace ule {
namespace {

/// Registry-backed factory (no ad hoc re-declaration of protocol configs):
/// grants exactly the protocol's required knowledge for this graph.
/// `diameter` only matters for protocols whose config embeds D.
ProcessFactory registered(const char* name, const Graph& g, RunOptions& opt,
                          std::uint32_t diameter = 0) {
  return prepare_protocol(default_protocols().at(name), shape_of(g, diameter),
                          opt);
}

TEST(Complexity, LeastElTimeScalesWithDiameterNotN) {
  // Same n, different D: time tracks D.
  Rng rng(1);
  const Graph dense = make_random_connected(120, 1500, rng);  // small D
  const Graph ring = make_cycle(120);                         // D = 60
  RunOptions opt;
  opt.seed = 5;
  const auto fast = run_election(dense, registered("least_el_all", dense, opt), opt);
  const auto slow = run_election(ring, registered("least_el_all", ring, opt), opt);
  EXPECT_TRUE(fast.verdict.unique_leader);
  EXPECT_TRUE(slow.verdict.unique_leader);
  EXPECT_LT(fast.run.rounds * 4, slow.run.rounds);
}

TEST(Complexity, LeastElMessagesScaleLinearlyWithM) {
  // Fixed n, growing m: messages/m stays within a narrow band (the log n
  // factor is constant across the sweep).
  Rng rng(2);
  const std::size_t n = 150;
  std::vector<double> ratio;
  for (const std::size_t m : {300u, 900u, 2700u}) {
    const Graph g = make_random_connected(n, m, rng);
    RunOptions opt;
    opt.seed = 9;
    const auto rep = run_election(g, registered("least_el_all", g, opt), opt);
    EXPECT_TRUE(rep.verdict.unique_leader);
    ratio.push_back(static_cast<double>(rep.run.messages) / m);
  }
  for (std::size_t i = 1; i < ratio.size(); ++i) {
    EXPECT_LT(ratio[i], ratio[0] * 2.5) << "superlinear growth in m";
    EXPECT_GT(ratio[i], ratio[0] / 2.5);
  }
}

TEST(Complexity, DfsMessagesFlatAcrossDiameters) {
  // Theorem 4.1's O(m) is universal: messages/m in a tight band on graphs
  // with wildly different diameters.
  Rng rng(3);
  const std::vector<Graph> graphs = {make_cycle(100), make_complete(15),
                                     make_star(100),
                                     make_random_connected(80, 320, rng)};
  for (const Graph& g : graphs) {
    RunOptions opt;
    opt.seed = 13;
    opt.max_rounds = Round{1} << 62;
    const auto rep = run_election(g, registered("dfs", g, opt), opt);
    EXPECT_TRUE(rep.verdict.unique_leader) << g.summary();
    const double ratio = static_cast<double>(rep.run.messages) /
                         static_cast<double>(g.m());
    EXPECT_LE(ratio, 4.5) << g.summary();
  }
}

TEST(Complexity, CandidateReductionOrdersMessageCosts) {
  // f(n) = n  >  f(n) = log n  >  f(n) = const, in expected messages
  // (Theorem 4.4's trade-off), all on the same dense graph.
  Rng rng(4);
  const Graph g = make_random_connected(250, 2500, rng);
  auto mean_msgs = [&](const ProcessFactory& factory, const RunOptions& base) {
    std::uint64_t total = 0;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      RunOptions opt = base;
      opt.seed = seed;
      total += run_election(g, factory, opt).run.messages;
    }
    return total / 5;
  };
  RunOptions fopt, lopt;
  const auto full = mean_msgs(registered("least_el_all", g, fopt), fopt);
  const auto logn = mean_msgs(registered("least_el_logn", g, lopt), lopt);
  // A genuinely small constant f: variant_B(eps) = 4 ln(1/eps) only drops
  // below log2 n for n > 2^{4 ln(1/eps)} -- at n = 250 that needs
  // eps >~ 0.25, so use f = 2 directly for an unambiguous ordering (an
  // ablation config, deliberately not a registry entry).
  RunOptions copt;
  copt.knowledge = Knowledge::of_n(g.n());
  const auto constant =
      mean_msgs(make_least_el(LeastElConfig::theorem_4_4(2.0)), copt);
  EXPECT_GT(full, logn);
  EXPECT_GE(logn, constant);
}

TEST(Complexity, KingdomMessagesTrackMLogN) {
  // Ratio messages/(m log n) stays bounded across sizes.
  std::vector<double> ratios;
  Rng rng(5);
  for (const std::size_t n : {32u, 64u, 128u}) {
    const Graph g = make_random_connected(n, 4 * n, rng);
    RunOptions opt;
    opt.seed = 3;
    const auto rep = run_election(g, registered("kingdom", g, opt), opt);
    EXPECT_TRUE(rep.verdict.unique_leader);
    ratios.push_back(static_cast<double>(rep.run.messages) /
                     (g.m() * std::log2(static_cast<double>(n))));
  }
  for (const double r : ratios) EXPECT_LE(r, 16.0);
}

TEST(Complexity, ClusteringWinsOnDenseLosesOnSparse) {
  // The regime split the paper's Theorem 4.7 motivates: on dense graphs
  // O(m + n log n) < O(m log n); on very sparse graphs the overhead can
  // flip the order.
  Rng rng(6);
  const Graph dense = make_random_connected(150, 4000, rng);
  RunOptions opt;
  opt.seed = 21;
  const auto cl = run_election(dense, registered("clustering", dense, opt), opt);
  const auto le =
      run_election(dense, registered("least_el_all", dense, opt), opt);
  EXPECT_TRUE(cl.verdict.unique_leader);
  EXPECT_TRUE(le.verdict.unique_leader);
  EXPECT_LT(cl.run.messages, le.run.messages);
}

TEST(Complexity, StatusesStabilizeBeforeQuiescence) {
  // Section 2's definition: "from round T on" — last_status_change is a
  // valid T and never exceeds total rounds.
  const auto fams = testing::standard_families();
  for (const auto& fam : fams) {
    RunOptions opt;
    opt.seed = 2;
    const auto rep = run_election(
        fam.graph, registered("least_el_all", fam.graph, opt), opt);
    EXPECT_TRUE(rep.verdict.unique_leader) << fam.name;
    EXPECT_LE(rep.run.last_status_change, rep.run.rounds) << fam.name;
  }
}

}  // namespace
}  // namespace ule
