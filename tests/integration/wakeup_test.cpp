// Adversarial wakeup: nodes wake at arbitrary rounds (and on message
// arrival), with at least one node awake at round 0 — the classical model
// the paper contrasts with simultaneous wakeup.  "The analysis of some of
// the algorithms holds even for the case of adversarial wakeup" (Section 2);
// Theorem 4.1 explicitly adds a wakeup phase for it.
//
// The engine realizes wake-on-message: a sleeping node that receives a
// message is woken that round, so any algorithm whose first action floods
// effectively wakes the whole graph within D rounds of the first waker.

#include <gtest/gtest.h>

#include <algorithm>

#include "election/dfs_election.hpp"
#include "election/flood_max.hpp"
#include "election/kingdom.hpp"
#include "election/least_el.hpp"
#include "election/size_estimate.hpp"
#include "graphgen/generators.hpp"
#include "net/engine.hpp"

namespace ule {
namespace {

std::vector<Round> staggered_schedule(std::size_t n, std::uint64_t seed,
                                      Round span) {
  Rng rng(seed);
  std::vector<Round> wake(n);
  for (auto& w : wake) w = rng.below(span + 1);
  wake[rng.below(n)] = 0;  // at least one node initially awake
  return wake;
}

class WakeupTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WakeupTest, FloodMaxElectsUnderStaggeredWakeup) {
  Rng rng(31);
  const Graph g = make_random_connected(40, 90, rng);
  RunOptions opt;
  opt.seed = GetParam();
  opt.wakeup = staggered_schedule(g.n(), GetParam() * 101, 50);
  const auto rep = run_election(g, make_flood_max(), opt);
  EXPECT_TRUE(rep.verdict.unique_leader);
}

TEST_P(WakeupTest, LeastElAllCandidatesElectsUnderStaggeredWakeup) {
  Rng rng(33);
  const Graph g = make_random_connected(36, 100, rng);
  RunOptions opt;
  opt.seed = GetParam();
  opt.wakeup = staggered_schedule(g.n(), GetParam() * 103, 40);
  const auto rep =
      run_election(g, make_least_el(LeastElConfig::all_candidates()), opt);
  EXPECT_TRUE(rep.verdict.unique_leader);
}

TEST_P(WakeupTest, SizeEstimateElectsUnderStaggeredWakeup) {
  const Graph g = make_grid(5, 6);
  RunOptions opt;
  opt.seed = GetParam();
  opt.wakeup = staggered_schedule(g.n(), GetParam() * 107, 30);
  const auto rep = run_election(g, make_size_estimate_elect(), opt);
  EXPECT_TRUE(rep.verdict.unique_leader);
}

TEST_P(WakeupTest, KingdomElectsUnderStaggeredWakeup) {
  // Algorithm 2's safety argument is timing-free; staggered starts only
  // shift which claims collide.
  Rng rng(35);
  const Graph g = make_random_connected(30, 70, rng);
  RunOptions opt;
  opt.seed = GetParam();
  opt.max_rounds = 1'000'000;
  opt.wakeup = staggered_schedule(g.n(), GetParam() * 109, 60);
  const auto rep = run_election(g, make_kingdom(), opt);
  EXPECT_TRUE(rep.verdict.unique_leader);
  EXPECT_TRUE(rep.run.completed);
}

TEST_P(WakeupTest, DfsWithWakeupPhaseElects) {
  // Theorem 4.1's wakeup phase: a BFS wave wakes everyone (2m messages,
  // <= D rounds), then agents launch.  Total stays O(m).
  const Graph g = make_lollipop(6, 10);
  DfsConfig cfg;
  cfg.wake_broadcast = true;
  RunOptions opt;
  opt.seed = GetParam();
  opt.ids = IdScheme::RandomPermutation;
  opt.max_rounds = Round{1} << 62;
  opt.wakeup = staggered_schedule(g.n(), GetParam() * 113, 25);
  const auto rep = run_election(g, make_dfs_election(cfg), opt);
  EXPECT_TRUE(rep.verdict.unique_leader);
  // O(m): wakeup 2m + agents ~4m + bounded pre-wake wandering.
  EXPECT_LE(rep.run.messages, 8 * g.m() + 2 * g.n());
}

INSTANTIATE_TEST_SUITE_P(Seeds, WakeupTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(Wakeup, LateWakersAreWokenByMessagesNotSchedule) {
  // A node scheduled to wake at round 10^6 is dragged in by the flood long
  // before that: total time stays O(span + D), not O(latest wakeup).
  const Graph g = make_path(20);
  RunOptions opt;
  opt.seed = 5;
  std::vector<Round> wake(g.n(), Round{1'000'000});
  wake[0] = 0;
  opt.wakeup = wake;
  const auto rep = run_election(g, make_flood_max(), opt);
  EXPECT_TRUE(rep.verdict.unique_leader);
  EXPECT_LE(rep.run.rounds, 200u);
}

TEST(Wakeup, SimultaneousIsTheDefault) {
  const Graph g = make_cycle(12);
  RunOptions opt;
  opt.seed = 2;
  const auto a = run_election(g, make_flood_max(), opt);
  opt.wakeup = std::vector<Round>(g.n(), 0);
  const auto b = run_election(g, make_flood_max(), opt);
  EXPECT_EQ(a.run.rounds, b.run.rounds);
  EXPECT_EQ(a.run.messages, b.run.messages);
}

}  // namespace
}  // namespace ule
