// CONGEST honesty, checked everywhere: every algorithm x every graph family
// must send at most one O(log n)-bit message per edge direction per round.
// The engine counts violations; a clean implementation has exactly zero.
// This is what makes the Table-1 message/time measurements comparable to the
// paper's CONGEST-model claims.

#include <gtest/gtest.h>

#include "election/clustering.hpp"
#include "election/dfs_election.hpp"
#include "election/explicit_elect.hpp"
#include "election/flood_max.hpp"
#include "election/kingdom.hpp"
#include "election/least_el.hpp"
#include "election/size_estimate.hpp"
#include "helpers.hpp"
#include "net/engine.hpp"
#include "spanner/spanner_elect.hpp"

namespace ule {
namespace {

using testing::Family;

struct CongestAlgo {
  std::string name;
  std::function<ProcessFactory(const Family&, RunOptions&)> prepare;
};

std::vector<CongestAlgo> congest_algorithms() {
  std::vector<CongestAlgo> algos;
  algos.push_back({"flood_max", [](const Family&, RunOptions&) {
                     return make_flood_max();
                   }});
  algos.push_back({"least_el_all", [](const Family& f, RunOptions& opt) {
                     opt.knowledge = Knowledge::of_n(f.graph.n());
                     return make_least_el(LeastElConfig::all_candidates());
                   }});
  algos.push_back({"least_el_logn", [](const Family& f, RunOptions& opt) {
                     opt.knowledge = Knowledge::of_n(f.graph.n());
                     return make_least_el(
                         LeastElConfig::variant_A(f.graph.n()));
                   }});
  algos.push_back({"las_vegas", [](const Family& f, RunOptions& opt) {
                     opt.knowledge = Knowledge::of_n_d(f.graph.n(), f.diameter);
                     return make_least_el(LeastElConfig::las_vegas(f.diameter));
                   }});
  algos.push_back({"size_estimate", [](const Family&, RunOptions&) {
                     return make_size_estimate_elect();
                   }});
  algos.push_back({"clustering", [](const Family& f, RunOptions& opt) {
                     opt.knowledge = Knowledge::of_n(f.graph.n());
                     return make_clustering();
                   }});
  algos.push_back({"kingdom", [](const Family&, RunOptions& opt) {
                     opt.max_rounds = 1'000'000;
                     return make_kingdom();
                   }});
  algos.push_back({"dfs", [](const Family&, RunOptions& opt) {
                     opt.ids = IdScheme::RandomPermutation;
                     opt.max_rounds = Round{1} << 62;
                     return make_dfs_election();
                   }});
  algos.push_back({"spanner_elect", [](const Family& f, RunOptions& opt) {
                     opt.knowledge = Knowledge::of_n(f.graph.n());
                     return make_spanner_elect(SpannerElectConfig{3, 0});
                   }});
  algos.push_back({"explicit_flood_max", [](const Family&, RunOptions&) {
                     return make_explicit(make_flood_max());
                   }});
  return algos;
}

class CongestMatrixTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(CongestMatrixTest, ZeroViolations) {
  static const std::vector<Family> fams = testing::standard_families();
  static const std::vector<CongestAlgo> algos = congest_algorithms();
  const auto [fi, ai] = GetParam();
  const Family& fam = fams[fi];
  const CongestAlgo& algo = algos[ai];

  RunOptions opt;
  opt.seed = 1000 + fi * 17 + ai;
  opt.congest = CongestMode::Count;
  const ProcessFactory factory = algo.prepare(fam, opt);
  const ElectionReport rep = run_election(fam.graph, factory, opt);
  EXPECT_EQ(rep.run.congest_violations, 0u)
      << algo.name << " on " << fam.name;
  EXPECT_TRUE(rep.verdict.unique_leader) << algo.name << " on " << fam.name;
}

std::string congest_name(
    const ::testing::TestParamInfo<std::tuple<std::size_t, std::size_t>>&
        info) {
  static const std::vector<Family> fams = testing::standard_families();
  static const std::vector<CongestAlgo> algos = congest_algorithms();
  std::string s = algos[std::get<1>(info.param)].name + "_on_" +
                  fams[std::get<0>(info.param)].name;
  for (char& c : s)
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  return s;
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, CongestMatrixTest,
    ::testing::Combine(::testing::Range<std::size_t>(0, 16),
                       ::testing::Range<std::size_t>(0, 10)),
    congest_name);

// In Enforce mode the engine throws on the first violation; a clean
// algorithm must survive an entire enforced run.
TEST(CongestEnforce, LeastElSurvivesEnforcement) {
  const Graph g = make_complete(12);
  RunOptions opt;
  opt.seed = 3;
  opt.knowledge = Knowledge::of_n(g.n());
  opt.congest = CongestMode::Enforce;
  EXPECT_NO_THROW({
    const auto rep =
        run_election(g, make_least_el(LeastElConfig::all_candidates()), opt);
    EXPECT_TRUE(rep.verdict.unique_leader);
  });
}

TEST(CongestEnforce, KingdomSurvivesEnforcement) {
  Rng rng(5);
  const Graph g = make_random_connected(30, 90, rng);
  RunOptions opt;
  opt.seed = 4;
  opt.congest = CongestMode::Enforce;
  opt.max_rounds = 1'000'000;
  EXPECT_NO_THROW({
    const auto rep = run_election(g, make_kingdom(), opt);
    EXPECT_TRUE(rep.verdict.unique_leader);
  });
}

}  // namespace
}  // namespace ule
