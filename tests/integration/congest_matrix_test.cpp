// CONGEST honesty, checked everywhere: every REGISTERED protocol x every
// graph family must send at most one O(log n)-bit message per edge direction
// per round.  The engine counts violations; a clean implementation has
// exactly zero.  This is what makes the Table-1 message/time measurements
// comparable to the paper's CONGEST-model claims.
//
// The protocol list is the scenario registry (scenario/registry.hpp):
// registering a protocol automatically adds its rows here.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "election/kingdom.hpp"
#include "election/least_el.hpp"
#include "helpers.hpp"
#include "net/engine.hpp"
#include "scenario/registry.hpp"

namespace ule {
namespace {

using testing::Family;

const std::vector<Family>& families() {
  static const std::vector<Family> fams = testing::standard_families();
  return fams;
}

struct Cell {
  std::size_t fam;
  std::size_t proto;
};

const std::vector<Cell>& cells() {
  static const std::vector<Cell> all = [] {
    std::vector<Cell> out;
    const auto& protos = default_protocols().all();
    for (std::size_t fi = 0; fi < families().size(); ++fi) {
      // The same completeness definition the runner itself enforces.
      const bool complete =
          shape_of(families()[fi].graph, families()[fi].diameter).complete;
      for (std::size_t pi = 0; pi < protos.size(); ++pi) {
        if (protos[pi].needs_complete && !complete) continue;
        out.push_back({fi, pi});
      }
    }
    return out;
  }();
  return all;
}

class CongestMatrixTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CongestMatrixTest, ZeroViolations) {
  const Cell& cell = cells()[GetParam()];
  const Family& fam = families()[cell.fam];
  const ProtocolInfo& proto = default_protocols().all()[cell.proto];

  RunOptions opt;
  opt.seed = 1000 + cell.fam * 17 + cell.proto;
  opt.congest = CongestMode::Count;
  const ScenarioShape shape = shape_of(fam.graph, fam.diameter);
  const ProcessFactory factory = prepare_protocol(proto, shape, opt);
  const ElectionReport rep = run_election(fam.graph, factory, opt);
  EXPECT_EQ(rep.run.congest_violations, 0u)
      << proto.name << " on " << fam.name;
  EXPECT_LE(rep.verdict.elected, 1u) << proto.name << " on " << fam.name;
  if (proto.contract != Contract::MonteCarlo) {
    EXPECT_TRUE(rep.verdict.unique_leader)
        << proto.name << " on " << fam.name;
  }
  EXPECT_TRUE(rep.run.completed) << proto.name << " on " << fam.name;
}

std::string congest_name(const ::testing::TestParamInfo<std::size_t>& info) {
  const Cell& cell = cells()[info.param];
  std::string s = default_protocols().all()[cell.proto].name + "_on_" +
                  families()[cell.fam].name;
  for (char& c : s)
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  return s;
}

INSTANTIATE_TEST_SUITE_P(AllPairs, CongestMatrixTest,
                         ::testing::Range<std::size_t>(0, cells().size()),
                         congest_name);

// In Enforce mode the engine throws on the first violation; a clean
// algorithm must survive an entire enforced run.
TEST(CongestEnforce, LeastElSurvivesEnforcement) {
  const Graph g = make_complete(12);
  RunOptions opt;
  opt.seed = 3;
  opt.knowledge = Knowledge::of_n(g.n());
  opt.congest = CongestMode::Enforce;
  EXPECT_NO_THROW({
    const auto rep =
        run_election(g, make_least_el(LeastElConfig::all_candidates()), opt);
    EXPECT_TRUE(rep.verdict.unique_leader);
  });
}

TEST(CongestEnforce, KingdomSurvivesEnforcement) {
  Rng rng(5);
  const Graph g = make_random_connected(30, 90, rng);
  RunOptions opt;
  opt.seed = 4;
  opt.congest = CongestMode::Enforce;
  opt.max_rounds = 1'000'000;
  EXPECT_NO_THROW({
    const auto rep = run_election(g, make_kingdom(), opt);
    EXPECT_TRUE(rep.verdict.unique_leader);
  });
}

}  // namespace
}  // namespace ule
