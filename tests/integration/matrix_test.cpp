// The cross-product: every algorithm in the paper x every graph family.
// Each cell asserts the algorithm's own success contract (deterministic /
// Las Vegas algorithms must always elect; Monte Carlo ones must elect for
// the tested seeds, which are chosen within the whp regime).

#include <gtest/gtest.h>

#include "election/clustering.hpp"
#include "election/dfs_election.hpp"
#include "election/flood_max.hpp"
#include "election/kingdom.hpp"
#include "election/least_el.hpp"
#include "election/size_estimate.hpp"
#include "graphgen/graph_algos.hpp"
#include "helpers.hpp"
#include "net/engine.hpp"
#include "spanner/spanner_elect.hpp"

namespace ule {
namespace {

using testing::Family;

struct AlgoSpec {
  std::string name;
  /// Builds the factory and fills in required knowledge for this graph.
  std::function<ProcessFactory(const Family&, RunOptions&)> prepare;
};

std::vector<AlgoSpec> algorithms() {
  std::vector<AlgoSpec> algos;
  algos.push_back({"flood_max", [](const Family&, RunOptions&) {
                     return make_flood_max();
                   }});
  algos.push_back({"least_el_all", [](const Family& f, RunOptions& opt) {
                     opt.knowledge = Knowledge::of_n(f.graph.n());
                     return make_least_el(LeastElConfig::all_candidates());
                   }});
  algos.push_back({"least_el_logn", [](const Family& f, RunOptions& opt) {
                     opt.knowledge = Knowledge::of_n(f.graph.n());
                     return make_least_el(LeastElConfig::variant_A(f.graph.n()));
                   }});
  algos.push_back({"las_vegas", [](const Family& f, RunOptions& opt) {
                     opt.knowledge = Knowledge::of_n_d(f.graph.n(), f.diameter);
                     return make_least_el(
                         LeastElConfig::las_vegas(f.diameter));
                   }});
  algos.push_back({"size_estimate", [](const Family&, RunOptions&) {
                     return make_size_estimate_elect();
                   }});
  algos.push_back({"clustering", [](const Family& f, RunOptions& opt) {
                     opt.knowledge = Knowledge::of_n(f.graph.n());
                     return make_clustering();
                   }});
  algos.push_back({"kingdom", [](const Family&, RunOptions& opt) {
                     opt.max_rounds = 1'000'000;
                     return make_kingdom();
                   }});
  algos.push_back({"kingdom_knownD", [](const Family& f, RunOptions& opt) {
                     opt.knowledge = Knowledge::of_n_d(f.graph.n(), f.diameter);
                     KingdomConfig cfg;
                     cfg.known_diameter = std::max<std::uint64_t>(1, f.diameter);
                     return make_kingdom(cfg);
                   }});
  algos.push_back({"dfs", [](const Family&, RunOptions& opt) {
                     opt.ids = IdScheme::RandomPermutation;
                     opt.max_rounds = Round{1} << 62;
                     return make_dfs_election();
                   }});
  algos.push_back({"spanner_elect", [](const Family& f, RunOptions& opt) {
                     opt.knowledge = Knowledge::of_n(f.graph.n());
                     return make_spanner_elect(SpannerElectConfig{3, 0});
                   }});
  return algos;
}

class MatrixTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(MatrixTest, UniqueLeaderOnEveryFamily) {
  static const std::vector<Family> fams = testing::standard_families();
  static const std::vector<AlgoSpec> algos = algorithms();
  const auto [fi, ai] = GetParam();
  const Family& fam = fams[fi];
  const AlgoSpec& algo = algos[ai];

  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    RunOptions opt;
    opt.seed = seed * 7919 + fi * 131 + ai;
    const ProcessFactory factory = algo.prepare(fam, opt);
    const ElectionReport rep = run_election(fam.graph, factory, opt);
    EXPECT_TRUE(rep.verdict.unique_leader)
        << algo.name << " on " << fam.name << " seed " << seed
        << " elected=" << rep.verdict.elected
        << " undecided=" << rep.verdict.undecided;
    EXPECT_TRUE(rep.run.completed) << algo.name << " on " << fam.name;
  }
}

std::string matrix_name(
    const ::testing::TestParamInfo<std::tuple<std::size_t, std::size_t>>& info) {
  static const std::vector<Family> fams = testing::standard_families();
  static const std::vector<AlgoSpec> algos = algorithms();
  std::string s = algos[std::get<1>(info.param)].name + "_on_" +
                  fams[std::get<0>(info.param)].name;
  for (char& c : s)
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  return s;
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, MatrixTest,
    ::testing::Combine(::testing::Range<std::size_t>(0, 16),
                       ::testing::Range<std::size_t>(0, 10)),
    matrix_name);

}  // namespace
}  // namespace ule
