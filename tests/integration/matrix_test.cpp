// The conformance matrix, driven by the scenario registry: every registered
// protocol x every standard graph family x every wakeup schedule the
// protocol tolerates.  Each cell asserts the protocol's registered success
// contract (see scenario/registry.hpp):
//
//   Deterministic / Las Vegas   a unique leader on every run;
//   Monte Carlo                 safety always (never two leaders; a leader
//                               implies everyone else decided), and at
//                               least one of the tested seeds elects when
//                               every node participates (the whp regime —
//                               under single wakeup a candidate-free waker
//                               may legitimately leave the network silent).
//
// The protocol list lives in the registry, not here: registering a protocol
// adds its row to this matrix, the CONGEST matrix, the Table-1 bench and the
// conformance fuzzer at once.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "helpers.hpp"
#include "net/engine.hpp"
#include "net/wakeup.hpp"
#include "scenario/registry.hpp"

namespace ule {
namespace {

using testing::Family;

struct Cell {
  std::size_t fam;
  std::size_t proto;
  WakeupKind wakeup;
};

const std::vector<Family>& families() {
  static const std::vector<Family> fams = testing::standard_families();
  return fams;
}

const std::vector<Cell>& cells() {
  static const std::vector<Cell> all = [] {
    const std::vector<Family>& fams = families();
    const auto& protos = default_protocols().all();
    std::vector<Cell> out;
    for (std::size_t fi = 0; fi < fams.size(); ++fi) {
      // The same completeness definition the runner itself enforces.
      const bool complete = shape_of(fams[fi].graph, fams[fi].diameter).complete;
      for (std::size_t pi = 0; pi < protos.size(); ++pi) {
        if (protos[pi].needs_complete && !complete) continue;
        out.push_back({fi, pi, WakeupKind::Simultaneous});
        if (protos[pi].wakeup_tolerant) {
          out.push_back({fi, pi, WakeupKind::Random});
          out.push_back({fi, pi, WakeupKind::Single});
        }
      }
    }
    return out;
  }();
  return all;
}

class MatrixTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MatrixTest, RegisteredContractHoldsOnEveryFamily) {
  const Cell& cell = cells()[GetParam()];
  const Family& fam = families()[cell.fam];
  const ProtocolInfo& proto = default_protocols().all()[cell.proto];
  const std::size_t n = fam.graph.n();

  constexpr Round kSpread = 40;
  const ScenarioShape shape = shape_of(
      fam.graph, fam.diameter,
      cell.wakeup == WakeupKind::Random ? kSpread : Round{0},
      cell.wakeup != WakeupKind::Simultaneous);

  bool any_elected = false;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    RunOptions opt;
    opt.seed = seed * 7919 + cell.fam * 131 + cell.proto * 17 +
               static_cast<std::uint64_t>(cell.wakeup);
    Rng wrng(opt.seed * 65537 + 11);
    if (cell.wakeup == WakeupKind::Random) {
      opt.wakeup = random_wakeup(n, kSpread, wrng);
    } else if (cell.wakeup == WakeupKind::Single) {
      opt.wakeup = single_wakeup(n, static_cast<NodeId>(wrng.below(n)));
    }
    const ProcessFactory factory = prepare_protocol(proto, shape, opt);
    const ElectionReport rep = run_election(fam.graph, factory, opt);
    const std::string where = proto.name + " on " + fam.name + " wakeup " +
                              to_string(cell.wakeup) + " seed " +
                              std::to_string(seed);

    EXPECT_TRUE(rep.run.completed) << where;
    EXPECT_LE(rep.verdict.elected, 1u) << where;
    if (proto.contract != Contract::MonteCarlo) {
      EXPECT_TRUE(rep.verdict.unique_leader)
          << where << " elected=" << rep.verdict.elected
          << " undecided=" << rep.verdict.undecided;
    } else if (rep.verdict.elected == 1) {
      EXPECT_EQ(rep.verdict.undecided, 0u) << where;
    }
    any_elected = any_elected || rep.verdict.unique_leader;
  }

  // Monte Carlo liveness in the whp regime: when every node participates
  // (simultaneous or random wakeup wakes everyone spontaneously), three
  // seeds failing to produce any candidate would be a ~1e-5 event.
  if (proto.contract == Contract::MonteCarlo &&
      cell.wakeup != WakeupKind::Single) {
    EXPECT_TRUE(any_elected)
        << proto.name << " on " << fam.name << ": no seed elected";
  }
}

std::string cell_name(const ::testing::TestParamInfo<std::size_t>& info) {
  const Cell& cell = cells()[info.param];
  std::string s = default_protocols().all()[cell.proto].name + "_on_" +
                  families()[cell.fam].name + "_" + to_string(cell.wakeup);
  for (char& c : s)
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  return s;
}

INSTANTIATE_TEST_SUITE_P(AllCells, MatrixTest,
                         ::testing::Range<std::size_t>(0, cells().size()),
                         cell_name);

}  // namespace
}  // namespace ule
