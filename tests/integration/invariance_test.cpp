// Invariance properties the model demands of every algorithm.
//
//  * Port-numbering invariance: the adversary assigns ports (Section 2);
//    shuffling them must never break the unique-leader guarantee, and for
//    deterministic wave algorithms must not even change the winner (the
//    max/min ID is port-independent).
//  * Fast-forward invariance: skipping quiescent rounds is a simulator
//    optimization; logical results (rounds, messages, statuses) must be
//    bit-identical with it on or off.
//  * Accounting invariants: bits >= messages * smallest-wire-size, edge
//    traffic sums to total messages, last_status_change <= rounds.

#include <gtest/gtest.h>

#include <numeric>

#include "election/flood_max.hpp"
#include "election/kingdom.hpp"
#include "election/least_el.hpp"
#include "graphgen/generators.hpp"
#include "net/engine.hpp"

namespace ule {
namespace {

struct RunSummary {
  RunResult run;
  ElectionVerdict verdict;
  Uid winner_uid = 0;
};

RunSummary engine_run(const Graph& g, const ProcessFactory& f,
                      std::uint64_t seed, bool fast_forward = true,
                      bool edge_traffic = false) {
  EngineConfig cfg;
  cfg.seed = seed;
  cfg.fast_forward = fast_forward;
  cfg.record_edge_traffic = edge_traffic;
  cfg.max_rounds = 2'000'000;
  SyncEngine eng(g, cfg);
  Rng id_rng(seed ^ 0xBEEF);
  eng.set_uids(assign_ids(g.n(), IdScheme::RandomFromZ, id_rng));
  eng.init_processes(f);
  RunSummary out;
  out.run = eng.run();
  out.verdict = judge_election(eng);
  if (out.verdict.unique_leader)
    out.winner_uid = eng.uid_of(out.verdict.leader_slot);
  if (edge_traffic) {
    const auto& traffic = eng.edge_traffic();
    const auto total =
        std::accumulate(traffic.begin(), traffic.end(), std::uint64_t{0});
    EXPECT_EQ(total, out.run.messages);
  }
  return out;
}

class PortShuffle : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PortShuffle, FloodMaxWinnerIsPortIndependent) {
  Rng grng(17);
  Graph g = make_random_connected(30, 75, grng);
  const RunSummary base = engine_run(g, make_flood_max(), 4);
  ASSERT_TRUE(base.verdict.unique_leader);

  Rng shuffle_rng(GetParam());
  g.shuffle_ports(shuffle_rng);
  const RunSummary shuffled = engine_run(g, make_flood_max(), 4);
  ASSERT_TRUE(shuffled.verdict.unique_leader);
  // The winner (max uid) cannot depend on port numbering; message count
  // cannot either (flood-max traffic is port-oblivious).
  EXPECT_EQ(shuffled.winner_uid, base.winner_uid);
  EXPECT_EQ(shuffled.run.messages, base.run.messages);
}

TEST_P(PortShuffle, KingdomStillElectsExactlyOne) {
  Rng grng(19);
  Graph g = make_random_connected(24, 50, grng);
  Rng shuffle_rng(GetParam() * 31);
  g.shuffle_ports(shuffle_rng);
  const RunSummary r = engine_run(g, make_kingdom(), 6);
  EXPECT_TRUE(r.verdict.unique_leader);
  EXPECT_TRUE(r.run.completed);
}

INSTANTIATE_TEST_SUITE_P(Shuffles, PortShuffle,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(FastForward, ResultsAreBitIdenticalOnOrOff) {
  // Kingdom has long quiet stretches between phases on a path; fast-forward
  // must change wall-clock only, never logical results.
  const Graph g = make_path(20);
  const RunSummary ff = engine_run(g, make_kingdom(), 9, true);
  const RunSummary slow = engine_run(g, make_kingdom(), 9, false);
  EXPECT_EQ(ff.run.rounds, slow.run.rounds);
  EXPECT_EQ(ff.run.messages, slow.run.messages);
  EXPECT_EQ(ff.run.bits, slow.run.bits);
  EXPECT_EQ(ff.verdict.leader_slot, slow.verdict.leader_slot);
}

TEST(Accounting, BitsAtLeastMessagesTimesMinWireSize) {
  Rng grng(23);
  const Graph g = make_random_connected(40, 100, grng);
  const RunSummary r = engine_run(g, make_flood_max(), 2);
  EXPECT_GE(r.run.bits, r.run.messages * wire::kTypeTag);
  EXPECT_GT(r.run.bits, 0u);
}

TEST(Accounting, EdgeTrafficSumsToMessages) {
  Rng grng(29);
  const Graph g = make_random_connected(30, 80, grng);
  engine_run(g, make_flood_max(), 3, true, /*edge_traffic=*/true);
  engine_run(g, make_kingdom(), 3, true, /*edge_traffic=*/true);
}

TEST(Accounting, LastStatusChangeWithinRun) {
  Rng grng(31);
  const Graph g = make_random_connected(26, 60, grng);
  for (const auto& f :
       {make_flood_max(), make_kingdom(),
        make_least_el(LeastElConfig::all_candidates())}) {
    const RunSummary r = engine_run(g, f, 5);
    ASSERT_TRUE(r.verdict.unique_leader);
    EXPECT_LE(r.run.last_status_change, r.run.rounds);
  }
}

TEST(IdRelabeling, FloodMaxFollowsTheMaxId) {
  // Under any ID scheme the flood-max winner is exactly the max-uid node.
  const Graph g = make_grid(4, 5);
  for (const IdScheme scheme :
       {IdScheme::Sequential, IdScheme::ReverseSequential,
        IdScheme::RandomPermutation, IdScheme::RandomFromZ}) {
    EngineConfig cfg;
    cfg.seed = 11;
    SyncEngine eng(g, cfg);
    Rng id_rng(13);
    const auto uids = assign_ids(g.n(), scheme, id_rng);
    eng.set_uids(uids);
    eng.init_processes(make_flood_max());
    eng.run();
    const auto verdict = judge_election(eng);
    ASSERT_TRUE(verdict.unique_leader) << to_string(scheme);
    const Uid max_uid = *std::max_element(uids.begin(), uids.end());
    EXPECT_EQ(eng.uid_of(verdict.leader_slot), max_uid) << to_string(scheme);
  }
}

TEST(ChannelIsolation, TwoWavePoolsOnOneNodeDoNotInterfere) {
  // size_estimate runs two pools (channels 3 then 1) in the same process;
  // its correctness across the matrix already exercises isolation.  Here:
  // flood-max (channel 2) composed under the explicit wrapper's extra
  // traffic still deterministically elects the max.
  const Graph g = make_cycle(12);
  const RunSummary a = engine_run(g, make_flood_max(), 7);
  ASSERT_TRUE(a.verdict.unique_leader);
}

}  // namespace
}  // namespace ule
