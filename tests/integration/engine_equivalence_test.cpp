// Engine-equivalence regression: the full algorithm matrix on small graphs
// with fixed seeds must reproduce the exact RunResult counters recorded from
// the seed engine (pre active-set-scheduler, pre flat-message-path).  Any
// scheduler or message-representation change that alters rounds, messages,
// bits, statuses, or the elected slot for any cell is a determinism break,
// not an optimisation.
//
// To re-record after an *intentional* semantic change:
//   ULE_RECORD_GOLDEN=1 ./integration_engine_equivalence_test
// and paste the printed rows over kGolden below.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "election/clustering.hpp"
#include "election/dfs_election.hpp"
#include "election/flood_max.hpp"
#include "election/kingdom.hpp"
#include "election/least_el.hpp"
#include "election/size_estimate.hpp"
#include "election/sublinear_complete.hpp"
#include "graphgen/clique_cycle.hpp"
#include "graphgen/dumbbell.hpp"
#include "graphgen/generators.hpp"
#include "graphgen/graph_algos.hpp"
#include "net/engine.hpp"
#include "spanner/spanner_elect.hpp"

namespace ule {
namespace {

struct GoldenRow {
  const char* algo;
  const char* graph;
  std::uint64_t seed;
  Round rounds;
  std::uint64_t messages;
  std::uint64_t bits;
  std::size_t elected;
  std::size_t non_elected;
  std::size_t undecided;
  std::uint64_t congest_violations;
  Round last_status_change;
  NodeId leader_slot;
};

Graph build_graph(const std::string& name) {
  if (name == "cycle24") return make_cycle(24);
  if (name == "path17") return make_path(17);
  if (name == "star16") return make_star(16);
  if (name == "complete12") return make_complete(12);
  if (name == "complete64") return make_complete(64);
  if (name == "grid4x6") return make_grid(4, 6);
  if (name == "tree26") return make_balanced_tree(26, 2);
  if (name == "dumbbell16_30") return make_dumbbell(16, 30, 0, 5).graph;
  if (name == "cliquecycle24_8") return make_clique_cycle(24, 8).graph;
  if (name == "gnm40_100") {
    Rng rng(0xFA417ULL);
    return make_random_connected(40, 100, rng);
  }
  throw std::logic_error("unknown golden graph " + name);
}

ProcessFactory build_algo(const std::string& algo, const Graph& g,
                          RunOptions& opt) {
  if (algo == "flood_max") return make_flood_max();
  if (algo == "dfs") {
    opt.ids = IdScheme::RandomPermutation;
    opt.max_rounds = Round{1} << 62;
    return make_dfs_election();
  }
  if (algo == "least_el_all") {
    opt.knowledge = Knowledge::of_n(g.n());
    return make_least_el(LeastElConfig::all_candidates());
  }
  if (algo == "least_el_logn") {
    opt.knowledge = Knowledge::of_n(g.n());
    return make_least_el(LeastElConfig::variant_A(g.n()));
  }
  if (algo == "las_vegas") {
    const std::uint32_t d = diameter_exact(g);
    opt.knowledge = Knowledge::of_n_d(g.n(), d);
    return make_least_el(LeastElConfig::las_vegas(d));
  }
  if (algo == "kingdom") {
    opt.max_rounds = 1'000'000;
    return make_kingdom();
  }
  if (algo == "sublinear") {
    opt.knowledge = Knowledge::of_n(g.n());
    return make_sublinear_complete();
  }
  if (algo == "clustering") {
    opt.knowledge = Knowledge::of_n(g.n());
    return make_clustering();
  }
  if (algo == "size_estimate") return make_size_estimate_elect();
  if (algo == "spanner_elect") {
    opt.knowledge = Knowledge::of_n(g.n());
    return make_spanner_elect(SpannerElectConfig{3, 0});
  }
  throw std::logic_error("unknown golden algo " + algo);
}

struct CaseSpec {
  const char* algo;
  const char* graph;
};

// Every algorithm family the engine hot path serves, each over graphs that
// exercise sparse/dense, low/high diameter, and the dumbbell/clique-cycle
// constructions.  Sublinear runs on complete graphs only (by contract).
const CaseSpec kCases[] = {
    {"flood_max", "cycle24"},     {"flood_max", "path17"},
    {"flood_max", "star16"},      {"flood_max", "complete12"},
    {"flood_max", "grid4x6"},     {"flood_max", "dumbbell16_30"},
    {"dfs", "cycle24"},           {"dfs", "path17"},
    {"dfs", "complete12"},        {"dfs", "grid4x6"},
    {"dfs", "cliquecycle24_8"},   {"least_el_all", "cycle24"},
    {"least_el_all", "complete12"}, {"least_el_all", "gnm40_100"},
    {"least_el_logn", "cycle24"}, {"least_el_logn", "gnm40_100"},
    {"las_vegas", "cycle24"},     {"las_vegas", "grid4x6"},
    {"kingdom", "cycle24"},       {"kingdom", "path17"},
    {"kingdom", "complete12"},    {"kingdom", "gnm40_100"},
    {"kingdom", "tree26"},        {"sublinear", "complete12"},
    {"sublinear", "complete64"},  {"clustering", "cycle24"},
    {"clustering", "complete12"}, {"clustering", "gnm40_100"},
    {"clustering", "grid4x6"},    {"size_estimate", "cycle24"},
    {"size_estimate", "complete12"}, {"spanner_elect", "gnm40_100"},
    {"spanner_elect", "complete12"},
};

GoldenRow run_case(const CaseSpec& c, std::uint64_t seed) {
  const Graph g = build_graph(c.graph);
  RunOptions opt;
  opt.seed = seed;
  const ProcessFactory factory = build_algo(c.algo, g, opt);
  const ElectionReport rep = run_election(g, factory, opt);
  GoldenRow row;
  row.algo = c.algo;
  row.graph = c.graph;
  row.seed = seed;
  row.rounds = rep.run.rounds;
  row.messages = rep.run.messages;
  row.bits = rep.run.bits;
  row.elected = rep.run.elected;
  row.non_elected = rep.run.non_elected;
  row.undecided = rep.run.undecided;
  row.congest_violations = rep.run.congest_violations;
  row.last_status_change = rep.run.last_status_change;
  row.leader_slot = rep.verdict.leader_slot;
  return row;
}

// Recorded from the seed engine (pre-overhaul), seeds 1 and 2 per case.
const GoldenRow kGolden[] = {
    // clang-format off
    {"flood_max", "cycle24", 1, 27, 232, 32016, 1, 23, 0, 0, 26, 5},
    {"flood_max", "cycle24", 2, 29, 230, 31740, 1, 23, 0, 0, 28, 23},
    {"flood_max", "path17", 1, 23, 122, 16836, 1, 16, 0, 0, 22, 5},
    {"flood_max", "path17", 2, 23, 112, 15456, 1, 16, 0, 0, 22, 11},
    {"flood_max", "star16", 1, 5, 88, 12144, 1, 15, 0, 0, 4, 5},
    {"flood_max", "star16", 2, 5, 88, 12144, 1, 15, 0, 0, 4, 11},
    {"flood_max", "complete12", 1, 6, 484, 66792, 1, 11, 0, 0, 5, 5},
    {"flood_max", "complete12", 2, 6, 484, 66792, 1, 11, 0, 0, 5, 11},
    {"flood_max", "grid4x6", 1, 20, 460, 63480, 1, 23, 0, 0, 19, 5},
    {"flood_max", "grid4x6", 2, 23, 528, 72864, 1, 23, 0, 0, 22, 23},
    {"flood_max", "dumbbell16_30", 1, 26, 724, 99912, 1, 31, 0, 0, 25, 5},
    {"flood_max", "dumbbell16_30", 2, 24, 702, 96876, 1, 31, 0, 0, 23, 23},
    {"dfs", "cycle24", 1, 103, 62, 4464, 1, 23, 0, 0, 102, 5},
    {"dfs", "cycle24", 2, 103, 64, 4608, 1, 23, 0, 0, 102, 6},
    {"dfs", "path17", 1, 67, 38, 2736, 1, 16, 0, 0, 66, 5},
    {"dfs", "path17", 2, 67, 37, 2664, 1, 16, 0, 0, 66, 9},
    {"dfs", "complete12", 1, 487, 246, 17712, 1, 11, 0, 0, 486, 4},
    {"dfs", "complete12", 2, 487, 246, 17712, 1, 11, 0, 0, 486, 4},
    {"dfs", "grid4x6", 1, 215, 111, 7992, 1, 23, 0, 0, 214, 5},
    {"dfs", "grid4x6", 2, 215, 113, 8136, 1, 23, 0, 0, 214, 6},
    {"dfs", "cliquecycle24_8", 1, 167, 91, 6552, 1, 23, 0, 0, 166, 5},
    {"dfs", "cliquecycle24_8", 2, 167, 93, 6696, 1, 23, 0, 0, 166, 6},
    {"least_el_all", "cycle24", 1, 27, 208, 28704, 1, 23, 0, 0, 26, 19},
    {"least_el_all", "cycle24", 2, 28, 214, 29532, 1, 23, 0, 0, 27, 11},
    {"least_el_all", "complete12", 1, 6, 484, 66792, 1, 11, 0, 0, 5, 3},
    {"least_el_all", "complete12", 2, 6, 484, 66792, 1, 11, 0, 0, 5, 11},
    {"least_el_all", "gnm40_100", 1, 14, 1076, 148488, 1, 39, 0, 0, 13, 29},
    {"least_el_all", "gnm40_100", 2, 12, 956, 131928, 1, 39, 0, 0, 11, 37},
    {"least_el_logn", "cycle24", 1, 27, 92, 12696, 1, 23, 0, 0, 26, 21},
    {"least_el_logn", "cycle24", 2, 27, 74, 10212, 1, 23, 0, 0, 26, 15},
    {"least_el_logn", "gnm40_100", 1, 13, 652, 89976, 1, 39, 0, 0, 12, 3},
    {"least_el_logn", "gnm40_100", 2, 12, 498, 68724, 1, 39, 0, 0, 11, 39},
    {"las_vegas", "cycle24", 1, 27, 50, 6900, 1, 23, 0, 0, 26, 19},
    {"las_vegas", "cycle24", 2, 67, 50, 6900, 1, 23, 0, 0, 66, 14},
    {"las_vegas", "grid4x6", 1, 17, 106, 14628, 1, 23, 0, 0, 16, 19},
    {"las_vegas", "grid4x6", 2, 41, 106, 14628, 1, 23, 0, 0, 40, 14},
    {"kingdom", "cycle24", 1, 112, 488, 114192, 1, 23, 0, 0, 111, 5},
    {"kingdom", "cycle24", 2, 112, 479, 112086, 1, 23, 0, 0, 111, 23},
    {"kingdom", "path17", 1, 106, 347, 81198, 1, 16, 0, 0, 105, 5},
    {"kingdom", "path17", 2, 106, 351, 82134, 1, 16, 0, 0, 105, 11},
    {"kingdom", "complete12", 1, 11, 692, 161928, 1, 11, 0, 0, 10, 5},
    {"kingdom", "complete12", 2, 11, 692, 161928, 1, 11, 0, 0, 10, 11},
    {"kingdom", "gnm40_100", 1, 27, 1187, 277758, 1, 39, 0, 0, 26, 37},
    {"kingdom", "gnm40_100", 2, 47, 1548, 362232, 1, 39, 0, 0, 46, 38},
    {"kingdom", "tree26", 1, 53, 387, 90558, 1, 25, 0, 0, 52, 5},
    {"kingdom", "tree26", 2, 61, 420, 98280, 1, 25, 0, 0, 60, 23},
    {"sublinear", "complete12", 1, 3, 176, 24112, 1, 11, 0, 0, 2, 9},
    {"sublinear", "complete12", 2, 3, 132, 18084, 1, 11, 0, 0, 2, 11},
    {"sublinear", "complete64", 1, 3, 660, 90420, 1, 63, 0, 0, 2, 29},
    {"sublinear", "complete64", 2, 3, 594, 81378, 1, 63, 0, 0, 2, 46},
    {"clustering", "cycle24", 1, 28, 256, 38304, 1, 23, 0, 0, 27, 19},
    {"clustering", "cycle24", 2, 29, 262, 39132, 1, 23, 0, 0, 28, 11},
    {"clustering", "complete12", 1, 7, 616, 93192, 1, 11, 0, 0, 6, 3},
    {"clustering", "complete12", 2, 7, 616, 93192, 1, 11, 0, 0, 6, 11},
    {"clustering", "gnm40_100", 1, 32, 1217, 189088, 1, 39, 0, 0, 31, 21},
    {"clustering", "gnm40_100", 2, 34, 1240, 196168, 1, 39, 0, 0, 33, 14},
    {"clustering", "grid4x6", 1, 20, 458, 67916, 1, 23, 0, 0, 19, 19},
    {"clustering", "grid4x6", 2, 19, 472, 69848, 1, 23, 0, 0, 18, 11},
    {"size_estimate", "cycle24", 1, 66, 443, 59616, 1, 23, 0, 0, 65, 21},
    {"size_estimate", "cycle24", 2, 65, 495, 66792, 1, 23, 0, 0, 64, 14},
    {"size_estimate", "complete12", 1, 12, 979, 134376, 1, 11, 0, 0, 11, 8},
    {"size_estimate", "complete12", 2, 12, 979, 134376, 1, 11, 0, 0, 11, 3},
    {"spanner_elect", "gnm40_100", 1, 27, 1593, 205924, 1, 39, 0, 0, 26, 26},
    {"spanner_elect", "gnm40_100", 2, 25, 1479, 189734, 1, 39, 0, 0, 24, 14},
    {"spanner_elect", "complete12", 1, 20, 629, 82636, 1, 11, 0, 0, 19, 8},
    {"spanner_elect", "complete12", 2, 18, 542, 71540, 1, 11, 0, 0, 17, 0},
    // clang-format on
};

TEST(EngineEquivalence, MatrixMatchesSeedEngineGolden) {
  const bool record = std::getenv("ULE_RECORD_GOLDEN") != nullptr;
  if (record) {
    for (const CaseSpec& c : kCases) {
      for (std::uint64_t seed = 1; seed <= 2; ++seed) {
        const GoldenRow r = run_case(c, seed);
        std::printf(
            "    {\"%s\", \"%s\", %llu, %llu, %llu, %llu, %zu, %zu, %zu, "
            "%llu, %llu, %u},\n",
            r.algo, r.graph, static_cast<unsigned long long>(r.seed),
            static_cast<unsigned long long>(r.rounds),
            static_cast<unsigned long long>(r.messages),
            static_cast<unsigned long long>(r.bits), r.elected, r.non_elected,
            r.undecided, static_cast<unsigned long long>(r.congest_violations),
            static_cast<unsigned long long>(r.last_status_change),
            r.leader_slot);
      }
    }
    GTEST_SKIP() << "golden rows printed, not compared";
  }

  std::size_t i = 0;
  for (const CaseSpec& c : kCases) {
    for (std::uint64_t seed = 1; seed <= 2; ++seed, ++i) {
      ASSERT_LT(i, std::size(kGolden)) << "golden table too short";
      const GoldenRow& want = kGolden[i];
      ASSERT_STREQ(want.algo, c.algo) << "golden table out of sync at " << i;
      ASSERT_STREQ(want.graph, c.graph) << "golden table out of sync at " << i;
      ASSERT_EQ(want.seed, seed) << "golden table out of sync at " << i;
      const GoldenRow got = run_case(c, seed);
      const std::string where =
          std::string(c.algo) + " on " + c.graph + " seed " +
          std::to_string(seed);
      EXPECT_EQ(got.rounds, want.rounds) << where;
      EXPECT_EQ(got.messages, want.messages) << where;
      EXPECT_EQ(got.bits, want.bits) << where;
      EXPECT_EQ(got.elected, want.elected) << where;
      EXPECT_EQ(got.non_elected, want.non_elected) << where;
      EXPECT_EQ(got.undecided, want.undecided) << where;
      EXPECT_EQ(got.congest_violations, want.congest_violations) << where;
      EXPECT_EQ(got.last_status_change, want.last_status_change) << where;
      EXPECT_EQ(got.leader_slot, want.leader_slot) << where;
    }
  }
  EXPECT_EQ(i, std::size(kGolden)) << "golden table has extra rows";
}

}  // namespace
}  // namespace ule
