#include "graphgen/graph_algos.hpp"

#include <gtest/gtest.h>

#include "graphgen/generators.hpp"

namespace ule {
namespace {

TEST(GraphAlgos, BfsDistancesOnPath) {
  const Graph g = make_path(6);
  const auto d = bfs_distances(g, 0);
  for (NodeId u = 0; u < 6; ++u) EXPECT_EQ(d[u], u);
}

TEST(GraphAlgos, EccentricityCenterVsEnd) {
  const Graph g = make_path(9);
  EXPECT_EQ(eccentricity(g, 0), 8u);
  EXPECT_EQ(eccentricity(g, 4), 4u);
}

TEST(GraphAlgos, HopDistance) {
  const Graph g = make_cycle(12);
  EXPECT_EQ(hop_distance(g, 0, 6), 6u);
  EXPECT_EQ(hop_distance(g, 0, 11), 1u);
}

TEST(GraphAlgos, DoubleSweepBracketsDiameter) {
  Rng rng(5);
  const Graph g = make_random_connected(60, 120, rng);
  const auto exact = diameter_exact(g);
  const auto [lb, ub] = diameter_double_sweep(g);
  EXPECT_LE(lb, exact);
  EXPECT_GE(ub, exact);
}

TEST(GraphAlgos, ConnectivityDetectsDisconnected) {
  // Two disjoint edges (the "illegal experiment" graph G'^2 from the
  // Lemma 3.5 proof is exactly such a disconnected union).
  const Graph g = Graph::from_edges(4, {{0, 1}, {2, 3}});
  EXPECT_FALSE(is_connected(g));
}

TEST(GraphAlgos, EccentricityThrowsOnDisconnected) {
  const Graph g = Graph::from_edges(4, {{0, 1}, {2, 3}});
  EXPECT_THROW(eccentricity(g, 0), std::runtime_error);
}

}  // namespace
}  // namespace ule
