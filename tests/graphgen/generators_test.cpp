#include "graphgen/generators.hpp"

#include <gtest/gtest.h>

#include "graphgen/graph_algos.hpp"

namespace ule {
namespace {

TEST(Generators, Path) {
  const Graph g = make_path(10);
  EXPECT_EQ(g.n(), 10u);
  EXPECT_EQ(g.m(), 9u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(diameter_exact(g), 9u);
}

TEST(Generators, Cycle) {
  const Graph g = make_cycle(10);
  EXPECT_EQ(g.m(), 10u);
  EXPECT_EQ(diameter_exact(g), 5u);
  for (NodeId u = 0; u < g.n(); ++u) EXPECT_EQ(g.degree(u), 2u);
}

TEST(Generators, Star) {
  const Graph g = make_star(9);
  EXPECT_EQ(g.m(), 8u);
  EXPECT_EQ(g.degree(0), 8u);
  EXPECT_EQ(diameter_exact(g), 2u);
}

TEST(Generators, Complete) {
  const Graph g = make_complete(7);
  EXPECT_EQ(g.m(), 21u);
  EXPECT_EQ(diameter_exact(g), 1u);
}

TEST(Generators, CompleteBipartite) {
  const Graph g = make_complete_bipartite(3, 4);
  EXPECT_EQ(g.n(), 7u);
  EXPECT_EQ(g.m(), 12u);
  EXPECT_EQ(diameter_exact(g), 2u);
}

TEST(Generators, Grid) {
  const Graph g = make_grid(3, 5);
  EXPECT_EQ(g.n(), 15u);
  EXPECT_EQ(g.m(), 3 * 4 + 2 * 5u);
  EXPECT_EQ(diameter_exact(g), 2u + 4u);
}

TEST(Generators, Torus) {
  const Graph g = make_torus(4, 6);
  EXPECT_EQ(g.n(), 24u);
  EXPECT_EQ(g.m(), 48u);
  for (NodeId u = 0; u < g.n(); ++u) EXPECT_EQ(g.degree(u), 4u);
  EXPECT_EQ(diameter_exact(g), 2u + 3u);
}

TEST(Generators, Hypercube) {
  const Graph g = make_hypercube(5);
  EXPECT_EQ(g.n(), 32u);
  EXPECT_EQ(g.m(), 5 * 32 / 2u);
  EXPECT_EQ(diameter_exact(g), 5u);
}

TEST(Generators, BalancedTree) {
  const Graph g = make_balanced_tree(15, 2);
  EXPECT_EQ(g.m(), 14u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(diameter_exact(g), 6u);  // leaf -> root -> other leaf
}

TEST(Generators, Lollipop) {
  const Graph g = make_lollipop(5, 4);
  EXPECT_EQ(g.n(), 9u);
  EXPECT_EQ(g.m(), 10u + 4u);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, Barbell) {
  const Graph g = make_barbell(4, 3);
  EXPECT_EQ(g.n(), 4 + 4 + 2u);
  EXPECT_EQ(g.m(), 6 + 6 + 3u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(diameter_exact(g), 1 + 3 + 1u);
}

TEST(Generators, RandomConnectedRespectsParameters) {
  Rng rng(11);
  for (const auto& [n, m] : std::vector<std::pair<std::size_t, std::size_t>>{
           {10, 9}, {10, 20}, {50, 200}, {30, 29}}) {
    const Graph g = make_random_connected(n, m, rng);
    EXPECT_EQ(g.n(), n);
    EXPECT_EQ(g.m(), m);
    EXPECT_TRUE(is_connected(g));
  }
}

TEST(Generators, RandomConnectedRejectsBadM) {
  Rng rng(1);
  EXPECT_THROW(make_random_connected(10, 8, rng), std::invalid_argument);
  EXPECT_THROW(make_random_connected(10, 46, rng), std::invalid_argument);
}

TEST(Generators, RandomRegular) {
  Rng rng(3);
  const Graph g = make_random_regular(20, 4, rng);
  EXPECT_EQ(g.n(), 20u);
  for (NodeId u = 0; u < g.n(); ++u) EXPECT_EQ(g.degree(u), 4u);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, RandomRegularRejectsOddProduct) {
  Rng rng(1);
  EXPECT_THROW(make_random_regular(5, 3, rng), std::invalid_argument);
}

}  // namespace
}  // namespace ule
