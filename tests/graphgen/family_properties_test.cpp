// Structural properties of every generated family, checked exhaustively:
// port tables must be involutive (he.rev round-trips), edge ids dense and
// consistent, diameters must match the closed forms where they exist, and
// the paper's constructions must deliver the exact n/m/D their proofs need.

#include <gtest/gtest.h>

#include <set>

#include "graphgen/clique_cycle.hpp"
#include "graphgen/dumbbell.hpp"
#include "graphgen/generators.hpp"
#include "graphgen/graph_algos.hpp"
#include "graphgen/path_of_cliques.hpp"
#include "helpers.hpp"
#include "lab/campaign.hpp"
#include "scenario/registry.hpp"

namespace ule {
namespace {

void check_structure(const Graph& g) {
  // Port table involution: the rev port at the neighbour points back here.
  for (NodeId u = 0; u < g.n(); ++u) {
    for (PortId p = 0; p < g.degree(u); ++p) {
      const auto& he = g.half_edge(u, p);
      ASSERT_LT(he.to, g.n());
      const auto& back = g.half_edge(he.to, he.rev);
      EXPECT_EQ(back.to, u);
      EXPECT_EQ(back.rev, p);
      EXPECT_EQ(back.edge, he.edge);
      ASSERT_LT(he.edge, g.m());
      // The endpoint table agrees with the adjacency.
      const auto [a, b] = g.edge_endpoints(he.edge);
      EXPECT_TRUE((a == u && b == he.to) || (a == he.to && b == u));
    }
  }
  // Handshake: degree sum = 2m; every edge id appears exactly twice.
  std::uint64_t degsum = 0;
  std::vector<int> edge_refs(g.m(), 0);
  for (NodeId u = 0; u < g.n(); ++u) {
    degsum += g.degree(u);
    for (PortId p = 0; p < g.degree(u); ++p)
      ++edge_refs[g.half_edge(u, p).edge];
  }
  EXPECT_EQ(degsum, 2 * g.m());
  for (const int refs : edge_refs) EXPECT_EQ(refs, 2);
  EXPECT_TRUE(is_connected(g));
}

class FamilyStructure : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FamilyStructure, PortsEdgesConnectivity) {
  static const auto fams = testing::standard_families();
  check_structure(fams[GetParam()].graph);
}

TEST_P(FamilyStructure, ShuffledPortsPreserveStructure) {
  static const auto fams = testing::standard_families();
  Graph g = fams[GetParam()].graph;
  Rng rng(GetParam() * 7 + 1);
  g.shuffle_ports(rng);
  check_structure(g);
  EXPECT_EQ(g.n(), fams[GetParam()].graph.n());
  EXPECT_EQ(g.m(), fams[GetParam()].graph.m());
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, FamilyStructure,
                         ::testing::Range<std::size_t>(0, 17));

TEST(FamilyDiameters, ClosedFormsHold) {
  EXPECT_EQ(diameter_exact(make_path(17)), 16u);
  EXPECT_EQ(diameter_exact(make_cycle(24)), 12u);
  EXPECT_EQ(diameter_exact(make_cycle(25)), 12u);
  EXPECT_EQ(diameter_exact(make_star(16)), 2u);
  EXPECT_EQ(diameter_exact(make_complete(12)), 1u);
  EXPECT_EQ(diameter_exact(make_complete_bipartite(5, 7)), 2u);
  EXPECT_EQ(diameter_exact(make_grid(4, 6)), 4u + 6u - 2u);
  EXPECT_EQ(diameter_exact(make_torus(4, 6)), 4u / 2 + 6u / 2);
  EXPECT_EQ(diameter_exact(make_hypercube(4)), 4u);
  EXPECT_EQ(diameter_exact(make_lollipop(8, 10)), 11u);  // clique + tail
  EXPECT_EQ(diameter_exact(make_barbell(6, 5)), 7u);     // 1 + bridge + 1
}

TEST(FamilyEdgeCounts, ClosedFormsHold) {
  EXPECT_EQ(make_path(17).m(), 16u);
  EXPECT_EQ(make_cycle(24).m(), 24u);
  EXPECT_EQ(make_star(16).m(), 15u);
  EXPECT_EQ(make_complete(12).m(), 12u * 11u / 2);
  EXPECT_EQ(make_complete_bipartite(5, 7).m(), 35u);
  EXPECT_EQ(make_grid(4, 6).m(), 3u * 6u + 4u * 5u);
  EXPECT_EQ(make_torus(4, 6).m(), 2u * 4u * 6u);
  EXPECT_EQ(make_hypercube(5).m(), 5u * 32u / 2);
  EXPECT_EQ(make_lollipop(8, 10).m(), 8u * 7u / 2 + 10u);
  EXPECT_EQ(make_barbell(6, 5).m(), 2u * (6u * 5u / 2) + 5u);
}

TEST(DumbbellConstruction, FixedDiameterAcrossCutChoices) {
  // Theorem 3.1's repaired construction: whichever clique edges e', e'' are
  // opened, the dumbbell's diameter is the same (the proof feeds DIAM to
  // nodes and needs all class members to share it).
  const std::size_t side_m = 60;
  std::set<std::uint64_t> diameters;
  std::set<std::size_t> ns, ms;
  for (std::uint32_t cut = 0; cut < 6; ++cut) {
    const auto d = make_dumbbell(16, side_m, cut, cut + 1);
    diameters.insert(diameter_exact(d.graph));
    ns.insert(d.graph.n());
    ms.insert(d.graph.m());
    check_structure(d.graph);
    // Both bridges exist and are watchable.
    ASSERT_NE(d.bridge1, kNoEdge);
    ASSERT_NE(d.bridge2, kNoEdge);
    ASSERT_NE(d.bridge1, d.bridge2);
    EXPECT_EQ(diameter_exact(d.graph), d.diameter);
  }
  EXPECT_EQ(diameters.size(), 1u);
  EXPECT_EQ(ns.size(), 1u);
  EXPECT_EQ(ms.size(), 1u);
}

TEST(CliqueCycleConstruction, MatchesFigureOne) {
  // D' cliques of size gamma in a cycle, 4 arcs (Figure 1: D' = 8, n = 24,
  // gamma = 3).
  const auto cc = make_clique_cycle(24, 8);
  EXPECT_EQ(cc.graph.n(), 24u);
  EXPECT_EQ(cc.d_prime, 8u);
  EXPECT_EQ(cc.gamma, 3u);
  EXPECT_EQ(cc.n_actual, cc.graph.n());
  check_structure(cc.graph);
  // Diameter Θ(D'): the cycle of cliques dominates.
  const auto d = diameter_exact(cc.graph);
  EXPECT_GE(d, cc.d_prime / 2);
  EXPECT_LE(d, 2 * cc.d_prime);
  // The rotation automorphism of Claim 3.14 is a bijection of period 4.
  NodeId v = cc.slot(0, 0, 0);
  NodeId w = v;
  for (int i = 0; i < 4; ++i) w = cc.rotate(w);
  EXPECT_EQ(w, v);
}

TEST(PathOfCliquesConstruction, ClosedFormsHold) {
  // cliques * size nodes, per-group cliques + consecutive bicliques, and —
  // the property the diameter ladder stands on — diameter EXACTLY
  // cliques - 1 for every group size.
  const Graph g = make_path_of_cliques(5, 4);
  EXPECT_EQ(g.n(), 20u);
  EXPECT_EQ(g.m(), 5u * (4u * 3u / 2) + 4u * 4u * 4u);
  EXPECT_EQ(diameter_exact(g), 4u);
  check_structure(g);
  EXPECT_EQ(diameter_exact(make_path_of_cliques(7, 1)), 6u);  // size 1 = path
  EXPECT_EQ(diameter_exact(make_path_of_cliques(2, 6)), 1u);  // 2 groups = K12
  EXPECT_EQ(make_path_of_cliques(2, 6).m(), 12u * 11u / 2);
  EXPECT_THROW(make_path_of_cliques(1, 4), std::invalid_argument);
  EXPECT_THROW(make_path_of_cliques(3, 0), std::invalid_argument);
}

TEST(DiameterLadders, BfsDiameterMatchesEveryDeclaredRung) {
  // For every family with a diameter-ladder convention, the BFS-measured
  // diameter of the built instance must EQUAL the declared rung diameter
  // across the whole default ladder (quick and full) — an off-by-one rung
  // definition would silently poison every diameter-axis fit.
  std::size_t conventions = 0;
  for (const FamilyInfo& fam : default_families().all()) {
    if (!fam.diameter_ladder.has_value()) continue;
    ++conventions;
    for (const bool quick : {true, false}) {
      const std::uint64_t nominal = lab::default_nominal_n(quick);
      const auto ladder = lab::default_diameter_ladder(fam, quick, nominal);
      ASSERT_GE(ladder.size(), 2u) << fam.name;
      for (const std::uint64_t d : ladder) {
        const DiameterRung rung = fam.diameter_ladder->rung(nominal, d);
        Rng rng(7);
        const Graph g = fam.build(rung.params, rng);
        EXPECT_EQ(diameter_exact(g), rung.diameter)
            << fam.name << " rung d=" << d;
        // "Fixed nominal n": the size stays within 2x of nominal while the
        // diameter spans the whole ladder.
        EXPECT_GE(g.n(), nominal / 2) << fam.name << " rung d=" << d;
        EXPECT_LE(g.n(), 2 * nominal) << fam.name << " rung d=" << d;
        check_structure(g);
      }
    }
    // Off-default rungs too (odd values, the convention minimum): exactness
    // must not be an artifact of the power-of-two ladder.
    for (const std::uint64_t d :
         {fam.diameter_ladder->min_d, fam.diameter_ladder->min_d + 1,
          std::uint64_t{11}, std::uint64_t{27}}) {
      if (d > fam.diameter_ladder->max_d) continue;
      const DiameterRung rung = fam.diameter_ladder->rung(128, d);
      Rng rng(11);
      EXPECT_EQ(diameter_exact(fam.build(rung.params, rng)), rung.diameter)
          << fam.name << " rung d=" << d;
    }
  }
  EXPECT_GE(conventions, 3u);  // cliquepath, barbell, cliquecycle
}

TEST(RandomFamilies, SweepRespectsParameters) {
  Rng rng(41);
  for (const std::size_t n : {10u, 33u, 77u}) {
    for (const std::size_t extra : {0u, 5u, 40u}) {
      const std::size_t m = n - 1 + extra;
      if (m > n * (n - 1) / 2) continue;
      const Graph g = make_random_connected(n, m, rng);
      EXPECT_EQ(g.n(), n);
      EXPECT_EQ(g.m(), m);
      check_structure(g);
    }
  }
  for (const std::size_t d : {3u, 4u, 6u, 8u, 12u}) {
    const Graph g = make_random_regular(24, d, rng);
    for (NodeId u = 0; u < g.n(); ++u) EXPECT_EQ(g.degree(u), d);
    check_structure(g);
  }
}

}  // namespace
}  // namespace ule
