#include "graphgen/clique_cycle.hpp"

#include <gtest/gtest.h>

#include <set>

#include "graphgen/graph_algos.hpp"

namespace ule {
namespace {

TEST(CliqueCycle, SizesMatchTheorem) {
  // n' = gamma * D' with D' = 4*ceil(D/4), n' >= n, n' in Theta(n).
  for (const auto& [n, D] :
       std::vector<std::pair<std::size_t, std::size_t>>{{24, 8}, {100, 20},
                                                        {64, 17}, {37, 5}}) {
    const CliqueCycle cc = make_clique_cycle(n, D);
    EXPECT_EQ(cc.d_prime % 4, 0u);
    EXPECT_GE(cc.d_prime, D);
    EXPECT_LT(cc.d_prime, D + 4);
    EXPECT_EQ(cc.n_actual, cc.gamma * cc.d_prime);
    EXPECT_GE(cc.n_actual, n);
    EXPECT_LT(cc.n_actual, n + cc.d_prime);  // Θ(n)
    EXPECT_EQ(cc.graph.n(), cc.n_actual);
    EXPECT_TRUE(is_connected(cc.graph));
  }
}

TEST(CliqueCycle, DiameterIsThetaD) {
  for (const auto& [n, D] :
       std::vector<std::pair<std::size_t, std::size_t>>{{24, 8}, {60, 16},
                                                        {48, 12}}) {
    const CliqueCycle cc = make_clique_cycle(n, D);
    const auto diam = diameter_exact(cc.graph);
    EXPECT_GE(diam, cc.d_prime / 2);      // at least D'/2 hops around
    EXPECT_LE(diam, 2 * cc.d_prime + 2);  // Θ(D)
  }
}

TEST(CliqueCycle, GammaOneIsARing) {
  const CliqueCycle cc = make_clique_cycle(8, 8);
  EXPECT_EQ(cc.gamma, 1u);
  for (NodeId u = 0; u < cc.graph.n(); ++u) EXPECT_EQ(cc.graph.degree(u), 2u);
  EXPECT_EQ(diameter_exact(cc.graph), cc.graph.n() / 2);
}

TEST(CliqueCycle, RotationIsAnAutomorphism) {
  // φ(v_{i,j,k}) = v_{(i+1 mod 4),j,k} must preserve adjacency — the
  // symmetry that drives Claim 3.14.
  const CliqueCycle cc = make_clique_cycle(32, 8);
  std::set<std::pair<NodeId, NodeId>> edges;
  for (EdgeId e = 0; e < cc.graph.m(); ++e) {
    auto [u, v] = cc.graph.edge_endpoints(e);
    edges.insert({std::min(u, v), std::max(u, v)});
  }
  for (const auto& [u, v] : edges) {
    const NodeId pu = cc.rotate(u), pv = cc.rotate(v);
    EXPECT_TRUE(edges.count({std::min(pu, pv), std::max(pu, pv)}))
        << "edge (" << u << "," << v << ") image missing";
  }
}

TEST(CliqueCycle, SlotLayout) {
  const CliqueCycle cc = make_clique_cycle(24, 8);
  EXPECT_EQ(cc.slot(0, 0, 0), 0u);
  EXPECT_EQ(cc.rotate(cc.slot(0, 1, 0)), cc.slot(1, 1, 0));
  EXPECT_EQ(cc.rotate(cc.slot(3, 0, 0)), cc.slot(0, 0, 0));
}

TEST(CliqueCycle, RejectsBadParameters) {
  EXPECT_THROW(make_clique_cycle(2, 8), std::invalid_argument);
  EXPECT_THROW(make_clique_cycle(24, 2), std::invalid_argument);
}

}  // namespace
}  // namespace ule
