#include "graphgen/dumbbell.hpp"

#include <gtest/gtest.h>

#include "graphgen/graph_algos.hpp"

namespace ule {
namespace {

TEST(Dumbbell, CliqueSizeMaximal) {
  // kappa(kappa+1)/2 <= m < (kappa+1)(kappa+2)/2
  for (std::size_t m : {3u, 6u, 10u, 17u, 50u, 200u}) {
    const std::size_t k = dumbbell_clique_size(m);
    EXPECT_LE(k * (k + 1) / 2, m);
    EXPECT_GT((k + 1) * (k + 2) / 2, m);
  }
}

TEST(Dumbbell, NodeAndEdgeCounts) {
  const std::size_t n = 20, m = 30;
  const Dumbbell d = make_dumbbell(n, m, 0, 1);
  EXPECT_EQ(d.graph.n(), 2 * n);
  // Per side: C(kappa,2)-1 clique edges + kappa hub edges + path, + 2 bridges.
  const std::size_t k = d.kappa;
  const std::size_t per_side = (k * (k - 1) / 2 - 1) + k + (n - k - 1);
  EXPECT_EQ(d.graph.m(), 2 * per_side + 2);
  EXPECT_TRUE(is_connected(d.graph));
}

TEST(Dumbbell, DiameterIndependentOfOpenedEdges) {
  // The crux of the fixed-diameter construction: whatever e', e'' are
  // opened, Diam(Dumbbell(G'[e'], G''[e''])) is the same.
  const std::size_t n = 14, m = 21;
  const std::size_t choices = dumbbell_open_edge_count(m);
  ASSERT_GE(choices, 3u);
  std::uint32_t expect = 0;
  for (const auto& [l, r] : std::vector<std::pair<std::size_t, std::size_t>>{
           {0, 0}, {1, choices - 1}, {choices / 2, 1}, {choices - 1, 0}}) {
    const Dumbbell d = make_dumbbell(n, m, l, r);
    const std::uint32_t diam = diameter_exact(d.graph);
    EXPECT_EQ(diam, d.diameter) << "l=" << l << " r=" << r;
    if (expect == 0) expect = diam;
    EXPECT_EQ(diam, expect);
  }
}

TEST(Dumbbell, DiameterFormulaMatches) {
  const std::size_t n = 16, m = 28;
  const Dumbbell d = make_dumbbell(n, m, 2, 3);
  EXPECT_EQ(d.diameter, 2 * (n - d.kappa) + 1);
  EXPECT_EQ(diameter_exact(d.graph), d.diameter);
}

TEST(Dumbbell, BridgesConnectTheSides) {
  const Dumbbell d = make_dumbbell(12, 15, 0, 0);
  const auto [a1, b1] = d.graph.edge_endpoints(d.bridge1);
  const auto [a2, b2] = d.graph.edge_endpoints(d.bridge2);
  // One endpoint on each side.
  EXPECT_LT(a1, d.side_n);
  EXPECT_GE(b1, d.side_n);
  EXPECT_LT(a2, d.side_n);
  EXPECT_GE(b2, d.side_n);
}

TEST(Dumbbell, BridgesAreTheOnlyCut) {
  // Removing both bridges disconnects the graph — the property that forces
  // bridge crossing on any leader election algorithm.
  const Dumbbell d = make_dumbbell(10, 12, 1, 2);
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (EdgeId e = 0; e < d.graph.m(); ++e) {
    if (e == d.bridge1 || e == d.bridge2) continue;
    edges.push_back(d.graph.edge_endpoints(e));
  }
  const Graph cut = Graph::from_edges(d.graph.n(), edges);
  EXPECT_FALSE(is_connected(cut));
}

TEST(Dumbbell, SidesHaveThetaMEdges) {
  for (std::size_t m : {20u, 60u, 150u}) {
    const Dumbbell d = make_dumbbell(40, m, 0, 0);
    const double side_m = (d.graph.m() - 2.0) / 2.0;
    EXPECT_GE(side_m, 0.4 * m);  // Θ(m): at least a constant fraction
  }
}

TEST(Dumbbell, RejectsBadParameters) {
  EXPECT_THROW(make_dumbbell(10, 2, 0, 0), std::invalid_argument);
  EXPECT_THROW(make_dumbbell(2, 10, 0, 0), std::invalid_argument);
  EXPECT_THROW(make_dumbbell(10, 10, 1000, 0), std::invalid_argument);
}

}  // namespace
}  // namespace ule
