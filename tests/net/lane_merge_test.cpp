// Unit tests for the parallel-merge seams (previously covered only
// end-to-end by the parallel-determinism matrix): counter-block summation
// and fold order with hand-crafted SendLanes, first-exception-in-lane-order
// selection, and the preservation of send order through the lane
// concatenation at the receiving side.

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "graphgen/generators.hpp"
#include "net/engine.hpp"
#include "net/outbox.hpp"

namespace ule {
namespace {

// --- hand-crafted lanes: fold_lane_counters / merge_lane_counters ---------

TEST(LaneMerge, CounterBlocksSumInLaneOrder) {
  std::vector<SendLane> lanes(3);
  lanes[0].messages = 5;
  lanes[0].bits = 320;
  lanes[1].messages = 7;
  lanes[1].bits = 448;
  lanes[1].congest_violations = 2;
  lanes[2].messages = 1;
  lanes[2].bits = 64;

  RunResult result;
  const std::exception_ptr err = merge_lane_counters(lanes, result, 17);
  EXPECT_EQ(err, nullptr);
  EXPECT_EQ(result.messages, 13u);
  EXPECT_EQ(result.bits, 832u);
  EXPECT_EQ(result.congest_violations, 2u);
  EXPECT_EQ(result.last_status_change, 0u);  // nobody changed status
  for (const SendLane& lane : lanes) {
    EXPECT_EQ(lane.messages, 0u);  // blocks are zeroed by the fold
    EXPECT_EQ(lane.bits, 0u);
    EXPECT_EQ(lane.congest_violations, 0u);
  }
}

TEST(LaneMerge, StatusChangeStampsTheFoldRound) {
  SendLane lane;
  lane.status_changed = true;  // a status change with zero sends must fold
  RunResult result;
  EXPECT_EQ(fold_lane_counters(lane, result, 42), nullptr);
  EXPECT_EQ(result.last_status_change, 42u);
  EXPECT_FALSE(lane.status_changed);

  // A later quiet lane must NOT overwrite the stamp.
  SendLane quiet;
  EXPECT_EQ(fold_lane_counters(quiet, result, 99), nullptr);
  EXPECT_EQ(result.last_status_change, 42u);
}

TEST(LaneMerge, FoldAccumulatesAcrossRounds) {
  SendLane lane;
  RunResult result;
  lane.messages = 3;
  lane.bits = 192;
  ASSERT_EQ(fold_lane_counters(lane, result, 1), nullptr);
  lane.messages = 4;
  lane.bits = 256;
  lane.status_changed = true;
  ASSERT_EQ(fold_lane_counters(lane, result, 2), nullptr);
  EXPECT_EQ(result.messages, 7u);
  EXPECT_EQ(result.bits, 448u);
  EXPECT_EQ(result.last_status_change, 2u);
}

TEST(LaneMerge, FirstErrorInLaneOrderWinsAndAllLanesStillFold) {
  std::vector<SendLane> lanes(4);
  lanes[0].messages = 1;
  lanes[0].bits = 64;
  lanes[1].messages = 2;
  lanes[1].bits = 128;
  lanes[1].error = std::make_exception_ptr(std::runtime_error("lane 1"));
  lanes[2].messages = 4;
  lanes[2].bits = 256;
  lanes[3].error = std::make_exception_ptr(std::runtime_error("lane 3"));

  RunResult result;
  const std::exception_ptr err = merge_lane_counters(lanes, result, 5);
  ASSERT_NE(err, nullptr);
  try {
    std::rethrow_exception(err);
    FAIL() << "expected a rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "lane 1");  // first in lane order, not lane 3
  }
  // Counters reflect every lane, including the ones at and past the error.
  EXPECT_EQ(result.messages, 7u);
  EXPECT_EQ(result.bits, 448u);
  // Errors are consumed by the fold.
  for (const SendLane& lane : lanes) EXPECT_EQ(lane.error, nullptr);
}

// --- engine-level seams ----------------------------------------------------

/// Every spoke sends its slot number to the hub in one dense round; the hub
/// records (arrival port, payload) in inbox order.  Because shards are
/// contiguous ascending slot ranges and lanes are concatenated in lane
/// order, the hub's inbox must be in sender-slot order at EVERY thread
/// count — this is the envelope half of the ordered merge.
class HubProcess final : public Process {
 public:
  void on_wake(Context& ctx, std::span<const Envelope> inbox) override {
    on_round(ctx, inbox);
  }
  void on_round(Context& ctx, std::span<const Envelope> inbox) override {
    for (const auto& env : inbox)
      arrivals_.emplace_back(env.port, env.flat.a);
    ctx.idle();
  }
  const std::vector<std::pair<PortId, std::uint64_t>>& arrivals() const {
    return arrivals_;
  }

 private:
  std::vector<std::pair<PortId, std::uint64_t>> arrivals_;
};

class SpokeProcess final : public Process {
 public:
  void on_wake(Context& ctx, std::span<const Envelope>) override {
    FlatMsg m;
    m.type = 1;
    m.channel = 77;
    m.bits = 64;
    m.a = ctx.slot();
    ctx.send(0, m);  // a spoke's only port leads to the hub
    ctx.halt();
  }
  void on_round(Context&, std::span<const Envelope>) override {}
};

std::vector<std::pair<PortId, std::uint64_t>> run_star(unsigned threads) {
  const Graph g = make_star(33);  // hub 0, spokes 1..32 (hub port p -> p+1)
  EngineConfig cfg;
  cfg.seed = 3;
  cfg.threads = threads;
  cfg.parallel_cutoff = 1;  // force even these rounds through the pool
  SyncEngine eng(g, cfg);
  eng.init_processes([](NodeId s) -> std::unique_ptr<Process> {
    if (s == 0) return std::make_unique<HubProcess>();
    return std::make_unique<SpokeProcess>();
  });
  const RunResult res = eng.run();
  EXPECT_TRUE(res.completed);
  EXPECT_EQ(res.messages, 32u);
  return dynamic_cast<const HubProcess*>(eng.process(0))->arrivals();
}

TEST(LaneMerge, LaneConcatenationPreservesSlotSendOrder) {
  const auto base = run_star(1);
  ASSERT_EQ(base.size(), 32u);
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_EQ(base[i].first, i);       // hub port i <-> spoke i+1
    EXPECT_EQ(base[i].second, i + 1);  // sender slots ascending
  }
  for (const unsigned t : {2u, 3u, 8u}) {
    EXPECT_EQ(run_star(t), base) << "threads " << t;
  }
}

/// Two nodes throw in the same dense round; the error surfaced must be the
/// lowest-slot one at every thread count (first-in-lane-order = first in
/// slot order), and counters must cover the sends that preceded the throw.
class ThrowAtProcess final : public Process {
 public:
  explicit ThrowAtProcess(bool thrower) : thrower_(thrower) {}
  void on_wake(Context& ctx, std::span<const Envelope>) override {
    if (thrower_)
      throw std::runtime_error("boom at slot " + std::to_string(ctx.slot()));
    FlatMsg m;
    m.type = 1;
    m.channel = 77;
    m.bits = 64;
    ctx.send(0, m);
    ctx.halt();
  }
  void on_round(Context&, std::span<const Envelope>) override {}

 private:
  bool thrower_;
};

TEST(LaneMerge, LowestSlotExceptionSurfacesAtEveryThreadCount) {
  const Graph g = make_cycle(24);
  for (const unsigned t : {1u, 4u}) {
    EngineConfig cfg;
    cfg.seed = 1;
    cfg.threads = t;
    cfg.parallel_cutoff = 1;
    SyncEngine eng(g, cfg);
    eng.init_processes([](NodeId s) {
      return std::make_unique<ThrowAtProcess>(s == 7 || s == 19);
    });
    try {
      eng.run();
      FAIL() << "expected a throw at threads " << t;
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "boom at slot 7") << "threads " << t;
    }
  }
}

}  // namespace
}  // namespace ule
