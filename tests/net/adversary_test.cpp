// Engine-level semantics of the delivery/fault adversary (net/adversary.hpp):
// the billing rules (a drop is billed at send but never delivered, a
// duplicate is delivered but never billed — the adversary's forgery, not the
// algorithm's spend), the delay bound and the delayed-older-first arrival
// order, crash-stop halting, and the zero-overhead contract that an INERT
// adversary config (seed set, every knob zero) runs bit-for-bit like a plain
// engine.  The scenario/registry layers build on exactly these guarantees.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "net/engine.hpp"

namespace ule {
namespace {

/// Broadcasts one flat message per port for `rounds_to_send` steps (payload
/// encodes sender slot and send round), then goes passive; records every
/// arrival as (arrival round, payload).
class Chatter final : public Process {
 public:
  explicit Chatter(int rounds_to_send) : left_(rounds_to_send) {}

  void on_wake(Context& ctx, std::span<const Envelope> inbox) override {
    step(ctx, inbox);
  }
  void on_round(Context& ctx, std::span<const Envelope> inbox) override {
    step(ctx, inbox);
  }

  static std::uint64_t payload(NodeId slot, Round sent) {
    return slot * 1000 + sent;
  }
  static Round sent_round(std::uint64_t payload) { return payload % 1000; }

  std::vector<std::pair<Round, std::uint64_t>> got;

 private:
  void step(Context& ctx, std::span<const Envelope> inbox) {
    for (const Envelope& e : inbox) got.emplace_back(ctx.round(), e.flat.a);
    if (left_ > 0) {
      --left_;
      FlatMsg m;
      m.type = 7;
      m.channel = 99;
      m.bits = 64;
      m.a = payload(ctx.slot(), ctx.round());
      ctx.broadcast(m);
    } else {
      ctx.idle();
    }
  }
  int left_;
};

Graph path2() { return Graph::from_edges(2, {{0, 1}}); }
Graph path3() { return Graph::from_edges(3, {{0, 1}, {1, 2}}); }

/// Halts on its first step: the voluntary-halt foil for the crash-billing
/// split (its discarded arrivals must never count as adversary damage).
class Quitter final : public Process {
 public:
  void on_wake(Context& ctx, std::span<const Envelope>) override {
    ctx.halt();
  }
  void on_round(Context& ctx, std::span<const Envelope>) override {
    ctx.halt();
  }
};

TEST(Adversary, InertConfigMatchesPlainRunExactly) {
  // seed set, every knob zero: active() is false and the engine must take
  // the fault-free hot path — identical counters on every axis.
  const auto run_once = [](bool inert_adversary) {
    EngineConfig cfg;
    cfg.seed = 5;
    if (inert_adversary) cfg.adversary.seed = 0xFEED;  // inert: no knobs
    const Graph g = path3();
    SyncEngine eng(g, cfg);
    eng.init_processes([](NodeId) { return std::make_unique<Chatter>(4); });
    return eng.run();
  };
  const RunResult plain = run_once(false);
  const RunResult inert = run_once(true);
  EXPECT_TRUE(plain.completed);
  EXPECT_EQ(plain.rounds, inert.rounds);
  EXPECT_EQ(plain.executed_rounds, inert.executed_rounds);
  EXPECT_EQ(plain.node_steps, inert.node_steps);
  EXPECT_EQ(plain.messages, inert.messages);
  EXPECT_EQ(plain.bits, inert.bits);
  EXPECT_EQ(plain.last_status_change, inert.last_status_change);
  EXPECT_EQ(plain.last_progress, inert.last_progress);
  EXPECT_EQ(inert.crashed, 0u);
}

TEST(Adversary, DropIsBilledButNotDelivered) {
  EngineConfig cfg;
  cfg.adversary.seed = 11;
  cfg.adversary.drop = 1.0;  // every message eaten
  const Graph g = path2();
  SyncEngine eng(g, cfg);
  eng.init_processes([](NodeId slot) {
    return std::make_unique<Chatter>(slot == 0 ? 5 : 0);
  });
  const RunResult res = eng.run();
  EXPECT_TRUE(res.completed);
  EXPECT_EQ(res.messages, 5u);  // the algorithm SPENT five messages...
  EXPECT_EQ(res.bits, 5u * 64u);
  const auto* receiver = dynamic_cast<const Chatter*>(eng.process(1));
  EXPECT_TRUE(receiver->got.empty());  // ...and the adversary ate them all
}

TEST(Adversary, DuplicateIsDeliveredTwiceButBilledOnce) {
  EngineConfig cfg;
  cfg.adversary.seed = 11;
  cfg.adversary.duplicate = 1.0;  // every message doubled
  const Graph g = path2();
  SyncEngine eng(g, cfg);
  eng.init_processes([](NodeId slot) {
    return std::make_unique<Chatter>(slot == 0 ? 3 : 0);
  });
  const RunResult res = eng.run();
  EXPECT_TRUE(res.completed);
  EXPECT_EQ(res.messages, 3u);  // the duplicate is the adversary's forgery
  EXPECT_EQ(res.bits, 3u * 64u);
  const auto* receiver = dynamic_cast<const Chatter*>(eng.process(1));
  ASSERT_EQ(receiver->got.size(), 6u);
  // Copies are adjacent (queued back-to-back on the same lane) and identical.
  for (std::size_t i = 0; i < 6; i += 2)
    EXPECT_EQ(receiver->got[i].second, receiver->got[i + 1].second);
}

TEST(Adversary, DelayIsBoundedAndOlderArrivalsComeFirst) {
  EngineConfig cfg;
  cfg.adversary.seed = 0xD31A;
  cfg.adversary.max_delay = 3;
  const Graph g = path2();
  SyncEngine eng(g, cfg);
  eng.init_processes([](NodeId slot) {
    return std::make_unique<Chatter>(slot == 0 ? 20 : 0);
  });
  const RunResult res = eng.run();
  EXPECT_TRUE(res.completed);
  const auto* receiver = dynamic_cast<const Chatter*>(eng.process(1));
  ASSERT_EQ(receiver->got.size(), 20u);  // delayed, never lost

  for (std::size_t i = 0; i < receiver->got.size(); ++i) {
    const auto [arrived, payload] = receiver->got[i];
    const Round sent = Chatter::sent_round(payload);
    // A message sent in round r arrives in [r + 1, r + 1 + max_delay].
    EXPECT_GE(arrived, sent + 1);
    EXPECT_LE(arrived, sent + 1 + cfg.adversary.max_delay);
    // Within one arrival round, messages delayed from earlier rounds are
    // delivered before fresher ones (the ring drains before the new lanes).
    if (i > 0 && receiver->got[i - 1].first == arrived)
      EXPECT_LE(Chatter::sent_round(receiver->got[i - 1].second), sent);
  }
}

TEST(Adversary, CrashStopHaltsTheNodeMidRun) {
  EngineConfig cfg;
  cfg.adversary.crashes = {{2, 3}};  // node 2 dies at the start of round 3
  const Graph g = path3();
  SyncEngine eng(g, cfg);
  eng.init_processes([](NodeId) { return std::make_unique<Chatter>(8); });
  const RunResult res = eng.run();
  EXPECT_TRUE(res.completed);
  EXPECT_EQ(res.crashed, 1u);

  // The victim neither stepped nor received after its crash round...
  const auto* victim = dynamic_cast<const Chatter*>(eng.process(2));
  for (const auto& [round, payload] : victim->got) EXPECT_LT(round, 3u);
  // ...and its neighbor hears nothing the victim would have sent at or
  // after round 3 (sends from rounds 0-2 still arrive one round later).
  const auto* neighbor = dynamic_cast<const Chatter*>(eng.process(1));
  for (const auto& [round, payload] : neighbor->got) {
    if (payload / 1000 == 2) EXPECT_LT(Chatter::sent_round(payload), 3u);
  }
}

TEST(Adversary, EmptyChurnIntervalIsAPerfectNoOp) {
  // recover == crash is an empty dead window: the engine drops it at build
  // time, and a schedule of ONLY empty intervals must take the exact
  // fault-free hot path — every counter bit-identical to a plain run,
  // nothing crashed, nothing reborn.
  const auto run_once = [](bool noop_churn) {
    EngineConfig cfg;
    cfg.seed = 5;
    if (noop_churn) cfg.adversary.crashes = {{1, 3, 3}, {2, 4, 4}};
    const Graph g = path3();
    SyncEngine eng(g, cfg);
    eng.init_processes([](NodeId) { return std::make_unique<Chatter>(4); });
    return eng.run();
  };
  const RunResult plain = run_once(false);
  const RunResult noop = run_once(true);
  EXPECT_TRUE(noop.completed);
  EXPECT_EQ(plain.rounds, noop.rounds);
  EXPECT_EQ(plain.executed_rounds, noop.executed_rounds);
  EXPECT_EQ(plain.node_steps, noop.node_steps);
  EXPECT_EQ(plain.messages, noop.messages);
  EXPECT_EQ(plain.bits, noop.bits);
  EXPECT_EQ(plain.last_progress, noop.last_progress);
  EXPECT_EQ(noop.crashed, 0u);
  EXPECT_EQ(noop.recoveries, 0u);
  EXPECT_EQ(noop.adv_crash_drops, 0u);
}

TEST(Adversary, RecoveryAfterGlobalTerminationReopensTheRun) {
  // Everyone quiesces by round ~6; node 2's rebirth at 30 must still
  // happen — the fast-forward jumps TO the recovery round, not past it —
  // and the reborn node restarts from its initial state (fresh init, same
  // slot), its new sends reaching the idle survivors.
  EngineConfig cfg;
  cfg.adversary.crashes = {{2, 0, 30}};
  const Graph g = path3();
  SyncEngine eng(g, cfg);
  eng.init_processes([](NodeId) { return std::make_unique<Chatter>(2); });
  const RunResult res = eng.run();
  EXPECT_TRUE(res.completed);
  EXPECT_EQ(res.crashed, 1u);
  EXPECT_EQ(res.recoveries, 1u);
  EXPECT_GE(res.rounds, 31u);

  // The reborn victim is a FRESH process: it woke at round 30 and re-ran
  // its full send budget from scratch.
  const auto* victim = dynamic_cast<const Chatter*>(eng.process(2));
  for (const auto& [round, payload] : victim->got) EXPECT_GE(round, 30u);
  // Its neighbor hears the second life: payloads stamped with send rounds
  // 30 and 31, arriving one round later.
  const auto* neighbor = dynamic_cast<const Chatter*>(eng.process(1));
  std::size_t second_life = 0;
  for (const auto& [round, payload] : neighbor->got) {
    if (payload / 1000 != 2) continue;
    ++second_life;
    EXPECT_GE(Chatter::sent_round(payload), 30u);
    EXPECT_EQ(round, Chatter::sent_round(payload) + 1);
  }
  EXPECT_EQ(second_life, 2u);
}

TEST(Adversary, SameNodeCanChurnTwice) {
  // Two disjoint intervals for one node: dead [1,3), alive [3,5), dead
  // [5,8), alive from 8.  Each interval is one crash + one rebirth, and
  // the final incarnation is again a fresh process.
  EngineConfig cfg;
  cfg.adversary.crashes = {{2, 1, 3}, {2, 5, 8}};
  const Graph g = path3();
  SyncEngine eng(g, cfg);
  eng.init_processes([](NodeId) { return std::make_unique<Chatter>(8); });
  const RunResult res = eng.run();
  EXPECT_TRUE(res.completed);
  EXPECT_EQ(res.crashed, 2u);
  EXPECT_EQ(res.recoveries, 2u);
  // The surviving process object is the THIRD incarnation: nothing it
  // received predates its rebirth round.
  const auto* victim = dynamic_cast<const Chatter*>(eng.process(2));
  for (const auto& [round, payload] : victim->got) EXPECT_GE(round, 8u);
}

TEST(Adversary, CrashedWindowDeliveriesBillAdvCrashDropsOnly) {
  // The split-counter contract: a delivery purged because its receiver sits
  // in a crashed window bills adv_crash_drops — NOT adv_drops (the random
  // delivery-drop counter), and a voluntarily halted receiver's discarded
  // deliveries bill neither.  Node 1 broadcasts six rounds; node 0 churns
  // over [1, 6) (purging the five arrivals of rounds 1-5); node 2 halts
  // immediately, so its five discarded arrivals must stay unbilled.
  EngineConfig cfg;
  cfg.adversary.crashes = {{0, 1, 6}};
  const Graph g = path3();
  SyncEngine eng(g, cfg);
  eng.init_processes([](NodeId slot) -> std::unique_ptr<Process> {
    if (slot == 2) return std::make_unique<Quitter>();
    return std::make_unique<Chatter>(slot == 1 ? 6 : 2);
  });
  const RunResult res = eng.run();
  EXPECT_TRUE(res.completed);
  EXPECT_EQ(res.crashed, 1u);
  EXPECT_EQ(res.recoveries, 1u);
  EXPECT_EQ(res.adv_crash_drops, 5u);  // node 0's dead window only
  EXPECT_EQ(res.adv_drops, 0u);        // no random drops in this run
  // The reborn node 0 hears node 1's round-5 send (arriving exactly at its
  // recovery round) and everything after.
  const auto* reborn = dynamic_cast<const Chatter*>(eng.process(0));
  ASSERT_FALSE(reborn->got.empty());
  EXPECT_EQ(reborn->got.front().first, 6u);
}

TEST(Adversary, ConfigValidationRejectsBadKnobs) {
  {
    EngineConfig cfg;
    cfg.adversary.drop = 1.5;
    EXPECT_THROW(SyncEngine(path2(), cfg), std::invalid_argument);
  }
  {
    EngineConfig cfg;
    cfg.adversary.reorder = -0.25;
    EXPECT_THROW(SyncEngine(path2(), cfg), std::invalid_argument);
  }
  {
    EngineConfig cfg;
    cfg.adversary.crashes = {{9, 1}};  // node out of range for a 2-node graph
    EXPECT_THROW(SyncEngine(path2(), cfg), std::invalid_argument);
  }
  {
    EngineConfig cfg;
    cfg.adversary.crashes = {{1, 5, 2}};  // recovers before it crashes
    EXPECT_THROW(SyncEngine(path2(), cfg), std::invalid_argument);
  }
}

/// Sends for a few rounds, then sleeps far past the horizon — the run hits
/// max_rounds with a long silent tail.
class Staller final : public Process {
 public:
  void on_wake(Context& ctx, std::span<const Envelope>) override {
    FlatMsg m;
    m.type = 3;
    m.channel = 98;
    m.bits = 64;
    ctx.broadcast(m);
    ctx.sleep_until(1'000'000);
  }
  void on_round(Context& ctx, std::span<const Envelope>) override {
    ctx.sleep_until(1'000'000);  // re-arm: a message arrival must not wake us
  }
};

TEST(Adversary, NonTerminationDiagnosticsNameTheStragglers) {
  EngineConfig cfg;
  cfg.max_rounds = 50;
  cfg.fast_forward = false;  // tick through the crash round, don't jump it
  cfg.adversary.crashes = {{1, 2}};
  const Graph g = path3();
  SyncEngine eng(g, cfg);
  eng.init_processes([](NodeId) { return std::make_unique<Staller>(); });
  const RunResult res = eng.run();
  ASSERT_FALSE(res.completed);
  EXPECT_LE(res.last_progress, 3u);  // all progress happened up front
  EXPECT_EQ(res.crashed, 1u);

  // The sample lists the undecided survivors; the crash victim can never
  // decide and must NOT be blamed.
  EXPECT_EQ(res.undecided_nodes.size(), 2u);
  EXPECT_EQ(std::count(res.undecided_nodes.begin(), res.undecided_nodes.end(),
                       NodeId{1}),
            0);

  const std::string d = describe_nontermination(res);
  EXPECT_NE(d.find("max_rounds"), std::string::npos) << d;
  EXPECT_NE(d.find("last progress"), std::string::npos) << d;
  EXPECT_NE(d.find("undecided"), std::string::npos) << d;
}

TEST(Adversary, CompletedUndecidedRunTellsQuiescentStory) {
  // Chatter never decides: the run QUIESCES with every node undecided.  That
  // is the deadlock/starvation shape (as opposed to hitting max_rounds), and
  // since PR 7 it gets its own diagnosis — a drop=1.0 partition or a crashed
  // relay leaves exactly this signature.
  const Graph g = path2();
  SyncEngine eng(g);
  eng.init_processes([](NodeId) { return std::make_unique<Chatter>(2); });
  const RunResult res = eng.run();
  ASSERT_TRUE(res.completed);
  EXPECT_EQ(res.undecided_nodes.size(), 2u);
  const std::string d = describe_nontermination(res);
  EXPECT_NE(d.find("quiesced undecided"), std::string::npos) << d;
  EXPECT_NE(d.find("last progress"), std::string::npos) << d;
  EXPECT_EQ(d.find("max_rounds"), std::string::npos) << d;
}

}  // namespace
}  // namespace ule
