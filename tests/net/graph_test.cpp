#include "net/graph.hpp"

#include <gtest/gtest.h>

#include "net/rng.hpp"

namespace ule {
namespace {

TEST(Graph, TriangleBasics) {
  const Graph g = Graph::from_edges(3, {{0, 1}, {1, 2}, {0, 2}});
  EXPECT_EQ(g.n(), 3u);
  EXPECT_EQ(g.m(), 3u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_EQ(g.degree(2), 2u);
  EXPECT_EQ(g.max_degree(), 2u);
  EXPECT_EQ(g.degree_sum(), 6u);
}

TEST(Graph, ReversePortsAreConsistent) {
  const Graph g = Graph::from_edges(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}});
  for (NodeId u = 0; u < g.n(); ++u) {
    for (PortId p = 0; p < g.degree(u); ++p) {
      const auto& he = g.half_edge(u, p);
      const auto& back = g.half_edge(he.to, he.rev);
      EXPECT_EQ(back.to, u) << "u=" << u << " p=" << p;
      EXPECT_EQ(back.rev, p);
      EXPECT_EQ(back.edge, he.edge);
    }
  }
}

TEST(Graph, EdgeEndpointsNormalized) {
  const Graph g = Graph::from_edges(3, {{2, 0}, {1, 2}});
  EXPECT_EQ(g.edge_endpoints(0), (std::pair<NodeId, NodeId>{0, 2}));
  EXPECT_EQ(g.edge_endpoints(1), (std::pair<NodeId, NodeId>{1, 2}));
}

TEST(Graph, PortToFindsNeighbor) {
  const Graph g = Graph::from_edges(3, {{0, 1}, {1, 2}});
  EXPECT_NE(g.port_to(0, 1), kNoPort);
  EXPECT_EQ(g.port_to(0, 2), kNoPort);
  EXPECT_EQ(g.half_edge(0, g.port_to(0, 1)).to, 1u);
}

TEST(Graph, RejectsSelfLoop) {
  EXPECT_THROW(Graph::from_edges(2, {{0, 0}}), std::invalid_argument);
}

TEST(Graph, RejectsDuplicateEdge) {
  EXPECT_THROW(Graph::from_edges(2, {{0, 1}, {1, 0}}), std::invalid_argument);
}

TEST(Graph, RejectsOutOfRange) {
  EXPECT_THROW(Graph::from_edges(2, {{0, 2}}), std::invalid_argument);
}

TEST(Graph, ShufflePortsPreservesStructure) {
  Graph g = Graph::from_edges(
      5, {{0, 1}, {0, 2}, {0, 3}, {0, 4}, {1, 2}, {2, 3}, {3, 4}});
  Rng rng(42);
  g.shuffle_ports(rng);
  EXPECT_EQ(g.m(), 7u);
  // Reverse-port consistency must survive shuffling.
  for (NodeId u = 0; u < g.n(); ++u) {
    std::vector<bool> seen(g.n(), false);
    for (PortId p = 0; p < g.degree(u); ++p) {
      const auto& he = g.half_edge(u, p);
      EXPECT_FALSE(seen[he.to]) << "duplicate neighbor after shuffle";
      seen[he.to] = true;
      EXPECT_EQ(g.half_edge(he.to, he.rev).to, u);
      EXPECT_EQ(g.half_edge(he.to, he.rev).rev, p);
    }
  }
}

TEST(Graph, ShuffleActuallyPermutes) {
  // With 8 ports at the hub, identity permutation has probability 1/8!.
  Graph g = Graph::from_edges(9, {{0, 1}, {0, 2}, {0, 3}, {0, 4},
                                  {0, 5}, {0, 6}, {0, 7}, {0, 8}});
  const NodeId before = g.half_edge(0, 0).to;
  bool changed = false;
  Rng rng(7);
  for (int i = 0; i < 5 && !changed; ++i) {
    g.shuffle_ports(rng);
    changed = g.half_edge(0, 0).to != before;
  }
  EXPECT_TRUE(changed);
}

TEST(Graph, SummaryMentionsCounts) {
  const Graph g = Graph::from_edges(3, {{0, 1}, {1, 2}});
  EXPECT_EQ(g.summary(), "n=3 m=2 maxdeg=2");
}

}  // namespace
}  // namespace ule
