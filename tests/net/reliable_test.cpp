// Engine-level semantics of the reliable link layer (net/reliable.hpp): the
// disabled wrapper is a bit-for-bit pass-through, the enabled wrapper gives
// the inner protocol exactly-once per-port FIFO delivery under drop +
// duplication + reorder, retransmit/dedup/park work is observable through
// the wrapper's split counters (duplicate_drops vs parked_frames — a parked
// frame is buffered reordering pressure, not a loss), give-up restores
// quiescence under total loss with the death visible in dead_links /
// dead_link_drops and the nontermination diagnosis, and the whole machine is
// deterministic (no RNG, no thread-dependent state).

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "net/engine.hpp"
#include "net/reliable.hpp"

namespace ule {
namespace {

/// Sends `to_send` flat messages on port 0 (one per step, payload = send
/// index), then idles; records every arrival payload in order.
class Courier final : public Process {
 public:
  explicit Courier(int to_send) : left_(to_send) {}

  void on_wake(Context& ctx, std::span<const Envelope> inbox) override {
    step(ctx, inbox);
  }
  void on_round(Context& ctx, std::span<const Envelope> inbox) override {
    step(ctx, inbox);
  }

  std::vector<std::uint64_t> got;

 private:
  void step(Context& ctx, std::span<const Envelope> inbox) {
    for (const Envelope& e : inbox) got.push_back(e.flat.a);
    if (left_ > 0) {
      FlatMsg m;
      m.type = 7;
      m.bits = 64;
      m.a = static_cast<std::uint64_t>(sent_++);
      ctx.send(0, m);
      --left_;
    } else {
      ctx.idle();
    }
  }
  int left_;
  int sent_ = 0;
};

Graph path2() { return Graph::from_edges(2, {{0, 1}}); }

/// Graph + engine, in that member order: SyncEngine holds the graph by
/// reference, so the graph must outlive it.
struct CourierRun {
  Graph g = path2();
  std::unique_ptr<SyncEngine> eng;
};

/// path2 with node 0 sending `k` frames through the wrapper and node 1 just
/// listening.  Returns the run after the engine quiesced.
CourierRun run_courier(const EngineConfig& cfg, int k, ReliableConfig rcfg) {
  CourierRun run;
  run.eng = std::make_unique<SyncEngine>(run.g, cfg);
  run.eng->init_processes([k, rcfg](NodeId slot) -> std::unique_ptr<Process> {
    return std::make_unique<ReliableProcess>(
        std::make_unique<Courier>(slot == 0 ? k : 0), rcfg);
  });
  run.eng->run();
  return run;
}

const Courier* inner_courier(const SyncEngine& eng, NodeId slot) {
  const auto* rel = dynamic_cast<const ReliableProcess*>(eng.process(slot));
  EXPECT_NE(rel, nullptr);
  return dynamic_cast<const Courier*>(rel->inner());
}

TEST(Reliable, DisabledWrapperIsBitForBitPassThrough) {
  // enabled = false must run the inner against the real Context: same
  // counters on every axis as the unwrapped run (the zero-overhead contract
  // the reliable_off_overhead bench row pins at scale).
  EngineConfig cfg;
  cfg.seed = 5;
  const auto plain = [&] {
    const Graph g = path2();
    SyncEngine eng(g, cfg);
    eng.init_processes([](NodeId slot) {
      return std::make_unique<Courier>(slot == 0 ? 4 : 0);
    });
    return eng.run();
  }();
  ReliableConfig off;
  off.enabled = false;
  const CourierRun run = run_courier(cfg, 4, off);
  const RunResult& wrapped = run.eng->result();
  EXPECT_TRUE(plain.completed);
  EXPECT_EQ(plain.rounds, wrapped.rounds);
  EXPECT_EQ(plain.executed_rounds, wrapped.executed_rounds);
  EXPECT_EQ(plain.node_steps, wrapped.node_steps);
  EXPECT_EQ(plain.messages, wrapped.messages);
  EXPECT_EQ(plain.bits, wrapped.bits);
  EXPECT_EQ(plain.last_progress, wrapped.last_progress);
  ASSERT_NE(inner_courier(*run.eng, 1), nullptr);
  EXPECT_EQ(inner_courier(*run.eng, 1)->got.size(), 4u);
}

TEST(Reliable, FaultFreeDeliveryIsExactlyOnceFifoWithHeaderBilling) {
  EngineConfig cfg;
  cfg.seed = 9;
  ReliableConfig rcfg;
  rcfg.rto = 4;
  const CourierRun run = run_courier(cfg, 5, rcfg);
  const RunResult& res = run.eng->result();
  EXPECT_TRUE(res.completed);
  const Courier* rx = inner_courier(*run.eng, 1);
  ASSERT_NE(rx, nullptr);
  EXPECT_EQ(rx->got, (std::vector<std::uint64_t>{0, 1, 2, 3, 4}));
  // Every data frame pays the ARQ header on top of the 64-bit payload; the
  // total also covers whatever standalone acks the idle tail needed.
  EXPECT_GE(res.bits, 5 * (64u + kReliableHeaderBits));
  const auto* tx = dynamic_cast<const ReliableProcess*>(run.eng->process(0));
  ASSERT_NE(tx, nullptr);
  EXPECT_EQ(tx->retransmissions(), 0u);  // nothing lost, nothing re-sent
}

TEST(Reliable, ExactlyOnceFifoUnderDropDupReorder) {
  // The core guarantee: whatever the adversary does in flight — eat frames,
  // double them, shuffle inboxes — the inner protocol sees each payload
  // exactly once, in send order.
  EngineConfig cfg;
  cfg.seed = 21;
  cfg.adversary.seed = 0xBAD;
  cfg.adversary.drop = 0.4;
  cfg.adversary.duplicate = 0.4;
  cfg.adversary.reorder = 0.9;
  ReliableConfig rcfg;
  rcfg.rto = 3;
  rcfg.backoff_cap = 12;
  const CourierRun run = run_courier(cfg, 8, rcfg);
  const RunResult& res = run.eng->result();
  EXPECT_TRUE(res.completed);
  const Courier* rx = inner_courier(*run.eng, 1);
  ASSERT_NE(rx, nullptr);
  EXPECT_EQ(rx->got,
            (std::vector<std::uint64_t>{0, 1, 2, 3, 4, 5, 6, 7}));
  // The adversary really bit: recovery work is visible in the counters.
  // Duplicates eaten and frames parked for reordering are separate stories
  // (a park is NOT a drop — it is delivered later), so they are counted
  // separately; under this mixed fault mask both kinds of work happen.
  const auto* tx = dynamic_cast<const ReliableProcess*>(run.eng->process(0));
  const auto* rxw = dynamic_cast<const ReliableProcess*>(run.eng->process(1));
  ASSERT_NE(tx, nullptr);
  ASSERT_NE(rxw, nullptr);
  EXPECT_GT(tx->retransmissions(), 0u);
  EXPECT_GT(rxw->duplicate_drops(), 0u);
  EXPECT_GT(rxw->parked_frames(), 0u);
  // Nothing died: parks and dups are recoverable faults.
  EXPECT_EQ(tx->dead_links(), 0u);
  EXPECT_EQ(rxw->dead_links(), 0u);
}

TEST(Reliable, DuplicationAloneCountsDuplicatesNotParks) {
  // In-order duplication: every original arrives at the expected seq, every
  // extra copy arrives behind it with seq < expected.  All recovery work is
  // duplicate eating; nothing is ever out of order, so nothing parks.
  EngineConfig cfg;
  cfg.seed = 11;
  cfg.adversary.seed = 0xD0D0;
  cfg.adversary.duplicate = 0.9;
  ReliableConfig rcfg;
  rcfg.rto = 4;
  const CourierRun run = run_courier(cfg, 8, rcfg);
  EXPECT_TRUE(run.eng->result().completed);
  const Courier* rx = inner_courier(*run.eng, 1);
  ASSERT_NE(rx, nullptr);
  EXPECT_EQ(rx->got, (std::vector<std::uint64_t>{0, 1, 2, 3, 4, 5, 6, 7}));
  const auto* rxw = dynamic_cast<const ReliableProcess*>(run.eng->process(1));
  ASSERT_NE(rxw, nullptr);
  EXPECT_GT(rxw->duplicate_drops(), 0u);
  EXPECT_EQ(rxw->parked_frames(), 0u);
}

TEST(Reliable, RunsAreDeterministicAcrossIdenticalReruns) {
  // Zero RNG in the wrapper: same (graph, seeds, config) → same counters,
  // retransmission for retransmission.
  EngineConfig cfg;
  cfg.seed = 33;
  cfg.adversary.seed = 0xF00D;
  cfg.adversary.drop = 0.3;
  cfg.adversary.duplicate = 0.3;
  cfg.adversary.reorder = 0.5;
  ReliableConfig rcfg;
  rcfg.rto = 3;
  const CourierRun a = run_courier(cfg, 6, rcfg);
  const CourierRun b = run_courier(cfg, 6, rcfg);
  EXPECT_EQ(a.eng->result().rounds, b.eng->result().rounds);
  EXPECT_EQ(a.eng->result().messages, b.eng->result().messages);
  EXPECT_EQ(a.eng->result().bits, b.eng->result().bits);
  EXPECT_EQ(a.eng->result().node_steps, b.eng->result().node_steps);
  const auto* ta = dynamic_cast<const ReliableProcess*>(a.eng->process(0));
  const auto* tb = dynamic_cast<const ReliableProcess*>(b.eng->process(0));
  EXPECT_EQ(ta->retransmissions(), tb->retransmissions());
}

TEST(Reliable, GiveUpRestoresQuiescenceUnderTotalLoss) {
  // drop = 1.0 is a partition: no ARQ can push a bit through.  The wrapper
  // must retransmit through its bounded backoff ladder, declare the link
  // dead, and let the run quiesce — not spin to max_rounds.
  EngineConfig cfg;
  cfg.seed = 3;
  cfg.adversary.seed = 0xDEAD;
  cfg.adversary.drop = 1.0;
  ReliableConfig rcfg;
  rcfg.rto = 2;
  rcfg.backoff_cap = 4;
  rcfg.max_retries = 5;  // small ladder keeps the test fast
  const CourierRun run = run_courier(cfg, 3, rcfg);
  const RunResult& res = run.eng->result();
  EXPECT_TRUE(res.completed);  // quiesced, not cut off
  const Courier* rx = inner_courier(*run.eng, 1);
  ASSERT_NE(rx, nullptr);
  EXPECT_TRUE(rx->got.empty());
  const auto* tx = dynamic_cast<const ReliableProcess*>(run.eng->process(0));
  ASSERT_NE(tx, nullptr);
  // Exactly the ladder, go-back-all: each of the max_retries timeouts
  // resends the whole 3-frame queue, then silence.
  EXPECT_EQ(tx->retransmissions(), 15u);
  // The run outlived the full backoff ladder (2 + 4 + 4 + 4 + 4 rounds).
  EXPECT_GE(res.rounds, 18u);
  // The give-up is visible: one dead link at the sender, and the engine's
  // failure sweep surfaced it on the RunResult and in the diagnosis (the
  // couriers never decide, so the run lands in the undecided path).
  EXPECT_EQ(tx->dead_links(), 1u);
  EXPECT_EQ(tx->dead_link_drops(), 0u);  // sender went quiet before death
  EXPECT_EQ(res.dead_links, 1u);
  EXPECT_EQ(res.dead_link_nodes, (std::vector<NodeId>{0}));
  const std::string diag = describe_nontermination(res);
  EXPECT_NE(diag.find("dead ARQ link"), std::string::npos) << diag;
}

/// Sends one frame on port 0 at its first step, sleeps past the give-up
/// ladder, then sends two more into the (by then dead) link and idles.
class LateSender final : public Process {
 public:
  void on_wake(Context& ctx, std::span<const Envelope> inbox) override {
    on_round(ctx, inbox);
  }
  void on_round(Context& ctx, std::span<const Envelope>) override {
    FlatMsg m;
    m.type = 7;
    m.bits = 64;
    if (!sent_first_) {
      sent_first_ = true;
      m.a = 0;
      ctx.send(0, m);
      ctx.sleep_until(40);  // the ladder below is fully exhausted by ~22
      return;
    }
    m.a = 1;
    ctx.send(0, m);
    m.a = 2;
    ctx.send(0, m);
    ctx.idle();
  }

 private:
  bool sent_first_ = false;
};

TEST(Reliable, SendsAfterLinkDeathHealTheLink) {
  // A sender that comes back after the link died: the first post-death
  // enqueue HEALS the edge — the stream re-arms from seq 1 under a fresh
  // epoch instead of silently swallowing the payload.  Under this total
  // partition the healed stream exhausts its retries and dies a second
  // time, so the same run shows the whole life cycle: die, heal, die again
  // — with nothing ever dropped on the floor (dead_link_drops stays 0) and
  // the healing visible on the wrapper, on RunResult, and in the
  // nontermination diagnosis.  (A sender pushing fresh frames every round
  // keeps re-arming the RTO, so the first death only fires once it pauses —
  // hence the sleep.)
  EngineConfig cfg;
  cfg.seed = 3;
  cfg.adversary.seed = 0xDEAD;
  cfg.adversary.drop = 1.0;
  ReliableConfig rcfg;
  rcfg.rto = 2;
  rcfg.backoff_cap = 4;
  rcfg.max_retries = 5;
  Graph g = path2();
  SyncEngine eng(g, cfg);
  eng.init_processes([rcfg](NodeId slot) -> std::unique_ptr<Process> {
    if (slot == 0)
      return std::make_unique<ReliableProcess>(std::make_unique<LateSender>(),
                                               rcfg);
    return std::make_unique<ReliableProcess>(std::make_unique<Courier>(0),
                                             rcfg);
  });
  const RunResult& res = eng.run();
  EXPECT_TRUE(res.completed);
  const auto* tx = dynamic_cast<const ReliableProcess*>(eng.process(0));
  ASSERT_NE(tx, nullptr);
  EXPECT_EQ(tx->dead_links(), 2u);       // died, healed, died again
  EXPECT_EQ(tx->healed_links(), 1u);
  EXPECT_EQ(tx->dead_link_drops(), 0u);  // healing swallows nothing
  EXPECT_EQ(res.dead_links, 2u);
  EXPECT_EQ(res.healed_links, 1u);
  EXPECT_EQ(res.dead_link_drops, 0u);
  const std::string diag = describe_nontermination(res);
  EXPECT_NE(diag.find("later healed"), std::string::npos) << diag;
}

TEST(Reliable, BackoffCapBoundsTheRetransmitInterval) {
  // Same partition, uncapped-ish vs tightly capped: the capped ladder must
  // finish its retries strictly sooner (interval = min(rto << k, cap)).
  EngineConfig cfg;
  cfg.seed = 3;
  cfg.adversary.seed = 0xDEAD;
  cfg.adversary.drop = 1.0;
  ReliableConfig wide;
  wide.rto = 2;
  wide.backoff_cap = 64;
  wide.max_retries = 6;
  ReliableConfig tight = wide;
  tight.backoff_cap = 2;
  const CourierRun slow = run_courier(cfg, 1, wide);
  const CourierRun fast = run_courier(cfg, 1, tight);
  EXPECT_TRUE(slow.eng->result().completed);
  EXPECT_TRUE(fast.eng->result().completed);
  EXPECT_LT(fast.eng->result().rounds, slow.eng->result().rounds);
}

/// Sends one payload per step for rounds [0, 9), pauses (letting the
/// retransmit ladder exhaust and the link die), then resumes with four more
/// payloads — the resume heals the link mid-burst.
class PauseSender final : public Process {
 public:
  void on_wake(Context& ctx, std::span<const Envelope> inbox) override {
    step(ctx, inbox);
  }
  void on_round(Context& ctx, std::span<const Envelope> inbox) override {
    step(ctx, inbox);
  }

 private:
  void step(Context& ctx, std::span<const Envelope>) {
    if (ctx.round() < 9) {
      FlatMsg m;
      m.type = 7;
      m.bits = 64;
      m.a = static_cast<std::uint64_t>(n_++);
      ctx.send(0, m);
    } else if (ctx.round() < 16) {
      ctx.sleep_until(16);  // the pause that lets the give-up fire
    } else if (left_ > 0) {
      --left_;
      FlatMsg m;
      m.type = 7;
      m.bits = 64;
      m.a = static_cast<std::uint64_t>(n_++);
      ctx.send(0, m);
    } else {
      ctx.idle();
    }
  }
  int n_ = 0;
  int left_ = 4;
};

TEST(Reliable, HealingMidBurstDropsStaleEpochFramesWithoutResequencing) {
  // The heal-mid-retransmit-burst race: the link gives up during the pause
  // (clearing the first epoch's queue), the resume heals it onto a fresh
  // epoch, and DELAYED retransmit copies from the dead epoch are still in
  // flight.  The adversary seed is pinned (found by scanning) so that at
  // least one stale copy arrives AFTER the receiver adopted the new epoch:
  // it must be discarded and counted — never parked or delivered — or a
  // dead life's seq numbers would corrupt the successor stream's cursor.
  EngineConfig cfg;
  cfg.seed = 3;
  cfg.adversary.seed = 229;
  cfg.adversary.drop = 0.9;
  cfg.adversary.max_delay = 6;
  cfg.adversary.duplicate = 0.3;
  ReliableConfig rcfg;
  rcfg.rto = 2;
  rcfg.backoff_cap = 2;
  rcfg.max_retries = 2;
  Graph g = path2();
  SyncEngine eng(g, cfg);
  eng.init_processes([rcfg](NodeId slot) -> std::unique_ptr<Process> {
    if (slot == 0)
      return std::make_unique<ReliableProcess>(std::make_unique<PauseSender>(),
                                               rcfg);
    return std::make_unique<ReliableProcess>(std::make_unique<Courier>(0),
                                             rcfg);
  });
  const RunResult& res = eng.run();
  EXPECT_TRUE(res.completed);

  const auto* tx = dynamic_cast<const ReliableProcess*>(eng.process(0));
  const auto* rxw = dynamic_cast<const ReliableProcess*>(eng.process(1));
  ASSERT_NE(tx, nullptr);
  ASSERT_NE(rxw, nullptr);
  // First epoch dies in the pause, heals at the resume; the tail of the
  // resume burst dies again once the sender falls silent for good.
  EXPECT_EQ(tx->dead_links(), 2u);
  EXPECT_EQ(tx->healed_links(), 1u);
  EXPECT_EQ(tx->dead_link_drops(), 0u);
  // The stale copies from the dead epoch reached the receiver after it had
  // adopted the healed epoch: discarded and counted, not resequenced.
  EXPECT_EQ(rxw->stale_epoch_drops(), 2u);

  // Not resequenced, concretely: the inner receiver saw ONLY the healed
  // epoch's prefix, in FIFO order, with no dead-epoch payload spliced in
  // (payloads 0..8 belong to the first life whose queue died with it).
  const Courier* rx = inner_courier(eng, 1);
  ASSERT_NE(rx, nullptr);
  EXPECT_EQ(rx->got, (std::vector<std::uint64_t>{9, 10}));
}

}  // namespace
}  // namespace ule
