// PortOutbox unit tests: the CONGEST pacing queue must deliver one message
// per port per round, in FIFO order per port, and report backlog correctly.

#include "net/outbox.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/knowledge.hpp"

namespace ule {
namespace {

struct TagMsg final : Message {
  int tag = 0;
  explicit TagMsg(int t) : tag(t) {}
  std::uint32_t size_bits() const override { return wire::kTypeTag; }
  std::string debug_string() const override {
    return "tag(" + std::to_string(tag) + ")";
  }
};

/// Minimal Context: records sends, stubs everything else.
class RecorderCtx final : public Context {
 public:
  explicit RecorderCtx(std::size_t degree) : degree_(degree) {}

  std::vector<std::pair<PortId, int>> sent;

  NodeId slot() const override { return 0; }
  std::size_t degree() const override { return degree_; }
  bool anonymous() const override { return true; }
  Uid uid() const override { throw std::logic_error("anonymous"); }
  Round round() const override { return 0; }
  Rng& rng() override { return rng_; }
  const Knowledge& knowledge() const override { return knowledge_; }
  void send(PortId port, MessagePtr msg) override {
    const auto* tm = dynamic_cast<const TagMsg*>(msg.get());
    sent.emplace_back(port, tm ? tm->tag : -1);
  }
  void send(PortId port, const FlatMsg& msg) override {
    sent.emplace_back(port, static_cast<int>(msg.a));
  }
  void set_status(Status) override {}
  Status status() const override { return Status::Undecided; }
  void idle() override {}
  void sleep_until(Round) override {}
  void halt() override {}

 private:
  std::size_t degree_;
  Rng rng_{1};
  Knowledge knowledge_;
};

TEST(PortOutbox, EmptyFlushSendsNothing) {
  PortOutbox ob;
  RecorderCtx ctx(3);
  EXPECT_TRUE(ob.empty());
  EXPECT_FALSE(ob.flush(ctx));
  EXPECT_TRUE(ctx.sent.empty());
}

TEST(PortOutbox, OneMessagePerPortPerFlush) {
  PortOutbox ob;
  RecorderCtx ctx(2);
  ob.queue(0, std::make_shared<TagMsg>(1));
  ob.queue(0, std::make_shared<TagMsg>(2));
  ob.queue(1, std::make_shared<TagMsg>(3));

  EXPECT_EQ(ob.backlog(), 3u);
  EXPECT_TRUE(ob.flush(ctx));  // one left on port 0
  ASSERT_EQ(ctx.sent.size(), 2u);
  EXPECT_EQ(ctx.sent[0], (std::pair<PortId, int>{0, 1}));
  EXPECT_EQ(ctx.sent[1], (std::pair<PortId, int>{1, 3}));

  EXPECT_FALSE(ob.flush(ctx));  // drains the rest
  ASSERT_EQ(ctx.sent.size(), 3u);
  EXPECT_EQ(ctx.sent[2], (std::pair<PortId, int>{0, 2}));
  EXPECT_TRUE(ob.empty());
}

TEST(PortOutbox, FifoPerPortAcrossManyFlushes) {
  PortOutbox ob;
  RecorderCtx ctx(1);
  for (int i = 0; i < 10; ++i) ob.queue(0, std::make_shared<TagMsg>(i));
  int flushes = 0;
  while (ob.flush(ctx)) ++flushes;
  EXPECT_EQ(flushes, 9);  // 10th flush returns false (queue emptied)
  ASSERT_EQ(ctx.sent.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(ctx.sent[i].second, i);
}

TEST(PortOutbox, QueueBroadcastHitsEveryPort) {
  PortOutbox ob;
  RecorderCtx ctx(4);
  ob.queue_broadcast(ctx, std::make_shared<TagMsg>(9));
  EXPECT_EQ(ob.backlog(), 4u);
  EXPECT_FALSE(ob.flush(ctx));
  ASSERT_EQ(ctx.sent.size(), 4u);
  for (PortId p = 0; p < 4; ++p) {
    EXPECT_EQ(ctx.sent[p].first, p);
    EXPECT_EQ(ctx.sent[p].second, 9);
  }
}

TEST(PortOutbox, InterleavesPortsIndependently) {
  PortOutbox ob;
  RecorderCtx ctx(2);
  ob.queue(1, std::make_shared<TagMsg>(10));
  ob.queue(1, std::make_shared<TagMsg>(11));
  EXPECT_TRUE(ob.flush(ctx));  // port1: 10
  ob.queue(0, std::make_shared<TagMsg>(20));
  EXPECT_FALSE(ob.flush(ctx));  // port0: 20, port1: 11 — both drained
  ASSERT_EQ(ctx.sent.size(), 3u);
  EXPECT_EQ(ctx.sent[0], (std::pair<PortId, int>{1, 10}));
  EXPECT_EQ(ctx.sent[1], (std::pair<PortId, int>{0, 20}));
  EXPECT_EQ(ctx.sent[2], (std::pair<PortId, int>{1, 11}));
}

TEST(PortOutbox, BacklogCountsExactly) {
  PortOutbox ob;
  RecorderCtx ctx(3);
  EXPECT_EQ(ob.backlog(), 0u);
  ob.queue(2, std::make_shared<TagMsg>(1));
  ob.queue(2, std::make_shared<TagMsg>(2));
  ob.queue(0, std::make_shared<TagMsg>(3));
  EXPECT_EQ(ob.backlog(), 3u);
  ob.flush(ctx);
  EXPECT_EQ(ob.backlog(), 1u);
  ob.flush(ctx);
  EXPECT_EQ(ob.backlog(), 0u);
}

}  // namespace
}  // namespace ule
