// Engine execution tracing: wakes, sends (with payload debug strings) and
// status changes, recorded in execution order and rendered round-by-round.

#include <gtest/gtest.h>

#include <algorithm>

#include "election/flood_max.hpp"
#include "graphgen/generators.hpp"
#include "net/engine.hpp"

namespace ule {
namespace {

SyncEngine traced_run(const Graph& g, std::size_t limit) {
  EngineConfig cfg;
  cfg.seed = 2;
  cfg.trace_limit = limit;
  SyncEngine eng(g, cfg);
  Rng id_rng(8);
  eng.set_uids(assign_ids(g.n(), IdScheme::Sequential, id_rng));
  eng.init_processes(make_flood_max());
  eng.run();
  return eng;
}

TEST(Trace, OffByDefault) {
  const Graph g = make_path(4);
  EngineConfig cfg;
  SyncEngine eng(g, cfg);
  Rng id_rng(8);
  eng.set_uids(assign_ids(g.n(), IdScheme::Sequential, id_rng));
  eng.init_processes(make_flood_max());
  eng.run();
  EXPECT_TRUE(eng.trace().empty());
  EXPECT_FALSE(eng.trace_truncated());
}

TEST(Trace, RecordsWakesSendsAndStatusChanges) {
  const Graph g = make_path(3);
  const SyncEngine eng = traced_run(g, 10'000);
  const auto& tr = eng.trace();

  const auto count = [&](TraceEvent::Kind k) {
    return std::count_if(tr.begin(), tr.end(),
                         [k](const TraceEvent& e) { return e.kind == k; });
  };
  EXPECT_EQ(count(TraceEvent::Kind::Wake), 3);  // every node wakes once
  // Every counted message has a Send event.
  EXPECT_EQ(static_cast<std::uint64_t>(count(TraceEvent::Kind::Send)),
            eng.result().messages);
  // Every node decides exactly once here: 1 elected + 2 non-elected.
  EXPECT_EQ(count(TraceEvent::Kind::StatusChange), 3);
}

TEST(Trace, EventsAreInNondecreasingRoundOrder) {
  const Graph g = make_cycle(8);
  const SyncEngine eng = traced_run(g, 10'000);
  const auto& tr = eng.trace();
  ASSERT_FALSE(tr.empty());
  for (std::size_t i = 1; i < tr.size(); ++i)
    EXPECT_LE(tr[i - 1].round, tr[i].round);
}

TEST(Trace, SendEventsCarryEndpointsAndPayload) {
  const Graph g = make_path(2);
  const SyncEngine eng = traced_run(g, 100);
  bool saw_send = false;
  for (const auto& ev : eng.trace()) {
    if (ev.kind != TraceEvent::Kind::Send) continue;
    saw_send = true;
    EXPECT_LT(ev.node, 2u);
    EXPECT_LT(ev.peer, 2u);
    EXPECT_NE(ev.node, ev.peer);
    EXPECT_FALSE(ev.detail.empty());
  }
  EXPECT_TRUE(saw_send);
}

TEST(Trace, LimitTruncatesAndFlags) {
  const Graph g = make_complete(6);
  const SyncEngine eng = traced_run(g, 5);
  EXPECT_EQ(eng.trace().size(), 5u);
  EXPECT_TRUE(eng.trace_truncated());
}

TEST(Trace, FormatMentionsRoundsAndElection) {
  const Graph g = make_path(3);
  const SyncEngine eng = traced_run(g, 10'000);
  const std::string text = format_trace(eng);
  EXPECT_NE(text.find("--- round 0 ---"), std::string::npos);
  EXPECT_NE(text.find("wakes"), std::string::npos);
  EXPECT_NE(text.find("status := elected"), std::string::npos);
  EXPECT_NE(text.find("non-elected"), std::string::npos);
}

TEST(Trace, FormatRespectsLineBudget) {
  const Graph g = make_complete(8);
  const SyncEngine eng = traced_run(g, 100'000);
  const std::string text = format_trace(eng, 10);
  EXPECT_NE(text.find("truncated at 10 lines"), std::string::npos);
  EXPECT_LE(std::count(text.begin(), text.end(), '\n'), 10 + 4);
}

}  // namespace
}  // namespace ule
