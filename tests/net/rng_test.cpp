#include "net/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace ule {
namespace {

TEST(Rng, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowIsInRange) {
  Rng r(99);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, InRangeInclusive) {
  Rng r(5);
  bool lo = false, hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.in_range(3, 6);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 6u);
    lo |= (v == 3);
    hi |= (v == 6);
  }
  EXPECT_TRUE(lo);
  EXPECT_TRUE(hi);
}

TEST(Rng, FlipIsRoughlyFair) {
  Rng r(31337);
  int heads = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) heads += r.flip();
  // 6 sigma around 10000 for p=1/2.
  EXPECT_NEAR(heads, trials / 2, 6 * std::sqrt(trials / 4.0));
}

TEST(Rng, BernoulliExtremes) {
  Rng r(1);
  EXPECT_FALSE(r.bernoulli(0.0));
  EXPECT_TRUE(r.bernoulli(1.0));
}

TEST(Rng, BernoulliRate) {
  Rng r(77);
  int hits = 0;
  const int trials = 50000;
  for (int i = 0; i < trials; ++i) hits += r.bernoulli(0.1);
  EXPECT_NEAR(hits, trials / 10, 6 * std::sqrt(trials * 0.09));
}

TEST(Rng, Uniform01Bounds) {
  Rng r(8);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, NodeRngsAreIndependentStreams) {
  Rng a = node_rng(1, 0);
  Rng b = node_rng(1, 1);
  std::set<std::uint64_t> va, vb;
  for (int i = 0; i < 32; ++i) {
    va.insert(a());
    vb.insert(b());
  }
  std::set<std::uint64_t> inter;
  for (const auto v : va)
    if (vb.count(v)) inter.insert(v);
  EXPECT_TRUE(inter.empty());
}

TEST(Rng, SplitmixAdvancesState) {
  std::uint64_t s = 0;
  const auto a = splitmix64(s);
  const auto b = splitmix64(s);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace ule
