#include "net/ids.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace ule {
namespace {

TEST(Ids, SequentialIsIota) {
  Rng rng(1);
  const auto ids = assign_ids(5, IdScheme::Sequential, rng);
  EXPECT_EQ(ids, (std::vector<Uid>{1, 2, 3, 4, 5}));
}

TEST(Ids, ReverseSequential) {
  Rng rng(1);
  const auto ids = assign_ids(4, IdScheme::ReverseSequential, rng);
  EXPECT_EQ(ids, (std::vector<Uid>{4, 3, 2, 1}));
}

TEST(Ids, PermutationIsPermutation) {
  Rng rng(99);
  const auto ids = assign_ids(50, IdScheme::RandomPermutation, rng);
  std::set<Uid> s(ids.begin(), ids.end());
  EXPECT_EQ(s.size(), 50u);
  EXPECT_EQ(*s.begin(), 1u);
  EXPECT_EQ(*s.rbegin(), 50u);
}

TEST(Ids, RandomFromZDistinctAndInRange) {
  Rng rng(7);
  const std::size_t n = 64;
  const auto ids = assign_ids(n, IdScheme::RandomFromZ, rng);
  std::set<Uid> s(ids.begin(), ids.end());
  EXPECT_EQ(s.size(), n);
  const auto z = id_space_size(n);
  for (const Uid id : ids) {
    EXPECT_GE(id, 1u);
    EXPECT_LE(id, z);
  }
}

TEST(Ids, SpaceSizeIsNFourth) {
  EXPECT_EQ(id_space_size(10), 10000u);
  EXPECT_EQ(id_space_size(100), 100000000u);
}

TEST(Ids, SpaceSizeSaturates) {
  EXPECT_EQ(id_space_size(1u << 20), std::uint64_t{1} << 62);
}

TEST(Ids, ToStringCoversAll) {
  EXPECT_STREQ(to_string(IdScheme::Sequential), "sequential");
  EXPECT_STREQ(to_string(IdScheme::ReverseSequential), "reverse");
  EXPECT_STREQ(to_string(IdScheme::RandomPermutation), "permutation");
  EXPECT_STREQ(to_string(IdScheme::RandomFromZ), "random-Z");
}

}  // namespace
}  // namespace ule
