#include "net/engine.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "net/wakeup.hpp"

namespace ule {
namespace {

struct TestMsg final : Message {
  std::uint64_t payload = 0;
  std::uint32_t bits = 64;
  std::uint32_t size_bits() const override { return bits; }
};

std::shared_ptr<TestMsg> tm(std::uint64_t payload, std::uint32_t bits = 64) {
  auto m = std::make_shared<TestMsg>();
  m->payload = payload;
  m->bits = bits;
  return m;
}

/// Sends one message on port 0 at wake, records everything it receives.
class PingProcess : public Process {
 public:
  void on_wake(Context& ctx, std::span<const Envelope>) override {
    wake_round = ctx.round();
    if (ctx.slot() == 0) ctx.send(0, tm(41));
    ctx.idle();
  }
  void on_round(Context& ctx, std::span<const Envelope> inbox) override {
    for (const auto& env : inbox) {
      received_round = ctx.round();
      received_port = env.port;
      received_value = dynamic_cast<const TestMsg&>(*env.msg).payload;
    }
    ctx.idle();
  }
  Round wake_round = kRoundForever;
  Round received_round = kRoundForever;
  PortId received_port = kNoPort;
  std::uint64_t received_value = 0;
};

Graph path2() { return Graph::from_edges(2, {{0, 1}}); }

TEST(Engine, MessageDeliveredNextRoundOnCorrectPort) {
  const Graph g = path2();
  SyncEngine eng(g);
  eng.init_processes([](NodeId) { return std::make_unique<PingProcess>(); });
  const RunResult res = eng.run();

  EXPECT_TRUE(res.completed);
  EXPECT_EQ(res.messages, 1u);
  const auto* p1 = dynamic_cast<const PingProcess*>(eng.process(1));
  EXPECT_EQ(p1->received_round, 1u);  // sent in round 0, received in round 1
  EXPECT_EQ(p1->received_value, 41u);
  EXPECT_EQ(p1->received_port, 0u);
}

TEST(Engine, QuiescesAndReportsRounds) {
  const Graph g = path2();
  SyncEngine eng(g);
  eng.init_processes([](NodeId) { return std::make_unique<PingProcess>(); });
  const RunResult res = eng.run();
  EXPECT_TRUE(res.completed);
  // Round 0: wake + send; round 1: delivery; quiescent after.
  EXPECT_EQ(res.rounds, 2u);
}

class StatusProcess : public Process {
 public:
  explicit StatusProcess(Status s) : s_(s) {}
  void on_wake(Context& ctx, std::span<const Envelope>) override {
    ctx.set_status(s_);
    ctx.halt();
  }
  void on_round(Context&, std::span<const Envelope>) override {}

 private:
  Status s_;
};

TEST(Engine, StatusAccounting) {
  const Graph g = Graph::from_edges(3, {{0, 1}, {1, 2}});
  SyncEngine eng(g);
  eng.init_processes([](NodeId slot) {
    return std::make_unique<StatusProcess>(slot == 1 ? Status::Elected
                                                     : Status::NonElected);
  });
  const RunResult res = eng.run();
  EXPECT_EQ(res.elected, 1u);
  EXPECT_EQ(res.non_elected, 2u);
  EXPECT_EQ(res.undecided, 0u);
  EXPECT_EQ(eng.status(1), Status::Elected);
}

class SleeperProcess : public Process {
 public:
  void on_wake(Context& ctx, std::span<const Envelope>) override {
    ctx.sleep_until(1'000'000);
  }
  void on_round(Context& ctx, std::span<const Envelope>) override {
    fired_at = ctx.round();
    ctx.halt();
  }
  Round fired_at = kRoundForever;
};

TEST(Engine, FastForwardSkipsQuietRounds) {
  const Graph g = path2();
  SyncEngine eng(g);
  eng.init_processes([](NodeId) { return std::make_unique<SleeperProcess>(); });
  const RunResult res = eng.run();
  EXPECT_TRUE(res.completed);
  const auto* p = dynamic_cast<const SleeperProcess*>(eng.process(0));
  EXPECT_EQ(p->fired_at, 1'000'000u);
  EXPECT_EQ(res.rounds, 1'000'001u);  // logical rounds, simulated in O(1)
}

class LateWakeProbe : public Process {
 public:
  void on_wake(Context& ctx, std::span<const Envelope> inbox) override {
    wake_round = ctx.round();
    woke_with_message = !inbox.empty();
    if (ctx.slot() == 0) ctx.send(0, tm(7));
    ctx.idle();
  }
  void on_round(Context& ctx, std::span<const Envelope>) override {
    ctx.idle();
  }
  Round wake_round = kRoundForever;
  bool woke_with_message = false;
};

TEST(Engine, MessageWakesSleepingNode) {
  const Graph g = path2();
  SyncEngine eng(g);
  eng.set_wakeup(single_wakeup(2, 0));  // node 1 sleeps until contacted
  eng.init_processes([](NodeId) { return std::make_unique<LateWakeProbe>(); });
  eng.run();
  const auto* p1 = dynamic_cast<const LateWakeProbe*>(eng.process(1));
  EXPECT_EQ(p1->wake_round, 1u);
  EXPECT_TRUE(p1->woke_with_message);
}

TEST(Engine, ScheduledWakeupRespected) {
  const Graph g = path2();
  SyncEngine eng(g);
  eng.set_wakeup({0, 5});
  eng.init_processes([](NodeId) { return std::make_unique<LateWakeProbe>(); });
  eng.run();
  const auto* p1 = dynamic_cast<const LateWakeProbe*>(eng.process(1));
  // Node 0's wake message arrives at round 1, before the scheduled round 5.
  EXPECT_EQ(p1->wake_round, 1u);
}

class DoubleSender : public Process {
 public:
  void on_wake(Context& ctx, std::span<const Envelope>) override {
    if (ctx.slot() == 0) {
      ctx.send(0, tm(1));
      ctx.send(0, tm(2));  // CONGEST violation: same port, same round
    }
    ctx.idle();
  }
  void on_round(Context& ctx, std::span<const Envelope>) override { ctx.idle(); }
};

TEST(Engine, CongestEnforceThrowsOnDuplicatePort) {
  const Graph g = path2();
  EngineConfig cfg;
  cfg.congest = CongestMode::Enforce;
  SyncEngine eng(g, cfg);
  eng.init_processes([](NodeId) { return std::make_unique<DoubleSender>(); });
  EXPECT_THROW(eng.run(), std::runtime_error);
}

TEST(Engine, CongestCountRecordsViolations) {
  const Graph g = path2();
  EngineConfig cfg;
  cfg.congest = CongestMode::Count;
  SyncEngine eng(g, cfg);
  eng.init_processes([](NodeId) { return std::make_unique<DoubleSender>(); });
  const RunResult res = eng.run();
  EXPECT_EQ(res.congest_violations, 1u);
}

class BigSender : public Process {
 public:
  void on_wake(Context& ctx, std::span<const Envelope>) override {
    if (ctx.slot() == 0) ctx.send(0, tm(1, 100'000));  // way over budget
    ctx.idle();
  }
  void on_round(Context& ctx, std::span<const Envelope>) override { ctx.idle(); }
};

TEST(Engine, CongestEnforcesMessageSize) {
  const Graph g = path2();
  EngineConfig cfg;
  cfg.congest = CongestMode::Enforce;
  SyncEngine eng(g, cfg);
  eng.init_processes([](NodeId) { return std::make_unique<BigSender>(); });
  EXPECT_THROW(eng.run(), std::runtime_error);
}

TEST(Engine, WatchEdgesRecordFirstCrossing) {
  // 0-1-2: watch edge (1,2); node 0 pings, node 1 relays.
  const Graph g = Graph::from_edges(3, {{0, 1}, {1, 2}});
  class Relay : public Process {
   public:
    void on_wake(Context& ctx, std::span<const Envelope>) override {
      if (ctx.slot() == 0) ctx.send(0, tm(9));
      ctx.idle();
    }
    void on_round(Context& ctx, std::span<const Envelope> inbox) override {
      if (ctx.slot() == 1 && !inbox.empty()) {
        for (PortId p = 0; p < ctx.degree(); ++p)
          if (p != inbox[0].port) ctx.send(p, tm(9));
      }
      ctx.idle();
    }
  };
  EngineConfig cfg;
  cfg.watch_edges = {1};  // edge (1,2)
  SyncEngine eng(g, cfg);
  eng.init_processes([](NodeId) { return std::make_unique<Relay>(); });
  eng.run();
  ASSERT_EQ(eng.watch_reports().size(), 1u);
  const WatchReport& w = eng.watch_reports()[0];
  EXPECT_EQ(w.first_cross, 1u);             // relayed in round 1
  EXPECT_EQ(w.messages_before_cross, 1u);   // only the original ping
}

TEST(Engine, MessageTimelineAndMessagesBefore) {
  const Graph g = path2();
  class Chatter : public Process {
   public:
    void on_wake(Context& ctx, std::span<const Envelope>) override {
      ctx.send(0, tm(1));
    }
    void on_round(Context& ctx, std::span<const Envelope>) override {
      if (ctx.round() < 3) ctx.send(0, tm(1));
      else ctx.idle();
    }
  };
  EngineConfig cfg;
  cfg.record_message_timeline = true;
  SyncEngine eng(g, cfg);
  eng.init_processes([](NodeId) { return std::make_unique<Chatter>(); });
  eng.run();
  // Rounds 0,1,2 send 2 messages each.
  EXPECT_EQ(eng.messages_before(1), 2u);
  EXPECT_EQ(eng.messages_before(2), 4u);
  EXPECT_EQ(eng.messages_before(100), 6u);
}

TEST(Engine, MaxRoundsStopsRun) {
  const Graph g = path2();
  class Forever : public Process {
   public:
    void on_wake(Context& ctx, std::span<const Envelope>) override {
      ctx.send(0, tm(1));
    }
    void on_round(Context& ctx, std::span<const Envelope>) override {
      ctx.send(0, tm(1));
    }
  };
  EngineConfig cfg;
  cfg.max_rounds = 50;
  SyncEngine eng(g, cfg);
  eng.init_processes([](NodeId) { return std::make_unique<Forever>(); });
  const RunResult res = eng.run();
  EXPECT_FALSE(res.completed);
  EXPECT_EQ(res.rounds, 50u);
}

TEST(Engine, AnonymousUidThrows) {
  const Graph g = path2();
  class UidAsker : public Process {
   public:
    void on_wake(Context& ctx, std::span<const Envelope>) override {
      EXPECT_TRUE(ctx.anonymous());
      EXPECT_THROW(ctx.uid(), std::logic_error);
      ctx.halt();
    }
    void on_round(Context&, std::span<const Envelope>) override {}
  };
  SyncEngine eng(g);  // no uids set => anonymous
  eng.init_processes([](NodeId) { return std::make_unique<UidAsker>(); });
  eng.run();
}

TEST(Engine, UidsExposedWhenSet) {
  const Graph g = path2();
  class UidReader : public Process {
   public:
    void on_wake(Context& ctx, std::span<const Envelope>) override {
      uid = ctx.uid();
      ctx.halt();
    }
    void on_round(Context&, std::span<const Envelope>) override {}
    Uid uid = 0;
  };
  SyncEngine eng(g);
  eng.set_uids({42, 17});
  eng.init_processes([](NodeId) { return std::make_unique<UidReader>(); });
  eng.run();
  EXPECT_EQ(dynamic_cast<const UidReader*>(eng.process(0))->uid, 42u);
  EXPECT_EQ(dynamic_cast<const UidReader*>(eng.process(1))->uid, 17u);
  EXPECT_EQ(eng.uid_of(1), 17u);
}

TEST(Engine, RunTwiceThrows) {
  const Graph g = path2();
  SyncEngine eng(g);
  eng.init_processes([](NodeId) { return std::make_unique<PingProcess>(); });
  eng.run();
  EXPECT_THROW(eng.run(), std::logic_error);
}

TEST(Engine, SendOnBadPortThrows) {
  const Graph g = path2();
  class BadSender : public Process {
   public:
    void on_wake(Context& ctx, std::span<const Envelope>) override {
      ctx.send(5, tm(1));
    }
    void on_round(Context&, std::span<const Envelope>) override {}
  };
  SyncEngine eng(g);
  eng.init_processes([](NodeId) { return std::make_unique<BadSender>(); });
  EXPECT_THROW(eng.run(), std::out_of_range);
}

TEST(Engine, HaltedNodeStillCountsIncomingMessages) {
  const Graph g = path2();
  class HaltThenReceive : public Process {
   public:
    void on_wake(Context& ctx, std::span<const Envelope>) override {
      if (ctx.slot() == 1) {
        ctx.halt();
      } else {
        ctx.send(0, tm(1));
        ctx.idle();
      }
    }
    void on_round(Context& ctx, std::span<const Envelope>) override {
      ctx.idle();
    }
  };
  SyncEngine eng(g);
  eng.init_processes([](NodeId) { return std::make_unique<HaltThenReceive>(); });
  const RunResult res = eng.run();
  EXPECT_TRUE(res.completed);     // dropped delivery doesn't deadlock
  EXPECT_EQ(res.messages, 1u);    // the send is still counted
}

TEST(Engine, DeterministicAcrossRuns) {
  for (int rep = 0; rep < 2; ++rep) {
    const Graph g = path2();
    EngineConfig cfg;
    cfg.seed = 9;
    SyncEngine eng(g, cfg);
    eng.init_processes([](NodeId) { return std::make_unique<PingProcess>(); });
    const RunResult res = eng.run();
    EXPECT_EQ(res.rounds, 2u);
    EXPECT_EQ(res.messages, 1u);
  }
}

TEST(Engine, SentByNodeTracksSenders) {
  const Graph g = path2();
  SyncEngine eng(g);
  eng.init_processes([](NodeId) { return std::make_unique<PingProcess>(); });
  eng.run();
  EXPECT_EQ(eng.sent_by_node()[0], 1u);
  EXPECT_EQ(eng.sent_by_node()[1], 0u);
}

TEST(Engine, EdgeTrafficRecorded) {
  const Graph g = path2();
  EngineConfig cfg;
  cfg.record_edge_traffic = true;
  SyncEngine eng(g, cfg);
  eng.init_processes([](NodeId) { return std::make_unique<PingProcess>(); });
  eng.run();
  EXPECT_EQ(eng.edge_traffic()[0], 1u);
}

}  // namespace
}  // namespace ule
