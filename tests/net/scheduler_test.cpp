// Active-set scheduler unit tests: the event-driven runnable set (dirty list
// + wake-deadline min-heap) must reproduce the semantics of the original
// full-scan scheduler — staggered wakeups fire exactly on schedule,
// fast-forward jumps over quiet stretches via the heap top, stale heap
// entries (a node woken early by a message, then re-sleeping) never cause
// spurious wakeups, and halting with messages still in flight quiesces
// cleanly.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/engine.hpp"
#include "net/wakeup.hpp"

namespace ule {
namespace {

struct PingMsg final : Message {
  std::uint32_t size_bits() const override { return 64; }
};

MessagePtr ping() { return std::make_shared<PingMsg>(); }

/// Records every round it runs; configurable action per run.
class ProbeProcess : public Process {
 public:
  void on_wake(Context& ctx, std::span<const Envelope> inbox) override {
    ran_at.push_back(ctx.round());
    act(ctx, inbox);
  }
  void on_round(Context& ctx, std::span<const Envelope> inbox) override {
    ran_at.push_back(ctx.round());
    act(ctx, inbox);
  }
  virtual void act(Context& ctx, std::span<const Envelope>) { ctx.idle(); }

  std::vector<Round> ran_at;
};

Graph path4() { return Graph::from_edges(4, {{0, 1}, {1, 2}, {2, 3}}); }

TEST(Scheduler, StaggeredWakeupsFireExactlyOnSchedule) {
  const Graph g = path4();
  SyncEngine eng(g);
  eng.set_wakeup({0, 10, 100, 1000});
  eng.init_processes([](NodeId) { return std::make_unique<ProbeProcess>(); });
  const RunResult res = eng.run();

  EXPECT_TRUE(res.completed);
  for (NodeId s = 0; s < 4; ++s) {
    const auto* p = dynamic_cast<const ProbeProcess*>(eng.process(s));
    ASSERT_EQ(p->ran_at.size(), 1u) << "node " << s;
  }
  EXPECT_EQ(dynamic_cast<const ProbeProcess*>(eng.process(0))->ran_at[0], 0u);
  EXPECT_EQ(dynamic_cast<const ProbeProcess*>(eng.process(1))->ran_at[0], 10u);
  EXPECT_EQ(dynamic_cast<const ProbeProcess*>(eng.process(2))->ran_at[0], 100u);
  EXPECT_EQ(dynamic_cast<const ProbeProcess*>(eng.process(3))->ran_at[0],
            1000u);
  // Four executed rounds; everything between is fast-forwarded.
  EXPECT_EQ(res.executed_rounds, 4u);
  EXPECT_EQ(res.rounds, 1001u);
}

TEST(Scheduler, FastForwardJumpsToHeapTopAcrossStaggeredSleeps) {
  // Four sleepers with exponentially staggered deadlines; each halts when
  // its deadline fires.  The engine must simulate exactly 5 rounds (round 0
  // plus the four deadline rounds) regardless of the logical span.
  class SleepHalt final : public ProbeProcess {
   public:
    void act(Context& ctx, std::span<const Envelope>) override {
      if (ran_at.size() == 1) {
        ctx.sleep_until(deadline);
      } else {
        ctx.halt();
      }
    }
    Round deadline = 0;
  };
  const Graph g = path4();
  EngineConfig cfg;
  cfg.max_rounds = Round{1} << 62;  // deadlines exceed the default budget
  SyncEngine eng(g, cfg);
  const Round deadlines[4] = {100, 10'000, 1'000'000, 1'000'000'000};
  eng.init_processes([&](NodeId s) {
    auto p = std::make_unique<SleepHalt>();
    p->deadline = deadlines[s];
    return p;
  });
  const RunResult res = eng.run();

  EXPECT_TRUE(res.completed);
  EXPECT_EQ(res.executed_rounds, 5u);  // round 0 + four deadline rounds
  EXPECT_EQ(res.rounds, 1'000'000'001u);
  for (NodeId s = 0; s < 4; ++s) {
    const auto* p = dynamic_cast<const SleepHalt*>(eng.process(s));
    ASSERT_EQ(p->ran_at.size(), 2u);
    EXPECT_EQ(p->ran_at[1], deadlines[s]) << "node " << s;
  }
}

TEST(Scheduler, MessageWakesSleeperEarlyAndDeadlineStillFires) {
  // Node 1 sleeps until round 50; node 0 pings it in round 10.  Node 1 must
  // run at 11 (woken by the message), go back to sleep for the SAME deadline
  // (leaving a stale heap entry from before the early wake), and still run
  // exactly once more, at 50.
  class Sleeper final : public ProbeProcess {
   public:
    void act(Context& ctx, std::span<const Envelope>) override {
      if (ctx.round() < 50) {
        ctx.sleep_until(50);
      } else {
        ctx.halt();
      }
    }
  };
  class Pinger final : public ProbeProcess {
   public:
    void act(Context& ctx, std::span<const Envelope>) override {
      if (ctx.round() < 10) {
        ctx.sleep_until(10);
      } else if (ctx.round() == 10) {
        ctx.send(0, ping());
        ctx.halt();
      }
    }
  };
  const Graph g = Graph::from_edges(2, {{0, 1}});
  SyncEngine eng(g);
  eng.set_process(0, std::make_unique<Pinger>());
  eng.set_process(1, std::make_unique<Sleeper>());
  const RunResult res = eng.run();

  EXPECT_TRUE(res.completed);
  const auto* s = dynamic_cast<const Sleeper*>(eng.process(1));
  ASSERT_EQ(s->ran_at.size(), 3u);
  EXPECT_EQ(s->ran_at[0], 0u);   // initial wake
  EXPECT_EQ(s->ran_at[1], 11u);  // woken by the ping, re-sleeps until 50
  EXPECT_EQ(s->ran_at[2], 50u);  // the deadline still fires exactly once
  EXPECT_EQ(res.rounds, 51u);
}

TEST(Scheduler, HaltWithMessagesStillInFlightQuiesces) {
  // Node 0 sends a burst over several rounds; node 1 halts immediately.
  // Every message must still be delivered (counted) and the run must reach
  // global quiescence instead of deadlocking on undeliverable mail.
  class Burst final : public ProbeProcess {
   public:
    void act(Context& ctx, std::span<const Envelope>) override {
      if (ctx.round() < 3) {
        ctx.send(0, ping());
      } else {
        ctx.halt();
      }
    }
  };
  class HaltNow final : public ProbeProcess {
   public:
    void act(Context& ctx, std::span<const Envelope>) override { ctx.halt(); }
  };
  const Graph g = Graph::from_edges(2, {{0, 1}});
  SyncEngine eng(g);
  eng.set_process(0, std::make_unique<Burst>());
  eng.set_process(1, std::make_unique<HaltNow>());
  const RunResult res = eng.run();

  EXPECT_TRUE(res.completed);
  EXPECT_EQ(res.messages, 3u);
  const auto* h = dynamic_cast<const HaltNow*>(eng.process(1));
  EXPECT_EQ(h->ran_at.size(), 1u);  // halted nodes never run again
}

TEST(Scheduler, RunningNodesAreScheduledEveryRound) {
  class Spin final : public ProbeProcess {
   public:
    void act(Context& ctx, std::span<const Envelope>) override {
      if (ctx.round() >= 9) ctx.halt();  // stay Running for rounds 0..9
    }
  };
  const Graph g = Graph::from_edges(2, {{0, 1}});
  SyncEngine eng(g);
  eng.init_processes([](NodeId) { return std::make_unique<Spin>(); });
  const RunResult res = eng.run();

  EXPECT_TRUE(res.completed);
  EXPECT_EQ(res.executed_rounds, 10u);
  EXPECT_EQ(res.node_steps, 20u);  // both nodes, every round
  const auto* p = dynamic_cast<const Spin*>(eng.process(0));
  ASSERT_EQ(p->ran_at.size(), 10u);
  for (Round r = 0; r < 10; ++r) EXPECT_EQ(p->ran_at[r], r);
}

TEST(Scheduler, MixedFlatAndLegacyMessagesShareOneInbox) {
  // A flat message and a legacy message sent to the same node in the same
  // round arrive in one inbox, in send order, each on the right path.
  class Dual final : public ProbeProcess {
   public:
    void act(Context& ctx, std::span<const Envelope>) override {
      if (ctx.slot() == 0 && ctx.round() == 0) {
        FlatMsg f;
        f.type = 7;
        f.channel = 42;
        f.bits = 64;
        f.a = 1234;
        ctx.send(0, f);
        ctx.send(0, ping());
      }
      ctx.idle();
    }
    void on_round(Context& ctx, std::span<const Envelope> inbox) override {
      for (const auto& env : inbox) {
        if (env.is_flat()) {
          saw_flat = (env.flat.a == 1234 && env.flat.channel == 42);
          EXPECT_EQ(env.msg, nullptr);
        } else {
          saw_legacy = dynamic_cast<const PingMsg*>(env.msg.get()) != nullptr;
          EXPECT_FALSE(env.is_flat());
        }
        order.push_back(env.is_flat() ? 'f' : 'l');
      }
      ctx.idle();
    }
    bool saw_flat = false;
    bool saw_legacy = false;
    std::vector<char> order;
  };
  const Graph g = Graph::from_edges(2, {{0, 1}});
  EngineConfig cfg;
  cfg.congest = CongestMode::Count;  // two sends on one port: counted, not fatal
  SyncEngine eng(g, cfg);
  eng.init_processes([](NodeId) { return std::make_unique<Dual>(); });
  const RunResult res = eng.run();

  EXPECT_EQ(res.messages, 2u);
  EXPECT_EQ(res.bits, 128u);
  EXPECT_EQ(res.congest_violations, 1u);
  const auto* p = dynamic_cast<const Dual*>(eng.process(1));
  EXPECT_TRUE(p->saw_flat);
  EXPECT_TRUE(p->saw_legacy);
  ASSERT_EQ(p->order.size(), 2u);
  EXPECT_EQ(p->order[0], 'f');  // send order preserved
  EXPECT_EQ(p->order[1], 'l');
}

}  // namespace
}  // namespace ule
