// The engine telemetry surface (net/metrics.hpp): gauge/counter accounting,
// the engine_metrics JSON schema and its validator, and the two contracts
// the ISSUE pins — snapshots are bit-for-bit identical at every thread
// count (telemetry is a pure function of the run), and enabling metrics
// never changes a single RunResult counter (telemetry is pure observation).

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "election/election.hpp"
#include "election/flood_max.hpp"
#include "graphgen/generators.hpp"
#include "net/engine.hpp"
#include "net/metrics.hpp"
#include "net/reliable.hpp"

namespace ule {
namespace {

std::optional<std::uint64_t> counter_value(const MetricsSnapshot& snap,
                                           const std::string& name) {
  for (const auto& [n, v] : snap.counters)
    if (n == name) return v;
  return std::nullopt;
}

TEST(Metrics, GaugeStatsTrackSamplesLastMaxTotal) {
  GaugeStats g;
  EXPECT_EQ(g.samples, 0u);
  g.observe(3);
  g.observe(7);
  g.observe(2);
  EXPECT_EQ(g.samples, 3u);
  EXPECT_EQ(g.last, 2u);
  EXPECT_EQ(g.max, 7u);
  EXPECT_EQ(g.total, 12u);
}

TEST(Metrics, RegistryAccumulatesCountersSortedByName) {
  MetricsRegistry reg;
  reg.counter("b.second", 2);
  reg.counter("a.first", 1);
  reg.counter("b.second", 3);  // accumulates, not overwrites
  reg.sample_round(4, 2, 8, 16);
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.active_set.last, 4u);
  EXPECT_EQ(snap.wake_heap.max, 2u);
  EXPECT_EQ(snap.inbox_csr.total, 8u);
  EXPECT_EQ(snap.outbox_arena.samples, 1u);
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].first, "a.first");
  EXPECT_EQ(snap.counters[0].second, 1u);
  EXPECT_EQ(snap.counters[1].first, "b.second");
  EXPECT_EQ(snap.counters[1].second, 5u);
}

TEST(Metrics, JsonRoundTripsThroughItsOwnValidator) {
  MetricsRegistry reg;
  reg.sample_round(10, 5, 20, 40);
  reg.sample_round(8, 3, 12, 24);
  reg.counter("engine.messages", 123);
  reg.counter("arq.retransmissions", 4);
  const std::string doc = metrics_json(reg.snapshot());
  std::string err;
  EXPECT_TRUE(validate_metrics_json(doc, &err)) << err;
  // The schema is strict, not decorative: corruptions are caught.
  std::string wrong_tag = doc;
  wrong_tag.replace(wrong_tag.find("engine_metrics"), 14, "engine_MUTATED");
  EXPECT_FALSE(validate_metrics_json(wrong_tag, &err));
  std::string unknown_field = doc;
  unknown_field.replace(unknown_field.find("\"samples\""), 9, "\"smuggle\"");
  EXPECT_FALSE(validate_metrics_json(unknown_field, &err));
  EXPECT_FALSE(validate_metrics_json(doc + "x", &err));  // trailing garbage
  EXPECT_FALSE(validate_metrics_json("", &err));
}

TEST(Metrics, EmptySnapshotStillValidates) {
  // A run with metrics on but zero rounds and zero counters must still emit
  // schema-valid JSON (the validator requires the four gauge rows, which
  // exist with samples = 0).
  MetricsRegistry reg;
  std::string err;
  EXPECT_TRUE(validate_metrics_json(metrics_json(reg.snapshot()), &err))
      << err;
}

/// Adversarial flood-max through the ARQ wrapper on K_16: exercises every
/// counter family (engine.*, adversary.*, arq.*) and both fault-recovery
/// paths, while still electing a leader.
ElectionReport metered_run(unsigned threads, bool metrics) {
  const Graph g = make_complete(16);
  RunOptions opt;
  opt.seed = 77;
  opt.congest = CongestMode::Off;
  opt.threads = threads;
  opt.parallel_cutoff = 1;  // force the sharded path at threads > 1
  opt.adversary.seed = 0xBEEF;
  opt.adversary.drop = 0.15;
  opt.adversary.duplicate = 0.10;
  opt.metrics.enabled = metrics;
  ReliableConfig rcfg;
  return run_election(g, make_reliable(make_flood_max(), rcfg), opt);
}

TEST(Metrics, SnapshotsAreBitForBitIdenticalAcrossThreadCounts) {
  const ElectionReport ref = metered_run(1, true);
  ASSERT_TRUE(ref.run.metrics.has_value());
  const std::string ref_json = metrics_json(*ref.run.metrics);
  for (const unsigned t : {2u, 4u}) {
    const ElectionReport rep = metered_run(t, true);
    ASSERT_TRUE(rep.run.metrics.has_value()) << "threads=" << t;
    EXPECT_EQ(*rep.run.metrics, *ref.run.metrics) << "threads=" << t;
    EXPECT_EQ(metrics_json(*rep.run.metrics), ref_json) << "threads=" << t;
  }
}

TEST(Metrics, ChurnSnapshotsAreBitForBitIdenticalAcrossThreadCounts) {
  // Same wall, churn edition: a run whose adversary schedule reborn a node
  // mid-run (crash at 0, recover at 5) must produce byte-identical snapshot
  // JSON at every thread count — including the adversary.recoveries and
  // adversary.crash_drops counters the churn layer added, and the arq.*
  // counters of the wrapper replacing the reborn node's process.
  const auto churn_run = [](unsigned threads) {
    const Graph g = make_complete(16);
    RunOptions opt;
    opt.seed = 77;
    opt.congest = CongestMode::Off;
    opt.threads = threads;
    opt.parallel_cutoff = 1;
    opt.adversary.seed = 0xBEEF;
    opt.adversary.drop = 0.15;
    opt.adversary.duplicate = 0.10;
    opt.adversary.crashes = {{3, 0, 5}};
    opt.metrics.enabled = true;
    ReliableConfig rcfg;
    return run_election(g, make_reliable(make_flood_max(), rcfg), opt);
  };
  const ElectionReport ref = churn_run(1);
  ASSERT_TRUE(ref.run.metrics.has_value());
  EXPECT_EQ(ref.run.recoveries, 1u);
  EXPECT_EQ(counter_value(*ref.run.metrics, "adversary.recoveries"), 1u);
  EXPECT_EQ(counter_value(*ref.run.metrics, "adversary.crash_drops"),
            ref.run.adv_crash_drops);
  const std::string ref_json = metrics_json(*ref.run.metrics);
  for (const unsigned t : {2u, 4u}) {
    const ElectionReport rep = churn_run(t);
    ASSERT_TRUE(rep.run.metrics.has_value()) << "threads=" << t;
    EXPECT_EQ(metrics_json(*rep.run.metrics), ref_json) << "threads=" << t;
  }
}

TEST(Metrics, EnablingMetricsNeverPerturbsTheRun) {
  // The in-process twin of the metrics_off_overhead bench row: same seed,
  // metrics on vs off, every RunResult counter identical — and the off run
  // carries no snapshot at all.
  const ElectionReport off = metered_run(1, false);
  const ElectionReport on = metered_run(1, true);
  EXPECT_FALSE(off.run.metrics.has_value());
  ASSERT_TRUE(on.run.metrics.has_value());
  EXPECT_EQ(off.run.rounds, on.run.rounds);
  EXPECT_EQ(off.run.executed_rounds, on.run.executed_rounds);
  EXPECT_EQ(off.run.node_steps, on.run.node_steps);
  EXPECT_EQ(off.run.messages, on.run.messages);
  EXPECT_EQ(off.run.bits, on.run.bits);
  EXPECT_EQ(off.run.elected, on.run.elected);
  EXPECT_EQ(off.run.last_progress, on.run.last_progress);
  EXPECT_EQ(off.run.adv_drops, on.run.adv_drops);
  EXPECT_EQ(off.run.adv_dups, on.run.adv_dups);
}

TEST(Metrics, SnapshotCountersMatchTheRunResult) {
  const ElectionReport rep = metered_run(1, true);
  ASSERT_TRUE(rep.run.metrics.has_value());
  const MetricsSnapshot& snap = *rep.run.metrics;
  const RunResult& r = rep.run;
  EXPECT_EQ(counter_value(snap, "engine.messages"), r.messages);
  EXPECT_EQ(counter_value(snap, "engine.bits"), r.bits);
  EXPECT_EQ(counter_value(snap, "engine.node_steps"), r.node_steps);
  // The adversary really fired on this seed, and both surfaces agree.
  EXPECT_GT(r.adv_drops, 0u);
  EXPECT_GT(r.adv_dups, 0u);
  EXPECT_EQ(counter_value(snap, "adversary.drops"), r.adv_drops);
  EXPECT_EQ(counter_value(snap, "adversary.duplicates"), r.adv_dups);
  // The ARQ wrappers exported recovery work into the same snapshot.
  const auto retx = counter_value(snap, "arq.retransmissions");
  ASSERT_TRUE(retx.has_value());
  EXPECT_GT(*retx, 0u);
  // Per-round gauges were actually sampled, one observation per round.
  EXPECT_EQ(snap.active_set.samples,
            static_cast<std::uint64_t>(r.executed_rounds));
  EXPECT_GT(snap.active_set.max, 0u);
  const std::string doc = metrics_json(snap);
  std::string err;
  EXPECT_TRUE(validate_metrics_json(doc, &err)) << err;
}

TEST(Metrics, DisabledWrapperExportsNoArqCounters) {
  // An enabled=false ReliableProcess must be invisible in the snapshot too:
  // the zero-overhead contract extends to telemetry content.
  const Graph g = make_complete(8);
  RunOptions opt;
  opt.seed = 5;
  opt.congest = CongestMode::Off;
  opt.metrics.enabled = true;
  ReliableConfig off;
  off.enabled = false;
  const ElectionReport wrapped =
      run_election(g, make_reliable(make_flood_max(), off), opt);
  const ElectionReport plain = run_election(g, make_flood_max(), opt);
  ASSERT_TRUE(wrapped.run.metrics.has_value());
  ASSERT_TRUE(plain.run.metrics.has_value());
  EXPECT_FALSE(counter_value(*wrapped.run.metrics, "arq.retransmissions")
                   .has_value());
  EXPECT_EQ(*wrapped.run.metrics, *plain.run.metrics);
}

}  // namespace
}  // namespace ule
