#include "spanner/baswana_sen.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "election/least_el.hpp"
#include "graphgen/generators.hpp"
#include "graphgen/graph_algos.hpp"
#include "net/engine.hpp"
#include "spanner/spanner_elect.hpp"

namespace ule {
namespace {

/// Run the spanner protocol and extract the selected edge set.
Graph extract_spanner(const Graph& g, std::uint32_t k, std::uint64_t seed,
                      std::size_t* out_edges = nullptr) {
  EngineConfig cfg;
  cfg.seed = seed;
  SyncEngine eng(g, cfg);
  Rng id_rng(seed ^ 0x5A5AULL);
  eng.set_uids(assign_ids(g.n(), IdScheme::RandomFromZ, id_rng));
  eng.set_knowledge(Knowledge::of_n(g.n()));
  eng.init_processes(make_baswana_sen(SpannerConfig{k}));
  const RunResult res = eng.run();
  EXPECT_TRUE(res.completed);

  std::vector<std::pair<NodeId, NodeId>> edges;
  std::vector<bool> in(g.m(), false);
  for (NodeId s = 0; s < g.n(); ++s) {
    const auto* p = dynamic_cast<const BaswanaSenProcess*>(eng.process(s));
    EXPECT_TRUE(p->spanner_done());
    for (const PortId port : p->spanner_ports()) {
      const EdgeId e = g.half_edge(s, port).edge;
      if (!in[e]) {
        in[e] = true;
        edges.push_back(g.edge_endpoints(e));
      }
    }
  }
  if (out_edges) *out_edges = edges.size();
  return Graph::from_edges(g.n(), edges);
}

TEST(Spanner, BothEndpointsAgreeOnMembership) {
  Rng rng(1);
  const Graph g = make_random_connected(60, 300, rng);
  EngineConfig cfg;
  cfg.seed = 3;
  SyncEngine eng(g, cfg);
  Rng id_rng(2);
  eng.set_uids(assign_ids(g.n(), IdScheme::RandomFromZ, id_rng));
  eng.set_knowledge(Knowledge::of_n(g.n()));
  eng.init_processes(make_baswana_sen(SpannerConfig{3}));
  eng.run();
  // Edge-level agreement: if u marks port to v, v marks port to u.
  for (NodeId u = 0; u < g.n(); ++u) {
    const auto* pu = dynamic_cast<const BaswanaSenProcess*>(eng.process(u));
    for (const PortId port : pu->spanner_ports()) {
      const auto& he = g.half_edge(u, port);
      const auto* pv = dynamic_cast<const BaswanaSenProcess*>(eng.process(he.to));
      const auto& vports = pv->spanner_ports();
      EXPECT_NE(std::find(vports.begin(), vports.end(), he.rev), vports.end())
          << "asymmetric spanner edge " << u << "<->" << he.to;
    }
  }
}

TEST(Spanner, PreservesConnectivity) {
  Rng rng(2);
  for (std::uint32_t k : {2u, 3u, 4u}) {
    const Graph g = make_random_connected(80, 600, rng);
    const Graph sp = extract_spanner(g, k, 17 + k);
    EXPECT_TRUE(is_connected(sp)) << "k=" << k;
  }
}

TEST(Spanner, StretchBounded) {
  // Sampled pairs: dist_spanner <= (2k-1) * dist_G.
  Rng rng(3);
  const Graph g = make_random_connected(70, 500, rng);
  for (std::uint32_t k : {2u, 3u}) {
    const Graph sp = extract_spanner(g, k, 100 + k);
    Rng pick(55);
    for (int i = 0; i < 30; ++i) {
      const NodeId a = static_cast<NodeId>(pick.below(g.n()));
      const NodeId b = static_cast<NodeId>(pick.below(g.n()));
      if (a == b) continue;
      const auto dg = hop_distance(g, a, b);
      const auto ds = hop_distance(sp, a, b);
      EXPECT_LE(ds, (2 * k - 1) * dg) << "k=" << k;
    }
  }
}

TEST(Spanner, SparsifiesDenseGraphs) {
  // Expected size O(k n^{1+1/k}): on a dense graph the spanner must drop
  // most edges.
  Rng rng(4);
  const std::size_t n = 120;
  const Graph g = make_random_connected(n, 3500, rng);
  std::size_t edges = 0;
  extract_spanner(g, 3, 7, &edges);
  const double bound =
      4.0 * 3.0 * std::pow(static_cast<double>(n), 1.0 + 1.0 / 3.0);
  EXPECT_LE(static_cast<double>(edges), bound);
  EXPECT_LT(edges, g.m() / 2);  // actually sparsified
}

TEST(Spanner, KOneKeepsEverything) {
  Rng rng(5);
  const Graph g = make_random_connected(30, 200, rng);
  std::size_t edges = 0;
  extract_spanner(g, 1, 9, &edges);
  EXPECT_EQ(edges, g.m());  // a 1-spanner is the graph itself
}

TEST(Spanner, FlatAndLegacyWireProduceIdenticalRuns) {
  // The FlatMsg port (depth/phase bit-packed into one payload word, sampled
  // bit in the flag byte) must be a pure representation change: every
  // RunResult counter and the selected spanner must match the MessagePtr
  // path bit-for-bit.
  Rng rng(9);
  const Graph g = make_random_connected(70, 420, rng);
  for (const std::uint32_t k : {2u, 3u}) {
    RunResult results[2];
    std::vector<std::vector<PortId>> ports[2];
    for (const bool legacy : {false, true}) {
      EngineConfig cfg;
      cfg.seed = 21 + k;
      SyncEngine eng(g, cfg);
      Rng id_rng(5);
      eng.set_uids(assign_ids(g.n(), IdScheme::RandomFromZ, id_rng));
      eng.set_knowledge(Knowledge::of_n(g.n()));
      eng.init_processes(make_baswana_sen(SpannerConfig{k, legacy}));
      results[legacy ? 1 : 0] = eng.run();
      for (NodeId s = 0; s < g.n(); ++s) {
        const auto* p = dynamic_cast<const BaswanaSenProcess*>(eng.process(s));
        ports[legacy ? 1 : 0].push_back(p->spanner_ports());
      }
    }
    EXPECT_EQ(results[0].rounds, results[1].rounds) << "k=" << k;
    EXPECT_EQ(results[0].executed_rounds, results[1].executed_rounds) << "k=" << k;
    EXPECT_EQ(results[0].node_steps, results[1].node_steps) << "k=" << k;
    EXPECT_EQ(results[0].messages, results[1].messages) << "k=" << k;
    EXPECT_EQ(results[0].bits, results[1].bits) << "k=" << k;
    EXPECT_EQ(results[0].congest_violations, results[1].congest_violations)
        << "k=" << k;
    EXPECT_EQ(ports[0], ports[1]) << "k=" << k;
  }
}

TEST(Spanner, FinishRoundFormula) {
  EXPECT_EQ(spanner_finish_round(1), 3u);
  EXPECT_EQ(spanner_finish_round(2), 3u + 4u);
  EXPECT_EQ(spanner_finish_round(3), 3u + 4u + 5u);
}

TEST(Spanner, MessagesLinearInKM) {
  Rng rng(6);
  const Graph g = make_random_connected(100, 1000, rng);
  for (const std::uint32_t k : {2u, 4u}) {
    EngineConfig cfg;
    cfg.seed = 11;
    SyncEngine eng(g, cfg);
    Rng id_rng(4);
    eng.set_uids(assign_ids(g.n(), IdScheme::RandomFromZ, id_rng));
    eng.set_knowledge(Knowledge::of_n(g.n()));
    eng.init_processes(make_baswana_sen(SpannerConfig{k}));
    const RunResult res = eng.run();
    EXPECT_LE(res.messages, 3u * k * g.m() + 4 * g.n()) << "k=" << k;
  }
}

TEST(SpannerElect, Corollary42EndToEnd) {
  // Dense graph (m ≈ n^{1.5}): whp success, O(D) time, O(m)-ish messages.
  Rng rng(7);
  const std::size_t n = 150;
  const auto m = static_cast<std::size_t>(std::pow(n, 1.55));
  const Graph g = make_random_connected(n, m, rng);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    RunOptions opt;
    opt.seed = seed;
    opt.knowledge = Knowledge::of_n(n);
    const auto rep = run_election(g, make_spanner_elect({3, 0}), opt);
    EXPECT_TRUE(rep.verdict.unique_leader) << "seed " << seed;
    // O(m) total, but the constant is not small: the k = 3 Baswana-Sen
    // construction alone may send ~3km = 9m messages, and the election adds
    // O(|spanner| log n).  15m is comfortably flat in m (the dense-sweep
    // bench tracks the ratio across sizes).
    EXPECT_LE(rep.run.messages, 15 * g.m());
  }
}

TEST(SpannerElect, CheaperThanPlainLeastElOnDense) {
  Rng rng(8);
  const std::size_t n = 200;
  const Graph g = make_random_connected(n, 5000, rng);
  RunOptions opt;
  opt.seed = 5;
  opt.knowledge = Knowledge::of_n(n);
  const auto sp = run_election(g, make_spanner_elect({3, 0}), opt);
  const auto le = run_election(
      g, make_least_el(LeastElConfig::all_candidates()), opt);
  EXPECT_TRUE(sp.verdict.unique_leader);
  EXPECT_LT(sp.run.messages, le.run.messages);
}

TEST(SpannerElect, KForEpsilon) {
  EXPECT_EQ(spanner_k_for_epsilon(1.0), 2u);
  EXPECT_EQ(spanner_k_for_epsilon(0.5), 4u);
  EXPECT_EQ(spanner_k_for_epsilon(0.25), 8u);
}

}  // namespace
}  // namespace ule
