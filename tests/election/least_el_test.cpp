#include "election/least_el.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graphgen/generators.hpp"
#include "graphgen/graph_algos.hpp"
#include "net/engine.hpp"
#include "net/wakeup.hpp"

namespace ule {
namespace {

RunOptions with_n(const Graph& g, std::uint64_t seed) {
  RunOptions opt;
  opt.seed = seed;
  opt.knowledge = Knowledge::of_n(g.n());
  return opt;
}

TEST(LeastEl, AllCandidatesElectsUniqueLeader) {
  const Graph g = make_cycle(20);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto rep = run_election(g, make_least_el(LeastElConfig::all_candidates()),
                                  with_n(g, seed));
    EXPECT_TRUE(rep.verdict.unique_leader) << "seed " << seed;
    EXPECT_TRUE(rep.run.completed);
  }
}

TEST(LeastEl, TimeIsLinearInDiameter) {
  // O(D) rounds: flood <= D, echoes <= 2D, small constant slack.
  for (std::size_t n : {10u, 30u, 60u}) {
    const Graph g = make_path(n);
    const std::uint32_t d = static_cast<std::uint32_t>(n - 1);
    const auto rep = run_election(
        g, make_least_el(LeastElConfig::all_candidates()), with_n(g, 3));
    EXPECT_TRUE(rep.verdict.unique_leader);
    EXPECT_LE(rep.run.rounds, 3u * d + 5u) << "n=" << n;
  }
}

TEST(LeastEl, MessageBoundMLogN) {
  // O(m log n) expected messages for f(n) = n (constant ~4 covers
  // forward+echo both directions).
  Rng rng(17);
  const Graph g = make_random_connected(200, 800, rng);
  const auto rep = run_election(
      g, make_least_el(LeastElConfig::all_candidates()), with_n(g, 5));
  EXPECT_TRUE(rep.verdict.unique_leader);
  const double bound = 4.0 * g.m() * std::log2(static_cast<double>(g.n()));
  EXPECT_LE(rep.run.messages, bound);
}

TEST(LeastEl, VariantAFewerMessagesThanFullCandidates) {
  Rng rng(23);
  const Graph g = make_random_connected(300, 1500, rng);
  std::uint64_t full = 0, loglog = 0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    full += run_election(g, make_least_el(LeastElConfig::all_candidates()),
                         with_n(g, seed)).run.messages;
    loglog += run_election(g, make_least_el(LeastElConfig::variant_A(g.n())),
                           with_n(g, seed)).run.messages;
  }
  EXPECT_LT(loglog, full);
}

TEST(LeastEl, VariantBSucceedsUsuallyAndCheaply) {
  Rng rng(29);
  const Graph g = make_random_connected(150, 600, rng);
  const double eps = 0.05;
  std::size_t ok = 0;
  std::uint64_t msgs = 0;
  const std::size_t trials = 40;
  for (std::uint64_t seed = 1; seed <= trials; ++seed) {
    const auto rep = run_election(
        g, make_least_el(LeastElConfig::variant_B(eps)), with_n(g, seed));
    ok += rep.verdict.unique_leader;
    msgs += rep.run.messages;
  }
  // Success probability >= 1 - eps; allow slack for a 40-trial estimate.
  EXPECT_GE(ok, trials - 5);
  // O(m) messages: the mean must be a small multiple of m, NOT m log n.
  EXPECT_LE(msgs / trials, 8u * g.m());
}

TEST(LeastEl, ZeroCandidatesIsDetectableFailure) {
  // f so tiny that (whp) nobody volunteers: everyone ends non-elected.
  const Graph g = make_cycle(12);
  auto cfg = LeastElConfig::theorem_4_4(1e-9);
  const auto rep = run_election(g, make_least_el(cfg), with_n(g, 4));
  EXPECT_FALSE(rep.verdict.unique_leader);
  EXPECT_EQ(rep.verdict.elected, 0u);
  EXPECT_EQ(rep.run.messages, 0u);
}

TEST(LeastEl, SmallRankSpaceWithoutTiebreakCanElectTwo) {
  // Rank collisions surface once the domain is tiny and tiebreak is off —
  // the ablation behind the paper's |Z| = n^4 choice.
  const Graph g = make_path(16);
  auto cfg = LeastElConfig::all_candidates();
  cfg.rank_space = 2;  // coin-sized domain
  cfg.tiebreak = LeastElConfig::Tiebreak::None;
  std::size_t multi = 0;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    const auto rep = run_election(g, make_least_el(cfg), with_n(g, seed));
    multi += rep.verdict.elected >= 2;
  }
  EXPECT_GT(multi, 0u);
}

TEST(LeastEl, UidTiebreakMakesTinyRankSpaceSafe) {
  const Graph g = make_path(16);
  auto cfg = LeastElConfig::all_candidates();
  cfg.rank_space = 2;
  cfg.tiebreak = LeastElConfig::Tiebreak::Uid;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const auto rep = run_election(g, make_least_el(cfg), with_n(g, seed));
    EXPECT_TRUE(rep.verdict.unique_leader) << "seed " << seed;
  }
}

TEST(LeastEl, WorksAnonymously) {
  const Graph g = make_torus(4, 5);
  auto cfg = LeastElConfig::all_candidates();
  cfg.tiebreak = LeastElConfig::Tiebreak::Random;
  RunOptions opt = with_n(g, 8);
  opt.anonymous = true;
  const auto rep = run_election(g, make_least_el(cfg), opt);
  EXPECT_TRUE(rep.verdict.unique_leader);
}

TEST(LeastEl, ToleratesAdversarialWakeup) {
  const Graph g = make_grid(5, 5);
  RunOptions opt = with_n(g, 2);
  Rng wk(55);
  opt.wakeup = random_wakeup(g.n(), 15, wk);
  const auto rep = run_election(
      g, make_least_el(LeastElConfig::all_candidates()), opt);
  EXPECT_TRUE(rep.verdict.unique_leader);
}

TEST(LeastEl, SingleWakeupNodeStillElects) {
  const Graph g = make_path(10);
  RunOptions opt = with_n(g, 6);
  opt.wakeup = single_wakeup(g.n(), 9);
  const auto rep = run_election(
      g, make_least_el(LeastElConfig::all_candidates()), opt);
  EXPECT_TRUE(rep.verdict.unique_leader);
}

TEST(LeastEl, LeListSizeIsLogarithmic) {
  // Lemma 4.3: E|le_v| = O(log f(n)); with f = n and n = 256, mean list
  // size should be well below log2(n)+2 and max below ~3 log2 n.
  Rng rng(31);
  const Graph g = make_random_connected(256, 1024, rng);

  RunOptions opt = with_n(g, 12);
  EngineConfig cfg;
  cfg.seed = opt.seed;
  SyncEngine eng(g, cfg);
  Rng id_rng(1);
  eng.set_uids(assign_ids(g.n(), IdScheme::RandomFromZ, id_rng));
  eng.set_knowledge(opt.knowledge);
  eng.init_processes(make_least_el(LeastElConfig::all_candidates()));
  eng.run();

  double total = 0;
  std::size_t maxlen = 0;
  for (NodeId s = 0; s < g.n(); ++s) {
    const auto* p = dynamic_cast<const LeastElProcess*>(eng.process(s));
    total += static_cast<double>(p->le_list_size());
    maxlen = std::max(maxlen, p->le_list_size());
  }
  const double mean = total / static_cast<double>(g.n());
  EXPECT_LE(mean, std::log2(256.0) + 2.0);
  EXPECT_LE(maxlen, static_cast<std::size_t>(3 * std::log2(256.0)));
}

TEST(LeastEl, CongestClean) {
  const Graph g = make_complete(10);
  RunOptions opt = with_n(g, 3);
  opt.congest = CongestMode::Count;
  const auto rep = run_election(
      g, make_least_el(LeastElConfig::all_candidates()), opt);
  EXPECT_EQ(rep.run.congest_violations, 0u);
}

TEST(LeastEl, RequiresNForCandidateSampling) {
  const Graph g = make_path(5);
  RunOptions opt;  // no knowledge
  opt.seed = 1;
  EXPECT_THROW(
      run_election(g, make_least_el(LeastElConfig::theorem_4_4(2.0)), opt),
      std::logic_error);
}

}  // namespace
}  // namespace ule
