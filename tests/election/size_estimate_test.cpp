#include "election/size_estimate.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graphgen/generators.hpp"
#include "net/engine.hpp"

namespace ule {
namespace {

TEST(SizeEstimate, ElectsWithNoKnowledgeAtAll) {
  // Corollary 4.5's whole point: no n, no m, no D.
  const Graph g = make_cycle(30);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    RunOptions opt;
    opt.seed = seed;  // Knowledge::none()
    const auto rep = run_election(g, make_size_estimate_elect(), opt);
    EXPECT_TRUE(rep.verdict.unique_leader) << "seed " << seed;
  }
}

TEST(SizeEstimate, EstimateWithinPaperBounds) {
  // whp: n/log n <= n_hat <= n^2 (we allow the constant-factor slack the
  // paper's union bounds hide: n_hat in [n/(4 log n), 4 n^2]).
  Rng rng(3);
  const Graph g = make_random_connected(128, 400, rng);
  const double n = 128.0;
  std::size_t in_range = 0;
  const std::size_t trials = 20;
  for (std::uint64_t seed = 1; seed <= trials; ++seed) {
    RunOptions opt;
    opt.seed = seed * 101;
    EngineConfig cfg;
    cfg.seed = opt.seed;
    SyncEngine eng(g, cfg);
    Rng id_rng(seed);
    eng.set_uids(assign_ids(g.n(), IdScheme::RandomFromZ, id_rng));
    eng.init_processes(make_size_estimate_elect());
    eng.run();
    const auto* p = dynamic_cast<const SizeEstimateElectProcess*>(eng.process(0));
    ASSERT_GT(p->n_hat(), 0u) << "phase B never started";
    const double nh = static_cast<double>(p->n_hat());
    in_range += (nh >= n / (4.0 * std::log2(n)) && nh <= 4.0 * n * n);
  }
  EXPECT_GE(in_range, trials - 2);
}

TEST(SizeEstimate, AllNodesAgreeOnEstimate) {
  const Graph g = make_grid(5, 6);
  EngineConfig cfg;
  cfg.seed = 77;
  SyncEngine eng(g, cfg);
  Rng id_rng(7);
  eng.set_uids(assign_ids(g.n(), IdScheme::RandomFromZ, id_rng));
  eng.init_processes(make_size_estimate_elect());
  eng.run();
  const auto* p0 = dynamic_cast<const SizeEstimateElectProcess*>(eng.process(0));
  for (NodeId s = 1; s < g.n(); ++s) {
    const auto* p = dynamic_cast<const SizeEstimateElectProcess*>(eng.process(s));
    EXPECT_EQ(p->n_hat(), p0->n_hat());
  }
}

TEST(SizeEstimate, TimeLinearInDiameter) {
  for (std::size_t n : {16u, 48u}) {
    const Graph g = make_cycle(n);
    RunOptions opt;
    opt.seed = 5;
    const auto rep = run_election(g, make_size_estimate_elect(), opt);
    EXPECT_TRUE(rep.verdict.unique_leader);
    // Phase A <= 3D + D (done broadcast) plus phase B <= 3D + slack.
    EXPECT_LE(rep.run.rounds, 8u * (n / 2) + 10u) << "n=" << n;
  }
}

TEST(SizeEstimate, WorksAnonymously) {
  const Graph g = make_hypercube(4);
  RunOptions opt;
  opt.seed = 21;
  opt.anonymous = true;
  const auto rep = run_election(g, make_size_estimate_elect(), opt);
  EXPECT_TRUE(rep.verdict.unique_leader);
}

TEST(SizeEstimate, MessagesWithinMLogN) {
  Rng rng(9);
  const Graph g = make_random_connected(200, 700, rng);
  RunOptions opt;
  opt.seed = 31;
  const auto rep = run_election(g, make_size_estimate_elect(), opt);
  EXPECT_TRUE(rep.verdict.unique_leader);
  // Two wave phases, forwards+echoes: generous constant on m log2 n.
  const double bound = 8.0 * g.m() * std::log2(static_cast<double>(g.n()));
  EXPECT_LE(static_cast<double>(rep.run.messages), bound);
}

}  // namespace
}  // namespace ule
