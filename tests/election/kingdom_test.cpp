#include "election/kingdom.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graphgen/generators.hpp"
#include "graphgen/graph_algos.hpp"
#include "net/engine.hpp"

namespace ule {
namespace {

TEST(Kingdom, ClaimOrderingPhaseFirst) {
  EXPECT_LT((Claim{1, 100}), (Claim{2, 1}));
  EXPECT_LT((Claim{2, 1}), (Claim{2, 2}));
  EXPECT_TRUE((Claim{}).none());
  EXPECT_FALSE((Claim{1, 1}).none());
}

TEST(Kingdom, ElectsMaxIdOnSmallGraphs) {
  for (const auto& g : {make_path(2), make_path(3), make_cycle(3),
                        make_cycle(4), make_star(5), make_complete(4)}) {
    RunOptions opt;
    opt.seed = 7;
    opt.ids = IdScheme::RandomFromZ;
    const auto rep = run_election(g, make_kingdom(), opt);
    ASSERT_TRUE(rep.verdict.unique_leader) << g.summary();
    EXPECT_EQ(rep.verdict.undecided, 0u);
  }
}

TEST(Kingdom, UniqueLeaderAcrossFamiliesAndIdSchemes) {
  Rng rng(19);
  const std::vector<Graph> graphs = {
      make_cycle(24),  make_path(17),           make_star(16),
      make_grid(4, 6), make_complete(10),       make_hypercube(4),
      make_torus(4, 4), make_balanced_tree(20, 2),
      make_random_connected(40, 120, rng),
      make_random_connected(30, 45, rng),
  };
  for (const auto& g : graphs) {
    for (const IdScheme scheme :
         {IdScheme::Sequential, IdScheme::ReverseSequential,
          IdScheme::RandomPermutation, IdScheme::RandomFromZ}) {
      RunOptions opt;
      opt.seed = 3;
      opt.ids = scheme;
      opt.max_rounds = 500'000;
      const auto rep = run_election(g, make_kingdom(), opt);
      EXPECT_TRUE(rep.verdict.unique_leader)
          << g.summary() << " ids=" << to_string(scheme);
      EXPECT_TRUE(rep.run.completed) << g.summary();
    }
  }
}

TEST(Kingdom, DeterministicGivenIds) {
  const Graph g = make_grid(4, 5);
  RunOptions opt;
  opt.seed = 5;
  const auto a = run_election(g, make_kingdom(), opt);
  const auto b = run_election(g, make_kingdom(), opt);
  EXPECT_EQ(a.run.messages, b.run.messages);
  EXPECT_EQ(a.run.rounds, b.run.rounds);
  EXPECT_EQ(a.verdict.leader_slot, b.verdict.leader_slot);
}

TEST(Kingdom, PhasesLogarithmic) {
  // Candidates at least halve per phase: surviving phases <= ~log2 n plus
  // the extra doubling phases to cover the diameter.
  Rng rng(21);
  const Graph g = make_random_connected(128, 400, rng);
  EngineConfig cfg;
  cfg.seed = 2;
  SyncEngine eng(g, cfg);
  Rng id_rng(2);
  eng.set_uids(assign_ids(g.n(), IdScheme::RandomFromZ, id_rng));
  eng.init_processes(make_kingdom());
  const RunResult res = eng.run();
  EXPECT_EQ(res.elected, 1u);
  std::uint32_t max_phase = 0;
  for (NodeId s = 0; s < g.n(); ++s) {
    const auto* p = dynamic_cast<const KingdomProcess*>(eng.process(s));
    max_phase = std::max(max_phase, p->phases_played());
  }
  const auto bound = static_cast<std::uint32_t>(
      2.0 * std::log2(static_cast<double>(g.n())) + 6.0);
  EXPECT_LE(max_phase, bound);
}

TEST(Kingdom, MessagesWithinMLogN) {
  Rng rng(23);
  const Graph g = make_random_connected(100, 400, rng);
  RunOptions opt;
  opt.seed = 4;
  const auto rep = run_election(g, make_kingdom(), opt);
  EXPECT_TRUE(rep.verdict.unique_leader);
  const double bound =
      16.0 * g.m() * std::log2(static_cast<double>(g.n()));
  EXPECT_LE(static_cast<double>(rep.run.messages), bound);
}

TEST(Kingdom, TimeWithinDLogN) {
  for (std::size_t n : {16u, 64u}) {
    const Graph g = make_cycle(n);
    RunOptions opt;
    opt.seed = 6;
    const auto rep = run_election(g, make_kingdom(), opt);
    EXPECT_TRUE(rep.verdict.unique_leader);
    const double d = static_cast<double>(n) / 2.0;
    EXPECT_LE(static_cast<double>(rep.run.rounds),
              30.0 * d * std::log2(static_cast<double>(n)) + 60.0)
        << "n=" << n;
  }
}

TEST(Kingdom, KnownDiameterVariantElects) {
  Rng rng(27);
  const std::vector<Graph> graphs = {make_cycle(20), make_grid(4, 5),
                                     make_random_connected(36, 90, rng)};
  for (const auto& g : graphs) {
    const auto d = diameter_exact(g);
    KingdomConfig cfg;
    cfg.known_diameter = d;
    RunOptions opt;
    opt.seed = 11;
    opt.knowledge = Knowledge::of_n_d(g.n(), d);
    const auto rep = run_election(g, make_kingdom(cfg), opt);
    EXPECT_TRUE(rep.verdict.unique_leader) << g.summary();
  }
}

TEST(Kingdom, KnownDiameterFewerRoundsOnHighDiameter) {
  // Radius D from the start skips the slow doubling ramp-up on paths.
  const Graph g = make_path(60);
  RunOptions opt;
  opt.seed = 3;
  const auto general = run_election(g, make_kingdom(), opt);
  KingdomConfig cfg;
  cfg.known_diameter = 59;
  const auto knownd = run_election(g, make_kingdom(cfg), opt);
  EXPECT_TRUE(general.verdict.unique_leader);
  EXPECT_TRUE(knownd.verdict.unique_leader);
  EXPECT_LE(knownd.run.rounds, general.run.rounds);
}

TEST(Kingdom, AnonymousThrows) {
  const Graph g = make_path(4);
  RunOptions opt;
  opt.anonymous = true;
  EXPECT_THROW(run_election(g, make_kingdom(), opt), std::logic_error);
}

TEST(Kingdom, NoKnowledgeRequired) {
  const Graph g = make_lollipop(6, 8);
  RunOptions opt;  // Knowledge::none()
  opt.seed = 9;
  const auto rep = run_election(g, make_kingdom(), opt);
  EXPECT_TRUE(rep.verdict.unique_leader);
}

TEST(Kingdom, ManySeedsNeverTwoLeaders) {
  // The safety property under timing variety: never more than one elected.
  Rng rng(31);
  const Graph g = make_random_connected(50, 110, rng);
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    RunOptions opt;
    opt.seed = seed;
    opt.ids = IdScheme::RandomFromZ;
    opt.max_rounds = 500'000;
    const auto rep = run_election(g, make_kingdom(), opt);
    EXPECT_LE(rep.verdict.elected, 1u) << "seed " << seed;
    EXPECT_TRUE(rep.verdict.unique_leader) << "seed " << seed;
  }
}

}  // namespace
}  // namespace ule
