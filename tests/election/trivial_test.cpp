#include "election/trivial_random.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graphgen/generators.hpp"
#include "net/engine.hpp"

namespace ule {
namespace {

TEST(TrivialRandom, ZeroMessagesOneRound) {
  const Graph g = make_cycle(20);
  RunOptions opt;
  opt.knowledge = Knowledge::of_n(g.n());
  const auto rep = run_election(g, make_trivial_random(), opt);
  EXPECT_EQ(rep.run.messages, 0u);
  EXPECT_LE(rep.run.rounds, 1u);
}

TEST(TrivialRandom, SuccessRateNearOneOverE) {
  // The introduction's observation: P(exactly one leader) ≈ 1/e ≈ 0.368.
  const Graph g = make_cycle(64);
  std::size_t ok = 0;
  const std::size_t trials = 600;
  for (std::uint64_t seed = 1; seed <= trials; ++seed) {
    RunOptions opt;
    opt.seed = seed;
    opt.knowledge = Knowledge::of_n(g.n());
    const auto rep = run_election(g, make_trivial_random(), opt);
    ok += rep.verdict.unique_leader;
  }
  const double rate = static_cast<double>(ok) / trials;
  EXPECT_NEAR(rate, 1.0 / std::exp(1.0), 0.07);
}

TEST(TrivialRandom, FailsBelowLowerBoundThreshold) {
  // The paper's lower bounds demand success > 53/56 ≈ 0.946; the strawman
  // cannot reach it — hence zero-message election contradicts nothing.
  const Graph g = make_cycle(64);
  std::size_t ok = 0;
  const std::size_t trials = 300;
  for (std::uint64_t seed = 1; seed <= trials; ++seed) {
    RunOptions opt;
    opt.seed = seed * 13;
    opt.knowledge = Knowledge::of_n(g.n());
    ok += run_election(g, make_trivial_random(), opt).verdict.unique_leader;
  }
  EXPECT_LT(static_cast<double>(ok) / trials, 53.0 / 56.0);
}

TEST(TrivialRandom, RequiresN) {
  const Graph g = make_path(4);
  RunOptions opt;
  EXPECT_THROW(run_election(g, make_trivial_random(), opt), std::logic_error);
}

}  // namespace
}  // namespace ule
