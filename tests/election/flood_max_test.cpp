#include "election/flood_max.hpp"

#include <gtest/gtest.h>

#include "graphgen/generators.hpp"
#include "net/engine.hpp"

namespace ule {
namespace {

TEST(FloodMax, ElectsMaxIdDeterministically) {
  const Graph g = make_cycle(15);
  RunOptions opt;
  opt.seed = 4;
  opt.ids = IdScheme::RandomFromZ;
  const auto rep = run_election(g, make_flood_max(), opt);
  ASSERT_TRUE(rep.verdict.unique_leader);
  // The leader holds the maximum assigned ID.
  const Uid max_uid = *std::max_element(rep.uids.begin(), rep.uids.end());
  EXPECT_EQ(rep.uids[rep.verdict.leader_slot], max_uid);
}

TEST(FloodMax, AllIdSchemesElect) {
  const Graph g = make_grid(4, 4);
  for (const IdScheme s :
       {IdScheme::Sequential, IdScheme::ReverseSequential,
        IdScheme::RandomPermutation, IdScheme::RandomFromZ}) {
    RunOptions opt;
    opt.ids = s;
    opt.seed = 77;
    const auto rep = run_election(g, make_flood_max(), opt);
    EXPECT_TRUE(rep.verdict.unique_leader) << to_string(s);
  }
}

TEST(FloodMax, TimeLinearInDiameter) {
  for (std::size_t n : {8u, 32u, 64u}) {
    const Graph g = make_cycle(n);
    RunOptions opt;
    opt.seed = 9;
    const auto rep = run_election(g, make_flood_max(), opt);
    EXPECT_TRUE(rep.verdict.unique_leader);
    EXPECT_LE(rep.run.rounds, 3 * (n / 2) + 5) << "n=" << n;
  }
}

TEST(FloodMax, AdversarialIdPlacementCostsMoreMessages) {
  // On a path with ids increasing away from one end, every prefix node
  // adopts Θ(D) improvements: messages blow up towards Θ(m·D) — the
  // classic reason flood-max is NOT message-optimal.
  const std::size_t n = 64;
  const Graph g = make_path(n);
  RunOptions asc;
  asc.ids = IdScheme::Sequential;  // slot i gets id i+1: worst case
  asc.seed = 1;
  const auto worst = run_election(g, make_flood_max(), asc);
  RunOptions rnd;
  rnd.ids = IdScheme::RandomPermutation;
  rnd.seed = 1;
  const auto avg = run_election(g, make_flood_max(), rnd);
  EXPECT_TRUE(worst.verdict.unique_leader);
  EXPECT_TRUE(avg.verdict.unique_leader);
  EXPECT_GT(worst.run.messages, 2 * avg.run.messages);
}

TEST(FloodMax, AnonymousThrows) {
  const Graph g = make_path(4);
  RunOptions opt;
  opt.anonymous = true;
  EXPECT_THROW(run_election(g, make_flood_max(), opt), std::logic_error);
}

TEST(FloodMax, NoKnowledgeNeeded) {
  const Graph g = make_star(12);
  RunOptions opt;  // Knowledge::none()
  opt.seed = 3;
  const auto rep = run_election(g, make_flood_max(), opt);
  EXPECT_TRUE(rep.verdict.unique_leader);
}

}  // namespace
}  // namespace ule
