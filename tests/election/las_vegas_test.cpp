// Corollary 4.6: the Las Vegas variant (n and D known, restart epochs).

#include <gtest/gtest.h>

#include "election/least_el.hpp"
#include "graphgen/generators.hpp"
#include "graphgen/graph_algos.hpp"
#include "net/engine.hpp"

namespace ule {
namespace {

RunOptions nd_options(const Graph& g, std::uint32_t d, std::uint64_t seed) {
  RunOptions opt;
  opt.seed = seed;
  opt.knowledge = Knowledge::of_n_d(g.n(), d);
  return opt;
}

TEST(LasVegas, AlwaysElectsEventually) {
  const Graph g = make_cycle(16);
  const auto cfg = LeastElConfig::las_vegas(8);
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    const auto rep =
        run_election(g, make_least_el(cfg), nd_options(g, 8, seed));
    EXPECT_TRUE(rep.verdict.unique_leader) << "seed " << seed;
  }
}

TEST(LasVegas, RestartsHappenWhenNoCandidate) {
  // Expected candidates f = 2; P(zero candidates) = (1-2/n)^n ≈ e^-2 ≈ 0.135.
  // Over 60 seeds, some run must take more than one epoch AND all succeed.
  const Graph g = make_grid(4, 4);
  const std::uint32_t d = diameter_exact(g);
  const auto cfg = LeastElConfig::las_vegas(d);
  bool saw_restart = false;
  double total_epochs = 0;
  const std::size_t trials = 60;
  for (std::uint64_t seed = 1; seed <= trials; ++seed) {
    RunOptions opt = nd_options(g, d, seed);
    EngineConfig ecfg;
    ecfg.seed = opt.seed;
    SyncEngine eng(g, ecfg);
    Rng id_rng(seed);
    eng.set_uids(assign_ids(g.n(), IdScheme::RandomFromZ, id_rng));
    eng.set_knowledge(opt.knowledge);
    eng.init_processes(make_least_el(cfg));
    const RunResult res = eng.run();
    EXPECT_EQ(res.elected, 1u) << "seed " << seed;

    const auto* p = dynamic_cast<const LeastElProcess*>(eng.process(0));
    total_epochs += static_cast<double>(p->epochs_started());
    saw_restart |= p->epochs_started() > 1;
  }
  EXPECT_TRUE(saw_restart);
  // Expected epochs = 1/(1 - e^-2) ≈ 1.16: the mean must stay small.
  EXPECT_LE(total_epochs / trials, 1.6);
}

TEST(LasVegas, ExpectedTimeAndMessagesNearOptimal) {
  Rng rng(41);
  const Graph g = make_random_connected(100, 500, rng);
  const std::uint32_t d = diameter_exact(g);
  const auto cfg = LeastElConfig::las_vegas(d);
  double rounds = 0, msgs = 0;
  const std::size_t trials = 20;
  for (std::uint64_t seed = 1; seed <= trials; ++seed) {
    const auto rep = run_election(g, make_least_el(cfg), nd_options(g, d, seed));
    EXPECT_TRUE(rep.verdict.unique_leader);
    rounds += static_cast<double>(rep.run.rounds);
    msgs += static_cast<double>(rep.run.messages);
  }
  // Expected O(D) time: mean within a constant times the epoch length.
  EXPECT_LE(rounds / trials, 3.0 * (3.0 * d + 4.0));
  // Expected O(m) messages: Θ(1) candidates -> constant expected list size.
  EXPECT_LE(msgs / trials, 10.0 * static_cast<double>(g.m()));
}

TEST(LasVegas, EpochsAgreeAcrossNodes) {
  const Graph g = make_path(9);
  const std::uint32_t d = 8;
  const auto cfg = LeastElConfig::las_vegas(d);
  EngineConfig ecfg;
  ecfg.seed = 1234;
  SyncEngine eng(g, ecfg);
  Rng id_rng(5);
  eng.set_uids(assign_ids(g.n(), IdScheme::RandomFromZ, id_rng));
  eng.set_knowledge(Knowledge::of_n_d(g.n(), d));
  eng.init_processes(make_least_el(cfg));
  eng.run();
  const auto* p0 = dynamic_cast<const LeastElProcess*>(eng.process(0));
  for (NodeId s = 1; s < g.n(); ++s) {
    const auto* p = dynamic_cast<const LeastElProcess*>(eng.process(s));
    EXPECT_EQ(p->epochs_started(), p0->epochs_started()) << "slot " << s;
  }
}

}  // namespace
}  // namespace ule
