#include "election/pif.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "graphgen/generators.hpp"
#include "net/engine.hpp"

namespace ule {
namespace {

/// Minimal harness: every node originates a wave with a preset key.
class WaveHarness : public Process {
 public:
  WaveHarness(WaveKey key, bool max_wins, bool originate)
      : pool_(1, max_wins), key_(key), originate_(originate) {}

  void on_wake(Context& ctx, std::span<const Envelope> inbox) override {
    if (originate_) (void)pool_.originate(ctx, key_);
    on_round(ctx, inbox);
  }
  void on_round(Context& ctx, std::span<const Envelope> inbox) override {
    const auto ev = pool_.on_round(ctx, inbox);
    if (ev.own_complete) complete_round = ctx.round();
    ctx.idle();
  }

  WavePool pool_;
  Round complete_round = kRoundForever;

 private:
  WaveKey key_;
  bool originate_;
};

TEST(WavePool, MinWaveWinsAndCompletes) {
  const Graph g = make_path(6);
  SyncEngine eng(g);
  eng.init_processes([](NodeId slot) {
    return std::make_unique<WaveHarness>(WaveKey{slot + 10, slot}, false, true);
  });
  const RunResult res = eng.run();
  EXPECT_TRUE(res.completed);
  for (NodeId s = 0; s < g.n(); ++s) {
    auto* p = dynamic_cast<WaveHarness*>(eng.process(s));
    EXPECT_TRUE(p->pool_.has_best());
    EXPECT_EQ(p->pool_.best().primary, 10u);  // node 0's key is minimal
  }
  // Only the minimal origin completes with its own as best.
  auto* winner = dynamic_cast<WaveHarness*>(eng.process(0));
  EXPECT_NE(winner->complete_round, kRoundForever);
  EXPECT_TRUE(winner->pool_.own_is_best());
}

TEST(WavePool, MaxWaveWins) {
  const Graph g = make_cycle(8);
  SyncEngine eng(g);
  eng.init_processes([](NodeId slot) {
    return std::make_unique<WaveHarness>(WaveKey{slot + 1, slot}, true, true);
  });
  eng.run();
  for (NodeId s = 0; s < g.n(); ++s) {
    auto* p = dynamic_cast<WaveHarness*>(eng.process(s));
    EXPECT_EQ(p->pool_.best().primary, 8u);
  }
  auto* winner = dynamic_cast<WaveHarness*>(eng.process(7));
  EXPECT_NE(winner->complete_round, kRoundForever);
}

TEST(WavePool, CompletionWithinThreeDiameters) {
  const Graph g = make_path(20);  // D = 19
  SyncEngine eng(g);
  eng.init_processes([](NodeId slot) {
    return std::make_unique<WaveHarness>(WaveKey{slot + 1, slot}, false, true);
  });
  const RunResult res = eng.run();
  auto* winner = dynamic_cast<WaveHarness*>(eng.process(0));
  EXPECT_LE(winner->complete_round, 3 * 19u + 3);
  EXPECT_TRUE(res.completed);
}

TEST(WavePool, SingleOriginFormsSpanningTree) {
  const Graph g = make_grid(4, 5);
  SyncEngine eng(g);
  eng.init_processes([](NodeId slot) {
    return std::make_unique<WaveHarness>(WaveKey{1, 1}, false, slot == 7);
  });
  eng.run();
  const WaveKey k{1, 1};
  // Every node adopted; parent pointers form a tree rooted at 7 and
  // children lists mirror the parents.
  std::size_t child_links = 0;
  for (NodeId s = 0; s < g.n(); ++s) {
    auto* p = dynamic_cast<WaveHarness*>(eng.process(s));
    ASSERT_TRUE(p->pool_.has_best());
    EXPECT_EQ(p->pool_.best(), k);
    if (s != 7) {
      EXPECT_NE(p->pool_.parent_of(k), kNoPort);
    } else {
      EXPECT_EQ(p->pool_.parent_of(k), kNoPort);
    }
    child_links += p->pool_.adopted_children(k).size();
  }
  EXPECT_EQ(child_links, g.n() - 1);  // spanning tree edge count
}

TEST(WavePool, AdoptedCountBoundedByRoundsProperty) {
  // At most one adoption per round: on a path with keys descending away
  // from node 0, node 0 adopts at most D entries.
  const std::size_t n = 15;
  const Graph g = make_path(n);
  SyncEngine eng(g);
  eng.init_processes([n](NodeId slot) {
    // Node i has key n - i: improvements arrive at node 0 one per round.
    return std::make_unique<WaveHarness>(WaveKey{n - slot, slot}, false, true);
  });
  eng.run();
  auto* p0 = dynamic_cast<WaveHarness*>(eng.process(0));
  EXPECT_LE(p0->pool_.adopted_count(), n);
  EXPECT_GE(p0->pool_.adopted_count(), 2u);
}

TEST(WavePool, RestrictPortsKeepsWaveOnOverlay) {
  // Cycle of 6, overlay = the path 0-1-2-3-4-5: drop the closing edge
  // (port 1 at node 0 leads to 5, port 1 at node 5 leads to 0 — the cycle
  // generator appends the closing edge last).
  const Graph g = make_cycle(6);
  ASSERT_EQ(g.half_edge(0, 1).to, 5u);
  ASSERT_EQ(g.half_edge(5, 1).to, 0u);

  class Restricted : public WaveHarness {
   public:
    Restricted(WaveKey k) : WaveHarness(k, false, false), key_(k) {}
    void on_wake(Context& ctx, std::span<const Envelope> inbox) override {
      std::vector<PortId> overlay;
      for (PortId p = 0; p < ctx.degree(); ++p) overlay.push_back(p);
      if (ctx.slot() == 0 || ctx.slot() == 5) overlay = {0};
      pool_.restrict_ports(overlay);
      (void)pool_.originate(ctx, key_);
      WaveHarness::on_round(ctx, inbox);
    }

   private:
    WaveKey key_;
  };
  SyncEngine eng(g);
  eng.init_processes([](NodeId slot) {
    return std::make_unique<Restricted>(WaveKey{slot + 1, slot});
  });
  const RunResult res = eng.run();
  EXPECT_TRUE(res.completed);
  // The wave still reaches everyone over the path overlay.
  for (NodeId s = 0; s < g.n(); ++s) {
    auto* p = dynamic_cast<WaveHarness*>(eng.process(s));
    EXPECT_EQ(p->pool_.best().primary, 1u);
  }
}

TEST(WavePool, DoubleOriginateThrows) {
  WavePool pool(1, false);
  const Graph g = make_path(2);
  class Bad : public Process {
   public:
    void on_wake(Context& ctx, std::span<const Envelope>) override {
      WavePool pool(1, false);
      (void)pool.originate(ctx, WaveKey{1, 1});
      EXPECT_THROW((void)pool.originate(ctx, WaveKey{2, 2}), std::logic_error);
      ctx.halt();
    }
    void on_round(Context&, std::span<const Envelope>) override {}
  };
  SyncEngine eng(g);
  eng.init_processes([](NodeId) { return std::make_unique<Bad>(); });
  eng.run();
}

TEST(WavePool, EqualKeysBothComplete) {
  // Two origins with identical keys: neither adopts the other's wave, both
  // complete believing they are best — the collision failure mode.
  const Graph g = make_path(4);
  SyncEngine eng(g);
  eng.init_processes([](NodeId slot) {
    const bool orig = slot == 0 || slot == 3;
    return std::make_unique<WaveHarness>(WaveKey{5, 5}, false, orig);
  });
  eng.run();
  auto* a = dynamic_cast<WaveHarness*>(eng.process(0));
  auto* b = dynamic_cast<WaveHarness*>(eng.process(3));
  EXPECT_NE(a->complete_round, kRoundForever);
  EXPECT_NE(b->complete_round, kRoundForever);
  EXPECT_TRUE(a->pool_.own_is_best());
  EXPECT_TRUE(b->pool_.own_is_best());
}

}  // namespace
}  // namespace ule
