#include "election/clustering.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "election/least_el.hpp"
#include "graphgen/generators.hpp"
#include "graphgen/graph_algos.hpp"
#include "net/engine.hpp"

namespace ule {
namespace {

RunOptions with_n(const Graph& g, std::uint64_t seed) {
  RunOptions opt;
  opt.seed = seed;
  opt.knowledge = Knowledge::of_n(g.n());
  return opt;
}

TEST(Clustering, ElectsUniqueLeader) {
  Rng rng(2);
  const Graph g = make_random_connected(60, 180, rng);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto rep = run_election(g, make_clustering(), with_n(g, seed));
    EXPECT_TRUE(rep.verdict.unique_leader) << "seed " << seed;
  }
}

TEST(Clustering, WorksOnAllBasicFamilies) {
  Rng rng(4);
  for (const Graph& g :
       {make_cycle(30), make_star(20), make_complete(14), make_grid(5, 6),
        make_path(25), make_random_connected(50, 100, rng)}) {
    const auto rep = run_election(g, make_clustering(), with_n(g, 7));
    EXPECT_TRUE(rep.verdict.unique_leader) << g.summary();
  }
}

TEST(Clustering, ClusterCountNearEightLogN) {
  Rng rng(6);
  const Graph g = make_random_connected(400, 1200, rng);
  EngineConfig cfg;
  cfg.seed = 13;
  SyncEngine eng(g, cfg);
  Rng id_rng(3);
  eng.set_uids(assign_ids(g.n(), IdScheme::RandomFromZ, id_rng));
  eng.set_knowledge(Knowledge::of_n(g.n()));
  eng.init_processes(make_clustering());
  eng.run();

  std::set<std::uint64_t> clusters;
  std::size_t candidates = 0;
  for (NodeId s = 0; s < g.n(); ++s) {
    const auto* p = dynamic_cast<const ClusteringProcess*>(eng.process(s));
    candidates += p->is_candidate();
    ASSERT_NE(p->cluster(), 0u) << "node " << s << " never joined";
    clusters.insert(p->cluster());
  }
  EXPECT_EQ(clusters.size(), candidates);
  const double expected = 8.0 * std::log(400.0);  // ≈ 48
  EXPECT_GE(static_cast<double>(candidates), expected / 3.0);
  EXPECT_LE(static_cast<double>(candidates), expected * 3.0);
}

TEST(Clustering, IntergraphStaysPolylog) {
  // After sparsification the broadcast inter-cluster graph has at most one
  // entry per ordered cluster pair: O(log^2 n) whp.
  Rng rng(8);
  const Graph g = make_random_connected(300, 2000, rng);
  EngineConfig cfg;
  cfg.seed = 99;
  SyncEngine eng(g, cfg);
  Rng id_rng(9);
  eng.set_uids(assign_ids(g.n(), IdScheme::RandomFromZ, id_rng));
  eng.set_knowledge(Knowledge::of_n(g.n()));
  eng.init_processes(make_clustering());
  const RunResult res = eng.run();
  EXPECT_EQ(res.elected, 1u);

  std::set<std::uint64_t> clusters;
  std::size_t max_ig = 0;
  for (NodeId s = 0; s < g.n(); ++s) {
    const auto* p = dynamic_cast<const ClusteringProcess*>(eng.process(s));
    clusters.insert(p->cluster());
    max_ig = std::max(max_ig, p->final_intergraph_size());
  }
  EXPECT_LE(max_ig, clusters.size());  // one entry per foreign cluster
}

TEST(Clustering, MessageBoundMPlusNLogN) {
  // Theorem 4.7: O(m + n log n) messages.
  Rng rng(10);
  const Graph g = make_random_connected(256, 3000, rng);  // dense-ish
  double msgs = 0;
  const std::size_t trials = 5;
  for (std::uint64_t seed = 1; seed <= trials; ++seed) {
    const auto rep = run_election(g, make_clustering(), with_n(g, seed));
    EXPECT_TRUE(rep.verdict.unique_leader);
    msgs += static_cast<double>(rep.run.messages);
  }
  const double n = static_cast<double>(g.n());
  const double bound = 6.0 * (g.m() + n * std::log2(n));
  EXPECT_LE(msgs / trials, bound);
}

TEST(Clustering, BeatsPlainLeastElOnDenseGraphs) {
  // The sparsification pays off when m >> n log n: Algorithm 1 spends
  // O(m + n log n) while the f(n)=n least-element election spends
  // Θ(m log n).
  Rng rng(12);
  const Graph g = make_random_connected(200, 6000, rng);
  std::uint64_t clustering_msgs = 0, leastel_msgs = 0;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    clustering_msgs +=
        run_election(g, make_clustering(), with_n(g, seed)).run.messages;
    leastel_msgs +=
        run_election(g, make_least_el(LeastElConfig::all_candidates()),
                     with_n(g, seed))
            .run.messages;
  }
  EXPECT_LT(clustering_msgs, leastel_msgs);
}

TEST(Clustering, TimeWithinDLogN) {
  Rng rng(14);
  const Graph g = make_random_connected(100, 300, rng);
  const auto d = diameter_exact(g);
  const auto rep = run_election(g, make_clustering(), with_n(g, 3));
  EXPECT_TRUE(rep.verdict.unique_leader);
  const double bound =
      20.0 * std::max<double>(1.0, d) * std::log2(100.0) + 50.0;
  EXPECT_LE(static_cast<double>(rep.run.rounds), bound);
}

TEST(Clustering, AnonymousNetworksSupported) {
  const Graph g = make_torus(5, 5);
  RunOptions opt = with_n(g, 17);
  opt.anonymous = true;
  const auto rep = run_election(g, make_clustering(), opt);
  EXPECT_TRUE(rep.verdict.unique_leader);
}

TEST(Clustering, CongestClean) {
  const Graph g = make_complete(16);
  RunOptions opt = with_n(g, 5);
  opt.congest = CongestMode::Count;
  const auto rep = run_election(g, make_clustering(), opt);
  EXPECT_TRUE(rep.verdict.unique_leader);
  EXPECT_EQ(rep.run.congest_violations, 0u);
}

TEST(Clustering, LowCandidateFactorCanFail) {
  // Ablation: with the candidate factor near zero the probability of zero
  // candidates is material, and failures are clean (no leader, undecided).
  const Graph g = make_cycle(20);
  ClusteringConfig cfg;
  cfg.candidate_factor = 0.05;
  std::size_t failures = 0;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    const auto rep = run_election(g, make_clustering(cfg), with_n(g, seed));
    if (!rep.verdict.unique_leader) {
      ++failures;
      EXPECT_EQ(rep.verdict.elected, 0u);
    }
  }
  EXPECT_GT(failures, 0u);
}

}  // namespace
}  // namespace ule
