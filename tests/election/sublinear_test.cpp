// The [14] context algorithm: sublinear-message election on complete graphs.
// This is what makes the paper's universal Ω(m) bound non-obvious — on the
// clique the bound simply does not apply, and this algorithm demonstrates it.

#include "election/sublinear_complete.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graphgen/generators.hpp"
#include "net/engine.hpp"

namespace ule {
namespace {

RunOptions opts(std::size_t n, std::uint64_t seed) {
  RunOptions o;
  o.seed = seed;
  o.knowledge = Knowledge::of_n(n);
  return o;
}

TEST(SublinearComplete, ElectsWhpAcrossSeeds) {
  const std::size_t n = 128;
  const Graph g = make_complete(n);
  std::size_t ok = 0;
  const std::size_t trials = 60;
  for (std::uint64_t seed = 1; seed <= trials; ++seed) {
    ok += run_election(g, make_sublinear_complete(), opts(n, seed))
              .verdict.unique_leader;
  }
  EXPECT_GE(ok, trials - 1);  // whp: allow at most one unlucky seed
}

TEST(SublinearComplete, ConstantRounds) {
  const std::size_t n = 96;
  const Graph g = make_complete(n);
  const auto rep = run_election(g, make_sublinear_complete(), opts(n, 4));
  ASSERT_TRUE(rep.verdict.unique_leader);
  EXPECT_LE(rep.run.rounds, 4u);  // the paper's O(1) time
}

TEST(SublinearComplete, MessagesCollapseRelativeToM) {
  // On K_n the algorithm beats Θ(m) = Θ(n^2) — the point of the intro's
  // citation of [14].  Θ(sqrt(n) polylog) / Θ(n^2) collapses: the msgs/m
  // ratio must drop by >~ 4x per 4x in n, and be well below m already at
  // moderate sizes.
  double prev_ratio = 0;
  for (const std::size_t n : {64u, 256u, 1024u}) {
    const Graph g = make_complete(n);
    const auto rep = run_election(g, make_sublinear_complete(), opts(n, 7));
    ASSERT_TRUE(rep.verdict.unique_leader) << n;
    const double ratio = static_cast<double>(rep.run.messages) /
                         static_cast<double>(g.m());
    if (prev_ratio > 0) {
      EXPECT_LE(ratio, prev_ratio / 2.5) << n;
    }
    prev_ratio = ratio;
  }
  EXPECT_LT(prev_ratio, 0.02);  // n=1024: less than 2% of the edges used
}

TEST(SublinearComplete, MessagesTrackSqrtNPolylog) {
  // messages / (sqrt(n) log^{3/2} n) stays bounded as n quadruples.
  std::vector<double> ratios;
  for (const std::size_t n : {64u, 256u, 1024u}) {
    const Graph g = make_complete(n);
    double msgs = 0;
    const int trials = 5;
    for (int t = 0; t < trials; ++t) {
      const auto rep =
          run_election(g, make_sublinear_complete(), opts(n, 11 + t));
      EXPECT_TRUE(rep.verdict.unique_leader) << n;
      msgs += static_cast<double>(rep.run.messages);
    }
    const double dn = static_cast<double>(n);
    ratios.push_back((msgs / trials) /
                     (std::sqrt(dn) * std::pow(std::log2(dn), 1.5)));
  }
  // Bounded and not exploding: largest/smallest within a small factor.
  const auto [lo, hi] = std::minmax_element(ratios.begin(), ratios.end());
  EXPECT_LE(*hi / *lo, 3.0);
}

TEST(SublinearComplete, WorksAnonymously) {
  const std::size_t n = 64;
  const Graph g = make_complete(n);
  RunOptions o = opts(n, 3);
  o.anonymous = true;
  const auto rep = run_election(g, make_sublinear_complete(), o);
  EXPECT_TRUE(rep.verdict.unique_leader);
}

TEST(SublinearComplete, RefusesNonCompleteGraphs) {
  const Graph g = make_cycle(16);
  EXPECT_THROW(
      run_election(g, make_sublinear_complete(), opts(16, 1)),
      std::logic_error);
}

TEST(SublinearComplete, RequiresN) {
  const Graph g = make_complete(8);
  RunOptions o;
  o.seed = 1;
  EXPECT_THROW(run_election(g, make_sublinear_complete(), o),
               std::logic_error);
}

TEST(SublinearComplete, CongestClean) {
  const std::size_t n = 48;
  const Graph g = make_complete(n);
  RunOptions o = opts(n, 9);
  o.congest = CongestMode::Count;
  const auto rep = run_election(g, make_sublinear_complete(), o);
  ASSERT_TRUE(rep.verdict.unique_leader);
  EXPECT_EQ(rep.run.congest_violations, 0u);
}

TEST(SublinearComplete, SingleNode) {
  const Graph g = make_path(1);
  const auto rep = run_election(g, make_sublinear_complete(), opts(1, 1));
  EXPECT_TRUE(rep.verdict.unique_leader);
}

TEST(SublinearComplete, RefereeFactorAblation) {
  // Tiny referee sets break the shared-referee argument: success drops
  // measurably, which is exactly the knob the whp analysis turns on.
  const std::size_t n = 256;
  const Graph g = make_complete(n);
  const std::size_t trials = 40;
  auto rate = [&](double rf) {
    std::size_t ok = 0;
    for (std::uint64_t seed = 1; seed <= trials; ++seed) {
      SublinearConfig cfg;
      cfg.referee_factor = rf;
      ok += run_election(g, make_sublinear_complete(cfg),
                         opts(n, seed * 31 + 5))
                .verdict.unique_leader;
    }
    return static_cast<double>(ok) / static_cast<double>(trials);
  };
  const double starved = rate(0.05);  // ~4 referees: frequent splits
  const double healthy = rate(2.0);
  EXPECT_GE(healthy, 0.95);
  EXPECT_LT(starved, healthy);
}

}  // namespace
}  // namespace ule
